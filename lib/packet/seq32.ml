let modulus = 1 lsl 32
let half = 1 lsl 31
let wrap seq = seq land (modulus - 1)

let delta ~prev ~cur =
  let d = (cur - prev) land (modulus - 1) in
  if d >= half then d - modulus else d

let unwrap ~base seq32 = base + delta ~prev:(wrap base) ~cur:(wrap seq32)
