(** The ownership / transfer-safety tier.

    Four rules over the ownership facts the index records plus the
    domain tier's shard closure: [use-after-transfer] (a mutable local
    is read/written/RMW'd after flowing into [Spsc.push] /
    [Timer.cancel] on some path), [spsc-role-confinement] (one
    channel's push sites — or pop/peek/drain sites — are reachable
    from more than one shard root), [blocking-in-shard-body]
    (Mutex/Condition/Domain.join/Unix-I/O/console reachable from a
    shard closure) and [release-leak] ([Buffer_pool.try_alloc]
    succeeded but a raise escapes before any release). Findings carry
    stable [(rule, symbol)] keys for the committed baseline, and the
    fact base renders into the committed [tools/lint/ownership.txt]
    inventory with a drift self-check, mirroring the domain tier's
    [shared_state.txt]. *)

type attribution
(** Per-shard-root forward closures; defs no spawned body reaches are
    attributed to the ["(main)"] pseudo-root. *)

val attribution : Lint_deep_rules.t -> attribution
val roots_of : attribution -> string -> string list
(** The shard roots whose closure contains the def; [["(main)"]] when
    none does. Never empty. *)

val use_after_transfer_findings : Lint_deep_rules.t -> Lint_finding.t list
val release_leak_findings : Lint_deep_rules.t -> Lint_finding.t list

val spsc_findings : ?at:attribution -> Lint_deep_rules.t -> Lint_finding.t list
(** Fires per (channel, role) when the role's call sites span ≥ 2
    distinct roots. A single root driving both roles is statically
    clean — the multi-instance case is the [Spsc] debug check's job. *)

val blocking_findings :
  ?closure:Lint_callgraph.closure -> Lint_deep_rules.t -> Lint_finding.t list

val findings : Lint_deep_rules.t -> Lint_finding.t list
(** All four rules, sorted by location. [lib/] scope only. *)

type entry = { o_kind : string; o_symbol : string; o_detail : string }
(** Kinds: [transfer-site] (symbol [def:point]), [spsc-producer] /
    [spsc-consumer] (symbol [chan:def]), [blocking-reach] (symbol
    [def:op], detail the shard-root witness chain). *)

val inventory : Lint_deep_rules.t -> entry list
(** Every ownership fact in [lib/], deduped on (kind, symbol), sorted. *)

val inventory_text : entry list -> string
(** The committed-file format: [<kind> <symbol> -- <detail>] with a
    comment header. Line-number-free, so the file survives churn. *)

val inventory_json : entry list -> string
(** The CI-artifact format:
    [{"version":1,"ownership":[{kind,symbol,detail}]}]. *)

val load_inventory : string -> ((string * string) list, string) result
(** Parse a committed inventory back to [(kind, symbol)] pairs — the
    projection the repo self-check compares against {!inventory}. *)
