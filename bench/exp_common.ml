(* Shared plumbing for the paper-reproduction experiments: microbench
   testbeds, sender tracing, latency matching, and result printing. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Stats = Planck_util.Stats
module Table = Planck_util.Table
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Host = Planck_netsim.Host
module Fabric = Planck_topology.Fabric
module Routing = Planck_topology.Routing
module Endpoint = Planck_tcp.Endpoint
module Flow = Planck_tcp.Flow
module Collector = Planck_collector.Collector
module FK = Planck_packet.Flow_key
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Testbed = Planck.Testbed
module Scheme = Planck.Scheme
module Experiment = Planck.Experiment

type opts = {
  runs : int;  (** repetitions for multi-run experiments *)
  full : bool;  (** paper-scale parameters instead of reduced defaults *)
  seed : int;
  verbose : bool;
}

let default_opts = { runs = 3; full = false; seed = 1; verbose = false }

let rate_10g = Rate.gbps 10.0
let rate_1g = Rate.gbps 1.0

(* The Pronto 3290 (1 Gbps, §5) is a smaller ToR: ~4 MB of shared
   buffer with a stingier dynamic threshold — reproducing its ~6 ms
   monitor-port queueing at 1 Gbps. *)
let pronto_config =
  {
    Switch.default_config with
    Switch.buffer_total = 4 * 1024 * 1024;
    dt_alpha = 0.22;
  }

(* The "minbuffer" firmware configuration of §9.2 / Table 1: the
   monitor port keeps only a handful of MTUs of buffer. *)
let minbuffer config =
  { config with Switch.mirror_buffer_cap = Some (6 * P.mtu) }

(* ---- Microbench testbed (single switch + collector) ---- *)

type micro = {
  tb : Testbed.t;
  collector : Collector.t;
  switch : Switch.t;
}

let micro_testbed ?(hosts = 28) ?(rate = rate_10g)
    ?(config = Switch.default_config) ?(seed = 1) () =
  let tb =
    Testbed.create (Testbed.microbench ~seed ~hosts ~rate ~switch_config:config ())
  in
  let collector =
    Collector.create tb.Testbed.engine ~switch:0 ~routing:tb.Testbed.routing
      ~link_rate:rate ()
  in
  Collector.attach collector;
  { tb; collector; switch = Fabric.switch tb.Testbed.fabric 0 }

let micro_no_mirror ?(hosts = 28) ?(rate = rate_10g)
    ?(config = Switch.default_config) ?(seed = 1) () =
  let tb =
    Testbed.create (Testbed.microbench ~seed ~hosts ~rate ~switch_config:config ())
  in
  (tb, Fabric.switch tb.Testbed.fabric 0)

(* A long-lived saturating flow (sized to outlast any horizon used in
   the microbenchmarks). [params] defaults to a window suited to the
   testbed rate: autotuned stacks keep ~3x BDP, so 1 Gbps hosts hold
   far smaller windows than 10 Gbps ones. *)
let params_for rate =
  if rate < Rate.gbps 5.0 then
    { Flow.default_params with Flow.max_flight = 256 * 1024 }
  else Flow.default_params

let saturating_flow ?params ?(tag = 0) tb ~src ~dst =
  let params =
    match params with
    | Some params -> params
    | None -> params_for (Fabric.link_rate tb.Testbed.fabric)
  in
  Flow.start
    ~src:tb.Testbed.endpoints.(src)
    ~dst:tb.Testbed.endpoints.(dst)
    ~src_port:(10_000 + src + (1_000 * tag))
    ~dst_port:(20_000 + dst)
    ~size:(1 lsl 40) ~params ()

(* ---- Sender tracing ---- *)

(* Records the first transmission time of every (flow, seq) pair on the
   traced hosts — the "tcpdump at the sender" of §5.2 — and the raw
   sequence of sends per flow for ground-truth rate estimation. *)
type sender_trace = {
  first_tx : (FK.t * int, Time.t) Hashtbl.t;
  mutable sends : (Time.t * FK.t * int * int) list; (* t, key, seq32, payload *)
}

let trace_senders tb hosts =
  let trace = { first_tx = Hashtbl.create 65536; sends = [] } in
  List.iter
    (fun h ->
      Host.add_send_trace
        (Fabric.host tb.Testbed.fabric h)
        (fun time packet ->
          match (FK.of_packet packet, P.tcp_headers packet) with
          | Some key, Some (_, tcp) when P.tcp_payload_len packet > 0 ->
              let id = (key, tcp.H.Tcp.seq) in
              if not (Hashtbl.mem trace.first_tx id) then begin
                Hashtbl.replace trace.first_tx id time;
                trace.sends <-
                  (time, key, tcp.H.Tcp.seq, P.tcp_payload_len packet)
                  :: trace.sends
              end
          | _ -> ()))
    hosts;
  trace

let sends_of_flow trace key =
  List.rev
    (List.filter_map
       (fun (t, k, seq, payload) ->
         if FK.equal k key then Some (t, seq, payload) else None)
       trace.sends)

(* ---- One-way latency recorder (send trace -> receive trace) ---- *)

type latency_recorder = {
  in_flight : (int, Time.t) Hashtbl.t; (* packet id -> send time *)
  mutable latencies : Time.t list;
}

let record_latencies tb hosts =
  let recorder = { in_flight = Hashtbl.create 65536; latencies = [] } in
  List.iter
    (fun h ->
      let host = Fabric.host tb.Testbed.fabric h in
      Host.add_send_trace host (fun time packet ->
          if P.tcp_payload_len packet > 0 then
            Hashtbl.replace recorder.in_flight packet.P.id time);
      Host.add_recv_trace host (fun time packet ->
          match Hashtbl.find_opt recorder.in_flight packet.P.id with
          | Some sent ->
              Hashtbl.remove recorder.in_flight packet.P.id;
              recorder.latencies <- (time - sent) :: recorder.latencies
          | None -> ()))
    hosts;
  recorder

(* ---- Printing ---- *)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

let paper fmt =
  Printf.ksprintf (fun s -> Printf.printf "  [paper] %s\n%!" s) fmt

let ms t = Time.to_float_ms t
let us t = Time.to_float_us t

let cdf_deciles values =
  List.map
    (fun p -> (p, Stats.percentile p values))
    [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9 ]

let all_hosts tb = List.init (Testbed.host_count tb) Fun.id
