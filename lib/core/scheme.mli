(** The routing schemes compared in the paper's §7:

    - [Static]: PAST base routes only (the ECMP-class baseline);
    - [Planck_te]: Planck collectors on every switch driving the
      greedy TE application;
    - [Poll]: Hedera-style global first fit on polled OpenFlow
      counters (1 s and 100 ms variants);
    - [Sflow_te]: OpenSample-style global first fit on control-plane
      sFlow samples (capped at ~300 samples/s);
    - "Optimal" is not a scheme but a topology — run [Static] on
      {!Testbed.optimal}. *)

type t =
  | Static
  | Planck_te of Planck_controller.Te.config
  | Poll of Planck_baselines.Poller.config
  | Sflow_te of Planck_baselines.Sflow_te.config

(** How Planck collectors keep per-flow state (only [Planck_te]
    deploys collectors; the other schemes ignore this). [Exact] is the
    paper's unbounded one-entry-per-flow table; [Tiered] bounds
    resident state with a count-min sketch plus heavy-hitter promotion
    ({!Planck_sketch.Tiered_table}). *)
type flow_table = Exact | Tiered of Planck_sketch.Tiered_table.config

val tiered_default : flow_table
(** [Tiered Planck_sketch.Tiered_table.default_config]. *)

val flow_table_name : flow_table -> string
(** ["exact" | "tiered"] — the CLI spelling. *)

val planck_te_default : t
val poll_1s : t
val poll_100ms : t
val sflow_te_default : t

val name : t -> string

type deployed = {
  scheme : t;
  controller : Planck_controller.Controller.t option;
  te : Planck_controller.Te.t option;
  poller : Planck_baselines.Poller.t option;
  sflow_te : Planck_baselines.Sflow_te.t option;
}

val deploy : ?flow_table:flow_table -> Testbed.t -> t -> deployed
(** Set the scheme up on a built testbed (creates collectors, enables
    mirroring, starts pollers — whatever the scheme needs).
    [flow_table] defaults to [Exact], so existing experiments are
    byte-for-byte unchanged. *)

val reroutes : deployed -> int
