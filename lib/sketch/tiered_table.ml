module Time = Planck_util.Time
module Flow_key = Planck_packet.Flow_key
module Flow_table = Planck_collector.Flow_table
module Collector = Planck_collector.Collector
module Journal = Planck_telemetry.Journal
module Metrics = Planck_telemetry.Metrics
module Profile = Planck_telemetry.Profile

let sp_update = Profile.register "sketch.update"

type config = {
  seed : int;
  depth : int;
  width : int;
  promote_bytes : int;
  max_exact : int;
  decay_interval : Time.t;
  sweep_interval : Time.t;
}

let default_config =
  {
    seed = 0x5eed;
    depth = 4;
    width = 16_384;
    (* ~8 full-size segments: an elephant crosses this within its
       first bursts, mice never do. Low enough that the promotion
       delay sits inside the rate estimator's anchoring window, so TE
       sees the same rate trajectory as with an exact-only table. *)
    promote_bytes = 8 * 1460;
    max_exact = 8_192;
    decay_interval = Time.ms 10;
    sweep_interval = Time.ms 5;
  }

type meta = { promoted_at : Time.t; est_at_promotion : int }

type t = {
  config : config;
  switch : int;
  cms : Count_min.t;
  table : Flow_table.t;
  meta : meta Flow_key.Table.t;
  mutable next_decay : Time.t;  (* Time.zero = not yet armed *)
  mutable next_sweep : Time.t;
  mutable promotions : int;
  mutable demotions : int;
  mutable suppressed : int;
  tel_occupied : Metrics.gauge;
  tel_exact : Metrics.gauge;
  tel_error : Metrics.gauge;
  tel_promotions : Metrics.counter;
  tel_demotions : Metrics.counter;
  tel_suppressed : Metrics.counter;
}

(* Demotion: an idle promoted flow's exact entry expired. Credit the
   bytes it accumulated while exact back into the sketch, so if it
   resumes it is judged on its history rather than from zero. *)
let demote t ~now (entry : Flow_table.entry) =
  match Flow_key.Table.find_opt t.meta entry.key with
  | None -> ()
  | Some m ->
      Flow_key.Table.remove t.meta entry.key;
      let fold = entry.sampled_bytes in
      let (_ : int) = Count_min.update t.cms entry.key fold in
      t.demotions <- t.demotions + 1;
      Metrics.Counter.incr t.tel_demotions;
      if Journal.enabled Journal.default then
        Journal.record Journal.default ~ts:now
          (Journal.Flow_demoted
             {
               switch = t.switch;
               flow = Flow_key.to_string entry.key;
               fold_back_bytes = fold;
               lifetime_ns = now - m.promoted_at;
             })

let create ?(config = default_config) ~switch ~flow_timeout () =
  let table = Flow_table.create ~timeout:flow_timeout () in
  let label = "sw" ^ string_of_int switch in
  let gauge name = Metrics.gauge ~subsystem:"sketch" ~name ~label () in
  let counter name = Metrics.counter ~subsystem:"sketch" ~name ~label () in
  let t =
    {
      config;
      switch;
      cms =
        Count_min.create ~seed:config.seed ~depth:config.depth
          ~width:config.width ();
      table;
      meta = Flow_key.Table.create 64;
      next_decay = Time.zero;
      next_sweep = Time.zero;
      promotions = 0;
      demotions = 0;
      suppressed = 0;
      tel_occupied = gauge "sketch_occupied";
      tel_exact = gauge "exact_entries";
      tel_error = gauge "promote_overshoot_pct";
      tel_promotions = counter "promotions";
      tel_demotions = counter "demotions";
      tel_suppressed = counter "promotions_suppressed";
    }
  in
  Flow_table.add_on_expire table (fun ~now entry -> demote t ~now entry);
  t

let sample_impl t ~key ~now ~bytes ~max_rate ~dst_mac =
  match Flow_table.find t.table key with
  | Some entry ->
      (* promoted: refresh liveness in place, no second lookup *)
      entry.last_seen <- now;
      entry.dst_mac <- dst_mac;
      Some entry
  | None ->
      let est = Count_min.update t.cms key bytes in
      if est < t.config.promote_bytes then None
      else if Flow_table.size t.table >= t.config.max_exact then begin
        (* exact tier full: keep counting approximately rather than
           evict a live elephant *)
        t.suppressed <- t.suppressed + 1;
        Metrics.Counter.incr t.tel_suppressed;
        None
      end
      else begin
        let entry =
          Flow_table.touch t.table ~key ~time:now ~max_rate ~dst_mac ()
        in
        Flow_key.Table.replace t.meta key
          { promoted_at = now; est_at_promotion = est };
        t.promotions <- t.promotions + 1;
        Metrics.Counter.incr t.tel_promotions;
        (* A collision-free sketch crosses the threshold by at most one
           sample's worth of bytes; the overshoot beyond that is
           overestimate noise, our per-switch estimate-error signal. *)
        if Metrics.enabled Metrics.default then
          Metrics.Gauge.set t.tel_error
            (float_of_int (est - t.config.promote_bytes)
            /. float_of_int t.config.promote_bytes
            *. 100.0);
        if Journal.enabled Journal.default then
          Journal.record Journal.default ~ts:now
            (Journal.Flow_promoted
               {
                 switch = t.switch;
                 flow = Flow_key.to_string key;
                 est_bytes = est;
               });
        Some entry
      end

let sample t ~key ~now ~bytes ~max_rate ~dst_mac =
  Profile.enter sp_update;
  let entry = sample_impl t ~key ~now ~bytes ~max_rate ~dst_mac in
  Profile.exit sp_update;
  entry

let tick t ~now =
  (if t.next_decay = Time.zero then
     t.next_decay <- now + t.config.decay_interval
   else
     while now >= t.next_decay do
       Count_min.halve t.cms;
       t.next_decay <- t.next_decay + t.config.decay_interval
     done);
  if t.next_sweep = Time.zero then t.next_sweep <- now + t.config.sweep_interval
  else if now >= t.next_sweep then begin
    let (_ : int) = Flow_table.sweep t.table ~now in
    t.next_sweep <- now + t.config.sweep_interval;
    if Metrics.enabled Metrics.default then begin
      Metrics.Gauge.set_int t.tel_occupied (Count_min.occupied t.cms);
      Metrics.Gauge.set_int t.tel_exact (Flow_table.size t.table)
    end
  end

let backend t =
  {
    Collector.b_table = t.table;
    b_sample = (fun ~key ~now ~bytes ~max_rate ~dst_mac ->
      sample t ~key ~now ~bytes ~max_rate ~dst_mac);
    b_tick = (fun ~now -> tick t ~now);
  }

let table_kind ?config () =
  Collector.Custom_backend
    (fun ~switch ~flow_timeout ->
      backend (create ?config ~switch ~flow_timeout ()))

let sketch t = t.cms
let exact_size t = Flow_table.size t.table
let promotions t = t.promotions
let demotions t = t.demotions
let suppressed_promotions t = t.suppressed
