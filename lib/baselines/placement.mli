(** Shared placement logic for the measurement-driven baselines:
    Hedera's natural-demand estimation followed by Global First Fit
    over the pre-installed alternate routes.

    Both the counter-polling scheme ({!Poller}) and the sFlow-driven
    scheme ({!Sflow_te}) feed their measured elephants through this —
    the schemes differ only in how (and how stale) the measurements
    are, which is exactly the comparison the paper makes. *)

type flow = {
  key : Planck_packet.Flow_key.t;
  rate : Planck_util.Rate.t;  (** measured rate *)
  current_mac : Planck_packet.Mac.t;  (** route currently in use *)
}

val estimate_demands :
  link_rate:Planck_util.Rate.t -> flow list -> (flow * Planck_util.Rate.t) list
(** Hedera's max-min natural-demand estimation: iterate sender-side
    equal shares and receiver-side capping to a fixed point. Returns
    each flow with its estimated demand. *)

val global_first_fit :
  routing:Planck_topology.Routing.t ->
  link_rate:Planck_util.Rate.t ->
  flow list ->
  (flow * Planck_packet.Mac.t) list
(** Place every flow (largest demand first) on the first candidate path
    — current route, then alternates in order — with room for its
    demand. Returns the flows whose placement differs from their
    current route, with the chosen new MAC. *)
