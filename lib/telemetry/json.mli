(** A minimal self-contained JSON representation with an emitter and a
    full-grammar parser.

    Used by the telemetry exporters (metric snapshots, Chrome
    [trace_event] files, bench result files) and by tests to verify that
    exported documents are valid JSON and round-trip their payloads. No
    external dependency (the container must not grow any). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats render as
    [null]; finite floats use the shortest representation that
    round-trips the double. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. Numbers without [.]/[e] that fit an
    OCaml [int] parse as [Int], everything else as [Float]. *)

(** {2 Accessors} *)

val member : t -> string -> t option
(** [member (Obj kvs) key] is the first binding of [key]. [None] on
    non-objects. *)

val to_list_opt : t -> t list option
val to_float_opt : t -> float option
(** [Int]s widen to float. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
