(* Vantage-point monitoring (paper §6.1): the collector retains a ring
   of recent samples and dumps them as a tcpdump-compatible pcap —
   a switch-level packet capture that costs one port.

     dune exec examples/vantage_point.exe
     tcpdump -nr /tmp/planck-vantage.pcap | head     # if available
*)

module Time = Planck_util.Time
module Engine = Planck_netsim.Engine
module Collector = Planck_collector.Collector
module Flow = Planck_tcp.Flow
open Planck

let () =
  let tb = Testbed.create (Testbed.microbench ~hosts:6 ()) in
  let collector =
    Collector.create tb.Testbed.engine ~switch:0 ~routing:tb.Testbed.routing
      ~link_rate:(Testbed.link_rate tb) ()
  in
  Collector.attach collector;

  (* Mixed traffic: two bulk flows and a small one. *)
  ignore
    (Flow.start ~src:tb.Testbed.endpoints.(0) ~dst:tb.Testbed.endpoints.(3)
       ~src_port:40_001 ~dst_port:5_003 ~size:(8 * 1024 * 1024) ());
  ignore
    (Flow.start ~src:tb.Testbed.endpoints.(1) ~dst:tb.Testbed.endpoints.(4)
       ~src_port:40_002 ~dst_port:5_004 ~size:(8 * 1024 * 1024) ());
  ignore
    (Flow.start ~src:tb.Testbed.endpoints.(2) ~dst:tb.Testbed.endpoints.(5)
       ~src_port:40_003 ~dst_port:5_005 ~size:(256 * 1024) ());
  Engine.run ~until:(Time.ms 10) tb.Testbed.engine;

  let path = "/tmp/planck-vantage.pcap" in
  let pcap = Collector.vantage_pcap collector in
  let oc = open_out_bin path in
  output_string oc pcap;
  close_out oc;
  Format.printf
    "captured %d samples (%d total seen) from the switch's vantage point@."
    (Collector.vantage_count collector)
    (Collector.samples_seen collector);
  Format.printf "wrote %d bytes of pcap to %s@." (String.length pcap) path;
  Format.printf "flows currently tracked: %d@."
    (Collector.flows_tracked collector)
