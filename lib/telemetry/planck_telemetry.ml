(** Always-on observability for the Planck reproduction: a typed metric
    registry ({!Metrics}), sim-time tracing with Chrome [trace_event]
    export ({!Trace}), a correlated cross-layer event journal
    ({!Journal}) with its loop analyzer ({!Inspect}), a ground-truth
    time-series recorder ({!Timeseries}), snapshot writers ({!Export}),
    periodic flushing ({!Flusher}), a sim-time [Logs] reporter
    ({!Reporter}), and the self-contained JSON codec they share
    ({!Json}).

    Instrumentation is compiled into the simulator's hot paths but
    guarded by per-registry enabled flags that default to off, so an
    uninstrumented run pays one branch per tracepoint. Experiments and
    the CLI/bench [--metrics-out] / [--trace-out] / [--journal-out]
    flags flip the process-wide {!Metrics.default} / {!Trace.default} /
    {!Journal.default} on. *)

module Json = Json
module Metrics = Metrics
module Profile = Profile
module Bench_gate = Bench_gate
module Trace = Trace
module Journal = Journal
module Timeseries = Timeseries
module Inspect = Inspect
module Export = Export
module Flusher = Flusher
module Reporter = Reporter
