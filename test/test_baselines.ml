(* Baseline-scheme tests: the polling TE loop, Hedera-style demand
   estimation behaviour, and the Table-1 latency models. *)

open Testbed
module Poller = Planck_baselines.Poller
module Latency_models = Planck_baselines.Latency_models
module Control_channel = Planck_openflow.Control_channel
module Reroute = Planck_controller.Reroute
module Prng = Planck_util.Prng

let make_poller tb ~period =
  let channel =
    Control_channel.create tb.engine ~prng:(Prng.create ~seed:5) ()
  in
  Poller.create tb.engine ~routing:tb.routing ~channel ~link_rate:rate_10g
    ~config:
      { Poller.period; elephant_threshold = 0.1; mechanism = Reroute.Arp }
    ()

let poller_polls_on_schedule () =
  let tb, _shape = fat_tree () in
  let poller = make_poller tb ~period:(Time.ms 50) in
  Engine.run ~until:(Time.ms 260) tb.engine;
  Alcotest.(check int) "5 polls in 260ms" 5 (Poller.polls poller)

let poller_fixes_collision () =
  let tb, _shape = fat_tree () in
  let poller = make_poller tb ~period:(Time.ms 50) in
  (* Two long flows colliding on base routes; the first poll measures,
     the second can act on fresh counters. *)
  let f1 = start_flow tb ~src:0 ~dst:8 ~size:(300 * 1024 * 1024) () in
  let f2 = start_flow tb ~src:1 ~dst:9 ~size:(300 * 1024 * 1024) () in
  Engine.run ~until:(Time.s 2) tb.engine;
  Alcotest.(check bool) "rerouted" true (Poller.reroutes poller >= 1);
  Alcotest.(check bool) "completed" true
    (Flow.completed f1 && Flow.completed f2);
  let g f = Planck_util.Rate.to_gbps (Option.get (Flow.goodput f)) in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate improved: %.1f + %.1f" (g f1) (g f2))
    true
    (g f1 +. g f2 > 11.0)

let poller_ignores_mice () =
  let tb, _shape = fat_tree () in
  let poller = make_poller tb ~period:(Time.ms 50) in
  (* Mice (well under 10% of link rate) never trigger placement. *)
  let next_port = ref 7_000 in
  for i = 0 to 4 do
    Engine.every tb.engine ~period:(Time.ms 20) ~until:(Time.ms 380)
      (fun () ->
        incr next_port;
        ignore
          (Flow.start ~src:tb.endpoints.(i) ~dst:tb.endpoints.(i + 8)
             ~src_port:!next_port ~dst_port:(5_000 + i) ~size:20_000 ()))
  done;
  Engine.run ~until:(Time.ms 400) tb.engine;
  Alcotest.(check int) "no reroutes for mice" 0 (Poller.reroutes poller)

let latency_model_slowdowns () =
  let helios =
    List.find
      (fun e -> e.Latency_models.system = "Helios")
      Latency_models.published
  in
  let lo, hi = Latency_models.slowdown helios ~reference:(Time.ms 4 + Time.us 200) in
  Alcotest.(check bool) "Helios ~18x vs 4.2ms" true
    (lo > 17.0 && hi < 19.0);
  Alcotest.(check int) "five published systems" 5
    (List.length Latency_models.published)

let sflow_te_is_worse_than_poll () =
  (* The OpenSample-style scheme works, but its throttled samples make
     its decisions no better (typically worse) than counter polling at
     the same period — the measurement quality is the difference. *)
  let run scheme =
    let summary =
      Planck.Experiment.run
        ~spec:(Planck.Testbed.paper_fat_tree ())
        ~scheme ~workload:(Planck.Experiment.Stride 8)
        ~size:(150 * 1024 * 1024) ~horizon:(Time.s 20) ()
    in
    summary.Planck.Experiment.avg_goodput_gbps
  in
  let sflow = run Planck.Scheme.sflow_te_default in
  let static = run Planck.Scheme.Static in
  Alcotest.(check bool)
    (Printf.sprintf "sflow-te %.2f functions (static %.2f)" sflow static)
    true
    (sflow >= static -. 0.8 && sflow < 10.0)

let sflow_te_rounds () =
  let tb, _shape = fat_tree () in
  let channel =
    Control_channel.create tb.engine ~prng:(Prng.create ~seed:9) ()
  in
  let te =
    Planck_baselines.Sflow_te.create tb.engine ~routing:tb.routing ~channel
      ~link_rate:rate_10g ~prng:(Prng.create ~seed:10) ()
  in
  ignore (start_flow tb ~src:0 ~dst:8 ~size:(100 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 450) tb.engine;
  Alcotest.(check int) "4 rounds in 450ms" 4
    (Planck_baselines.Sflow_te.rounds te);
  Alcotest.(check bool) "samples received" true
    (Planck_baselines.Sflow_te.samples_received te > 0)

let tests =
  [
    Alcotest.test_case "poller polls on schedule" `Quick
      poller_polls_on_schedule;
    Alcotest.test_case "poller fixes a collision" `Slow poller_fixes_collision;
    Alcotest.test_case "poller ignores mice" `Quick poller_ignores_mice;
    Alcotest.test_case "latency model slowdowns" `Quick latency_model_slowdowns;
    Alcotest.test_case "sflow-te functions as a (weak) baseline" `Slow
      sflow_te_is_worse_than_poll;
    Alcotest.test_case "sflow-te control rounds" `Quick sflow_te_rounds;
  ]

