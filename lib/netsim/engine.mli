(** The discrete-event simulation engine.

    A single-threaded event loop over a min-heap of (time, thunk) pairs.
    Events at equal times fire in scheduling order, so the simulation is
    fully deterministic. *)

type t

val create : unit -> t

val now : t -> Planck_util.Time.t
(** Current simulated time. *)

val schedule : t -> delay:Planck_util.Time.t -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay]. Raises
    [Invalid_argument] on negative delay. *)

val schedule_at : t -> time:Planck_util.Time.t -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute time [time], which must
    not be in the past. *)

val every :
  t -> period:Planck_util.Time.t -> ?until:Planck_util.Time.t ->
  (unit -> unit) -> unit
(** [every t ~period f] runs [f] now + period, then every [period]
    until the optional horizon (inclusive). *)

val run : ?until:Planck_util.Time.t -> t -> unit
(** Process events in time order. With [until], stops once the next
    event would be strictly later than [until] (and advances the clock
    to [until]); otherwise runs until the queue drains. *)

val step : t -> bool
(** Process exactly one event; [false] if the queue was empty. *)

(** {2 Introspection}

    Exposed so telemetry and tests can assert on scheduler state; the
    same quantities feed the process-wide [engine.events_processed]
    counter and [engine.pending_high_water] gauge in
    {!Planck_telemetry.Metrics.default}. *)

val events_processed : t -> int
(** Events executed by {!step}/{!run} since creation. *)

val pending : t -> int
(** Events currently queued. *)

val max_pending : t -> int
(** High-water mark of {!pending} over the engine's lifetime. *)
