(* Collector tests: the burst-clustered rate estimator, the rolling
   strawman, the flow table, port inference, congestion events, and the
   vantage-point pcap dump. *)

open Testbed
module Collector = Planck_collector.Collector
module Rate_estimator = Planck_collector.Rate_estimator
module Flow_table = Planck_collector.Flow_table
module Mac = Planck_packet.Mac
module Seq32 = Planck_packet.Seq32
module FK = Planck_packet.Flow_key
module Ip = Planck_packet.Ipv4_addr

(* ---- Rate estimator ---- *)

let estimator_steady_stream () =
  (* 1460 B every 1.168 us = 10 Gbps of payload; estimates forced every
     700 us must converge on that rate. *)
  let e = Rate_estimator.create () in
  let last = ref None in
  for i = 0 to 2_000 do
    let time = i * 1168 in
    match Rate_estimator.update e ~time ~seq32:(Seq32.wrap (i * 1460)) with
    | Some rate -> last := Some rate
    | None -> ()
  done;
  match !last with
  | None -> Alcotest.fail "no estimate"
  | Some rate ->
      Alcotest.(check bool)
        (Printf.sprintf "%.3f Gbps" (Rate.to_gbps rate))
        true
        (abs_float (Rate.to_gbps rate -. 10.0) < 0.1)

let estimator_subsampled_stream () =
  (* Drop 9 of 10 samples: the sequence-based estimate must not change,
     because sequence numbers carry the byte count regardless of the
     sampling rate (the paper's core trick). *)
  let e = Rate_estimator.create () in
  let last = ref None in
  for i = 0 to 2_000 do
    if i mod 10 = 0 then begin
      let time = i * 1168 in
      match Rate_estimator.update e ~time ~seq32:(Seq32.wrap (i * 1460)) with
      | Some rate -> last := Some rate
      | None -> ()
    end
  done;
  match !last with
  | None -> Alcotest.fail "no estimate"
  | Some rate ->
      Alcotest.(check bool) "rate unaffected by subsampling" true
        (abs_float (Rate.to_gbps rate -. 10.0) < 0.1)

let estimator_burst_boundaries () =
  (* Two line-rate bursts separated by a 250 us gap: the estimate made
     at the second burst's start spans burst+gap, giving the per-RTT
     average — not the in-burst line rate. *)
  let e = Rate_estimator.create () in
  let estimates = ref [] in
  let feed ~start_time ~start_seq n =
    for i = 0 to n - 1 do
      match
        Rate_estimator.update e ~time:(start_time + (i * 1168))
          ~seq32:(Seq32.wrap (start_seq + (i * 1460)))
      with
      | Some r -> estimates := r :: !estimates
      | None -> ()
    done
  in
  feed ~start_time:0 ~start_seq:0 20;
  (* Gap of 250 us, then the next burst. *)
  feed ~start_time:(20 * 1168 + Time.us 250) ~start_seq:(20 * 1460) 20;
  Alcotest.(check int) "one estimate at the burst boundary" 1
    (List.length !estimates);
  let rate = List.hd !estimates in
  (* 20 * 1460 bytes over ~273 us is ~0.85 Gbps. *)
  Alcotest.(check bool)
    (Printf.sprintf "per-window average %.2f Gbps" (Rate.to_gbps rate))
    true
    (Rate.to_gbps rate < 2.0)

let estimator_ignores_out_of_order () =
  let e = Rate_estimator.create () in
  ignore (Rate_estimator.update e ~time:0 ~seq32:10_000);
  ignore (Rate_estimator.update e ~time:100 ~seq32:5_000);
  Alcotest.(check int) "ooo counted" 1 (Rate_estimator.out_of_order e);
  Alcotest.(check int) "samples counted" 2 (Rate_estimator.samples e)

let estimator_wraps () =
  let e = Rate_estimator.create () in
  let base = Seq32.modulus - 600_000 in
  let last = ref None in
  for i = 0 to 1_000 do
    match
      Rate_estimator.update e ~time:(i * 1168)
        ~seq32:(Seq32.wrap (base + (i * 1460)))
    with
    | Some r -> last := Some r
    | None -> ()
  done;
  match !last with
  | None -> Alcotest.fail "no estimate across wrap"
  | Some rate ->
      Alcotest.(check bool) "sane across wrap" true
        (abs_float (Rate.to_gbps rate -. 10.0) < 0.5)

let estimator_clamps () =
  let e = Rate_estimator.create ~max_rate:(Rate.gbps 10.0) () in
  ignore (Rate_estimator.update e ~time:0 ~seq32:0);
  (* 10 MB "in" 700us would be >100 Gbps; must clamp. *)
  ignore (Rate_estimator.update e ~time:(Time.us 300) ~seq32:5_000_000);
  (match Rate_estimator.update e ~time:(Time.us 701) ~seq32:10_000_000 with
  | Some rate ->
      Alcotest.(check (float 1.0)) "clamped" 10.0 (Rate.to_gbps rate)
  | None -> Alcotest.fail "expected estimate")

let estimator_monotone_qcheck =
  QCheck.Test.make
    ~name:"estimator never emits negative or absurd rates" ~count:200
    QCheck.(list (pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
    (fun points ->
      let e = Rate_estimator.create () in
      let sorted =
        List.sort compare (List.map (fun (t, s) -> (t, s)) points)
      in
      List.for_all
        (fun (time, seq) ->
          match Rate_estimator.update e ~time ~seq32:(Seq32.wrap seq) with
          | None -> true
          | Some rate -> rate >= 0.0)
        sorted)

let rolling_estimator_jitters () =
  (* The Fig 10a strawman: with RTT-spaced bursts, a 200 us rolling
     window sometimes sees zero bytes and sometimes a whole burst. *)
  let r = Rate_estimator.Rolling.create () in
  let samples = ref [] in
  (* Bursts of 100 packets at line rate every 350 us: the window
     alternately holds a whole burst and almost nothing. *)
  for burst = 0 to 19 do
    for i = 0 to 99 do
      let idx = (burst * 100) + i in
      match
        Rate_estimator.Rolling.update r
          ~time:((burst * Time.us 350) + (i * 1168))
          ~seq32:(Seq32.wrap (idx * 1460))
      with
      | Some rate -> samples := rate :: !samples
      | None -> ()
    done
  done;
  let gbps = List.map Rate.to_gbps !samples in
  let spread =
    List.fold_left max neg_infinity gbps -. List.fold_left min infinity gbps
  in
  Alcotest.(check bool)
    (Printf.sprintf "jitter spread %.1f Gbps" spread)
    true (spread > 3.0)

(* ---- Flow table ---- *)

let flow_table_lifecycle () =
  let table = Flow_table.create ~timeout:(Time.ms 5) () in
  let key =
    {
      FK.src_ip = Ip.host 0;
      dst_ip = Ip.host 1;
      src_port = 1;
      dst_port = 2;
      protocol = 6;
    }
  in
  let entry = Flow_table.touch table ~key ~time:0 ~dst_mac:(Mac.host 1) () in
  entry.Flow_table.out_port <- 3;
  Alcotest.(check int) "size" 1 (Flow_table.size table);
  Alcotest.(check int) "active at 4ms" 1
    (List.length (Flow_table.active table ~now:(Time.ms 4)));
  Alcotest.(check int) "on port" 1
    (List.length (Flow_table.active_on_port table ~now:(Time.ms 4) ~out_port:3));
  Alcotest.(check int) "expired at 6ms" 0
    (List.length (Flow_table.active table ~now:(Time.ms 6)));
  Alcotest.(check int) "expiry removed entry" 0 (Flow_table.size table)

let flow_table_sweep_and_expiry_hooks () =
  let table = Flow_table.create ~timeout:(Time.ms 5) () in
  let expired = ref [] in
  Flow_table.add_on_expire table (fun ~now:_ entry ->
      expired := entry.Flow_table.key :: !expired);
  let key i =
    {
      FK.src_ip = Ip.host i;
      dst_ip = Ip.host (i + 1);
      src_port = i;
      dst_port = 2;
      protocol = 6;
    }
  in
  ignore (Flow_table.touch table ~key:(key 2) ~time:0 ~dst_mac:(Mac.host 1) ());
  ignore (Flow_table.touch table ~key:(key 1) ~time:0 ~dst_mac:(Mac.host 1) ());
  ignore
    (Flow_table.touch table ~key:(key 3) ~time:(Time.ms 4)
       ~dst_mac:(Mac.host 1) ());
  Alcotest.(check int) "three resident" 3 (Flow_table.size table);
  Alcotest.(check int) "sweep evicts the idle two" 2
    (Flow_table.sweep table ~now:(Time.ms 7));
  Alcotest.(check int) "size counts survivors only" 1 (Flow_table.size table);
  Alcotest.(check (list int))
    "expiry callbacks fired in ascending key order"
    [ 1; 2 ]
    (List.rev_map (fun k -> k.FK.src_port) !expired);
  Alcotest.(check int) "idempotent when nothing is idle" 0
    (Flow_table.sweep table ~now:(Time.ms 7));
  Alcotest.(check bool) "survivor still resident" true
    (Flow_table.find table (key 3) <> None)

let collector_occupancy_telemetry_registered () =
  let tb = single_switch ~hosts:2 () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:(Rate.gbps 10.0) ()
  in
  ignore (Collector.switch_id collector);
  let module Metrics = Planck_telemetry.Metrics in
  let has name =
    List.exists
      (fun (s : Metrics.snapshot) ->
        s.Metrics.subsystem = "collector" && s.Metrics.name = name
        && s.Metrics.label = "s0")
      (Metrics.snapshot Metrics.default)
  in
  Alcotest.(check bool) "occupancy gauge registered" true
    (has "flow_table_entries");
  Alcotest.(check bool) "eviction counter registered" true
    (has "flow_table_evictions")

(* ---- Collector end-to-end ---- *)

let with_collector ?(hosts = 4) () =
  let tb = single_switch ~hosts () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  (tb, collector)

let collector_port_inference () =
  let tb, collector = with_collector () in
  let flow = start_flow tb ~src:2 ~dst:3 ~size:(4 * 1024 * 1024) () in
  let inferred = ref [] in
  Collector.set_tap collector (fun s ->
      if s.Collector.payload > 0 then
        inferred := (s.Collector.in_port, s.Collector.out_port) :: !inferred);
  Engine.run ~until:(Time.ms 10) tb.engine;
  ignore flow;
  Alcotest.(check bool) "samples tapped" true (List.length !inferred > 10);
  List.iter
    (fun (inp, outp) ->
      Alcotest.(check (pair int int)) "ports inferred" (2, 3) (inp, outp))
    !inferred

let collector_link_utilization () =
  let tb, collector = with_collector () in
  ignore (start_flow tb ~src:0 ~dst:1 ~size:(20 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 15) tb.engine;
  let util = Collector.link_utilization collector ~port:1 in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f Gbps" (Rate.to_gbps util))
    true
    (Rate.to_gbps util > 5.0 && Rate.to_gbps util <= 10.0);
  Alcotest.(check int) "idle port empty" 0
    (List.length (Collector.flows_on_port collector ~port:2))

let collector_congestion_event () =
  let tb, collector = with_collector () in
  let events = ref [] in
  Collector.subscribe_congestion collector ~threshold:0.5 (fun e ->
      events := e :: !events);
  (* Two flows into one port: utilization approaches 10G > 0.5 * 10G. *)
  ignore (start_flow tb ~src:0 ~dst:2 ~size:(20 * 1024 * 1024) ());
  ignore (start_flow tb ~src:1 ~dst:2 ~size:(20 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 20) tb.engine;
  Alcotest.(check bool) "events fired" true (List.length !events > 0);
  let e = List.hd !events in
  Alcotest.(check int) "congested port" 2 e.Collector.port;
  Alcotest.(check int) "two flows annotated" 2 (List.length e.Collector.flows);
  Alcotest.(check bool) "cooldown bounds event count" true
    (List.length !events < 25)

let collector_vantage_pcap () =
  let tb, collector = with_collector () in
  ignore (start_flow tb ~src:0 ~dst:1 ~size:(1024 * 1024) ());
  Engine.run ~until:(Time.ms 10) tb.engine;
  let pcap = Collector.vantage_pcap collector in
  Alcotest.(check bool) "has samples" true (Collector.vantage_count collector > 100);
  Alcotest.(check char) "pcap magic" '\xd4' pcap.[0];
  Alcotest.(check bool) "plausible size" true
    (String.length pcap > 24 + (Collector.vantage_count collector * 16))

let collector_oversubscription_samples () =
  (* Saturate 3 flows to distinct ports: 30G of mirror traffic into a
     10G monitor port. The collector must still see samples of every
     flow, and mirror drops must be recorded at the switch. *)
  let tb, collector = with_collector ~hosts:6 () in
  let flows =
    List.init 3 (fun i -> start_flow tb ~src:i ~dst:(i + 3) ~size:(8 * 1024 * 1024) ())
  in
  Engine.run ~until:(Time.ms 10) tb.engine;
  List.iter
    (fun f ->
      Alcotest.(check bool) "each flow sampled and estimated" true
        (Collector.flow_rate collector (Flow.key f) <> None))
    flows;
  Alcotest.(check bool) "mirror drops happened" true
    (Switch.total_mirror_drops (Fabric.switch tb.fabric 0) > 100);
  Alcotest.(check int) "no parse errors" 0 (Collector.parse_errors collector)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "estimator on steady stream" `Quick
      estimator_steady_stream;
    Alcotest.test_case "estimator immune to subsampling" `Quick
      estimator_subsampled_stream;
    Alcotest.test_case "estimator burst clustering" `Quick
      estimator_burst_boundaries;
    Alcotest.test_case "estimator ignores out-of-order" `Quick
      estimator_ignores_out_of_order;
    Alcotest.test_case "estimator across seq wrap" `Quick estimator_wraps;
    Alcotest.test_case "estimator clamps to link rate" `Quick estimator_clamps;
    qtest estimator_monotone_qcheck;
    Alcotest.test_case "rolling estimator jitters (fig 10a)" `Quick
      rolling_estimator_jitters;
    Alcotest.test_case "flow table lifecycle" `Quick flow_table_lifecycle;
    Alcotest.test_case "flow table sweep + expiry hooks" `Quick
      flow_table_sweep_and_expiry_hooks;
    Alcotest.test_case "occupancy telemetry registered" `Quick
      collector_occupancy_telemetry_registered;
    Alcotest.test_case "port inference" `Quick collector_port_inference;
    Alcotest.test_case "link utilization" `Quick collector_link_utilization;
    Alcotest.test_case "congestion events" `Quick collector_congestion_event;
    Alcotest.test_case "vantage pcap dump" `Quick collector_vantage_pcap;
    Alcotest.test_case "oversubscribed sampling" `Quick
      collector_oversubscription_samples;
  ]
