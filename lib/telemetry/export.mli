(** Pluggable snapshot sinks for {!Metrics} registries.

    Both formats render {!Metrics.snapshot}, so they are deterministic
    (sorted by [(subsystem, name, label)]). Traces export themselves via
    {!Trace.to_chrome_json}. *)

val metrics_to_json : Metrics.registry -> Json.t
(** [{"metrics": [{subsystem, name, label, kind, ...}, ...]}]. Counters
    carry [value]; gauges [value] and [max] (high-water); histograms
    [count], [sum], [min], [max] and non-empty [buckets] as
    [[lo, hi, count]] triples. *)

val metrics_json : Metrics.registry -> string
val metrics_csv : Metrics.registry -> string
(** Header [subsystem,name,label,kind,value,count,sum,min,max]; fields
    not applicable to a kind are left empty. *)

val write_file : path:string -> string -> unit
