(* Traffic engineering on the paper's 16-host fat-tree: a stride(8)
   workload collides pairwise on the PAST base routes; the Planck-driven
   TE application detects the congestion from mirrored samples and flips
   flows to shadow-MAC alternates with spoofed ARP messages — watch the
   reroutes happen within milliseconds of the flows starting.

     dune exec examples/traffic_engineering.exe
*)

module Time = Planck_util.Time
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module FK = Planck_packet.Flow_key
module Engine = Planck_netsim.Engine
module Controller = Planck_controller.Controller
module Te = Planck_controller.Te
open Planck

let () =
  let tb = Testbed.create (Testbed.paper_fat_tree ()) in

  (* The Planck controller: one collector per switch, mirroring on. *)
  let controller =
    Controller.create tb.Testbed.engine ~routing:tb.Testbed.routing
      ~link_rate:(Testbed.link_rate tb)
      ~prng:(Planck_util.Prng.split tb.Testbed.prng)
      ()
  in
  let te = Controller.start_te controller () in
  Te.on_reroute te (fun time key ~old_mac ~new_mac ->
      let _, old_alt = Mac.base_of_shadow old_mac in
      let _, new_alt = Mac.base_of_shadow new_mac in
      Format.printf "  %8s  reroute %a -> %a from route %d to route %d@."
        (Time.to_string time) Ip.pp key.FK.src_ip Ip.pp key.FK.dst_ip old_alt
        new_alt);

  (* stride(8): host x sends 50 MiB to host x+8 — every flow crosses
     the core, and base routes collide pairwise. *)
  Format.printf "starting stride(8), 50 MiB per flow:@.";
  let results =
    Workloads.Runner.run_pairs tb.Testbed.engine
      ~endpoints:tb.Testbed.endpoints
      ~pairs:(Workloads.Generate.stride ~hosts:16 ~k:8)
      ~size:(50 * 1024 * 1024) ~horizon:(Time.s 5) ()
  in
  Format.printf "@.%d reroutes; per-flow goodput:@." (Te.reroutes te);
  List.iter
    (fun r ->
      match r.Workloads.Runner.goodput with
      | Some g ->
          Format.printf "  h%-2d -> h%-2d  %5.2f Gbps@." r.Workloads.Runner.src
            r.Workloads.Runner.dst
            (Planck_util.Rate.to_gbps g)
      | None -> Format.printf "  h%-2d -> h%-2d  incomplete@."
            r.Workloads.Runner.src r.Workloads.Runner.dst)
    results;
  Format.printf "average: %.2f Gbps (static routing gives ~4.6; optimal ~8.6)@."
    (Workloads.Runner.average_goodput_gbps results)
