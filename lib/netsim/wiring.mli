(** Full-duplex cabling helpers. *)

val host_to_switch :
  Host.t ->
  Switch.t ->
  port:int ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  unit
(** Connect both directions of a host–switch cable. *)

val switch_to_switch :
  Switch.t ->
  port_a:int ->
  Switch.t ->
  port_b:int ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  unit

val switch_to_switch_remote :
  Switch.t ->
  port_a:int ->
  Switch.t ->
  port_b:int ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  handoff_ab:(Planck_util.Time.t -> Planck_packet.Packet.t -> unit) ->
  handoff_ba:(Planck_util.Time.t -> Planck_packet.Packet.t -> unit) ->
  unit
(** Cross-shard cable: the two switches live on different shard
    engines, so each direction hands departures (with their arrival
    time) to a {!Shard} channel instead of calling the peer's ingress
    directly. [prop_delay] must be at least the owning group's
    lookahead bound — {!Shard.channel} enforces this. *)

val switch_to_sink :
  Switch.t ->
  port:int ->
  Sink.t ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  unit
(** Monitor-port cable: the sink never transmits, so only the
    switch-to-sink direction is wired. *)

val default_prop_delay : Planck_util.Time.t
(** 300 ns — a few tens of metres of fibre plus PHY latency. *)
