(* Intraprocedural ownership scan over one typedtree expression.

   The ownership tier models *transfer points* as call sites: once a
   local binding flows into [Spsc.push] (the frame now belongs to the
   consumer shard) or [Engine.Timer.cancel] (the handle is dead), the
   old owner touching it again is a bug the type system cannot see.
   This module walks a single structure-level binding's body in
   evaluation order and reports two per-function facts:

   - uses after transfer: the same local (or an alias of it — [let y =
     x] joins the alias class) reaching a field read/write, a
     deref-family operator, an indexed access, or a second transfer
     point after it was handed off on the current path. Plain
     pass-to-function is deliberately NOT a use: re-arming a cancelled
     timer via [Timer.reschedule t] is the documented reuse idiom, and
     flagging every argument position would bury the signal.

   - release leaks: a path where [Buffer_pool.try_alloc] succeeded and
     a raise-family call escapes the success branch before any
     [Buffer_pool.release] — the admitted bytes leak from the pool
     accounting. Only *direct* raises outside a [try] count; requiring
     the raise to be syntactically on the path keeps the rule's
     false-positive rate at zero on a codebase where most callees can
     raise something.

   Branches are walked from a snapshot and union-merged (a transfer on
   either arm kills the binding afterwards); loop bodies are walked
   twice so a transfer on iteration [n] flags a use on iteration
   [n+1]; a fresh pattern binding of the same ident resurrects it
   (each iteration of [match pop () with Some pkt -> ...] is a new
   value). Lambda bodies inherit the dead set — a closure created
   after the hand-off and scheduled for later runs after it too — but
   kills inside a lambda do not escape, and outer allocation scopes are
   masked there (the body does not run on the allocation path).

   The walker is resolver-parameterized so [Lint_cmt_index] can feed
   it its path normalisation without a dependency cycle; locals are
   exactly the paths the resolver maps to [None]. *)

type use_kind = Uread | Uwrite | Urmw | Utransfer

let use_verb = function
  | Uread -> "read"
  | Uwrite -> "written"
  | Urmw -> "read-modify-written"
  | Utransfer -> "transferred again"

type use = {
  u_var : string;  (** source name of the transferred binding *)
  u_point : string;  (** transfer pattern, e.g. ["Spsc.push"] *)
  u_kind : use_kind;
  u_transfer_line : int;
  u_line : int;
  u_col : int;
  u_ty : Types.type_expr;  (** type of the transferred value *)
}

type leak = {
  k_raise : string;  (** the raise-family callee *)
  k_alloc_line : int;  (** the successful [try_alloc] condition *)
  k_line : int;
  k_col : int;
}

(* ---- Dotted-suffix matching ----

   A local copy of [Lint_cmt_index.suffix_matches] (this module must
   stay below the index in the dependency order): the leftmost pattern
   component may match a component suffix only at a "__" boundary, so
   "Spsc.push" matches "Planck_util__Spsc.push" and "Fix.Spsc.push"
   but not "X.flush". *)

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let suffix_matches ~pattern target =
  let p = String.split_on_char '.' pattern
  and c = String.split_on_char '.' target in
  let np = List.length p and nc = List.length c in
  if nc < np then false
  else
    let tail = List.filteri (fun i _ -> i >= nc - np) c in
    match (p, tail) with
    | p0 :: prest, c0 :: crest ->
        (c0 = p0 || ends_with ~suffix:("__" ^ p0) c0) && prest = crest
    | _ -> false

(* ---- Interesting call targets ---- *)

(* pattern, positional index (among [Nolabel] args) of the operand
   whose ownership moves. [Buffer_pool.release] transfers too, but its
   operands are ints — nothing to track; the pairing discipline is
   enforced by the leak scan instead. *)
let transfer_points = [ ("Spsc.push", 1); ("Timer.cancel", 0) ]

let transfer_point_of name =
  List.find_opt (fun (p, _) -> suffix_matches ~pattern:p name) transfer_points

let deref_ops =
  [
    ("Stdlib.!", Uread);
    ("Stdlib.:=", Uwrite);
    ("Stdlib.incr", Urmw);
    ("Stdlib.decr", Urmw);
  ]

let indexed_ops =
  [
    ("Stdlib.Array.get", Uread);
    ("Stdlib.Array.unsafe_get", Uread);
    ("Stdlib.Array.set", Uwrite);
    ("Stdlib.Array.unsafe_set", Uwrite);
    ("Stdlib.Bytes.get", Uread);
    ("Stdlib.Bytes.unsafe_get", Uread);
    ("Stdlib.Bytes.set", Uwrite);
    ("Stdlib.Bytes.unsafe_set", Uwrite);
    ("Stdlib.Atomic.get", Uread);
    ("Stdlib.Atomic.set", Uwrite);
    ("Stdlib.Atomic.exchange", Urmw);
    ("Stdlib.Atomic.compare_and_set", Urmw);
    ("Stdlib.Atomic.fetch_and_add", Urmw);
    ("Stdlib.Atomic.incr", Urmw);
    ("Stdlib.Atomic.decr", Urmw);
  ]

let raise_like =
  [
    "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg"; "Stdlib.exit";
  ]

let is_try_alloc name = suffix_matches ~pattern:"Buffer_pool.try_alloc" name
let is_release name = suffix_matches ~pattern:"Buffer_pool.release" name

(* ---- Scan state ---- *)

module IMap = Map.Make (Int)

module ITbl = Hashtbl.Make (struct
  type t = Ident.t

  let equal = Ident.same
  let hash = Hashtbl.hash
end)

type dead_info = {
  di_var : string;
  di_point : string;
  di_line : int;
  di_ty : Types.type_expr;
}

type alloc_scope = { a_line : int; mutable a_released : bool }

type state = {
  resolve : Path.t -> string option;
  classes : int ITbl.t;  (* ident -> alias class *)
  alloc_oks : int ITbl.t;  (* bool local bound to a try_alloc -> its line *)
  mutable next_class : int;
  mutable dead : dead_info IMap.t;  (* alias class -> transfer that killed it *)
  mutable allocs : alloc_scope list;  (* innermost-first try_alloc successes *)
  mutable try_depth : int;
  mutable uses : use list;
  mutable leaks : leak list;
  reported : (int * int * string, unit) Hashtbl.t;
      (* loop bodies are walked twice; report each (line, col, kind) once *)
}

let class_of st id =
  match ITbl.find_opt st.classes id with
  | Some c -> c
  | None ->
      let c = st.next_class in
      st.next_class <- c + 1;
      ITbl.replace st.classes id c;
      c

(* a fresh (non-alias) binding of [id] starts a new value: resurrect *)
let fresh_bind st id = st.dead <- IMap.remove (class_of st id) st.dead

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let local_ident st (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident ((Path.Pident id as p), _, _) -> (
      match st.resolve p with
      | None -> Some id
      | Some _ -> None (* a structure-level binding, not a local *))
  | _ -> None

let report_use st ~info ~kind loc =
  let line, col = pos_of loc in
  let key = (line, col, use_verb kind) in
  if not (Hashtbl.mem st.reported key) then begin
    Hashtbl.replace st.reported key ();
    st.uses <-
      {
        u_var = info.di_var;
        u_point = info.di_point;
        u_kind = kind;
        u_transfer_line = info.di_line;
        u_line = line;
        u_col = col;
        u_ty = info.di_ty;
      }
      :: st.uses
  end

(* [e] used as a value whose identity matters (field access, deref,
   indexed op, second transfer): report if its alias class is dead *)
let check_use st ~kind (e : Typedtree.expression) =
  match local_ident st e with
  | None -> ()
  | Some id -> (
      match IMap.find_opt (class_of st id) st.dead with
      | Some info -> report_use st ~info ~kind e.Typedtree.exp_loc
      | None -> ())

let report_leak st ~name loc =
  match List.find_opt (fun a -> not a.a_released) st.allocs with
  | None -> ()
  | Some scope ->
      let line, col = pos_of loc in
      let key = (line, col, "leak") in
      if not (Hashtbl.mem st.reported key) then begin
        Hashtbl.replace st.reported key ();
        st.leaks <-
          {
            k_raise = name;
            k_alloc_line = scope.a_line;
            k_line = line;
            k_col = col;
          }
          :: st.leaks
      end

let fn_name st (fn : Typedtree.expression) =
  match fn.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> st.resolve p
  | _ -> None

(* positional (Nolabel) arguments, in order, with their index *)
let positional args =
  let i = ref (-1) in
  List.filter_map
    (fun (lbl, a) ->
      match (lbl, a) with
      | Asttypes.Nolabel, Some a ->
          incr i;
          Some (!i, a)
      | _ -> None)
    args

let merge d1 d2 = IMap.union (fun _ a _ -> Some a) d1 d2

(* ---- The walker ---- *)

let rec go st (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident _ | Typedtree.Texp_constant _
  | Typedtree.Texp_unreachable ->
      ()
  | Typedtree.Texp_let (_, vbs, body) ->
      List.iter (bind_vb st) vbs;
      go st body
  | Typedtree.Texp_sequence (a, b) ->
      go st a;
      go st b
  | Typedtree.Texp_apply (fn, args) -> apply st fn args
  | Typedtree.Texp_field (obj, _, _) ->
      check_use st ~kind:Uread obj;
      go st obj
  | Typedtree.Texp_setfield (obj, _, _, v) ->
      check_use st ~kind:Uwrite obj;
      go st obj;
      go st v
  | Typedtree.Texp_record { fields; extended_expression; _ } ->
      (* [{ x with ... }] reads the kept fields of [x] *)
      Option.iter
        (fun ex ->
          check_use st ~kind:Uread ex;
          go st ex)
        extended_expression;
      Array.iter
        (fun (_, def) ->
          match def with
          | Typedtree.Overridden (_, ex) -> go st ex
          | Typedtree.Kept _ -> ())
        fields
  | Typedtree.Texp_ifthenelse (cond, then_, else_) ->
      let alloc_line = alloc_cond st cond in
      go st cond;
      let before = st.dead in
      (match alloc_line with
      | Some a_line ->
          let scope = { a_line; a_released = false } in
          st.allocs <- scope :: st.allocs;
          go st then_;
          st.allocs <- List.tl st.allocs
      | None -> go st then_);
      let after_then = st.dead in
      st.dead <- before;
      Option.iter (go st) else_;
      st.dead <- merge after_then st.dead
  | Typedtree.Texp_match (scrut, cases, _) ->
      go st scrut;
      branch_cases st cases
  | Typedtree.Texp_try (body, handlers) ->
      let before = st.dead in
      st.try_depth <- st.try_depth + 1;
      go st body;
      st.try_depth <- st.try_depth - 1;
      let after_body = st.dead in
      (* handlers resume from an arbitrary point inside the body; start
         them from the pre-try state to stay conservative-but-quiet *)
      st.dead <- before;
      branch_cases st handlers;
      st.dead <- merge after_body st.dead
  | Typedtree.Texp_while (cond, body) ->
      (* twice: a transfer on iteration n must flag a use on n+1 *)
      for _ = 1 to 2 do
        go st cond;
        go st body
      done
  | Typedtree.Texp_for (id, _, lo, hi, _, body) ->
      go st lo;
      go st hi;
      for _ = 1 to 2 do
        fresh_bind st id;
        go st body
      done
  | Typedtree.Texp_function { cases; _ } ->
      (* deferred body: inherits the dead set (a closure built after
         the hand-off runs after it too) but its kills stay inside, and
         outer allocation scopes are masked — the body does not run on
         the allocation path *)
      let before_dead = st.dead and before_allocs = st.allocs in
      st.allocs <- [];
      List.iter
        (fun c ->
          st.dead <- before_dead;
          List.iter (fresh_bind st)
            (Typedtree.pat_bound_idents c.Typedtree.c_lhs);
          Option.iter (go st) c.Typedtree.c_guard;
          go st c.Typedtree.c_rhs)
        cases;
      st.dead <- before_dead;
      st.allocs <- before_allocs
  | _ -> fallback st e

(* arbitrary-order children (tuples, constructors, arrays, assert,
   letmodule bodies, ...): same state — evaluation order of the
   remaining constructs does not matter to this analysis *)
and fallback st e =
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ e' -> go st e') }
  in
  Tast_iterator.default_iterator.expr it e

and branch_cases : 'k. state -> 'k Typedtree.case list -> unit =
 fun st cases ->
  match cases with
  | [] -> ()
  | _ ->
      let before = st.dead in
      let out = ref None in
      List.iter
        (fun c ->
          st.dead <- before;
          List.iter (fresh_bind st)
            (Typedtree.pat_bound_idents c.Typedtree.c_lhs);
          Option.iter (go st) c.Typedtree.c_guard;
          go st c.Typedtree.c_rhs;
          out :=
            Some (match !out with None -> st.dead | Some d -> merge d st.dead))
        cases;
      (match !out with Some d -> st.dead <- d | None -> ())

and bind_vb st (vb : Typedtree.value_binding) =
  go st vb.Typedtree.vb_expr;
  match vb.Typedtree.vb_pat.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> (
      match local_ident st vb.Typedtree.vb_expr with
      | Some src ->
          (* [let y = x]: y joins x's alias class — a transfer through
             either name kills both *)
          ITbl.replace st.classes id (class_of st src)
      | None -> (
          fresh_bind st id;
          (* [let ok = Buffer_pool.try_alloc ...]: remember so a later
             [if ok then ...] opens the allocation-success scope *)
          match vb.Typedtree.vb_expr.Typedtree.exp_desc with
          | Typedtree.Texp_apply (fn, _) -> (
              match fn_name st fn with
              | Some n when is_try_alloc n ->
                  ITbl.replace st.alloc_oks id
                    (fst (pos_of vb.Typedtree.vb_expr.Typedtree.exp_loc))
              | _ -> ())
          | _ -> ()))
  | _ ->
      List.iter (fresh_bind st) (Typedtree.pat_bound_idents vb.Typedtree.vb_pat)

(* is this if-condition a successful try_alloc? either the call itself
   or a bool local bound to one ([let ok = try_alloc ... in if ok]) *)
and alloc_cond st (cond : Typedtree.expression) =
  match cond.Typedtree.exp_desc with
  | Typedtree.Texp_apply (fn, _) -> (
      match fn_name st fn with
      | Some n when is_try_alloc n -> Some (fst (pos_of cond.Typedtree.exp_loc))
      | _ -> None)
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> ITbl.find_opt st.alloc_oks id
  | _ -> None

and apply st fn args =
  (match fn.Typedtree.exp_desc with
  | Typedtree.Texp_ident _ -> ()
  | _ -> go st fn);
  let name = fn_name st fn in
  let pos_args = positional args in
  let walk_all () = List.iter (fun (_, a) -> Option.iter (go st) a) args in
  match name with
  | Some n when transfer_point_of n <> None -> (
      let point, idx = Option.get (transfer_point_of n) in
      walk_all ();
      (* the transferred operand, when it is a trackable local: check
         for a second transfer, then kill its alias class *)
      match List.find_opt (fun (i, _) -> i = idx) pos_args with
      | Some (_, op_e) -> (
          match local_ident st op_e with
          | None -> ()
          | Some id ->
              let c = class_of st id in
              (match IMap.find_opt c st.dead with
              | Some info ->
                  report_use st ~info ~kind:Utransfer op_e.Typedtree.exp_loc
              | None -> ());
              st.dead <-
                IMap.add c
                  {
                    di_var = Ident.name id;
                    di_point = point;
                    di_line = fst (pos_of fn.Typedtree.exp_loc);
                    di_ty = op_e.Typedtree.exp_type;
                  }
                  st.dead)
      | None -> ())
  | Some n when List.mem_assoc n deref_ops -> (
      let kind = List.assoc n deref_ops in
      (match pos_args with (_, first) :: _ -> check_use st ~kind first | [] -> ());
      walk_all ())
  | Some n when List.mem_assoc n indexed_ops -> (
      let kind = List.assoc n indexed_ops in
      (match pos_args with (_, first) :: _ -> check_use st ~kind first | [] -> ());
      walk_all ())
  | Some n when List.mem n raise_like ->
      if st.try_depth = 0 then report_leak st ~name:n fn.Typedtree.exp_loc;
      walk_all ()
  | Some n when is_release n ->
      List.iter (fun a -> a.a_released <- true) st.allocs;
      walk_all ()
  | _ -> walk_all ()

(* ---- Entry point ---- *)

let scan ~resolve (e : Typedtree.expression) =
  let st =
    {
      resolve;
      classes = ITbl.create 32;
      alloc_oks = ITbl.create 8;
      next_class = 0;
      dead = IMap.empty;
      allocs = [];
      try_depth = 0;
      uses = [];
      leaks = [];
      reported = Hashtbl.create 16;
    }
  in
  go st e;
  (List.rev st.uses, List.rev st.leaks)
