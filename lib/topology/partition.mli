(** Topology partitioners for the sharded engine: a pure assignment of
    switches and hosts to shards, consumed by the builders (via
    {!Fabric}'s sharding support) and by [Scalability.shard_plan].

    A good partition keeps the fastest links internal: the lookahead
    bound — and so the synchronization window — is the smallest
    propagation delay crossing a shard boundary. *)

type t = {
  shards : int;
  of_switch : int -> int;
  of_host : int -> int;
}

val fat_tree : Fat_tree.shape -> shards:int -> t
(** Pod-granular: pods map to shards in contiguous blocks (so every
    intra-pod edge-agg link and every host uplink stays internal), and
    core switches spread over shards in proportion. Only agg-core links
    cross shards — exactly the tier where a real fat-tree's cable runs
    are longest, which is why pod granularity maximizes the lookahead.
    [shards] may exceed the pod count; the surplus shards just end up
    empty. *)

val jellyfish : Jellyfish.spec -> shards:int -> t
(** Balanced cut fallback for an unstructured graph: contiguous
    switch-id ranges of near-equal size, hosts following their switch.
    Random links make no locality promises, so this only balances
    load. *)

val single : shards:int -> t
(** Everything on shard 0 — degenerate partition for one-switch
    topologies (the other shards stay empty). *)
