(** Workload generation (stride, shuffle, random, staggered-prob) and
    execution. *)

module Generate = Generate
module Runner = Runner
