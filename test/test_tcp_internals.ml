(* Focused TCP mechanism tests: RTO backoff, handshake retries, HyStart,
   CUBIC's multiplicative decrease, SACK blocks on the wire, FIN on
   completion, and a random-loss completion property. *)

open Testbed
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module FK = Planck_packet.Flow_key

(* A 2-host world where we can drop packets at will: a switch whose
   route to host 1 we can remove and restore. *)
let lossy_world () =
  let tb = single_switch ~hosts:4 () in
  let sw = Fabric.switch tb.fabric 0 in
  (tb, sw)

let syn_retransmits_with_backoff () =
  let tb, sw = lossy_world () in
  (* Black-hole the path: the SYN is lost; the handshake must retry
     with the RFC 6298 initial RTO (1 s) doubling thereafter. *)
  Switch.remove_route sw (Mac.host 1);
  let flow = start_flow tb ~src:0 ~dst:1 ~size:1460 () in
  Engine.run ~until:(Time.ms 1200) tb.engine;
  Alcotest.(check bool) "not established" false (Flow.completed flow);
  Alcotest.(check int) "one timeout by 1.2s" 1 (Flow.timeouts flow);
  Engine.run ~until:(Time.ms 3400) tb.engine;
  Alcotest.(check int) "second at 1s+2s backoff" 2 (Flow.timeouts flow);
  (* Restore the route: the next retry completes the flow. *)
  Switch.add_route sw (Mac.host 1) 1;
  Engine.run ~until:(Time.s 9) tb.engine;
  Alcotest.(check bool) "completes after repair" true (Flow.completed flow)

let rto_recovers_data_blackhole () =
  let tb, sw = lossy_world () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(2 * 1024 * 1024) () in
  (* Let it get going, then black-hole mid-flow for a while. *)
  Engine.run ~until:(Time.ms 1) tb.engine;
  Switch.remove_route sw (Mac.host 1);
  Engine.run ~until:(Time.ms 100) tb.engine;
  Switch.add_route sw (Mac.host 1) 1;
  Engine.run ~until:(Time.s 2) tb.engine;
  Alcotest.(check bool) "completed after black hole" true
    (Flow.completed flow);
  Alcotest.(check bool) "RTO fired" true (Flow.timeouts flow >= 1)

let hystart_bounds_cwnd () =
  (* A lone flow on a clean path with a huge window allowance must
     leave slow start from queue-delay feedback, far below the
     allowance (without HyStart it would blast straight to 4 MiB). *)
  let tb = single_switch () in
  let params =
    { Flow.default_params with Flow.max_flight = 4 * 1024 * 1024 }
  in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(64 * 1024 * 1024) ~params () in
  Engine.run ~until:(Time.ms 5) tb.engine;
  let cwnd = Flow.cwnd_bytes flow in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd %d KB past BDP but far below max window"
       (cwnd / 1024))
    true
    (cwnd > 300_000 && cwnd < 2_000_000)

let loss_halves_window_multiplicatively () =
  (* CUBIC cuts to beta = 0.7 of the pre-loss window on fast
     retransmit. Observe via a one-off forced gap. *)
  let tb, sw = lossy_world () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(64 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 10) tb.engine;
  let before = Flow.cwnd_bytes flow in
  (* Drop a handful of packets by black-holing briefly (shorter than
     the RTO, long enough for dupacks). *)
  Switch.remove_route sw (Mac.host 1);
  Engine.run ~until:(Time.ms 10 + Time.us 120) tb.engine;
  Switch.add_route sw (Mac.host 1) 1;
  Engine.run ~until:(Time.ms 14) tb.engine;
  let after = Flow.cwnd_bytes flow in
  Alcotest.(check bool)
    (Printf.sprintf "window cut %d -> %d KB (~0.7x)" (before / 1024)
       (after / 1024))
    true
    (Flow.timeouts flow = 0
    && after < before
    && float_of_int after > 0.5 *. float_of_int before)

let sack_blocks_on_wire_during_loss () =
  let tb, sw = lossy_world () in
  (* Tap ACKs heading back to host 0 and look for SACK options. *)
  let saw_sack = ref false in
  let host0 = Fabric.host tb.fabric 0 in
  Planck_netsim.Host.add_recv_trace host0 (fun _ p ->
      match P.tcp_headers p with
      | Some (_, tcp) -> if tcp.H.Tcp.sack <> [] then saw_sack := true
      | None -> ());
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(8 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 3) tb.engine;
  Switch.remove_route sw (Mac.host 1);
  Engine.run ~until:(Time.ms 3 + Time.us 100) tb.engine;
  Switch.add_route sw (Mac.host 1) 1;
  Engine.run ~until:(Time.ms 50) tb.engine;
  Alcotest.(check bool) "flow completed" true (Flow.completed flow);
  Alcotest.(check bool) "SACK blocks observed" true !saw_sack

let fin_sent_on_completion () =
  let tb = single_switch () in
  let fins = ref 0 in
  Planck_netsim.Host.add_send_trace (Fabric.host tb.fabric 0) (fun _ p ->
      match P.tcp_headers p with
      | Some (_, tcp) -> if tcp.H.Tcp.flags.H.Tcp_flags.fin then incr fins
      | None -> ());
  let flow = start_flow tb ~src:0 ~dst:1 ~size:4096 () in
  Engine.run ~until:(Time.ms 10) tb.engine;
  Alcotest.(check bool) "completed" true (Flow.completed flow);
  Alcotest.(check int) "exactly one FIN" 1 !fins

let random_sizes_complete_qcheck =
  QCheck.Test.make ~name:"flows of random sizes complete under tiny buffers"
    ~count:8
    QCheck.(int_range 1 2_000_000)
    (fun size ->
      let config =
        {
          Switch.default_config with
          Switch.buffer_total = 120_000;
          buffer_reservation = 0;
        }
      in
      let tb = single_switch ~hosts:4 ~config ~seed:(size land 0xFFFF) () in
      (* Cross traffic makes drops likely. *)
      ignore (start_flow tb ~src:1 ~dst:2 ~size:(4 * 1024 * 1024) ());
      let flow =
        Flow.start ~src:tb.endpoints.(0) ~dst:tb.endpoints.(2) ~src_port:77
          ~dst_port:88 ~size ()
      in
      Engine.run ~until:(Time.s 3) tb.engine;
      Flow.completed flow && Flow.bytes_acked flow = size)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "SYN retransmits with backoff" `Quick
      syn_retransmits_with_backoff;
    Alcotest.test_case "RTO recovers from a black hole" `Quick
      rto_recovers_data_blackhole;
    Alcotest.test_case "HyStart bounds slow-start cwnd" `Quick
      hystart_bounds_cwnd;
    Alcotest.test_case "loss cuts window multiplicatively" `Quick
      loss_halves_window_multiplicatively;
    Alcotest.test_case "SACK blocks on the wire" `Quick
      sack_blocks_on_wire_during_loss;
    Alcotest.test_case "FIN sent on completion" `Quick fin_sent_on_completion;
    qtest random_sizes_complete_qcheck;
  ]
