(** Parsing, suppression handling, and the file-tree driver. *)

val lint_source :
  ?extra:Lint_finding.t list ->
  path:string ->
  source:string ->
  unit ->
  Lint_finding.t list * Lint_finding.t list
(** [lint_source ~path ~source ()] parses [source] as an implementation
    and returns [(kept, suppressed)]: findings that survive the file's
    [(* planck-lint: allow ... *)] directives, and those the directives
    removed. An [allow] directive covers its own line and the line
    below; [allow-file] covers the whole file. [extra] merges file-level
    findings (e.g. missing-mli) into the same suppression pass. [path]
    is repo-relative and drives rule scoping; the file need not exist
    on disk. *)

type result = {
  kept : Lint_finding.t list;  (** unsuppressed, sorted by location *)
  suppressed_count : int;
  files_linted : int;
}

val lint_paths : string list -> result
(** Walk files and directories (recursively; [_build] and dotfiles are
    skipped), lint every [.ml], and apply the missing-mli rule using the
    sibling [.mli] set. Paths are reported as given, so run from the
    repo root with [lib bin bench examples]. *)
