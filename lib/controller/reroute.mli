(** The two fast-reroute mechanisms of §6.2.

    Both flip a flow onto a pre-installed alternate route by changing
    the destination MAC its packets carry; both cost a single message.

    - [Arp]: the controller packet-outs a {e spoofed unicast ARP
      request} to the flow's source host, claiming the destination IP
      is at the alternate's shadow MAC. The host updates its ARP cache
      (Linux performs MAC learning on unicast requests) and the very
      next segment uses the new route. No switch state at all.
    - [Openflow]: install an ingress rewrite rule at the source's edge
      switch. Takes effect only after the TCAM install latency, which
      is why Figure 16 shows it 2–3x slower. *)

type mechanism = Arp | Openflow

val mechanism_name : mechanism -> string

val apply :
  ?on_install:(unit -> unit) ->
  mechanism ->
  channel:Planck_openflow.Control_channel.t ->
  routing:Planck_topology.Routing.t ->
  key:Planck_packet.Flow_key.t ->
  new_mac:Planck_packet.Mac.t ->
  unit
(** Reroute flow [key] onto [new_mac]'s tree. Silently does nothing if
    the flow's source is not a testbed host. [on_install] runs when the
    mechanism takes hold at the network edge: the spoofed ARP enters the
    edge switch, or the OpenFlow rewrite rule finishes installing. *)
