(** A single lint finding: which rule fired, where, and why. *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. ["wall-clock"] *)
  severity : severity;
  file : string;  (** repo-relative path as given to the linter *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  message : string;
  symbol : string;
      (** Stable location-independent key for deep-tier findings (the
          qualified definition or export the finding is about, e.g.
          ["Planck_util__Ring.capacity"]); [""] for syntactic findings.
          Baseline entries match on [(rule, symbol)] so they survive
          line-number churn. *)
  classification : string;
      (** Shard-confinement class of the symbol for domain-tier
          findings (["shared-mutable"], ["atomic"], ...); [""]
          elsewhere. Carried into the JSON report as ["class"] so
          downstream tooling need not re-parse messages. *)
}

val v :
  ?symbol:string ->
  ?classification:string ->
  rule:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t
(** Constructor; [symbol] and [classification] default to [""]. *)

val severity_label : severity -> string
(** ["error"] or ["warning"]. *)

val compare_by_location : t -> t -> int
(** Order by file, then line, column and rule id — the report order. *)
