let default_prop_delay = Planck_util.Time.ns 300

let host_to_switch host switch ~port ~rate ~prop_delay =
  Host.connect host ~rate ~prop_delay ~deliver:(fun packet ->
      Switch.ingress switch ~port packet);
  Switch.connect switch ~port ~rate ~prop_delay
    ~deliver:(fun packet -> Host.ingress host packet)
    ()

let switch_to_switch sw_a ~port_a sw_b ~port_b ~rate ~prop_delay =
  Switch.connect sw_a ~port:port_a ~rate ~prop_delay
    ~deliver:(fun packet -> Switch.ingress sw_b ~port:port_b packet)
    ();
  Switch.connect sw_b ~port:port_b ~rate ~prop_delay
    ~deliver:(fun packet -> Switch.ingress sw_a ~port:port_a packet)
    ()

(* Cross-shard cable: each direction's transmit side hands departures to
   its shard channel (which schedules the arrival in the peer shard's
   wheel), so the local deliver path is never taken. *)
let switch_to_switch_remote sw_a ~port_a sw_b ~port_b ~rate ~prop_delay
    ~handoff_ab ~handoff_ba =
  Switch.connect sw_a ~port:port_a ~rate ~prop_delay ~handoff:handoff_ab
    ~deliver:ignore ();
  Switch.connect sw_b ~port:port_b ~rate ~prop_delay ~handoff:handoff_ba
    ~deliver:ignore ()

let switch_to_sink switch ~port sink ~rate ~prop_delay =
  Switch.connect switch ~port ~rate ~prop_delay
    ~deliver:(fun packet -> Sink.ingress sink packet)
    ()
