(** Two-tier bounded-state flow accounting for the collector.

    Every data sample first lands in a conservative-update
    {!Count_min} sketch; a flow is promoted to an exact
    {!Planck_collector.Flow_table} entry (the tier all collector
    queries and TE decisions read) only once its sketch estimate
    crosses [promote_bytes]. When a promoted flow goes idle its entry
    expires and the bytes it accumulated are folded back into the
    sketch. Resident state is therefore O(sketch + elephants) no
    matter how many mice churn through the switch — the property that
    lets one collector track millions of concurrent flows.

    Plugs into the collector as a
    {!Planck_collector.Collector.Custom_backend} via {!table_kind};
    with the default [Exact] backend nothing here runs. Per-switch
    occupancy, promotion/demotion, and estimate-error telemetry go to
    {!Planck_telemetry.Metrics.default} (subsystem ["sketch"]), and
    promotions/demotions are journaled when the default journal is
    enabled. *)

type config = {
  seed : int;  (** sketch hash seeds derive from this *)
  depth : int;
  width : int;  (** sketch geometry; see {!Count_min.create} *)
  promote_bytes : int;
      (** sketch estimate at which a flow earns an exact entry *)
  max_exact : int;
      (** hard cap on exact entries; at the cap, would-be promotions
          stay in the sketch and are counted as suppressed *)
  decay_interval : Planck_util.Time.t;
      (** epoch length between sketch counter halvings *)
  sweep_interval : Planck_util.Time.t;
      (** how often idle exact entries are swept (demoted) *)
}

val default_config : config
(** 4 x 16384 sketch, promote at 8 full-size segments, 8192 exact
    entries, 10 ms decay, 5 ms sweep. *)

type t

val create :
  ?config:config -> switch:int -> flow_timeout:Planck_util.Time.t -> unit -> t
(** One tier pair for one monitored switch. [flow_timeout] is the
    exact tier's idle timeout (the collector passes its own). *)

val sample :
  t ->
  key:Planck_packet.Flow_key.t ->
  now:Planck_util.Time.t ->
  bytes:int ->
  max_rate:Planck_util.Rate.t ->
  dst_mac:Planck_packet.Mac.t ->
  Planck_collector.Flow_table.entry option
(** Account one data sample. [Some entry] when the flow holds (or just
    earned) an exact entry; [None] while it lives in the sketch only. *)

val tick : t -> now:Planck_util.Time.t -> unit
(** Housekeeping clock, run before each sample: sketch decay epochs
    and idle-entry sweeps. Two integer compares when nothing is due. *)

val table_kind : ?config:config -> unit -> Planck_collector.Collector.table_kind
(** The [Custom_backend] factory to put in a collector config: builds
    one fresh {!t} per monitored switch. *)

val sketch : t -> Count_min.t

val exact_size : t -> int
(** Resident exact entries (promoted flows not yet swept). *)

val promotions : t -> int

val demotions : t -> int

val suppressed_promotions : t -> int
(** Promotions refused because the exact tier was at [max_exact]. *)
