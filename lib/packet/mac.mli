(** 48-bit Ethernet MAC addresses.

    Planck's traffic-engineering application provisions several "shadow"
    MAC addresses per host, one per pre-installed alternate route
    (paper §6.2); {!shadow} derives them deterministically from the base
    address. *)

type t
(** Immutable MAC address. Total ordering and equality are structural. *)

val of_int : int -> t
(** [of_int n] keeps the low 48 bits of [n]. *)

val to_int : t -> int

val of_string : string -> t
(** Parse ["aa:bb:cc:dd:ee:ff"]. Raises [Invalid_argument] on malformed
    input. *)

val to_string : t -> string

val broadcast : t
(** ff:ff:ff:ff:ff:ff *)

val host : int -> t
(** [host i] is the canonical (base) MAC address of host number [i] in
    the testbed: locally administered, unicast. *)

val shadow : t -> alt:int -> t
(** [shadow base ~alt] is the shadow MAC for alternate route [alt]
    (1-based) of the host whose base MAC is [base]. [shadow base ~alt:0]
    is [base] itself. Raises [Invalid_argument] for negative [alt]. *)

val base_of_shadow : t -> t * int
(** Inverse of {!shadow}: recover the base address and the alternate
    route index from any (possibly shadow) host MAC. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
