type t = float

let bps x = x
let kbps x = x *. 1e3
let mbps x = x *. 1e6
let gbps x = x *. 1e9
let to_gbps x = x /. 1e9

let tx_time rate ~bytes_ =
  if rate <= 0.0 then invalid_arg "Rate.tx_time: rate must be positive";
  let seconds = float_of_int (8 * bytes_) /. rate in
  let t = int_of_float (ceil (seconds *. 1e9)) in
  if bytes_ > 0 && t = 0 then 1 else t

let bytes_in rate d = int_of_float (rate *. Time.to_float_s d /. 8.0)

let of_bytes_per n d =
  if d <= 0 then invalid_arg "Rate.of_bytes_per: duration must be positive";
  float_of_int (8 * n) /. Time.to_float_s d

let pp ppf r =
  let a = abs_float r in
  if a >= 1e9 then Format.fprintf ppf "%.2fGbps" (r /. 1e9)
  else if a >= 1e6 then Format.fprintf ppf "%.2fMbps" (r /. 1e6)
  else if a >= 1e3 then Format.fprintf ppf "%.2fKbps" (r /. 1e3)
  else Format.fprintf ppf "%.0fbps" r
