(* Tests for the Planck umbrella API: testbed construction across
   topologies, scheme deployment, and experiment bookkeeping. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
open Planck

let testbed_variants () =
  let ft = Testbed.create (Testbed.paper_fat_tree ()) in
  Alcotest.(check int) "fat-tree hosts" 16 (Testbed.host_count ft);
  let opt = Testbed.create (Testbed.optimal ~hosts:8 ()) in
  Alcotest.(check int) "optimal hosts" 8 (Testbed.host_count opt);
  let jf =
    Testbed.create
      {
        Testbed.default_spec with
        Testbed.topology =
          Testbed.Jellyfish
            {
              Planck_topology.Jellyfish.num_switches = 8;
              switch_degree = 3;
              hosts_per_switch = 2;
            };
      }
  in
  Alcotest.(check int) "jellyfish hosts" 16 (Testbed.host_count jf);
  Alcotest.(check (float 1.0)) "link rate" 10.0
    (Rate.to_gbps (Testbed.link_rate ft))

let scheme_names () =
  Alcotest.(check string) "static" "Static" (Scheme.name Scheme.Static);
  Alcotest.(check string) "planck" "PlanckTE"
    (Scheme.name Scheme.planck_te_default);
  Alcotest.(check string) "poll 1s" "Poll-1s" (Scheme.name Scheme.poll_1s);
  Alcotest.(check string) "poll 100ms" "Poll-0.1s"
    (Scheme.name Scheme.poll_100ms)

let scheme_deployment_shapes () =
  let tb = Testbed.create (Testbed.paper_fat_tree ()) in
  let static = Scheme.deploy tb Scheme.Static in
  Alcotest.(check bool) "static has no controller" true
    (static.Scheme.controller = None && static.Scheme.poller = None);
  let tb2 = Testbed.create (Testbed.paper_fat_tree ()) in
  let te = Scheme.deploy tb2 Scheme.planck_te_default in
  Alcotest.(check bool) "planck has controller and te" true
    (te.Scheme.controller <> None && te.Scheme.te <> None);
  let tb3 = Testbed.create (Testbed.paper_fat_tree ()) in
  let poll = Scheme.deploy tb3 Scheme.poll_100ms in
  Alcotest.(check bool) "poll has poller only" true
    (poll.Scheme.poller <> None && poll.Scheme.controller = None)

let workload_names () =
  Alcotest.(check string) "stride" "stride(8)"
    (Experiment.workload_name (Experiment.Stride 8));
  Alcotest.(check string) "shuffle" "shuffle"
    (Experiment.workload_name (Experiment.Shuffle { concurrency = 2 }))

let experiment_bookkeeping () =
  let summary =
    Experiment.run
      ~spec:(Testbed.optimal ~hosts:8 ())
      ~scheme:Scheme.Static ~workload:(Experiment.Stride 4)
      ~size:(2 * 1024 * 1024) ~horizon:(Time.s 5) ()
  in
  Alcotest.(check int) "one flow per host" 8
    (List.length summary.Experiment.flows);
  Alcotest.(check bool) "completed" true summary.Experiment.all_completed;
  Alcotest.(check int) "no reroutes under static" 0
    summary.Experiment.reroutes;
  Alcotest.(check bool) "no shuffle data" true
    (summary.Experiment.host_done = None);
  Alcotest.(check bool) "avg sane" true
    (summary.Experiment.avg_goodput_gbps > 1.0
    && summary.Experiment.avg_goodput_gbps <= 10.0)

let scalability_guards () =
  Alcotest.check_raises "odd k" (Invalid_argument "x") (fun () ->
      try ignore (Scalability.fat_tree_plan ~k:7)
      with Invalid_argument _ -> raise (Invalid_argument "x"));
  Alcotest.check_raises "bad hosts per switch" (Invalid_argument "x")
    (fun () ->
      try
        ignore
          (Scalability.jellyfish_plan ~ports:8 ~hosts_per_switch:8 ~hosts:100)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let tests =
  [
    Alcotest.test_case "testbed variants" `Quick testbed_variants;
    Alcotest.test_case "scheme names" `Quick scheme_names;
    Alcotest.test_case "scheme deployment shapes" `Quick
      scheme_deployment_shapes;
    Alcotest.test_case "workload names" `Quick workload_names;
    Alcotest.test_case "experiment bookkeeping" `Quick experiment_bookkeeping;
    Alcotest.test_case "scalability guards" `Quick scalability_guards;
  ]
