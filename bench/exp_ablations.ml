(* Ablations of the design choices DESIGN.md calls out: mirror-port
   arbitration, monitor-port buffering (minbuffer sweep), the dynamic
   threshold alpha, the estimator's burst parameters, the TE congestion
   threshold and rerouting mechanism, and §9.2 preferential sampling. *)

open Exp_common
module Rate_estimator = Planck_collector.Rate_estimator
module Te = Planck_controller.Te
module Reroute = Planck_controller.Reroute
module Seq32 = Planck_packet.Seq32
open Planck

let mib = 1024 * 1024

(* ---- Mirror arbitration: FIFO vs per-source round-robin ---- *)

let sample_latency_under_load ~config ~seed =
  let m = micro_testbed ~hosts:8 ~config ~seed () in
  let trace = trace_senders m.tb [ 0; 1; 2 ] in
  let latencies = ref [] in
  Collector.set_tap m.collector (fun s ->
      match (s.Collector.key, s.Collector.seq32) with
      | Some key, Some seq when s.Collector.payload > 0 -> (
          match Hashtbl.find_opt trace.first_tx (key, seq) with
          | Some sent -> latencies := ms (s.Collector.rx - sent) :: !latencies
          | None -> ())
      | _ -> ());
  for i = 0 to 2 do
    ignore (saturating_flow m.tb ~src:i ~dst:(4 + i))
  done;
  Engine.run ~until:(Time.ms 30) m.tb.Testbed.engine;
  !latencies

let run_arbitration opts =
  section "Ablation: mirror arbitration (FIFO vs round-robin classes)";
  let measure arbitration =
    sample_latency_under_load
      ~config:{ Switch.default_config with Switch.mirror_arbitration = arbitration }
      ~seed:opts.seed
  in
  let fifo = measure Switch.Fifo and rr = measure Switch.Round_robin in
  Table.print ~header:[ "arbitration"; "median sample latency (ms)" ]
    [
      [ "FIFO (default)"; Printf.sprintf "%.2f" (Stats.median fifo) ];
      [ "round-robin"; Printf.sprintf "%.2f" (Stats.median rr) ];
    ];
  note "both give ~3.5 ms for steady flows; they differ for NEW flows:";
  note "RR classes let a fresh flow's copies bypass the backlog, FIFO";
  note "makes them wait — FIFO matches Fig 16's buffering-dominated";
  note "response observations."

(* ---- Minbuffer sweep ---- *)

let run_minbuffer opts =
  section "Ablation: monitor-port buffer cap (minbuffer, sec 9.2)";
  let rows =
    List.map
      (fun cap ->
        let config =
          { Switch.default_config with Switch.mirror_buffer_cap = cap }
        in
        let lats = sample_latency_under_load ~config ~seed:opts.seed in
        [
          (match cap with
          | None -> "firmware default"
          | Some c -> Printf.sprintf "%d KiB" (c / 1024));
          Printf.sprintf "%.2f" (Stats.median lats);
          string_of_int (List.length lats);
        ])
      [ Some (9 * 1024); Some (64 * 1024); Some (512 * 1024); Some (2 * mib); None ]
  in
  Table.print ~header:[ "mirror buffer cap"; "median latency (ms)"; "samples" ]
    rows;
  note "the cap trades sample freshness against nothing else the switch";
  note "needs — exactly the firmware feature the paper asks for."

(* ---- DT alpha sweep ---- *)

let run_alpha opts =
  section "Ablation: dynamic-threshold alpha (shared-buffer policy)";
  let rows =
    List.map
      (fun alpha ->
        let config = { Switch.default_config with Switch.dt_alpha = alpha } in
        let lats = sample_latency_under_load ~config ~seed:opts.seed in
        [
          Printf.sprintf "%.2f" alpha;
          Printf.sprintf "%.2f" (Stats.median lats);
        ])
      [ 0.125; 0.25; 0.5; 0.8; 1.5 ]
  in
  Table.print ~header:[ "alpha"; "median sample latency (ms)" ] rows;
  note "alpha sets the monitor port's buffer share and therefore the";
  note "buffered sample delay: ~alpha/(1+alpha) * 9MB / 10Gbps."

(* ---- Estimator parameters ---- *)

let estimator_on_synthetic ~min_gap ~max_burst =
  (* A steady 9.4 Gbps payload stream sampled 1-in-4: report how long
     until the first estimate and the estimate's error. *)
  let est = Rate_estimator.create ~min_gap ~max_burst () in
  let first = ref None in
  let last = ref None in
  let spacing = 4 * 1242 in
  for i = 0 to 2_000 do
    let time = i * spacing in
    match Rate_estimator.update est ~time ~seq32:(Seq32.wrap (i * 4 * 1460)) with
    | Some rate ->
        if !first = None then first := Some time;
        last := Some rate
    | None -> ()
  done;
  ( Option.map Time.to_float_us !first,
    Option.map (fun r -> 100.0 *. abs_float ((Rate.to_gbps r -. 9.4) /. 9.4)) !last )

let run_estimator_params _opts =
  section "Ablation: estimator burst parameters (min gap / max burst)";
  let rows =
    List.map
      (fun (gap_us, burst_us) ->
        let first, err =
          estimator_on_synthetic ~min_gap:(Time.us gap_us)
            ~max_burst:(Time.us burst_us)
        in
        [
          Printf.sprintf "%d/%d" gap_us burst_us;
          (match first with
          | Some us -> Printf.sprintf "%.0f" us
          | None -> "never");
          (match err with Some e -> Printf.sprintf "%.1f" e | None -> "-");
        ])
      [ (50, 200); (100, 400); (200, 700); (400, 1400); (1000, 3500) ]
  in
  Table.print
    ~header:[ "gap/burst (us)"; "first estimate (us)"; "steady error (%)" ]
    rows;
  note "the paper's 200/700 us pair balances estimate latency against";
  note "slow-start jitter; smaller windows estimate sooner but noisier."

(* ---- TE threshold and mechanism ---- *)

let run_te_variants opts =
  section "Ablation: TE congestion threshold and rerouting mechanism";
  let run config =
    let s =
      Experiment.run
        ~spec:(Testbed.paper_fat_tree ~seed:opts.seed ())
        ~scheme:(Scheme.Planck_te config) ~workload:(Experiment.Stride 8)
        ~size:(25 * mib) ~horizon:(Time.s 20) ()
    in
    (s.Experiment.avg_goodput_gbps, s.Experiment.reroutes)
  in
  let rows =
    List.map
      (fun (label, config) ->
        let avg, reroutes = run config in
        [ label; Printf.sprintf "%.2f" avg; string_of_int reroutes ])
      [
        ("thr 0.3 / ARP", { Te.default_config with Te.congestion_threshold = 0.3 });
        ("thr 0.5 / ARP", Te.default_config);
        ("thr 0.75 / ARP", { Te.default_config with Te.congestion_threshold = 0.75 });
        ("thr 0.9 / ARP", { Te.default_config with Te.congestion_threshold = 0.9 });
        ("thr 0.5 / OpenFlow", { Te.default_config with Te.mechanism = Reroute.Openflow });
      ]
  in
  Table.print ~header:[ "variant"; "avg tput (Gbps)"; "reroutes" ] rows;
  note "lower thresholds detect during the ramp and reroute earlier;";
  note "OpenFlow's TCAM latency costs a little of the small-flow win."

(* ---- Preferential sampling ---- *)

let syn_latency ~priority ~seed =
  let config =
    { Switch.default_config with Switch.mirror_priority_special = priority }
  in
  let m = micro_testbed ~hosts:10 ~config ~seed () in
  for i = 0 to 2 do
    ignore (saturating_flow m.tb ~src:i ~dst:(5 + i))
  done;
  Engine.run ~until:(Time.ms 20) m.tb.Testbed.engine;
  let seen = ref None in
  Collector.subscribe_flow_events m.collector (fun e ->
      if e.Collector.kind = Collector.Flow_started && !seen = None then
        seen := Some e.Collector.time);
  let t0 = Engine.now m.tb.Testbed.engine in
  ignore (saturating_flow m.tb ~src:3 ~dst:8);
  Engine.run ~until:(t0 + Time.ms 20) m.tb.Testbed.engine;
  Option.map (fun t -> ms (t - t0)) !seen

let run_priority opts =
  section "Ablation: preferential SYN/FIN sampling (sec 9.2)";
  let show = function Some v -> Printf.sprintf "%.2f" v | None -> "unseen" in
  Table.print ~header:[ "special CoS queue"; "flow-start observed after (ms)" ]
    [
      [ "off"; show (syn_latency ~priority:false ~seed:opts.seed) ];
      [ "on"; show (syn_latency ~priority:true ~seed:opts.seed) ];
    ];
  note "with the priority queue, flow starts are seen in ~0.1 ms even";
  note "though data samples queue behind ~3.5 ms of backlog."

let run opts =
  run_arbitration opts;
  run_minbuffer opts;
  run_alpha opts;
  run_estimator_params opts;
  run_te_variants opts;
  run_priority opts
