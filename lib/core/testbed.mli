(** One-call construction of a ready-to-use simulated testbed: topology
    built, PAST + shadow-MAC routing installed, ARP caches converged,
    TCP endpoints on every host.

    The defaults mirror the paper's hardware: a 16-host three-tier
    fat-tree of 5-port logical switches at 10 Gbps (§7.1), or a single
    non-blocking switch (the "Optimal" reference and the §5
    microbenchmark setup). *)

type topology =
  | Fat_tree of { k : int }
  | Single_switch of { hosts : int }
  | Jellyfish of Planck_topology.Jellyfish.spec

type spec = {
  topology : topology;
  link_rate : Planck_util.Rate.t;
  seed : int;
  switch_config : Planck_netsim.Switch.config;
  host_stack : Planck_netsim.Host.stack;
  alts : int option;
      (** alternate routes per destination; default: all cores on a
          fat-tree, 1 on a single switch, 4 on Jellyfish *)
  shards : int option;
      (** run on a {!Planck_netsim.Shard} group of this many domains
          (partitioned per {!Planck_topology.Partition}); [None] is the
          classic single-domain engine *)
  core_prop_delay : Planck_util.Time.t option;
      (** fat-tree agg-core link delay override (the sharded lookahead
          bound); applied identically at any shard count so runs stay
          comparable *)
}

val default_spec : spec
(** 16-host fat-tree (k = 4), 10 Gbps, seed 1. *)

val paper_fat_tree : ?seed:int -> unit -> spec
val optimal : ?seed:int -> ?hosts:int -> unit -> spec
(** The 16 hosts on one non-blocking switch. *)

val microbench : ?seed:int -> ?hosts:int -> ?rate:Planck_util.Rate.t ->
  ?switch_config:Planck_netsim.Switch.config -> unit -> spec
(** Single switch for the §5 microbenchmarks (defaults: 16 hosts,
    10 Gbps). *)

type t = {
  spec : spec;
  engine : Planck_netsim.Engine.t;
  fabric : Planck_topology.Fabric.t;
  routing : Planck_topology.Routing.t;
  endpoints : Planck_tcp.Endpoint.t array;
  prng : Planck_util.Prng.t;
  shard : Planck_netsim.Shard.group option;
      (** the shard group when [spec.shards] was set; [engine] is then
          shard 0's engine *)
}

val create : spec -> t

val host_count : t -> int
val link_rate : t -> Planck_util.Rate.t

val run_until : t -> Planck_util.Time.t -> unit
(** Advance simulated time (absolute). *)
