module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Flow_key = Planck_packet.Flow_key

type t = {
  window : Time.t;
  samples : Agent.sample Queue.t;
  mutable first_sample : Time.t; (* -1 until a sample arrives *)
}

let create ?(window = Time.s 1) () =
  { window; samples = Queue.create (); first_sample = -1 }

let prune t ~now =
  while
    (not (Queue.is_empty t.samples))
    && (Queue.peek t.samples).Agent.time < now - t.window
  do
    ignore (Queue.pop t.samples)
  done

let add t sample =
  if t.first_sample < 0 then t.first_sample <- sample.Agent.time;
  Queue.push sample t.samples;
  prune t ~now:sample.Agent.time

let scaled_bytes matching t ~now =
  prune t ~now;
  let bytes = ref 0 in
  Queue.iter
    (fun s ->
      if matching s then bytes := !bytes + (s.Agent.wire_size * s.Agent.sampling_rate))
    t.samples;
  !bytes

(* Average over the aggregation window, shortened while less than a
   full window of samples exists yet. *)
let effective_window t ~now =
  if t.first_sample < 0 then t.window
  else max Time.microsecond (min t.window (now - t.first_sample))

let rate_of_bytes t ~now bytes =
  if bytes = 0 then 0.0 else Rate.of_bytes_per bytes (effective_window t ~now)

let flow_rate t ~now key =
  rate_of_bytes t ~now
    (scaled_bytes (fun s -> s.Agent.key = Some key) t ~now)

let link_utilization t ~now ~out_port =
  rate_of_bytes t ~now
    (scaled_bytes (fun s -> s.Agent.out_port = out_port) t ~now)

let samples_in_window t ~now =
  prune t ~now;
  Queue.length t.samples

let expected_error ~samples =
  if samples <= 0 then infinity
  else 196.0 *. sqrt (1.0 /. float_of_int samples)
