(** Shared packet-buffer accounting for a switch ASIC.

    Models the Broadcom-Trident-style memory management the paper
    describes (§5.1): a small static reservation per output port plus a
    large shared region governed by dynamic-threshold (DT) admission — a
    queue may grow while its shared usage stays below
    [alpha * (shared remaining)]. This reproduces two behaviours the
    paper leans on: a single congested port consumes up to
    [alpha/(1+alpha)] of the pool (~4 MB of 9 MB), and per-port share
    shrinks as more ports congest.

    A per-port hard cap supports the "minbuffer" configuration (§9.2):
    capping the monitor port's buffer to nearly nothing. *)

type t

val create :
  total:int -> reservation:int -> alpha:float -> ports:int -> t
(** [create ~total ~reservation ~alpha ~ports]: [total] bytes overall,
    [reservation] bytes guaranteed per port (static region), DT
    parameter [alpha]. Raises [Invalid_argument] if the static region
    exceeds [total] or [alpha <= 0]. *)

val set_port_cap : t -> port:int -> int option -> unit
(** Hard upper bound on one port's total occupancy (minbuffer mode). *)

val try_alloc : t -> port:int -> bytes_:int -> bool
(** Admit [bytes_] to [port]'s queue if the reservation, the DT
    threshold and any cap allow; updates accounting on success. *)

val release : t -> port:int -> bytes_:int -> unit
(** Return [bytes_] from [port]'s queue to the pool. Raises
    [Invalid_argument] if releasing more than the port holds. *)

val port_used : t -> port:int -> int
val shared_used : t -> int

val shared_high_water : t -> int
(** Largest value {!shared_used} has ever reached — the occupancy
    high-water mark the switch telemetry gauge reports. *)

val total_used : t -> int
val capacity : t -> int
