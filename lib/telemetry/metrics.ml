(* The typed metric registry. Handles are registered once (at module or
   object creation time) and updated on hot paths; every update is O(1)
   and starts with a single branch on the registry's enabled flag, so a
   disabled registry costs one load+test per instrumentation point. *)

type key = { k_subsystem : string; k_name : string; k_label : string }

type registry = {
  mutable on : bool;
  entries : (key, entry) Hashtbl.t;
}

and entry = { key : key; data : data }

and data = C of counter | G of gauge | H of histogram

and counter = { c_reg : registry; mutable c_value : int }

and gauge = {
  g_reg : registry;
  mutable g_value : float;
  mutable g_max : float;
}

and histogram = {
  h_reg : registry;
  h_buckets : int array; (* h_buckets.(i) counts values in [2^i, 2^(i+1)) *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

let create ?(enabled = true) () = { on = enabled; entries = Hashtbl.create 64 }

(* The process-wide registry every built-in instrumentation point uses.
   Disabled by default: an uninstrumented run pays only the branch. *)
let default = create ~enabled:false ()

let set_enabled reg on = reg.on <- on
let enabled reg = reg.on

let bucket_count = 63

let register reg ~subsystem ~name ~label make =
  let key = { k_subsystem = subsystem; k_name = name; k_label = label } in
  match Hashtbl.find_opt reg.entries key with
  | Some entry -> entry.data
  | None ->
      let data = make () in
      Hashtbl.replace reg.entries key { key; data };
      data

let kind_mismatch key =
  invalid_arg
    (Printf.sprintf "Metrics: %s/%s[%s] already registered with another kind"
       key.k_subsystem key.k_name key.k_label)

let counter ?(registry = default) ~subsystem ~name ?(label = "") () =
  match
    register registry ~subsystem ~name ~label (fun () ->
        C { c_reg = registry; c_value = 0 })
  with
  | C c -> c
  | G _ | H _ ->
      kind_mismatch { k_subsystem = subsystem; k_name = name; k_label = label }

let gauge ?(registry = default) ~subsystem ~name ?(label = "") () =
  match
    register registry ~subsystem ~name ~label (fun () ->
        G { g_reg = registry; g_value = 0.0; g_max = neg_infinity })
  with
  | G g -> g
  | C _ | H _ ->
      kind_mismatch { k_subsystem = subsystem; k_name = name; k_label = label }

let histogram ?(registry = default) ~subsystem ~name ?(label = "") () =
  match
    register registry ~subsystem ~name ~label (fun () ->
        H
          {
            h_reg = registry;
            h_buckets = Array.make bucket_count 0;
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = 0;
          })
  with
  | H h -> h
  | C _ | G _ ->
      kind_mismatch { k_subsystem = subsystem; k_name = name; k_label = label }

module Counter = struct
  let add c n = if c.c_reg.on then c.c_value <- c.c_value + n
  let incr c = add c 1
  let value c = c.c_value
end

module Gauge = struct
  let set g v =
    if g.g_reg.on then begin
      g.g_value <- v;
      if v > g.g_max then g.g_max <- v
    end

  let set_int g v = if g.g_reg.on then set g (float_of_int v)
  let value g = g.g_value
  let max_value g = if Float.equal g.g_max neg_infinity then 0.0 else g.g_max
end

module Histogram = struct
  (* Log2 bucketing: bucket 0 holds values <= 1, bucket i (i >= 1) holds
     [2^i, 2^(i+1)). The loop runs at most 62 iterations, so updates are
     O(1) with a small constant. *)
  let bucket_index v =
    if v <= 1 then 0
    else begin
      let i = ref 0 and v = ref v in
      while !v > 1 do
        v := !v lsr 1;
        incr i
      done;
      !i
    end

  let bucket_lo i = if i = 0 then 0 else 1 lsl i
  let bucket_hi i = (1 lsl (i + 1)) - 1

  let observe h v =
    if h.h_reg.on then begin
      let v = if v < 0 then 0 else v in
      let i = bucket_index v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end

  let count h = h.h_count
  let sum h = h.h_sum
  let min_value h = if h.h_count = 0 then 0 else h.h_min
  let max_value h = h.h_max

  let mean h =
    if h.h_count = 0 then 0.0
    else float_of_int h.h_sum /. float_of_int h.h_count

  (* Upper bound of the bucket where the cumulative count crosses q;
     exact values are not retained, so this is a <= 2x estimate. *)
  let quantile h q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of range";
    if h.h_count = 0 then 0
    else begin
      let target = q *. float_of_int h.h_count in
      let acc = ref 0 and result = ref (bucket_hi (bucket_count - 1)) in
      (try
         for i = 0 to bucket_count - 1 do
           acc := !acc + h.h_buckets.(i);
           if float_of_int !acc >= target then begin
             result := Stdlib.min h.h_max (bucket_hi i);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let nonzero_buckets h =
    let out = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.h_buckets.(i) > 0 then
        out := (bucket_lo i, bucket_hi i, h.h_buckets.(i)) :: !out
    done;
    !out
end

(* ---- Snapshots ---- *)

type value =
  | Counter_value of int
  | Gauge_value of { value : float; max : float }
  | Histogram_value of {
      count : int;
      sum : int;
      min : int;
      max : int;
      buckets : (int * int * int) list;
    }

type snapshot = {
  subsystem : string;
  name : string;
  label : string;
  value : value;
}

let snapshot_entry entry =
  let value =
    match entry.data with
    | C c -> Counter_value c.c_value
    | G g -> Gauge_value { value = g.g_value; max = Gauge.max_value g }
    | H h ->
        Histogram_value
          {
            count = h.h_count;
            sum = h.h_sum;
            min = Histogram.min_value h;
            max = h.h_max;
            buckets = Histogram.nonzero_buckets h;
          }
  in
  {
    subsystem = entry.key.k_subsystem;
    name = entry.key.k_name;
    label = entry.key.k_label;
    value;
  }

let snapshot reg =
  Hashtbl.fold (fun _ entry acc -> snapshot_entry entry :: acc) reg.entries []
  |> List.sort (fun a b ->
         match String.compare a.subsystem b.subsystem with
         | 0 -> (
             match String.compare a.name b.name with
             | 0 -> String.compare a.label b.label
             | c -> c)
         | c -> c)

let reset reg =
  Hashtbl.iter
    (fun _ entry ->
      match entry.data with
      | C c -> c.c_value <- 0
      | G g ->
          g.g_value <- 0.0;
          g.g_max <- neg_infinity
      | H h ->
          Array.fill h.h_buckets 0 bucket_count 0;
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- max_int;
          h.h_max <- 0)
    reg.entries

let size reg = Hashtbl.length reg.entries
