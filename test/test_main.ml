let () =
  Alcotest.run "planck"
    [
      ("util", Test_util.tests);
      ("telemetry", Test_telemetry.tests);
      ("profile", Test_profile.tests);
      ("bench-gate", Test_gate.tests);
      ("packet", Test_packet.tests);
      ("netsim", Test_netsim.tests);
      ("tcp", Test_tcp.tests);
      ("tcp-internals", Test_tcp_internals.tests);
      ("topology", Test_topology.tests);
      ("collector", Test_collector.tests);
      ("sketch", Test_sketch.tests);
      ("controller", Test_controller.tests);
      ("sflow", Test_sflow.tests);
      ("openflow", Test_openflow.tests);
      ("workloads", Test_workloads.tests);
      ("integration", Test_integration.tests);
      ("extensions", Test_extensions.tests);
      ("baselines", Test_baselines.tests);
      ("core", Test_core.tests);
      ("invariants", Test_invariants.tests);
      ("shard", Test_shard.tests);
      ("placement", Test_placement.tests);
      ("smoke", Test_smoke.tests);
      ("lint", Test_lint.tests);
      ("lint-deep", Test_lint_deep.tests);
      ("lint-domain", Test_lint_domain.tests);
      ("lint-ownership", Test_lint_ownership.tests);
    ]
