(** Text and JSON rendering of a lint run. *)

val text_of :
  findings:Lint_finding.t list -> suppressed:int -> files:int -> string
(** One [file:line:col: severity [rule] message] line per finding plus a
    summary line. *)

val json_of :
  findings:Lint_finding.t list -> suppressed:int -> files:int -> string
(** Machine-readable report:
    [{"version":1,"findings":[{rule,severity,file,line,col,message}...],
      "files":n,"errors":n,"warnings":n,"suppressed":n}]. *)

val rules_text : unit -> string
(** Human-readable rule catalog for [--list-rules]. *)
