(* The domain-safety / shard-confinement tier.

   Input: the classified toplevel bindings of every lib/ unit
   ([Lint_cmt_index.bindings]) plus the hot closure the deep tier
   already computes. Each piece of module-level state lands in a
   four-point lattice:

     immutable < atomic < engine-scoped < shared-mutable

   - immutable: the binding's type is transitively immutable and its
     module-init expression allocates no mutable cell;
   - atomic: the only mutability is behind Stdlib.Atomic (directly, or
     captured by a closure at module init);
   - engine-scoped: a function whose result type carries mutable
     structure but whose module-init captures nothing mutable — the
     constructor/accessor discipline: fresh state per call, confined to
     whoever holds the handle;
   - shared-mutable: a plain mutable global (ref/Hashtbl/mutable
     record), or a closure that captured one at module init.

   Three rules fire on the shared-mutable class; everything else is
   inventory only. Like the dead-export rule, findings carry a stable
   symbol so the committed baseline survives line churn. *)

module Ix = Lint_cmt_index
module Deep = Lint_deep_rules
module F = Lint_finding
module SS = Set.Make (String)

type cls = Immutable | Atomic | Engine_scoped | Shared_mutable

let class_label = function
  | Immutable -> "immutable"
  | Atomic -> "atomic"
  | Engine_scoped -> "engine-scoped"
  | Shared_mutable -> "shared-mutable"

let classify (b : Ix.binding) =
  if b.Ix.b_arrow then
    match b.Ix.b_alloc with
    | Ix.Mut_yes -> Some Shared_mutable (* closure captured a mutable cell *)
    | Ix.Mut_atomic -> Some Atomic (* captured only Atomic state *)
    | Ix.Mut_none -> (
        match b.Ix.b_type_mut with
        | Ix.Mut_none -> None (* a plain function — not state *)
        | Ix.Mut_atomic | Ix.Mut_yes -> Some Engine_scoped)
  else
    match Ix.mut_join b.Ix.b_type_mut b.Ix.b_alloc with
    | Ix.Mut_yes -> Some Shared_mutable
    | Ix.Mut_atomic -> Some Atomic
    | Ix.Mut_none -> Some Immutable

type entry = {
  e_id : string;
  e_file : string;
  e_line : int;
  e_class : cls;
  e_type : string;
  e_hot : bool;
}

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let in_lib (b : Ix.binding) = has_prefix "lib/" b.Ix.b_file

(* ---- Shard roots ----

   Under the sharded engine every closure handed to Domain.spawn is a
   per-shard entry point: the spawned body runs concurrently with the
   other shard domains, so anything it reaches is exactly as exposed as
   the per-packet path. The domain tier therefore seeds its
   reachability closure with the deep tier's hot roots PLUS every def
   that calls Domain.spawn. *)

let spawn_callers ix =
  let acc = ref [] in
  Ix.iter_edges ix (fun caller succs ->
      if SS.exists (Ix.suffix_matches ~pattern:"Domain.spawn") succs then
        acc := caller :: !acc);
  List.sort_uniq String.compare !acc

let shard_closure dr =
  let ix = Deep.index dr in
  Lint_callgraph.forward ix ~roots:(Deep.roots dr @ spawn_callers ix)

let inventory ?closure dr =
  let ix = Deep.index dr in
  let hot = match closure with Some c -> c | None -> shard_closure dr in
  Ix.bindings ix
  |> List.filter in_lib
  |> List.filter_map (fun (b : Ix.binding) ->
         match classify b with
         | None -> None
         | Some c ->
             Some
               {
                 e_id = b.Ix.b_id;
                 e_file = b.Ix.b_file;
                 e_line = b.Ix.b_line;
                 e_class = c;
                 e_type = b.Ix.b_rendered;
                 e_hot = Lint_callgraph.mem hot b.Ix.b_id;
               })

(* ---- The three rules ---- *)

let mk ~rule ~cls (e : entry) msg =
  F.v ~rule ~severity:F.Error ~file:e.e_file ~line:e.e_line ~col:0
    ~symbol:e.e_id ~classification:(class_label cls) msg

let shared_global_findings shared =
  List.map
    (fun e ->
      mk ~rule:"shared-mutable-global" ~cls:Shared_mutable e
        (Printf.sprintf
           "module-level mutable state `%s` (%s) is writable by every \
            domain; confine it to an engine/handle, wrap it in Atomic, or \
            baseline it with a justification"
           e.e_id e.e_type))
    shared

let unsafe_reach_findings hot shared =
  List.filter_map
    (fun e ->
      if not e.e_hot then None
      else
        Some
          (mk ~rule:"shard-unsafe-reach" ~cls:Shared_mutable e
             (Printf.sprintf
                "shared-mutable `%s` is reachable from a per-packet/per-event \
                 hot root or a Domain.spawn shard body (%s); this path runs \
                 on every shard once the engine is sharded across domains"
                e.e_id
                (Lint_callgraph.chain_string hot e.e_id))))
    shared

let nonatomic_findings dr shared =
  let shared_ids =
    List.fold_left (fun s e -> SS.add e.e_id s) SS.empty shared
  in
  let by_id =
    List.fold_left (fun m e -> (e.e_id, e) :: m) [] shared
  in
  (* join the ref-op events per (enclosing def, target binding): a
     read-modify-write is an explicit incr/decr, or a read AND a write
     of the same target inside the same def *)
  let groups : (string * string, Ix.ref_op list * Ix.event) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (ev : Ix.event) ->
      match ev.Ix.e_kind with
      | Ix.Ref_op { op; target } when SS.mem target shared_ids ->
          let key = (ev.Ix.e_def, target) in
          let ops =
            match Hashtbl.find_opt groups key with
            | Some (ops, _) -> ops
            | None -> []
          in
          (* the event list is newest-first, so the last replace leaves
             the earliest occurrence as the witness location *)
          Hashtbl.replace groups key (op :: ops, ev)
      | _ -> ())
    (Ix.events (Deep.index dr));
  Hashtbl.fold
    (fun (def, target) (ops, witness) acc ->
      let rmw = List.mem Ix.Rrmw ops in
      let rw = List.mem Ix.Rread ops && List.mem Ix.Rwrite ops in
      if not (rmw || rw) then acc
      else
        let entry = List.assoc target by_id in
        F.v ~rule:"nonatomic-counter" ~severity:F.Error
          ~file:witness.Ix.e_file ~line:witness.Ix.e_line
          ~col:witness.Ix.e_col ~symbol:target
          ~classification:(class_label Shared_mutable)
          (Printf.sprintf
             "read-modify-write on shared-mutable `%s` (%s) in `%s`; a \
              concurrent shard can interleave between the read and the \
              write — use Atomic.fetch_and_add or a compare_and_set loop"
             target entry.e_type def)
        :: acc)
    groups []

let findings ?entries dr =
  let hot = shard_closure dr in
  let entries =
    match entries with Some e -> e | None -> inventory ~closure:hot dr
  in
  let shared = List.filter (fun e -> e.e_class = Shared_mutable) entries in
  shared_global_findings shared
  @ unsafe_reach_findings hot shared
  @ nonatomic_findings dr shared
  |> List.sort F.compare_by_location

(* ---- Inventory renderers ---- *)

let inventory_text entries =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "# planck-lint shard-confinement inventory (generated: planck_lint \
     --deep --shared-state-out)\n\
     # One line per toplevel lib/ binding: <class> <symbol> -- <type> \
     [hot]\n\
     # Classes: immutable < atomic < engine-scoped < shared-mutable.\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s -- %s%s\n" (class_label e.e_class) e.e_id
           e.e_type
           (if e.e_hot then " [hot]" else "")))
    entries;
  Buffer.contents buf

(* minimal JSON string escaping; symbols and rendered OCaml types are
   ASCII in practice, this keeps the output valid if one is not *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let inventory_json entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"version\":1,\"shared_state\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"symbol\":\"%s\",\"class\":\"%s\",\"file\":\"%s\",\"line\":%d,\"type\":\"%s\",\"hot\":%b}"
           (json_escape e.e_id)
           (class_label e.e_class)
           (json_escape e.e_file) e.e_line (json_escape e.e_type) e.e_hot))
    entries;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Parse a committed inventory back to (class, symbol) pairs — the
   line-number- and type-free projection the self-check compares. *)
let load_inventory path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line -> (
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc (lineno + 1)
            else
              match String.index_opt line ' ' with
              | None ->
                  Error
                    (Printf.sprintf "%s:%d: expected `<class> <symbol> ...`"
                       path lineno)
              | Some i ->
                  let cls = String.sub line 0 i in
                  let rest =
                    String.sub line (i + 1) (String.length line - i - 1)
                  in
                  let sym =
                    match String.index_opt rest ' ' with
                    | None -> rest
                    | Some j -> String.sub rest 0 j
                  in
                  go ((cls, sym) :: acc) (lineno + 1))
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go [] 1)
