(** The §9.1 scalability analysis: how many collector servers a Planck
    deployment needs at datacenter scale, and what dedicating one
    monitor port per switch costs in host count.

    The paper's arithmetic: a two-socket collector server hosts 14
    collector instances (one 10 Gbps port each); a k = 62 three-level
    fat-tree of 64-port switches (one port reserved for monitoring)
    supports 59,582 hosts on 4,805 switches and therefore needs 344
    collector servers — 0.58 % additional machines. A full-bisection
    Jellyfish with the same host count needs 3,505 switches and 251
    collectors (0.42 %). *)

type plan = {
  hosts : int;
  switches : int;
  collector_servers : int;
  additional_machines_pct : float;  (** collectors / hosts *)
}

val collectors_per_server : int
(** 14: the paper's port/core budget for one 2U collector server. *)

val fat_tree_plan : k:int -> plan
(** Three-level fat-tree of (k+2)-port switches, one port per switch
    reserved for monitoring (so the tree is built with arity [k]).
    Raises [Invalid_argument] for odd [k]. *)

val jellyfish_plan : ports:int -> hosts_per_switch:int -> hosts:int -> plan
(** Jellyfish of [ports]-port switches (one reserved for monitoring)
    carrying [hosts_per_switch] hosts each, sized for [hosts] hosts.
    The paper's full-bisection sizing for 64-port switches uses 17
    hosts per switch. *)

type shard_plan = {
  shards : int;
  switches_per_shard : int array;
  hosts_per_shard : int array;
  collector_servers_per_shard : int array;
      (** [ceil (switches / 14)] per shard — collectors follow their
          switch's shard, so each shard's collector servers are sized
          from its own switch count. *)
  imbalance_pct : float;
      (** Overfill of the fullest shard: [100 * (max hosts / mean - 1)].
          0 when hosts divide evenly. *)
}

val shard_plan : plan -> shards:int -> shard_plan
(** Split a deployment plan over [shards] simulation shards using the
    same contiguous near-equal blocks as [Partition] ([i * shards / n]),
    so block sizes differ by at most one. Raises [Invalid_argument] if
    [shards < 1]. *)

val monitor_port_host_cost : fat_tree_k:int -> float * float
(** [(fat_tree_pct, jellyfish_pct)]: fraction of hosts given up by
    reserving a monitor port, for the same number of switches. The
    paper reports 1.4 % (fat-tree) and 5.5 % (Jellyfish). *)
