(** The sharded engine: one {!Engine} event loop per OCaml domain,
    synchronized with conservative lookahead.

    A {!group} owns [n] engines (labelled ["shard0"].. so each shard's
    instance metrics are distinguishable), one per-shard journal, and
    the SPSC channels carrying cross-shard frames. Simulated time
    advances in lockstep windows of
    [W = min (lookahead, 10ms)], where the lookahead bound is the
    smallest propagation delay of any cross-shard link: a frame
    transmitted in window [\[T, T+W)] arrives no earlier than [T+W], so
    every shard can safely run a whole window without hearing from its
    peers, and a barrier per window is the only synchronization.

    Determinism: channel entries are stamped with the transmit window,
    and a shard entering window [r] consumes exactly the entries
    stamped [< r] — which the barrier guarantees are all present — in
    channel registration order. The set and order of events each wheel
    processes is therefore a pure function of the simulation, and with
    one shard the whole protocol degenerates to the single-domain
    [Engine.run] chunk loop, event for event. *)

type group

val create : shards:int -> group
(** [shards] engines named ["shard<i>"], no channels yet. Raises
    [Invalid_argument] if [shards < 1]. *)

val shards : group -> int

val engine : group -> int -> Engine.t
(** The shard's engine. Shard 0's engine doubles as the group's
    reference clock (phase markers, post-run readouts). *)

val journal : group -> int -> Planck_telemetry.Journal.t
(** The shard's private journal; {!run} redirects
    [Journal.default] into it on that shard's domain. *)

val lookahead : group -> Planck_util.Time.t option
(** Smallest cross-link propagation delay registered so far; [None]
    until the first {!channel} (e.g. a 1-shard group), in which case
    windows fall back to the 10 ms chunk. *)

val channel :
  group ->
  src:int ->
  dst:int ->
  prop_delay:Planck_util.Time.t ->
  deliver:(Planck_packet.Packet.t -> unit) ->
  Planck_util.Time.t -> Planck_packet.Packet.t -> unit
(** Register one direction of a cross-shard link and return its
    handoff (what {!Txport.create}'s [?handoff] wants): called on the
    [src] shard's domain with a frame and its arrival time, it enqueues
    the frame for the [dst] shard, which schedules [deliver] in its own
    wheel at that time. Channels must all be registered before {!run}
    (wiring happens on the spawning domain). [prop_delay] must be
    positive — it tightens the group lookahead. *)

val run :
  group ->
  horizon:Planck_util.Time.t ->
  local_done:(int -> bool) ->
  unit
(** Spawn one domain per shard and advance all engines in lockstep
    windows until every shard reports [local_done] at a window boundary
    or the horizon is reached (whichever comes first; the clocks end
    equal on the boundary). [local_done shard] runs on that shard's
    domain and must touch only state owned by it. Each domain redirects
    [Journal.default] into its shard journal for the duration.
    Exceptions raised inside a shard abort the whole group and re-raise
    (the first one, by shard id) on the caller. *)

val merge_journals : group -> into:Planck_telemetry.Journal.t -> unit
(** Fold the per-shard journals into [into], deterministically ordered
    by (sim-time, shard id) — see {!Planck_telemetry.Journal.merge_into}. *)
