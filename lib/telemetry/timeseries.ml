module Time = Planck_util.Time
module Ring = Planck_util.Ring

type series = { name : string; probe : unit -> float }

type t = {
  interval : Time.t;
  mutable series : series list; (* reversed: newest registration first *)
  ring : (Time.t * float array) Ring.t;
  mutable evicted : int;
}

let create ?(capacity = 65536) ~interval () =
  if interval <= 0 then invalid_arg "Timeseries.create: interval <= 0";
  { interval; series = []; ring = Ring.create ~capacity; evicted = 0 }

let interval t = t.interval

let add_series t ~name probe =
  if String.exists (fun c -> c = ',' || c = '\n') name then
    invalid_arg "Timeseries.add_series: name contains ',' or newline";
  t.series <- { name; probe } :: t.series

let names t = List.rev_map (fun s -> s.name) t.series

let sample t ~now =
  let n = List.length t.series in
  let row = Array.make n 0.0 in
  (* series is newest-first; fill the row back to front so column order
     matches registration order. *)
  List.iteri
    (fun i s -> row.(n - 1 - i) <- s.probe ())
    t.series;
  if Ring.is_full t.ring then begin
    ignore (Ring.pop t.ring);
    t.evicted <- t.evicted + 1
  end;
  ignore (Ring.push t.ring (now, row))

let start t ~every ~clock =
  every ~period:t.interval (fun () -> sample t ~now:(clock ()))

let rows t = Ring.to_list t.ring
let evicted t = t.evicted

let clear t =
  Ring.clear t.ring;
  t.evicted <- 0

(* ---- export / import ---- *)

(* Reuse the JSON float emitter: shortest representation that
   round-trips the double, so of_csv (float_of_string) is lossless. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else if Float.is_nan v then "nan"
  else
    let s = Printf.sprintf "%.15g" v in
    if Float.equal (float_of_string s) v then s
    else Printf.sprintf "%.17g" v

let to_csv t =
  let names = names t in
  let width = List.length names in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_s";
  List.iter
    (fun n ->
      Buffer.add_char buf ',';
      Buffer.add_string buf n)
    names;
  Buffer.add_char buf '\n';
  List.iter
    (fun (ts, row) ->
      Buffer.add_string buf (float_str (Time.to_float_s ts));
      for i = 0 to width - 1 do
        Buffer.add_char buf ',';
        Buffer.add_string buf
          (if i < Array.length row then float_str row.(i) else "nan")
      done;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("interval_ns", Json.Int t.interval);
      ("names", Json.List (List.map (fun n -> Json.String n) (names t)));
      ( "rows",
        Json.List
          (List.map
             (fun (ts, row) ->
               Json.List
                 (Json.Int ts
                  :: Array.to_list (Array.map (fun v -> Json.Float v) row)))
             (rows t)) );
    ]

let of_csv s =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> Error "empty CSV"
  | header :: data -> (
      match String.split_on_char ',' header with
      | "time_s" :: names ->
          let parse_row i line =
            match String.split_on_char ',' line with
            | time :: cells -> (
                let parse c = float_of_string_opt (String.trim c) in
                match parse time with
                | None -> Error (Printf.sprintf "line %d: bad time %S" i time)
                | Some t ->
                    let vals = List.map parse cells in
                    if List.exists Option.is_none vals then
                      Error (Printf.sprintf "line %d: bad value" i)
                    else
                      Ok (t, Array.of_list (List.filter_map Fun.id vals)))
            | [] -> Error (Printf.sprintf "line %d: empty" i)
          in
          let rec go i acc = function
            | [] -> Ok (names, List.rev acc)
            | line :: rest -> (
                match parse_row i line with
                | Ok row -> go (i + 1) (row :: acc) rest
                | Error e -> Error e)
          in
          go 2 [] data
      | _ -> Error "CSV header must start with time_s")
