(** The Planck SDN controller and its traffic-engineering
    application. *)

module Net_view = Net_view
module Reroute = Reroute
module Te = Te
module Controller = Controller
