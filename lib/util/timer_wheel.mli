(** A hierarchical timer wheel layered over the binary min-heap.

    The event-queue behind {!Engine}: O(1) insert and cancel for the
    short horizon (two wheel levels), with a min-heap overflow tier for
    the far future. Pop order is exactly {!Heap}'s — ascending key,
    strict FIFO among equal keys — across all tiers, so swapping the
    wheel in for the bare heap changes no event ordering.

    Keys must never go below the last popped key (the engine's clock
    guarantees this); behaviour is still total for smaller keys, which
    simply become due immediately. *)

type config = {
  granularity_bits : int;  (** tick width: [1 lsl granularity_bits] ns *)
  l0_bits : int;  (** level-0 slot count bits; [0] disables the wheel *)
  l1_bits : int;  (** level-1 slot count bits *)
}

val default_config : config
(** 1.024us ticks, ~4.2ms level-0 horizon, ~17.2s level-1 horizon. *)

val heap_only : config
(** Wheel disabled: a plain min-heap. The pre-wheel scheduler, kept as
    the equivalence-test and benchmark baseline. *)

type 'a t

type 'a handle
(** A scheduled entry. Exactly one of: pending, cancelled, fired. *)

val create :
  ?config:config -> ?on_compaction:(unit -> unit) -> unit -> 'a t
(** [on_compaction] fires after each lazy-delete compaction sweep (for
    telemetry). Raises [Invalid_argument] on out-of-range config. *)

val length : 'a t -> int
(** Live (pending) entries; cancelled residents are not counted. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> 'a handle
(** Insert with priority [key] (nanoseconds). O(1) inside the wheel
    horizon, O(log n) in overflow. *)

val cancel : 'a t -> 'a handle -> bool
(** Lazy-delete: O(1) state flip; the entry is reclaimed when its slot
    drains, or by a compaction sweep once cancelled residents outnumber
    live entries (past a small floor). Returns [false] if the handle
    was already cancelled or had fired. *)

val is_pending : 'a handle -> bool

val key : 'a handle -> int

val seq : 'a handle -> int
(** Insertion sequence number (the FIFO tie-break among equal keys). *)

val min_key : 'a t -> int option
(** Key of the next live entry, or [None] if none are pending. May
    advance internal cursors; never changes pop order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the next live entry: minimum key, FIFO among
    equal keys. Cancelled entries are skipped and reclaimed. *)

(** {2 Introspection} — feeds per-engine telemetry and tests. *)

val cancelled_resident : 'a t -> int
(** Cancelled entries not yet reclaimed. *)

val total_cancelled : 'a t -> int
(** Successful {!cancel} calls since creation. *)

val compactions : 'a t -> int
(** Compaction sweeps since creation. *)
