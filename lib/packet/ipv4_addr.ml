type t = int

let mask32 = 0xFFFF_FFFF
let of_int n = n land mask32
let to_int t = t

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let byte x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | Some _ | None -> invalid_arg ("Ipv4_addr.of_string: bad octet " ^ x)
      in
      List.fold_left (fun acc x -> (acc lsl 8) lor byte x) 0 [ a; b; c; d ]
  | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s)

let to_string t =
  (* planck-lint: allow hot-alloc -- journal labels and error messages only; data-plane code keys on the int *)
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let host i = of_int (0x0A00_0000 lor (i land 0xFFFF))
let equal = Int.equal
let compare = Int.compare

(* Already a 32-bit int; identity beats a structural hash walk. *)
let hash (t : t) = t land max_int
(* planck-lint: allow hot-alloc -- journal-label formatting, guarded at every call site *)
let pp ppf t = Format.pp_print_string ppf (to_string t)

let host_id t =
  if t lsr 16 = 0x0A00 then Some (t land 0xFFFF) else None
