module Flow_key = Planck_packet.Flow_key
module Ipv4_addr = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing
module Fabric = Planck_topology.Fabric
module Actions = Planck_openflow.Actions

type mechanism = Arp | Openflow

let mechanism_name = function Arp -> "ARP" | Openflow -> "OpenFlow"

let apply ?(on_install = fun () -> ()) mechanism ~channel ~routing ~key
    ~new_mac =
  match Ipv4_addr.host_id key.Flow_key.src_ip with
  | None -> ()
  | Some src ->
      let fabric = Routing.fabric routing in
      let edge, port = Fabric.host_attachment fabric ~host:src in
      let edge_switch = Fabric.switch fabric edge in
      (match mechanism with
      | Arp ->
          Actions.spoof_arp ~on_injected:on_install channel edge_switch ~port
            ~target:(Fabric.host fabric src)
            ~pretend_ip:key.Flow_key.dst_ip ~pretend_mac:new_mac
      | Openflow ->
          Actions.install_flow_rewrite channel edge_switch ~key
            ~to_mac:new_mac ~on_installed:on_install)
