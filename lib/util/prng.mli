(** A deterministic, splittable pseudo-random number generator.

    Experiments must be reproducible run-to-run, so every stochastic
    component (workload generators, ECMP hashing, jitter models) draws
    from an explicitly seeded [Prng.t] rather than the global [Random]
    state. The core is SplitMix64, which is fast and has no shared
    state. *)

type t

val create : seed:int -> t
(** A generator seeded with [seed]. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] is a new generator whose stream is independent of the
    subsequent outputs of [t]. Used to give each experiment run its own
    stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty array. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val derangement : t -> int -> int array
(** [permutation] with no fixed points ([p.(i) <> i] for all [i]) —
    used for random-bijection workloads where no host sends to itself.
    Raises [Invalid_argument] if [n < 2]. *)

val seed_of_string : string -> int
(** FNV-1a of the bytes: a deterministic seed for a named component
    (e.g. a switch), stable across runs and OCaml releases — unlike
    [Hashtbl.hash]. *)

