(* Reachability over the def/ref graph built by [Lint_cmt_index].

   Two closures are needed by the deep rules:

   - forward, from the per-packet roots: "everything the switch ingress
     path can call" — the hot set;
   - backward, from determinism sources: "everything that (transitively)
     calls a wall-clock read" — the tainted set.

   Both run the same BFS and keep a parent map so every finding can cite
   a witness chain (root -> ... -> offender), which is what makes a
   whole-program finding actionable. *)

module SS = Set.Make (String)
module SM = Map.Make (String)

type closure = {
  reached : SS.t;
  parent : string SM.t;  (* node -> predecessor on a shortest chain *)
  roots : SS.t;
}

let forward ix ~roots =
  let roots = SS.of_list roots in
  let parent = ref SM.empty in
  let reached = ref SS.empty in
  let q = Queue.create () in
  SS.iter
    (fun r ->
      if not (SS.mem r !reached) then begin
        reached := SS.add r !reached;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    SS.iter
      (fun succ ->
        if not (SS.mem succ !reached) then begin
          reached := SS.add succ !reached;
          parent := SM.add succ n !parent;
          Queue.add succ q
        end)
      (Lint_cmt_index.edges_of ix n)
  done;
  { reached = !reached; parent = !parent; roots }

let backward ix ~roots =
  (* invert the edge table once, then reuse the same BFS *)
  let preds : (string, SS.t ref) Hashtbl.t = Hashtbl.create 1024 in
  Lint_cmt_index.iter_edges ix (fun caller succs ->
      SS.iter
        (fun succ ->
          match Hashtbl.find_opt preds succ with
          | Some s -> s := SS.add caller !s
          | None -> Hashtbl.replace preds succ (ref (SS.singleton caller)))
        succs);
  let roots = SS.of_list roots in
  let parent = ref SM.empty in
  let reached = ref SS.empty in
  let q = Queue.create () in
  SS.iter
    (fun r ->
      if not (SS.mem r !reached) then begin
        reached := SS.add r !reached;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    let ps =
      match Hashtbl.find_opt preds n with Some s -> !s | None -> SS.empty
    in
    SS.iter
      (fun p ->
        if not (SS.mem p !reached) then begin
          reached := SS.add p !reached;
          parent := SM.add p n !parent;
          Queue.add p q
        end)
      ps
  done;
  { reached = !reached; parent = !parent; roots }

let mem c id = SS.mem id c.reached
let elements c = SS.elements c.reached

let chain c id =
  if not (SS.mem id c.reached) then []
  else
    let rec up acc n =
      if SS.mem n c.roots then n :: acc
      else
        match SM.find_opt n c.parent with
        | Some p -> up (n :: acc) p
        | None -> n :: acc
    in
    up [] id

let chain_string c id =
  match chain c id with [] -> id | l -> String.concat " -> " l
