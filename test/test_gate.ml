(* The perf-trajectory gate: row parsing and serialisation, the
   tolerance comparator with per-row overrides, the committed
   BENCH_*.json trajectory, and the bench binary's --check exit codes —
   a synthetically injected slowdown must fail the gate (the
   acceptance witness), and PLANCK_BENCH_NO_GATE must report without
   enforcing. *)

module Gate = Planck_telemetry.Bench_gate
module Json = Planck_telemetry.Json

let r ?ns id = { Gate.id; name = id; ns_per_op = ns }

let statuses cmps =
  List.map
    (fun c ->
      let label =
        match c.Gate.status with
        | Gate.Improved _ -> "improved"
        | Gate.In_band _ -> "in-band"
        | Gate.Regressed _ -> "regressed"
        | Gate.New_row -> "new"
        | Gate.Removed_row -> "removed"
        | Gate.Missing_estimate -> "missing"
        | Gate.No_baseline_estimate -> "null-baseline"
      in
      (c.Gate.cmp_id, label))
    cmps

(* ---- slug / ids ---- *)

let test_slug () =
  Alcotest.(check string)
    "punctuation collapses" "packet-serialize-to-wire"
    (Gate.slug "Packet serialize (to wire!)");
  Alcotest.(check string) "edges trimmed" "a-b" (Gate.slug "--A  b__");
  Alcotest.(check string) "already kebab" "cms-update" (Gate.slug "cms-update")

(* ---- the comparator, one row per status ---- *)

let test_comparator_statuses () =
  let baseline =
    [
      r ~ns:100. "fast";
      r ~ns:100. "slow";
      r ~ns:100. "steady";
      r ~ns:100. "gone";
      r ~ns:100. "lost";
      r "null-base";
    ]
  in
  let current =
    [
      r ~ns:50. "fast";
      r ~ns:200. "slow";
      r ~ns:110. "steady";
      r "lost";
      r ~ns:70. "null-base";
      r ~ns:33. "fresh";
    ]
  in
  let cmps = Gate.compare_rows ~noise_floor_ns:0. ~baseline ~current () in
  Alcotest.(check (list (pair string string)))
    "every status, baseline order then new rows"
    [
      ("fast", "improved");
      ("slow", "regressed");
      ("steady", "in-band");
      ("gone", "removed");
      ("lost", "missing");
      ("null-base", "null-baseline");
      ("fresh", "new");
    ]
    (statuses cmps);
  Alcotest.(check bool) "regressions fail the gate" false (Gate.passes cmps);
  Alcotest.(check bool)
    "improvements, new rows and null baselines pass" true
    (Gate.passes
       (Gate.compare_rows
          ~baseline:[ r ~ns:100. "fast"; r "null-base" ]
          ~current:[ r ~ns:50. "fast"; r ~ns:70. "null-base"; r ~ns:1. "fresh" ]
          ()));
  Alcotest.(check (list (pair string string)))
    "the absolute noise floor absorbs clock-granularity jitter"
    [ ("tiny", "in-band"); ("big", "regressed") ]
    (statuses
       (Gate.compare_rows ~noise_floor_ns:5.
          ~baseline:[ r ~ns:20. "tiny"; r ~ns:1000. "big" ]
          ~current:[ r ~ns:27. "tiny"; r ~ns:1300. "big" ]
          ()));
  let report = Gate.render_check cmps in
  Alcotest.(check bool)
    "report carries the verdict" true
    (String.length report > 0
    &&
    let needle = "bench gate: FAIL" in
    let n = String.length needle and h = String.length report in
    let rec scan i =
      i + n <= h && (String.sub report i n = needle || scan (i + 1))
    in
    scan 0)

let test_tolerance_and_overrides () =
  let baseline = [ r ~ns:100. "x"; r ~ns:100. "y" ] in
  let current = [ r ~ns:120. "x"; r ~ns:120. "y" ] in
  Alcotest.(check (list (pair string string)))
    "+20% regresses under the default +/-15% band"
    [ ("x", "regressed"); ("y", "regressed") ]
    (statuses (Gate.compare_rows ~noise_floor_ns:0. ~baseline ~current ()));
  Alcotest.(check (list (pair string string)))
    "a per-row override widens only its row"
    [ ("x", "in-band"); ("y", "regressed") ]
    (statuses
       (Gate.compare_rows ~noise_floor_ns:0. ~overrides:[ ("x", 0.30) ]
          ~baseline ~current ()));
  Alcotest.(check (list (pair string string)))
    "the default band is adjustable"
    [ ("x", "in-band"); ("y", "in-band") ]
    (statuses
       (Gate.compare_rows ~noise_floor_ns:0. ~tolerance:0.25 ~baseline ~current
          ()))

let test_parse_override () =
  (match Gate.parse_override "switch-forward-mirror=0.3" with
  | Ok (id, frac) ->
      Alcotest.(check string) "id" "switch-forward-mirror" id;
      Alcotest.(check (float 1e-9)) "fraction" 0.3 frac
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Gate.parse_override s with
      | Ok _ -> Alcotest.failf "%S must be rejected" s
      | Error _ -> ())
    [ "no-equals"; "=0.3"; "x=abc"; "x=-1" ]

(* Pre-id baselines only carry display names (their ids parse as name
   slugs); a current run with curated ids must still join. *)
let test_name_fallback_join () =
  let name = "switch forward+mirror" in
  let baseline = [ { Gate.id = Gate.slug name; name; ns_per_op = Some 100. } ] in
  let current = [ { Gate.id = "switch-fwd"; name; ns_per_op = Some 105. } ] in
  Alcotest.(check (list (pair string string)))
    "joined by display name, no spurious new row"
    [ ("switch-forward-mirror", "in-band") ]
    (statuses (Gate.compare_rows ~baseline ~current ()))

(* ---- JSON shapes ---- *)

let test_rows_json_round_trip () =
  let rows =
    [
      { Gate.id = "a"; name = "A row"; ns_per_op = Some 12.5 };
      { Gate.id = "b"; name = "B (no estimate)"; ns_per_op = None };
    ]
  in
  (match Gate.rows_of_json (Gate.rows_to_json rows) with
  | Ok parsed ->
      Alcotest.(check bool)
        "round-trips, null estimate included" true (parsed = rows)
  | Error e -> Alcotest.fail e);
  match Json.of_string {|{"micro":[{"name":"Some Name","ns_per_op":3.0}]}|} with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
      match Gate.rows_of_json doc with
      | Ok [ { Gate.id; ns_per_op = Some ns; _ } ] ->
          Alcotest.(check string) "missing id defaults to slug" "some-name" id;
          Alcotest.(check (float 1e-9)) "estimate" 3.0 ns
      | Ok _ -> Alcotest.fail "expected exactly one row"
      | Error e -> Alcotest.fail e)

(* ---- the committed trajectory ----

   Tests run from _build/default/test; the BENCH_*.json files live in
   the repo root, which is not part of the build tree — walk up until
   both dune-project and bench files appear (same spirit as the lint
   repo-clean check) and skip quietly in a bare sandbox. *)

let repo_root () =
  let rec up d =
    if
      Sys.file_exists (Filename.concat d "dune-project")
      && Gate.bench_files ~dir:d <> []
    then Some d
    else
      let parent = Filename.dirname d in
      if String.equal parent d then None else up parent
  in
  up (Sys.getcwd ())

let test_committed_trajectory () =
  match repo_root () with
  | None -> ()
  | Some root ->
      let files = Gate.bench_files ~dir:root in
      Alcotest.(check bool)
        "trajectory has committed bench files" true
        (List.length files >= 1);
      List.iter
        (fun path ->
          match Gate.load_rows ~path with
          | Error e -> Alcotest.failf "%s does not parse: %s" path e
          | Ok rows ->
              Alcotest.(check bool)
                (path ^ " has micro rows") true
                (List.length rows > 0))
        files;
      (match Gate.latest_bench ~dir:root with
      | None -> Alcotest.fail "latest_bench disagrees with bench_files"
      | Some latest -> (
          match Gate.load_rows ~path:latest with
          | Error e -> Alcotest.fail e
          | Ok rows -> (
              (* the schema the emitter writes must round-trip *)
              match Gate.rows_of_json (Gate.rows_to_json rows) with
              | Ok parsed ->
                  Alcotest.(check bool)
                    "latest baseline round-trips" true (parsed = rows)
              | Error e -> Alcotest.fail e)));
      match Gate.trend ~dir:root with
      | Error e -> Alcotest.fail e
      | Ok md ->
          Alcotest.(check bool)
            "trend table renders a header row" true
            (String.length md > 0
            &&
            let needle = "| micro |" in
            let n = String.length needle and h = String.length md in
            let rec scan i =
              i + n <= h && (String.sub md i n = needle || scan (i + 1))
            in
            scan 0)

let test_trend_folds_id_change () =
  let dir = Filename.temp_file "planck_trend" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write file contents =
    let oc = open_out (Filename.concat dir file) in
    output_string oc contents;
    close_out oc
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* BENCH_1 predates ids (row keys on the name slug); BENCH_2
         carries a curated id for the same display name. *)
      write "BENCH_1.json"
        {|{"micro":[{"name":"packet serialize (to wire)","ns_per_op":10.0}]}|};
      write "BENCH_2.json"
        {|{"micro":[{"id":"packet-serialize","name":"packet serialize (to wire)","ns_per_op":12.0}]}|};
      match Gate.trend ~dir with
      | Error e -> Alcotest.fail e
      | Ok md ->
          let lines =
            List.filter
              (fun l -> String.length l > 0 && l.[0] = '|')
              (String.split_on_char '\n' md)
          in
          (* header + separator + ONE folded data row *)
          Alcotest.(check int) "one series, not two" 3 (List.length lines);
          Alcotest.(check bool)
            "both columns populated" true
            (match List.rev lines with
            | last :: _ ->
                last = "| `packet-serialize-to-wire` | 10.0 | 12.0 |"
            | [] -> false))

(* ---- the bench binary's exit codes (test-enforced acceptance) ---- *)

let bench_exe () =
  (* cwd is _build/default/test under dune runtest, the workspace root
     under dune exec — accept either. *)
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "bench/main.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bench/main.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let write_baseline path ns =
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ( "micro",
              Gate.rows_to_json
                [
                  {
                    Gate.id = "packet-serialize";
                    name = "packet serialize (to wire)";
                    ns_per_op = Some ns;
                  };
                ] );
          ]));
  close_out oc

let test_check_exit_codes () =
  match bench_exe () with
  | None -> () (* bench binary not in this build invocation *)
  | Some exe ->
      let base = Filename.temp_file "planck_gate" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove base)
        (fun () ->
          let run env =
            Sys.command
              (Printf.sprintf
                 "%s%s --check --only packet-serialize --against %s \
                  >/dev/null 2>&1"
                 env (Filename.quote exe) (Filename.quote base))
          in
          write_baseline base 1e9;
          Alcotest.(check int) "generous baseline passes" 0 (run "");
          write_baseline base 1e-3;
          Alcotest.(check int) "synthetic slowdown fails the gate" 1 (run "");
          Alcotest.(check int)
            "PLANCK_BENCH_NO_GATE reports without enforcing" 0
            (run "PLANCK_BENCH_NO_GATE=1 "))

let tests =
  [
    Alcotest.test_case "slug" `Quick test_slug;
    Alcotest.test_case "comparator covers every status" `Quick
      test_comparator_statuses;
    Alcotest.test_case "tolerance bands and overrides" `Quick
      test_tolerance_and_overrides;
    Alcotest.test_case "override parsing" `Quick test_parse_override;
    Alcotest.test_case "pre-id baselines join by name" `Quick
      test_name_fallback_join;
    Alcotest.test_case "row JSON round-trips" `Quick test_rows_json_round_trip;
    Alcotest.test_case "committed trajectory parses and trends" `Quick
      test_committed_trajectory;
    Alcotest.test_case "trend folds the id scheme change" `Quick
      test_trend_folds_id_change;
    Alcotest.test_case "bench --check exit codes" `Slow test_check_exit_codes;
  ]
