(* The self-profiling span layer: deterministic-clock nesting and
   self-time attribution, the disabled fast path (records nothing,
   allocates nothing), exception unwinding, frame-stack overflow
   safety, and round-tripping rows through the exported metrics
   snapshot. *)

module Metrics = Planck_telemetry.Metrics
module Profile = Planck_telemetry.Profile
module Export = Planck_telemetry.Export

let now = ref 0

(* Every enabled-path test runs under a deterministic clock and
   restores the global profiler state on the way out, so test order
   never matters. *)
let with_fake_clock f =
  Profile.set_clock (Some (fun () -> !now));
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.set_clock None)
    f

let row rows name =
  match List.find_opt (fun r -> String.equal r.Profile.r_name name) rows with
  | Some r -> r
  | None -> Alcotest.failf "no summary row for span %s" name

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* ---- nesting and self-time ---- *)

let test_nested_self_time () =
  let registry = Metrics.create ~enabled:true () in
  let outer = Profile.register ~registry "outer" in
  let inner = Profile.register ~registry "inner" in
  Alcotest.(check bool)
    "register dedups by (registry, name)" true
    (Profile.register ~registry "outer" == outer);
  with_fake_clock (fun () ->
      now := 0;
      Profile.enter outer;
      now := 100;
      Profile.enter inner;
      now := 400;
      Profile.exit inner;
      now := 1000;
      Profile.exit outer);
  let rows = Profile.summary ~registry () in
  let o = row rows "outer" and i = row rows "inner" in
  Alcotest.(check int) "inner calls" 1 i.Profile.r_calls;
  Alcotest.(check int) "inner total" 300 i.Profile.r_total_ns;
  Alcotest.(check int) "inner self = total (leaf)" 300 i.Profile.r_self_ns;
  Alcotest.(check int) "outer total is inclusive" 1000 o.Profile.r_total_ns;
  Alcotest.(check int)
    "outer self excludes the nested span" 700 o.Profile.r_self_ns;
  Alcotest.(check int) "outer max tracks the span" 1000 o.Profile.r_max_ns;
  match rows with
  | first :: _ ->
      Alcotest.(check string)
        "summary sorts by self time" "outer" first.Profile.r_name
  | [] -> Alcotest.fail "summary is empty"

let test_with_span () =
  let registry = Metrics.create ~enabled:true () in
  let span = Profile.register ~registry "scoped" in
  with_fake_clock (fun () ->
      now := 0;
      Alcotest.(check int)
        "with_span returns the body's value" 42
        (Profile.with_span span (fun () ->
             now := 25;
             42)));
  Alcotest.(check int)
    "span recorded" 25
    (row (Profile.summary ~registry ()) "scoped").Profile.r_total_ns

(* A span abandoned by an exception records nothing; the enclosing
   span's exit unwinds past it and the stack stays consistent for
   whatever comes next. *)
let test_exception_unwind () =
  let registry = Metrics.create ~enabled:true () in
  let outer = Profile.register ~registry "outer" in
  let abandoned = Profile.register ~registry "abandoned" in
  with_fake_clock (fun () ->
      now := 0;
      (try
         Profile.with_span outer (fun () ->
             now := 10;
             Profile.enter abandoned;
             now := 50;
             raise Stdlib.Exit)
       with Stdlib.Exit -> ());
      Profile.enter abandoned;
      now := 80;
      Profile.exit abandoned);
  let rows = Profile.summary ~registry () in
  let o = row rows "outer" and a = row rows "abandoned" in
  Alcotest.(check int) "outer still recorded" 1 o.Profile.r_calls;
  Alcotest.(check int)
    "outer window runs to the handler" 50 o.Profile.r_total_ns;
  Alcotest.(check int)
    "abandoned frame dropped, later span clean" 1 a.Profile.r_calls;
  Alcotest.(check int) "later span's own window" 30 a.Profile.r_total_ns

let test_depth_overflow () =
  let registry = Metrics.create ~enabled:true () in
  let span = Profile.register ~registry "deep" in
  with_fake_clock (fun () ->
      for _ = 1 to Profile.max_depth + 8 do
        Profile.enter span
      done;
      for _ = 1 to Profile.max_depth + 8 do
        Profile.exit span
      done);
  Alcotest.(check int)
    "frames beyond max_depth are dropped, extra exits are no-ops"
    Profile.max_depth
    (row (Profile.summary ~registry ()) "deep").Profile.r_calls

(* ---- the disabled fast path ---- *)

let test_disabled_records_nothing () =
  let registry = Metrics.create ~enabled:true () in
  let span = Profile.register ~registry "cold" in
  Profile.set_enabled false;
  Alcotest.(check bool) "enabled reads back" false (Profile.enabled ());
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Profile.enter span;
    Profile.exit span
  done;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "disabled spans allocate nothing (saw %.0f words)" words)
    true (words < 256.);
  Alcotest.(check int)
    "disabled spans record nothing" 0
    (row (Profile.summary ~registry ()) "cold").Profile.r_calls

(* ---- snapshot round trip ---- *)

let test_rows_from_metrics_json () =
  let registry = Metrics.create ~enabled:true () in
  let io = Profile.register ~registry "io" in
  let cpu = Profile.register ~registry "cpu" in
  with_fake_clock (fun () ->
      now := 0;
      Profile.enter io;
      now := 500;
      Profile.exit io;
      Profile.enter cpu;
      now := 800;
      Profile.exit cpu);
  match Profile.rows_of_metrics_json (Export.metrics_to_json registry) with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      let direct = Profile.summary ~registry () in
      Alcotest.(check int)
        "same rows as the live summary" (List.length direct) (List.length rows);
      List.iter2
        (fun (a : Profile.row) (b : Profile.row) ->
          Alcotest.(check string) "name" a.r_name b.r_name;
          Alcotest.(check int) "calls" a.r_calls b.r_calls;
          Alcotest.(check int) "total" a.r_total_ns b.r_total_ns;
          Alcotest.(check int) "self" a.r_self_ns b.r_self_ns;
          Alcotest.(check int) "max" a.r_max_ns b.r_max_ns;
          Alcotest.(check int) "minor" a.r_minor_words b.r_minor_words)
        direct rows

let test_rows_rejects_non_snapshot () =
  match Profile.rows_of_metrics_json (Planck_telemetry.Json.String "nope") with
  | Ok _ -> Alcotest.fail "a bare string is not a metrics snapshot"
  | Error _ -> ()

let test_render () =
  let registry = Metrics.create ~enabled:true () in
  let span = Profile.register ~registry "render-me" in
  with_fake_clock (fun () ->
      now := 0;
      Profile.enter span;
      now := 2_000_000;
      Profile.exit span);
  let report = Profile.render (Profile.summary ~registry ()) in
  Alcotest.(check bool)
    "report names the span" true
    (contains ~needle:"render-me" report);
  Alcotest.(check bool)
    "empty report says how to get one" true
    (contains ~needle:"--profile" (Profile.render []))

let test_reset_drops_scoped_spans () =
  let registry = Metrics.create ~enabled:true () in
  let scoped = Profile.register ~registry "resettable" in
  with_fake_clock (fun () ->
      now := 0;
      Profile.enter scoped;
      now := 10;
      Profile.exit scoped);
  Alcotest.(check int)
    "scoped span visible before reset" 1
    (List.length (Profile.summary ~registry ()));
  Profile.reset ();
  Alcotest.(check int)
    "scoped span dropped by reset" 0
    (List.length (Profile.summary ~registry ()));
  Alcotest.(check bool)
    "default-registry toplevel handles survive reset" true
    (Profile.register "reset-survivor" == Profile.register "reset-survivor")

(* Setup: clear scoped-registry spans leaked by any earlier test before
   this one registers its own, so test order never matters. *)
let test_case name speed f =
  Alcotest.test_case name speed (fun () ->
      Profile.reset ();
      f ())

let tests =
  [
    test_case "nested spans attribute self time" `Quick test_nested_self_time;
    test_case "reset drops scoped-registry spans" `Quick
      test_reset_drops_scoped_spans;
    test_case "with_span brackets and returns" `Quick test_with_span;
    test_case "exception unwinds abandoned frames" `Quick test_exception_unwind;
    test_case "frame-stack overflow is safe" `Quick test_depth_overflow;
    test_case "disabled path records and allocates nothing" `Quick
      test_disabled_records_nothing;
    test_case "rows round-trip via metrics JSON" `Quick
      test_rows_from_metrics_json;
    test_case "non-snapshot JSON rejected" `Quick test_rows_rejects_non_snapshot;
    test_case "render report" `Quick test_render;
  ]
