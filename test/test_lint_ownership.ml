(* The ownership / transfer-safety tier: one positive and one negative
   fixture per rule (including the aliased-binding use-after-transfer
   and the single-root SPSC false-positive guard), the inventory
   round-trips, and the repo self-check against the committed
   tools/lint/ownership.txt.

   Fixtures are type-checked in-process against the stdlib environment
   (same harness as test_lint_domain); transfer points match by dotted
   suffix, so a fixture-local [module Spsc] stands in for
   [Planck_util.Spsc]. Fixture files live under [lib/] so the tier's
   lib-only scope applies. *)

module Index = Planck_lint_lib.Lint_cmt_index
module Deep = Planck_lint_lib.Lint_deep_rules
module Own = Planck_lint_lib.Lint_ownership_rules
module Finding = Planck_lint_lib.Lint_finding

let index_of sources =
  let ix = Index.load ~dirs:[] in
  List.iter
    (fun (unit_name, file, source) ->
      Index.add_typed_source ix ~unit_name ~file ~source)
    sources;
  ix

let prepare source =
  Deep.prepare ~hot_roots:[]
    (index_of [ ("Fix", "lib/fix/fix.ml", source) ])

let syms ~rule findings =
  List.filter_map
    (fun f ->
      if String.equal f.Finding.rule rule then Some f.Finding.symbol else None)
    findings
  |> List.sort_uniq String.compare

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* A fixture-local SPSC stand-in: the rules match transfer points by
   dotted suffix, so [Fix.Spsc.push] is a transfer point too. *)
let spsc_prelude =
  {|
module Spsc = struct
  type 'a t = { mutable d : 'a option }
  let create () = { d = None }
  let push t v = t.d <- Some v
  let pop t = t.d
end
|}

(* ---- use-after-transfer ---- *)

let uat_fixture =
  spsc_prelude
  ^ {|
type frame = { mutable seq : int }
type tag = { label : int }
let chan : frame Spsc.t = Spsc.create ()
let ichan : tag Spsc.t = Spsc.create ()
let consume (_ : frame) = ()
let bad f = Spsc.push chan f; f.seq <- f.seq + 1
let bad_alias f = let g = f in Spsc.push chan g; f.seq
let ok_before f = let n = f.seq in Spsc.push chan f; n
let ok_call f = Spsc.push chan f; consume f
let ok_imm r = Spsc.push ichan r; r.label
|}

let test_use_after_transfer () =
  let fs = Own.findings (prepare uat_fixture) in
  Alcotest.(check (list string))
    "the direct and the aliased stale use fire; the use-before, the \
     plain call and the immutable payload do not"
    [ "Fix.bad.f"; "Fix.bad_alias.g" ]
    (syms ~rule:"use-after-transfer" fs)

let timer_fixture =
  {|
type timer = { mutable armed : bool }
module Timer = struct
  let cancel (t : timer) = t.armed <- false
  let rearm (t : timer) = t.armed <- true
end
let bad t = Timer.cancel t; t.armed
let ok t = Timer.cancel t; Timer.rearm t
|}

let test_timer_cancel_is_transfer () =
  let fs = Own.findings (prepare timer_fixture) in
  Alcotest.(check (list string))
    "reading the record after cancel fires; handing it to rearm (the \
     reuse idiom) does not"
    [ "Fix.bad.t" ]
    (syms ~rule:"use-after-transfer" fs)

(* ---- spsc-role-confinement ---- *)

let spsc_bad_fixture =
  spsc_prelude
  ^ {|
let chan : int Spsc.t = Spsc.create ()
let shard_loop () = Spsc.push chan 1
let launch () = ignore (Domain.spawn shard_loop)
let inject () = Spsc.push chan 2
let consume () = Spsc.pop chan
|}

let test_spsc_two_producer_roots_fire () =
  let fs = Own.findings (prepare spsc_bad_fixture) in
  Alcotest.(check (list string))
    "a shard-root push plus a main-side push on one channel fires for \
     the producer role only"
    [ "Fix.chan:producer" ]
    (syms ~rule:"spsc-role-confinement" fs)

(* The false-positive guard: N shard instances of ONE shard-body def
   are a single root to the callgraph, and a single root driving both
   roles is statically clean — that case belongs to the dynamic
   [Spsc.set_debug] check, not this rule. *)
let spsc_single_root_fixture =
  spsc_prelude
  ^ {|
let chan : int Spsc.t = Spsc.create ()
let worker () = Spsc.push chan 1; ignore (Spsc.pop chan)
let launch () = ignore (Domain.spawn worker)
|}

let test_spsc_single_root_is_clean () =
  let fs = Own.findings (prepare spsc_single_root_fixture) in
  Alcotest.(check (list string))
    "one root on both roles stays clean (dynamic check's territory)" []
    (syms ~rule:"spsc-role-confinement" fs)

(* ---- blocking-in-shard-body ---- *)

let blocking_fixture =
  {|
let m = Mutex.create ()
let body () = Mutex.lock m; Mutex.unlock m
let launch () = ignore (Domain.spawn body)
let report () = print_endline "done"
|}

let test_blocking_in_shard_body () =
  let dr = prepare blocking_fixture in
  let fs = Own.findings dr in
  Alcotest.(check (list string))
    "Mutex.lock in the spawned closure fires; the cold reporter and \
     Mutex.unlock do not"
    [ "Fix.body:Mutex.lock" ]
    (syms ~rule:"blocking-in-shard-body" fs);
  let f =
    List.find
      (fun f -> String.equal f.Finding.rule "blocking-in-shard-body")
      fs
  in
  Alcotest.(check bool)
    "the finding cites the witness chain from the shard root" true
    (contains ~needle:"Fix.launch -> Fix.body" f.Finding.message)

(* ---- release-leak ---- *)

let leak_fixture =
  {|
module Buffer_pool = struct
  let try_alloc (_ : unit) ~bytes_:(_ : int) = true
  let release (_ : unit) ~bytes_:(_ : int) = ()
end
let bad p n =
  if Buffer_pool.try_alloc p ~bytes_:n then begin
    if n > 9000 then failwith "oversize";
    Buffer_pool.release p ~bytes_:n
  end
let ok p n =
  if Buffer_pool.try_alloc p ~bytes_:n then
    if n > 9000 then begin
      Buffer_pool.release p ~bytes_:n;
      failwith "oversize"
    end
    else Buffer_pool.release p ~bytes_:n
let ok_guarded p n =
  if Buffer_pool.try_alloc p ~bytes_:n then begin
    (try failwith "absorbed" with _ -> ());
    Buffer_pool.release p ~bytes_:n
  end
|}

let test_release_leak () =
  let fs = Own.findings (prepare leak_fixture) in
  Alcotest.(check (list string))
    "the raise before release fires; release-then-raise and a raise \
     absorbed by try do not"
    [ "Fix.bad" ]
    (syms ~rule:"release-leak" fs)

(* ---- inventory formats ---- *)

let test_inventory_round_trip () =
  let dr = prepare spsc_bad_fixture in
  let entries = Own.inventory dr in
  let kinds = List.map (fun e -> (e.Own.o_kind, e.Own.o_symbol)) entries in
  Alcotest.(check bool)
    "producer, consumer and transfer-site facts are inventoried" true
    (List.mem ("spsc-producer", "Fix.chan:Fix.shard_loop") kinds
    && List.mem ("spsc-producer", "Fix.chan:Fix.inject") kinds
    && List.mem ("spsc-consumer", "Fix.chan:Fix.consume") kinds
    && List.mem ("transfer-site", "Fix.shard_loop:Spsc.push") kinds);
  let path = Filename.temp_file "planck_ownership" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Own.inventory_text entries);
      close_out oc;
      let loaded =
        match Own.load_inventory path with
        | Ok pairs -> pairs
        | Error e -> Alcotest.failf "inventory should parse: %s" e
      in
      Alcotest.(check (list (pair string string)))
        "text format round-trips to (kind, symbol)" kinds loaded);
  let doc = Own.inventory_json entries in
  Alcotest.(check bool)
    "JSON artifact names the facts and the attributed roots" true
    (contains ~needle:{|"symbol":"Fix.chan:Fix.shard_loop"|} doc
    && contains ~needle:{|"kind":"spsc-producer"|} doc
    && contains ~needle:"(main)" doc)

(* ---- repo self-check ----

   Same build-tree convention as test_lint_domain: the committed
   inventory must match what the tier computes from the current cmts —
   adding a transfer/SPSC/blocking site without regenerating
   tools/lint/ownership.txt fails here. *)
let test_committed_inventory_current () =
  let root = Filename.dirname (Sys.getcwd ()) in
  let committed = Filename.concat root "tools/lint/ownership.txt" in
  if Sys.file_exists (Filename.concat root "lib") && Sys.file_exists committed
  then begin
    let ix = Index.load ~dirs:[ root ] in
    if Index.unit_count ix > 0 then begin
      let dr = Deep.prepare ix in
      let computed =
        List.map (fun e -> (e.Own.o_kind, e.Own.o_symbol)) (Own.inventory dr)
      in
      let loaded =
        match Own.load_inventory committed with
        | Ok pairs -> pairs
        | Error e -> Alcotest.failf "committed inventory unreadable: %s" e
      in
      Alcotest.(check (list (pair string string)))
        "tools/lint/ownership.txt is current (regenerate with planck_lint \
         --deep --ownership-out)"
        computed loaded
    end
  end

let tests =
  [
    Alcotest.test_case "use-after-transfer fires, aliases tracked" `Quick
      test_use_after_transfer;
    Alcotest.test_case "Timer.cancel is a transfer point" `Quick
      test_timer_cancel_is_transfer;
    Alcotest.test_case "spsc-role-confinement: two producer roots" `Quick
      test_spsc_two_producer_roots_fire;
    Alcotest.test_case "spsc-role-confinement: single-root guard" `Quick
      test_spsc_single_root_is_clean;
    Alcotest.test_case "blocking-in-shard-body with witness chain" `Quick
      test_blocking_in_shard_body;
    Alcotest.test_case "release-leak on the exception edge" `Quick
      test_release_leak;
    Alcotest.test_case "inventory round-trips" `Quick test_inventory_round_trip;
    Alcotest.test_case "committed inventory is current" `Quick
      test_committed_inventory_current;
  ]
