(** A bounded FIFO ring buffer.

    Models the netmap receive ring between the monitor NIC and a Planck
    collector: the producer (simulated NIC) pushes frames, the consumer
    (collector poll loop) drains them in batches. When the ring is full,
    pushes fail — exactly the frame-drop behaviour of a full hardware
    ring. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at most [capacity]
    elements. Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push r v] enqueues [v]; returns [false] (dropping [v]) if full. *)

val pop : 'a t -> 'a option
(** Dequeue the oldest element. *)

val pop_batch : 'a t -> max:int -> 'a list
(** [pop_batch r ~max] dequeues up to [max] oldest elements, oldest
    first. *)

val drops : 'a t -> int
(** Number of elements rejected by {!push} since creation. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the current contents, oldest first, without consuming
    them. *)
