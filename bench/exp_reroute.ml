(* Figure 13 (shadow-MAC alternate routes), Figure 15 (the full control
   loop on two colliding flows), and Figure 16 (ARP vs OpenFlow
   response-latency CDFs). *)

open Exp_common
module Te = Planck_controller.Te
module Reroute = Planck_controller.Reroute
module Controller = Planck_controller.Controller
module Mac = Planck_packet.Mac

let run_fig13 opts =
  section "Figure 13: shadow-MAC alternate routes (host 0 -> host 12)";
  let testbed = Testbed.create (Testbed.paper_fat_tree ~seed:opts.seed ()) in
  let routing = testbed.Testbed.routing in
  for alt = 0 to 3 do
    let mac = Routing.mac_for routing ~dst:12 ~alt in
    let hops = Routing.path routing ~src:0 ~dst_mac:mac in
    let path =
      String.concat " -> "
        (List.map (fun h -> Printf.sprintf "s%d" h.Routing.switch) hops)
    in
    Printf.printf "  %s %s: h0 -> %s -> h12\n"
      (if alt = 0 then "base route " else Printf.sprintf "alt route %d" alt)
      (Mac.to_string mac) path
  done;
  paper "four pre-installed destination-oriented spanning trees, one";
  paper "per core switch; shadow MACs select among them per packet."

(* Fig 15: flow 1 alone in steady state; flow 2 starts on a colliding
   base route; PlanckTE detects and reroutes. We report the detection
   and response timestamps plus both flows' throughput around the
   event, and whether flow 1 took any losses. *)
let run_fig15 opts =
  section "Figure 15: the control loop on two colliding flows";
  let testbed = Testbed.create (Testbed.paper_fat_tree ~seed:opts.seed ()) in
  let controller =
    Controller.create testbed.Testbed.engine ~routing:testbed.Testbed.routing
      ~link_rate:rate_10g
      ~prng:(Prng.split testbed.Testbed.prng)
      ()
  in
  let te = Controller.start_te controller () in
  let detection = ref None and response = ref None in
  List.iter
    (fun c ->
      Planck_collector.Collector.subscribe_congestion c ~threshold:0.5
        (fun e ->
          if !detection = None then
            detection := Some e.Planck_collector.Collector.time))
    (Controller.collectors controller);
  Te.on_reroute te (fun time _key ~old_mac:_ ~new_mac:_ ->
      if !response = None then response := Some time);
  let flow1 =
    Flow.start ~src:testbed.Testbed.endpoints.(0)
      ~dst:testbed.Testbed.endpoints.(8) ~src_port:1 ~dst_port:2
      ~size:(1 lsl 40) ()
  in
  Engine.run ~until:(Time.ms 20) testbed.Testbed.engine;
  detection := None;
  let retx_before = Flow.retransmits flow1 in
  let start2 = Engine.now testbed.Testbed.engine in
  let flow2 =
    Flow.start ~src:testbed.Testbed.endpoints.(1)
      ~dst:testbed.Testbed.endpoints.(9) ~src_port:3 ~dst_port:4
      ~size:(1 lsl 40) ()
  in
  (* Sample both flows' throughput every 500 us. *)
  let series = ref [] in
  let prev1 = ref (Flow.bytes_acked flow1) and prev2 = ref 0 in
  Engine.every testbed.Testbed.engine ~period:(Time.us 500)
    ~until:(start2 + Time.ms 15) (fun () ->
      let a1 = Flow.bytes_acked flow1 and a2 = Flow.bytes_acked flow2 in
      series :=
        ( Engine.now testbed.Testbed.engine - start2,
          Rate.of_bytes_per (a1 - !prev1) (Time.us 500),
          Rate.of_bytes_per (a2 - !prev2) (Time.us 500) )
        :: !series;
      prev1 := a1;
      prev2 := a2);
  Engine.run ~until:(start2 + Time.ms 16) testbed.Testbed.engine;
  Table.print ~header:[ "t-t2 (ms)"; "flow1 (Gbps)"; "flow2 (Gbps)" ]
    (List.rev_map
       (fun (t, r1, r2) ->
         [
           Printf.sprintf "%.1f" (ms t);
           Printf.sprintf "%.2f" (Rate.to_gbps r1);
           Printf.sprintf "%.2f" (Rate.to_gbps r2);
         ])
       !series);
  (match (!detection, !response) with
  | Some d, Some r ->
      note "detection %.2f ms and response %.2f ms after flow 2 started"
        (ms (d - start2)) (ms (r - start2));
      note "flow 1 retransmits during the episode: %d"
        (Flow.retransmits flow1 - retx_before)
  | _ -> note "WARNING: no detection/response observed");
  paper "detection within 25-240 us of the congesting packets plus";
  paper "notification latency; response ~2.6 ms later; flow 1 sees no";
  paper "loss because rerouting beats the buffer filling."

(* Fig 16: response latency = congestion notification -> collector sees
   a sample with the updated MAC. One measurement per reroute episode,
   repeated with fresh testbeds. *)
let response_latency ~mechanism ~seed =
  let testbed = Testbed.create (Testbed.paper_fat_tree ~seed ()) in
  let controller =
    Controller.create testbed.Testbed.engine ~routing:testbed.Testbed.routing
      ~link_rate:rate_10g
      ~prng:(Prng.split testbed.Testbed.prng)
      ()
  in
  let te =
    Controller.start_te controller
      ~config:{ Te.default_config with Te.mechanism }
      ()
  in
  let notified = ref None and seen = ref None in
  let new_mac = ref None in
  Te.on_reroute te (fun time key ~old_mac:_ ~new_mac:mac ->
      if !notified = None then begin
        notified := Some time;
        new_mac := Some (key, mac)
      end);
  (* The observation point is the rerouted flow's source edge switch:
     its monitor port carries the congested link's backlog, which is
     what dominates the paper's response latency. *)
  let observe_collector switch =
    match Controller.collector_for controller ~switch with
    | Some c ->
        Planck_collector.Collector.set_tap c (fun s ->
            match (!new_mac, s.Collector.key) with
            | Some (key, mac), Some k
              when !seen = None && FK.equal k key
                   && Mac.equal (P.dst_mac s.Collector.packet) mac ->
                seen := Some s.Collector.rx
            | _ -> ())
    | None -> ()
  in
  List.iter
    (fun host ->
      observe_collector
        (fst (Fabric.host_attachment testbed.Testbed.fabric ~host)))
    [ 0; 1 ];
  ignore
    (Flow.start ~src:testbed.Testbed.endpoints.(0)
       ~dst:testbed.Testbed.endpoints.(8) ~src_port:1 ~dst_port:2
       ~size:(1 lsl 40) ());
  (* Long enough for the edge switch's monitor-port backlog to reach
     its steady depth (the paper's flows had run for seconds). *)
  Engine.run ~until:(Time.ms 80) testbed.Testbed.engine;
  ignore
    (Flow.start ~src:testbed.Testbed.endpoints.(1)
       ~dst:testbed.Testbed.endpoints.(9) ~src_port:3 ~dst_port:4
       ~size:(1 lsl 40) ());
  Engine.run ~until:(Time.ms 110) testbed.Testbed.engine;
  match (!notified, !seen) with
  | Some n, Some s -> Some (s - n)
  | _ -> None

let run_fig16 opts =
  section "Figure 16: response latency, ARP vs OpenFlow rerouting";
  let runs = max 8 (opts.runs * 4) in
  let measure mechanism =
    List.filter_map
      (fun i -> response_latency ~mechanism ~seed:(opts.seed + i))
      (List.init runs Fun.id)
  in
  let arp = List.map ms (measure Reroute.Arp) in
  let openflow = List.map ms (measure Reroute.Openflow) in
  let row label values =
    [
      label;
      string_of_int (List.length values);
      Printf.sprintf "%.2f" (Stats.percentile 10.0 values);
      Printf.sprintf "%.2f" (Stats.median values);
      Printf.sprintf "%.2f" (Stats.percentile 90.0 values);
    ]
  in
  Table.print ~header:[ "mechanism"; "n"; "p10 (ms)"; "median (ms)"; "p90 (ms)" ]
    [ row "ARP" arp; row "OpenFlow" openflow ];
  paper "ARP: ~2.5-3.5 ms; OpenFlow: ~4-9 ms, median > 7 ms. Most of";
  paper "both is the monitor-port buffering delaying the observation."

let run opts =
  run_fig13 opts;
  run_fig15 opts;
  run_fig16 opts
