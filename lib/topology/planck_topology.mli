(** Network topologies and multipath (PAST / shadow-MAC) routing. *)

module Fabric = Fabric
module Partition = Partition
module Fat_tree = Fat_tree
module Single_switch = Single_switch
module Jellyfish = Jellyfish
module Routing = Routing
