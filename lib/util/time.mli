(** Simulated time, measured in integer nanoseconds.

    The whole simulator runs on integer nanoseconds so that event ordering
    is exact and runs are reproducible. On a 64-bit platform this gives
    roughly 292 years of simulated time, far beyond any experiment here. *)

type t = int
(** A point in simulated time (or a duration), in nanoseconds. *)

val zero : t

val nanosecond : t
val microsecond : t
val millisecond : t
val second : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is a duration of [n] microseconds. *)

val ms : int -> t
(** [ms n] is a duration of [n] milliseconds. *)

val s : int -> t
(** [s n] is a duration of [n] seconds. *)

val of_float_s : float -> t
(** [of_float_s x] converts [x] seconds to nanoseconds, rounding to
    nearest. *)

val to_float_s : t -> float
(** [to_float_s t] is [t] expressed in seconds. *)

val to_float_ms : t -> float
(** [to_float_ms t] is [t] expressed in milliseconds. *)

val to_float_us : t -> float
(** [to_float_us t] is [t] expressed in microseconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an automatically chosen unit, e.g. ["3.50ms"]. *)

val to_string : t -> string
