module Host = Planck_netsim.Host
module Flow_key = Planck_packet.Flow_key
module Packet = Planck_packet.Packet

type t = {
  host : Host.t;
  handlers : (Packet.t -> unit) Flow_key.Table.t;
  mutable unclaimed : int;
}

let create host =
  let t = { host; handlers = Flow_key.Table.create 16; unclaimed = 0 } in
  Host.set_receive host (fun packet ->
      match Flow_key.of_packet packet with
      | None -> t.unclaimed <- t.unclaimed + 1
      | Some key -> (
          match Flow_key.Table.find_opt t.handlers key with
          | Some handler -> handler packet
          | None -> t.unclaimed <- t.unclaimed + 1));
  t

let host t = t.host
let engine t = Host.engine t.host

let register t key f =
  if Flow_key.Table.mem t.handlers key then
    invalid_arg "Endpoint.register: flow key already registered";
  Flow_key.Table.replace t.handlers key f

let unclaimed t = t.unclaimed
