(** Minimal libpcap file writer.

    Supports the vantage-point monitoring application (paper §6.1): the
    collector dumps its recent sample ring to a tcpdump-compatible
    capture. Classic pcap format, microsecond timestamps, Ethernet link
    type, written from scratch. *)

type t

val create : ?snaplen:int -> unit -> t
(** An in-memory capture. [snaplen] defaults to 65535. *)

val add : t -> time:Planck_util.Time.t -> Packet.t -> unit
(** Append one frame, stamped with the simulated capture time. Captured
    bytes are {!Packet.to_wire} output truncated to the snap length; the
    record's original length is the frame's full wire size. *)

val packet_count : t -> int

val contents : t -> string
(** The complete pcap file image (header + records so far). *)

val to_file : t -> string -> unit
(** Write {!contents} to the given path. *)
