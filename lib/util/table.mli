(** Plain-text table rendering for benchmark and experiment output. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with aligned columns and a
    separator under the header. [align] gives per-column alignment
    (default: first column left, the rest right); missing entries default
    likewise. Rows shorter than the header are padded with empty cells. *)

val print :
  ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string] and a flush. *)

val csv : header:string list -> string list list -> string
(** Comma-separated rendering of the same data (cells containing commas
    or quotes are quoted). *)
