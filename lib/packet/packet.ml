type l4 = Tcp of Headers.Tcp.t | Udp of Headers.Udp.t
type body = Ipv4 of Headers.Ipv4.t * l4 | Arp of Headers.Arp.t

type t = { id : int; eth : Headers.Eth.t; body : body; wire_size : int }

let mtu = 1500
let max_tcp_payload = mtu - Headers.Ipv4.size - Headers.Tcp.size

let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let tcp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ~seq ~ack_seq
    ~flags ?(sack = []) ~payload_len () =
  if payload_len < 0 || payload_len > max_tcp_payload then
    invalid_arg "Packet.tcp: payload_len out of range";
  if List.length sack > Headers.Tcp.max_sack_blocks then
    invalid_arg "Packet.tcp: too many SACK blocks";
  let tcp =
    {
      Headers.Tcp.src_port;
      dst_port;
      seq = seq land 0xFFFF_FFFF;
      ack_seq = ack_seq land 0xFFFF_FFFF;
      flags;
      window = 65535;
      sack =
        List.map
          (fun (a, b) -> (a land 0xFFFF_FFFF, b land 0xFFFF_FFFF))
          sack;
    }
  in
  let total_length =
    Headers.Ipv4.size + Headers.Tcp.header_size tcp + payload_len
  in
  let ip =
    {
      Headers.Ipv4.src = src_ip;
      dst = dst_ip;
      protocol = Headers.Ipv4.protocol_tcp;
      ttl = 64;
      total_length;
    }
  in
  {
    id = next_id ();
    eth = { Headers.Eth.src = src_mac; dst = dst_mac;
            ethertype = Headers.Eth.ethertype_ipv4 };
    body = Ipv4 (ip, Tcp tcp);
    wire_size = Headers.Eth.size + total_length;
  }

let udp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ~payload_len () =
  if payload_len < 0 then invalid_arg "Packet.udp: negative payload";
  let l4_length = Headers.Udp.size + payload_len in
  let total_length = Headers.Ipv4.size + l4_length in
  let ip =
    {
      Headers.Ipv4.src = src_ip;
      dst = dst_ip;
      protocol = Headers.Ipv4.protocol_udp;
      ttl = 64;
      total_length;
    }
  in
  let udp = { Headers.Udp.src_port; dst_port; length = l4_length } in
  {
    id = next_id ();
    eth = { Headers.Eth.src = src_mac; dst = dst_mac;
            ethertype = Headers.Eth.ethertype_ipv4 };
    body = Ipv4 (ip, Udp udp);
    wire_size = Headers.Eth.size + total_length;
  }

let arp ~src_mac ~dst_mac payload =
  {
    id = next_id ();
    eth = { Headers.Eth.src = src_mac; dst = dst_mac;
            ethertype = Headers.Eth.ethertype_arp };
    body = Arp payload;
    wire_size = Headers.Eth.size + Headers.Arp.size;
  }

let with_dst_mac t mac = { t with eth = { t.eth with Headers.Eth.dst = mac } }

let tcp_headers t =
  match t.body with Ipv4 (ip, Tcp tcp) -> Some (ip, tcp) | _ -> None

let tcp_payload_len t =
  match t.body with
  | Ipv4 (ip, Tcp tcp) ->
      ip.Headers.Ipv4.total_length - Headers.Ipv4.size
      - Headers.Tcp.header_size tcp
  | Ipv4 (_, Udp _) | Arp _ -> 0

let dst_mac t = t.eth.Headers.Eth.dst
let src_mac t = t.eth.Headers.Eth.src

let header_bytes t =
  Headers.Eth.size
  +
  match t.body with
  | Arp _ -> Headers.Arp.size
  | Ipv4 (_, Tcp tcp) -> Headers.Ipv4.size + Headers.Tcp.header_size tcp
  | Ipv4 (_, Udp _) -> Headers.Ipv4.size + Headers.Udp.size

(* Big-endian byte-level writers/readers. *)

let set_u8 b off v = Bytes.set_uint8 b off (v land 0xFF)
let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xFFFF)

let set_u32 b off v =
  set_u16 b off (v lsr 16);
  set_u16 b (off + 2) v

let set_u48 b off v =
  set_u16 b off (v lsr 32);
  set_u32 b (off + 2) v

let get_u8 = Bytes.get_uint8
let get_u16 = Bytes.get_uint16_be
let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)
let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

let write_eth b (eth : Headers.Eth.t) =
  set_u48 b 0 (Mac.to_int eth.dst);
  set_u48 b 6 (Mac.to_int eth.src);
  set_u16 b 12 eth.ethertype

let write_ipv4 b off (ip : Headers.Ipv4.t) =
  set_u8 b off 0x45 (* version 4, IHL 5 *);
  set_u8 b (off + 1) 0 (* DSCP/ECN *);
  set_u16 b (off + 2) ip.total_length;
  set_u32 b (off + 4) 0 (* id, flags, fragment offset *);
  set_u8 b (off + 8) ip.ttl;
  set_u8 b (off + 9) ip.protocol;
  set_u16 b (off + 10) 0 (* checksum: not modelled *);
  set_u32 b (off + 12) (Ipv4_addr.to_int ip.src);
  set_u32 b (off + 16) (Ipv4_addr.to_int ip.dst)

let write_tcp b off (tcp : Headers.Tcp.t) =
  let header_len = Headers.Tcp.header_size tcp in
  set_u16 b off tcp.src_port;
  set_u16 b (off + 2) tcp.dst_port;
  set_u32 b (off + 4) tcp.seq;
  set_u32 b (off + 8) tcp.ack_seq;
  set_u8 b (off + 12) ((header_len / 4) lsl 4);
  set_u8 b (off + 13) (Headers.Tcp_flags.to_byte tcp.flags);
  set_u16 b (off + 14) tcp.window;
  set_u32 b (off + 16) 0 (* checksum, urgent *);
  match tcp.sack with
  | [] -> ()
  | blocks ->
      (* NOP padding first, then kind=5 SACK option. *)
      let option_bytes = 2 + (8 * List.length blocks) in
      let pad = header_len - Headers.Tcp.size - option_bytes in
      for i = 0 to pad - 1 do
        set_u8 b (off + 20 + i) 1 (* NOP *)
      done;
      let opt = off + 20 + pad in
      set_u8 b opt 5;
      set_u8 b (opt + 1) option_bytes;
      List.iteri
        (fun i (start, stop) ->
          set_u32 b (opt + 2 + (8 * i)) start;
          set_u32 b (opt + 6 + (8 * i)) stop)
        blocks

let write_udp b off (udp : Headers.Udp.t) =
  set_u16 b off udp.src_port;
  set_u16 b (off + 2) udp.dst_port;
  set_u16 b (off + 4) udp.length;
  set_u16 b (off + 6) 0 (* checksum *)

let write_arp b off (a : Headers.Arp.t) =
  set_u16 b off 1 (* htype: Ethernet *);
  set_u16 b (off + 2) 0x0800 (* ptype: IPv4 *);
  set_u8 b (off + 4) 6;
  set_u8 b (off + 5) 4;
  set_u16 b (off + 6) (match a.op with Request -> 1 | Reply -> 2);
  set_u48 b (off + 8) (Mac.to_int a.sender_mac);
  set_u32 b (off + 14) (Ipv4_addr.to_int a.sender_ip);
  set_u48 b (off + 18) (Mac.to_int a.target_mac);
  set_u32 b (off + 24) (Ipv4_addr.to_int a.target_ip)

let to_wire t =
  let b = Bytes.make (header_bytes t) '\000' in
  write_eth b t.eth;
  (match t.body with
  | Arp a -> write_arp b Headers.Eth.size a
  | Ipv4 (ip, l4) -> (
      write_ipv4 b Headers.Eth.size ip;
      let l4_off = Headers.Eth.size + Headers.Ipv4.size in
      match l4 with
      | Tcp tcp -> write_tcp b l4_off tcp
      | Udp udp -> write_udp b l4_off udp));
  b

let parse_ipv4 b ~wire_size =
  let off = Headers.Eth.size in
  if Bytes.length b < off + Headers.Ipv4.size then None
  else if get_u8 b off <> 0x45 then None
  else begin
    let ip =
      {
        Headers.Ipv4.src = Ipv4_addr.of_int (get_u32 b (off + 12));
        dst = Ipv4_addr.of_int (get_u32 b (off + 16));
        protocol = get_u8 b (off + 9);
        ttl = get_u8 b (off + 8);
        total_length = get_u16 b (off + 2);
      }
    in
    let l4_off = off + Headers.Ipv4.size in
    let parse_sack l4_off header_len =
      (* Scan the option area for a SACK (kind 5) option, skipping NOPs. *)
      let stop = l4_off + header_len in
      let rec scan off =
        if off >= stop || off >= Bytes.length b then []
        else
          match get_u8 b off with
          | 0 (* EOL *) -> []
          | 1 (* NOP *) -> scan (off + 1)
          | 5 ->
              let len = get_u8 b (off + 1) in
              let blocks = (len - 2) / 8 in
              List.init blocks (fun i ->
                  (get_u32 b (off + 2 + (8 * i)), get_u32 b (off + 6 + (8 * i))))
          | _ ->
              let len = get_u8 b (off + 1) in
              if len < 2 then [] else scan (off + len)
      in
      scan (l4_off + Headers.Tcp.size)
    in
    let l4 =
      if ip.protocol = Headers.Ipv4.protocol_tcp then
        if Bytes.length b < l4_off + Headers.Tcp.size then None
        else begin
          let header_len = (get_u8 b (l4_off + 12) lsr 4) * 4 in
          if Bytes.length b < l4_off + header_len then None
          else
            Some
              (Tcp
                 {
                   Headers.Tcp.src_port = get_u16 b l4_off;
                   dst_port = get_u16 b (l4_off + 2);
                   seq = get_u32 b (l4_off + 4);
                   ack_seq = get_u32 b (l4_off + 8);
                   flags = Headers.Tcp_flags.of_byte (get_u8 b (l4_off + 13));
                   window = get_u16 b (l4_off + 14);
                   sack = parse_sack l4_off header_len;
                 })
        end
      else if ip.protocol = Headers.Ipv4.protocol_udp then
        if Bytes.length b < l4_off + Headers.Udp.size then None
        else
          Some
            (Udp
               {
                 Headers.Udp.src_port = get_u16 b l4_off;
                 dst_port = get_u16 b (l4_off + 2);
                 length = get_u16 b (l4_off + 4);
               })
      else None
    in
    match l4 with
    | None -> None
    | Some l4 -> Some (Ipv4 (ip, l4), wire_size)
  end

let parse_arp b =
  let off = Headers.Eth.size in
  if Bytes.length b < off + Headers.Arp.size then None
  else begin
    let op =
      match get_u16 b (off + 6) with
      | 1 -> Some Headers.Arp.Request
      | 2 -> Some Headers.Arp.Reply
      | _ -> None
    in
    match op with
    | None -> None
    | Some op ->
        let a =
          {
            Headers.Arp.op;
            sender_mac = Mac.of_int (get_u48 b (off + 8));
            sender_ip = Ipv4_addr.of_int (get_u32 b (off + 14));
            target_mac = Mac.of_int (get_u48 b (off + 18));
            target_ip = Ipv4_addr.of_int (get_u32 b (off + 24));
          }
        in
        Some (Arp a, Headers.Eth.size + Headers.Arp.size)
  end

let parse b ~wire_size =
  if Bytes.length b < Headers.Eth.size then None
  else begin
    let eth =
      {
        Headers.Eth.dst = Mac.of_int (get_u48 b 0);
        src = Mac.of_int (get_u48 b 6);
        ethertype = get_u16 b 12;
      }
    in
    let body =
      if eth.ethertype = Headers.Eth.ethertype_ipv4 then
        parse_ipv4 b ~wire_size
      else if eth.ethertype = Headers.Eth.ethertype_arp then parse_arp b
      else None
    in
    match body with
    | None -> None
    | Some (body, wire_size) -> Some { id = next_id (); eth; body; wire_size }
  end

let same_headers a b =
  Headers.Eth.equal a.eth b.eth && a.wire_size = b.wire_size
  &&
  match (a.body, b.body) with
  | Arp x, Arp y -> Headers.Arp.equal x y
  | Ipv4 (ipa, Tcp ta), Ipv4 (ipb, Tcp tb) ->
      Headers.Ipv4.equal ipa ipb && Headers.Tcp.equal ta tb
  | Ipv4 (ipa, Udp ua), Ipv4 (ipb, Udp ub) ->
      Headers.Ipv4.equal ipa ipb && Headers.Udp.equal ua ub
  | (Arp _ | Ipv4 _), _ -> false

let pp ppf t =
  match t.body with
  | Arp a -> Format.fprintf ppf "#%d %a" t.id Headers.Arp.pp a
  | Ipv4 (ip, Tcp tcp) ->
      Format.fprintf ppf "#%d %a %a (%dB)" t.id Headers.Ipv4.pp ip
        Headers.Tcp.pp tcp t.wire_size
  | Ipv4 (ip, Udp udp) ->
      Format.fprintf ppf "#%d %a %a (%dB)" t.id Headers.Ipv4.pp ip
        Headers.Udp.pp udp t.wire_size
