(** A packet-level TCP Reno/NewReno flow.

    One [Flow.t] is a unidirectional bulk transfer: a sender state
    machine on the source endpoint and a receiver (pure ACK generator
    with out-of-order reassembly) on the destination endpoint. The
    model implements the mechanisms the paper's results depend on:

    - slow start and congestion avoidance with ACK clocking (the bursty
      slow-start behaviour of Figure 10 emerges from this);
    - duplicate-ACK fast retransmit and NewReno fast recovery;
    - retransmission timeouts with Karn's rule and exponential backoff;
    - 32-bit on-wire sequence numbers that wrap (flows up to 100 GiB);
    - per-segment destination-MAC resolution through the host's ARP
      cache, so an ARP-based reroute takes effect on the very next
      transmitted segment (§6.2).

    Senders do not pace: a window opens and segments are handed to the
    host stack back-to-back, as real kernels do (cf. the "Bullet
    Trains" burstiness the paper cites). *)

type params = {
  mss : int;  (** payload bytes per segment (1460) *)
  initial_window : int;  (** initial cwnd, in segments (IW10) *)
  min_rto : Planck_util.Time.t;  (** Linux default: 200 ms *)
  max_flight : int;
      (** receive-window stand-in, bytes. The 1 MiB default models a
          receive-window-autotuned stack: ~3x the testbed BDP, enough
          for line rate, small enough that a lone flow's standing
          self-queue stays under ~0.6 ms *)
  handshake : bool;  (** model the SYN / SYN-ACK exchange *)
  isn : int;
      (** initial sequence number; the default 0 keeps traces easy to
          read, any 32-bit value (real stacks randomize) exercises
          wraparound *)
}

val default_params : params

type t

val start :
  src:Endpoint.t ->
  dst:Endpoint.t ->
  src_port:int ->
  dst_port:int ->
  size:int ->
  ?params:params ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** Begin transferring [size] bytes now. The flow registers itself on
    both endpoints; [on_complete] fires when the last byte is
    acknowledged. Raises [Invalid_argument] if [size <= 0] or the
    source host cannot resolve the destination's address. *)

val key : t -> Planck_packet.Flow_key.t
(** 5-tuple of the data direction. *)

val size : t -> int
val completed : t -> bool
val started_at : t -> Planck_util.Time.t
val completed_at : t -> Planck_util.Time.t option

val bytes_acked : t -> int

val goodput : t -> Planck_util.Rate.t option
(** [size / (completion - start)], once complete. *)

val retransmits : t -> int
val timeouts : t -> int

val cwnd_bytes : t -> int
(** Current congestion window (diagnostic). *)

