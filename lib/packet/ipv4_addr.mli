(** IPv4 addresses. *)

type t
(** Immutable IPv4 address. *)

val of_int : int -> t
(** Keeps the low 32 bits. *)

val to_int : t -> int

val of_string : string -> t
(** Parse dotted-quad notation. Raises [Invalid_argument] on malformed
    input. *)

val to_string : t -> string

val host : int -> t
(** [host i] is the testbed address of host [i]: [10.0.(i lsr 8).(i land
    0xff)]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val host_id : t -> int option
(** Inverse of {!host}: the host index if this is a testbed address
    (10.0.0.0/16), else [None]. *)
