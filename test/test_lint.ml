(* planck_lint: one positive and one negative fixture per rule, the
   suppression syntax, both reporters, and a self-check that the repo's
   own tree is lint-clean. Fixtures go through Lint_engine.lint_source,
   which parses from a string — the paths never exist on disk; they only
   drive rule scoping. *)

module Engine = Planck_lint_lib.Lint_engine
module Rules = Planck_lint_lib.Lint_rules
module Report = Planck_lint_lib.Lint_report
module Finding = Planck_lint_lib.Lint_finding
module Json = Planck_telemetry.Json

let kept ~path source = fst (Engine.lint_source ~path ~source ())
let rules_of ~path source = List.map (fun f -> f.Finding.rule) (kept ~path source)

let check_fires name rule ~path source =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s" name rule)
    true
    (List.mem rule (rules_of ~path source))

let check_clean name ~path source =
  Alcotest.(check (list string)) (Printf.sprintf "%s is clean" name) []
    (rules_of ~path source)

(* ---- determinism rules ---- *)

let test_wall_clock () =
  let src = "let now () = Unix.gettimeofday ()\n" in
  check_fires "sim code" "wall-clock" ~path:"lib/netsim/clock.ml" src;
  (* wall time is legal outside the simulator and in telemetry exports *)
  check_clean "bin code" ~path:"bin/main.ml" src;
  check_clean "telemetry export" ~path:"lib/telemetry/export.ml" src

let test_ambient_random () =
  check_fires "global state" "ambient-random" ~path:"lib/netsim/jitter.ml"
    "let draw () = Random.int 10\n";
  check_fires "self-init state" "ambient-random" ~path:"lib/netsim/jitter.ml"
    "let st = Random.State.make_self_init ()\n";
  check_clean "explicit state" ~path:"lib/netsim/jitter.ml"
    "let draw st = Random.State.int st 10\n"

let test_hashtbl_iteration () =
  let src = "let visit f tbl = Hashtbl.iter f tbl\n" in
  check_fires "Hashtbl.iter" "hashtbl-iteration" ~path:"lib/collector/t.ml" src;
  check_fires "functor instance" "hashtbl-iteration" ~path:"lib/collector/t.ml"
    "let visit f tbl = Flow_key.Table.fold f tbl []\n";
  check_clean "telemetry exempt" ~path:"lib/telemetry/export.ml" src;
  check_clean "sorted iteration" ~path:"lib/collector/t.ml"
    "let visit tbl = List.of_seq (Hashtbl.to_seq tbl)\n"

(* ---- hot-path rules ---- *)

let test_poly_compare () =
  check_fires "bare compare" "poly-compare" ~path:"lib/util/x.ml"
    "let sort xs = List.sort compare xs\n";
  check_fires "Stdlib.compare" "poly-compare" ~path:"lib/util/x.ml"
    "let sort xs = List.sort Stdlib.compare xs\n";
  check_fires "Hashtbl.hash" "poly-compare" ~path:"lib/util/x.ml"
    "let h x = Hashtbl.hash x\n";
  (* a module-local compare shadows the polymorphic one *)
  check_clean "shadowed compare" ~path:"lib/util/x.ml"
    "let compare a b = Int.compare a b\nlet sort xs = List.sort compare xs\n";
  check_clean "outside lib" ~path:"bench/x.ml"
    "let sort xs = List.sort compare xs\n"

let test_keyed_poly_equal () =
  let keyed body =
    "type t = { a : int; b : int }\n"
    ^ "let compare x y = Int.compare x.a y.a\n" ^ body
  in
  check_fires "keyed module" "keyed-poly-equal" ~path:"lib/packet/k.ml"
    (keyed "let equal x y = x = y\n");
  (* constants on one side keep structural = acceptable *)
  check_clean "vs constant" ~path:"lib/packet/k.ml"
    (keyed "let is_origin x = x.a = 0\n");
  (* a module with no key functions is not held to the rule *)
  check_clean "unkeyed module" ~path:"lib/packet/k.ml"
    "type t = { a : int }\nlet same x y = x = y\n"

let test_float_equality () =
  check_fires "float literal" "float-equality" ~path:"lib/util/x.ml"
    "let zero x = x = 0.0\n";
  check_fires "negated literal" "float-equality" ~path:"lib/util/x.ml"
    "let neg x = x <> -1.5\n";
  check_clean "Float.equal" ~path:"lib/util/x.ml"
    "let zero x = Float.equal x 0.0\n";
  check_clean "int literal" ~path:"lib/util/x.ml" "let zero x = x = 0\n"

let test_hot_alloc () =
  let fmt = "Printf.sprintf \"%d\" n" in
  check_fires "hot function in hot file" "hot-alloc" ~path:"lib/netsim/sw.ml"
    (Printf.sprintf "let forward n = %s\n" fmt);
  check_fires "nested in hot function" "hot-alloc" ~path:"lib/tcp/f.ml"
    (Printf.sprintf "let process_ack n =\n  let msg = %s in\n  msg\n" fmt);
  (* cold function names and non-hot directories are exempt *)
  check_clean "cold function" ~path:"lib/netsim/sw.ml"
    (Printf.sprintf "let describe n = %s\n" fmt);
  check_clean "cold directory" ~path:"lib/controller/te.ml"
    (Printf.sprintf "let process n = %s\n" fmt)

let test_hot_schedule () =
  check_fires "closure to Engine.schedule in hot fn" "hot-schedule"
    ~path:"lib/netsim/sw.ml"
    "let forward t p = Engine.schedule t ~delay:5 (fun () -> drop t p)\n";
  check_fires "closure to Engine.schedule_at" "hot-schedule"
    ~path:"lib/tcp/f.ml"
    "let process_ack t = Engine.schedule_at t ~at:9 (fun () -> retx t)\n";
  check_fires "closure to Engine.every" "hot-schedule" ~path:"lib/sflow/a.ml"
    "let sample t = Engine.every t ~period:7 (fun () -> export t)\n";
  (* passing a preallocated callback is the blessed pattern *)
  check_clean "identifier callback" ~path:"lib/netsim/sw.ml"
    "let forward t k = Engine.schedule t ~delay:5 k\n";
  check_clean "Timer.reschedule is fine" ~path:"lib/netsim/sw.ml"
    "let forward t = Engine.Timer.reschedule t.timer ~delay:5\n";
  check_clean "cold function" ~path:"lib/netsim/sw.ml"
    "let setup t = Engine.schedule t ~delay:5 (fun () -> drop t)\n";
  check_clean "cold directory" ~path:"lib/controller/te.ml"
    "let forward t = Engine.schedule t ~delay:5 (fun () -> drop t)\n"

(* ---- hygiene rules ---- *)

let test_missing_mli () =
  let fires path has_mli =
    List.map (fun f -> f.Finding.rule) (Rules.missing_mli ~path ~has_mli)
  in
  Alcotest.(check (list string)) "lib .ml without .mli" [ "missing-mli" ]
    (fires "lib/util/x.ml" false);
  Alcotest.(check (list string)) "lib .ml with .mli" [] (fires "lib/util/x.ml" true);
  Alcotest.(check (list string)) "bin .ml without .mli" []
    (fires "bin/main.ml" false)

let test_open_lib () =
  check_fires "whole-library open" "open-lib" ~path:"lib/collector/c.ml"
    "open Planck_util\nlet x = 1\n";
  check_clean "submodule open" ~path:"lib/collector/c.ml"
    "open Planck_util.Time\nlet x = 1\n";
  check_clean "alias" ~path:"lib/collector/c.ml"
    "module Time = Planck_util.Time\nlet x = 1\n";
  check_clean "outside lib" ~path:"bin/main.ml" "open Planck_util\nlet x = 1\n"

let test_ignored_result () =
  check_fires "ignored result call" "ignored-result" ~path:"lib/util/x.ml"
    "let f s = ignore (Json.parse s)\n";
  check_fires "_result suffix" "ignored-result" ~path:"lib/util/x.ml"
    "let f s = ignore (load_result s)\n";
  check_clean "ignored plain call" ~path:"lib/util/x.ml"
    "let f xs = ignore (List.length xs)\n"

let test_parse_error () =
  let findings = kept ~path:"lib/util/broken.ml" "let x = \n" in
  Alcotest.(check (list string)) "parse error reported" [ "parse-error" ]
    (List.map (fun f -> f.Finding.rule) findings)

(* ---- suppression directives ---- *)

let test_suppression () =
  let src_inline =
    "(* planck-lint: allow wall-clock -- fixture *)\n\
     let now () = Unix.gettimeofday ()\n"
  in
  let k, s = Engine.lint_source ~path:"lib/netsim/c.ml" ~source:src_inline () in
  Alcotest.(check int) "allow covers next line: kept" 0 (List.length k);
  Alcotest.(check int) "allow covers next line: suppressed" 1 (List.length s);
  (* the directive names a specific rule; others still fire *)
  let src_wrong =
    "(* planck-lint: allow hot-alloc -- fixture *)\n\
     let now () = Unix.gettimeofday ()\n"
  in
  check_fires "unrelated allow" "wall-clock" ~path:"lib/netsim/c.ml" src_wrong;
  let src_file =
    "(* planck-lint: allow-file wall-clock ambient-random -- fixture *)\n\
     let now () = Unix.gettimeofday ()\n\
     let r () = Random.int 10\n"
  in
  let k, s = Engine.lint_source ~path:"lib/netsim/c.ml" ~source:src_file () in
  Alcotest.(check int) "allow-file: kept" 0 (List.length k);
  Alcotest.(check int) "allow-file: suppressed" 2 (List.length s)

(* ---- reporters ---- *)

let two_findings () =
  kept ~path:"lib/netsim/fixture.ml"
    "let now () = Unix.gettimeofday ()\nlet r () = Random.int 10\n"

let test_text_report () =
  let findings = two_findings () in
  let text = Report.text_of ~findings ~suppressed:1 ~files:1 in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "file:line:col prefix" true
    (contains "lib/netsim/fixture.ml:1:13:");
  Alcotest.(check bool) "rule tag" true (contains "[wall-clock]");
  Alcotest.(check bool) "summary" true
    (contains "planck-lint: 1 file, 2 errors, 0 warnings, 1 suppressed")

let test_json_report () =
  let findings = two_findings () in
  let doc =
    match Json.of_string (Report.json_of ~findings ~suppressed:1 ~files:1) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  in
  let int_field k =
    Option.get (Json.to_int_opt (Option.get (Json.member doc k)))
  in
  Alcotest.(check int) "version" 1 (int_field "version");
  Alcotest.(check int) "files" 1 (int_field "files");
  Alcotest.(check int) "errors" 2 (int_field "errors");
  Alcotest.(check int) "warnings" 0 (int_field "warnings");
  Alcotest.(check int) "suppressed" 1 (int_field "suppressed");
  let listed =
    Option.get (Json.to_list_opt (Option.get (Json.member doc "findings")))
  in
  Alcotest.(check int) "findings count" 2 (List.length listed);
  let first = List.hd listed in
  let str_field k =
    Option.get (Json.to_string_opt (Option.get (Json.member first k)))
  in
  Alcotest.(check string) "rule round-trips" "wall-clock" (str_field "rule");
  Alcotest.(check string) "file round-trips" "lib/netsim/fixture.ml"
    (str_field "file");
  Alcotest.(check string) "severity round-trips" "error" (str_field "severity")

(* ---- JSON string escaping ----

   The report escaper must emit valid JSON for any byte string: control
   characters as escapes, well-formed UTF-8 verbatim (exact round-trip),
   malformed bytes sanitised. Round-trips go through the repo's own
   telemetry JSON parser. *)

let message_of_report source =
  let findings =
    [
      Finding.v ~rule:"wall-clock" ~severity:Finding.Error ~file:"lib/x.ml"
        ~line:1 ~col:0 source;
    ]
  in
  match Json.of_string (Report.json_of ~findings ~suppressed:0 ~files:1) with
  | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  | Ok doc ->
      let listed =
        Option.get (Json.to_list_opt (Option.get (Json.member doc "findings")))
      in
      Option.get
        (Json.to_string_opt (Option.get (Json.member (List.hd listed) "message")))

(* Valid UTF-8 strings built from scalar values, biased toward the
   interesting regions: ASCII controls, quotes and backslashes, and 2-,
   3-, and 4-byte sequences. *)
let utf8_gen =
  let open QCheck.Gen in
  let scalar =
    frequency
      [
        (4, int_range 0x00 0x1F); (* controls: must escape *)
        (2, oneofl [ 0x22; 0x5C; 0x2F ]); (* quote, backslash, slash *)
        (8, int_range 0x20 0x7E);
        (3, int_range 0x80 0x7FF);
        (3, int_range 0x800 0xD7FF); (* stops before surrogates *)
        (2, int_range 0xE000 0xFFFF);
        (2, int_range 0x10000 0x10FFFF);
      ]
  in
  let encode cps =
    let b = Buffer.create 32 in
    List.iter (fun cp -> Buffer.add_utf_8_uchar b (Uchar.of_int cp)) cps;
    Buffer.contents b
  in
  map encode (list_size (int_range 0 24) scalar)

let json_escape_round_trip_qcheck =
  QCheck.Test.make ~name:"valid UTF-8 report strings round-trip exactly"
    ~count:500
    (QCheck.make ~print:String.escaped utf8_gen)
    (fun s -> String.equal (message_of_report s) s)

let json_escape_any_bytes_qcheck =
  QCheck.Test.make
    ~name:"arbitrary bytes (incl. malformed UTF-8) still yield valid JSON"
    ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 24))
    (fun s -> ignore (message_of_report s : string); true)

let test_json_escape_fixed () =
  (* A known-answer row: NUL, tab, quote, backslash, a 2-byte and a
     4-byte sequence survive unchanged through escape + parse. *)
  let s = "a\x00\t\"\\\xc3\xa9\xf0\x9f\x90\xab end" in
  Alcotest.(check string) "fixed vector round-trips" s (message_of_report s);
  (* A lone continuation byte is malformed: the report must still be
     parseable JSON (the byte is sanitised, not round-tripped). *)
  ignore (message_of_report "bad \x80 byte" : string)

(* ---- --only-rule filtering ---- *)

let test_only_rules_filter () =
  let cwd = Sys.getcwd () in
  (* a throwaway tree whose relative layout matches the repo's, so the
     lib/-scoped rules apply *)
  let dir = Filename.temp_file "planck_only_rule" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  Sys.mkdir (Filename.concat dir "lib/netsim") 0o755;
  let file = Filename.concat dir "lib/netsim/clock.ml" in
  let oc = open_out file in
  output_string oc "let now () = Unix.gettimeofday ()\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir cwd;
      Sys.remove file;
      Sys.rmdir (Filename.concat dir "lib/netsim");
      Sys.rmdir (Filename.concat dir "lib");
      Sys.rmdir dir)
    (fun () ->
      Sys.chdir dir;
      let rules r = List.map (fun f -> f.Finding.rule) r.Engine.kept in
      let all = rules (Engine.lint_paths [ "lib" ]) in
      Alcotest.(check bool)
        "both rules fire unfiltered" true
        (List.mem "wall-clock" all && List.mem "missing-mli" all);
      Alcotest.(check (list string))
        "--only-rule keeps just the requested rule" [ "wall-clock" ]
        (rules (Engine.lint_paths ~only_rules:[ "wall-clock" ] [ "lib" ])))

(* ---- the repo is lint-clean ---- *)

let test_repo_clean () =
  (* Tests run from _build/default/test; walk up to the repo root, which
     is where dune places the source copies of lib/. *)
  let cwd = Sys.getcwd () in
  let root = Filename.dirname cwd in
  if Sys.file_exists (Filename.concat root "lib") then
    Fun.protect
      ~finally:(fun () -> Sys.chdir cwd)
      (fun () ->
        Sys.chdir root;
        (* Deep tier with the build tree's own .cmt files: the typed
           rules replace their syntactic cousins on covered files, so
           this checks the same configuration CI enforces. Dead-export
           needs bin/bench cmts for references, which a bare runtest
           need not have built, so it stays off here. The domain tier
           always runs, so the committed baseline (which absorbs the
           justified shared-mutable singletons) applies. *)
        let deep =
          {
            Engine.cmt_dirs = [ "." ];
            baseline_file = Some "tools/lint/lint_baseline.txt";
            dead_export = false;
            shared_state_out = None;
            ownership_out = None;
          }
        in
        let r = Engine.lint_paths ~deep [ "lib" ] in
        Alcotest.(check (list string)) "no unsuppressed findings in lib/" []
          (List.map
             (fun f ->
               Printf.sprintf "%s:%d [%s]" f.Finding.file f.Finding.line
                 f.Finding.rule)
             r.Engine.kept);
        Alcotest.(check bool) "deep tier indexed the build tree" true
          (r.Engine.deep_units > 20);
        Alcotest.(check bool) "linted a non-trivial tree" true
          (r.Engine.files_linted > 20))

let tests =
  [
    Alcotest.test_case "wall-clock rule" `Quick test_wall_clock;
    Alcotest.test_case "ambient-random rule" `Quick test_ambient_random;
    Alcotest.test_case "hashtbl-iteration rule" `Quick test_hashtbl_iteration;
    Alcotest.test_case "poly-compare rule" `Quick test_poly_compare;
    Alcotest.test_case "keyed-poly-equal rule" `Quick test_keyed_poly_equal;
    Alcotest.test_case "float-equality rule" `Quick test_float_equality;
    Alcotest.test_case "hot-alloc rule" `Quick test_hot_alloc;
    Alcotest.test_case "hot-schedule rule" `Quick test_hot_schedule;
    Alcotest.test_case "missing-mli rule" `Quick test_missing_mli;
    Alcotest.test_case "open-lib rule" `Quick test_open_lib;
    Alcotest.test_case "ignored-result rule" `Quick test_ignored_result;
    Alcotest.test_case "parse-error rule" `Quick test_parse_error;
    Alcotest.test_case "suppression directives" `Quick test_suppression;
    Alcotest.test_case "text report" `Quick test_text_report;
    Alcotest.test_case "json report" `Quick test_json_report;
    Alcotest.test_case "json escaping fixed vectors" `Quick
      test_json_escape_fixed;
    QCheck_alcotest.to_alcotest json_escape_round_trip_qcheck;
    QCheck_alcotest.to_alcotest json_escape_any_bytes_qcheck;
    Alcotest.test_case "--only-rule filters kept findings" `Quick
      test_only_rules_filter;
    Alcotest.test_case "repo tree is lint-clean" `Quick test_repo_clean;
  ]
