module Time = Planck_util.Time

type output =
  | Metrics_json of string
  | Metrics_csv of string
  | Trace_json of string
  | Custom of (unit -> unit)

type t = {
  registry : Metrics.registry;
  trace : Trace.t;
  outputs : output list;
  mutable flushes : int;
}

let create ?(registry = Metrics.default) ?(trace = Trace.default) ~outputs ()
    =
  { registry; trace; outputs; flushes = 0 }

let sp_flush = Profile.register "flusher.flush"

let flush t =
  t.flushes <- t.flushes + 1;
  Profile.enter sp_flush;
  List.iter
    (fun output ->
      match output with
      | Metrics_json path ->
          Export.write_file ~path (Export.metrics_json t.registry)
      | Metrics_csv path ->
          Export.write_file ~path (Export.metrics_csv t.registry)
      | Trace_json path ->
          Export.write_file ~path (Trace.to_chrome_json t.trace)
      | Custom f -> f ())
    t.outputs;
  Profile.exit sp_flush

let flushes t = t.flushes

(* The engine lives above this library (netsim depends on telemetry),
   so periodic flushing takes the scheduler as a capability and returns
   whatever handle it produces — pass [Engine.every engine] partially
   applied for fire-and-forget, or [Engine.periodic engine] to keep the
   cancellable timer:

     Flusher.schedule fl ~period:(Time.ms 100)
       ~every:(fun ~period f -> Engine.periodic engine ~period f)  *)
let schedule t ~every ~period =
  if period <= 0 then invalid_arg "Flusher.schedule: period must be positive";
  every ~period (fun () -> flush t)
