(* The bounded-state collector evaluation: resident state and memory
   at one million concurrent flows (exact table vs sketch tier),
   count-min estimate accuracy against ground truth, and TE decision
   agreement between the exact and tiered backends on the
   elephant-dominated reference workload. *)

open Exp_common
module Journal = Planck_telemetry.Journal
module Metrics = Planck_telemetry.Metrics
module Count_min = Planck_sketch.Count_min
module Tiered = Planck_sketch.Tiered_table
module Flow_table = Planck_collector.Flow_table
module Ip = Planck_packet.Ipv4_addr
module Mac = Planck_packet.Mac
module Generate = Planck_workloads.Generate

(* Distinct 5-tuples for up to 2^20 flows: the low bits of the source
   address alone separate them; ports add realistic spread. *)
let key_of i =
  {
    FK.src_ip = Ip.of_int (0x0a00_0000 lor (i land 0xFFFFF));
    dst_ip = Ip.of_int (0x0b00_0000 lor (i lsr 8));
    src_port = 1_024 + (i land 0x7FFF);
    dst_port = 80;
    protocol = 6;
  }

let set_gauge name v =
  Metrics.Gauge.set_int (Metrics.gauge ~subsystem:"bounded_state" ~name ()) v

let mtu_payload = 1_460

(* ---- resident state at 1M concurrent flows ---- *)

let state_bound () =
  section "Bounded state: 1,000,000 concurrent flows, exact vs tiered";
  let n = 1_000_000 in
  let elephant_every = 1_000 in
  let elephant_samples = 30 in
  let mac = Mac.host 1 in
  let rate = rate_10g in
  (* Exact backend: one entry per sampled 5-tuple, no matter what. *)
  let exact = Flow_table.create ~timeout:(Time.s 10) () in
  for i = 0 to n - 1 do
    ignore
      (Flow_table.touch exact ~key:(key_of i) ~time:(Time.ns i) ~dst_mac:mac
         ())
  done;
  let exact_entries = Flow_table.size exact in
  let exact_words = Obj.reachable_words (Obj.repr exact) in
  (* Tiered backend: same sample stream; elephants send enough to cross
     the promotion threshold, mice stay in the sketch. *)
  (* Switch id 999 keeps this synthetic instance's "sw999" telemetry
     label clear of the fat-tree runs' real sw0..sw19 counters. *)
  let tiered = Tiered.create ~switch:999 ~flow_timeout:(Time.s 10) () in
  let now = ref Time.zero in
  for i = 0 to n - 1 do
    let key = key_of i in
    let samples =
      if i mod elephant_every = 0 then elephant_samples else 1
    in
    for _ = 1 to samples do
      now := !now + Time.ns 30;
      Tiered.tick tiered ~now:!now;
      ignore
        (Tiered.sample tiered ~key ~now:!now ~bytes:mtu_payload ~max_rate:rate
           ~dst_mac:mac)
    done
  done;
  let tiered_exact = Tiered.exact_size tiered in
  let tiered_words = Obj.reachable_words (Obj.repr tiered) in
  let sketch_words = Count_min.words (Tiered.sketch tiered) in
  let ratio = float_of_int exact_entries /. float_of_int (max 1 tiered_exact) in
  note "exact backend:  %d entries, %d words (%.1f words/flow)" exact_entries
    exact_words
    (float_of_int exact_words /. float_of_int n);
  note "tiered backend: %d exact entries (+%d-word sketch), %d words total"
    tiered_exact sketch_words tiered_words;
  note "promotions %d, demotions %d, suppressed %d" (Tiered.promotions tiered)
    (Tiered.demotions tiered)
    (Tiered.suppressed_promotions tiered)
    ;
  note "resident exact entries: %.0fx fewer under the sketch tier" ratio;
  set_gauge "exact_entries_exact_backend" exact_entries;
  set_gauge "exact_entries_tiered_backend" tiered_exact;
  set_gauge "exact_backend_words" exact_words;
  set_gauge "tiered_backend_words" tiered_words;
  set_gauge "sketch_words" sketch_words;
  set_gauge "state_ratio" (int_of_float ratio);
  set_gauge "promotions" (Tiered.promotions tiered);
  set_gauge "demotions" (Tiered.demotions tiered);
  set_gauge "promotions_suppressed" (Tiered.suppressed_promotions tiered)

(* ---- sketch estimate accuracy against ground truth ---- *)

let estimate_accuracy () =
  section "Count-min estimate accuracy (conservative update)";
  let flows = 100_000 in
  let elephant_every = 100 in
  let cms = Count_min.create () in
  let truth = Array.make flows 0 in
  for i = 0 to flows - 1 do
    let bytes =
      if i mod elephant_every = 0 then 100 * mtu_payload else mtu_payload
    in
    truth.(i) <- bytes;
    ignore (Count_min.update cms (key_of i) bytes)
  done;
  let under = ref 0 in
  let over_sum = ref 0.0 in
  let eleph_err_sum = ref 0.0 and eleph_n = ref 0 in
  for i = 0 to flows - 1 do
    let est = Count_min.query cms (key_of i) in
    if est < truth.(i) then incr under;
    over_sum := !over_sum +. float_of_int (est - truth.(i));
    if i mod elephant_every = 0 then begin
      eleph_err_sum :=
        !eleph_err_sum
        +. (float_of_int (est - truth.(i)) /. float_of_int truth.(i) *. 100.0);
      incr eleph_n
    end
  done;
  let mean_over = !over_sum /. float_of_int flows in
  let eleph_err = !eleph_err_sum /. float_of_int !eleph_n in
  note "%d flows into a %dx%d sketch (%d words)" flows (Count_min.depth cms)
    (Count_min.width cms) (Count_min.words cms);
  note "underestimates: %d (count-min guarantees 0)" !under;
  note "mean overestimate %.0f B; elephant relative error %.2f%%" mean_over
    eleph_err;
  set_gauge "accuracy_underestimates" !under;
  set_gauge "accuracy_mean_overestimate_bytes" (int_of_float mean_over);
  set_gauge "accuracy_elephant_error_pct_x100"
    (int_of_float (eleph_err *. 100.0))

(* ---- TE decision agreement, exact vs tiered ---- *)

(* Run the reference elephant-dominated workload under PlanckTE and
   collect the set of flows the controller decided to reroute. *)
let reroute_decisions ~flow_table ~seed ~size =
  let buf = Buffer.create 4096 in
  let was = Journal.enabled Journal.default in
  Journal.clear Journal.default;
  Journal.set_enabled Journal.default true;
  Journal.set_writer Journal.default
    (Some
       (fun line ->
         Buffer.add_string buf line;
         Buffer.add_char buf '\n'));
  Fun.protect
    ~finally:(fun () ->
      Journal.set_writer Journal.default None;
      Journal.set_enabled Journal.default was;
      Journal.clear Journal.default)
    (fun () ->
      let summary =
        Experiment.run
          ~spec:(Testbed.paper_fat_tree ~seed ())
          ~scheme:Scheme.planck_te_default ~workload:(Experiment.Stride 8)
          ~size ~flow_table ()
      in
      let decisions =
        match Journal.of_ndjson (Buffer.contents buf) with
        | Error _ -> []
        | Ok events ->
            List.filter_map
              (fun (e : Journal.event) ->
                match e.Journal.body with
                | Journal.Reroute_decision { flow; _ } -> Some flow
                | _ -> None)
              events
      in
      (summary, List.sort_uniq compare decisions))

let te_agreement opts =
  section "TE decision agreement: exact vs tiered flow table (stride-8)";
  let size = (if opts.full then 50 else 5) * 1024 * 1024 in
  let exact_summary, exact_flows =
    reroute_decisions ~flow_table:Scheme.Exact ~seed:opts.seed ~size
  in
  let tiered_summary, tiered_flows =
    reroute_decisions ~flow_table:Scheme.tiered_default ~seed:opts.seed ~size
  in
  let inter =
    List.filter (fun f -> List.mem f tiered_flows) exact_flows
  in
  let union = List.sort_uniq compare (exact_flows @ tiered_flows) in
  let agreement =
    if union = [] then 100.0
    else float_of_int (List.length inter) /. float_of_int (List.length union)
         *. 100.0
  in
  note "exact:  %d reroutes over %d flows, %.3f Gbps mean goodput"
    exact_summary.Experiment.reroutes (List.length exact_flows)
    exact_summary.Experiment.avg_goodput_gbps;
  note "tiered: %d reroutes over %d flows, %.3f Gbps mean goodput"
    tiered_summary.Experiment.reroutes (List.length tiered_flows)
    tiered_summary.Experiment.avg_goodput_gbps;
  note "rerouted-flow agreement: %.0f%% (%d of %d flows)" agreement
    (List.length inter) (List.length union);
  set_gauge "te_agreement_pct" (int_of_float agreement);
  set_gauge "te_reroutes_exact" exact_summary.Experiment.reroutes;
  set_gauge "te_reroutes_tiered" tiered_summary.Experiment.reroutes

(* ---- churn: the workload the sketch tier exists for ---- *)

let churn opts =
  section "Churn workload under the tiered table";
  let spec =
    if opts.full then
      { Generate.default_churn with Generate.flows = 20_000 }
    else Generate.default_churn
  in
  (* The default registry's counters are cumulative across every
     experiment in the process (the state-bound drive, the TE runs);
     diff a snapshot around the run so the numbers are this run's. *)
  let sum name snap =
    List.fold_left
      (fun acc (s : Metrics.snapshot) ->
        match s.Metrics.value with
        | Metrics.Counter_value v
          when s.Metrics.subsystem = "sketch" && s.Metrics.name = name ->
            acc + v
        | _ -> acc)
      0 snap
  in
  let before = Metrics.snapshot Metrics.default in
  let summary =
    Experiment.run
      ~spec:(Testbed.paper_fat_tree ~seed:opts.seed ())
      ~scheme:Scheme.planck_te_default
      ~workload:(Experiment.Churn spec)
      ~size:0 ~flow_table:Scheme.tiered_default ()
  in
  let after = Metrics.snapshot Metrics.default in
  let delta name = sum name after - sum name before in
  note "%d flows launched (%d B mice, %d B elephants every %dth)"
    spec.Generate.flows spec.Generate.mouse_bytes spec.Generate.elephant_bytes
    spec.Generate.elephant_every;
  note "all completed: %b, %d reroutes, %.3f Gbps mean goodput"
    summary.Experiment.all_completed summary.Experiment.reroutes
    summary.Experiment.avg_goodput_gbps;
  if Metrics.enabled Metrics.default then
    note "promotions %d, demotions %d, suppressed %d (all switches)"
      (delta "promotions") (delta "demotions")
      (delta "promotions_suppressed")

let run opts =
  state_bound ();
  estimate_accuracy ();
  te_agreement opts;
  churn opts;
  paper
    "bounded-state extension: the paper's collector keeps one table entry";
  paper
    "per sampled 5-tuple (Sec 3.2.2); the sketch tier bounds resident state";
  paper "at O(sketch + elephants) for millions of concurrent flows."
