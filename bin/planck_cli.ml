(* planck-cli: inspect topologies, run workload/scheme experiments, and
   capture switch vantage points from the command line.

     dune exec bin/planck_cli.exe -- topology
     dune exec bin/planck_cli.exe -- run --workload stride8 --scheme planck-te
     dune exec bin/planck_cli.exe -- capture --output /tmp/sw0.pcap
*)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Table = Planck_util.Table
module Mac = Planck_packet.Mac
module Engine = Planck_netsim.Engine
module Fabric = Planck_topology.Fabric
module Routing = Planck_topology.Routing
module Collector = Planck_collector.Collector
module Te = Planck_controller.Te
module Reroute = Planck_controller.Reroute
module Poller = Planck_baselines.Poller
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Export = Planck_telemetry.Export
module Flusher = Planck_telemetry.Flusher
open Planck

(* ---- telemetry plumbing (--metrics-out / --trace-out) ---- *)

(* Passing either flag flips the process-wide registry/trace on for the
   whole run; at exit the snapshots are written (the capture subcommand
   additionally flushes periodically on the simulation clock). Each
   output path is probed up front so a typo fails before the simulation
   runs, not at the first flush. *)
let telemetry_setup metrics_out trace_out =
  let probe = function
    | None -> true
    | Some path -> (
        try
          Export.write_file ~path "";
          true
        with Sys_error msg ->
          Printf.eprintf "planck-cli: cannot write %s\n" msg;
          false)
  in
  if probe metrics_out && probe trace_out then begin
    if metrics_out <> None then Metrics.set_enabled Metrics.default true;
    if trace_out <> None then Trace.set_enabled Trace.default true;
    true
  end
  else false

let telemetry_dump metrics_out trace_out =
  Option.iter
    (fun path ->
      Export.write_file ~path (Export.metrics_json Metrics.default);
      Printf.printf "wrote %d metrics to %s\n"
        (Metrics.size Metrics.default)
        path)
    metrics_out;
  Option.iter
    (fun path ->
      Export.write_file ~path (Trace.to_chrome_json Trace.default);
      Printf.printf
        "wrote %d trace events to %s (open in chrome://tracing or Perfetto)\n"
        (Trace.length Trace.default) path)
    trace_out

(* ---- topology subcommand ---- *)

let show_topology k seed =
  let tb = Testbed.create { (Testbed.paper_fat_tree ~seed ()) with
                            Testbed.topology = Testbed.Fat_tree { k } } in
  let fabric = tb.Testbed.fabric in
  Printf.printf "fat-tree k=%d: %d switches, %d hosts, %d routes installed\n" k
    (Fabric.switch_count fabric) (Fabric.host_count fabric)
    (Planck_netsim.Switch.route_count (Fabric.switch fabric 0));
  for sw = 0 to Fabric.switch_count fabric - 1 do
    let ports =
      String.concat " "
        (List.map
           (fun port ->
             match Fabric.peer fabric ~switch:sw ~port with
             | Fabric.To_host h -> Printf.sprintf "p%d:h%d" port h
             | Fabric.To_switch (s, p) -> Printf.sprintf "p%d:s%d.%d" port s p
             | Fabric.To_monitor -> Printf.sprintf "p%d:monitor" port
             | Fabric.Unwired -> Printf.sprintf "p%d:-" port)
           (List.init (Fabric.switch_ports fabric) Fun.id))
    in
    Printf.printf "  s%-2d %s\n" sw ports
  done;
  (* Alternate routes for one cross-pod pair. *)
  let hosts = Fabric.host_count fabric in
  let src = 0 and dst = hosts / 2 in
  Printf.printf "routes h%d -> h%d:\n" src dst;
  for alt = 0 to Routing.alts tb.Testbed.routing - 1 do
    let mac = Routing.mac_for tb.Testbed.routing ~dst ~alt in
    let hops = Routing.path tb.Testbed.routing ~src ~dst_mac:mac in
    Printf.printf "  alt %d (%s): %s\n" alt (Mac.to_string mac)
      (String.concat " -> "
         (List.map (fun h -> Printf.sprintf "s%d" h.Routing.switch) hops))
  done;
  0

(* ---- run subcommand ---- *)

let parse_workload = function
  | "stride8" -> Ok (Experiment.Stride 8)
  | "stride4" -> Ok (Experiment.Stride 4)
  | "shuffle" -> Ok (Experiment.Shuffle { concurrency = 2 })
  | "bijection" -> Ok Experiment.Random_bijection
  | "random" -> Ok Experiment.Random
  | "staggered" ->
      Ok (Experiment.Staggered_prob { p_edge = 0.2; p_pod = 0.3 })
  | s -> Error (Printf.sprintf "unknown workload %s" s)

let parse_scheme = function
  | "static" -> Ok (`Fabric Scheme.Static)
  | "planck-te" -> Ok (`Fabric Scheme.planck_te_default)
  | "planck-te-openflow" ->
      Ok
        (`Fabric
           (Scheme.Planck_te
              { Te.default_config with Te.mechanism = Reroute.Openflow }))
  | "poll-1s" -> Ok (`Fabric Scheme.poll_1s)
  | "poll-100ms" -> Ok (`Fabric Scheme.poll_100ms)
  | "sflow-te" -> Ok (`Fabric Scheme.sflow_te_default)
  | "optimal" -> Ok `Optimal
  | s -> Error (Printf.sprintf "unknown scheme %s" s)

let run_experiment () workload_name scheme_name size_mib runs seed csv
    metrics_out trace_out =
  match (parse_workload workload_name, parse_scheme scheme_name) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok workload, Ok scheme when telemetry_setup metrics_out trace_out ->
      let spec, sch =
        match scheme with
        | `Fabric s -> (Testbed.paper_fat_tree ~seed (), s)
        | `Optimal -> (Testbed.optimal ~seed (), Scheme.Static)
      in
      let summaries =
        Experiment.repeat ~runs ~spec ~scheme:sch ~workload
          ~size:(size_mib * 1024 * 1024) ~horizon:(Time.s 600) ()
      in
      let header =
        [ "run"; "avg_gbps"; "reroutes"; "all_completed"; "flows" ]
      in
      let rows =
        List.mapi
          (fun i s ->
            [
              string_of_int i;
              Printf.sprintf "%.3f" s.Experiment.avg_goodput_gbps;
              string_of_int s.Experiment.reroutes;
              string_of_bool s.Experiment.all_completed;
              string_of_int (List.length s.Experiment.flows);
            ])
          summaries
      in
      if csv then print_string (Table.csv ~header rows)
      else begin
        Printf.printf "%s / %s, %d MiB flows, %d run(s):\n" workload_name
          scheme_name size_mib runs;
        Table.print ~header rows;
        Printf.printf "mean average flow throughput: %.3f Gbps\n"
          (Experiment.mean_avg_goodput summaries)
      end;
      telemetry_dump metrics_out trace_out;
      0
  | _ -> 1

(* ---- capture subcommand ---- *)

let capture output duration_ms seed metrics_out trace_out =
  if not (telemetry_setup metrics_out trace_out) then 1
  else begin
    let tb = Testbed.create (Testbed.paper_fat_tree ~seed ()) in
  let collector =
    Collector.create tb.Testbed.engine ~switch:0 ~routing:tb.Testbed.routing
      ~link_rate:(Testbed.link_rate tb) ()
  in
  Collector.attach collector;
  (* Keep the snapshot files fresh while the capture runs: flush every
     simulated millisecond on the engine's own clock. *)
  (match metrics_out with
  | Some path ->
      let fl = Flusher.create ~outputs:[ Flusher.Metrics_json path ] () in
      Flusher.schedule fl ~period:(Time.ms 1)
        ~every:(fun ~period f -> Engine.every tb.Testbed.engine ~period f)
  | None -> ());
  (* Some background traffic through switch 0 (an edge switch). *)
  ignore
    (Planck_tcp.Flow.start ~src:tb.Testbed.endpoints.(0)
       ~dst:tb.Testbed.endpoints.(12) ~src_port:40_000 ~dst_port:5_012
       ~size:(1 lsl 30) ());
  ignore
    (Planck_tcp.Flow.start ~src:tb.Testbed.endpoints.(1)
       ~dst:tb.Testbed.endpoints.(2) ~src_port:40_001 ~dst_port:5_002
       ~size:(1 lsl 30) ());
  Engine.run ~until:(Time.ms duration_ms) tb.Testbed.engine;
  let pcap = Collector.vantage_pcap collector in
  let oc = open_out_bin output in
  output_string oc pcap;
  close_out oc;
  Printf.printf "wrote %d samples (%d bytes) to %s\n"
    (Collector.vantage_count collector)
    (String.length pcap) output;
  telemetry_dump metrics_out trace_out;
  0
  end

(* ---- cmdliner wiring ---- *)

open Cmdliner

let setup_logs debug =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if debug then Some Logs.Debug else Some Logs.Warning)

let debug_arg =
  let doc = "Print controller/collector debug logs." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "debug" ] ~doc))

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Enable telemetry and write the metric snapshot as JSON.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable sim-time tracing and write a Chrome trace_event JSON \
           (open in chrome://tracing or ui.perfetto.dev).")

let topology_cmd =
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Fat-tree arity.") in
  Cmd.v
    (Cmd.info "topology" ~doc:"Print the fat-tree wiring and alternate routes")
    Term.(const show_topology $ k $ seed_arg)

let run_cmd =
  let workload =
    Arg.(
      value & opt string "stride8"
      & info [ "workload" ]
          ~doc:"stride8|stride4|shuffle|bijection|random|staggered")
  in
  let scheme =
    Arg.(
      value & opt string "planck-te"
      & info [ "scheme" ]
          ~doc:
            "static|planck-te|planck-te-openflow|poll-1s|poll-100ms|sflow-te|optimal")
  in
  let size =
    Arg.(value & opt int 50 & info [ "size-mib" ] ~doc:"Flow size in MiB.")
  in
  let runs = Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Repetitions.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"CSV output.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload under a routing scheme")
    Term.(
      const run_experiment $ debug_arg $ workload $ scheme $ size $ runs
      $ seed_arg $ csv $ metrics_out_arg $ trace_out_arg)

let capture_cmd =
  let output =
    Arg.(
      value
      & opt string "/tmp/planck-capture.pcap"
      & info [ "output"; "o" ] ~doc:"Output pcap path.")
  in
  let duration =
    Arg.(value & opt int 10 & info [ "duration-ms" ] ~doc:"Capture length.")
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Dump a switch vantage point to pcap")
    Term.(
      const capture $ output $ duration $ seed_arg $ metrics_out_arg
      $ trace_out_arg)

let () =
  let doc = "Planck (SIGCOMM 2014 reproduction) command-line tool" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "planck-cli" ~doc)
          [ topology_cmd; run_cmd; capture_cmd ]))
