module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Engine = Planck_netsim.Engine
module Host = Planck_netsim.Host
module Packet = Planck_packet.Packet
module Headers = Planck_packet.Headers
module Flow_key = Planck_packet.Flow_key
module Seq32 = Planck_packet.Seq32
module Journal = Planck_telemetry.Journal

type params = {
  mss : int;
  initial_window : int;
  min_rto : Time.t;
  max_flight : int;
  handshake : bool;
  isn : int;
}

let default_params =
  {
    mss = Packet.max_tcp_payload;
    initial_window = 10;
    min_rto = Time.ms 200;
    max_flight = 1024 * 1024;
    handshake = true;
    isn = 0;
  }

type phase = Syn_sent | Established | Done

type t = {
  engine : Engine.t;
  params : params;
  src : Endpoint.t;
  dst : Endpoint.t;
  data_key : Flow_key.t; (* src -> dst direction *)
  flow_size : int;
  isn : int; (* initial sequence number; all seq fields are isn-based *)
  fin : int; (* isn + flow_size, the sequence one past the last byte *)
  mutable phase : phase;
  (* Sender variables, all in full-width byte offsets. *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int; (* highest byte ever sent; survives RTO rewinds *)
  mutable cwnd : float; (* bytes *)
  mutable ssthresh : float; (* bytes *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  (* SACK scoreboard: disjoint sorted [start, stop) ranges above
     snd_una the receiver has reported holding. *)
  mutable sacked : (int * int) list;
  mutable retx_next : int; (* lowest hole not yet retransmitted *)
  (* RTT estimation (RFC 6298). *)
  mutable srtt : float; (* seconds; negative = no sample yet *)
  mutable rttvar : float;
  mutable min_rtt : float; (* lowest sample seen; HyStart baseline *)
  (* CUBIC window-growth state (windows in MSS units). *)
  mutable cubic_epoch : Time.t; (* -1 = epoch not started *)
  mutable cubic_w_max : float; (* window before the last reduction *)
  mutable cubic_k : float; (* seconds to regain w_max *)
  mutable cubic_origin : float;
  mutable cubic_epoch_w : float; (* window (MSS) when the epoch began *)
  mutable rto : Time.t;
  mutable rtt_probe : (int * Time.t) option; (* (covering ack, sent at) *)
  (* Retransmission timer: a cancellable engine handle — rearming or
     disarming leaves no zombie event in the queue. *)
  rto_timer : Engine.Timer.t;
  (* Receiver variables. *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list; (* disjoint sorted [start, stop) *)
  (* Bookkeeping. *)
  started_at : Time.t;
  mutable completed_at : Time.t option;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable on_complete : (t -> unit) option;
}

let clock_granularity = 0.001 (* seconds *)
let max_rto = Time.s 60

(* CUBIC constants (Ha, Rhee, Xu): scaling factor and multiplicative
   decrease, as in Linux. *)
let cubic_c = 0.4
let cubic_beta = 0.7

(* ---- Packet construction ---- *)

let src_host t = Endpoint.host t.src
let dst_host t = Endpoint.host t.dst

(* Journal label; only built when the journal is enabled (call sites
   guard), so the formatting never costs the hot path anything. *)
(* planck-lint: allow hot-alloc -- every caller guards with Journal.enabled *)
let flow_label t = Format.asprintf "%a" Flow_key.pp t.data_key

let data_packet t ~seq ~len ~flags =
  match Host.arp_lookup (src_host t) (Host.ip (dst_host t)) with
  | None -> None
  | Some dst_mac ->
      Some
        (Packet.tcp
           ~src_mac:(Host.mac (src_host t))
           ~dst_mac
           ~src_ip:(Host.ip (src_host t))
           ~dst_ip:(Host.ip (dst_host t))
           ~src_port:t.data_key.Flow_key.src_port
           ~dst_port:t.data_key.Flow_key.dst_port ~seq:(Seq32.wrap seq)
           ~ack_seq:0 ~flags ~payload_len:len ())

let ack_packet t ?(latest = -1) ~ack_seq ~flags () =
  match Host.arp_lookup (dst_host t) (Host.ip (src_host t)) with
  | None -> None
  | Some dst_mac ->
      (* Up to three out-of-order ranges ride along as SACK blocks, the
         one containing the most recent arrival first (so the sender's
         picture densifies as packets land). *)
      let ordered =
        if latest < 0 then t.ooo
        else
          let containing, others =
            List.partition (fun (a, b) -> a <= latest && latest < b) t.ooo
          in
          containing @ List.filter (fun (a, _) -> a > latest) others
          @ List.filter (fun (a, _) -> a <= latest) others
      in
      let sack =
        List.filteri
          (fun i _ -> i < Headers.Tcp.max_sack_blocks)
          (List.map (fun (a, b) -> (Seq32.wrap a, Seq32.wrap b)) ordered)
      in
      Some
        (Packet.tcp
           ~src_mac:(Host.mac (dst_host t))
           ~dst_mac
           ~src_ip:(Host.ip (dst_host t))
           ~dst_ip:(Host.ip (src_host t))
           ~src_port:t.data_key.Flow_key.dst_port
           ~dst_port:t.data_key.Flow_key.src_port ~seq:0
           ~ack_seq:(Seq32.wrap ack_seq) ~flags ~sack ~payload_len:0 ())

(* ---- Retransmission timer ---- *)

let flight t = t.snd_nxt - t.snd_una

(* ---- SACK scoreboard ----

   [sacked] holds the receiver-reported ranges above snd_una. Following
   RFC 6675's IsLost rule, an un-SACKed octet counts as lost once at
   least 3 MSS of data above it has been SACKed; lost octets below
   [retx_next] have been retransmitted (so they are back in the pipe),
   lost octets above it have not. *)

let sacked_bytes_in t a b =
  List.fold_left
    (fun acc (x, y) ->
      let x = max x a and y = min y b in
      if y > x then acc + (y - x) else acc)
    0 t.sacked

let sacked_bytes t = sacked_bytes_in t t.snd_una t.snd_max

let highest_sacked t =
  List.fold_left (fun acc (_, b) -> max acc b) t.snd_una t.sacked

let lost_cutoff t = highest_sacked t - (3 * t.params.mss)

let unsacked_bytes_in t a b =
  if b <= a then 0 else b - a - sacked_bytes_in t a b

(* Outstanding data the network still holds: in-flight bytes minus
   SACKed bytes minus estimated-lost bytes not yet retransmitted. *)
let pipe t =
  let lost_unretx =
    unsacked_bytes_in t (max t.snd_una t.retx_next) (lost_cutoff t)
  in
  flight t - sacked_bytes t - lost_unretx

let prune_sacked t =
  t.sacked <-
    List.filter_map
      (fun (a, b) ->
        if b <= t.snd_una then None else Some (max a t.snd_una, b))
      t.sacked

(* Lowest estimated-lost, not-yet-retransmitted hole. *)
let next_hole t =
  let start = max t.snd_una t.retx_next in
  let cutoff = min (lost_cutoff t) t.recover in
  let rec scan p = function
    | [] -> if p < cutoff then Some p else None
    | (a, b) :: rest ->
        if p < a then if p < cutoff then Some p else None
        else scan (max p b) rest
  in
  scan start t.sacked

let cubic_on_loss t =
  let mss = float_of_int t.params.mss in
  let w = t.cwnd /. mss in
  (* Fast convergence: release bandwidth faster when the window is
     still below its previous maximum. *)
  t.cubic_w_max <-
    (if w < t.cubic_w_max then w *. (1.0 +. cubic_beta) /. 2.0 else w);
  t.cubic_epoch <- -1;
  max (t.cwnd *. cubic_beta) (2.0 *. mss)

let rec arm_timer t = Engine.Timer.reschedule t.rto_timer ~delay:t.rto
and disarm_timer t = Engine.Timer.cancel t.rto_timer

(* ---- RTO computation ---- *)

and update_rtt t sample_s =
  if t.srtt < 0.0 then begin
    t.srtt <- sample_s;
    t.rttvar <- sample_s /. 2.0
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. abs_float (t.srtt -. sample_s));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample_s)
  end;
  t.min_rtt <- min t.min_rtt sample_s;
  (* HyStart (delay-based): leave slow start as soon as the RTT shows
     queue build-up, instead of overshooting until mass loss. The
     300 us threshold sits well above the host-stack jitter floor
     (~60 us) and well below the delay of a harmful standing queue. *)
  if
    t.cwnd < t.ssthresh
    && sample_s >= t.min_rtt +. max 0.0003 (t.min_rtt /. 8.0)
  then t.ssthresh <- t.cwnd;
  let rto_s = t.srtt +. max clock_granularity (4.0 *. t.rttvar) in
  t.rto <- max t.params.min_rto (min max_rto (Time.of_float_s rto_s))

(* ---- Sending ---- *)

and insert_sorted intervals (start, stop) =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) ((start, stop) :: intervals)
  in
  let rec coalesce = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
        coalesce ((a1, max b1 b2) :: rest)
    | interval :: rest -> interval :: coalesce rest
    | [] -> []
  in
  coalesce sorted

and transmit_segment t ~seq ~len ~retransmission =
  (match t.rtt_probe with
  | Some (probe_ack, _) when retransmission && seq < probe_ack ->
      (* Karn's rule: a retransmission below the probed ack invalidates
         the outstanding RTT sample. *)
      t.rtt_probe <- None
  | Some _ | None -> ());
  if (not retransmission) && t.rtt_probe = None then
    t.rtt_probe <- Some (seq + len, Engine.now t.engine);
  match data_packet t ~seq ~len ~flags:Headers.Tcp_flags.ack with
  | None -> ()
  | Some packet ->
      if retransmission then begin
        t.retransmits <- t.retransmits + 1;
        if Journal.enabled Journal.default then
          Journal.record Journal.default ~ts:(Engine.now t.engine)
            (Journal.Tcp_retransmit { flow = flow_label t; seq })
      end;
      Host.send (src_host t) packet

and send_new_data t ~window =
  let len = min t.params.mss (t.fin - t.snd_nxt) in
  if len > 0 && pipe t + len <= window then begin
    (* Below snd_max this is a post-rewind resend, not new data. *)
    transmit_segment t ~seq:t.snd_nxt ~len
      ~retransmission:(t.snd_nxt < t.snd_max);
    t.snd_nxt <- t.snd_nxt + len;
    t.snd_max <- max t.snd_max t.snd_nxt;
    true
  end
  else false

(* RFC 6675-style recovery: fill the lowest holes first, then new data,
   keeping pipe under cwnd. *)
and send_in_recovery t ~window =
  let progress = ref true in
  while !progress do
    progress := false;
    if pipe t + t.params.mss <= window then begin
      match next_hole t with
      | Some hole ->
          let len = min t.params.mss (t.fin - hole) in
          if len > 0 then begin
            transmit_segment t ~seq:hole ~len ~retransmission:true;
            (* Advancing retx_next moves the hole back into the pipe. *)
            t.retx_next <- hole + len;
            progress := true
          end
      | None -> progress := send_new_data t ~window
    end
  done

and try_send t =
  if t.phase = Established then begin
    let window = min (int_of_float t.cwnd) t.params.max_flight in
    if t.in_recovery then send_in_recovery t ~window
    else begin
      let continue = ref true in
      while !continue do
        continue := send_new_data t ~window
      done
    end;
    if flight t > 0 && not (Engine.Timer.pending t.rto_timer) then
      arm_timer t
  end

(* ---- Timeout ---- *)

and on_timeout t =
  if t.phase = Syn_sent then begin
    (* Lost SYN (or SYN-ACK): retry the handshake. *)
    t.timeouts <- t.timeouts + 1;
    t.rto <- min max_rto (2 * t.rto);
    send_syn t
  end
  else if t.phase = Established && flight t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    if Journal.enabled Journal.default then
      Journal.record Journal.default ~ts:(Engine.now t.engine)
        (Journal.Tcp_timeout { flow = flow_label t; rto_ns = t.rto });
    let mss = float_of_int t.params.mss in
    t.ssthresh <- cubic_on_loss t;
    t.cwnd <- mss;
    t.in_recovery <- false;
    t.dupacks <- 0;
    t.sacked <- [];
    t.retx_next <- 0;
    t.rto <- min max_rto (2 * t.rto);
    (* Go-back-N: rewind and resend from the last cumulative ack. *)
    let len = min t.params.mss (t.fin - t.snd_una) in
    t.snd_nxt <- t.snd_una + len;
    transmit_segment t ~seq:t.snd_una ~len ~retransmission:true;
    arm_timer t
  end

(* ---- Handshake ---- *)

and send_syn t =
  (match data_packet t ~seq:t.isn ~len:0 ~flags:Headers.Tcp_flags.syn with
  | None -> ()
  | Some packet -> Host.send (src_host t) packet);
  arm_timer t

(* ---- Completion ---- *)

let complete t =
  if t.completed_at = None then begin
    t.completed_at <- Some (Engine.now t.engine);
    t.phase <- Done;
    disarm_timer t;
    (* Close the connection: the FIN also tells Planck collectors the
       flow ended (preferentially sampled under §9.2). *)
    (match data_packet t ~seq:t.fin ~len:0 ~flags:Headers.Tcp_flags.fin_ack with
    | Some packet -> Host.send (src_host t) packet
    | None -> ());
    match t.on_complete with
    | None -> ()
    | Some f ->
        t.on_complete <- None;
        f t
  end

(* ---- Sender: ACK processing ---- *)

let enter_recovery t =
  if Journal.enabled Journal.default then
    Journal.record Journal.default ~ts:(Engine.now t.engine)
      (Journal.Tcp_recovery_enter { flow = flow_label t });
  t.ssthresh <- cubic_on_loss t;
  t.recover <- t.snd_nxt;
  t.in_recovery <- true;
  t.cwnd <- t.ssthresh;
  t.retx_next <- t.snd_una;
  try_send t

let on_new_ack t ack =
  let newly = ack - t.snd_una in
  t.snd_una <- ack;
  (* After an RTO rewind an ack may cover bytes above snd_nxt. *)
  if ack > t.snd_nxt then t.snd_nxt <- ack;
  t.dupacks <- 0;
  (match t.rtt_probe with
  | Some (probe_ack, sent_at) when ack >= probe_ack ->
      t.rtt_probe <- None;
      update_rtt t (Time.to_float_s (Engine.now t.engine - sent_at))
  | Some _ | None -> ());
  let mss = float_of_int t.params.mss in
  prune_sacked t;
  if t.in_recovery then begin
    if ack >= t.recover then begin
      (* Full acknowledgment: leave recovery. *)
      t.in_recovery <- false;
      t.cwnd <- t.ssthresh
    end
    else
      (* Partial ack: holes are retransmitted once per recovery
         (monotone retx_next); a re-lost retransmission waits for the
         RTO, as in RFC 6675. *)
      t.retx_next <- max t.retx_next t.snd_una
  end
  else if t.cwnd < t.ssthresh then
    (* Slow start: one MSS per ACK (the receiver acks every segment). *)
    t.cwnd <- t.cwnd +. mss
  else begin
    (* CUBIC congestion avoidance: chase the cubic curve anchored at
       the window where the last loss happened. *)
    let w = t.cwnd /. mss in
    if t.cubic_epoch < 0 then begin
      t.cubic_epoch <- Engine.now t.engine;
      t.cubic_epoch_w <- w;
      if t.cubic_w_max > w then begin
        t.cubic_k <-
          Float.cbrt ((t.cubic_w_max -. w) /. cubic_c);
        t.cubic_origin <- t.cubic_w_max
      end
      else begin
        t.cubic_k <- 0.0;
        t.cubic_origin <- w
      end
    end;
    let elapsed =
      Time.to_float_s (Engine.now t.engine - t.cubic_epoch)
      +. (if t.srtt > 0.0 then t.srtt else 0.0)
    in
    let d = elapsed -. t.cubic_k in
    let cubic_target = t.cubic_origin +. (cubic_c *. d *. d *. d) in
    (* TCP-friendly region: at small RTTs the AIMD estimate dominates
       the cubic curve, keeping growth Reno-like (Linux does the
       same). *)
    let rtt = if t.srtt > 0.0 then t.srtt else 0.001 in
    let w_est =
      t.cubic_epoch_w
      +. (3.0 *. (1.0 -. cubic_beta) /. (1.0 +. cubic_beta)
          *. (elapsed /. rtt))
    in
    let target = max cubic_target w_est in
    if target > w then t.cwnd <- t.cwnd +. (mss *. (target -. w) /. w)
    else t.cwnd <- t.cwnd +. (mss *. 0.01 /. w)
  end;
  t.cwnd <- min t.cwnd (float_of_int t.params.max_flight);
  ignore newly;
  if t.snd_una >= t.fin then complete t
  else begin
    if flight t > 0 then arm_timer t else disarm_timer t;
    try_send t
  end

let on_dup_ack t =
  if t.in_recovery then try_send t
  else begin
    t.dupacks <- t.dupacks + 1;
    (* Enter recovery on the third dupack, or earlier if SACK already
       reports more than three segments' worth above a hole. *)
    if
      flight t > 0
      && (t.dupacks >= 3 || sacked_bytes t > 3 * t.params.mss)
    then enter_recovery t
  end

let sender_receive t packet =
  match Packet.tcp_headers packet with
  | None -> ()
  | Some (_, tcp) ->
      let flags = tcp.Headers.Tcp.flags in
      if t.phase = Syn_sent && flags.Headers.Tcp_flags.syn
         && flags.Headers.Tcp_flags.ack
      then begin
        t.phase <- Established;
        disarm_timer t;
        (match t.rtt_probe with
        | Some (_, sent_at) ->
            t.rtt_probe <- None;
            update_rtt t (Time.to_float_s (Engine.now t.engine - sent_at))
        | None -> ());
        try_send t
      end
      else if t.phase = Established && flags.Headers.Tcp_flags.ack then begin
        let ack = Seq32.unwrap ~base:t.snd_una tcp.Headers.Tcp.ack_seq in
        List.iter
          (fun (a32, b32) ->
            let a = Seq32.unwrap ~base:t.snd_una a32 in
            let b = a + (Seq32.delta ~prev:a32 ~cur:b32) in
            if b > a && a >= t.snd_una && b <= t.snd_max then
              t.sacked <- insert_sorted t.sacked (a, b))
          tcp.Headers.Tcp.sack;
        if ack > t.snd_una && ack <= t.snd_max then on_new_ack t ack
        else if ack = t.snd_una && flight t > 0 then on_dup_ack t
      end

(* ---- Receiver ---- *)

(* Insert and coalesce into a sorted disjoint interval list. *)
let insert_interval intervals (start, stop) =
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      ((start, stop) :: intervals)
  in
  let rec coalesce = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
        coalesce ((a1, max b1 b2) :: rest)
    | interval :: rest -> interval :: coalesce rest
    | [] -> []
  in
  coalesce sorted

let send_ack t ?latest ~flags () =
  match ack_packet t ?latest ~ack_seq:t.rcv_nxt ~flags () with
  | None -> ()
  | Some packet -> Host.send (dst_host t) packet

(* Pull every out-of-order interval now contiguous with rcv_nxt. *)
let rec drain_contiguous t =
  match t.ooo with
  | (start, stop) :: rest when start <= t.rcv_nxt ->
      if stop > t.rcv_nxt then t.rcv_nxt <- stop;
      t.ooo <- rest;
      drain_contiguous t
  | _ -> ()

let receiver_receive t packet =
  match Packet.tcp_headers packet with
  | None -> ()
  | Some (_, tcp) ->
      let flags = tcp.Headers.Tcp.flags in
      if flags.Headers.Tcp_flags.syn then
        send_ack t ~flags:Headers.Tcp_flags.syn_ack ()
      else begin
        let len = Packet.tcp_payload_len packet in
        if len > 0 then begin
          let seq = Seq32.unwrap ~base:t.rcv_nxt tcp.Headers.Tcp.seq in
          let stop = seq + len in
          if seq <= t.rcv_nxt && stop > t.rcv_nxt then begin
            t.rcv_nxt <- stop;
            drain_contiguous t
          end
          else if seq > t.rcv_nxt then
            t.ooo <- insert_interval t.ooo (seq, stop);
          send_ack t ~latest:seq ~flags:Headers.Tcp_flags.ack ()
        end
      end

(* ---- Construction ---- *)

let start ~src ~dst ~src_port ~dst_port ~size ?(params = default_params)
    ?on_complete () =
  if size <= 0 then invalid_arg "Flow.start: size must be positive";
  let src_h = Endpoint.host src and dst_h = Endpoint.host dst in
  if Host.arp_lookup src_h (Host.ip dst_h) = None then
    invalid_arg "Flow.start: source cannot resolve destination (ARP)";
  let engine = Endpoint.engine src in
  let data_key =
    {
      Flow_key.src_ip = Host.ip src_h;
      dst_ip = Host.ip dst_h;
      src_port;
      dst_port;
      protocol = Headers.Ipv4.protocol_tcp;
    }
  in
  let t =
    {
      engine;
      params;
      src;
      dst;
      data_key;
      flow_size = size;
      isn = params.isn;
      fin = params.isn + size;
      phase = (if params.handshake then Syn_sent else Established);
      snd_una = params.isn;
      snd_nxt = params.isn;
      snd_max = params.isn;
      cwnd = float_of_int (params.initial_window * params.mss);
      ssthresh = infinity;
      dupacks = 0;
      in_recovery = false;
      recover = params.isn;
      sacked = [];
      retx_next = params.isn;
      srtt = -1.0;
      rttvar = 0.0;
      min_rtt = infinity;
      cubic_epoch = -1;
      cubic_w_max = 0.0;
      cubic_k = 0.0;
      cubic_origin = 0.0;
      cubic_epoch_w = 0.0;
      rto = max params.min_rto (Time.ms 1000);
      rtt_probe = None;
      rto_timer = Engine.Timer.create engine ignore;
      rcv_nxt = params.isn;
      ooo = [];
      started_at = Engine.now engine;
      completed_at = None;
      retransmits = 0;
      timeouts = 0;
      on_complete;
    }
  in
  Engine.Timer.set_callback t.rto_timer (fun () -> on_timeout t);
  (* ACKs arrive at the source with the reversed key; data arrives at
     the destination with the data key. *)
  Endpoint.register src (Flow_key.reverse data_key) (sender_receive t);
  Endpoint.register dst data_key (receiver_receive t);
  if params.handshake then begin
    t.rtt_probe <- Some (0, Engine.now engine);
    send_syn t
  end
  else try_send t;
  t

(* ---- Accessors ---- *)

let key t = t.data_key
let size t = t.flow_size
let completed t = t.completed_at <> None
let started_at t = t.started_at
let completed_at t = t.completed_at
let bytes_acked t = min (t.snd_una - t.isn) t.flow_size

let goodput t =
  match t.completed_at with
  | None -> None
  | Some finish ->
      let elapsed = finish - t.started_at in
      if elapsed <= 0 then None
      else Some (Rate.of_bytes_per t.flow_size elapsed)


let retransmits t = t.retransmits
let timeouts t = t.timeouts
let cwnd_bytes t = int_of_float t.cwnd
