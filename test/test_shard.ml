(* The sharded engine: SPSC channel primitives, the partition/plan
   helpers, conservative-lookahead edge cases (empty shards, events
   exactly on the window boundary), the 1-shard journal byte-identity
   acceptance check, and multi-shard run determinism. *)

module Time = Planck_util.Time
module Spsc = Planck_util.Spsc
module Engine = Planck_netsim.Engine
module Shard = Planck_netsim.Shard
module Fabric = Planck_topology.Fabric
module Fat_tree = Planck_topology.Fat_tree
module Journal = Planck_telemetry.Journal
module Scalability = Planck.Scalability
module Testbed_spec = Planck.Testbed
module Experiment = Planck.Experiment
module Scheme = Planck.Scheme
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr

(* ---- SPSC queue ---- *)

let spsc_fifo () =
  let q : int Spsc.t = Spsc.create () in
  Alcotest.(check (option int)) "empty pop" None (Spsc.pop q);
  Alcotest.(check (option int)) "empty peek" None (Spsc.peek q);
  for i = 1 to 100 do
    Spsc.push q i
  done;
  Alcotest.(check (option int)) "peek is FIFO head" (Some 1) (Spsc.peek q);
  Alcotest.(check (option int)) "peek does not consume" (Some 1) (Spsc.peek q);
  Alcotest.(check (option int)) "pop head" (Some 1) (Spsc.pop q);
  let seen = ref [] in
  Spsc.drain q (fun x -> seen := x :: !seen);
  Alcotest.(check (list int))
    "drain yields the rest in order"
    (List.init 99 (fun i -> i + 2))
    (List.rev !seen);
  Alcotest.(check (option int)) "drained empty" None (Spsc.pop q);
  (* interleaved push/pop keeps FIFO order across the sentinel *)
  Spsc.push q 7;
  Alcotest.(check (option int)) "reusable after drain" (Some 7) (Spsc.pop q)

(* ---- dynamic role check (the spsc-role-confinement lint rule's
   runtime complement: the static rule cannot tell N shard instances
   of one shard-body def apart) ---- *)

let spsc_debug_clean_path () =
  Spsc.set_debug true;
  Fun.protect
    ~finally:(fun () -> Spsc.set_debug false)
    (fun () ->
      let q : int Spsc.t = Spsc.create () in
      let producer =
        Domain.spawn (fun () ->
            for i = 1 to 50 do
              Spsc.push q i
            done)
      in
      (* main claims the consumer slot; one domain per role is legal *)
      let seen = ref 0 in
      while !seen < 50 do
        match Spsc.pop q with
        | Some v ->
            incr seen;
            Alcotest.(check int) "FIFO across domains" !seen v
        | None -> Domain.cpu_relax ()
      done;
      Domain.join producer;
      Alcotest.(check (option int)) "drained" None (Spsc.pop q))

let spsc_debug_role_violation () =
  Spsc.set_debug true;
  Fun.protect
    ~finally:(fun () -> Spsc.set_debug false)
    (fun () ->
      let q : int Spsc.t = Spsc.create () in
      Spsc.push q 1;
      (* main holds the producer slot now *)
      let violated =
        Domain.spawn (fun () ->
            match Spsc.push q 2 with
            | () -> false
            | exception Failure _ -> true)
      in
      Alcotest.(check bool) "second producer domain raises" true
        (Domain.join violated);
      ignore (Spsc.pop q : int option);
      (* ... and the consumer slot too *)
      let violated =
        Domain.spawn (fun () ->
            match Spsc.peek q with
            | _ -> false
            | exception Failure _ -> true)
      in
      Alcotest.(check bool) "second consumer domain raises" true
        (Domain.join violated);
      (* the claiming domains keep working *)
      Spsc.push q 3;
      Alcotest.(check (option int)) "roles still usable" (Some 3) (Spsc.pop q))

(* ---- Scalability.shard_plan ---- *)

let sum = Array.fold_left ( + ) 0
let spread a = Array.fold_left max 0 a - Array.fold_left min max_int a

let shard_plan_fat_tree () =
  let p = Scalability.fat_tree_plan ~k:16 in
  Alcotest.(check int) "k=16 hosts" 1024 p.Scalability.hosts;
  Alcotest.(check int) "k=16 switches" 320 p.Scalability.switches;
  let sp = Scalability.shard_plan p ~shards:4 in
  Alcotest.(check int) "hosts preserved" 1024
    (sum sp.Scalability.hosts_per_shard);
  Alcotest.(check int) "switches preserved" 320
    (sum sp.Scalability.switches_per_shard);
  Array.iter
    (Alcotest.(check int) "256 hosts per shard" 256)
    sp.Scalability.hosts_per_shard;
  Array.iter
    (Alcotest.(check int) "80 switches per shard" 80)
    sp.Scalability.switches_per_shard;
  (* 80 switches / 14 collectors per server, rounded up *)
  Array.iter
    (Alcotest.(check int) "6 collector servers per shard" 6)
    sp.Scalability.collector_servers_per_shard;
  Alcotest.(check (float 1e-9)) "even split has no imbalance" 0.0
    sp.Scalability.imbalance_pct;
  let sp3 = Scalability.shard_plan p ~shards:3 in
  Alcotest.(check int) "non-dividing split preserves hosts" 1024
    (sum sp3.Scalability.hosts_per_shard);
  Alcotest.(check int) "non-dividing split preserves switches" 320
    (sum sp3.Scalability.switches_per_shard);
  Alcotest.(check bool) "host blocks differ by at most one" true
    (spread sp3.Scalability.hosts_per_shard <= 1);
  Alcotest.(check bool) "imbalance is small but positive" true
    (sp3.Scalability.imbalance_pct > 0.0
    && sp3.Scalability.imbalance_pct < 1.0);
  let sp1 = Scalability.shard_plan p ~shards:1 in
  Alcotest.(check (array int)) "one shard owns everything" [| 1024 |]
    sp1.Scalability.hosts_per_shard;
  Alcotest.(check (float 1e-9)) "one shard has no imbalance" 0.0
    sp1.Scalability.imbalance_pct;
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Scalability.shard_plan: shards must be >= 1")
    (fun () -> ignore (Scalability.shard_plan p ~shards:0))

let shard_plan_jellyfish () =
  let p = Scalability.jellyfish_plan ~ports:24 ~hosts_per_switch:8 ~hosts:400 in
  let sp = Scalability.shard_plan p ~shards:7 in
  Alcotest.(check int) "hosts preserved" p.Scalability.hosts
    (sum sp.Scalability.hosts_per_shard);
  Alcotest.(check int) "switches preserved" p.Scalability.switches
    (sum sp.Scalability.switches_per_shard);
  Alcotest.(check bool) "host blocks near-equal" true
    (spread sp.Scalability.hosts_per_shard <= 1);
  Alcotest.(check bool) "switch blocks near-equal" true
    (spread sp.Scalability.switches_per_shard <= 1)

(* ---- group construction and validation ---- *)

let test_pkt () =
  P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1) ~src_ip:(Ip.host 0)
    ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2 ~seq:0 ~ack_seq:0
    ~flags:H.Tcp_flags.ack ~payload_len:64 ()

let group_validation () =
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Shard.create: shards must be >= 1") (fun () ->
      ignore (Shard.create ~shards:0));
  let g = Shard.create ~shards:2 in
  Alcotest.(check int) "shard count" 2 (Shard.shards g);
  Alcotest.(check bool) "no channels, no lookahead" true
    (Shard.lookahead g = None);
  let register ~src ~dst ~prop_delay =
    let (_ : Time.t -> P.t -> unit) =
      Shard.channel g ~src ~dst ~prop_delay ~deliver:ignore
    in
    ()
  in
  Alcotest.(check bool) "self-channel rejected" true
    (try
       register ~src:1 ~dst:1 ~prop_delay:(Time.us 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero prop delay rejected" true
    (try
       register ~src:0 ~dst:1 ~prop_delay:Time.zero;
       false
     with Invalid_argument _ -> true);
  register ~src:0 ~dst:1 ~prop_delay:(Time.us 5);
  Alcotest.(check bool) "lookahead tracks first channel" true
    (Shard.lookahead g = Some (Time.us 5));
  register ~src:1 ~dst:0 ~prop_delay:(Time.us 3);
  Alcotest.(check bool) "lookahead is the minimum" true
    (Shard.lookahead g = Some (Time.us 3))

(* An empty shard with no cross links advances by pure lookahead
   windows: it must neither stall the group nor fall behind the clock. *)
let empty_shard_pure_advance () =
  let g = Shard.create ~shards:2 in
  let fired = ref false in
  Engine.schedule (Shard.engine g 0) ~delay:(Time.us 7) (fun () ->
      fired := true);
  Shard.run g ~horizon:(Time.ms 50) ~local_done:(fun s ->
      s = 1 || !fired);
  Alcotest.(check bool) "shard 0 ran its event" true !fired;
  Alcotest.(check bool) "clocks end equal on a window boundary" true
    (Engine.now (Shard.engine g 0) = Engine.now (Shard.engine g 1));
  Alcotest.(check int) "nothing buffered in the shard journal" 0
    (Journal.length (Shard.journal g 0))

(* A frame transmitted in window r arriving exactly at the window
   boundary (ts = (r+1) * W, the tightest the lookahead bound allows)
   must be delivered in the destination wheel at exactly that time. *)
let delivery_exactly_at_lookahead_horizon () =
  let g = Shard.create ~shards:2 in
  let delivered = ref [] in
  let fwd =
    Shard.channel g ~src:0 ~dst:1 ~prop_delay:(Time.us 5) ~deliver:(fun _ ->
        delivered := ("fwd", Engine.now (Shard.engine g 1)) :: !delivered)
  in
  let bwd =
    Shard.channel g ~src:1 ~dst:0 ~prop_delay:(Time.us 3) ~deliver:(fun _ ->
        delivered := ("bwd", Engine.now (Shard.engine g 0)) :: !delivered)
  in
  (* lookahead = min(5us, 3us) = 3us, so the window is 3us wide *)
  let pkt = test_pkt () in
  Engine.schedule (Shard.engine g 0) ~delay:0 (fun () -> fwd (Time.us 5) pkt);
  Engine.schedule (Shard.engine g 1) ~delay:0 (fun () -> bwd (Time.us 3) pkt);
  Shard.run g ~horizon:(Time.us 30) ~local_done:(fun _ -> false);
  let find tag = List.assoc_opt tag !delivered in
  Alcotest.(check (option int))
    "boundary frame delivered at exactly its arrival time" (Some (Time.us 3))
    (find "bwd");
  Alcotest.(check (option int))
    "mid-window frame delivered at exactly its arrival time" (Some (Time.us 5))
    (find "fwd");
  Alcotest.(check int) "both frames delivered" 2 (List.length !delivered);
  Alcotest.(check int) "group stops on the horizon boundary" (Time.us 30)
    (Engine.now (Shard.engine g 0));
  Alcotest.(check int) "clocks end equal" (Time.us 30)
    (Engine.now (Shard.engine g 1))

(* ---- journal merge determinism ---- *)

let marker name = Journal.Phase_marker { name; detail = "" }

let merge_orders_by_time_then_shard () =
  let j0 = Journal.create () and j1 = Journal.create () in
  Journal.record j0 ~ts:(Time.us 2) (marker "a");
  Journal.record j0 ~ts:(Time.us 9) (marker "b");
  Journal.record j1 ~ts:(Time.us 2) (marker "c");
  Journal.record j1 ~ts:(Time.us 1) (marker "d");
  let dst = Journal.create () in
  Journal.merge_into dst [ (0, j0); (1, j1) ];
  let names =
    List.map
      (fun (ev : Journal.event) ->
        match ev.Journal.body with
        | Journal.Phase_marker { name; _ } -> name
        | _ -> "?")
      (Journal.events dst)
  in
  Alcotest.(check (list string))
    "sorted by sim-time, ties broken by shard id"
    [ "d"; "a"; "c"; "b" ] names

(* ---- sharded topologies through Testbed/Experiment ---- *)

let sharded_spec ?(shards = 2) () =
  {
    Testbed_spec.default_spec with
    Testbed_spec.shards = Some shards;
    alts = Some 1;
    core_prop_delay = Some Fat_tree.default_core_prop_delay;
  }

let fabric_shard_assignment () =
  let tb = Testbed_spec.create (sharded_spec ()) in
  let fabric = tb.Testbed_spec.fabric in
  (match Fabric.shard_group fabric with
  | None -> Alcotest.fail "sharded build must expose its group"
  | Some g -> Alcotest.(check int) "group width" 2 (Shard.shards g));
  Alcotest.(check int) "first pod on shard 0" 0 (Fabric.shard_of_host fabric 0);
  Alcotest.(check int) "last pod on shard 1" 1
    (Fabric.shard_of_host fabric 15);
  let hosts_on s =
    List.length
      (List.filter
         (fun h -> Fabric.shard_of_host fabric h = s)
         (List.init 16 Fun.id))
  in
  Alcotest.(check int) "pods split evenly: shard 0 hosts" 8 (hosts_on 0);
  Alcotest.(check int) "pods split evenly: shard 1 hosts" 8 (hosts_on 1);
  (* a host's edge switch lives on the host's shard *)
  List.iter
    (fun h ->
      let sw, _port = Fabric.host_attachment fabric ~host:h in
      Alcotest.(check int)
        (Printf.sprintf "host %d uplink stays on its shard" h)
        (Fabric.shard_of_host fabric h)
        (Fabric.shard_of_switch fabric sw))
    (List.init 16 Fun.id);
  let unsharded = Testbed_spec.create Testbed_spec.default_spec in
  Alcotest.(check bool) "unsharded build has no group" true
    (Fabric.shard_group unsharded.Testbed_spec.fabric = None);
  Alcotest.(check int) "unsharded assignment is all shard 0" 0
    (Fabric.shard_of_switch unsharded.Testbed_spec.fabric 3)

(* Single-switch topology sharded two ways: the degenerate partition
   puts everything on shard 0 and leaves shard 1 empty with zero cross
   links — the run must still complete. *)
let empty_shard_topology_completes () =
  let spec =
    {
      Testbed_spec.default_spec with
      Testbed_spec.topology = Testbed_spec.Single_switch { hosts = 4 };
      shards = Some 2;
    }
  in
  let summary =
    Experiment.run ~spec ~scheme:Scheme.Static
      ~workload:(Experiment.Stride 1) ~size:(256 * 1024)
      ~horizon:(Time.s 5) ()
  in
  Alcotest.(check bool) "all flows complete" true
    summary.Experiment.all_completed;
  Alcotest.(check int) "one flow per host" 4
    (List.length summary.Experiment.flows)

let flow_key (r : Planck_workloads.Runner.flow_result) =
  ( r.Planck_workloads.Runner.src,
    r.Planck_workloads.Runner.dst,
    r.Planck_workloads.Runner.completed,
    r.Planck_workloads.Runner.finish_time )

let multi_shard_run_deterministic () =
  let run () =
    Experiment.run ~spec:(sharded_spec ()) ~scheme:Scheme.Static
      ~workload:(Experiment.Stride 8) ~size:(512 * 1024)
      ~horizon:(Time.s 5) ()
  in
  let a = run () in
  Alcotest.(check bool) "sharded run completes" true
    a.Experiment.all_completed;
  Alcotest.(check int) "16 flows" 16 (List.length a.Experiment.flows);
  let b = run () in
  Alcotest.(check bool) "same config, same per-flow outcomes" true
    (List.for_all2
       (fun x y -> flow_key x = flow_key y)
       a.Experiment.flows b.Experiment.flows);
  (* and it agrees with the single-domain engine on the aggregate *)
  let single =
    Experiment.run
      ~spec:{ (sharded_spec ()) with Testbed_spec.shards = None }
      ~scheme:Scheme.Static ~workload:(Experiment.Stride 8)
      ~size:(512 * 1024) ~horizon:(Time.s 5) ()
  in
  Alcotest.(check bool) "single-domain arm completes" true
    single.Experiment.all_completed;
  let rel =
    abs_float (a.Experiment.avg_goodput_gbps -. single.Experiment.avg_goodput_gbps)
    /. single.Experiment.avg_goodput_gbps
  in
  Alcotest.(check bool) "aggregate goodput within 25% of single-domain" true
    (rel < 0.25)

(* Control-plane schemes and mid-run workloads refuse multi-shard runs
   loudly instead of racing. *)
let multi_shard_guards () =
  let raises_invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "control-plane scheme rejected on 2 shards" true
    (raises_invalid (fun () ->
         Experiment.run ~spec:(sharded_spec ()) ~scheme:Scheme.planck_te_default
           ~workload:(Experiment.Stride 8) ~size:4096 ()));
  Alcotest.(check bool) "shuffle rejected when sharded" true
    (raises_invalid (fun () ->
         Experiment.run ~spec:(sharded_spec ()) ~scheme:Scheme.Static
           ~workload:(Experiment.Shuffle { concurrency = 1 })
           ~size:4096 ()))

(* ---- the acceptance property: --shards 1 is byte-identical ---- *)

let capture shards =
  let buf = Buffer.create 4096 in
  let was_enabled = Journal.enabled Journal.default in
  Journal.clear Journal.default;
  Journal.set_enabled Journal.default true;
  Journal.set_writer Journal.default
    (Some
       (fun line ->
         Buffer.add_string buf line;
         Buffer.add_char buf '\n'));
  Fun.protect
    ~finally:(fun () ->
      Journal.set_writer Journal.default None;
      Journal.set_enabled Journal.default was_enabled;
      Journal.clear Journal.default)
    (fun () ->
      let spec =
        { (Testbed_spec.paper_fat_tree ()) with Testbed_spec.shards }
      in
      (* PlanckTE is the journal-heavy scheme (detections, estimates,
         reroutes) and composes with sharding at exactly one shard. *)
      let summary =
        Experiment.run ~spec ~scheme:Scheme.planck_te_default
          ~workload:(Experiment.Stride 8) ~size:(2 * 1024 * 1024)
          ~horizon:(Time.s 10) ()
      in
      Alcotest.(check bool) "capture arm completes" true
        summary.Experiment.all_completed;
      Buffer.contents buf)

let one_shard_byte_identity () =
  let single = capture None in
  let sharded = capture (Some 1) in
  let lines s =
    List.length (String.split_on_char '\n' s) - 1
  in
  Alcotest.(check bool) "journal is non-trivial (beyond phase markers)" true
    (lines single > 2);
  Alcotest.(check int) "same journal size" (String.length single)
    (String.length sharded);
  Alcotest.(check bool) "one-shard NDJSON is byte-identical" true
    (String.equal single sharded)

let tests =
  [
    Alcotest.test_case "spsc fifo, peek, drain" `Quick spsc_fifo;
    Alcotest.test_case "spsc debug: clean two-domain path" `Quick
      spsc_debug_clean_path;
    Alcotest.test_case "spsc debug: role violation raises" `Quick
      spsc_debug_role_violation;
    Alcotest.test_case "shard_plan splits the k=16 plan" `Quick
      shard_plan_fat_tree;
    Alcotest.test_case "shard_plan splits a jellyfish plan" `Quick
      shard_plan_jellyfish;
    Alcotest.test_case "group construction validates" `Quick group_validation;
    Alcotest.test_case "empty shard advances by pure lookahead" `Quick
      empty_shard_pure_advance;
    Alcotest.test_case "delivery exactly at the lookahead horizon" `Quick
      delivery_exactly_at_lookahead_horizon;
    Alcotest.test_case "merge orders by (time, shard)" `Quick
      merge_orders_by_time_then_shard;
    Alcotest.test_case "fabric shard assignment is pod-granular" `Quick
      fabric_shard_assignment;
    Alcotest.test_case "empty-shard topology completes" `Quick
      empty_shard_topology_completes;
    Alcotest.test_case "multi-shard run is deterministic" `Quick
      multi_shard_run_deterministic;
    Alcotest.test_case "multi-shard guards refuse unsafe configs" `Quick
      multi_shard_guards;
    Alcotest.test_case "one-shard journal is byte-identical" `Quick
      one_shard_byte_identity;
  ]
