(* OpenFlow substrate tests: control-channel latency model, flow
   counters, and the stats-poll staleness that motivates Planck. *)

open Testbed
module Control_channel = Planck_openflow.Control_channel
module Flow_stats = Planck_openflow.Flow_stats
module Actions = Planck_openflow.Actions
module Prng = Planck_util.Prng

let channel_latency_bounds () =
  let e = Engine.create () in
  let ch = Control_channel.create e ~prng:(Prng.create ~seed:1) () in
  let cfg = Control_channel.config ch in
  let deliveries = ref [] in
  for _ = 1 to 50 do
    let sent = Engine.now e in
    Control_channel.send ch (fun () ->
        deliveries := (Engine.now e - sent) :: !deliveries)
  done;
  Engine.run e;
  List.iter
    (fun d ->
      Alcotest.(check bool) "within band" true
        (d >= cfg.Control_channel.one_way_min
        && d <= cfg.Control_channel.one_way_max + Time.us 1))
    !deliveries

let channel_preserves_order () =
  let e = Engine.create () in
  let ch = Control_channel.create e ~prng:(Prng.create ~seed:2) () in
  let log = ref [] in
  for i = 1 to 20 do
    Control_channel.send ch (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" (List.init 20 (fun i -> i + 1))
    (List.rev !log)

let rule_install_slower_than_message () =
  let e = Engine.create () in
  let ch = Control_channel.create e ~prng:(Prng.create ~seed:3) () in
  let message_at = ref 0 and rule_at = ref 0 in
  Control_channel.send ch (fun () -> message_at := Engine.now e);
  Control_channel.install_rule ch (fun () -> rule_at := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "TCAM install is milliseconds" true
    (!rule_at > !message_at + Time.ms 2)

let flow_counters_count () =
  let tb = single_switch () in
  let stats = Flow_stats.attach (Fabric.switch tb.fabric 0) in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(1024 * 1024) () in
  Engine.run ~until:(Time.ms 10) tb.engine;
  let counters = Flow_stats.snapshot stats in
  (* Data flow + its ACK stream. *)
  Alcotest.(check bool) "two flows counted" true
    (Flow_stats.flow_count stats >= 2);
  let data =
    List.find
      (fun c -> Planck_packet.Flow_key.equal c.Flow_stats.key (Flow.key flow))
      counters
  in
  (* 1 MiB of payload => ~1.04 MiB on the wire, plus handshake. *)
  Alcotest.(check bool) "bytes plausible" true
    (data.Flow_stats.bytes > 1024 * 1024
    && data.Flow_stats.bytes < 1150 * 1024);
  Alcotest.(check bool) "packets plausible" true
    (data.Flow_stats.packets >= 719 && data.Flow_stats.packets <= 730)

let poll_pays_latency () =
  let tb = single_switch () in
  let ch = Control_channel.create tb.engine ~prng:(Prng.create ~seed:4) () in
  let stats = Flow_stats.attach (Fabric.switch tb.fabric 0) in
  ignore (start_flow tb ~src:0 ~dst:1 ~size:(50 * 1024 * 1024) ());
  let asked_at = ref 0 and answered_at = ref 0 in
  Engine.schedule tb.engine ~delay:(Time.ms 5) (fun () ->
      asked_at := Engine.now tb.engine;
      Flow_stats.poll stats ~channel:ch (fun _counters ->
          answered_at := Engine.now tb.engine));
  Engine.run ~until:(Time.ms 60) tb.engine;
  let latency = !answered_at - !asked_at in
  Alcotest.(check bool)
    (Printf.sprintf "poll took %s" (Time.to_string latency))
    true
    (latency >= Time.ms 25 && latency <= Time.ms 30)

let packet_out_delivers () =
  let tb = single_switch () in
  let ch = Control_channel.create tb.engine ~prng:(Prng.create ~seed:5) () in
  let host = Fabric.host tb.fabric 2 in
  let shadow = Planck_packet.Mac.shadow (Planck_packet.Mac.host 3) ~alt:1 in
  Actions.spoof_arp ch (Fabric.switch tb.fabric 0) ~port:2 ~target:host
    ~pretend_ip:(Host.ip (Fabric.host tb.fabric 3))
    ~pretend_mac:shadow;
  Engine.run ~until:(Time.ms 2) tb.engine;
  Alcotest.(check bool) "target learned the shadow MAC" true
    (Host.arp_lookup host (Host.ip (Fabric.host tb.fabric 3)) = Some shadow)

let tests =
  [
    Alcotest.test_case "channel latency bounds" `Quick channel_latency_bounds;
    Alcotest.test_case "channel preserves order" `Quick channel_preserves_order;
    Alcotest.test_case "rule install slower than message" `Quick
      rule_install_slower_than_message;
    Alcotest.test_case "flow counters count wire bytes" `Quick
      flow_counters_count;
    Alcotest.test_case "stats poll pays read latency" `Quick poll_pays_latency;
    Alcotest.test_case "spoofed ARP packet-out" `Quick packet_out_delivers;
  ]
