module Time = Planck_util.Time
module Ring = Planck_util.Ring
module Packet = Planck_packet.Packet
module Metrics = Planck_telemetry.Metrics
module Profile = Planck_telemetry.Profile

let sp_drain = Profile.register "sink.drain"

type record = { arrival : Time.t; rx : Time.t; wire : bytes; wire_size : int }

type pending = { arrived : Time.t; packet : Packet.t }

type t = {
  engine : Engine.t;
  ring : pending Ring.t;
  poll_interval : Time.t;
  consumer : record -> unit;
  poll_timer : Engine.Timer.t;
  mutable seen : int;
  tel_frames : Metrics.counter;
  tel_ring_drops : Metrics.counter;
}

let drain t =
  Profile.enter sp_drain;
  let now = Engine.now t.engine in
  let rec loop () =
    match Ring.pop t.ring with
    | None -> ()
    | Some { arrived; packet } ->
        t.consumer
          {
            arrival = arrived;
            rx = now;
            wire = Packet.to_wire packet;
            wire_size = packet.Packet.wire_size;
          };
        loop ()
  in
  loop ();
  Profile.exit sp_drain

let create engine ?(ring_capacity = 2048) ?(poll_interval = Time.us 25)
    ?(label = "") ~consumer () =
  let t =
    {
      engine;
      ring = Ring.create ~capacity:ring_capacity;
      poll_interval;
      consumer;
      poll_timer = Engine.Timer.create engine ignore;
      seen = 0;
      tel_frames = Metrics.counter ~subsystem:"sink" ~name:"frames" ~label ();
      tel_ring_drops =
        Metrics.counter ~subsystem:"sink" ~name:"ring_drops" ~label ();
    }
  in
  Engine.Timer.set_callback t.poll_timer (fun () -> drain t);
  t

let ingress t packet =
  let now = Engine.now t.engine in
  if Ring.push t.ring { arrived = now; packet } then begin
    t.seen <- t.seen + 1;
    Metrics.Counter.incr t.tel_frames;
    if not (Engine.Timer.pending t.poll_timer) then
      Engine.Timer.reschedule t.poll_timer ~delay:t.poll_interval
  end
  else Metrics.Counter.incr t.tel_ring_drops

let frames_seen t = t.seen
let ring_drops t = Ring.drops t.ring
