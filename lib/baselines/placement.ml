module Rate = Planck_util.Rate
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing

type flow = { key : Flow_key.t; rate : Rate.t; current_mac : Mac.t }

type cell = { flow : flow; mutable demand : float; mutable limited : bool }

let group_by of_cell cells =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let k = of_cell c in
      Hashtbl.replace groups k
        (c :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    cells;
  groups

(* Hedera's iteration: senders spread their capacity equally over their
   unconverged flows; oversubscribed receivers cap their flows and mark
   them converged. *)
let estimate_demands ~link_rate flows =
  let host_of ip = Option.value ~default:(-1) (Ipv4_addr.host_id ip) in
  let cells =
    List.map (fun f -> { flow = f; demand = f.rate; limited = false }) flows
  in
  (* Host-sorted group lists: the waterfill updates mutable demands, so
     visiting groups in hash order would make convergence (and the final
     demands) depend on bucket layout. *)
  let sorted_groups tbl =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.of_seq (Hashtbl.to_seq tbl))
  in
  let senders =
    sorted_groups (group_by (fun c -> host_of c.flow.key.Flow_key.src_ip) cells)
  in
  let receivers =
    sorted_groups (group_by (fun c -> host_of c.flow.key.Flow_key.dst_ip) cells)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 50 do
    changed := false;
    incr rounds;
    List.iter
      (fun (_, cs) ->
        let fixed, free = List.partition (fun c -> c.limited) cs in
        let used = List.fold_left (fun a c -> a +. c.demand) 0.0 fixed in
        match free with
        | [] -> ()
        | free ->
            let share =
              max 0.0 (link_rate -. used) /. float_of_int (List.length free)
            in
            List.iter
              (fun c ->
                if abs_float (c.demand -. share) > 1.0 then begin
                  c.demand <- share;
                  changed := true
                end)
              free)
      senders;
    List.iter
      (fun (_, cs) ->
        let total = List.fold_left (fun a c -> a +. c.demand) 0.0 cs in
        if total > link_rate +. 1.0 then begin
          let share = link_rate /. float_of_int (List.length cs) in
          List.iter
            (fun c ->
              if (not c.limited) || abs_float (c.demand -. share) > 1.0
              then begin
                c.demand <- min c.demand share;
                c.limited <- true;
                changed := true
              end)
            cs
        end)
      receivers
  done;
  List.map (fun c -> (c.flow, c.demand)) cells

let path_links routing ~src ~mac =
  match Routing.path routing ~src ~dst_mac:mac with
  | exception Invalid_argument _ -> []
  | hops -> Routing.links_of_path hops

let global_first_fit ~routing ~link_rate flows =
  let demands = estimate_demands ~link_rate flows in
  let loads : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let load link = Option.value ~default:0.0 (Hashtbl.find_opt loads link) in
  let add links demand =
    List.iter (fun l -> Hashtbl.replace loads l (load l +. demand)) links
  in
  let fits links demand =
    links <> []
    && List.for_all (fun l -> load l +. demand <= link_rate) links
  in
  let moves = ref [] in
  let place (flow, demand) =
    match
      ( Ipv4_addr.host_id flow.key.Flow_key.src_ip,
        Ipv4_addr.host_id flow.key.Flow_key.dst_ip )
    with
    | Some src, Some dst ->
        let candidates =
          flow.current_mac
          :: List.filter_map
               (fun alt ->
                 let mac = Routing.mac_for routing ~dst ~alt in
                 if Mac.equal mac flow.current_mac then None else Some mac)
               (List.init (Routing.alts routing) Fun.id)
        in
        let chosen =
          List.find_opt
            (fun mac -> fits (path_links routing ~src ~mac) demand)
            candidates
        in
        let mac = Option.value ~default:flow.current_mac chosen in
        add (path_links routing ~src ~mac) demand;
        if not (Mac.equal mac flow.current_mac) then
          moves := (flow, mac) :: !moves
    | _ -> ()
  in
  List.iter place
    (List.sort (fun (_, a) (_, b) -> Float.compare b a) demands);
  List.rev !moves
