(* Determinism taint: interprocedural version of the wall-clock /
   ambient-random / hashtbl-iteration call-site rules.

   A def is a taint SOURCE if its body reads the wall clock
   (Unix.gettimeofday, Sys.time, the Mtime module), ambient randomness (the
   global Random state), or iterates a Hashtbl in (unsorted) bucket
   order. Taint propagates to every transitive caller — a nondeterministic
   value returned from a helper contaminates whoever calls it.

   We only REPORT when a tainted def directly touches sim-visible state:
   journal / time-series payloads, engine event scheduling, or a
   routing/TE decision. A wall-clock read feeding an operator-facing log
   line is noise; one feeding Journal.record breaks bit-reproducibility
   of the fig12/fig15 timelines, which is the invariant Planck's
   evaluation rests on. Sources in lib/telemetry's wall-clock-facing
   modules (metrics/trace export real time by design) are exempt, same
   as the syntactic tier; the journal and timeseries modules themselves
   are not. *)

module SS = Set.Make (String)
module F = Lint_finding
module Ix = Lint_cmt_index

let default_sinks =
  [
    "Journal.record";
    "Timeseries.sample";
    "Timeseries.add_series";
    "Engine.schedule";
    "Engine.schedule_at";
    "Engine.every";
    "Engine.periodic";
    "Engine.Timer.create";
    "Engine.Timer.reschedule";
    "Engine.Timer.reschedule_at";
    "Timer_wheel.add";
    "Reroute.apply";
    "Net_view.set_route";
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Same exemption surface as the syntactic tier: real-time telemetry
   (metrics, trace, reporter, flusher, export) may read the clock; the
   sim-visible stores (journal, timeseries, inspect, json) may not. *)
let default_exempt_source file =
  starts_with ~prefix:"lib/telemetry/" file
  && not
       (List.mem (Filename.basename file)
          [ "journal.ml"; "timeseries.ml"; "inspect.ml"; "json.ml" ])

type config = {
  sink_patterns : string list;
  exempt_source : string -> bool;  (** file-level source exemption *)
}

let default_config =
  { sink_patterns = default_sinks; exempt_source = default_exempt_source }

let source_label = function
  | Ix.Wall_clock -> "wall-clock"
  | Ix.Ambient_random -> "ambient-randomness"
  | Ix.Hashtbl_iter -> "hashtbl-iteration-order"

(* source events eligible for taint: in lib/, outside exempt files,
   not on a raise path (error messages may cite real time) *)
let source_events ?(config = default_config) ix =
  List.filter
    (fun (e : Ix.event) ->
      match e.Ix.e_kind with
      | Ix.Source (_, _) ->
          (not e.Ix.e_in_raise)
          && starts_with ~prefix:"lib/" e.Ix.e_file
          && not (config.exempt_source e.Ix.e_file)
      | _ -> false)
    (Ix.events ix)

let report ?(config = default_config) ix =
  let sources = source_events ~config ix in
  if sources = [] then []
  else begin
    let src_by_def = Hashtbl.create 64 in
    List.iter
      (fun (e : Ix.event) ->
        if not (Hashtbl.mem src_by_def e.Ix.e_def) then
          Hashtbl.add src_by_def e.Ix.e_def e)
      sources;
    let roots = Hashtbl.fold (fun d _ acc -> d :: acc) src_by_def [] in
    let tainted = Lint_callgraph.backward ix ~roots in
    (* a finding per tainted def that directly references a sink *)
    let findings = ref [] in
    Ix.iter_edges ix (fun def targets ->
        if Lint_callgraph.mem tainted def then
          match
            SS.fold
              (fun tgt acc ->
                match acc with
                | Some _ -> acc
                | None ->
                    if Ix.any_suffix_matches config.sink_patterns tgt then
                      Some tgt
                    else None)
              targets None
          with
          | None -> ()
          | Some sink ->
              (* walk the witness chain back to the source event *)
              let chain = Lint_callgraph.chain tainted def in
              let src_def =
                match chain with d :: _ -> d | [] -> def
              in
              let src =
                match Hashtbl.find_opt src_by_def src_def with
                | Some e -> e
                | None -> List.hd sources
              in
              let kind, origin =
                match src.Ix.e_kind with
                | Ix.Source (k, name) -> (source_label k, name)
                | _ -> ("nondeterminism", "?")
              in
              let via =
                match chain with
                | [] | [ _ ] -> ""
                | l -> Printf.sprintf " via %s" (String.concat " -> " l)
              in
              findings :=
                F.v ~symbol:def ~rule:"determinism-taint" ~severity:F.Error
                  ~file:src.Ix.e_file ~line:src.Ix.e_line ~col:src.Ix.e_col
                  (Printf.sprintf
                     "%s source %s reaches sim-visible state: %s calls %s%s; \
                      sim state must derive from Engine.now / seeded Prng"
                     kind origin def sink via)
                :: !findings)
      ;
    !findings
  end
