module Time = Planck_util.Time
module Prng = Planck_util.Prng
module Te = Planck_controller.Te
module Controller = Planck_controller.Controller
module Poller = Planck_baselines.Poller
module Sflow_te_impl = Planck_baselines.Sflow_te
module Control_channel = Planck_openflow.Control_channel
module Collector_impl = Planck_collector.Collector
module Tiered_table = Planck_sketch.Tiered_table

type flow_table = Exact | Tiered of Tiered_table.config

let tiered_default = Tiered Tiered_table.default_config

let flow_table_name = function Exact -> "exact" | Tiered _ -> "tiered"

let collector_config_of_flow_table = function
  | Exact -> None
  | Tiered config ->
      Some
        {
          Collector_impl.default_config with
          Collector_impl.table = Tiered_table.table_kind ~config ();
        }

type t =
  | Static
  | Planck_te of Te.config
  | Poll of Poller.config
  | Sflow_te of Sflow_te_impl.config

let planck_te_default = Planck_te Te.default_config
let poll_1s = Poll Poller.default_config

let poll_100ms =
  Poll { Poller.default_config with Poller.period = Time.ms 100 }

let sflow_te_default = Sflow_te Sflow_te_impl.default_config

let name = function
  | Static -> "Static"
  | Planck_te _ -> "PlanckTE"
  | Poll { Poller.period; _ } ->
      Printf.sprintf "Poll-%gs" (Time.to_float_s period)
  | Sflow_te _ -> "sFlowTE"

type deployed = {
  scheme : t;
  controller : Controller.t option;
  te : Te.t option;
  poller : Poller.t option;
  sflow_te : Sflow_te_impl.t option;
}

let deploy ?(flow_table = Exact) (testbed : Testbed.t) scheme =
  (* The control planes (controller, pollers, control channel) are
     built on the reference engine and read collector state across the
     whole fabric, so they only compose with sharding when everything
     lives on shard 0. *)
  (match (testbed.Testbed.shard, scheme) with
  | Some g, (Planck_te _ | Poll _ | Sflow_te _)
    when Planck_netsim.Shard.shards g > 1 ->
      invalid_arg
        "Scheme.deploy: control-plane schemes are single-shard; run them \
         with --shards 1 (or use the static scheme)"
  | _ -> ());
  match scheme with
  | Static ->
      { scheme; controller = None; te = None; poller = None; sflow_te = None }
  | Planck_te config ->
      let controller =
        Controller.create testbed.Testbed.engine
          ~routing:testbed.Testbed.routing
          ~link_rate:(Testbed.link_rate testbed)
          ?collector_config:(collector_config_of_flow_table flow_table)
          ~prng:(Prng.split testbed.Testbed.prng)
          ()
      in
      let te = Controller.start_te controller ~config () in
      {
        scheme;
        controller = Some controller;
        te = Some te;
        poller = None;
        sflow_te = None;
      }
  | Poll config ->
      let channel =
        Control_channel.create testbed.Testbed.engine
          ~prng:(Prng.split testbed.Testbed.prng)
          ()
      in
      let poller =
        Poller.create testbed.Testbed.engine ~routing:testbed.Testbed.routing
          ~channel
          ~link_rate:(Testbed.link_rate testbed)
          ~config ()
      in
      {
        scheme;
        controller = None;
        te = None;
        poller = Some poller;
        sflow_te = None;
      }
  | Sflow_te config ->
      let channel =
        Control_channel.create testbed.Testbed.engine
          ~prng:(Prng.split testbed.Testbed.prng)
          ()
      in
      let sflow_te =
        Sflow_te_impl.create testbed.Testbed.engine
          ~routing:testbed.Testbed.routing ~channel
          ~link_rate:(Testbed.link_rate testbed)
          ~config
          ~prng:(Prng.split testbed.Testbed.prng)
          ()
      in
      {
        scheme;
        controller = None;
        te = None;
        poller = None;
        sflow_te = Some sflow_te;
      }

let reroutes deployed =
  match (deployed.te, deployed.poller, deployed.sflow_te) with
  | Some te, _, _ -> Te.reroutes te
  | None, Some poller, _ -> Poller.reroutes poller
  | None, None, Some s -> Sflow_te_impl.reroutes s
  | None, None, None -> 0
