(* Tests for Planck_telemetry: the metric registry, sim-time trace ring,
   JSON codec, exporters, and the flusher, plus the engine wiring into
   the process-wide default registry. *)

module Time = Planck_util.Time
module Json = Planck_telemetry.Json
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Export = Planck_telemetry.Export
module Flusher = Planck_telemetry.Flusher
module Engine = Planck_netsim.Engine

let check_float = Alcotest.(check (float 1e-9))

(* ---- registry ---- *)

let registry_counters_gauges () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "counter value" 42 (Metrics.Counter.value c);
  let g = Metrics.gauge ~registry:reg ~subsystem:"t" ~name:"g" () in
  Metrics.Gauge.set g 3.5;
  Metrics.Gauge.set g 1.0;
  check_float "gauge last value" 1.0 (Metrics.Gauge.value g);
  check_float "gauge high-water" 3.5 (Metrics.Gauge.max_value g);
  Metrics.Gauge.set_int g 7;
  check_float "set_int" 7.0 (Metrics.Gauge.value g);
  check_float "set_int high-water" 7.0 (Metrics.Gauge.max_value g);
  Alcotest.(check int) "size" 2 (Metrics.size reg)

let registry_idempotent_registration () =
  let reg = Metrics.create () in
  let a = Metrics.counter ~registry:reg ~subsystem:"s" ~name:"n" () in
  let b = Metrics.counter ~registry:reg ~subsystem:"s" ~name:"n" () in
  Metrics.Counter.incr a;
  Metrics.Counter.incr b;
  Alcotest.(check int) "same handle" 2 (Metrics.Counter.value a);
  Alcotest.(check int) "still one metric" 1 (Metrics.size reg);
  (* Distinct labels are distinct metrics. *)
  let l = Metrics.counter ~registry:reg ~subsystem:"s" ~name:"n" ~label:"x" () in
  Metrics.Counter.incr l;
  Alcotest.(check int) "labelled is separate" 1 (Metrics.Counter.value l);
  Alcotest.(check int) "two metrics" 2 (Metrics.size reg);
  (* Re-registering the key as a different kind is a bug in the caller. *)
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Metrics.gauge ~registry:reg ~subsystem:"s" ~name:"n" ());
       false
     with Invalid_argument _ -> true)

let registry_disabled_is_noop () =
  let reg = Metrics.create ~enabled:false () in
  let c = Metrics.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  let g = Metrics.gauge ~registry:reg ~subsystem:"t" ~name:"g" () in
  let h = Metrics.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  Metrics.Counter.incr c;
  Metrics.Gauge.set g 9.0;
  Metrics.Histogram.observe h 100;
  Alcotest.(check int) "counter untouched" 0 (Metrics.Counter.value c);
  check_float "gauge untouched" 0.0 (Metrics.Gauge.max_value g);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.Histogram.count h);
  (* Flipping it on makes the same handles live. *)
  Metrics.set_enabled reg true;
  Metrics.Counter.incr c;
  Alcotest.(check int) "enabled counts" 1 (Metrics.Counter.value c)

let registry_snapshot_deterministic () =
  (* Same metrics registered in different orders must snapshot
     identically: sorted by (subsystem, name, label). *)
  let build order =
    let reg = Metrics.create () in
    List.iter
      (fun (sub, name, label, v) ->
        let c =
          Metrics.counter ~registry:reg ~subsystem:sub ~name ?label ()
        in
        Metrics.Counter.add c v)
      order;
    List.map
      (fun s -> (s.Metrics.subsystem, s.Metrics.name, s.Metrics.label))
      (Metrics.snapshot reg)
  in
  let a =
    build
      [
        ("z", "n", None, 1);
        ("a", "n", Some "l2", 2);
        ("a", "n", Some "l1", 3);
        ("a", "m", None, 4);
      ]
  in
  let b =
    build
      [
        ("a", "m", None, 4);
        ("a", "n", Some "l1", 3);
        ("a", "n", Some "l2", 2);
        ("z", "n", None, 1);
      ]
  in
  Alcotest.(check (list (triple string string string)))
    "order-independent" a b;
  Alcotest.(check (list (triple string string string)))
    "sorted"
    [ ("a", "m", ""); ("a", "n", "l1"); ("a", "n", "l2"); ("z", "n", "") ]
    a

let registry_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  let h = Metrics.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  Metrics.Counter.add c 5;
  Metrics.Histogram.observe h 10;
  Metrics.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.Histogram.count h);
  Alcotest.(check int) "handles survive" 2 (Metrics.size reg);
  Metrics.Counter.incr c;
  Alcotest.(check int) "handle still live" 1 (Metrics.Counter.value c)

(* ---- histogram bucketing ---- *)

let histogram_bucket_boundaries () =
  let idx = Metrics.Histogram.bucket_index in
  Alcotest.(check int) "0 -> bucket 0" 0 (idx 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (idx 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (idx 2);
  Alcotest.(check int) "3 -> bucket 1" 1 (idx 3);
  Alcotest.(check int) "4 -> bucket 2" 2 (idx 4);
  Alcotest.(check int) "2^10 -> bucket 10" 10 (idx 1024);
  Alcotest.(check int) "2^10 - 1 -> bucket 9" 9 (idx 1023);
  Alcotest.(check int) "negative clamps to 0" 0 (idx (-5));
  (* Every power of two starts its own bucket; the previous value ends
     the bucket below. *)
  for i = 1 to 60 do
    let lo = Metrics.Histogram.bucket_lo i
    and hi = Metrics.Histogram.bucket_hi i in
    Alcotest.(check int) "lo lands in bucket" i (idx lo);
    Alcotest.(check int) "hi lands in bucket" i (idx hi);
    Alcotest.(check int) "hi+1 overflows to next" (i + 1) (idx (hi + 1))
  done

let histogram_observations () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  List.iter (Metrics.Histogram.observe h) [ 1; 100; 1000; 10_000 ];
  Alcotest.(check int) "count" 4 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 11_101 (Metrics.Histogram.sum h);
  Alcotest.(check int) "min" 1 (Metrics.Histogram.min_value h);
  Alcotest.(check int) "max" 10_000 (Metrics.Histogram.max_value h);
  check_float "mean" 2775.25 (Metrics.Histogram.mean h);
  (* Quantiles are bucket upper bounds, capped at the observed max. *)
  Alcotest.(check int) "q1.0 capped at max" 10_000
    (Metrics.Histogram.quantile h 1.0);
  let q50 = Metrics.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "q0.5 within 2x of 100" true (q50 >= 100 && q50 < 256)

(* ---- trace ring ---- *)

let trace_bounded_eviction () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.instant t ~now:(Time.ns i) ~cat:"c" ~name:(string_of_int i) ()
  done;
  Alcotest.(check int) "length bounded" 4 (Trace.length t);
  Alcotest.(check int) "capacity" 4 (Trace.capacity t);
  Alcotest.(check int) "evicted counted" 6 (Trace.evicted t);
  Alcotest.(check (list string))
    "keeps the newest window" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.name) (Trace.events t));
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t)

let trace_disabled_and_spans () =
  let t = Trace.create ~enabled:false () in
  Trace.instant t ~now:(Time.ns 1) ~cat:"c" ~name:"x" ();
  Alcotest.(check int) "disabled records nothing" 0 (Trace.length t);
  Trace.set_enabled t true;
  let clock = ref (Time.us 5) in
  let result =
    Trace.with_span t
      ~clock:(fun () -> !clock)
      ~cat:"c" ~name:"work"
      (fun () ->
        clock := Time.us 9;
        17)
  in
  Alcotest.(check int) "with_span passes result" 17 result;
  (match Trace.events t with
  | [ b; e ] ->
      Alcotest.(check bool) "begin phase" true (b.Trace.phase = Trace.Span_begin);
      Alcotest.(check bool) "end phase" true (e.Trace.phase = Trace.Span_end);
      Alcotest.(check int) "begin ts" (Time.us 5) b.Trace.ts;
      Alcotest.(check int) "end ts" (Time.us 9) e.Trace.ts
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* The span closes even when the body raises. *)
  Trace.clear t;
  (try
     Trace.with_span t
       ~clock:(fun () -> Time.us 1)
       ~cat:"c" ~name:"boom"
       (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 2 (Trace.length t)

(* ---- JSON codec ---- *)

let json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t\xe2\x82\xac");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "" ]);
        ("o", Json.Obj [ ("k", Json.Int 0) ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok parsed ->
      Alcotest.(check bool) "round-trips" true (parsed = doc);
      Alcotest.(check (option string))
        "member access" (Some "a\"b\\c\n\t\xe2\x82\xac")
        (Option.bind (Json.member parsed "s") Json.to_string_opt)

let json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* ---- Chrome trace export ---- *)

let chrome_json_valid_and_roundtrips () =
  let t = Trace.create () in
  (* Deliberately record out of timestamp order: the TE app stamps its
     detection time retroactively, and the exporter must sort. *)
  Trace.span_end t ~now:(Time.us 300) ~cat:"te" ~name:"loop" ();
  Trace.span_begin t
    ~now:(Time.us 100)
    ~cat:"te" ~name:"loop"
    ~args:[ ("switch", Trace.Int 3) ]
    ();
  Trace.instant t ~now:(Time.us 200) ~cat:"col" ~name:"hit" ();
  let json = Trace.to_chrome_json t in
  match Json.of_string json with
  | Error e -> Alcotest.failf "chrome JSON invalid: %s" e
  | Ok doc -> (
      match Option.bind (Json.member doc "traceEvents") Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some records ->
          let phase_of e =
            Option.value ~default:"?"
              (Option.bind (Json.member e "ph") Json.to_string_opt)
          in
          let metadata, events =
            List.partition (fun e -> phase_of e = "M") records
          in
          (* One process_name metadata record per category, so Perfetto
             shows each cat as a named process track. *)
          Alcotest.(check int) "one metadata per cat" 2
            (List.length metadata);
          let proc_names =
            List.filter_map
              (fun m ->
                Option.bind (Json.member m "args") (fun args ->
                    Option.bind (Json.member args "name") Json.to_string_opt))
              metadata
          in
          Alcotest.(check (list string))
            "cats named in first-appearance order" [ "te"; "col" ] proc_names;
          List.iter
            (fun m ->
              Alcotest.(check (option string))
                "metadata kind" (Some "process_name")
                (Option.bind (Json.member m "name") Json.to_string_opt))
            metadata;
          Alcotest.(check int) "3 events" 3 (List.length events);
          let ts_of e =
            match Option.bind (Json.member e "ts") Json.to_float_opt with
            | Some ts -> ts
            | None -> Alcotest.fail "event without ts"
          in
          (* Sorted by timestamp (microseconds), despite recording order. *)
          Alcotest.(check (list (pair string (float 1e-9))))
            "sorted ts in us"
            [ ("B", 100.0); ("i", 200.0); ("E", 300.0) ]
            (List.map (fun e -> (phase_of e, ts_of e)) events);
          (* Every event's pid matches its category's metadata pid. *)
          let pid_of e =
            Option.bind (Json.member e "pid") Json.to_int_opt
          in
          let pid_by_cat =
            List.filter_map
              (fun m ->
                match
                  ( Option.bind (Json.member m "args") (fun a ->
                        Option.bind (Json.member a "name") Json.to_string_opt),
                    pid_of m )
                with
                | Some cat, Some pid -> Some (cat, pid)
                | _ -> None)
              metadata
          in
          List.iter
            (fun e ->
              let cat =
                Option.value ~default:"?"
                  (Option.bind (Json.member e "cat") Json.to_string_opt)
              in
              Alcotest.(check (option int))
                (Printf.sprintf "pid of cat %s" cat)
                (List.assoc_opt cat pid_by_cat)
                (pid_of e))
            events)

let chrome_ts_roundtrip_exact () =
  (* Integer-nanosecond stamps written as microsecond doubles must
     round-trip exactly through print-and-parse for realistic sim
     times. *)
  let t = Trace.create ~capacity:2048 () in
  let stamps =
    List.init 1000 (fun i -> (i * i * 977) + (i * 13) + (i mod 7))
  in
  List.iter
    (fun ns -> Trace.instant t ~now:ns ~cat:"c" ~name:"x" ())
    stamps;
  match Json.of_string (Trace.to_chrome_json t) with
  | Error e -> Alcotest.failf "invalid: %s" e
  | Ok doc ->
      let events =
        List.filter
          (fun e ->
            Option.bind (Json.member e "ph") Json.to_string_opt <> Some "M")
          (Option.get
             (Option.bind (Json.member doc "traceEvents") Json.to_list_opt))
      in
      let got =
        List.map
          (fun e ->
            let us =
              Option.get (Option.bind (Json.member e "ts") Json.to_float_opt)
            in
            int_of_float (Float.round (us *. 1000.0)))
          events
      in
      Alcotest.(check (list int))
        "every stamp recovered to the nanosecond"
        (List.sort compare stamps)
        got

(* ---- journal (flight recorder) ---- *)

module Journal = Planck_telemetry.Journal
module Timeseries = Planck_telemetry.Timeseries
module Inspect = Planck_telemetry.Inspect

let journal_disabled_and_corr () =
  let j = Journal.create ~enabled:false () in
  Journal.record j ~ts:(Time.us 1) (Journal.Phase_marker { name = "x"; detail = "" });
  Alcotest.(check int) "disabled records nothing" 0 (Journal.length j);
  (* Correlation ids mint even while disabled: detection order must be
     stable whether or not the journal is on. *)
  let c1 = Journal.next_corr j in
  let c2 = Journal.next_corr j in
  let c3 = Journal.next_corr j in
  Alcotest.(check (list int)) "corr ids count from 1" [ 1; 2; 3 ] [ c1; c2; c3 ];
  Journal.set_enabled j true;
  Journal.record j ~ts:(Time.us 2) ~corr:7
    (Journal.Phase_marker { name = "y"; detail = "" });
  Alcotest.(check int) "enabled records" 1 (Journal.length j);
  match Journal.events j with
  | [ ev ] ->
      Alcotest.(check int) "ts" (Time.us 2) ev.Journal.ts;
      Alcotest.(check (option int)) "corr" (Some 7) ev.Journal.corr
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let journal_ring_eviction () =
  let j = Journal.create ~capacity:4 () in
  for i = 1 to 10 do
    Journal.record j ~ts:(Time.ns i)
      (Journal.Phase_marker { name = string_of_int i; detail = "" })
  done;
  Alcotest.(check int) "length bounded" 4 (Journal.length j);
  Alcotest.(check int) "capacity" 4 (Journal.capacity j);
  Alcotest.(check int) "evicted counted" 6 (Journal.evicted j);
  Alcotest.(check (list string))
    "keeps the newest window" [ "7"; "8"; "9"; "10" ]
    (List.filter_map
       (fun ev ->
         match ev.Journal.body with
         | Journal.Phase_marker { name; _ } -> Some name
         | _ -> None)
       (Journal.events j));
  Journal.clear j;
  Alcotest.(check int) "clear empties" 0 (Journal.length j)

(* One event per constructor, with representative field values. *)
let every_body_kind =
  [
    Journal.Packet_drop { switch = "s3"; port = 2; mirror = true };
    Journal.Queue_high_water
      { switch = "s0"; occupancy = 9001; capacity = 80_000; level = 1 };
    Journal.Tcp_retransmit
      { flow = "10.0.0.1:1 > 10.0.0.2:2/tcp"; seq = 123456 };
    Journal.Tcp_timeout { flow = "a > b/tcp"; rto_ns = 2_000_000 };
    Journal.Tcp_recovery_enter { flow = "a > b/tcp" };
    Journal.Congestion_detected
      { switch = 3; port = 1; gbps = 9.25; capacity_gbps = 10.0; flows = 4 };
    Journal.Estimate_update { switch = 3; flow = "a > b/tcp"; gbps = 4.5 };
    Journal.Flow_promoted
      { switch = 3; flow = "a > b/tcp"; est_bytes = 36_500 };
    Journal.Flow_demoted
      {
        switch = 3;
        flow = "a > b/tcp";
        fold_back_bytes = 72_000;
        lifetime_ns = 12_000_000;
      };
    Journal.Controller_notified { switch = 3; port = 1 };
    Journal.Reroute_decision
      {
        flow = "a > b/tcp";
        old_mac = "02:00:00:00:00:08";
        new_mac = "02:01:00:00:00:08";
        bottleneck_gbps = 7.5;
        mechanism = "arp";
      };
    Journal.Reroute_install { flow = "a > b/tcp"; mechanism = "arp" };
    Journal.Reroute_effective
      { flow = "a > b/tcp"; new_mac = "02:01:00:00:00:08"; switch = 5 };
    Journal.Phase_marker { name = "run_start"; detail = "stride(8)" };
    Journal.Custom
      {
        source = "ext";
        name = "my_event";
        args = [ ("k", Json.Int 3); ("s", Json.String "v") ];
      };
  ]

let journal_ndjson_roundtrip () =
  let j = Journal.create () in
  List.iteri
    (fun i body ->
      let corr = if i mod 2 = 0 then Some (i + 1) else None in
      Journal.record j ~ts:(Time.us (i + 1)) ?corr body)
    every_body_kind;
  match Journal.of_ndjson (Journal.to_ndjson j) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok parsed ->
      Alcotest.(check int) "all events back" (List.length every_body_kind)
        (List.length parsed);
      List.iter2
        (fun (a : Journal.event) (b : Journal.event) ->
          Alcotest.(check bool)
            (Printf.sprintf "event %s round-trips"
               (Journal.name_of_body a.Journal.body))
            true (a = b))
        (Journal.events j) parsed

let journal_writer_streams_past_eviction () =
  let j = Journal.create ~capacity:2 () in
  let lines = ref [] in
  Journal.set_writer j (Some (fun line -> lines := line :: !lines));
  for i = 1 to 8 do
    Journal.record j ~ts:(Time.ns i)
      (Journal.Phase_marker { name = string_of_int i; detail = "" })
  done;
  Journal.set_writer j None;
  Journal.record j ~ts:(Time.ns 9)
    (Journal.Phase_marker { name = "9"; detail = "" });
  (* The ring kept 2 events but the writer saw all 8 (and none after
     being detached); each streamed line is itself valid NDJSON. *)
  Alcotest.(check int) "ring bounded" 2 (Journal.length j);
  Alcotest.(check int) "writer saw every event" 8 (List.length !lines);
  List.iter
    (fun line ->
      match Result.bind (Json.of_string line) Journal.event_of_json with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad streamed line %S: %s" line e)
    !lines

let journal_ndjson_tolerates_unknown_and_blank () =
  let input =
    String.concat "\n"
      [
        {|{"ts":1000,"src":"collector","ev":"congestion_detected","corr":1,"switch":3,"port":1,"gbps":9.0,"capacity_gbps":10.0,"flows":2}|};
        "";
        {|{"ts":2000,"src":"future","ev":"not_yet_invented","corr":1,"payload":42}|};
      ]
  in
  (match Journal.of_ndjson input with
  | Error e -> Alcotest.failf "should tolerate unknown events: %s" e
  | Ok [ known; unknown ] ->
      (match known.Journal.body with
      | Journal.Congestion_detected { switch = 3; port = 1; flows = 2; _ } ->
          ()
      | _ -> Alcotest.fail "known event misparsed");
      (match unknown.Journal.body with
      | Journal.Custom { source = "future"; name = "not_yet_invented"; args }
        ->
          Alcotest.(check (option int))
            "payload preserved" (Some 42)
            (Option.bind (List.assoc_opt "payload" args) Json.to_int_opt)
      | _ -> Alcotest.fail "unknown event should parse as Custom");
      Alcotest.(check (option int))
        "corr preserved on unknown" (Some 1) unknown.Journal.corr
  | Ok evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  match Journal.of_ndjson {|{"src":"x","ev":"y"}|} with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e >= 4 && String.sub e 0 4 = "line")
  | Ok _ -> Alcotest.fail "event without ts must not parse"

(* ---- timeseries ---- *)

let timeseries_sampling_roundtrip () =
  let ts = Timeseries.create ~interval:(Time.ms 1) () in
  let x = ref 0.0 in
  Timeseries.add_series ts ~name:"x" (fun () -> !x);
  Timeseries.add_series ts ~name:"x_sq" (fun () -> !x *. !x);
  (* Drive from a real engine through the scheduler capability, like
     Recorder does. *)
  let engine = Engine.create () in
  Engine.every engine ~period:(Time.us 250) (fun () -> x := !x +. 0.25);
  Timeseries.start ts
    ~every:(fun ~period f -> Engine.every engine ~period f)
    ~clock:(fun () -> Engine.now engine);
  Engine.run ~until:(Time.ms 4) engine;
  Alcotest.(check int) "one row per interval" 4
    (List.length (Timeseries.rows ts));
  Alcotest.(check (list string))
    "names in registration order" [ "x"; "x_sq" ] (Timeseries.names ts);
  match Timeseries.of_csv (Timeseries.to_csv ts) with
  | Error e -> Alcotest.failf "CSV parse error: %s" e
  | Ok (names, rows) ->
      Alcotest.(check (list string)) "names survive CSV" [ "x"; "x_sq" ] names;
      List.iter2
        (fun (t_ns, orig) (t_s, parsed) ->
          check_float "time in seconds" (Time.to_float_s t_ns) t_s;
          Alcotest.(check int) "width" (Array.length orig)
            (Array.length parsed);
          Array.iteri
            (fun i v -> check_float "cell round-trips" v parsed.(i))
            orig)
        (Timeseries.rows ts) rows

let timeseries_late_series_nan_padding () =
  let ts = Timeseries.create ~interval:(Time.ms 1) () in
  Timeseries.add_series ts ~name:"a" (fun () -> 1.0);
  Timeseries.sample ts ~now:(Time.ms 1);
  (* A series registered after sampling started: earlier rows export as
     nan in its column. *)
  Timeseries.add_series ts ~name:"b" (fun () -> 2.0);
  Timeseries.sample ts ~now:(Time.ms 2);
  (match Timeseries.of_csv (Timeseries.to_csv ts) with
  | Error e -> Alcotest.failf "CSV parse error: %s" e
  | Ok (names, rows) -> (
      Alcotest.(check (list string)) "both columns" [ "a"; "b" ] names;
      match rows with
      | [ (_, r1); (_, r2) ] ->
          check_float "row1 a" 1.0 r1.(0);
          Alcotest.(check bool) "row1 b is nan" true (Float.is_nan r1.(1));
          check_float "row2 b" 2.0 r2.(1)
      | _ -> Alcotest.fail "expected 2 rows"));
  Alcotest.check_raises "comma in series name rejected"
    (Invalid_argument "Timeseries.add_series: name contains ',' or newline")
    (fun () -> Timeseries.add_series ts ~name:"bad,name" (fun () -> 0.0))

(* ---- inspect: loop reconstruction ---- *)

let inspect_rebuilds_loops () =
  let ev ts corr body = { Journal.ts; corr = Some corr; body } in
  let flow = "10.0.0.1:1 > 10.0.0.2:2/tcp" in
  let events =
    [
      (* Loop 1: all five stages. *)
      ev (Time.us 1000) 1
        (Journal.Congestion_detected
           { switch = 0; port = 1; gbps = 9.0; capacity_gbps = 10.0; flows = 1 });
      ev (Time.us 1200) 1 (Journal.Controller_notified { switch = 0; port = 1 });
      ev (Time.us 1200) 1
        (Journal.Reroute_decision
           {
             flow;
             old_mac = "02:00:00:00:00:02";
             new_mac = "02:01:00:00:00:02";
             bottleneck_gbps = 8.0;
             mechanism = "arp";
           });
      ev (Time.us 1400) 1 (Journal.Reroute_install { flow; mechanism = "arp" });
      ev (Time.us 3500) 1
        (Journal.Reroute_effective
           { flow; new_mac = "02:01:00:00:00:02"; switch = 0 });
      (* Loop 2: congestion notified but no reroute. *)
      ev (Time.us 5000) 2
        (Journal.Congestion_detected
           { switch = 1; port = 2; gbps = 8.0; capacity_gbps = 10.0; flows = 1 });
      ev (Time.us 5200) 2 (Journal.Controller_notified { switch = 1; port = 2 });
      (* A second reroute of the same flow: a flap. *)
      ev (Time.us 9000) 3
        (Journal.Congestion_detected
           { switch = 2; port = 0; gbps = 9.9; capacity_gbps = 10.0; flows = 1 });
      ev (Time.us 9100) 3 (Journal.Controller_notified { switch = 2; port = 0 });
      ev (Time.us 9100) 3
        (Journal.Reroute_decision
           {
             flow;
             old_mac = "02:01:00:00:00:02";
             new_mac = "02:00:00:00:00:02";
             bottleneck_gbps = 6.0;
             mechanism = "arp";
           });
    ]
  in
  let loops = Inspect.loops events in
  Alcotest.(check int) "three loops" 3 (List.length loops);
  (match loops with
  | [ l1; l2; l3 ] ->
      Alcotest.(check int) "ordered by detect" 1 l1.Inspect.corr;
      Alcotest.(check bool) "loop 1 complete" true (Inspect.complete l1);
      Alcotest.(check (option string)) "loop 1 flow" (Some flow)
        l1.Inspect.flow;
      Alcotest.(check (option int))
        "loop 1 total = detect -> effective" (Some (Time.us 2500))
        (Inspect.total l1);
      Alcotest.(check (option string)) "loop 2 has no reroute" None
        l2.Inspect.flow;
      Alcotest.(check bool) "loop 2 incomplete" false (Inspect.complete l2);
      Alcotest.(check (option int)) "loop 2 notify stamp"
        (Some (Time.us 5200))
        l2.Inspect.notify;
      Alcotest.(check bool) "loop 3 incomplete (no install)" false
        (Inspect.complete l3)
  | _ -> Alcotest.fail "unreachable");
  (* Stage durations cover only the complete loop. *)
  List.iter
    (fun (stage, ms) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: one complete loop" stage)
        1 (List.length ms))
    (Inspect.stage_durations loops);
  (match List.assoc_opt "detect->effective" (Inspect.stage_durations loops) with
  | Some [ total_ms ] -> check_float "total in ms" 2.5 total_ms
  | _ -> Alcotest.fail "missing detect->effective");
  Alcotest.(check (list (pair string int)))
    "flap counts" [ (flow, 2) ] (Inspect.flap_counts events);
  Alcotest.(check (option int))
    "event counts" (Some 3)
    (List.assoc_opt "congestion_detected" (Inspect.count_events events))

let inspect_estimate_errors () =
  let names = [ "link:s0.p1:gbps"; "true:f1"; "est:f1"; "true:f2"; "est:f2" ] in
  let rows =
    [
      (* f1 estimated at half its true rate; f2 perfectly. The nan
         estimate row and the below-threshold truth row are skipped. *)
      (0.001, [| 9.0; 8.0; 4.0; 2.0; 2.0 |]);
      (0.002, [| 9.0; 8.0; 4.0; 2.0; 2.0 |]);
      (0.003, [| 9.0; 8.0; Float.nan; 0.01; 5.0 |]);
    ]
  in
  match Inspect.estimate_errors ~names ~rows with
  | [ ("f1", e1); ("f2", e2) ] ->
      check_float "f1 error 50%" 0.5 e1;
      check_float "f2 error 0%" 0.0 e2
  | errors ->
      Alcotest.failf "expected f1 and f2, got %d entries"
        (List.length errors)

(* ---- qcheck: JSON codec is the identity on printable documents ---- *)

(* Finite floats only (nan/inf deliberately print as null) and valid
   UTF-8 strings exercising quotes, backslashes, control characters and
   multi-byte sequences. *)
let json_gen =
  let open QCheck.Gen in
  let str =
    map (String.concat "")
      (list_size (int_bound 8)
         (oneofl
            [
              "a"; "Z"; "0"; " "; "\""; "\\"; "/"; "\n"; "\t"; "\r"; "\b";
              "\012"; "{"; "}"; "["; "]"; ","; ":"; "\xc3\xa9" (* é *);
              "\xe2\x82\xac" (* EUR sign *); "\xe4\xb8\xad" (* CJK *);
            ]))
  in
  let finite_float =
    map2
      (fun m e -> Float.ldexp (float_of_int m) e)
      (int_range (-100_000) 100_000)
      (int_range (-30) 30)
  in
  let big_int =
    frequency
      [ (3, small_signed_int); (1, oneofl [ max_int; min_int; 0; 1 lsl 53 ]) ]
  in
  let scalar =
    oneof
      [
        map (fun i -> Json.Int i) big_int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.String s) str;
        map (fun b -> Json.Bool b) bool;
        return Json.Null;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map (fun l -> Json.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4) (pair str (self (n / 2)))) );
             ])

let json_print_parse_id =
  QCheck.Test.make ~name:"json: parse (print doc) = doc" ~count:500
    (QCheck.make ~print:Json.to_string json_gen)
    (fun doc ->
      match Json.of_string (Json.to_string doc) with
      | Ok parsed -> parsed = doc
      | Error _ -> false)

(* ---- exporters ---- *)

let export_shapes () =
  let reg = Metrics.create () in
  Metrics.Counter.add
    (Metrics.counter ~registry:reg ~subsystem:"a" ~name:"c" ~label:"l" ())
    3;
  Metrics.Gauge.set (Metrics.gauge ~registry:reg ~subsystem:"a" ~name:"g" ()) 2.5;
  Metrics.Histogram.observe
    (Metrics.histogram ~registry:reg ~subsystem:"b" ~name:"h" ())
    100;
  (match Json.of_string (Export.metrics_json reg) with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok doc -> (
      match Option.bind (Json.member doc "metrics") Json.to_list_opt with
      | None -> Alcotest.fail "no metrics array"
      | Some rows ->
          Alcotest.(check int) "3 rows" 3 (List.length rows);
          let kinds =
            List.map
              (fun r ->
                Option.value ~default:"?"
                  (Option.bind (Json.member r "kind") Json.to_string_opt))
              rows
          in
          Alcotest.(check (list string))
            "kinds in sorted key order"
            [ "counter"; "gauge"; "histogram" ]
            kinds));
  let csv = Export.metrics_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "csv header"
    "subsystem,name,label,kind,value,count,sum,min,max" (List.hd lines);
  Alcotest.(check bool) "counter row" true
    (List.exists (fun l -> l = "a,c,l,counter,3,,,,") lines)

let flusher_writes_and_schedules () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"f" ~name:"c" () in
  Metrics.Counter.add c 7;
  let path = Filename.temp_file "planck_metrics" ".json" in
  let fl = Flusher.create ~registry:reg ~outputs:[ Flusher.Metrics_json path ] () in
  (* Drive it from a real engine through the scheduler capability. *)
  let engine = Engine.create () in
  Flusher.schedule fl ~period:(Time.ms 1)
    ~every:(fun ~period f -> Engine.every engine ~period f);
  Engine.run ~until:(Time.ms 5) engine;
  Alcotest.(check int) "flushed once per period" 5 (Flusher.flushes fl);
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  (match Json.of_string contents with
  | Error e -> Alcotest.failf "flushed file invalid: %s" e
  | Ok _ -> ());
  Alcotest.check_raises "non-positive period rejected"
    (Invalid_argument "Flusher.schedule: period must be positive") (fun () ->
      Flusher.schedule fl ~period:0 ~every:(fun ~period:_ _ -> ()))

let flusher_final_flush_captures_end_state () =
  (* Metrics bumped after the last scheduled flush would be lost if the
     run did not end with an explicit flush: the snapshot file must
     reflect the final value after it. *)
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"f" ~name:"c" () in
  let path = Filename.temp_file "planck_final" ".json" in
  let fl =
    Flusher.create ~registry:reg ~outputs:[ Flusher.Metrics_json path ] ()
  in
  let engine = Engine.create () in
  Flusher.schedule fl ~period:(Time.ms 1)
    ~every:(fun ~period f -> Engine.every engine ~period f);
  Engine.schedule engine ~delay:(Time.us 2500) (fun () ->
      Metrics.Counter.add c 5);
  Engine.run ~until:(Time.us 2600) engine;
  let value_on_disk () =
    let ic = open_in path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string contents with
    | Error e -> Alcotest.failf "snapshot invalid: %s" e
    | Ok doc ->
        let rows =
          Option.value ~default:[]
            (Option.bind (Json.member doc "metrics") Json.to_list_opt)
        in
        List.find_map
          (fun r ->
            match Option.bind (Json.member r "name") Json.to_string_opt with
            | Some "c" -> Option.bind (Json.member r "value") Json.to_int_opt
            | _ -> None)
          rows
  in
  Alcotest.(check int) "two periodic flushes" 2 (Flusher.flushes fl);
  Alcotest.(check (option int))
    "last periodic snapshot predates the bump" (Some 0) (value_on_disk ());
  Flusher.flush fl;
  Alcotest.(check (option int))
    "final flush captures end-of-run state" (Some 5) (value_on_disk ());
  Sys.remove path

(* ---- engine wiring into the default registry ---- *)

let engine_default_registry () =
  (* The engine's instrumentation writes to Metrics.default, which is
     disabled by default; flip it on, run a small sim, and check the
     counters agree with the engine's own introspection. *)
  let was = Metrics.enabled Metrics.default in
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset Metrics.default;
      Metrics.set_enabled Metrics.default was)
    (fun () ->
      let engine = Engine.create () in
      let fired = ref 0 in
      for i = 1 to 10 do
        Engine.schedule engine ~delay:(Time.us i) (fun () -> incr fired)
      done;
      Engine.run engine;
      Alcotest.(check int) "all fired" 10 !fired;
      Alcotest.(check int) "events_processed" 10
        (Engine.events_processed engine);
      Alcotest.(check int) "max_pending high-water" 10
        (Engine.max_pending engine);
      Alcotest.(check int) "pending drained" 0 (Engine.pending engine);
      let c =
        Metrics.counter ~subsystem:"engine" ~name:"events_processed" ()
      in
      Alcotest.(check int) "default-registry counter tracks engine" 10
        (Metrics.Counter.value c);
      let g =
        Metrics.gauge ~subsystem:"engine" ~name:"pending_high_water" ()
      in
      check_float "default-registry gauge high-water" 10.0
        (Metrics.Gauge.max_value g))

let tests =
  [
    Alcotest.test_case "registry counters and gauges" `Quick
      registry_counters_gauges;
    Alcotest.test_case "registration is idempotent" `Quick
      registry_idempotent_registration;
    Alcotest.test_case "disabled registry is a no-op" `Quick
      registry_disabled_is_noop;
    Alcotest.test_case "snapshot is deterministic" `Quick
      registry_snapshot_deterministic;
    Alcotest.test_case "reset keeps handles live" `Quick registry_reset;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      histogram_bucket_boundaries;
    Alcotest.test_case "histogram observations" `Quick histogram_observations;
    Alcotest.test_case "trace ring bounded eviction" `Quick
      trace_bounded_eviction;
    Alcotest.test_case "trace disabled flag and spans" `Quick
      trace_disabled_and_spans;
    Alcotest.test_case "json round-trip" `Quick json_roundtrip;
    Alcotest.test_case "json rejects malformed input" `Quick
      json_rejects_malformed;
    Alcotest.test_case "chrome trace valid and sorted" `Quick
      chrome_json_valid_and_roundtrips;
    Alcotest.test_case "chrome ts round-trips exactly" `Quick
      chrome_ts_roundtrip_exact;
    Alcotest.test_case "export shapes (json + csv)" `Quick export_shapes;
    Alcotest.test_case "flusher writes and schedules" `Quick
      flusher_writes_and_schedules;
    Alcotest.test_case "flusher final flush captures end state" `Quick
      flusher_final_flush_captures_end_state;
    Alcotest.test_case "engine feeds the default registry" `Quick
      engine_default_registry;
    Alcotest.test_case "journal disabled flag and corr minting" `Quick
      journal_disabled_and_corr;
    Alcotest.test_case "journal ring bounded eviction" `Quick
      journal_ring_eviction;
    Alcotest.test_case "journal NDJSON round-trips every event kind" `Quick
      journal_ndjson_roundtrip;
    Alcotest.test_case "journal writer streams past eviction" `Quick
      journal_writer_streams_past_eviction;
    Alcotest.test_case "journal NDJSON tolerates unknown/blank lines" `Quick
      journal_ndjson_tolerates_unknown_and_blank;
    Alcotest.test_case "timeseries sampling and CSV round-trip" `Quick
      timeseries_sampling_roundtrip;
    Alcotest.test_case "timeseries late series pad with nan" `Quick
      timeseries_late_series_nan_padding;
    Alcotest.test_case "inspect rebuilds control loops" `Quick
      inspect_rebuilds_loops;
    Alcotest.test_case "inspect pairs true/est columns" `Quick
      inspect_estimate_errors;
    QCheck_alcotest.to_alcotest json_print_parse_id;
  ]
