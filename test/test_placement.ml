(* Properties of the Hedera-style placement machinery shared by the
   polling and sFlow baselines. *)

module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module FK = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing
module Placement = Planck_baselines.Placement

let gbps = Rate.gbps

let flow ?(rate = gbps 4.0) ~src ~dst ?(alt = 0) routing =
  {
    Placement.key =
      {
        FK.src_ip = Ip.host src;
        dst_ip = Ip.host dst;
        src_port = 10_000 + src;
        dst_port = 5_000 + dst;
        protocol = 6;
      };
    rate;
    current_mac = Routing.mac_for routing ~dst ~alt;
  }

let with_fat_tree f =
  let tb, _ = Testbed.fat_tree () in
  f tb.Testbed.routing

let demands_disjoint_flows () =
  with_fat_tree (fun routing ->
      let flows = [ flow ~src:0 ~dst:8 routing; flow ~src:1 ~dst:9 routing ] in
      let demands = Placement.estimate_demands ~link_rate:(gbps 10.0) flows in
      List.iter
        (fun (f, d) ->
          ignore f;
          Alcotest.(check (float 0.1)) "full NIC demand" 10.0 (Rate.to_gbps d))
        demands)

let demands_shared_receiver () =
  with_fat_tree (fun routing ->
      let flows = [ flow ~src:0 ~dst:8 routing; flow ~src:1 ~dst:8 routing ] in
      let demands = Placement.estimate_demands ~link_rate:(gbps 10.0) flows in
      List.iter
        (fun (_, d) ->
          Alcotest.(check (float 0.1)) "receiver-limited to half" 5.0
            (Rate.to_gbps d))
        demands)

let demands_shared_sender () =
  with_fat_tree (fun routing ->
      let flows = [ flow ~src:0 ~dst:8 routing; flow ~src:0 ~dst:9 routing ] in
      let demands = Placement.estimate_demands ~link_rate:(gbps 10.0) flows in
      List.iter
        (fun (_, d) ->
          Alcotest.(check (float 0.1)) "sender-limited to half" 5.0
            (Rate.to_gbps d))
        demands)

let gff_separates_stride_collision () =
  with_fat_tree (fun routing ->
      (* Flows 0->8 and 1->9 collide on their base routes. GFF must move
         at least one (both demand the full 10G). *)
      let flows = [ flow ~src:0 ~dst:8 routing; flow ~src:1 ~dst:9 routing ] in
      let moves = Placement.global_first_fit ~routing ~link_rate:(gbps 10.0) flows in
      Alcotest.(check bool) "at least one move" true (List.length moves >= 1))

let gff_leaves_disjoint_flows_alone () =
  with_fat_tree (fun routing ->
      (* Alternates 0 and 2 are core-disjoint: no move needed. *)
      let flows =
        [ flow ~src:0 ~dst:8 routing; flow ~src:1 ~dst:9 ~alt:2 routing ]
      in
      let moves =
        Placement.global_first_fit ~routing ~link_rate:(gbps 10.0) flows
      in
      Alcotest.(check int) "no moves" 0 (List.length moves))

let gff_moves_are_valid_qcheck =
  QCheck.Test.make
    ~name:"GFF moves are unique flows onto valid alternate routes"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let tb, _ = Testbed.fat_tree ~seed () in
      let routing = tb.Testbed.routing in
      let prng = Prng.create ~seed in
      let pairs = Planck_workloads.Generate.random_bijection prng ~hosts:16 in
      let flows =
        List.map
          (fun ({ src; dst; _ } : Planck_workloads.Generate.pair) ->
            flow ~src ~dst ~rate:(gbps 4.0) routing)
          pairs
      in
      let moves =
        Placement.global_first_fit ~routing ~link_rate:(gbps 10.0) flows
      in
      let keys = List.map (fun (f, _) -> f.Placement.key) moves in
      let unique =
        List.length keys = List.length (List.sort_uniq FK.compare keys)
      in
      unique
      && List.for_all
           (fun (f, mac) ->
             (not (Mac.equal mac f.Placement.current_mac))
             && Routing.tree routing mac <> None
             &&
             let dst = Option.get (Ip.host_id f.Placement.key.FK.dst_ip) in
             Mac.equal (fst (Mac.base_of_shadow mac)) (Mac.host dst))
           moves)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "demands: disjoint flows get full NIC" `Quick
      demands_disjoint_flows;
    Alcotest.test_case "demands: shared receiver halves" `Quick
      demands_shared_receiver;
    Alcotest.test_case "demands: shared sender halves" `Quick
      demands_shared_sender;
    Alcotest.test_case "GFF separates a stride collision" `Quick
      gff_separates_stride_collision;
    Alcotest.test_case "GFF leaves disjoint flows alone" `Quick
      gff_leaves_disjoint_flows_alone;
    qtest gff_moves_are_valid_qcheck;
  ]
