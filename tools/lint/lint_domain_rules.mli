(** The domain-safety / shard-confinement tier.

    Classifies every toplevel [lib/] binding into the four-point
    lattice [immutable < atomic < engine-scoped < shared-mutable] and
    fires three rules on the shared-mutable class:
    [shared-mutable-global] (the state exists), [shard-unsafe-reach]
    (it is reachable from the per-packet/per-event hot roots) and
    [nonatomic-counter] (a read-modify-write on it). Findings carry a
    stable symbol and the classification, so the [(rule, symbol)]
    baseline and the JSON report both survive line churn. *)

type cls = Immutable | Atomic | Engine_scoped | Shared_mutable

val class_label : cls -> string
(** ["immutable"] / ["atomic"] / ["engine-scoped"] / ["shared-mutable"]. *)

val classify : Lint_cmt_index.binding -> cls option
(** [None] for a plain function (arrow type, immutable result, no
    module-init allocation) — not state, not inventoried. *)

type entry = {
  e_id : string;  (** qualified binding id *)
  e_file : string;
  e_line : int;
  e_class : cls;
  e_type : string;  (** rendered type *)
  e_hot : bool;  (** in the shard-root forward closure *)
}

val spawn_callers : Lint_cmt_index.t -> string list
(** Every def with a call-graph edge to [Domain.spawn] — the defs whose
    closures become per-shard entry points under the sharded engine. *)

val shard_closure : Lint_deep_rules.t -> Lint_callgraph.closure
(** Forward reachability from the deep tier's hot roots PLUS
    {!spawn_callers}: everything a shard domain can run. *)

val inventory : ?closure:Lint_callgraph.closure -> Lint_deep_rules.t -> entry list
(** Every classified toplevel binding of every [lib/] unit, sorted by
    id. Covers 100% of toplevel mutable bindings by construction: only
    stateless functions are excluded. [e_hot] is membership in
    [closure] (default {!shard_closure}). *)

val findings : ?entries:entry list -> Lint_deep_rules.t -> Lint_finding.t list
(** The three rules over [entries] (computed when not supplied),
    sorted by location. *)

val inventory_text : entry list -> string
(** The committed-file format: [<class> <symbol> -- <type> [hot]] with
    a comment header. Line-number-free, so the file survives churn. *)

val inventory_json : entry list -> string
(** The CI-artifact format:
    [{"version":1,"shared_state":[{symbol,class,file,line,type,hot}]}]. *)

val load_inventory : string -> ((string * string) list, string) result
(** Parse a committed inventory back to [(class, symbol)] pairs — the
    projection the repo self-check compares against [inventory]. *)
