(* Controller tests: the network view, both reroute mechanisms, the TE
   application's greedy decisions, and the end-to-end control loop. *)

open Testbed
module NV = Planck_controller.Net_view
module Reroute = Planck_controller.Reroute
module Te = Planck_controller.Te
module Controller = Planck_controller.Controller
module Control_channel = Planck_openflow.Control_channel
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module FK = Planck_packet.Flow_key

let key ~src ~dst =
  {
    FK.src_ip = Ip.host src;
    dst_ip = Ip.host dst;
    src_port = 10_000 + src;
    dst_port = 5_000 + dst;
    protocol = 6;
  }

(* ---- Net_view ---- *)

let view_observe_expire () =
  let tb, _shape = fat_tree () in
  let view = NV.create tb.routing ~flow_timeout:(Time.ms 3) in
  let _flow =
    NV.observe view ~now:0 ~key:(key ~src:0 ~dst:8) ~rate:(Rate.gbps 5.0)
      ~dst_mac:(Mac.host 8)
  in
  Alcotest.(check int) "one flow" 1 (NV.size view);
  NV.expire view ~now:(Time.ms 2);
  Alcotest.(check int) "still live" 1 (NV.size view);
  NV.expire view ~now:(Time.ms 4);
  Alcotest.(check int) "expired" 0 (NV.size view)

let view_bottleneck () =
  let tb, _shape = fat_tree () in
  let view = NV.create tb.routing ~flow_timeout:(Time.ms 30) in
  (* Flows 0->8 and 1->9 on their base routes share the edge uplink. *)
  let f0 =
    NV.observe view ~now:0 ~key:(key ~src:0 ~dst:8) ~rate:(Rate.gbps 4.0)
      ~dst_mac:(Planck_topology.Routing.mac_for tb.routing ~dst:8 ~alt:0)
  in
  let f1 =
    NV.observe view ~now:0 ~key:(key ~src:1 ~dst:9) ~rate:(Rate.gbps 4.0)
      ~dst_mac:(Planck_topology.Routing.mac_for tb.routing ~dst:9 ~alt:0)
  in
  let links = NV.path_links view f0 in
  Alcotest.(check bool) "path has hops" true (List.length links = 5);
  (* Bottleneck for f0 excluding itself: f1's 4G loads shared links. *)
  let b = NV.bottleneck view ~capacity:rate_10g ~exclude:f0 ~links in
  Alcotest.(check (float 0.2)) "bottleneck 6G" 6.0 (Rate.to_gbps b);
  (* Excluding f1 too would be 10G — check by removing it. *)
  let b1 = NV.bottleneck view ~capacity:rate_10g ~exclude:f1 ~links:(NV.path_links view f1) in
  Alcotest.(check (float 0.2)) "symmetric" 6.0 (Rate.to_gbps b1)

let view_commanded_mac_is_sticky () =
  let tb, _shape = fat_tree () in
  let view = NV.create tb.routing ~flow_timeout:(Time.ms 30) in
  let base = Planck_topology.Routing.mac_for tb.routing ~dst:8 ~alt:0 in
  let alt2 = Planck_topology.Routing.mac_for tb.routing ~dst:8 ~alt:2 in
  let flow =
    NV.observe view ~now:0 ~key:(key ~src:0 ~dst:8) ~rate:(Rate.gbps 4.0)
      ~dst_mac:base
  in
  NV.set_route view flow alt2;
  (* A stale annotation must not roll the route back. *)
  let flow' =
    NV.observe view ~now:(Time.ms 1) ~key:(key ~src:0 ~dst:8)
      ~rate:(Rate.gbps 4.0) ~dst_mac:base
  in
  Alcotest.(check bool) "commanded route kept" true
    (Mac.equal flow'.NV.dst_mac alt2)

(* ---- Reroute mechanisms ---- *)

let arp_reroute_changes_host_cache () =
  let tb, _shape = fat_tree () in
  let channel =
    Control_channel.create tb.engine ~prng:(Planck_util.Prng.create ~seed:2) ()
  in
  let shadow = Planck_topology.Routing.mac_for tb.routing ~dst:8 ~alt:2 in
  Reroute.apply Reroute.Arp ~channel ~routing:tb.routing ~key:(key ~src:0 ~dst:8)
    ~new_mac:shadow;
  Engine.run ~until:(Time.ms 2) tb.engine;
  Alcotest.(check bool) "host 0 cache updated" true
    (Host.arp_lookup (Fabric.host tb.fabric 0) (Ip.host 8) = Some shadow)

let openflow_reroute_installs_rule () =
  let tb, _shape = fat_tree () in
  let channel =
    Control_channel.create tb.engine ~prng:(Planck_util.Prng.create ~seed:2) ()
  in
  let shadow = Planck_topology.Routing.mac_for tb.routing ~dst:8 ~alt:1 in
  let k = key ~src:0 ~dst:8 in
  Reroute.apply Reroute.Openflow ~channel ~routing:tb.routing ~key:k
    ~new_mac:shadow;
  let edge, _ = Fabric.host_attachment tb.fabric ~host:0 in
  (* Not installed instantly: TCAM latency. *)
  Engine.run ~until:(Time.us 500) tb.engine;
  Alcotest.(check int) "not yet installed" 0
    (Switch.flow_rewrite_count (Fabric.switch tb.fabric edge));
  Engine.run ~until:(Time.ms 10) tb.engine;
  Alcotest.(check int) "installed after TCAM latency" 1
    (Switch.flow_rewrite_count (Fabric.switch tb.fabric edge))

(* ---- TE end-to-end ---- *)

let te_resolves_stride_collision () =
  let tb, _shape = fat_tree () in
  let controller =
    Controller.create tb.engine ~routing:tb.routing ~link_rate:rate_10g
      ~prng:(Planck_util.Prng.create ~seed:3) ()
  in
  let te = Controller.start_te controller () in
  (* Two flows whose base routes collide on the edge uplink. *)
  let f0 = start_flow tb ~src:0 ~dst:8 ~size:(50 * 1024 * 1024) () in
  let f1 = start_flow tb ~src:1 ~dst:9 ~size:(50 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 120) tb.engine;
  Alcotest.(check bool) "rerouted at least once" true (Te.reroutes te >= 1);
  Alcotest.(check bool) "notifications arrived" true (Te.notifications te > 0);
  Alcotest.(check bool) "both complete" true
    (Flow.completed f0 && Flow.completed f1);
  let g f = Rate.to_gbps (Option.get (Flow.goodput f)) in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate beats fair share: %.1f + %.1f" (g f0) (g f1))
    true
    (g f0 +. g f1 > 11.0)

let te_leaves_uncongested_alone () =
  let tb, _shape = fat_tree () in
  let controller =
    Controller.create tb.engine ~routing:tb.routing ~link_rate:rate_10g
      ~prng:(Planck_util.Prng.create ~seed:3) ()
  in
  let te = Controller.start_te controller () in
  (* Disjoint flows: no reroutes should occur. *)
  let f0 = start_flow tb ~src:0 ~dst:8 ~size:(10 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 50) tb.engine;
  Alcotest.(check bool) "flow completes" true (Flow.completed f0);
  Alcotest.(check int) "no reroutes" 0 (Te.reroutes te)

let controller_stats_queries () =
  let tb, _shape = fat_tree () in
  let controller =
    Controller.create tb.engine ~routing:tb.routing ~link_rate:rate_10g
      ~prng:(Planck_util.Prng.create ~seed:3) ()
  in
  Alcotest.(check int) "one collector per switch" 20
    (List.length (Controller.collectors controller));
  let flow = start_flow tb ~src:0 ~dst:8 ~size:(10 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 20) tb.engine;
  Alcotest.(check bool) "flow rate known somewhere" true
    (Controller.flow_rate controller (Flow.key flow) <> None);
  let edge, port = Fabric.host_attachment tb.fabric ~host:8 in
  Alcotest.(check bool) "edge link utilization seen" true
    (Rate.to_gbps (Controller.link_utilization controller ~switch:edge ~port)
    > 1.0)

let tests =
  [
    Alcotest.test_case "view observe and expire" `Quick view_observe_expire;
    Alcotest.test_case "view bottleneck computation" `Quick view_bottleneck;
    Alcotest.test_case "commanded route is sticky" `Quick
      view_commanded_mac_is_sticky;
    Alcotest.test_case "ARP reroute updates host cache" `Quick
      arp_reroute_changes_host_cache;
    Alcotest.test_case "OpenFlow reroute installs rule" `Quick
      openflow_reroute_installs_rule;
    Alcotest.test_case "TE resolves a stride collision" `Quick
      te_resolves_stride_collision;
    Alcotest.test_case "TE leaves clean traffic alone" `Quick
      te_leaves_uncongested_alone;
    Alcotest.test_case "controller statistics queries" `Quick
      controller_stats_queries;
  ]
