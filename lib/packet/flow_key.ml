type t = {
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  src_port : int;
  dst_port : int;
  protocol : int;
}

let of_packet (p : Packet.t) =
  match p.body with
  | Packet.Arp _ -> None
  | Packet.Ipv4 (ip, l4) ->
      let src_port, dst_port =
        match l4 with
        | Packet.Tcp tcp -> (tcp.Headers.Tcp.src_port, tcp.Headers.Tcp.dst_port)
        | Packet.Udp udp -> (udp.Headers.Udp.src_port, udp.Headers.Udp.dst_port)
      in
      Some
        {
          src_ip = ip.Headers.Ipv4.src;
          dst_ip = ip.Headers.Ipv4.dst;
          src_port;
          dst_port;
          protocol = ip.Headers.Ipv4.protocol;
        }

let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    src_port = t.dst_port;
    dst_port = t.src_port;
    protocol = t.protocol;
  }

let equal (a : t) (b : t) =
  Ipv4_addr.equal a.src_ip b.src_ip
  && Ipv4_addr.equal a.dst_ip b.dst_ip
  && Int.equal a.src_port b.src_port
  && Int.equal a.dst_port b.dst_port
  && Int.equal a.protocol b.protocol

let compare (a : t) (b : t) =
  match Ipv4_addr.compare a.src_ip b.src_ip with
  | 0 -> (
      match Ipv4_addr.compare a.dst_ip b.dst_ip with
      | 0 -> (
          match Int.compare a.src_port b.src_port with
          | 0 -> (
              match Int.compare a.dst_port b.dst_port with
              | 0 -> Int.compare a.protocol b.protocol
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

(* Multiplicative mixing over the five fields; every field already fits
   in an int, so no structure walk and no float boxing. *)
let hash (t : t) =
  let mix h x = ((h * 486187739) + x) land max_int in
  mix
    (mix
       (mix
          (mix (mix 17 (Ipv4_addr.to_int t.src_ip)) (Ipv4_addr.to_int t.dst_ip))
          t.src_port)
       t.dst_port)
    t.protocol

let pp ppf t =
  (* planck-lint: allow hot-alloc -- journal labels only; call sites guard with Journal.enabled *)
  Format.fprintf ppf "%a:%d > %a:%d/%s" Ipv4_addr.pp t.src_ip t.src_port
    Ipv4_addr.pp t.dst_ip t.dst_port
    (if t.protocol = Headers.Ipv4.protocol_tcp then "tcp"
     else if t.protocol = Headers.Ipv4.protocol_udp then "udp"
     (* planck-lint: allow hot-alloc -- same journal-only path *)
     else string_of_int t.protocol)

(* Digit-at-a-time decimal so [to_string] never touches the formatting
   APIs the hot-path alloc rule bans; ports/octets/protocols are always
   non-negative. *)
let add_decimal buf n =
  if n = 0 then Buffer.add_char buf '0'
  else begin
    let rec go n =
      if n > 0 then begin
        go (n / 10);
        Buffer.add_char buf (Char.chr (Char.code '0' + (n mod 10)))
      end
    in
    go n
  end

let add_ip buf ip =
  let v = Ipv4_addr.to_int ip in
  add_decimal buf ((v lsr 24) land 0xFF);
  Buffer.add_char buf '.';
  add_decimal buf ((v lsr 16) land 0xFF);
  Buffer.add_char buf '.';
  add_decimal buf ((v lsr 8) land 0xFF);
  Buffer.add_char buf '.';
  add_decimal buf (v land 0xFF)

(* Same rendering as [pp] ("src:port > dst:port/proto"), built with a
   Buffer instead of Format so per-packet-reachable journal sites (the
   sketch tier's promote/demote events) can label flows without a
   hot-alloc suppression. *)
let to_string t =
  let buf = Buffer.create 48 in
  add_ip buf t.src_ip;
  Buffer.add_char buf ':';
  add_decimal buf t.src_port;
  Buffer.add_string buf " > ";
  add_ip buf t.dst_ip;
  Buffer.add_char buf ':';
  add_decimal buf t.dst_port;
  Buffer.add_char buf '/';
  if t.protocol = Headers.Ipv4.protocol_tcp then Buffer.add_string buf "tcp"
  else if t.protocol = Headers.Ipv4.protocol_udp then
    Buffer.add_string buf "udp"
  else add_decimal buf t.protocol;
  Buffer.contents buf

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Table = struct
  include Hashtbl.Make (Key)

  (* Hash-order iteration can leak bucket layout into event ordering;
     these are the deterministic alternatives the planck-lint
     hashtbl-iteration rule points at. *)
  let sorted_bindings t =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.of_seq (to_seq t))

  let iter_sorted f t = List.iter (fun (k, v) -> f k v) (sorted_bindings t)

  let fold_sorted f t init =
    List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings t)
end

module Map = Map.Make (Key)
