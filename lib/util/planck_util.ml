(** Shared utilities for the Planck reproduction: simulated time, event
    heap, ring buffers, deterministic PRNG, statistics, data rates and
    table rendering. *)

module Time = Time
module Heap = Heap
module Timer_wheel = Timer_wheel
module Ring = Ring
module Spsc = Spsc
module Prng = Prng
module Stats = Stats
module Rate = Rate
module Table = Table
