(* The domain-safety tier: the mutable-state classification lattice,
   the three shard-confinement rules (positive and negative fixtures
   each), the baseline and inventory round-trips, and the repo
   self-check against the committed shared-state inventory.

   Fixtures are type-checked in-process against the stdlib environment
   (same harness as test_lint_deep); fixture files live under [lib/]
   so the tier's lib-only scope applies. *)

module Index = Planck_lint_lib.Lint_cmt_index
module Deep = Planck_lint_lib.Lint_deep_rules
module Dom = Planck_lint_lib.Lint_domain_rules
module Finding = Planck_lint_lib.Lint_finding
module Report = Planck_lint_lib.Lint_report

let index_of sources =
  let ix = Index.load ~dirs:[] in
  List.iter
    (fun (unit_name, file, source) ->
      Index.add_typed_source ix ~unit_name ~file ~source)
    sources;
  ix

let syms ~rule findings =
  List.filter_map
    (fun f ->
      if String.equal f.Finding.rule rule then Some f.Finding.symbol else None)
    findings
  |> List.sort_uniq String.compare

(* ---- classification lattice ---- *)

let class_fixture =
  {|
let limit = 42
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let hits = Atomic.make 0
type t = { mutable n : int }
let create () = { n = 0 }
let touch t = t.n <- t.n + 1
let lookup k = Hashtbl.find_opt table k
|}

let class_of entries id =
  match List.find_opt (fun e -> String.equal e.Dom.e_id id) entries with
  | Some e -> Some (Dom.class_label e.Dom.e_class)
  | None -> None

let test_classification () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", class_fixture) ] in
  let t = Deep.prepare ~hot_roots:[] ix in
  let entries = Dom.inventory t in
  Alcotest.(check (option string))
    "plain value is immutable" (Some "immutable")
    (class_of entries "Fix.limit");
  Alcotest.(check (option string))
    "Hashtbl is shared-mutable" (Some "shared-mutable")
    (class_of entries "Fix.table");
  Alcotest.(check (option string))
    "Atomic.t is atomic" (Some "atomic")
    (class_of entries "Fix.hits");
  Alcotest.(check (option string))
    "constructor returning mutable state is engine-scoped"
    (Some "engine-scoped")
    (class_of entries "Fix.create");
  Alcotest.(check (option string))
    "state-threading mutator is not itself state" None
    (class_of entries "Fix.touch");
  Alcotest.(check (option string))
    "pure function is not inventoried" None
    (class_of entries "Fix.lookup")

(* A binding capturing a mutable cell in its closure is state even
   though its type is an arrow. *)
let test_closure_capture () =
  let src = {|
let next_id =
  let counter = ref 0 in
  fun () -> incr counter; !counter
|} in
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", src) ] in
  let t = Deep.prepare ~hot_roots:[] ix in
  Alcotest.(check (option string))
    "closure-captured counter is shared-mutable" (Some "shared-mutable")
    (class_of (Dom.inventory t) "Fix.next_id")

(* ---- the three rules ---- *)

let rules_fixture =
  {|
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let cold_box = ref 0
let safe_hits = Atomic.make 0
let raw_hits = ref 0
let bump () = incr raw_hits
let safe_bump () = Atomic.incr safe_hits
let ingress x =
  Hashtbl.replace table x x;
  bump ();
  safe_bump ()
|}

let rules_findings () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", rules_fixture) ] in
  let t = Deep.prepare ~hot_roots:[ "Fix.ingress" ] ix in
  Dom.findings t

let test_shared_mutable_global () =
  Alcotest.(check (list string))
    "every shared-mutable global fires; the Atomic one does not"
    [ "Fix.cold_box"; "Fix.raw_hits"; "Fix.table" ]
    (syms ~rule:"shared-mutable-global" (rules_findings ()))

let test_shard_unsafe_reach () =
  Alcotest.(check (list string))
    "only hot-reachable shared state fires; the cold binding does not"
    [ "Fix.raw_hits"; "Fix.table" ]
    (syms ~rule:"shard-unsafe-reach" (rules_findings ()))

let test_nonatomic_counter () =
  Alcotest.(check (list string))
    "ref RMW fires; the Atomic counterpart does not"
    [ "Fix.raw_hits" ]
    (syms ~rule:"nonatomic-counter" (rules_findings ()))

(* ---- Domain.spawn closures as shard roots ----

   With the sharded engine, code reached from a [Domain.spawn] body
   runs concurrently even if no per-packet hot root reaches it, so the
   domain tier treats spawn callers as additional shard roots. *)

let spawn_fixture =
  {|
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let hits = Atomic.make 0
let body () = Hashtbl.replace table 1 1; Atomic.incr hits
let launch () = ignore (Domain.spawn body)
|}

let test_spawn_closure_is_shard_root () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", spawn_fixture) ] in
  Alcotest.(check (list string))
    "the spawn call site is detected" [ "Fix.launch" ]
    (Dom.spawn_callers ix);
  (* no per-packet hot roots at all: the reach finding comes purely
     from the spawned closure *)
  let t = Deep.prepare ~hot_roots:[] ix in
  Alcotest.(check (list string))
    "shared state reached from the spawned closure fires"
    [ "Fix.table" ]
    (syms ~rule:"shard-unsafe-reach" (Dom.findings t));
  let closure = Dom.shard_closure t in
  Alcotest.(check bool) "the spawned body is in the shard closure" true
    (Planck_lint_lib.Lint_callgraph.mem closure "Fix.body")

let test_no_spawn_means_no_shard_root () =
  let src =
    {|
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let audit () = Hashtbl.length table
|}
  in
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", src) ] in
  Alcotest.(check (list string))
    "no spawn callers in a spawn-free unit" [] (Dom.spawn_callers ix);
  let t = Deep.prepare ~hot_roots:[] ix in
  Alcotest.(check (list string))
    "without roots the same state does not fire the reach rule" []
    (syms ~rule:"shard-unsafe-reach" (Dom.findings t));
  Alcotest.(check (list string))
    "it still fires the global-state rule" [ "Fix.table" ]
    (syms ~rule:"shared-mutable-global" (Dom.findings t))

(* RMW on a mutable field of a *parameter* is the engine-scoped
   discipline the tier exists to encourage — no rule fires. *)
let test_param_rmw_is_clean () =
  let src =
    {|
type t = { mutable count : int }
let create () = { count = 0 }
let touch t = t.count <- t.count + 1
let ingress t = touch t
|}
  in
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", src) ] in
  let t = Deep.prepare ~hot_roots:[ "Fix.ingress" ] ix in
  Alcotest.(check (list string))
    "no findings on parameter-threaded state" []
    (List.map (fun f -> f.Finding.rule) (Dom.findings t))

(* ---- baseline and report plumbing ---- *)

let test_baseline_absorbs_domain_finding () =
  let findings = rules_findings () in
  let path = Filename.temp_file "planck_domain_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "shared-mutable-global Fix.table -- fixture justification\n\
         shard-unsafe-reach Fix.table -- fixture justification\n";
      close_out oc;
      let entries =
        match Deep.load_baseline path with
        | Ok entries -> entries
        | Error e -> Alcotest.failf "baseline should parse: %s" e
      in
      let kept, baselined = Deep.apply_baseline entries findings in
      Alcotest.(check int) "both table findings absorbed" 2
        (List.length baselined);
      Alcotest.(check (list string))
        "other symbols still fire"
        [ "Fix.cold_box"; "Fix.raw_hits" ]
        (syms ~rule:"shared-mutable-global" kept))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_json_report_carries_class () =
  let findings = rules_findings () in
  Alcotest.(check bool)
    "every domain finding is classified" true
    (List.for_all (fun f -> f.Finding.classification <> "") findings);
  let doc = Report.json_of ~findings ~suppressed:0 ~files:1 in
  Alcotest.(check bool)
    "JSON payload carries the classification" true
    (contains ~needle:{|"class":"shared-mutable"|} doc)

(* ---- inventory formats ---- *)

let test_inventory_round_trip () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", rules_fixture) ] in
  let t = Deep.prepare ~hot_roots:[ "Fix.ingress" ] ix in
  let entries = Dom.inventory t in
  let path = Filename.temp_file "planck_shared_state" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Dom.inventory_text entries);
      close_out oc;
      let loaded =
        match Dom.load_inventory path with
        | Ok pairs -> pairs
        | Error e -> Alcotest.failf "inventory should parse: %s" e
      in
      Alcotest.(check (list (pair string string)))
        "text format round-trips to (class, symbol)"
        (List.map
           (fun e -> (Dom.class_label e.Dom.e_class, e.Dom.e_id))
           entries)
        loaded);
  let doc = Dom.inventory_json entries in
  Alcotest.(check bool)
    "JSON artifact names the shared state" true
    (contains ~needle:{|"symbol":"Fix.table"|} doc
    && contains ~needle:{|"class":"shared-mutable"|} doc)

(* ---- repo self-check ----

   With the real build tree around, the committed inventory must match
   what the tier computes from the current cmts — converting a ref to
   Atomic (or adding shared state) without regenerating
   tools/lint/shared_state.txt fails here. Same build-tree convention
   as test_lint's repo-clean check. *)
let test_committed_inventory_current () =
  let root = Filename.dirname (Sys.getcwd ()) in
  let committed = Filename.concat root "tools/lint/shared_state.txt" in
  if Sys.file_exists (Filename.concat root "lib") && Sys.file_exists committed
  then begin
    let ix = Index.load ~dirs:[ root ] in
    if Index.unit_count ix > 0 then begin
      let t = Deep.prepare ix in
      let computed =
        List.map
          (fun e -> (Dom.class_label e.Dom.e_class, e.Dom.e_id))
          (Dom.inventory t)
      in
      let loaded =
        match Dom.load_inventory committed with
        | Ok pairs -> pairs
        | Error e -> Alcotest.failf "committed inventory unreadable: %s" e
      in
      Alcotest.(check (list (pair string string)))
        "tools/lint/shared_state.txt is current (regenerate with \
         planck_lint --deep --shared-state-out)"
        computed loaded
    end
  end

let tests =
  [
    Alcotest.test_case "classification lattice" `Quick test_classification;
    Alcotest.test_case "closure capture is state" `Quick test_closure_capture;
    Alcotest.test_case "shared-mutable-global fires" `Quick
      test_shared_mutable_global;
    Alcotest.test_case "shard-unsafe-reach needs a hot path" `Quick
      test_shard_unsafe_reach;
    Alcotest.test_case "nonatomic-counter spares Atomic" `Quick
      test_nonatomic_counter;
    Alcotest.test_case "Domain.spawn closure is a shard root" `Quick
      test_spawn_closure_is_shard_root;
    Alcotest.test_case "no spawn means no shard root" `Quick
      test_no_spawn_means_no_shard_root;
    Alcotest.test_case "parameter-threaded RMW is clean" `Quick
      test_param_rmw_is_clean;
    Alcotest.test_case "baseline absorbs domain findings" `Quick
      test_baseline_absorbs_domain_finding;
    Alcotest.test_case "JSON report carries classification" `Quick
      test_json_report_carries_class;
    Alcotest.test_case "inventory round-trips" `Quick test_inventory_round_trip;
    Alcotest.test_case "committed inventory is current" `Quick
      test_committed_inventory_current;
  ]
