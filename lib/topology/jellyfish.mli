(** Jellyfish topology (Singla et al., NSDI'12): switches form a random
    r-regular graph, hosts hang off remaining ports.

    The paper's scalability analysis (§9.1) compares collector
    requirements on fat-trees vs Jellyfish; this builder makes those
    comparisons runnable. Routing uses per-destination BFS spanning
    trees with alternate-specific tie-breaking, giving diverse (not
    necessarily disjoint) alternates. *)

type spec = {
  num_switches : int;
  switch_degree : int;  (** inter-switch ports per switch (r) *)
  hosts_per_switch : int;
}

val build :
  Planck_netsim.Engine.t ->
  spec:spec ->
  switch_config:Planck_netsim.Switch.config ->
  link_rate:Planck_util.Rate.t ->
  ?host_stack:Planck_netsim.Host.stack ->
  ?sharding:Fabric.sharding ->
  prng:Planck_util.Prng.t ->
  unit ->
  Fabric.t
(** Wire a random regular graph drawn from [prng]. Port layout per
    switch: hosts first, then switch-to-switch links, then the monitor
    port. Raises [Invalid_argument] on infeasible specs (odd total
    degree, degree >= switches, ...). *)

val tree_out_ports : Fabric.t -> dst:int -> alt:int -> int array
(** BFS spanning tree toward [dst]'s switch; [alt] seeds the neighbor
    visiting order. *)
