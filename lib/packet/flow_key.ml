type t = {
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  src_port : int;
  dst_port : int;
  protocol : int;
}

let of_packet (p : Packet.t) =
  match p.body with
  | Packet.Arp _ -> None
  | Packet.Ipv4 (ip, l4) ->
      let src_port, dst_port =
        match l4 with
        | Packet.Tcp tcp -> (tcp.Headers.Tcp.src_port, tcp.Headers.Tcp.dst_port)
        | Packet.Udp udp -> (udp.Headers.Udp.src_port, udp.Headers.Udp.dst_port)
      in
      Some
        {
          src_ip = ip.Headers.Ipv4.src;
          dst_ip = ip.Headers.Ipv4.dst;
          src_port;
          dst_port;
          protocol = ip.Headers.Ipv4.protocol;
        }

let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    src_port = t.dst_port;
    dst_port = t.src_port;
    protocol = t.protocol;
  }

let equal (a : t) b = a = b
let compare (a : t) b = compare a b
let hash (t : t) = Hashtbl.hash t

let pp ppf t =
  Format.fprintf ppf "%a:%d > %a:%d/%s" Ipv4_addr.pp t.src_ip t.src_port
    Ipv4_addr.pp t.dst_ip t.dst_port
    (if t.protocol = Headers.Ipv4.protocol_tcp then "tcp"
     else if t.protocol = Headers.Ipv4.protocol_udp then "udp"
     else string_of_int t.protocol)

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Table = Hashtbl.Make (Key)
module Map = Map.Make (Key)
