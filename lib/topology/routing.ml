module Mac = Planck_packet.Mac
module Switch = Planck_netsim.Switch

type tree = { dst_host : int; alt : int; mac : Mac.t; out_ports : int array }

type t = { fabric : Fabric.t; alts : int; trees : (Mac.t, tree) Hashtbl.t }

let create fabric ~alts ~tree_fn =
  if alts < 1 then invalid_arg "Routing.create: need at least one route";
  let trees = Hashtbl.create 64 in
  for dst = 0 to Fabric.host_count fabric - 1 do
    for alt = 0 to alts - 1 do
      let mac = Mac.shadow (Mac.host dst) ~alt in
      Hashtbl.replace trees mac
        { dst_host = dst; alt; mac; out_ports = tree_fn ~dst ~alt }
    done
  done;
  { fabric; alts; trees }

let fabric t = t.fabric
let alts t = t.alts

let install t =
  (* MAC-sorted so rule-install order (and any tap or journal watching
     it) is reproducible run to run. *)
  let trees =
    List.sort
      (fun (a, _) (b, _) -> Mac.compare a b)
      (List.of_seq (Hashtbl.to_seq t.trees))
  in
  List.iter
    (fun (mac, tree) ->
      Array.iteri
        (fun sw out_port ->
          if out_port >= 0 then
            Switch.add_route (Fabric.switch t.fabric sw) mac out_port)
        tree.out_ports;
      if tree.alt > 0 then begin
        (* Shadow MACs must be rewritten to the base MAC at the
           destination's edge switch or the host NIC will filter the
           frame (paper §6.2). *)
        let edge, _ = Fabric.host_attachment t.fabric ~host:tree.dst_host in
        Switch.add_rewrite
          (Fabric.switch t.fabric edge)
          ~from_mac:mac
          ~to_mac:(Mac.host tree.dst_host)
      end)
    trees

let mac_for t ~dst ~alt =
  if alt < 0 || alt >= t.alts then invalid_arg "Routing.mac_for: bad alternate";
  Mac.shadow (Mac.host dst) ~alt

let tree t mac = Hashtbl.find_opt t.trees mac

let trees_to t ~dst =
  List.filter_map
    (fun alt -> tree t (Mac.shadow (Mac.host dst) ~alt))
    (List.init t.alts Fun.id)

type hop = { switch : int; in_port : int; out_port : int }

let path t ~src ~dst_mac =
  let tree =
    match Hashtbl.find_opt t.trees dst_mac with
    | Some tree -> tree
    | None ->
        invalid_arg
          (Printf.sprintf "Routing.path: unknown MAC %s" (Mac.to_string dst_mac))
  in
  let max_hops = Fabric.switch_count t.fabric + 1 in
  let rec walk switch in_port hops remaining =
    if remaining = 0 then invalid_arg "Routing.path: loop detected";
    let out_port = tree.out_ports.(switch) in
    if out_port < 0 then invalid_arg "Routing.path: walked off the tree";
    let hop = { switch; in_port; out_port } in
    match Fabric.peer t.fabric ~switch ~port:out_port with
    | Fabric.To_host h when h = tree.dst_host -> List.rev (hop :: hops)
    | Fabric.To_host _ -> invalid_arg "Routing.path: tree ends at wrong host"
    | Fabric.To_switch (next, next_in) ->
        walk next next_in (hop :: hops) (remaining - 1)
    | Fabric.To_monitor | Fabric.Unwired ->
        invalid_arg "Routing.path: tree uses an unwired port"
  in
  let first_switch, first_port = Fabric.host_attachment t.fabric ~host:src in
  if src = tree.dst_host then []
  else walk first_switch first_port [] max_hops

let links_of_path hops = List.map (fun h -> (h.switch, h.out_port)) hops
