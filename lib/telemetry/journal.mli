(** The flight recorder: a typed, sim-timestamped journal of significant
    cross-layer events, correlated into control loops.

    Every layer of the stack appends {!event}s to a shared bounded ring
    (and, optionally, streams them as NDJSON lines through a writer
    callback, so long runs lose nothing to eviction). A congestion event
    mints a {e correlation id} at detection; the controller
    notification, the TE decision, the ARP/OpenFlow install, and the
    first post-reroute sample on the new path all reference that id, so
    each control loop decomposes into the named stages of the paper's
    Fig 12/15 timeline (detect -> notify -> decide -> install ->
    effective). {!Inspect} rebuilds the loops from a journal.

    Like {!Metrics} and {!Trace}, the process-wide {!default} journal is
    disabled by default and every instrumentation point costs a single
    branch when it is off. Event bodies allocate, so hot call sites must
    guard construction with [if Journal.enabled Journal.default]. *)

module Time = Planck_util.Time

(** Structured event bodies, one constructor per instrumentation point.
    String [flow] fields are [Flow_key.pp] renderings (stable across
    export/import and safe in CSV: no commas). *)
type body =
  | Packet_drop of { switch : string; port : int; mirror : bool }
      (** [netsim]: a frame dropped at [switch]'s egress [port];
          [mirror] distinguishes intentionally-oversubscribed monitor
          ports from data-plane loss. *)
  | Queue_high_water of {
      switch : string;
      occupancy : int;
      capacity : int;
      level : int;
    }
      (** [netsim]: shared-buffer occupancy crossed upward into eighth
          [level] (1-8) of [capacity]. *)
  | Tcp_retransmit of { flow : string; seq : int }
  | Tcp_timeout of { flow : string; rto_ns : int }
      (** [tcp]: retransmission timer fired; [rto_ns] is the timeout
          that expired (before backoff doubling). *)
  | Tcp_recovery_enter of { flow : string }
  | Congestion_detected of {
      switch : int;
      port : int;
      gbps : float;
      capacity_gbps : float;
      flows : int;
    }
      (** [collector]: mints the correlation id for a new control
          loop. *)
  | Estimate_update of { switch : int; flow : string; gbps : float }
  | Flow_promoted of { switch : int; flow : string; est_bytes : int }
      (** [collector]: the sketch tier's estimate for [flow] crossed the
          promotion threshold and the flow now owns an exact entry. *)
  | Flow_demoted of {
      switch : int;
      flow : string;
      fold_back_bytes : int;
      lifetime_ns : int;
    }
      (** [collector]: an idle promoted flow left the exact tier;
          [fold_back_bytes] were credited back to the sketch. *)
  | Controller_notified of { switch : int; port : int }
      (** [controller]: the congestion event arrived over the control
          channel. *)
  | Reroute_decision of {
      flow : string;
      old_mac : string;
      new_mac : string;
      bottleneck_gbps : float;
      mechanism : string;
    }
  | Reroute_install of { flow : string; mechanism : string }
      (** [controller]: the ARP packet_out was injected / the OpenFlow
          rule install completed at the switch. *)
  | Reroute_effective of { flow : string; new_mac : string; switch : int }
      (** [collector]: first sample of the flow carrying its new MAC —
          the vantage point the paper's Fig 16 response latency is
          measured at. *)
  | Phase_marker of { name : string; detail : string }
      (** [experiment]: run lifecycle (start, deployed, end, ...). *)
  | Custom of { source : string; name : string; args : (string * Json.t) list }
      (** Escape hatch; also what unknown event names parse back as. *)

type event = { ts : Time.t; corr : int option; body : body }

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [create ()] is an enabled journal holding the most recent
    [capacity] (default 65536) events. *)

val default : t
(** The process-wide journal every built-in instrumentation point
    records into. Disabled by default. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val next_corr : t -> int
(** Mint a fresh correlation id (1, 2, ...). Independent of
    {!enabled}. *)

val record : t -> ts:Time.t -> ?corr:int -> body -> unit
(** Append an event. A single branch when the journal is disabled; when
    a {!set_writer} callback is installed the event is also streamed as
    one NDJSON line. *)

val events : t -> event list
(** Current ring contents, oldest first. *)

val length : t -> int
val capacity : t -> int

val evicted : t -> int
(** Events discarded to make room since creation (the streamed NDJSON
    still has them). *)

val clear : t -> unit
(** Empty the ring and reset the eviction and correlation counters, so
    consecutive runs against the same journal mint comparable ids. *)

val set_writer : t -> (string -> unit) option -> unit

(** {2 Sharded runs}

    The sharded engine gives every shard domain a private journal and
    redirects {!default} into it through domain-local storage, so the
    instrumentation points scattered through the stack need no changes.
    After the domains join, {!merge_into} folds the per-shard journals
    back into one deterministic stream. *)

val shard_journal : shard:int -> t
(** An enabled journal for shard [shard]. Correlation ids for shard
    [s > 0] are based at [s lsl 40] so ids stay globally unique;
    shard 0 keeps base 0, preserving the single-domain id sequence.
    Deeper ring than {!create}'s default (2{^20} events) because the
    whole run buffers here until the post-join merge; a run that
    overflows it evicts its oldest events ({!evicted}). *)

val set_shard_redirect : t option -> unit
(** Install ([Some j]) or remove ([None]) the calling domain's redirect:
    while installed, {!record} and {!next_corr} against {!default} act
    on [j] instead. Affects only the calling domain. *)

val merge_into : t -> (int * t) list -> unit
(** [merge_into dst shards] appends every event of the [(shard id,
    journal)] pairs into [dst], stably sorted by (sim-time, shard id) —
    a deterministic interleaving that is the identity for one shard.
    Events stream through [dst]'s writer as they append. *)

(** {2 NDJSON codec}

    One event per line:
    [{"ts":<ns>,"src":"collector","ev":"congestion_detected","corr":1,...}].
    [src] groups events by emitting layer; the remaining fields are the
    body's. Unknown [ev] names parse as [Custom], so journals from newer
    builds still load. *)

val source_of_body : body -> string
val name_of_body : body -> string
val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val to_ndjson : t -> string
val of_ndjson : string -> (event list, string) result
