module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Routing = Planck_topology.Routing
module Fabric = Planck_topology.Fabric
module Control_channel = Planck_openflow.Control_channel
module Collector = Planck_collector.Collector

type t = {
  engine : Engine.t;
  routing : Routing.t;
  link_rate : Rate.t;
  channel : Control_channel.t;
  collectors : (int * Collector.t) list; (* (switch, collector) *)
}

let create engine ~routing ~link_rate ?channel_config ?collector_config ~prng
    () =
  let fabric = Routing.fabric routing in
  let channel =
    Control_channel.create engine ?config:channel_config
      ~prng:(Prng.split prng) ()
  in
  let collectors =
    List.filter_map
      (fun switch ->
        match Fabric.monitor_port fabric ~switch with
        | None -> None
        | Some _ ->
            (* Collector placement follows the shard assignment: the
               sink must process samples on the engine that owns the
               switch's monitor port (identical to [engine] when the
               fabric is unsharded). *)
            let collector =
              Collector.create
                (Switch.engine (Fabric.switch fabric switch))
                ~switch ~routing ~link_rate ?config:collector_config ()
            in
            Collector.attach collector;
            Some (switch, collector))
      (List.init (Fabric.switch_count fabric) Fun.id)
  in
  { engine; routing; link_rate; channel; collectors }

let engine t = t.engine
let routing t = t.routing
let channel t = t.channel
let collectors t = List.map snd t.collectors
let collector_for t ~switch = List.assoc_opt switch t.collectors

let link_utilization t ~switch ~port =
  match collector_for t ~switch with
  | None -> 0.0
  | Some collector -> Collector.link_utilization collector ~port

let flow_rate t key =
  List.fold_left
    (fun acc (_, collector) ->
      match acc with
      | Some _ -> acc
      | None -> Collector.flow_rate collector key)
    None t.collectors

let start_te t ?config () =
  Te.create t.engine ~routing:t.routing ~channel:t.channel
    ~collectors:(collectors t) ~link_rate:t.link_rate ?config ()
