(** Interprocedural determinism-taint rule.

    Sources (wall clock, ambient randomness, unsorted Hashtbl iteration)
    taint their enclosing def and every transitive caller; a finding is
    reported only when a tainted def directly references a sim-visible
    sink (journal/timeseries payloads, engine scheduling, routing/TE
    decisions). Findings carry the witness chain and are located at the
    source occurrence, so inline suppressions on the source line apply. *)

type config = {
  sink_patterns : string list;
      (** dotted-suffix patterns, e.g. ["Journal.record"] *)
  exempt_source : string -> bool;
      (** files whose sources are exempt (real-time telemetry) *)
}

val default_config : config
val default_sinks : string list

val report : ?config:config -> Lint_cmt_index.t -> Lint_finding.t list
