module Packet = Planck_packet.Packet
module Headers = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Switch = Planck_netsim.Switch
module Host = Planck_netsim.Host

let packet_out ?(on_injected = fun () -> ()) channel switch ~port packet =
  Control_channel.send channel (fun () ->
      Switch.inject switch ~port packet;
      on_injected ())

let install_flow_rewrite channel switch ~key ~to_mac ~on_installed =
  Control_channel.install_rule channel (fun () ->
      Switch.add_flow_rewrite switch ~key ~to_mac;
      on_installed ())

let spoof_arp ?on_injected channel switch ~port ~target ~pretend_ip
    ~pretend_mac =
  let request =
    Packet.arp ~src_mac:pretend_mac ~dst_mac:(Host.mac target)
      {
        Headers.Arp.op = Headers.Arp.Request;
        sender_mac = pretend_mac;
        sender_ip = pretend_ip;
        target_mac = Host.mac target;
        target_ip = Host.ip target;
      }
  in
  packet_out ?on_injected channel switch ~port request
