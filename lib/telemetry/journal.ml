module Time = Planck_util.Time
module Ring = Planck_util.Ring

let sp_io = Profile.register "journal.io"

type body =
  | Packet_drop of { switch : string; port : int; mirror : bool }
  | Queue_high_water of {
      switch : string;
      occupancy : int;
      capacity : int;
      level : int;
    }
  | Tcp_retransmit of { flow : string; seq : int }
  | Tcp_timeout of { flow : string; rto_ns : int }
  | Tcp_recovery_enter of { flow : string }
  | Congestion_detected of {
      switch : int;
      port : int;
      gbps : float;
      capacity_gbps : float;
      flows : int;
    }
  | Estimate_update of { switch : int; flow : string; gbps : float }
  | Flow_promoted of { switch : int; flow : string; est_bytes : int }
  | Flow_demoted of {
      switch : int;
      flow : string;
      fold_back_bytes : int;
      lifetime_ns : int;
    }
  | Controller_notified of { switch : int; port : int }
  | Reroute_decision of {
      flow : string;
      old_mac : string;
      new_mac : string;
      bottleneck_gbps : float;
      mechanism : string;
    }
  | Reroute_install of { flow : string; mechanism : string }
  | Reroute_effective of { flow : string; new_mac : string; switch : int }
  | Phase_marker of { name : string; detail : string }
  | Custom of { source : string; name : string; args : (string * Json.t) list }

type event = { ts : Time.t; corr : int option; body : body }

type t = {
  mutable on : bool;
  ring : event Ring.t;
  mutable evicted : int;
  mutable corr : int;
  mutable writer : (string -> unit) option;
}

let create ?(capacity = 65536) ?(enabled = true) () =
  { on = enabled; ring = Ring.create ~capacity; evicted = 0; corr = 0;
    writer = None }

(* The process-wide journal every built-in instrumentation point records
   into. Disabled by default, like Metrics.default and Trace.default. *)
let default = create ~enabled:false ()

let set_enabled t on = t.on <- on
let enabled t = t.on

(* ---- sharded runs ----

   Under the sharded engine every domain redirects {!default} into its
   own per-shard journal via DLS, so instrumentation points keep
   writing [Journal.default] unchanged while each shard records into
   private state. Correlation ids are made globally unique by basing
   shard [s > 0] at [s lsl 40]; shard 0 keeps base 0 so a 1-shard run
   mints the exact id sequence of the single-domain engine. *)

let redirect : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Shard journals buffer the whole run (the merge happens after the
   domains join), unlike the default journal whose writer streams as it
   records — so they get a much deeper ring. The slot array is pointers
   only (8 MiB per shard); events are allocated on demand. *)
let shard_ring_capacity = 1 lsl 20

let shard_journal ~shard =
  let j = create ~capacity:shard_ring_capacity () in
  if shard > 0 then j.corr <- shard lsl 40;
  j

let set_shard_redirect j = Domain.DLS.set redirect j

let[@inline] target t =
  if t == default then
    match Domain.DLS.get redirect with Some j -> j | None -> t
  else t

let next_corr t =
  let t = target t in
  t.corr <- t.corr + 1;
  t.corr

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let capacity t = Ring.capacity t.ring
let evicted t = t.evicted

let clear t =
  Ring.clear t.ring;
  t.evicted <- 0;
  t.corr <- 0

let set_writer t w = t.writer <- w

(* ---- NDJSON codec ---- *)

let source_of_body = function
  | Packet_drop _ | Queue_high_water _ -> "netsim"
  | Tcp_retransmit _ | Tcp_timeout _ | Tcp_recovery_enter _ -> "tcp"
  | Congestion_detected _ | Estimate_update _ | Reroute_effective _
  | Flow_promoted _ | Flow_demoted _ ->
      "collector"
  | Controller_notified _ | Reroute_decision _ | Reroute_install _ ->
      "controller"
  | Phase_marker _ -> "experiment"
  | Custom { source; _ } -> source

let name_of_body = function
  | Packet_drop _ -> "packet_drop"
  | Queue_high_water _ -> "queue_high_water"
  | Tcp_retransmit _ -> "retransmit"
  | Tcp_timeout _ -> "rto"
  | Tcp_recovery_enter _ -> "recovery_enter"
  | Congestion_detected _ -> "congestion_detected"
  | Estimate_update _ -> "estimate_update"
  | Flow_promoted _ -> "flow_promoted"
  | Flow_demoted _ -> "flow_demoted"
  | Controller_notified _ -> "notified"
  | Reroute_decision _ -> "reroute_decision"
  | Reroute_install _ -> "reroute_install"
  | Reroute_effective _ -> "reroute_effective"
  | Phase_marker _ -> "phase"
  | Custom { name; _ } -> name

let fields_of_body = function
  | Packet_drop { switch; port; mirror } ->
      [
        ("switch", Json.String switch);
        ("port", Json.Int port);
        ("mirror", Json.Bool mirror);
      ]
  | Queue_high_water { switch; occupancy; capacity; level } ->
      [
        ("switch", Json.String switch);
        ("occupancy", Json.Int occupancy);
        ("capacity", Json.Int capacity);
        ("level", Json.Int level);
      ]
  | Tcp_retransmit { flow; seq } ->
      [ ("flow", Json.String flow); ("seq", Json.Int seq) ]
  | Tcp_timeout { flow; rto_ns } ->
      [ ("flow", Json.String flow); ("rto_ns", Json.Int rto_ns) ]
  | Tcp_recovery_enter { flow } -> [ ("flow", Json.String flow) ]
  | Congestion_detected { switch; port; gbps; capacity_gbps; flows } ->
      [
        ("switch", Json.Int switch);
        ("port", Json.Int port);
        ("gbps", Json.Float gbps);
        ("capacity_gbps", Json.Float capacity_gbps);
        ("flows", Json.Int flows);
      ]
  | Estimate_update { switch; flow; gbps } ->
      [
        ("switch", Json.Int switch);
        ("flow", Json.String flow);
        ("gbps", Json.Float gbps);
      ]
  | Flow_promoted { switch; flow; est_bytes } ->
      [
        ("switch", Json.Int switch);
        ("flow", Json.String flow);
        ("est_bytes", Json.Int est_bytes);
      ]
  | Flow_demoted { switch; flow; fold_back_bytes; lifetime_ns } ->
      [
        ("switch", Json.Int switch);
        ("flow", Json.String flow);
        ("fold_back_bytes", Json.Int fold_back_bytes);
        ("lifetime_ns", Json.Int lifetime_ns);
      ]
  | Controller_notified { switch; port } ->
      [ ("switch", Json.Int switch); ("port", Json.Int port) ]
  | Reroute_decision { flow; old_mac; new_mac; bottleneck_gbps; mechanism } ->
      [
        ("flow", Json.String flow);
        ("old_mac", Json.String old_mac);
        ("new_mac", Json.String new_mac);
        ("bottleneck_gbps", Json.Float bottleneck_gbps);
        ("mechanism", Json.String mechanism);
      ]
  | Reroute_install { flow; mechanism } ->
      [ ("flow", Json.String flow); ("mechanism", Json.String mechanism) ]
  | Reroute_effective { flow; new_mac; switch } ->
      [
        ("flow", Json.String flow);
        ("new_mac", Json.String new_mac);
        ("switch", Json.Int switch);
      ]
  | Phase_marker { name; detail } ->
      [ ("name", Json.String name); ("detail", Json.String detail) ]
  | Custom { args; _ } -> args

let event_to_json (ev : event) =
  let corr = match ev.corr with None -> [] | Some c -> [ ("corr", Json.Int c) ] in
  Json.Obj
    (("ts", Json.Int ev.ts)
     :: ("src", Json.String (source_of_body ev.body))
     :: ("ev", Json.String (name_of_body ev.body))
     :: corr
    @ fields_of_body ev.body)

(* Decoding: pull named fields out of the object, with the reserved keys
   stripped before a Custom fallback so unknown events round-trip. *)

let ( let* ) = Result.bind

let field j key conv =
  match Json.member j key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" key))

let int_f j key = field j key Json.to_int_opt
let float_f j key = field j key Json.to_float_opt
let string_f j key = field j key Json.to_string_opt
let bool_f j key = field j key (function Json.Bool b -> Some b | _ -> None)

let body_of_json j ~src ~ev =
  match ev with
  | "packet_drop" ->
      let* switch = string_f j "switch" in
      let* port = int_f j "port" in
      let* mirror = bool_f j "mirror" in
      Ok (Packet_drop { switch; port; mirror })
  | "queue_high_water" ->
      let* switch = string_f j "switch" in
      let* occupancy = int_f j "occupancy" in
      let* capacity = int_f j "capacity" in
      let* level = int_f j "level" in
      Ok (Queue_high_water { switch; occupancy; capacity; level })
  | "retransmit" ->
      let* flow = string_f j "flow" in
      let* seq = int_f j "seq" in
      Ok (Tcp_retransmit { flow; seq })
  | "rto" ->
      let* flow = string_f j "flow" in
      let* rto_ns = int_f j "rto_ns" in
      Ok (Tcp_timeout { flow; rto_ns })
  | "recovery_enter" ->
      let* flow = string_f j "flow" in
      Ok (Tcp_recovery_enter { flow })
  | "congestion_detected" ->
      let* switch = int_f j "switch" in
      let* port = int_f j "port" in
      let* gbps = float_f j "gbps" in
      let* capacity_gbps = float_f j "capacity_gbps" in
      let* flows = int_f j "flows" in
      Ok (Congestion_detected { switch; port; gbps; capacity_gbps; flows })
  | "estimate_update" ->
      let* switch = int_f j "switch" in
      let* flow = string_f j "flow" in
      let* gbps = float_f j "gbps" in
      Ok (Estimate_update { switch; flow; gbps })
  | "flow_promoted" ->
      let* switch = int_f j "switch" in
      let* flow = string_f j "flow" in
      let* est_bytes = int_f j "est_bytes" in
      Ok (Flow_promoted { switch; flow; est_bytes })
  | "flow_demoted" ->
      let* switch = int_f j "switch" in
      let* flow = string_f j "flow" in
      let* fold_back_bytes = int_f j "fold_back_bytes" in
      let* lifetime_ns = int_f j "lifetime_ns" in
      Ok (Flow_demoted { switch; flow; fold_back_bytes; lifetime_ns })
  | "notified" ->
      let* switch = int_f j "switch" in
      let* port = int_f j "port" in
      Ok (Controller_notified { switch; port })
  | "reroute_decision" ->
      let* flow = string_f j "flow" in
      let* old_mac = string_f j "old_mac" in
      let* new_mac = string_f j "new_mac" in
      let* bottleneck_gbps = float_f j "bottleneck_gbps" in
      let* mechanism = string_f j "mechanism" in
      Ok (Reroute_decision { flow; old_mac; new_mac; bottleneck_gbps; mechanism })
  | "reroute_install" ->
      let* flow = string_f j "flow" in
      let* mechanism = string_f j "mechanism" in
      Ok (Reroute_install { flow; mechanism })
  | "reroute_effective" ->
      let* flow = string_f j "flow" in
      let* new_mac = string_f j "new_mac" in
      let* switch = int_f j "switch" in
      Ok (Reroute_effective { flow; new_mac; switch })
  | "phase" ->
      let* name = string_f j "name" in
      let* detail = string_f j "detail" in
      Ok (Phase_marker { name; detail })
  | name ->
      let args =
        match j with
        | Json.Obj kvs ->
            List.filter
              (fun (k, _) ->
                k <> "ts" && k <> "src" && k <> "ev" && k <> "corr")
              kvs
        | _ -> []
      in
      Ok (Custom { source = src; name; args })

let event_of_json j =
  let* ts = int_f j "ts" in
  let* src = string_f j "src" in
  let* ev = string_f j "ev" in
  let corr =
    match Json.member j "corr" with
    | Some v -> Json.to_int_opt v
    | None -> None
  in
  let* body = body_of_json j ~src ~ev in
  Ok { ts; corr; body }

let to_ndjson t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Json.to_string (event_to_json ev));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let of_ndjson s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (i + 1) acc rest
        else
          let parsed =
            let* j = Json.of_string line in
            event_of_json j
          in
          (match parsed with
          | Ok ev -> go (i + 1) (ev :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  go 1 [] lines

(* The hot path: one branch when disabled. Callers that build event
   bodies from live state (formatting flow keys, reading buffer
   occupancy) must guard that work with [enabled] themselves. *)
let record t ~ts ?corr body =
  if t.on then begin
    let t = target t in
    let ev = { ts; corr; body } in
    if Ring.is_full t.ring then begin
      ignore (Ring.pop t.ring);
      t.evicted <- t.evicted + 1
    end;
    ignore (Ring.push t.ring ev);
    match t.writer with
    | None -> ()
    | Some w ->
        Profile.enter sp_io;
        w (Json.to_string (event_to_json ev));
        Profile.exit sp_io
  end

(* Deterministic post-run merge: stable sort on (sim-time, shard id)
   keeps each shard's own record order for ties, so the interleaving is
   a pure function of the simulation — and with one shard it is the
   identity, which is what makes the 1-shard NDJSON byte-identical to
   the single-domain engine's. Re-recording through [record] streams
   every merged event through [dst]'s writer in that order. *)
let merge_into dst shards =
  List.concat_map
    (fun (shard, j) -> List.map (fun ev -> (shard, ev)) (events j))
    shards
  |> List.stable_sort (fun (sa, a) (sb, b) ->
         match Int.compare a.ts b.ts with
         | 0 -> Int.compare sa sb
         | c -> c)
  |> List.iter (fun (_, ev) -> record dst ~ts:ev.ts ?corr:ev.corr ev.body)
