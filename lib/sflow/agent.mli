(** An sFlow agent: the state-of-the-art sampling baseline (paper §2.1).

    One in [sampling_rate] forwarded frames is selected; the sample
    (headers + metadata, including input/output port and the sampling
    rate) is shipped to the collector {e through the switch's
    control-plane CPU and PCI bus}, which caps the sustainable sample
    rate — about 300 samples per second on the IBM G8264 the paper
    measured. Samples beyond the budget are dropped at the agent, which
    is exactly why sFlow needs seconds of aggregation for accurate
    estimates. *)

type sample = {
  time : Planck_util.Time.t;  (** when the collector receives it *)
  key : Planck_packet.Flow_key.t option;
  wire_size : int;
  in_port : int;
  out_port : int;
  dst_mac : Planck_packet.Mac.t;
  sampling_rate : int;
}

type config = {
  sampling_rate : int;  (** select 1 in N *)
  max_samples_per_sec : int;  (** control-plane CPU ceiling (~300) *)
  export_latency_min : Planck_util.Time.t;  (** CPU + PCI + mgmt net *)
  export_latency_max : Planck_util.Time.t;
}

val default_config : config
(** 1-in-256 sampling, 300 samples/s cap, 0.5–2 ms export latency. *)

type t

val attach :
  Planck_netsim.Engine.t ->
  Planck_netsim.Switch.t ->
  ?config:config ->
  prng:Planck_util.Prng.t ->
  collector:(sample -> unit) ->
  unit ->
  t

val selected : t -> int
(** Frames picked by the 1-in-N sampler. *)

val exported : t -> int
(** Samples that made it through the control-plane budget. *)

val throttled : t -> int
(** Samples dropped by the CPU/PCI ceiling. *)
