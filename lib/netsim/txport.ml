module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Packet = Planck_packet.Packet

type t = {
  engine : Engine.t;
  rate : Rate.t;
  prop_delay : Time.t;
  queues : Packet.t Queue.t array;
  priority_class : int option;
  deliver : Packet.t -> unit;
  on_depart : Packet.t -> unit;
  (* Cross-shard links: when set, the propagation leg is the peer
     shard's business — hand the frame and its arrival time to the
     channel instead of the local deliveries queue. *)
  handoff : (Time.t -> Packet.t -> unit) option;
  mutable next_class : int; (* round-robin scan position *)
  mutable busy : bool;
  mutable in_flight : Packet.t option; (* frame on the serializer *)
  (* Frames propagating towards the peer. The propagation delay is a
     per-port constant, so arrivals are FIFO and one timer paces them
     all; no per-packet closure is allocated. *)
  deliveries : (Time.t * Packet.t) Queue.t;
  tx_timer : Engine.Timer.t;
  delivery_timer : Engine.Timer.t;
  mutable queued_bytes : int;
  mutable queued_packets : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
}

(* Strict priority first, then round-robin: scan from next_class for
   the first non-empty sub-queue. *)
let pop_next t =
  let n = Array.length t.queues in
  let from_priority =
    match t.priority_class with
    | Some p when not (Queue.is_empty t.queues.(p)) ->
        Some (Queue.pop t.queues.(p))
    | Some _ | None -> None
  in
  match from_priority with
  | Some _ as packet -> packet
  | None ->
      let skip cls = t.priority_class = Some cls in
      let rec scan i =
        if i = n then None
        else begin
          let cls = (t.next_class + i) mod n in
          if skip cls || Queue.is_empty t.queues.(cls) then scan (i + 1)
          else begin
            t.next_class <- (cls + 1) mod n;
            Some (Queue.pop t.queues.(cls))
          end
        end
      in
      scan 0

let rec transmit_next t =
  match pop_next t with
  | None -> t.busy <- false
  | Some packet ->
      t.busy <- true;
      t.in_flight <- Some packet;
      t.queued_bytes <- t.queued_bytes - packet.Packet.wire_size;
      t.queued_packets <- t.queued_packets - 1;
      let tx = Rate.tx_time t.rate ~bytes_:packet.Packet.wire_size in
      Engine.Timer.reschedule t.tx_timer ~delay:tx

and on_tx_done t =
  match t.in_flight with
  | None -> ()
  | Some packet ->
      t.in_flight <- None;
      t.tx_packets <- t.tx_packets + 1;
      t.tx_bytes <- t.tx_bytes + packet.Packet.wire_size;
      t.on_depart packet;
      let ready = Engine.now t.engine + t.prop_delay in
      (match t.handoff with
      | Some h -> h ready packet
      | None ->
          Queue.push (ready, packet) t.deliveries;
          if not (Engine.Timer.pending t.delivery_timer) then
            Engine.Timer.reschedule_at t.delivery_timer ~time:ready);
      transmit_next t

let on_delivery t =
  (match Queue.take_opt t.deliveries with
  | None -> ()
  | Some (_, packet) -> t.deliver packet);
  match Queue.peek_opt t.deliveries with
  | Some (ready, _) -> Engine.Timer.reschedule_at t.delivery_timer ~time:ready
  | None -> ()

let create engine ~rate ~prop_delay ~classes ?priority_class ?handoff ~deliver
    ~on_depart () =
  if classes <= 0 then invalid_arg "Txport.create: classes must be positive";
  (match priority_class with
  | Some p when p < 0 || p >= classes ->
      invalid_arg "Txport.create: priority class out of range"
  | Some _ | None -> ());
  let t =
    {
      engine;
      rate;
      prop_delay;
      queues = Array.init classes (fun _ -> Queue.create ());
      priority_class;
      deliver;
      on_depart;
      handoff;
      next_class = 0;
      busy = false;
      in_flight = None;
      deliveries = Queue.create ();
      tx_timer = Engine.Timer.create engine ignore;
      delivery_timer = Engine.Timer.create engine ignore;
      queued_bytes = 0;
      queued_packets = 0;
      tx_packets = 0;
      tx_bytes = 0;
    }
  in
  Engine.Timer.set_callback t.tx_timer (fun () -> on_tx_done t);
  Engine.Timer.set_callback t.delivery_timer (fun () -> on_delivery t);
  t

let enqueue t ~cls packet =
  Queue.push packet t.queues.(cls);
  t.queued_bytes <- t.queued_bytes + packet.Packet.wire_size;
  t.queued_packets <- t.queued_packets + 1;
  if not t.busy then transmit_next t

let queued_bytes t = t.queued_bytes
let queued_packets t = t.queued_packets
let busy t = t.busy
let rate t = t.rate
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
