module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Host = Planck_netsim.Host
module Fabric = Planck_topology.Fabric
module Routing = Planck_topology.Routing
module Fat_tree = Planck_topology.Fat_tree
module Single_switch = Planck_topology.Single_switch
module Jellyfish = Planck_topology.Jellyfish
module Partition = Planck_topology.Partition
module Shard = Planck_netsim.Shard
module Endpoint = Planck_tcp.Endpoint

type topology =
  | Fat_tree of { k : int }
  | Single_switch of { hosts : int }
  | Jellyfish of Jellyfish.spec

type spec = {
  topology : topology;
  link_rate : Rate.t;
  seed : int;
  switch_config : Switch.config;
  host_stack : Host.stack;
  alts : int option;
  shards : int option;
  core_prop_delay : Time.t option;
}

let default_spec =
  {
    topology = Fat_tree { k = 4 };
    link_rate = Rate.gbps 10.0;
    seed = 1;
    switch_config = Switch.default_config;
    host_stack = Host.default_stack;
    alts = None;
    shards = None;
    core_prop_delay = None;
  }

let paper_fat_tree ?(seed = 1) () = { default_spec with seed }

let optimal ?(seed = 1) ?(hosts = 16) () =
  { default_spec with topology = Single_switch { hosts }; seed }

let microbench ?(seed = 1) ?(hosts = 16) ?(rate = Rate.gbps 10.0)
    ?(switch_config = Switch.default_config) () =
  {
    default_spec with
    topology = Single_switch { hosts };
    link_rate = rate;
    switch_config;
    seed;
  }

type t = {
  spec : spec;
  engine : Engine.t;
  fabric : Fabric.t;
  routing : Routing.t;
  endpoints : Endpoint.t array;
  prng : Prng.t;
  shard : Shard.group option;
}

let create spec =
  (* With [shards], every engine belongs to the shard group and
     [engine] is shard 0's — the group's reference clock. Everything
     below (routing, ARP, endpoints, flow starts) happens on the
     spawning domain before [Shard.run] brings up the others, which
     gives the shard domains a happens-before on all of it. *)
  let group =
    Option.map (fun n -> Shard.create ~shards:n) spec.shards
  in
  let engine =
    match group with None -> Engine.create () | Some g -> Shard.engine g 0
  in
  let sharding_of partition =
    Option.map
      (fun g ->
        {
          Fabric.group = g;
          shard_of_switch = partition.Partition.of_switch;
          shard_of_host = partition.Partition.of_host;
        })
      group
  in
  let prng = Prng.create ~seed:spec.seed in
  let fabric, routing =
    match spec.topology with
    | Fat_tree { k } ->
        let sharding =
          sharding_of
            (Partition.fat_tree (Fat_tree.shape ~k)
               ~shards:(Option.value spec.shards ~default:1))
        in
        let fabric, shape =
          Fat_tree.build engine ~k ~switch_config:spec.switch_config
            ~link_rate:spec.link_rate ~host_stack:spec.host_stack ?sharding
            ?core_prop_delay:spec.core_prop_delay
            ~prng:(Prng.split prng) ()
        in
        let alts =
          match spec.alts with
          | Some alts -> min alts (Fat_tree.max_alts shape)
          | None -> Fat_tree.max_alts shape
        in
        ( fabric,
          Routing.create fabric ~alts ~tree_fn:(fun ~dst ~alt ->
              Fat_tree.tree_out_ports shape ~dst
                ~core:(Fat_tree.core_for shape ~dst ~alt)) )
    | Single_switch { hosts } ->
        let sharding =
          sharding_of
            (Partition.single ~shards:(Option.value spec.shards ~default:1))
        in
        let fabric =
          Single_switch.build engine ~hosts ~switch_config:spec.switch_config
            ~link_rate:spec.link_rate ~host_stack:spec.host_stack ?sharding
            ~prng:(Prng.split prng) ()
        in
        ( fabric,
          Routing.create fabric
            ~alts:(Option.value ~default:1 spec.alts)
            ~tree_fn:(fun ~dst ~alt:_ ->
              Single_switch.tree_out_ports ~hosts ~dst) )
    | Jellyfish jf_spec ->
        let sharding =
          sharding_of
            (Partition.jellyfish jf_spec
               ~shards:(Option.value spec.shards ~default:1))
        in
        let fabric =
          Jellyfish.build engine ~spec:jf_spec
            ~switch_config:spec.switch_config ~link_rate:spec.link_rate
            ~host_stack:spec.host_stack ?sharding ~prng:(Prng.split prng) ()
        in
        ( fabric,
          Routing.create fabric
            ~alts:(Option.value ~default:4 spec.alts)
            ~tree_fn:(fun ~dst ~alt ->
              Jellyfish.tree_out_ports fabric ~dst ~alt) )
  in
  Routing.install routing;
  Fabric.populate_arp fabric;
  let endpoints =
    Array.init (Fabric.host_count fabric) (fun i ->
        Endpoint.create (Fabric.host fabric i))
  in
  (* Log messages during this testbed's lifetime are stamped with its
     simulated clock (the newest testbed wins when several coexist,
     which only happens in tests). *)
  Planck_telemetry.Reporter.set_clock (Some (fun () -> Engine.now engine));
  { spec; engine; fabric; routing; endpoints; prng; shard = group }

let host_count t = Fabric.host_count t.fabric
let link_rate t = t.spec.link_rate
let run_until t time = Engine.run ~until:time t.engine
