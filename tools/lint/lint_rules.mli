(** The rule catalog and the single-pass AST checker.

    Rules are purely syntactic (the linter sees the Parsetree, not
    types), so each is scoped — by path, by enclosing-function name, by
    what the module defines — to keep false positives rare. The
    remaining judgement calls go through the suppression syntax
    ([(* planck-lint: allow <rule> -- reason *)]). *)

type rule = {
  id : string;
  group : string;  (** "determinism" | "hotpath" | "hygiene" *)
  default_severity : Lint_finding.severity;
  doc : string;
}

val catalog : rule list
(** Every rule the linter knows, in display order. *)

val find : string -> rule option

val is_known : string -> bool
(** True for catalog ids and the ["all"] wildcard used in suppressions. *)

val deep_replaced : string list
(** Syntactic rule ids the deep tier subsumes: for files covered by the
    cmt index these are disabled in the AST pass (reachability and
    instantiated types replace the filename/shadow heuristics); files
    without a cmt keep the full syntactic tier as the fallback path. *)

val check_structure : path:string -> Parsetree.structure -> Lint_finding.t list
(** Run every AST rule over one parsed implementation. [path] is the
    repo-relative path and drives rule scoping ([lib/] vs [bin/],
    telemetry exemptions, hot-path files). *)

val missing_mli : path:string -> has_mli:bool -> Lint_finding.t list
(** The one file-level rule: a [lib/] .ml without a sibling .mli. *)
