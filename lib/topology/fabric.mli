(** A built network: simulated switches and hosts plus the logical
    adjacency the control plane reasons over.

    Builders ({!Fat_tree}, {!Single_switch}, {!Jellyfish}) return one of
    these. Monitor ports are reserved at build time; the monitoring
    layer attaches capture sinks to them with {!attach_sink}. *)

type peer =
  | To_host of int  (** host id *)
  | To_switch of int * int  (** (switch id, peer port) *)
  | To_monitor  (** reserved for a capture sink *)
  | Unwired

type t

type sharding = {
  group : Planck_netsim.Shard.group;
  shard_of_switch : int -> int;
  shard_of_host : int -> int;
}
(** How a build spreads over a {!Planck_netsim.Shard} group: every
    switch and host is created on its shard's engine (usually from a
    {!Partition.t}). *)

val build :
  Planck_netsim.Engine.t ->
  switch_ports:int ->
  switch_config:Planck_netsim.Switch.config ->
  link_rate:Planck_util.Rate.t ->
  ?prop_delay:Planck_util.Time.t ->
  ?host_stack:Planck_netsim.Host.stack ->
  ?sharding:sharding ->
  num_switches:int ->
  num_hosts:int ->
  prng:Planck_util.Prng.t ->
  unit ->
  t
(** Allocate switches and hosts; no cables yet. Builders call this and
    then {!wire_host} / {!wire_switches} / {!reserve_monitor}. With
    [sharding], each device lives on its shard's engine and
    {!wire_switches} routes shard-crossing links over channels;
    [engine] is then only the reference (shard 0) engine. *)

(** {2 Wiring (builders only)} *)

val wire_host : t -> host:int -> switch:int -> port:int -> unit
(** Raises [Invalid_argument] if the host and switch are on different
    shards — partitioners keep hosts with their edge switch, so a host
    uplink never crosses a shard boundary. *)

val wire_switches :
  ?prop_delay:Planck_util.Time.t ->
  t ->
  a:int ->
  port_a:int ->
  b:int ->
  port_b:int ->
  unit
(** [prop_delay] overrides the fabric default for this one link (e.g. a
    fat-tree's longer agg-core runs). A link between switches on
    different shards becomes a cross-shard cable over {!Shard.channel}s;
    its propagation delay then feeds the group's lookahead bound. *)

val reserve_monitor : t -> switch:int -> port:int -> unit

(** {2 Access} *)

val engine : t -> Planck_netsim.Engine.t
val switch_count : t -> int
val host_count : t -> int
val switch : t -> int -> Planck_netsim.Switch.t
val host : t -> int -> Planck_netsim.Host.t
val hosts : t -> Planck_netsim.Host.t array
val link_rate : t -> Planck_util.Rate.t
val switch_ports : t -> int

val peer : t -> switch:int -> port:int -> peer

val shard_of_switch : t -> int -> int
val shard_of_host : t -> int -> int
(** Shard assignments; 0 everywhere for an unsharded build. Collector
    placement follows [shard_of_switch] (a sink must live on its
    switch's engine). *)

val shard_group : t -> Planck_netsim.Shard.group option
val host_attachment : t -> host:int -> int * int
(** (edge switch, port) of a host's uplink. *)

val monitor_port : t -> switch:int -> int option

val attach_sink :
  t -> switch:int -> deliver:(Planck_packet.Packet.t -> unit) -> unit
(** Cable the reserved monitor port of [switch] to a capture sink and
    enable mirroring of every wired data port to it. Raises
    [Invalid_argument] if no monitor port was reserved. *)

val populate_arp : t -> unit
(** Give every host a static ARP entry for every other host's base
    MAC — the experiments start from converged caches. *)

val data_ports : t -> switch:int -> int list
(** Wired, non-monitor ports of a switch. *)
