module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Heap = Planck_util.Heap
module Prng = Planck_util.Prng
module Packet = Planck_packet.Packet
module Mac = Planck_packet.Mac
module Metrics = Planck_telemetry.Metrics
module Journal = Planck_telemetry.Journal
module Profile = Planck_telemetry.Profile

let sp_pipeline = Profile.register "switch.pipeline"

type arbitration = Round_robin | Fifo

type config = {
  buffer_total : int;
  buffer_reservation : int;
  dt_alpha : float;
  pipeline_latency : Time.t;
  pipeline_jitter : Time.t;
  mirror_buffer_cap : int option;
  mirror_arbitration : arbitration;
  mirror_priority_special : bool;
  mirror_priority_max_fraction : float;
}

let default_config =
  {
    buffer_total = 9 * 1024 * 1024;
    buffer_reservation = 12 * 1024;
    dt_alpha = 0.8;
    pipeline_latency = Time.ns 700;
    pipeline_jitter = Time.ns 800;
    mirror_buffer_cap = None;
    mirror_arbitration = Fifo;
    mirror_priority_special = false;
    mirror_priority_max_fraction = 0.1;
  }

type counters = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable data_drops : int;
  mutable mirror_drops : int;
}

(* Per-port telemetry handles (process-wide registry, labelled
   "<switch>.p<port>"), plus the per-switch shared-buffer high-water
   gauge. Registered once at switch creation; every hot-path update is
   a single enabled-flag branch when telemetry is off. *)
type telemetry = {
  tel_enqueued : Metrics.counter array;
  tel_data_drops : Metrics.counter array;
  tel_mirror_drops : Metrics.counter array;
  tel_buffer_hw : Metrics.gauge;
}

type t = {
  engine : Engine.t;
  name : string;
  nports : int;
  config : config;
  buffer : Buffer_pool.t;
  tx : Txport.t option array;
  counters : counters array;
  fdb : (Mac.t, int) Hashtbl.t;
  rewrites : (Mac.t, Mac.t) Hashtbl.t;
  flow_rewrites : Mac.t Planck_packet.Flow_key.Table.t;
  mutable forward_taps :
    (in_port:int -> out_port:int -> Packet.t -> unit) list;
  mutable monitor : int option;
  mirrored : bool array;
  mutable unroutable : int;
  mutable mirror_total : int;
  mutable mirror_special : int;
  (* Highest shared-buffer eighth (1-8 of capacity) seen so far; the
     journal records upward crossings only, so a full run produces at
     most 8 Queue_high_water events per switch. *)
  mutable hw_level : int;
  (* Frames in the ingress pipeline, keyed by their (jittered) exit
     time. Jitter makes exit times non-monotone, so a min-heap orders
     them and a single preallocated timer tracks its head — no
     per-packet closure. FIFO seq in the heap keeps equal exit times in
     arrival order. *)
  pipeline : (int * Packet.t) Heap.t;
  pipeline_timer : Engine.Timer.t;
  mutable pipeline_armed_at : Time.t;
  prng : Prng.t;
  tel : telemetry;
}

let name t = t.name
let ports t = t.nports
let engine t = t.engine

let check_port t port label =
  if port < 0 || port >= t.nports then
    invalid_arg (Printf.sprintf "Switch.%s: port %d out of range" label port)

let connect t ~port ~rate ~prop_delay ?handoff ~deliver () =
  check_port t port "connect";
  (match t.tx.(port) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Switch.connect: port %d already connected" port)
  | None -> ());
  (* One round-robin class per potential mirror source; data traffic
     always uses class 0, so non-monitor ports behave as plain FIFO.
     An extra strict-priority class carries SYN/FIN/RST mirror copies
     when preferential sampling is on. *)
  let normal_classes =
    match t.config.mirror_arbitration with
    | Round_robin -> t.nports
    | Fifo -> 1
  in
  let classes, priority_class =
    if t.config.mirror_priority_special then
      (normal_classes + 1, Some normal_classes)
    else (normal_classes, None)
  in
  let on_depart packet =
    Buffer_pool.release t.buffer ~port ~bytes_:packet.Packet.wire_size
  in
  t.tx.(port) <-
    Some
      (Txport.create t.engine ~rate ~prop_delay ~classes ?priority_class
         ?handoff ~deliver ~on_depart ())

let add_route t mac port =
  check_port t port "add_route";
  Hashtbl.replace t.fdb mac port

let remove_route t mac = Hashtbl.remove t.fdb mac
let route t mac = Hashtbl.find_opt t.fdb mac
let route_count t = Hashtbl.length t.fdb
let add_rewrite t ~from_mac ~to_mac = Hashtbl.replace t.rewrites from_mac to_mac

let add_flow_rewrite t ~key ~to_mac =
  Planck_packet.Flow_key.Table.replace t.flow_rewrites key to_mac

let remove_flow_rewrite t ~key =
  Planck_packet.Flow_key.Table.remove t.flow_rewrites key

let flow_rewrite_count t = Planck_packet.Flow_key.Table.length t.flow_rewrites

let add_forward_tap t tap = t.forward_taps <- t.forward_taps @ [ tap ]

let set_mirror t ~monitor ~mirrored =
  check_port t monitor "set_mirror";
  List.iter (fun p -> check_port t p "set_mirror") mirrored;
  if List.mem monitor mirrored then
    invalid_arg "Switch.set_mirror: monitor port cannot mirror itself";
  Array.fill t.mirrored 0 t.nports false;
  List.iter (fun p -> t.mirrored.(p) <- true) mirrored;
  t.monitor <- Some monitor;
  Buffer_pool.set_port_cap t.buffer ~port:monitor t.config.mirror_buffer_cap

let clear_mirror t =
  Array.fill t.mirrored 0 t.nports false;
  (match t.monitor with
  | Some p -> Buffer_pool.set_port_cap t.buffer ~port:p None
  | None -> ());
  t.monitor <- None

let monitor_port t = t.monitor

(* Admission + enqueue on one egress port. [mirror] selects which drop
   counter an admission failure charges. *)
let drop t ~port ~mirror =
  if mirror then begin
    t.counters.(port).mirror_drops <- t.counters.(port).mirror_drops + 1;
    Metrics.Counter.incr t.tel.tel_mirror_drops.(port)
  end
  else begin
    t.counters.(port).data_drops <- t.counters.(port).data_drops + 1;
    Metrics.Counter.incr t.tel.tel_data_drops.(port)
  end;
  if Journal.enabled Journal.default then
    Journal.record Journal.default ~ts:(Engine.now t.engine)
      (Journal.Packet_drop { switch = t.name; port; mirror })

let note_high_water t =
  let capacity = Buffer_pool.capacity t.buffer in
  let level =
    if capacity = 0 then 0
    else Buffer_pool.shared_used t.buffer * 8 / capacity
  in
  if level > t.hw_level then begin
    t.hw_level <- level;
    Journal.record Journal.default ~ts:(Engine.now t.engine)
      (Journal.Queue_high_water
         {
           switch = t.name;
           occupancy = Buffer_pool.shared_used t.buffer;
           capacity;
           level;
         })
  end

let enqueue t ~port ~cls ~mirror packet =
  match t.tx.(port) with
  | None ->
      (* Egress not wired up: treat as drop. *)
      drop t ~port ~mirror
  | Some txport ->
      if
        Buffer_pool.try_alloc t.buffer ~port ~bytes_:packet.Packet.wire_size
      then begin
        Metrics.Counter.incr t.tel.tel_enqueued.(port);
        Metrics.Gauge.set_int t.tel.tel_buffer_hw
          (Buffer_pool.shared_high_water t.buffer);
        if Journal.enabled Journal.default then note_high_water t;
        match Txport.enqueue txport ~cls packet with
        | () -> ()
        | exception e ->
            (* The admitted bytes belong to the txport only once enqueue
               returns; on the exception edge they must go back to the
               pool or the accounting leaks them forever. *)
            let bt = Printexc.get_raw_backtrace () in
            Buffer_pool.release t.buffer ~port
              ~bytes_:packet.Packet.wire_size;
            Printexc.raise_with_backtrace e bt
      end
      else drop t ~port ~mirror

let forward t ~in_port packet =
  (* Ingress match-action: per-flow destination rewrite (OpenFlow
     rerouting) happens before the forwarding lookup. The key is only
     materialized when rules exist — this is the per-packet hot path. *)
  let packet =
    if Planck_packet.Flow_key.Table.length t.flow_rewrites = 0 then packet
    else
      match Planck_packet.Flow_key.of_packet packet with
      | None -> packet
      | Some key -> (
          match Planck_packet.Flow_key.Table.find_opt t.flow_rewrites key with
          | None -> packet
          | Some to_mac -> Packet.with_dst_mac packet to_mac)
  in
  match Hashtbl.find_opt t.fdb (Packet.dst_mac packet) with
  | None -> t.unroutable <- t.unroutable + 1
  | Some out_port ->
      let outgoing =
        match Hashtbl.find_opt t.rewrites (Packet.dst_mac packet) with
        | None -> packet
        | Some to_mac -> Packet.with_dst_mac packet to_mac
      in
      List.iter (fun tap -> tap ~in_port ~out_port packet) t.forward_taps;
      enqueue t ~port:out_port ~cls:0 ~mirror:false outgoing;
      (* Mirror the pre-rewrite frame so the collector sees the routing
         (shadow) MAC. The mirror copy is arbitrated into the monitor
         port in a per-source-port class; SYN/FIN/RST copies may use
         the strict-priority class, subject to the flood bound. *)
      match t.monitor with
      | Some monitor when t.mirrored.(out_port) ->
          t.mirror_total <- t.mirror_total + 1;
          let normal_cls =
            match t.config.mirror_arbitration with
            | Round_robin -> out_port
            | Fifo -> 0
          in
          let special =
            t.config.mirror_priority_special
            &&
            match packet.Packet.body with
            | Packet.Ipv4 (_, Packet.Tcp tcp) ->
                let f = tcp.Planck_packet.Headers.Tcp.flags in
                f.Planck_packet.Headers.Tcp_flags.syn
                || f.Planck_packet.Headers.Tcp_flags.fin
                || f.Planck_packet.Headers.Tcp_flags.rst
            | Packet.Ipv4 (_, Packet.Udp _) | Packet.Arp _ -> false
          in
          let within_budget =
            float_of_int (t.mirror_special + 1)
            <= (t.config.mirror_priority_max_fraction
                *. float_of_int (t.mirror_total + 1))
               +. 8.0
          in
          let cls =
            if special && within_budget then begin
              t.mirror_special <- t.mirror_special + 1;
              (* The priority class sits just past the normal ones. *)
              match t.config.mirror_arbitration with
              | Round_robin -> t.nports
              | Fifo -> 1
            end
            else normal_cls
          in
          enqueue t ~port:monitor ~cls ~mirror:true packet
      | Some _ | None -> ()

(* Arm the pipeline timer at the heap's head; re-arm only when a new
   frame beats the armed exit time. *)
let arm_pipeline t =
  match Heap.min_key t.pipeline with
  | None -> ()
  | Some ready ->
      if
        (not (Engine.Timer.pending t.pipeline_timer))
        || ready < t.pipeline_armed_at
      then begin
        t.pipeline_armed_at <- ready;
        Engine.Timer.reschedule_at t.pipeline_timer ~time:ready
      end

let on_pipeline t =
  Profile.enter sp_pipeline;
  let now = Engine.now t.engine in
  let rec loop () =
    match Heap.min_key t.pipeline with
    | Some ready when ready <= now -> (
        match Heap.pop t.pipeline with
        | Some (_, (in_port, packet)) ->
            forward t ~in_port packet;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  arm_pipeline t;
  Profile.exit sp_pipeline

let create engine ~name ~ports ~config ?prng () =
  if ports <= 0 then invalid_arg "Switch.create: ports must be positive";
  let prng =
    match prng with
    | Some prng -> prng
    | None -> Prng.create ~seed:(Prng.seed_of_string name)
  in
  let t =
    {
      engine;
      name;
      nports = ports;
      config;
      buffer =
        Buffer_pool.create ~total:config.buffer_total
          ~reservation:config.buffer_reservation ~alpha:config.dt_alpha ~ports;
      tx = Array.make ports None;
      counters =
        Array.init ports (fun _ ->
            { rx_packets = 0; rx_bytes = 0; data_drops = 0; mirror_drops = 0 });
      fdb = Hashtbl.create 64;
      rewrites = Hashtbl.create 16;
      flow_rewrites = Planck_packet.Flow_key.Table.create 16;
      forward_taps = [];
      monitor = None;
      mirrored = Array.make ports false;
      unroutable = 0;
      mirror_total = 0;
      mirror_special = 0;
      hw_level = 0;
      pipeline = Heap.create ();
      pipeline_timer = Engine.Timer.create engine ignore;
      pipeline_armed_at = 0;
      prng;
      tel =
        (let per_port metric =
           Array.init ports (fun port ->
               Metrics.counter ~subsystem:"switch" ~name:metric
                 ~label:(Printf.sprintf "%s.p%d" name port)
                 ())
         in
         {
           tel_enqueued = per_port "enqueued";
           tel_data_drops = per_port "data_drops";
           tel_mirror_drops = per_port "mirror_drops";
           tel_buffer_hw =
             Metrics.gauge ~subsystem:"switch" ~name:"buffer_shared_high_water"
               ~label:name ();
         });
    }
  in
  Engine.Timer.set_callback t.pipeline_timer (fun () -> on_pipeline t);
  t

let inject t ~port packet =
  check_port t port "inject";
  enqueue t ~port ~cls:0 ~mirror:false packet

let ingress t ~port packet =
  check_port t port "ingress";
  let c = t.counters.(port) in
  c.rx_packets <- c.rx_packets + 1;
  c.rx_bytes <- c.rx_bytes + packet.Packet.wire_size;
  let jitter =
    if t.config.pipeline_jitter <= 0 then 0
    else Prng.int t.prng (t.config.pipeline_jitter + 1)
  in
  let ready =
    Engine.now t.engine + t.config.pipeline_latency + jitter
  in
  Heap.add t.pipeline ~key:ready (port, packet);
  arm_pipeline t

type port_stats = {
  rx_packets : int;
  rx_bytes : int;
  tx_packets : int;
  tx_bytes : int;
  data_drops : int;
  mirror_drops : int;
}

let port_stats t ~port =
  check_port t port "port_stats";
  let c = t.counters.(port) in
  let tx_packets, tx_bytes =
    match t.tx.(port) with
    | None -> (0, 0)
    | Some tx -> (Txport.tx_packets tx, Txport.tx_bytes tx)
  in
  {
    rx_packets = c.rx_packets;
    rx_bytes = c.rx_bytes;
    tx_packets;
    tx_bytes;
    data_drops = c.data_drops;
    mirror_drops = c.mirror_drops;
  }

let total_data_drops t =
  Array.fold_left (fun acc (c : counters) -> acc + c.data_drops) 0 t.counters

let total_mirror_drops t =
  Array.fold_left (fun acc (c : counters) -> acc + c.mirror_drops) 0 t.counters

let unroutable_drops t = t.unroutable
let special_mirrored t = t.mirror_special

let queue_bytes t ~port =
  check_port t port "queue_bytes";
  Buffer_pool.port_used t.buffer ~port

let buffer_used t = Buffer_pool.total_used t.buffer
