module Time = Planck_util.Time

type loop = {
  corr : int;
  flow : string option;
  detect : Time.t;
  notify : Time.t option;
  decide : Time.t option;
  install : Time.t option;
  effective : Time.t option;
}

let complete l =
  l.flow <> None && l.notify <> None && l.decide <> None && l.install <> None
  && l.effective <> None

let total l =
  match l.effective with Some e when complete l -> Some (e - l.detect) | _ -> None

(* Rebuilding loops is a fold over the journal keyed on (corr, flow):
   detect/notify belong to the corr as a whole; decide/install/effective
   are per rerouted flow. Each stage keeps its earliest stamp so a
   duplicate event (e.g. a retransmitted sample matching the effective
   watch twice) cannot shrink a leg. *)
let loops events =
  let corrs = Hashtbl.create 16 in (* corr -> detect, notify *)
  let by_flow = Hashtbl.create 16 in (* corr * flow -> decide/install/effective *)
  let order = ref [] in
  let first old ts = match old with None -> Some ts | Some t -> Some (min t ts) in
  let touch_corr corr f =
    let detect, notify =
      match Hashtbl.find_opt corrs corr with
      | Some dn -> dn
      | None ->
          order := `Corr corr :: !order;
          (None, None)
    in
    Hashtbl.replace corrs corr (f (detect, notify))
  in
  let touch_flow corr flow f =
    let key = (corr, flow) in
    let entry =
      match Hashtbl.find_opt by_flow key with
      | Some e -> e
      | None ->
          order := `Flow key :: !order;
          (None, None, None)
    in
    Hashtbl.replace by_flow key (f entry)
  in
  List.iter
    (fun (ev : Journal.event) ->
      match (ev.Journal.corr, ev.Journal.body) with
      | Some corr, Journal.Congestion_detected _ ->
          touch_corr corr (fun (d, n) -> (first d ev.ts, n))
      | Some corr, Journal.Controller_notified _ ->
          touch_corr corr (fun (d, n) -> (d, first n ev.ts))
      | Some corr, Journal.Reroute_decision { flow; _ } ->
          touch_flow corr flow (fun (dc, i, e) -> (first dc ev.ts, i, e))
      | Some corr, Journal.Reroute_install { flow; _ } ->
          touch_flow corr flow (fun (dc, i, e) -> (dc, first i ev.ts, e))
      | Some corr, Journal.Reroute_effective { flow; _ } ->
          touch_flow corr flow (fun (dc, i, e) -> (dc, i, first e ev.ts))
      | _ -> ())
    events;
  (* One loop per (corr, flow); corrs that never decided still show up
     (flow = None) so inspect can report loops that went nowhere. *)
  let flows_of corr =
    Hashtbl.fold
      (fun (c, flow) _ acc -> if c = corr then flow :: acc else acc)
      by_flow []
  in
  let ls =
    List.filter_map
      (function
        | `Flow (corr, flow) ->
            let detect, notify =
              Option.value (Hashtbl.find_opt corrs corr) ~default:(None, None)
            in
            let decide, install, effective =
              Option.value
                (Hashtbl.find_opt by_flow (corr, flow))
                ~default:(None, None, None)
            in
            Option.map
              (fun detect ->
                { corr; flow = Some flow; detect; notify; decide; install;
                  effective })
              detect
        | `Corr corr -> (
            if flows_of corr <> [] then None
            else
              match Hashtbl.find_opt corrs corr with
              | Some (Some detect, notify) ->
                  Some
                    { corr; flow = None; detect; notify; decide = None;
                      install = None; effective = None }
              | _ -> None))
      (List.rev !order)
  in
  List.stable_sort
    (fun a b ->
      match Int.compare a.detect b.detect with
      | 0 -> Int.compare a.corr b.corr
      | c -> c)
    ls

let stage_names =
  [
    "detect->notify";
    "notify->decide";
    "decide->install";
    "install->effective";
    "detect->effective";
  ]

let stage_durations ls =
  let complete_loops = List.filter complete ls in
  let leg f = List.filter_map f complete_loops in
  let ms a b =
    match (a, b) with
    | Some a, Some b -> Some (Time.to_float_ms (b - a))
    | _ -> None
  in
  [
    ("detect->notify", leg (fun l -> ms (Some l.detect) l.notify));
    ("notify->decide", leg (fun l -> ms l.notify l.decide));
    ("decide->install", leg (fun l -> ms l.decide l.install));
    ("install->effective", leg (fun l -> ms l.install l.effective));
    ("detect->effective", leg (fun l -> ms (Some l.detect) l.effective));
  ]

let desc_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match Int.compare b a with 0 -> String.compare ka kb | c -> c)

let flap_counts events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Journal.event) ->
      match ev.Journal.body with
      | Journal.Reroute_decision { flow; _ } ->
          Hashtbl.replace tbl flow
            (1 + Option.value (Hashtbl.find_opt tbl flow) ~default:0)
      | _ -> ())
    events;
  desc_counts tbl

let count_events events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Journal.event) ->
      let name = Journal.name_of_body ev.Journal.body in
      Hashtbl.replace tbl name
        (1 + Option.value (Hashtbl.find_opt tbl name) ~default:0))
    events;
  desc_counts tbl

let estimate_errors ~names ~rows =
  let index name =
    let rec go i = function
      | [] -> None
      | n :: _ when n = name -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 names
  in
  let flows =
    List.filter_map
      (fun n ->
        if String.length n > 5 && String.sub n 0 5 = "true:" then
          Some (String.sub n 5 (String.length n - 5))
        else None)
      names
  in
  List.filter_map
    (fun flow ->
      match (index ("true:" ^ flow), index ("est:" ^ flow)) with
      | Some ti, Some ei ->
          let truth, est =
            List.fold_left
              (fun (truth, est) (_, row) ->
                if ti < Array.length row && ei < Array.length row then
                  let tv = row.(ti) and ev = row.(ei) in
                  if tv > 0.05 && Float.is_finite ev then
                    (tv :: truth, ev :: est)
                  else (truth, est)
                else (truth, est))
              ([], []) rows
          in
          if truth = [] then None
          else
            Some (flow, Planck_util.Stats.mean_relative_error ~truth ~estimate:est)
      | _ -> None)
    flows
