(** A shared [Logs] reporter that prefixes every message with simulated
    time and its source.

    The stack declares [Logs.Src]s (collector, poller, te, ...) but the
    library never sets a reporter, so by default all log output is
    silently dropped. {!install} wires one up; {!set_clock} lets the
    simulation (Testbed) rebind the timestamp source to its engine so
    messages read ["[12.503ms] [planck.collector] ..."] in simulated
    time rather than wall time. *)

module Time = Planck_util.Time

val set_clock : (unit -> Time.t) option -> unit
(** Install (or clear) the simulated-time source. With no clock, the
    prefix shows ["--"]. *)

val install :
  ?level:Logs.level option -> ?clock:(unit -> Time.t) option -> unit -> unit
(** Set the process-wide reporter (messages go to stderr) and, if
    [level] is given, the global log level. [clock] (when passed)
    installs the timestamp source in the same call — equivalent to
    {!set_clock} — so callers that own the clock never touch the
    module-level state separately. *)

val level_of_string : string -> (Logs.level option, string) result
(** Parse ["off"|"error"|"warning"|"info"|"debug"] (also accepts
    anything [Logs.level_of_string] does). *)
