(** A netmap-style capture endpoint.

    Models the collector server's NIC + netmap ring: frames arriving on
    the wire are stamped and placed in a bounded ring; a poll loop wakes
    at most once per [poll_interval] and drains the whole ring in a
    batch, handing each frame to the consumer as {e wire bytes} (the
    collector parses them, like the real collector parses netmap
    slots).

    The consumer's receive timestamp is the drain time, so it includes
    the 0–[poll_interval] batching delay that a real poll-mode capture
    adds. A full ring drops frames, like a real NIC ring. *)

type record = {
  arrival : Planck_util.Time.t;  (** last bit on the wire *)
  rx : Planck_util.Time.t;  (** when the poll loop saw it *)
  wire : bytes;  (** serialized headers, see {!Planck_packet.Packet.to_wire} *)
  wire_size : int;  (** original frame length *)
}

type t

val create :
  Engine.t ->
  ?ring_capacity:int ->
  ?poll_interval:Planck_util.Time.t ->
  ?label:string ->
  consumer:(record -> unit) ->
  unit ->
  t
(** Defaults: 2048-slot ring, 25 µs poll interval. [label] tags this
    sink's telemetry counters ([sink.frames], [sink.ring_drops]) in
    {!Planck_telemetry.Metrics.default}; collectors pass their switch
    id. *)

val ingress : t -> Planck_packet.Packet.t -> unit
(** Frame fully arrived; hand this to the peer's transmit side. *)

val frames_seen : t -> int
(** Frames accepted into the ring since creation. *)

val ring_drops : t -> int
