(** Full-duplex cabling helpers. *)

val host_to_switch :
  Host.t ->
  Switch.t ->
  port:int ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  unit
(** Connect both directions of a host–switch cable. *)

val switch_to_switch :
  Switch.t ->
  port_a:int ->
  Switch.t ->
  port_b:int ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  unit

val switch_to_sink :
  Switch.t ->
  port:int ->
  Sink.t ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  unit
(** Monitor-port cable: the sink never transmits, so only the
    switch-to-sink direction is wired. *)

val default_prop_delay : Planck_util.Time.t
(** 300 ns — a few tens of metres of fibre plus PHY latency. *)
