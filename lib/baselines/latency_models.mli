(** Measurement-latency figures for the systems Planck is compared to in
    Table 1.

    These are the literature values the paper itself tabulates (it did
    not re-run Helios or Hedera either); the Planck rows are measured
    live by the [table1] bench and compared against these. *)

type entry = {
  system : string;
  speed_min : Planck_util.Time.t;
  speed_max : Planck_util.Time.t;
  estimated : bool;
      (** true for the † rows: reported values or estimates, not the
          primary implementation of the cited work *)
  citation : string;
}

val published : entry list
(** Helios, sFlow/OpenSample, Mahout polling, DevoFlow polling, Hedera. *)

val slowdown : entry -> reference:Planck_util.Time.t -> float * float
(** [(min, max)] slowdown of [entry] relative to a Planck measurement
    latency (the "Slowdown vs 10 Gbps Planck" column). *)

val pp_speed : Format.formatter -> entry -> unit
