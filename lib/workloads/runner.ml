module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Engine = Planck_netsim.Engine
module Shard = Planck_netsim.Shard
module Endpoint = Planck_tcp.Endpoint
module Flow = Planck_tcp.Flow

type flow_result = {
  src : int;
  dst : int;
  size : int;
  completed : bool;
  start_time : Time.t;
  finish_time : Time.t option;
  goodput : Rate.t option;
  retransmits : int;
  timeouts : int;
}

type shuffle_result = {
  flows : flow_result list;
  host_done : Time.t option array;
}

let result_of_flow ~src ~dst flow =
  {
    src;
    dst;
    size = Flow.size flow;
    completed = Flow.completed flow;
    start_time = Flow.started_at flow;
    finish_time = Flow.completed_at flow;
    goodput = Flow.goodput flow;
    retransmits = Flow.retransmits flow;
    timeouts = Flow.timeouts flow;
  }

(* Unique source ports across one runner invocation; destination ports
   identify the receiving host so concurrent flows never collide. *)
let port_allocator () =
  let next = ref 9_999 in
  fun () ->
    incr next;
    !next

let run_engine_until engine ~horizon ~all_done =
  let chunk = Time.ms 10 in
  let rec loop () =
    if (not (all_done ())) && Engine.now engine < horizon then begin
      Engine.run ~until:(min horizon (Engine.now engine + chunk)) engine;
      loop ()
    end
  in
  loop ()

let run_pairs engine ~endpoints ~pairs ~size ?params ?on_flow
    ?(horizon = Time.s 120) () =
  let fresh_port = port_allocator () in
  let flows =
    List.map
      (fun ({ src; dst } : Generate.pair) ->
        let flow =
          Flow.start ~src:endpoints.(src) ~dst:endpoints.(dst)
            ~src_port:(fresh_port ()) ~dst_port:(5_000 + dst) ~size ?params ()
        in
        Option.iter (fun f -> f flow) on_flow;
        (src, dst, flow))
      pairs
  in
  run_engine_until engine ~horizon ~all_done:(fun () ->
      List.for_all (fun (_, _, flow) -> Flow.completed flow) flows);
  List.map (fun (src, dst, flow) -> result_of_flow ~src ~dst flow) flows

(* Sharded variant of [run_pairs]: same flow starts (on the spawning
   domain, before the shard domains exist), then the group's lockstep
   loop instead of the single-engine chunk loop. Completion is judged
   per shard over the flows whose *source* host lives there — a flow's
   completion state is written by sender-side code, which runs on the
   source host's engine. *)
let run_pairs_sharded group ~shard_of_src ~endpoints ~pairs ~size ?params
    ?on_flow ?(horizon = Time.s 120) () =
  let fresh_port = port_allocator () in
  let flows =
    List.map
      (fun ({ src; dst } : Generate.pair) ->
        let flow =
          Flow.start ~src:endpoints.(src) ~dst:endpoints.(dst)
            ~src_port:(fresh_port ()) ~dst_port:(5_000 + dst) ~size ?params ()
        in
        Option.iter (fun f -> f flow) on_flow;
        (src, dst, flow))
      pairs
  in
  let by_shard = Array.make (Shard.shards group) [] in
  List.iter
    (fun (src, _, flow) ->
      let s = shard_of_src src in
      by_shard.(s) <- flow :: by_shard.(s))
    flows;
  Shard.run group ~horizon ~local_done:(fun s ->
      List.for_all Flow.completed by_shard.(s));
  List.map (fun (src, dst, flow) -> result_of_flow ~src ~dst flow) flows

let run_churn engine ~endpoints ~arrivals ?params ?on_flow
    ?(horizon = Time.s 120) () =
  let fresh_port = port_allocator () in
  let total = List.length arrivals in
  let launched = ref 0 in
  let flows = ref [] in
  List.iter
    (fun ({ at; src; dst; size } : Generate.arrival) ->
      Engine.schedule_at engine ~time:at (fun () ->
          let flow =
            Flow.start ~src:endpoints.(src) ~dst:endpoints.(dst)
              ~src_port:(fresh_port ()) ~dst_port:(5_000 + dst) ~size ?params ()
          in
          Option.iter (fun f -> f flow) on_flow;
          incr launched;
          flows := (src, dst, flow) :: !flows))
    arrivals;
  run_engine_until engine ~horizon ~all_done:(fun () ->
      !launched = total
      && List.for_all (fun (_, _, flow) -> Flow.completed flow) !flows);
  List.rev_map (fun (src, dst, flow) -> result_of_flow ~src ~dst flow) !flows

let run_shuffle engine ~endpoints ~orders ~concurrency ~size ?params ?on_flow
    ?(horizon = Time.s 120) () =
  if concurrency <= 0 then invalid_arg "Runner.run_shuffle: bad concurrency";
  let hosts = Array.length orders in
  let fresh_port = port_allocator () in
  let host_done = Array.make hosts None in
  let flows = ref [] in
  let remaining = Array.map (fun order -> Array.to_list order) orders in
  let in_flight = Array.make hosts 0 in
  let rec start_next h =
    match remaining.(h) with
    | dst :: rest ->
        remaining.(h) <- rest;
        in_flight.(h) <- in_flight.(h) + 1;
        let flow =
          Flow.start ~src:endpoints.(h) ~dst:endpoints.(dst)
            ~src_port:(fresh_port ()) ~dst_port:(5_000 + dst) ~size ?params
            ~on_complete:(fun flow ->
              in_flight.(h) <- in_flight.(h) - 1;
              start_next h;
              if in_flight.(h) = 0 && remaining.(h) = [] then
                host_done.(h) <-
                  Some
                    (Option.value ~default:(Flow.started_at flow)
                       (Flow.completed_at flow)))
            ()
        in
        Option.iter (fun f -> f flow) on_flow;
        flows := (h, dst, flow) :: !flows
    | [] -> ()
  in
  for h = 0 to hosts - 1 do
    for _ = 1 to concurrency do
      start_next h
    done
  done;
  run_engine_until engine ~horizon ~all_done:(fun () ->
      Array.for_all (fun d -> d <> None) host_done);
  {
    flows =
      List.rev_map (fun (src, dst, flow) -> result_of_flow ~src ~dst flow)
        !flows;
    host_done;
  }

let average_goodput_gbps results =
  let gbps =
    List.filter_map
      (fun r ->
        match r.goodput with
        | Some rate when r.completed -> Some (Rate.to_gbps rate)
        | Some _ | None -> None)
      results
  in
  Planck_util.Stats.mean gbps
