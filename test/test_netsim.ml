(* Tests for the discrete-event substrate: engine, shared buffer pool,
   transmitters, switch forwarding/mirroring, host ARP semantics, and
   the netmap-style sink. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Buffer_pool = Planck_netsim.Buffer_pool
module Txport = Planck_netsim.Txport
module Switch = Planck_netsim.Switch
module Host = Planck_netsim.Host
module Sink = Planck_netsim.Sink
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module FK = Planck_packet.Flow_key

let mk_tcp ?(src = 0) ?(dst = 1) ?(seq = 0) ?(payload = 1460) () =
  P.tcp ~src_mac:(Mac.host src) ~dst_mac:(Mac.host dst) ~src_ip:(Ip.host src)
    ~dst_ip:(Ip.host dst) ~src_port:(1000 + src) ~dst_port:(2000 + dst) ~seq
    ~ack_seq:0 ~flags:H.Tcp_flags.ack ~payload_len:payload ()

(* ---- Engine ---- *)

let engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:(Time.us 30) (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:(Time.us 10) (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:(Time.us 20) (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" (Time.us 30) (Engine.now e);
  Alcotest.(check int) "count" 3 (Engine.events_processed e)

let engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun i -> Engine.schedule e ~delay:(Time.us 5) (fun () -> log := i :: !log))
    [ 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check (list int)) "FIFO at equal time" [ 1; 2; 3 ] (List.rev !log)

let engine_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:(Time.ms 10) (fun () -> fired := true);
  Engine.run ~until:(Time.ms 5) e;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "clock advanced to horizon" (Time.ms 5) (Engine.now e);
  Engine.run ~until:(Time.ms 20) e;
  Alcotest.(check bool) "fired" true !fired

let engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule e ~delay:1 (fun () ->
      incr hits;
      Engine.schedule e ~delay:1 (fun () -> incr hits));
  Engine.run e;
  Alcotest.(check int) "nested event ran" 2 !hits

let engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:(Time.us 10) (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "x") (fun () ->
          try Engine.schedule_at e ~time:(Time.us 5) (fun () -> ())
          with Invalid_argument _ -> raise (Invalid_argument "x")));
  Engine.run e

let engine_every () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.every e ~period:(Time.us 10) ~until:(Time.us 45) (fun () -> incr hits);
  Engine.run e;
  Alcotest.(check int) "4 ticks within horizon" 4 !hits

let engine_timer_cancel () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Engine.Timer.create e (fun () -> incr fired) in
  Alcotest.(check bool) "unarmed at create" false (Engine.Timer.pending t);
  Engine.Timer.reschedule t ~delay:(Time.us 10);
  Alcotest.(check bool) "armed" true (Engine.Timer.pending t);
  Engine.Timer.cancel t;
  Alcotest.(check bool) "disarmed" false (Engine.Timer.pending t);
  Engine.run e;
  Alcotest.(check int) "cancelled timer never fires" 0 !fired;
  Alcotest.(check int) "cancel counted" 1 (Engine.timers_cancelled e);
  (* A cancelled timer is reusable: re-arm and let it fire. *)
  Engine.Timer.reschedule t ~delay:(Time.us 5);
  Engine.run e;
  Alcotest.(check int) "re-armed timer fired" 1 !fired;
  Alcotest.(check bool) "fired means not pending" false (Engine.Timer.pending t)

let engine_timer_reschedule_supersedes () =
  let e = Engine.create () in
  let log = ref [] in
  let t = Engine.Timer.create e (fun () -> log := Engine.now e :: !log) in
  Engine.Timer.reschedule t ~delay:(Time.us 10);
  (* Re-arming replaces the earlier deadline: no zombie fire at 10us. *)
  Engine.Timer.reschedule t ~delay:(Time.us 30);
  Engine.run e;
  Alcotest.(check (list int)) "single fire at new deadline" [ Time.us 30 ]
    !log;
  (* reschedule_at from within a callback: the RTO back-off shape. *)
  Engine.Timer.set_callback t (fun () ->
      log := Engine.now e :: !log;
      if Engine.now e < Time.us 100 then
        Engine.Timer.reschedule_at t ~time:(Time.us 100));
  Engine.Timer.reschedule t ~delay:(Time.us 20);
  Engine.run e;
  Alcotest.(check (list int))
    "chained fires" [ Time.us 100; Time.us 50; Time.us 30 ]
    !log

let engine_timer_periodic () =
  let e = Engine.create () in
  let hits = ref 0 in
  let t = Engine.periodic e ~period:(Time.us 10) (fun () -> incr hits) in
  Engine.run ~until:(Time.us 35) e;
  Alcotest.(check int) "3 ticks" 3 !hits;
  (* The handle pauses and resumes the stream. *)
  Engine.Timer.cancel t;
  Engine.run ~until:(Time.us 95) e;
  Alcotest.(check int) "paused" 3 !hits;
  Engine.Timer.reschedule t ~delay:(Time.us 10);
  Engine.run ~until:(Time.us 125) e;
  Alcotest.(check int) "resumed at the same period" 6 !hits

let engine_instance_metrics () =
  let e = Engine.create ~label:"tnetsim-metrics" () in
  Alcotest.(check string) "label" "tnetsim-metrics" (Engine.label e);
  for i = 1 to 5 do
    Engine.schedule e ~delay:(Time.us i) (fun () -> ())
  done;
  Alcotest.(check int) "pending" 5 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e);
  Alcotest.(check int) "per-engine high water" 5 (Engine.max_pending e);
  Alcotest.(check int) "processed" 5 (Engine.events_processed e)

(* The same program through the wheel and the pre-wheel heap-only
   scheduler: identical fire order and identical clock. *)
let engine_heap_only_equivalence () =
  let run config =
    let e = Engine.create ~queue:config () in
    let log = ref [] in
    let prng = Prng.create ~seed:42 in
    for i = 1 to 50 do
      Engine.schedule e ~delay:(Prng.int prng (Time.ms 2)) (fun () ->
          log := (i, Engine.now e) :: !log)
    done;
    let rto = Engine.Timer.create e (fun () -> log := (99, Engine.now e) :: !log) in
    Engine.Timer.reschedule rto ~delay:(Time.us 1700);
    Engine.Timer.reschedule rto ~delay:(Time.us 900);
    Engine.every e ~period:(Time.us 100) ~until:(Time.ms 1) (fun () ->
        log := (0, Engine.now e) :: !log);
    Engine.run e;
    (List.rev !log, Engine.now e, Engine.events_processed e)
  in
  let wheel = run (Engine.default_queue ()) in
  let heap = run Planck_util.Timer_wheel.heap_only in
  Alcotest.(check bool) "wheel and heap-only runs identical" true (wheel = heap)

(* ---- Buffer pool ---- *)

let pool_reservation () =
  let p = Buffer_pool.create ~total:1000 ~reservation:100 ~alpha:1.0 ~ports:4 in
  (* Static region is per-port guaranteed even under full shared use. *)
  Alcotest.(check bool) "alloc within reservation" true
    (Buffer_pool.try_alloc p ~port:0 ~bytes_:100);
  Alcotest.(check int) "shared untouched" 0 (Buffer_pool.shared_used p);
  Alcotest.(check bool) "beyond reservation draws shared" true
    (Buffer_pool.try_alloc p ~port:0 ~bytes_:100);
  Alcotest.(check int) "shared used" 100 (Buffer_pool.shared_used p)

let pool_dt_limits_single_port () =
  (* With alpha = 1, one queue can take at most half the shared region:
     q <= alpha * (S - q). *)
  let p = Buffer_pool.create ~total:1000 ~reservation:0 ~alpha:1.0 ~ports:4 in
  let admitted = ref 0 in
  for _ = 1 to 100 do
    if Buffer_pool.try_alloc p ~port:0 ~bytes_:10 then
      admitted := !admitted + 10
  done;
  Alcotest.(check int) "single queue capped at half" 500 !admitted;
  (* A second port still gets space. *)
  Alcotest.(check bool) "other port admitted" true
    (Buffer_pool.try_alloc p ~port:1 ~bytes_:10)

let pool_release () =
  let p = Buffer_pool.create ~total:1000 ~reservation:0 ~alpha:1.0 ~ports:2 in
  Alcotest.(check bool) "alloc" true (Buffer_pool.try_alloc p ~port:0 ~bytes_:400);
  Buffer_pool.release p ~port:0 ~bytes_:400;
  Alcotest.(check int) "all returned" 0 (Buffer_pool.total_used p);
  Alcotest.check_raises "over-release" (Invalid_argument "x") (fun () ->
      try Buffer_pool.release p ~port:0 ~bytes_:1
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let pool_port_cap () =
  let p = Buffer_pool.create ~total:1000 ~reservation:0 ~alpha:1.0 ~ports:2 in
  Buffer_pool.set_port_cap p ~port:0 (Some 50);
  Alcotest.(check bool) "under cap" true
    (Buffer_pool.try_alloc p ~port:0 ~bytes_:50);
  Alcotest.(check bool) "over cap rejected" false
    (Buffer_pool.try_alloc p ~port:0 ~bytes_:1)

let pool_conservation_qcheck =
  QCheck.Test.make ~name:"buffer pool conserves bytes under random ops"
    ~count:100
    QCheck.(list (pair (int_range 0 3) (int_range 1 200)))
    (fun ops ->
      let p =
        Buffer_pool.create ~total:2000 ~reservation:50 ~alpha:0.8 ~ports:4
      in
      let held = Array.make 4 0 in
      List.iter
        (fun (port, n) ->
          if n mod 3 = 0 && held.(port) > 0 then begin
            let release = min held.(port) n in
            Buffer_pool.release p ~port ~bytes_:release;
            held.(port) <- held.(port) - release
          end
          else if Buffer_pool.try_alloc p ~port ~bytes_:n then
            held.(port) <- held.(port) + n)
        ops;
      Buffer_pool.total_used p = Array.fold_left ( + ) 0 held
      && Buffer_pool.total_used p <= Buffer_pool.capacity p
      && Array.for_all
           (fun port -> Buffer_pool.port_used p ~port = held.(port))
           [| 0; 1; 2; 3 |])

(* ---- Txport ---- *)

let txport_serialization_timing () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let tx =
    Txport.create e ~rate:(Rate.gbps 10.0) ~prop_delay:(Time.ns 300)
      ~classes:1
      ~deliver:(fun p -> arrivals := (Engine.now e, p.P.id) :: !arrivals)
      ~on_depart:(fun _ -> ())
      ()
  in
  let p1 = mk_tcp () and p2 = mk_tcp () in
  Txport.enqueue tx ~cls:0 p1;
  Txport.enqueue tx ~cls:0 p2;
  Engine.run e;
  (* 1514 B at 10 Gbps = 1211.2 ns -> 1212 ns, + 300 ns propagation. *)
  let arrivals = List.rev !arrivals in
  Alcotest.(check int) "first arrival" 1512 (fst (List.nth arrivals 0));
  Alcotest.(check int) "second arrival" (1512 + 1212)
    (fst (List.nth arrivals 1));
  Alcotest.(check int) "order" p1.P.id (snd (List.nth arrivals 0))

let txport_round_robin () =
  let e = Engine.create () in
  let order = ref [] in
  let tx =
    Txport.create e ~rate:(Rate.gbps 10.0) ~prop_delay:0 ~classes:3
      ~deliver:(fun p -> order := p.P.id :: !order)
      ~on_depart:(fun _ -> ())
      ()
  in
  (* Fill class 0 with 3 frames, classes 1 and 2 with 1 each, before
     the serializer runs: schedule enqueues at t=0 inside the engine. *)
  let a1 = mk_tcp () and a2 = mk_tcp () and a3 = mk_tcp () in
  let b = mk_tcp () and c = mk_tcp () in
  Engine.schedule e ~delay:0 (fun () ->
      Txport.enqueue tx ~cls:0 a1;
      Txport.enqueue tx ~cls:0 a2;
      Txport.enqueue tx ~cls:0 a3;
      Txport.enqueue tx ~cls:1 b;
      Txport.enqueue tx ~cls:2 c);
  Engine.run e;
  (* a1 starts immediately; then round-robin picks 1, 2, 0, 0. *)
  Alcotest.(check (list int)) "round robin interleave"
    [ a1.P.id; b.P.id; c.P.id; a2.P.id; a3.P.id ]
    (List.rev !order)

(* ---- Switch ---- *)

let switch_pair engine =
  let config = Switch.default_config in
  let sw = Switch.create engine ~name:"s0" ~ports:4 ~config () in
  let received = Array.make 4 [] in
  for port = 0 to 3 do
    Switch.connect sw ~port ~rate:(Rate.gbps 10.0) ~prop_delay:(Time.ns 300)
      ~deliver:(fun p -> received.(port) <- p :: received.(port))
      ()
  done;
  (sw, received)

let switch_forwards () =
  let e = Engine.create () in
  let sw, received = switch_pair e in
  Switch.add_route sw (Mac.host 1) 1;
  Switch.ingress sw ~port:0 (mk_tcp ());
  Engine.run e;
  Alcotest.(check int) "delivered on port 1" 1 (List.length received.(1));
  Alcotest.(check int) "nothing elsewhere" 0 (List.length received.(2));
  let stats = Switch.port_stats sw ~port:1 in
  Alcotest.(check int) "tx counted" 1 stats.Switch.tx_packets;
  Alcotest.(check int) "tx bytes" 1514 stats.Switch.tx_bytes

let switch_unroutable () =
  let e = Engine.create () in
  let sw, _ = switch_pair e in
  Switch.ingress sw ~port:0 (mk_tcp ());
  Engine.run e;
  Alcotest.(check int) "unroutable counted" 1 (Switch.unroutable_drops sw)

let switch_egress_rewrite () =
  let e = Engine.create () in
  let sw, received = switch_pair e in
  let shadow = Mac.shadow (Mac.host 1) ~alt:2 in
  Switch.add_route sw shadow 1;
  Switch.add_rewrite sw ~from_mac:shadow ~to_mac:(Mac.host 1);
  Switch.ingress sw ~port:0 (mk_tcp ~dst:1 () |> fun p -> P.with_dst_mac p shadow);
  Engine.run e;
  match received.(1) with
  | [ p ] ->
      Alcotest.(check bool) "rewritten to base" true
        (Mac.equal (P.dst_mac p) (Mac.host 1))
  | _ -> Alcotest.fail "expected exactly one delivery"

let switch_flow_rewrite () =
  let e = Engine.create () in
  let sw, received = switch_pair e in
  let p = mk_tcp ~dst:1 () in
  let key = Option.get (FK.of_packet p) in
  let shadow = Mac.shadow (Mac.host 1) ~alt:1 in
  Switch.add_route sw (Mac.host 1) 1;
  Switch.add_route sw shadow 2;
  Switch.add_flow_rewrite sw ~key ~to_mac:shadow;
  Switch.ingress sw ~port:0 p;
  (* A different flow is unaffected. *)
  Switch.ingress sw ~port:0 (mk_tcp ~dst:1 ~src:3 ());
  Engine.run e;
  Alcotest.(check int) "rewritten flow took shadow route" 1
    (List.length received.(2));
  Alcotest.(check int) "other flow on base route" 1
    (List.length received.(1));
  Switch.remove_flow_rewrite sw ~key;
  Alcotest.(check int) "rule removed" 0 (Switch.flow_rewrite_count sw)

let switch_mirroring () =
  let e = Engine.create () in
  let sw, received = switch_pair e in
  Switch.add_route sw (Mac.host 1) 1;
  Switch.set_mirror sw ~monitor:3 ~mirrored:[ 0; 1; 2 ];
  Switch.ingress sw ~port:0 (mk_tcp ());
  Engine.run e;
  Alcotest.(check int) "original delivered" 1 (List.length received.(1));
  Alcotest.(check int) "mirror copy delivered" 1 (List.length received.(3));
  Alcotest.(check (option int)) "monitor port" (Some 3)
    (Switch.monitor_port sw);
  Switch.clear_mirror sw;
  Switch.ingress sw ~port:0 (mk_tcp ());
  Engine.run e;
  Alcotest.(check int) "no copy after clear" 1 (List.length received.(3))

let switch_mirror_self_rejected () =
  let e = Engine.create () in
  let sw, _ = switch_pair e in
  Alcotest.check_raises "monitor mirrored" (Invalid_argument "x") (fun () ->
      try Switch.set_mirror sw ~monitor:3 ~mirrored:[ 3 ]
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let switch_drops_when_buffer_full () =
  let e = Engine.create () in
  let config =
    {
      Switch.default_config with
      Switch.buffer_total = 20_000;
      buffer_reservation = 0;
    }
  in
  let sw = Switch.create e ~name:"small" ~ports:2 ~config () in
  for port = 0 to 1 do
    Switch.connect sw ~port ~rate:(Rate.gbps 10.0) ~prop_delay:0
      ~deliver:(fun _ -> ())
      ()
  done;
  Switch.add_route sw (Mac.host 1) 1;
  (* Slam 100 MTU frames in at one instant: the egress drains one per
     1.2 us, so admission control must reject most of them. *)
  Engine.schedule e ~delay:0 (fun () ->
      for i = 0 to 99 do
        Switch.ingress sw ~port:0 (mk_tcp ~seq:(i * 1460) ())
      done);
  Engine.run e;
  Alcotest.(check bool) "data drops recorded" true
    (Switch.total_data_drops sw > 50)

let switch_inject () =
  let e = Engine.create () in
  let sw, received = switch_pair e in
  Switch.inject sw ~port:2 (mk_tcp ());
  Engine.run e;
  Alcotest.(check int) "packet-out delivered" 1 (List.length received.(2))

(* ---- Host ---- *)

let host_pair () =
  let e = Engine.create () in
  let prng = Prng.create ~seed:5 in
  let a = Host.create e ~id:0 ~prng:(Prng.split prng) () in
  let b = Host.create e ~id:1 ~prng:(Prng.split prng) () in
  Host.connect a ~rate:(Rate.gbps 10.0) ~prop_delay:(Time.ns 300)
    ~deliver:(fun p -> Host.ingress b p);
  Host.connect b ~rate:(Rate.gbps 10.0) ~prop_delay:(Time.ns 300)
    ~deliver:(fun p -> Host.ingress a p);
  (e, a, b)

let host_mac_filter () =
  let e, a, b = host_pair () in
  let got = ref 0 in
  Host.set_receive b (fun _ -> incr got);
  (* Frame addressed to b's MAC: accepted. *)
  Host.send a (mk_tcp ~src:0 ~dst:1 ());
  (* Frame addressed to a shadow MAC that was never rewritten: dropped. *)
  let p = P.with_dst_mac (mk_tcp ~src:0 ~dst:1 ()) (Mac.shadow (Mac.host 1) ~alt:1) in
  Host.send a p;
  Engine.run e;
  Alcotest.(check int) "one accepted" 1 !got;
  Alcotest.(check int) "one filtered" 1 (Host.filtered_frames b)

let host_stack_is_fifo () =
  let e, a, b = host_pair () in
  let order = ref [] in
  Host.set_receive b (fun p ->
      match P.tcp_headers p with
      | Some (_, tcp) -> order := tcp.H.Tcp.seq :: !order
      | None -> ());
  for i = 0 to 19 do
    Host.send a (mk_tcp ~seq:(i * 1460) ())
  done;
  Engine.run e;
  Alcotest.(check (list int)) "in-order delivery"
    (List.init 20 (fun i -> i * 1460))
    (List.rev !order)

let host_arp_unicast_request_learns () =
  let e, a, _b = host_pair () in
  (* A spoofed unicast request claiming 10.0.0.9 is at a shadow MAC. *)
  let shadow = Mac.shadow (Mac.host 9) ~alt:2 in
  let request =
    P.arp ~src_mac:shadow ~dst_mac:(Host.mac a)
      {
        H.Arp.op = H.Arp.Request;
        sender_mac = shadow;
        sender_ip = Ip.host 9;
        target_mac = Host.mac a;
        target_ip = Host.ip a;
      }
  in
  Host.ingress a request;
  Engine.run e;
  Alcotest.(check bool) "cache updated" true
    (Host.arp_lookup a (Ip.host 9) = Some shadow)

let host_arp_ignores_unsolicited_reply () =
  let e, a, _b = host_pair () in
  Host.arp_set a (Ip.host 9) (Mac.host 9);
  let reply =
    P.arp ~src_mac:(Mac.host 3) ~dst_mac:(Host.mac a)
      {
        H.Arp.op = H.Arp.Reply;
        sender_mac = Mac.shadow (Mac.host 9) ~alt:1;
        sender_ip = Ip.host 9;
        target_mac = Host.mac a;
        target_ip = Host.ip a;
      }
  in
  Host.ingress a reply;
  Engine.run e;
  Alcotest.(check bool) "cache unchanged" true
    (Host.arp_lookup a (Ip.host 9) = Some (Mac.host 9))

let host_arp_locktime () =
  let e = Engine.create () in
  let stack = { Host.default_stack with Host.arp_locktime = Time.s 1 } in
  let a = Host.create e ~id:0 ~stack ~prng:(Prng.create ~seed:1) () in
  let request mac =
    P.arp ~src_mac:mac ~dst_mac:(Host.mac a)
      {
        H.Arp.op = H.Arp.Request;
        sender_mac = mac;
        sender_ip = Ip.host 9;
        target_mac = Host.mac a;
        target_ip = Host.ip a;
      }
  in
  Host.ingress a (request (Mac.host 9));
  Engine.run e;
  (* A second update inside the locktime is refused. *)
  Host.ingress a (request (Mac.shadow (Mac.host 9) ~alt:1));
  Engine.run e;
  Alcotest.(check bool) "locktime blocks update" true
    (Host.arp_lookup a (Ip.host 9) = Some (Mac.host 9))

(* ---- Sink ---- *)

let sink_batches () =
  let e = Engine.create () in
  let got = ref [] in
  let sink =
    Sink.create e ~ring_capacity:16 ~poll_interval:(Time.us 25)
      ~consumer:(fun r -> got := r :: !got)
      ()
  in
  Engine.schedule e ~delay:(Time.us 10) (fun () ->
      Sink.ingress sink (mk_tcp ());
      Sink.ingress sink (mk_tcp ~seq:1460 ()));
  Engine.run e;
  Alcotest.(check int) "both consumed" 2 (List.length !got);
  let r = List.hd !got in
  Alcotest.(check int) "rx at poll boundary" (Time.us 35) r.Sink.rx;
  Alcotest.(check int) "arrival preserved" (Time.us 10) r.Sink.arrival;
  Alcotest.(check int) "frames seen" 2 (Sink.frames_seen sink)

let sink_ring_overflow () =
  let e = Engine.create () in
  let sink =
    Sink.create e ~ring_capacity:4 ~poll_interval:(Time.ms 1)
      ~consumer:(fun _ -> ())
      ()
  in
  Engine.schedule e ~delay:0 (fun () ->
      for i = 0 to 9 do
        Sink.ingress sink (mk_tcp ~seq:(i * 1460) ())
      done);
  Engine.run e;
  Alcotest.(check int) "ring drops counted" 6 (Sink.ring_drops sink)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "engine time ordering" `Quick engine_ordering;
    Alcotest.test_case "engine FIFO at equal times" `Quick
      engine_same_time_fifo;
    Alcotest.test_case "engine run until horizon" `Quick engine_until;
    Alcotest.test_case "engine nested scheduling" `Quick
      engine_nested_schedule;
    Alcotest.test_case "engine rejects past events" `Quick engine_rejects_past;
    Alcotest.test_case "engine periodic events" `Quick engine_every;
    Alcotest.test_case "engine timer cancel and reuse" `Quick
      engine_timer_cancel;
    Alcotest.test_case "engine timer reschedule supersedes" `Quick
      engine_timer_reschedule_supersedes;
    Alcotest.test_case "engine periodic handle pause/resume" `Quick
      engine_timer_periodic;
    Alcotest.test_case "engine instance metrics" `Quick
      engine_instance_metrics;
    Alcotest.test_case "engine wheel vs heap-only equivalence" `Quick
      engine_heap_only_equivalence;
    Alcotest.test_case "pool static reservation" `Quick pool_reservation;
    Alcotest.test_case "pool DT caps one queue" `Quick
      pool_dt_limits_single_port;
    Alcotest.test_case "pool release" `Quick pool_release;
    Alcotest.test_case "pool per-port cap (minbuffer)" `Quick pool_port_cap;
    qtest pool_conservation_qcheck;
    Alcotest.test_case "txport serialization timing" `Quick
      txport_serialization_timing;
    Alcotest.test_case "txport round robin" `Quick txport_round_robin;
    Alcotest.test_case "switch forwards on MAC" `Quick switch_forwards;
    Alcotest.test_case "switch counts unroutable" `Quick switch_unroutable;
    Alcotest.test_case "switch egress rewrite" `Quick switch_egress_rewrite;
    Alcotest.test_case "switch per-flow rewrite" `Quick switch_flow_rewrite;
    Alcotest.test_case "switch mirroring" `Quick switch_mirroring;
    Alcotest.test_case "switch rejects self-mirror" `Quick
      switch_mirror_self_rejected;
    Alcotest.test_case "switch drops when buffer full" `Quick
      switch_drops_when_buffer_full;
    Alcotest.test_case "switch packet-out injection" `Quick switch_inject;
    Alcotest.test_case "host MAC filtering" `Quick host_mac_filter;
    Alcotest.test_case "host stack is FIFO" `Quick host_stack_is_fifo;
    Alcotest.test_case "host learns from unicast ARP request" `Quick
      host_arp_unicast_request_learns;
    Alcotest.test_case "host ignores unsolicited ARP reply" `Quick
      host_arp_ignores_unsolicited_reply;
    Alcotest.test_case "host ARP locktime" `Quick host_arp_locktime;
    Alcotest.test_case "sink poll batching" `Quick sink_batches;
    Alcotest.test_case "sink ring overflow" `Quick sink_ring_overflow;
  ]
