module Time = Planck_util.Time
module Wheel = Planck_util.Timer_wheel
module Metrics = Planck_telemetry.Metrics
module Profile = Planck_telemetry.Profile

(* Process-wide aggregates (label-less) for CLI and bench snapshots;
   each engine additionally registers instance metrics under its own
   label so concurrent testbeds in one process don't clobber each
   other. The aggregate high-water is kept monotone across engines. *)
let m_events = Metrics.counter ~subsystem:"engine" ~name:"events_processed" ()
let sp_dispatch = Profile.register "engine.dispatch"

let m_pending_hw =
  Metrics.gauge ~subsystem:"engine" ~name:"pending_high_water" ()

let aggregate_hw = Atomic.make 0
let next_engine_id = Atomic.make 0

(* The default queue geometry for new engines. Mutable so tests and
   benches can A/B a whole experiment against the heap-only baseline
   without threading a config through every constructor. *)
let default_queue_config = Atomic.make Wheel.default_config
let set_default_queue c = Atomic.set default_queue_config c
let default_queue () = Atomic.get default_queue_config

type t = {
  queue : (unit -> unit) Wheel.t;
  label : string;
  mutable clock : Time.t;
  mutable processed : int;
  mutable max_pending : int;
  tel_pending_hw : Metrics.gauge;
  tel_cancelled : Metrics.counter;
}

let create ?label ?queue () =
  let label =
    match label with
    | Some l -> l
    | None ->
        let id = Atomic.fetch_and_add next_engine_id 1 in
        Printf.sprintf "engine%d" id
  in
  let tel_compactions =
    Metrics.counter ~subsystem:"engine" ~name:"compactions" ~label ()
  in
  let config =
    match queue with Some c -> c | None -> Atomic.get default_queue_config
  in
  {
    queue =
      Wheel.create ~config
        ~on_compaction:(fun () -> Metrics.Counter.incr tel_compactions)
        ();
    label;
    clock = 0;
    processed = 0;
    max_pending = 0;
    tel_pending_hw =
      Metrics.gauge ~subsystem:"engine" ~name:"pending_high_water" ~label ();
    tel_cancelled =
      Metrics.counter ~subsystem:"engine" ~name:"timers_cancelled" ~label ();
  }

let now t = t.clock
let label t = t.label

let note_scheduled t =
  let n = Wheel.length t.queue in
  if n > t.max_pending then begin
    t.max_pending <- n;
    Metrics.Gauge.set_int t.tel_pending_hw n;
    (* monotone high-water bump: CAS loop so concurrent engines on
       separate domains never regress the aggregate *)
    let rec bump () =
      let cur = Atomic.get aggregate_hw in
      if n > cur then
        if Atomic.compare_and_set aggregate_hw cur n then
          Metrics.Gauge.set_int m_pending_hw n
        else bump ()
    in
    bump ()
  end

let insert t ~key f =
  let h = Wheel.add t.queue ~key f in
  note_scheduled t;
  h

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  ignore (insert t ~key:time f : (unit -> unit) Wheel.handle)

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  ignore (insert t ~key:(t.clock + delay) f : (unit -> unit) Wheel.handle)

module Timer = struct
  type engine = t

  type t = {
    engine : engine;
    mutable callback : unit -> unit;
    run : unit -> unit; (* the one closure ever queued for this timer *)
    mutable handle : (unit -> unit) Wheel.handle option;
  }

  let create engine callback =
    let rec tm =
      { engine; callback; run = (fun () -> tm.callback ()); handle = None }
    in
    tm

  let set_callback tm f = tm.callback <- f

  let pending tm =
    match tm.handle with Some h -> Wheel.is_pending h | None -> false

  let cancel tm =
    match tm.handle with
    | None -> ()
    | Some h ->
        if Wheel.cancel tm.engine.queue h then
          Metrics.Counter.incr tm.engine.tel_cancelled;
        tm.handle <- None

  let reschedule_at tm ~time =
    if time < tm.engine.clock then
      invalid_arg "Engine.Timer.reschedule_at: time in the past";
    cancel tm;
    tm.handle <- Some (insert tm.engine ~key:time tm.run)

  let reschedule tm ~delay =
    if delay < 0 then invalid_arg "Engine.Timer.reschedule: negative delay";
    reschedule_at tm ~time:(tm.engine.clock + delay)
end

let periodic t ~period ?until f =
  if period <= 0 then invalid_arg "Engine.periodic: period must be positive";
  let tm = Timer.create t f in
  let tick () =
    f ();
    match until with
    | Some horizon when t.clock + period > horizon -> ()
    | Some _ | None -> Timer.reschedule tm ~delay:period
  in
  Timer.set_callback tm tick;
  Timer.reschedule tm ~delay:period;
  tm

let every t ~period ?until f = ignore (periodic t ~period ?until f : Timer.t)

let step t =
  match Wheel.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      Metrics.Counter.incr m_events;
      Profile.enter sp_dispatch;
      f ();
      Profile.exit sp_dispatch;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Wheel.min_key t.queue with
        | Some time when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- horizon;
            continue := false
      done

let events_processed t = t.processed
let pending t = Wheel.length t.queue
let max_pending t = t.max_pending
let timers_cancelled t = Wheel.total_cancelled t.queue
let compactions t = Wheel.compactions t.queue
