(** The perf-trajectory gate: compares a bench run's microbenchmark
    rows against a committed [BENCH_N.json] baseline under per-row
    tolerance bands, and renders trend tables across the whole
    committed trajectory.

    Rows join on a stable kebab-case [id]. Baselines recorded before
    ids existed fall back to {!slug} of the display name, so the gate
    can check against any committed [BENCH_*.json]. *)

type row = {
  id : string;  (** stable join key, kebab-case *)
  name : string;  (** human display name *)
  ns_per_op : float option;
      (** [None] when the OLS analyzer produced no estimate — still a
          row, so a gate can tell "missing" from "regressed" *)
}

val slug : string -> string
(** Kebab-case a display name: lowercase, runs of non-alphanumerics
    collapse to ['-'], edges trimmed. *)

val rows_of_json : Json.t -> (row list, string) result
(** Accepts a [bench --json] document (reads its ["micro"] member) or a
    bare micro list. Rows without an ["id"] member get [slug name];
    ["ns_per_op"] absent or null parses as [None]. *)

val rows_to_json : row list -> Json.t
(** The ["micro"] member shape [bench --json] emits; null estimates
    emit [ns_per_op: null]. *)

(** {2 Comparison} *)

type status =
  | Improved of float  (** faster by more than the band; delta < 0 *)
  | In_band of float  (** within the tolerance band *)
  | Regressed of float  (** slower by more than the band — fails *)
  | New_row  (** no baseline row; informational *)
  | Removed_row  (** baseline row absent from current run — fails *)
  | Missing_estimate
      (** baseline had an estimate, current run came back null — fails
          (distinct from {!Removed_row}: the bench still exists) *)
  | No_baseline_estimate
      (** baseline estimate was null; nothing to compare against *)

type comparison = {
  cmp_id : string;
  cmp_name : string;
  baseline_ns : float option;
  current_ns : float option;
  tolerance : float;  (** the band this row was judged under *)
  status : status;
}

val compare_rows :
  ?tolerance:float ->
  ?noise_floor_ns:float ->
  ?overrides:(string * float) list ->
  baseline:row list ->
  current:row list ->
  unit ->
  comparison list
(** Joins by id, falling back to the display name (so curated ids
    still match baselines recorded before ids existed); baseline order
    first, then new rows. [tolerance] is the default fractional band
    (0.15 = ±15%); [overrides] widen or narrow it per row id.
    [noise_floor_ns] (default 5.0) is an absolute allowance added on
    both sides of the band — sub-50ns rows sit at clock granularity,
    where a few ns of scheduler jitter exceeds any sane percentage;
    pass [0.] for exact multiplicative bands. *)

val passes : comparison list -> bool
(** No [Regressed], [Removed_row], or [Missing_estimate] rows. *)

val render_check : comparison list -> string
(** One line per row with status, ns values and delta, plus a summary
    verdict line. *)

val parse_override : string -> (string * float, string) result
(** Parses ["row-id=0.30"] (fractional tolerance, must be >= 0). *)

(** {2 Committed trajectory} *)

val bench_files : dir:string -> string list
(** Paths of [BENCH_<n>.json] files in [dir], sorted by [n]. *)

val latest_bench : dir:string -> string option
(** Highest-numbered [BENCH_<n>.json], if any. *)

val load_rows : path:string -> (row list, string) result
(** {!rows_of_json} over a file's contents. *)

val trend : dir:string -> (string, string) result
(** Markdown table: one row per micro (first-appearance order, keyed by
    id but folded by display name across the id scheme change, like the
    gate's join), one column per committed [BENCH_<n>.json], ns/op
    cells ([—] where a file lacks the row or its estimate was null).
    [Error] if [dir] has no bench files or one fails to parse. *)
