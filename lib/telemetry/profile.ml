(* Scoped self-profiling spans. Disabled cost is one load+test of [on];
   enabled cost is two clock reads, two [Gc.quick_stat]s, and a handful
   of int stores into a preallocated frame — no allocation besides the
   stat records, whose words are metered and subtracted (see the
   self-words ledger below). *)

(* ---- clock ----

   Monotonic nanoseconds as an immediate int. The bechamel clock
   primitive is [@@noalloc] with an unboxed int64 result, so the
   composition with Int64.to_int stays allocation-free in native code.
   Tests swap in a deterministic counter via [set_clock]. *)

let real_clock () = Int64.to_int (Monotonic_clock.clock_linux_get_time ())
let clock = Atomic.make real_clock

let set_clock = function
  | None -> Atomic.set clock real_clock
  | Some f -> Atomic.set clock f

(* ---- self-words ledger ----

   [Gc.quick_stat] allocates its stat record. Every profiler-internal
   allocation is bracketed between two [Gc.minor_words] reads (which
   are [@@noalloc]) and accumulated here; span word counts read the
   minor-words counter *net* of this ledger, so nesting quick_stat
   calls inside a measured window does not charge the window. *)

let self_words = Atomic.make 0

let[@inline] minor_words_net () =
  int_of_float (Gc.minor_words ()) - Atomic.get self_words

let quick_stat () =
  let before = Gc.minor_words () in
  let st = Gc.quick_stat () in
  let after = Gc.minor_words () in
  ignore (Atomic.fetch_and_add self_words (int_of_float (after -. before)) : int);
  st

(* ---- spans ---- *)

type t = {
  id : int;
  sp_name : string;
  sp_registry : Metrics.registry;
  h_span_ns : Metrics.histogram;
  c_self_ns : Metrics.counter;
  c_minor : Metrics.counter;
  c_promoted : Metrics.counter;
  c_major : Metrics.counter;
  c_minor_coll : Metrics.counter;
  c_major_coll : Metrics.counter;
}

let name t = t.sp_name

(* ---- span catalog ----

   The per-process registry of registered spans, replacing the former
   bare [all : t list ref] / [next_id] globals. Registration and
   catalog scans are cold paths (module init, bench setup, report
   rendering), so every field access holds [catalog_lock]; span ids
   start at 1 ([f_span = 0] marks a free frame below). *)

type catalog = { mutable spans : t list; mutable next_span_id : int }

let catalog_lock = Mutex.create ()
let catalog = { spans = []; next_span_id = 0 }

let spans () = Mutex.protect catalog_lock (fun () -> catalog.spans)

let reset () =
  Mutex.protect catalog_lock (fun () ->
      (* Toplevel handles registered at module init live in
         [Metrics.default] and cannot re-register; scoped-registry
         spans (bench micros, tests) are dropped with their registry. *)
      catalog.spans <-
        List.filter (fun t -> t.sp_registry == Metrics.default) catalog.spans)

let register ?(registry = Metrics.default) sp_name =
  Mutex.protect catalog_lock (fun () ->
      match
        List.find_opt
          (fun t -> t.sp_registry == registry && String.equal t.sp_name sp_name)
          catalog.spans
      with
      | Some t -> t
      | None ->
          let counter name =
            Metrics.counter ~registry ~subsystem:"profile" ~name ~label:sp_name
              ()
          in
          catalog.next_span_id <- catalog.next_span_id + 1;
          let t =
            {
              id = catalog.next_span_id;
              sp_name;
              sp_registry = registry;
              h_span_ns =
                Metrics.histogram ~registry ~subsystem:"profile" ~name:"span_ns"
                  ~label:sp_name ();
              c_self_ns = counter "self_ns";
              c_minor = counter "minor_words";
              c_promoted = counter "promoted_words";
              c_major = counter "major_words";
              c_minor_coll = counter "minor_collections";
              c_major_coll = counter "major_collections";
            }
          in
          catalog.spans <- t :: catalog.spans;
          t)

(* ---- frame stack ----

   All-int mutable records in a preallocated array: entering a span is
   int stores only. [f_span = 0] marks a free frame (span ids start at
   1). Child accumulators collect each nested span's inclusive totals
   so exit can compute exclusive (self) figures.

   The stack lives in [Domain.DLS]: each domain (the main loop, or a
   shard domain under the sharded engine) gets its own preallocated
   frames on first use, so concurrent spans never interleave across
   domains. The span metrics they feed are Atomic counters, so the
   per-domain self/GC figures still aggregate into one catalog. *)

let max_depth = 64

type frame = {
  mutable f_span : int;
  mutable f_t0 : int;
  mutable f_minor0 : int;
  mutable f_promoted0 : int;
  mutable f_major0 : int;
  mutable f_minor_coll0 : int;
  mutable f_major_coll0 : int;
  mutable f_child_ns : int;
  mutable f_child_minor : int;
  mutable f_child_promoted : int;
  mutable f_child_major : int;
  mutable f_child_minor_coll : int;
  mutable f_child_major_coll : int;
}

type stack = { frames : frame array; mutable depth : int }

let new_stack () =
  {
    frames =
      Array.init max_depth (fun _ ->
          {
            f_span = 0;
            f_t0 = 0;
            f_minor0 = 0;
            f_promoted0 = 0;
            f_major0 = 0;
            f_minor_coll0 = 0;
            f_major_coll0 = 0;
            f_child_ns = 0;
            f_child_minor = 0;
            f_child_promoted = 0;
            f_child_major = 0;
            f_child_minor_coll = 0;
            f_child_major_coll = 0;
          });
    depth = 0;
  }

let stack_key : stack Domain.DLS.key = Domain.DLS.new_key new_stack

let on = Atomic.make false

let set_enabled v =
  Atomic.set on v;
  (Domain.DLS.get stack_key).depth <- 0

let enabled () = Atomic.get on

let enter_enabled t =
  let s = Domain.DLS.get stack_key in
  if s.depth < max_depth then begin
    let f = s.frames.(s.depth) in
    s.depth <- s.depth + 1;
    f.f_span <- t.id;
    f.f_child_ns <- 0;
    f.f_child_minor <- 0;
    f.f_child_promoted <- 0;
    f.f_child_major <- 0;
    f.f_child_minor_coll <- 0;
    f.f_child_major_coll <- 0;
    let st = quick_stat () in
    f.f_promoted0 <- int_of_float st.Gc.promoted_words;
    f.f_major0 <- int_of_float st.Gc.major_words;
    f.f_minor_coll0 <- st.Gc.minor_collections;
    f.f_major_coll0 <- st.Gc.major_collections;
    f.f_minor0 <- minor_words_net ();
    (* clock last: the span window excludes the bookkeeping above *)
    f.f_t0 <- (Atomic.get clock) ()
  end

let[@inline] enter t = if Atomic.get on then enter_enabled t

let[@inline] pos n = if n < 0 then 0 else n

let exit_enabled t =
  (* clock first: the span window excludes the bookkeeping below *)
  let now = (Atomic.get clock) () in
  let s = Domain.DLS.get stack_key in
  let rec find i =
    if i < 0 then -1 else if s.frames.(i).f_span = t.id then i else find (i - 1)
  in
  let i = find (s.depth - 1) in
  if i >= 0 then begin
    (* Unwinding past i discards frames opened by spans that escaped by
       exception without exiting — they record nothing. *)
    let f = s.frames.(i) in
    s.depth <- i;
    let minor_now = minor_words_net () in
    let st = quick_stat () in
    let total_ns = now - f.f_t0 in
    let minor = minor_now - f.f_minor0 in
    let promoted = int_of_float st.Gc.promoted_words - f.f_promoted0 in
    let major = int_of_float st.Gc.major_words - f.f_major0 in
    let minor_coll = st.Gc.minor_collections - f.f_minor_coll0 in
    let major_coll = st.Gc.major_collections - f.f_major_coll0 in
    Metrics.Histogram.observe t.h_span_ns total_ns;
    Metrics.Counter.add t.c_self_ns (pos (total_ns - f.f_child_ns));
    Metrics.Counter.add t.c_minor (pos (minor - f.f_child_minor));
    Metrics.Counter.add t.c_promoted (pos (promoted - f.f_child_promoted));
    Metrics.Counter.add t.c_major (pos (major - f.f_child_major));
    Metrics.Counter.add t.c_minor_coll (pos (minor_coll - f.f_child_minor_coll));
    Metrics.Counter.add t.c_major_coll (pos (major_coll - f.f_child_major_coll));
    if i > 0 then begin
      (* Charge this span's inclusive totals to the parent's child
         accumulators so the parent's exit reports exclusive figures. *)
      let p = s.frames.(i - 1) in
      p.f_child_ns <- p.f_child_ns + total_ns;
      p.f_child_minor <- p.f_child_minor + minor;
      p.f_child_promoted <- p.f_child_promoted + promoted;
      p.f_child_major <- p.f_child_major + major;
      p.f_child_minor_coll <- p.f_child_minor_coll + minor_coll;
      p.f_child_major_coll <- p.f_child_major_coll + major_coll
    end
  end

let[@inline] exit t = if Atomic.get on then exit_enabled t

let with_span t f =
  enter t;
  match f () with
  | v ->
      exit t;
      v
  | exception e ->
      exit t;
      raise e

(* ---- reporting ---- *)

type row = {
  r_name : string;
  r_calls : int;
  r_total_ns : int;
  r_self_ns : int;
  r_max_ns : int;
  r_minor_words : int;
  r_promoted_words : int;
  r_major_words : int;
  r_minor_collections : int;
  r_major_collections : int;
}

let sort_rows rows =
  List.sort
    (fun a b ->
      match compare b.r_self_ns a.r_self_ns with
      | 0 -> String.compare a.r_name b.r_name
      | c -> c)
    rows

let summary ?(registry = Metrics.default) () =
  List.filter_map
    (fun t ->
      if t.sp_registry == registry then
        Some
          {
            r_name = t.sp_name;
            r_calls = Metrics.Histogram.count t.h_span_ns;
            r_total_ns = Metrics.Histogram.sum t.h_span_ns;
            r_self_ns = Metrics.Counter.value t.c_self_ns;
            r_max_ns = Metrics.Histogram.max_value t.h_span_ns;
            r_minor_words = Metrics.Counter.value t.c_minor;
            r_promoted_words = Metrics.Counter.value t.c_promoted;
            r_major_words = Metrics.Counter.value t.c_major;
            r_minor_collections = Metrics.Counter.value t.c_minor_coll;
            r_major_collections = Metrics.Counter.value t.c_major_coll;
          }
      else None)
    (spans ())
  |> sort_rows

(* Rebuild rows from the exported snapshot shape (Export.json_of_snapshot):
   entries keyed (subsystem, name, label); profile spans put the span
   name in [label] and the quantity in [name]. *)
let rows_of_metrics_json doc =
  let entries =
    match Json.member doc "metrics" with
    | Some m -> Json.to_list_opt m
    | None -> Json.to_list_opt doc
  in
  match entries with
  | None ->
      Error "not a metrics snapshot: expected {\"metrics\": [...]} or a list"
  | Some entries ->
      let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 16 in
      let row label =
        match Hashtbl.find_opt tbl label with
        | Some r -> r
        | None ->
            let r =
              ref
                {
                  r_name = label;
                  r_calls = 0;
                  r_total_ns = 0;
                  r_self_ns = 0;
                  r_max_ns = 0;
                  r_minor_words = 0;
                  r_promoted_words = 0;
                  r_major_words = 0;
                  r_minor_collections = 0;
                  r_major_collections = 0;
                }
            in
            Hashtbl.replace tbl label r;
            r
      in
      let str e key =
        Option.bind (Json.member e key) Json.to_string_opt
      in
      let int_field e key =
        match Option.bind (Json.member e key) Json.to_int_opt with
        | Some v -> v
        | None -> 0
      in
      List.iter
        (fun e ->
          match (str e "subsystem", str e "name", str e "label") with
          | Some "profile", Some name, Some label -> (
              let r = row label in
              match name with
              | "span_ns" ->
                  r :=
                    {
                      !r with
                      r_calls = int_field e "count";
                      r_total_ns = int_field e "sum";
                      r_max_ns = int_field e "max";
                    }
              | "self_ns" -> r := { !r with r_self_ns = int_field e "value" }
              | "minor_words" ->
                  r := { !r with r_minor_words = int_field e "value" }
              | "promoted_words" ->
                  r := { !r with r_promoted_words = int_field e "value" }
              | "major_words" ->
                  r := { !r with r_major_words = int_field e "value" }
              | "minor_collections" ->
                  r := { !r with r_minor_collections = int_field e "value" }
              | "major_collections" ->
                  r := { !r with r_major_collections = int_field e "value" }
              | _ -> ())
          | _ -> ())
        entries;
      Ok (sort_rows (Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []))

let render rows =
  let total_self =
    List.fold_left (fun acc r -> acc + r.r_self_ns) 0 rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-22s %10s %10s %6s %10s %10s %9s %6s %6s\n" "span"
       "calls" "self-ms" "self%" "ns/call" "words/call" "promoted" "minGC"
       "majGC");
  if rows = [] then
    Buffer.add_string buf
      "  (no profile spans recorded; run with --profile)\n"
  else
    List.iter
      (fun r ->
        let calls = if r.r_calls = 0 then 1 else r.r_calls in
        let share =
          if total_self = 0 then 0.0
          else 100.0 *. float_of_int r.r_self_ns /. float_of_int total_self
        in
        Buffer.add_string buf
          (Printf.sprintf "%-22s %10d %10.2f %5.1f%% %10.0f %10.1f %9d %6d %6d\n"
             r.r_name r.r_calls
             (float_of_int r.r_self_ns /. 1e6)
             share
             (float_of_int r.r_total_ns /. float_of_int calls)
             (float_of_int r.r_minor_words /. float_of_int calls)
             r.r_promoted_words r.r_minor_collections r.r_major_collections))
      rows;
  Buffer.contents buf
