(* Conservative-lookahead synchronization (the classic
   Chandy-Misra-Bryant bound, specialized to lockstep windows): with
   [W <= min cross-link prop delay], a frame transmitted during window
   [r] cannot arrive before window [r+1] starts, so shards only need to
   exchange frames at window boundaries.

   Round protocol, per shard domain (engine clock = [t], window [W]):

     publish done flag -> barrier -> stop if horizon reached or all
     done -> drain channels -> Engine.run ~until:(t + W) -> repeat

   One barrier per round. The drain is deterministic without a second
   barrier because entries are stamped with the transmit window: a
   shard entering round [r] pops exactly the entries stamped [< r] —
   all present, since their producers passed the same barrier — and
   leaves anything a fast producer already pushed for round [r] (the
   SPSC queue makes that concurrent push safe). Done flags are
   double-buffered by round parity so a fast shard's round [r+2] write
   cannot race a slow shard still reading round [r]'s slot. *)

module Time = Planck_util.Time
module Spsc = Planck_util.Spsc
module Packet = Planck_packet.Packet
module Journal = Planck_telemetry.Journal

type entry = { w : int; ts : Time.t; pkt : Packet.t }
type chan = { q : entry Spsc.t; deliver : Packet.t -> unit }

type barrier = {
  m : Mutex.t;
  cv : Condition.t;
  total : int;
  mutable count : int;
  mutable phase : int;
  mutable aborted : bool;
}

type group = {
  n : int;
  engines : Engine.t array;
  journals : Journal.t array;
  mutable look : Time.t option;
  (* per-destination channels, registration order *)
  incoming : chan list array;
  (* per-source current window index; written only by that shard's
     domain, read only by its handoff closures on the same domain *)
  rounds : int array;
  barrier : barrier;
  (* done flags, double-buffered by round parity *)
  flags : bool array array;
}

let create ~shards =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  {
    n = shards;
    engines =
      Array.init shards (fun i ->
          Engine.create ~label:(Printf.sprintf "shard%d" i) ());
    journals = Array.init shards (fun i -> Journal.shard_journal ~shard:i);
    look = None;
    incoming = Array.make shards [];
    rounds = Array.make shards 0;
    barrier =
      {
        m = Mutex.create ();
        cv = Condition.create ();
        total = shards;
        count = 0;
        phase = 0;
        aborted = false;
      };
    flags = [| Array.make shards false; Array.make shards false |];
  }

let shards g = g.n

let check_shard g s label =
  if s < 0 || s >= g.n then
    invalid_arg (Printf.sprintf "Shard.%s: shard %d out of range" label s)

let engine g s =
  check_shard g s "engine";
  g.engines.(s)

let journal g s =
  check_shard g s "journal";
  g.journals.(s)

let lookahead g = g.look

let channel g ~src ~dst ~prop_delay ~deliver =
  check_shard g src "channel";
  check_shard g dst "channel";
  if src = dst then invalid_arg "Shard.channel: src and dst coincide";
  if prop_delay <= Time.zero then
    invalid_arg "Shard.channel: prop_delay must be positive";
  g.look <-
    Some (match g.look with None -> prop_delay | Some l -> min l prop_delay);
  let q = Spsc.create () in
  g.incoming.(dst) <- g.incoming.(dst) @ [ { q; deliver } ];
  fun ts pkt -> Spsc.push q { w = g.rounds.(src); ts; pkt }

(* The window: the lookahead bound, capped at the 10 ms chunk the
   single-domain runner uses — which also makes a group with no cross
   links (one shard, or disconnected shards) advance in exactly the
   single-domain chunk sequence. *)
let window g =
  let chunk = Time.ms 10 in
  match g.look with None -> chunk | Some l -> min l chunk

let barrier_await b =
  Mutex.lock b.m;
  let ok =
    if b.aborted then false
    else begin
      let ph = b.phase in
      b.count <- b.count + 1;
      if b.count = b.total then begin
        b.count <- 0;
        b.phase <- ph + 1;
        Condition.broadcast b.cv
      end
      else
        while b.phase = ph && not b.aborted do
          Condition.wait b.cv b.m
        done;
      not b.aborted
    end
  in
  Mutex.unlock b.m;
  ok

let barrier_abort b =
  Mutex.lock b.m;
  b.aborted <- true;
  Condition.broadcast b.cv;
  Mutex.unlock b.m

(* Pop every entry transmitted before round [r] and schedule its
   arrival in this shard's wheel. Entries are popped in channel
   registration order, then FIFO per channel — both deterministic — and
   their timestamps are >= the shard's clock by the lookahead bound. *)
let drain g me r =
  let eng = g.engines.(me) in
  List.iter
    (fun c ->
      let rec go () =
        match Spsc.peek c.q with
        | Some e when e.w < r ->
            ignore (Spsc.pop c.q);
            let deliver = c.deliver and pkt = e.pkt in
            Engine.schedule_at eng ~time:e.ts (fun () -> deliver pkt);
            go ()
        | Some _ | None -> ()
      in
      go ())
    g.incoming.(me)

let shard_body g me ~horizon ~local_done =
  Journal.set_shard_redirect (Some g.journals.(me));
  Fun.protect
    ~finally:(fun () -> Journal.set_shard_redirect None)
    (fun () ->
      let eng = g.engines.(me) in
      let w = window g in
      let rec loop r t =
        g.flags.(r land 1).(me) <- local_done me;
        if barrier_await g.barrier then begin
          let all_done = Array.for_all Fun.id g.flags.(r land 1) in
          if not (all_done || t >= horizon) then begin
            drain g me r;
            g.rounds.(me) <- r;
            let until = min horizon (t + w) in
            Engine.run ~until eng;
            loop (r + 1) until
          end
        end
      in
      loop 0 Time.zero)

let run g ~horizon ~local_done =
  let doms =
    Array.init g.n (fun me ->
        Domain.spawn (fun () ->
            try shard_body g me ~horizon ~local_done
            with exn ->
              barrier_abort g.barrier;
              raise exn))
  in
  let first_exn = ref None in
  Array.iter
    (fun d ->
      try Domain.join d
      with exn -> if Option.is_none !first_exn then first_exn := Some exn)
    doms;
  match !first_exn with None -> () | Some exn -> raise exn

let merge_journals g ~into =
  Journal.merge_into into (List.init g.n (fun i -> (i, g.journals.(i))))
