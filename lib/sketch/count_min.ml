module Prng = Planck_util.Prng
module Flow_key = Planck_packet.Flow_key
module Ipv4_addr = Planck_packet.Ipv4_addr

type t = {
  depth : int;
  width : int;
  mask : int;
  rows : int array array;
  seeds : int array;
  idx : int array;  (* per-update scratch: row indices for one key *)
}

(* 64-bit FNV-1a folded per field (not per byte) for speed, then a
   per-row xorshift* finalizer over the shared base — the
   Kirsch–Mitzenmacher construction: one strong base hash, cheap
   derived row hashes. Constants below the OCaml 62-bit literal
   ceiling; the top bits the asr-free [land max_int] keeps are enough
   for table indexing. *)
let fnv_prime = 0x100000001B3
let fnv_basis = 0x0BF29CE484222325
let mix_mult = 0x2545F4914F6CDD1D

let[@inline] fnv_fold h v = (h lxor v) * fnv_prime

let[@inline] base_hash (key : Flow_key.t) =
  let h = fnv_basis in
  let h = fnv_fold h (Ipv4_addr.to_int key.src_ip) in
  let h = fnv_fold h (Ipv4_addr.to_int key.dst_ip) in
  let h = fnv_fold h key.src_port in
  let h = fnv_fold h key.dst_port in
  fnv_fold h key.protocol

let[@inline] finalize seed h =
  let x = h lxor seed in
  let x = x lxor (x lsr 33) in
  let x = x * mix_mult in
  (x lxor (x lsr 29)) land max_int

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let default_seed = 0x5eed
let default_depth = 4
let default_width = 16_384

let create ?(seed = default_seed) ?(depth = default_depth)
    ?(width = default_width) () =
  if depth < 1 then invalid_arg "Count_min.create: depth < 1";
  if width < 1 then invalid_arg "Count_min.create: width < 1";
  let width = pow2_at_least width 1 in
  let prng = Prng.create ~seed in
  let seeds = Array.make depth 0 in
  (* explicit loop: Array.init evaluation order is unspecified, and the
     seed sequence must be reproducible *)
  for i = 0 to depth - 1 do
    seeds.(i) <- Int64.to_int (Prng.bits64 prng) land max_int
  done;
  {
    depth;
    width;
    mask = width - 1;
    rows = Array.init depth (fun _ -> Array.make width 0);
    seeds;
    idx = Array.make depth 0;
  }

let depth t = t.depth
let width t = t.width

let row_index t key ~row =
  if row < 0 || row >= t.depth then invalid_arg "Count_min.row_index";
  finalize t.seeds.(row) (base_hash key) land t.mask

let update t key bytes =
  let h = base_hash key in
  let est = ref max_int in
  for i = 0 to t.depth - 1 do
    let j = finalize t.seeds.(i) h land t.mask in
    t.idx.(i) <- j;
    let v = t.rows.(i).(j) in
    if v < !est then est := v
  done;
  (* conservative update: only lift counters up to the new minimum, so
     colliding flows inflate each other as little as possible *)
  let target = !est + bytes in
  for i = 0 to t.depth - 1 do
    let row = t.rows.(i) in
    let j = t.idx.(i) in
    if row.(j) < target then row.(j) <- target
  done;
  target

let query t key =
  let h = base_hash key in
  let est = ref max_int in
  for i = 0 to t.depth - 1 do
    let v = t.rows.(i).(finalize t.seeds.(i) h land t.mask) in
    if v < !est then est := v
  done;
  if !est = max_int then 0 else !est

let halve t =
  for i = 0 to t.depth - 1 do
    let row = t.rows.(i) in
    for j = 0 to t.width - 1 do
      let v = row.(j) in
      if v <> 0 then row.(j) <- v asr 1
    done
  done

let clear t =
  for i = 0 to t.depth - 1 do
    Array.fill t.rows.(i) 0 t.width 0
  done

let occupied t =
  let n = ref 0 in
  for i = 0 to t.depth - 1 do
    let row = t.rows.(i) in
    for j = 0 to t.width - 1 do
      if row.(j) <> 0 then incr n
    done
  done;
  !n

let words t =
  (* counters + per-row array headers + seeds/scratch + record fields:
     the resident cost a capacity planner would budget for *)
  (t.depth * t.width) + (3 * t.depth) + 16
