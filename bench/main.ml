(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index), plus Bechamel
   microbenchmarks of the hot paths.

     dune exec bench/main.exe                 # everything, reduced scale
     dune exec bench/main.exe -- fig14 fig17  # a subset
     dune exec bench/main.exe -- --full       # paper-scale (slow)
     dune exec bench/main.exe -- --list       # what exists
     dune exec bench/main.exe -- fig15 --json out.json   # machine-readable
     dune exec bench/main.exe -- fig13 --trace-out t.json  # Perfetto trace
*)

module Json = Planck_telemetry.Json
module Metrics = Planck_telemetry.Metrics
module Profile = Planck_telemetry.Profile
module Bench_gate = Planck_telemetry.Bench_gate
module Trace = Planck_telemetry.Trace
module Export = Planck_telemetry.Export
module Journal = Planck_telemetry.Journal
module Timeseries = Planck_telemetry.Timeseries
module Time = Planck.Util.Time

let experiments : (string * string * (Exp_common.opts -> unit)) list =
  [
    ( "table1",
      "measurement speed comparison (Planck vs published systems)",
      Exp_table1.run );
    ( "fig2-4",
      "impact of oversubscribed mirroring on loss/latency/throughput",
      Exp_mirror_impact.run );
    ("fig5-7", "sample burst and inter-arrival structure", Exp_samples.run);
    ( "fig8-9",
      "sample latency under congestion and vs oversubscription (+ fig12)",
      Exp_latency.run );
    ( "fig10-11",
      "throughput estimation: smoothing and accuracy",
      Exp_estimation.run );
    ( "fig13-16",
      "shadow-MAC routes, control-loop timeline, ARP vs OpenFlow",
      Exp_reroute.run );
    ("fig14-18", "traffic-engineering evaluation", Exp_te.run);
    ( "sec9-1",
      "scalability plan: collectors per datacenter",
      Exp_scalability.run );
    ( "ablations",
      "design-choice ablations (arbitration, buffers, estimator, TE)",
      Exp_ablations.run );
    ( "bounded-state",
      "sketch tier vs exact flow table: state at 1M flows, accuracy, TE \
       agreement",
      Exp_bounded_state.run );
  ]

let run_selected ?(skip_experiments = false) ?(only = []) names opts with_micro
    =
  let t0 = Unix.gettimeofday () in
  let selected =
    match names with
    | _ when skip_experiments -> []
    | [] -> experiments
    | names ->
        List.filter
          (fun (name, _, _) ->
            List.exists
              (fun n ->
                n = name
                || (String.length n < String.length name
                    && String.sub name 0 (String.length n) = n))
              names)
          experiments
  in
  if selected = [] && not with_micro then begin
    Printf.eprintf "no experiment matches %s\n" (String.concat ", " names);
    exit 1
  end;
  let timed =
    List.map
      (fun (name, _, run) ->
        let t = Unix.gettimeofday () in
        let ok =
          try
            run opts;
            true
          with exn ->
            Printf.printf "  [%s FAILED: %s]\n%!" name (Printexc.to_string exn);
            false
        in
        let wall = Unix.gettimeofday () -. t in
        Printf.printf "  [%s took %.1fs]\n%!" name wall;
        (name, wall, ok))
      selected
  in
  let micro = if with_micro then Micro.run ~only () else [] in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal wall time: %.1fs\n%!" total;
  (timed, total, micro)

(* The machine-readable emitter behind --json: one document per
   invocation, so perf trajectories (BENCH_*.json) can accumulate
   across PRs. The [metrics] member is the process-wide telemetry
   snapshot, giving every bench id a common vocabulary of internals
   (events processed, drops, sample counts, ...) for free. *)
let emit_json path timed total micro =
  let doc =
    Json.Obj
      [
        ( "id",
          Json.String
            (String.concat "+" (List.map (fun (name, _, _) -> name) timed)) );
        ( "experiments",
          Json.List
            (List.map
               (fun (name, wall, ok) ->
                 Json.Obj
                   [
                     ("id", Json.String name);
                     ("wall_time", Json.Float wall);
                     ("ok", Json.Bool ok);
                   ])
               timed) );
        ("micro", Bench_gate.rows_to_json micro);
        ( "metrics",
          match Json.member (Export.metrics_to_json Metrics.default) "metrics"
          with
          | Some metrics -> metrics
          | None -> Json.List [] );
        ("wall_time", Json.Float total);
      ]
  in
  Export.write_file ~path (Json.to_string doc);
  Printf.printf "wrote bench results to %s\n%!" path

open Cmdliner

let names =
  let doc =
    "Experiments to run (prefix match), e.g. fig14. Default: all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let runs =
  let doc = "Repetitions for multi-run experiments." in
  Arg.(value & opt int Exp_common.default_opts.Exp_common.runs
       & info [ "runs" ] ~doc)

let full =
  let doc =
    "Use paper-scale parameters (15-run averages, up to multi-GiB flows). \
     Slow: expect hours."
  in
  Arg.(value & flag & info [ "full" ] ~doc)

let seed =
  let doc = "Base random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let list_flag =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let micro_flag =
  let doc = "Also run the Bechamel microbenchmarks." in
  Arg.(value & flag & info [ "micro" ] ~doc)

let json_out =
  let doc =
    "Write a machine-readable summary {id, experiments, metrics, wall_time} \
     to $(docv). Implies telemetry collection."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc = "Enable telemetry and write the metric snapshot as JSON." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Enable sim-time tracing and write a Chrome trace_event JSON (open in \
     chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let journal_out =
  let doc =
    "Enable the flight-recorder journal and stream every event (drops, \
     congestion, reroute stages, ...) across all selected experiments as \
     NDJSON to $(docv); analyse with 'planck-cli inspect'."
  in
  Arg.(value & opt (some string) None & info [ "journal-out" ] ~docv:"FILE" ~doc)

let timeseries_out =
  let doc =
    "Record ground-truth time-series (link utilization, buffers, true vs \
     estimated flow rates) for each experiment run and write the last run's \
     CSV to $(docv)."
  in
  Arg.(value & opt (some string) None
       & info [ "timeseries-out" ] ~docv:"FILE" ~doc)

let timeseries_interval_us =
  let doc = "Sampling interval for --timeseries-out, microseconds." in
  Arg.(value & opt int 500 & info [ "timeseries-interval-us" ] ~docv:"US" ~doc)

let only_micros =
  let doc =
    "Run only the microbenchmark with this id (see --json row ids). \
     Repeatable; applies to --micro and --check."
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"ID" ~doc)

let check_flag =
  let doc =
    "Run the microbenchmarks and gate them against a committed baseline \
     (--against, or the latest BENCH_*.json under --bench-dir): exit \
     non-zero if any row regressed beyond its tolerance band, went \
     missing, or lost its estimate. Implies --micro; experiments are \
     skipped unless named. Set PLANCK_BENCH_NO_GATE=1 to report without \
     enforcing (noisy runners)."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let against =
  let doc = "Baseline BENCH_N.json for --check (default: latest committed)." in
  Arg.(value & opt (some string) None & info [ "against" ] ~docv:"FILE" ~doc)

let tolerance =
  let doc =
    "Default fractional tolerance band for --check (0.15 = +/-15%)."
  in
  Arg.(value & opt float 0.15 & info [ "tolerance" ] ~docv:"FRAC" ~doc)

let noise_floor =
  let doc =
    "Absolute allowance in ns added on both sides of the --check band \
     (sub-50ns rows sit at clock granularity, where a few ns of jitter \
     exceeds any percentage)."
  in
  Arg.(value & opt float 5.0 & info [ "noise-floor" ] ~docv:"NS" ~doc)

let tolerance_overrides =
  let doc =
    "Per-row tolerance override for --check, e.g. \
     switch-forward-mirror=0.30. Repeatable."
  in
  Arg.(
    value
    & opt_all string []
    & info [ "tolerance-override" ] ~docv:"ID=FRAC" ~doc)

let bench_dir =
  let doc = "Directory holding the committed BENCH_*.json trajectory." in
  Arg.(value & opt string "." & info [ "bench-dir" ] ~docv:"DIR" ~doc)

let trend_flag =
  let doc =
    "Render a markdown trend table across every committed BENCH_*.json \
     under --bench-dir and exit (runs nothing)."
  in
  Arg.(value & flag & info [ "trend" ] ~doc)

let trend_out =
  let doc = "Like --trend but write the markdown to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trend-out" ] ~docv:"FILE" ~doc)

let profile_flag =
  let doc =
    "Enable the self-profiling spans (and the metric registry backing \
     them) and print the per-subsystem report after the run; the span \
     metrics also land in --json/--metrics-out snapshots."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let main names runs full seed list_experiments with_micro json_path
    metrics_path trace_path journal_path timeseries_path
    timeseries_interval_us only check against_path tolerance noise_floor_ns
    tolerance_overrides bench_dir trend trend_out profile =
  let with_micro = with_micro || check in
  let overrides =
    List.map
      (fun s ->
        match Bench_gate.parse_override s with
        | Ok entry -> entry
        | Error e ->
            Printf.eprintf "planck-bench --tolerance-override: %s\n" e;
            Stdlib.exit 1)
      tolerance_overrides
  in
  if trend || trend_out <> None then begin
    match Bench_gate.trend ~dir:bench_dir with
    | Error e ->
        Printf.eprintf "planck-bench --trend: %s\n" e;
        Stdlib.exit 1
    | Ok md -> (
        match trend_out with
        | Some path ->
            Export.write_file ~path md;
            Printf.printf "wrote trend table to %s\n%!" path
        | None -> print_string md)
  end
  else if list_experiments then begin
    List.iter
      (fun (name, doc, _) -> Printf.printf "%-10s %s\n" name doc)
      experiments;
    Printf.printf "%-10s %s\n" "(--micro)" "Bechamel hot-path microbenchmarks"
  end
  else begin
    (* Probe each output path before spending minutes on experiments. *)
    List.iter
      (Option.iter (fun path ->
           try Export.write_file ~path ""
           with Sys_error msg ->
             Printf.eprintf "planck-bench: cannot write %s\n" msg;
             exit 1))
      [ json_path; metrics_path; trace_path; journal_path; timeseries_path ];
    if json_path <> None || metrics_path <> None || profile then
      Metrics.set_enabled Metrics.default true;
    if profile then Profile.set_enabled true;
    if trace_path <> None then Trace.set_enabled Trace.default true;
    if journal_path <> None then Journal.set_enabled Journal.default true;
    (* Stream journal events as they record: experiments produce far more
       than the in-memory ring holds, the NDJSON file is complete. *)
    let journal_lines = ref 0 in
    let journal_channel =
      Option.map
        (fun path ->
          let oc = open_out path in
          Journal.set_writer Journal.default
            (Some
               (fun line ->
                 incr journal_lines;
                 output_string oc line;
                 output_char oc '\n'));
          oc)
        journal_path
    in
    (* Ground truth hooks in through the experiment observer, since each
       experiment run builds its testbed internally. Last run wins. *)
    let last_recorder = ref None in
    if timeseries_path <> None then
      Planck.Experiment.set_observer
        (Some
           (fun testbed deployed ->
             let estimate =
               match deployed.Planck.Scheme.controller with
               | Some controller ->
                   Planck.Controller_lib.Controller.flow_rate controller
               | None -> fun _ -> None
             in
             let recorder =
               Planck.Recorder.create
                 ~interval:(Time.us timeseries_interval_us)
                 ~estimate testbed
             in
             last_recorder := Some recorder;
             Some (fun flow -> Planck.Recorder.track_flow recorder flow)));
    let opts =
      {
        Exp_common.runs;
        full;
        seed;
        verbose = false;
      }
    in
    (* --check with no named experiments gates the micros alone. *)
    let skip_experiments = check && names = [] in
    let timed, total, micro =
      run_selected ~skip_experiments ~only names opts with_micro
    in
    Planck.Experiment.set_observer None;
    if profile then begin
      Profile.set_enabled false;
      Printf.printf "\nSelf-profile (wall clock + GC, by span):\n%s%!"
        (Profile.render (Profile.summary ()))
    end;
    (* Drop scoped-registry spans (micro fixtures) from the process
       catalog so repeated in-process runs don't accumulate them. *)
    Profile.reset ();
    (match journal_channel with
    | Some oc ->
        Journal.set_writer Journal.default None;
        close_out oc;
        Printf.printf "wrote %d journal events to %s\n%!" !journal_lines
          (Option.get journal_path)
    | None -> ());
    Option.iter
      (fun path ->
        match !last_recorder with
        | Some recorder ->
            let ts = Planck.Recorder.timeseries recorder in
            Export.write_file ~path (Timeseries.to_csv ts);
            Printf.printf "wrote %d time-series rows (%d series) to %s\n%!"
              (List.length (Timeseries.rows ts))
              (List.length (Timeseries.names ts))
              path
        | None ->
            Printf.printf
              "no time-series recorded (no selected experiment ran a \
               workload through the experiment harness)\n%!")
      timeseries_path;
    Option.iter (fun path -> emit_json path timed total micro) json_path;
    Option.iter
      (fun path ->
        Export.write_file ~path (Export.metrics_json Metrics.default);
        Printf.printf "wrote %d metrics to %s\n%!"
          (Metrics.size Metrics.default)
          path)
      metrics_path;
    Option.iter
      (fun path ->
        Export.write_file ~path (Trace.to_chrome_json Trace.default);
        Printf.printf
          "wrote %d trace events to %s (open in chrome://tracing or \
           Perfetto)\n\
           %!"
          (Trace.length Trace.default) path)
      trace_path;
    if check then begin
      let gate_failed = ref false in
      (let baseline =
         match against_path with
         | Some path -> Some path
         | None -> Bench_gate.latest_bench ~dir:bench_dir
       in
       match baseline with
       | None ->
           Printf.eprintf "planck-bench --check: no BENCH_*.json under %s\n"
             bench_dir;
           gate_failed := true
       | Some path -> (
           match Bench_gate.load_rows ~path with
           | Error e ->
               Printf.eprintf "planck-bench --check: %s\n" e;
               gate_failed := true
           | Ok baseline_rows ->
               (* --only narrows the gate to the selected micros: a
                  baseline row with no counterpart in this run is a
                  deliberate non-selection, not a removal. *)
               let baseline_rows =
                 if only = [] then baseline_rows
                 else
                   List.filter
                     (fun b ->
                       List.exists
                         (fun c ->
                           String.equal b.Bench_gate.id c.Bench_gate.id
                           || String.equal b.Bench_gate.name c.Bench_gate.name)
                         micro)
                     baseline_rows
               in
               let compare current =
                 Bench_gate.compare_rows ~tolerance ~noise_floor_ns ~overrides
                   ~baseline:baseline_rows ~current ()
               in
               let comparisons = compare micro in
               (* A shared box can be in a slow scheduler/frequency
                  state for a whole measurement window, so give rows
                  that regressed one re-measure before failing: noise
                  recovers, a real regression fails twice. *)
               let retry_ids =
                 List.filter_map
                   (fun c ->
                     match c.Bench_gate.status with
                     | Bench_gate.Regressed _ ->
                         Option.map
                           (fun r -> r.Bench_gate.id)
                           (List.find_opt
                              (fun r ->
                                String.equal r.Bench_gate.id c.Bench_gate.cmp_id
                                || String.equal r.Bench_gate.name
                                     c.Bench_gate.cmp_name)
                              micro)
                     | _ -> None)
                   comparisons
               in
               let comparisons =
                 match retry_ids with
                 | [] -> comparisons
                 | ids ->
                     Printf.printf
                       "\n%d row(s) regressed; re-measuring once to shed \
                        scheduler noise...\n\
                        %!"
                       (List.length ids);
                     let rerun = Micro.run ~only:ids () in
                     let micro =
                       List.map
                         (fun r ->
                           match
                             List.find_opt
                               (fun r2 ->
                                 String.equal r2.Bench_gate.id r.Bench_gate.id)
                               rerun
                           with
                           | Some
                               {
                                 Bench_gate.ns_per_op = Some again;
                                 _;
                               } -> (
                               match r.Bench_gate.ns_per_op with
                               | Some first ->
                                   {
                                     r with
                                     Bench_gate.ns_per_op =
                                       Some (Float.min first again);
                                   }
                               | None -> r)
                           | Some _ | None -> r)
                         micro
                     in
                     compare micro
               in
               Printf.printf "\nGate against %s (band +/-%.0f%%):\n%s%!" path
                 (100. *. tolerance)
                 (Bench_gate.render_check comparisons);
               if not (Bench_gate.passes comparisons) then
                 if Sys.getenv_opt "PLANCK_BENCH_NO_GATE" <> None then
                   Printf.printf
                     "PLANCK_BENCH_NO_GATE set: regression reported, gate \
                      not enforced\n\
                      %!"
                 else gate_failed := true));
      if !gate_failed then Stdlib.exit 1
    end
  end

let cmd =
  let doc =
    "Regenerate the tables and figures of 'Planck: millisecond-scale \
     monitoring and control for commodity networks' (SIGCOMM 2014)"
  in
  Cmd.v
    (Cmd.info "planck-bench" ~doc)
    Term.(
      const main $ names $ runs $ full $ seed $ list_flag $ micro_flag
      $ json_out $ metrics_out $ trace_out $ journal_out $ timeseries_out
      $ timeseries_interval_us $ only_micros $ check_flag $ against $ tolerance
      $ noise_floor $ tolerance_overrides $ bench_dir $ trend_flag $ trend_out
      $ profile_flag)

let () = exit (Cmd.eval cmd)
