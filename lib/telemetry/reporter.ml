module Time = Planck_util.Time

let clock : (unit -> Time.t) option Atomic.t = Atomic.make None
let set_clock c = Atomic.set clock c

let now_str () =
  match Atomic.get clock with
  | None -> "--"
  | Some c -> Time.to_string (c ())

let level_str = function
  | Logs.App -> "APP"
  | Logs.Error -> "ERROR"
  | Logs.Warning -> "WARN"
  | Logs.Info -> "INFO"
  | Logs.Debug -> "DEBUG"

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags fmt ->
    ignore header;
    ignore tags;
    Format.kfprintf k Format.err_formatter
      ("[%s] [%s] [%s] " ^^ fmt ^^ "@.")
      (now_str ()) (level_str level) (Logs.Src.name src)
  in
  { Logs.report }

let install ?level ?clock:c () =
  (match c with None -> () | Some c -> set_clock c);
  Logs.set_reporter (reporter ());
  match level with None -> () | Some l -> Logs.set_level l

let level_of_string = function
  | "off" -> Ok None
  | "warn" -> Ok (Some Logs.Warning)
  | s -> (
      match Logs.level_of_string s with
      | Ok l -> Ok l
      | Error (`Msg m) -> Error m)
