(* The ownership / transfer-safety tier.

   Input: the ownership facts the index records (transfer-point call
   sites, SPSC role sites, per-binding use-after-transfer facts,
   release leaks, blocking references) plus the same shard closure the
   domain tier computes. Four rules:

   - use-after-transfer: a local flowed into Spsc.push / Timer.cancel
     and is read/written/RMW'd afterwards on some path. The domain
     tier's mutability classifier filters immutable payloads — reading
     an immutable value the consumer also reads races nothing, which
     is what keeps the shard hand-off of immutable Packet.t clean.

   - spsc-role-confinement: for one channel identity, all push sites
     must be reachable from at most one Domain.spawn shard root, and
     all pop/peek/drain sites likewise. Code no spawn root reaches is
     attributed to the "(main)" pseudo-root. A channel whose both
     roles sit under one single root is clean — that is the
     single-domain setup/test shape; the multi-instance case (N shards
     running one shard-body def) is the dynamic Spsc debug check's
     job, not this rule's.

   - blocking-in-shard-body: a Mutex.lock/Condition.wait/Domain.join/
     Unix-I/O/console reference reachable from a shard closure or hot
     root. A parked domain stalls the sense-reversing barrier for
     every shard, so each such site is either a bug or a documented
     design point (the barrier itself) carrying a baseline entry.

   - release-leak: Buffer_pool.try_alloc succeeded but a direct
     raise-family call escapes the success branch before any release.

   Like the domain tier, findings carry stable symbols for the
   committed baseline, and the whole fact base is rendered into a
   committed inventory (tools/lint/ownership.txt) with a drift
   self-check. *)

module Ix = Lint_cmt_index
module Deep = Lint_deep_rules
module Dom = Lint_domain_rules
module F = Lint_finding
module SS = Set.Make (String)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let in_lib file = has_prefix "lib/" file

(* strip the "Stdlib." prefix for symbols and messages *)
let short_op name =
  if has_prefix "Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

(* ---- Shard-root attribution ----

   Each Domain.spawn caller is a shard root; per-root forward closures
   tell us which root(s) can execute a given def. Defs no spawned body
   reaches run on the coordinating domain: the "(main)" pseudo-root. *)

type attribution = {
  at_roots : (string * Lint_callgraph.closure) list;
}

let main_root = "(main)"

let attribution dr =
  let ix = Deep.index dr in
  let roots = Dom.spawn_callers ix in
  {
    at_roots =
      List.map (fun r -> (r, Lint_callgraph.forward ix ~roots:[ r ])) roots;
  }

let roots_of at def =
  match
    List.filter_map
      (fun (r, c) -> if Lint_callgraph.mem c def then Some r else None)
      at.at_roots
  with
  | [] -> [ main_root ]
  | rs -> rs

(* ---- use-after-transfer ---- *)

let use_after_transfer_findings dr =
  Ix.transfer_uses (Deep.index dr)
  |> List.filter_map (fun (u : Ix.transfer_use) ->
         if not (in_lib u.Ix.u_file) then None
         else if u.Ix.u_mut = Ix.Mut_none then None
         else
           Some
             (F.v ~rule:"use-after-transfer" ~severity:F.Error
                ~file:u.Ix.u_file ~line:u.Ix.u_line ~col:u.Ix.u_col
                ~symbol:(Printf.sprintf "%s.%s" u.Ix.u_def u.Ix.u_var)
                ~classification:u.Ix.u_point
                (Printf.sprintf
                   "`%s` flowed into %s at line %d and is %s here; after the \
                    hand-off the value belongs to the new owner (consumer \
                    shard / pool / wheel), which may be mutating it \
                    concurrently — copy what you need before the transfer, \
                    or baseline with a justification"
                   u.Ix.u_var u.Ix.u_point u.Ix.u_transfer_line
                   (Lint_transfer.use_verb u.Ix.u_kind))))

(* ---- release-leak ---- *)

let release_leak_findings dr =
  Ix.release_leaks (Deep.index dr)
  |> List.filter_map (fun (k : Ix.release_leak) ->
         if not (in_lib k.Ix.k_file) then None
         else
           Some
             (F.v ~rule:"release-leak" ~severity:F.Error ~file:k.Ix.k_file
                ~line:k.Ix.k_line ~col:k.Ix.k_col ~symbol:k.Ix.k_def
                (Printf.sprintf
                   "Buffer_pool.try_alloc succeeded at line %d but %s raises \
                    here before any matching release; the admitted bytes \
                    leak from the pool accounting — release on the exception \
                    edge and re-raise"
                   k.Ix.k_alloc_line (short_op k.Ix.k_raise))))

(* ---- spsc-role-confinement ---- *)

let spsc_findings ?at dr =
  let ix = Deep.index dr in
  let sites =
    List.filter (fun (s : Ix.spsc_site) -> in_lib s.Ix.sp_file)
      (Ix.spsc_sites ix)
  in
  if sites = [] then []
  else
    let at = match at with Some a -> a | None -> attribution dr in
    let by_chan : (string, Ix.spsc_site list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (s : Ix.spsc_site) ->
        match Hashtbl.find_opt by_chan s.Ix.sp_chan with
        | Some l -> l := s :: !l
        | None -> Hashtbl.replace by_chan s.Ix.sp_chan (ref [ s ]))
      sites;
    let chans =
      Hashtbl.fold (fun c l acc -> (c, List.rev !l) :: acc) by_chan []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.concat_map
      (fun (chan, sites) ->
        let check role label =
          let role_sites =
            List.filter (fun (s : Ix.spsc_site) -> s.Ix.sp_role = role) sites
          in
          let roots =
            List.fold_left
              (fun acc (s : Ix.spsc_site) ->
                List.fold_left (fun acc r -> SS.add r acc) acc
                  (roots_of at s.Ix.sp_def))
              SS.empty role_sites
          in
          if SS.cardinal roots <= 1 then []
          else
            let witness = List.hd role_sites in
            [
              F.v ~rule:"spsc-role-confinement" ~severity:F.Error
                ~file:witness.Ix.sp_file ~line:witness.Ix.sp_line ~col:0
                ~symbol:(chan ^ ":" ^ label)
                ~classification:label
                (Printf.sprintf
                   "SPSC channel %s has %s call sites reachable from %d \
                    distinct shard roots (%s); the single-%s contract allows \
                    exactly one — route them through one domain or split \
                    the channel"
                   chan
                   (if role = Ix.Producer then "push"
                    else "pop/peek/drain")
                   (SS.cardinal roots)
                   (String.concat ", " (SS.elements roots))
                   label);
            ]
        in
        check Ix.Producer "producer" @ check Ix.Consumer "consumer")
      chans

(* ---- blocking-in-shard-body ---- *)

let blocking_findings ?closure dr =
  let closure =
    match closure with Some c -> c | None -> Dom.shard_closure dr
  in
  List.filter_map
    (fun (e : Ix.event) ->
      match e.Ix.e_kind with
      | Ix.Blocking name
        when in_lib e.Ix.e_file
             && (not e.Ix.e_in_raise)
             && Lint_callgraph.mem closure e.Ix.e_def ->
          Some
            (F.v ~rule:"blocking-in-shard-body" ~severity:F.Error
               ~file:e.Ix.e_file ~line:e.Ix.e_line ~col:e.Ix.e_col
               ~symbol:(e.Ix.e_def ^ ":" ^ short_op name)
               ~classification:(short_op name)
               (Printf.sprintf
                  "%s is reachable from a shard body / hot root (%s); a \
                   parked domain stalls the sense-reversing barrier for \
                   every shard — move it off the shard path or baseline \
                   with a justification"
                  (short_op name)
                  (Lint_callgraph.chain_string closure e.Ix.e_def)))
      | _ -> None)
    (Ix.events (Deep.index dr))

let findings dr =
  use_after_transfer_findings dr
  @ release_leak_findings dr
  @ spsc_findings dr
  @ blocking_findings dr
  |> List.sort F.compare_by_location

(* ---- Inventory ----

   One line per ownership fact in lib/, mirroring shared_state.txt:
   the committed tools/lint/ownership.txt is this text rendering, and
   the self-check compares the (kind, symbol) projection so line/chain
   churn does not count as drift. *)

type entry = { o_kind : string; o_symbol : string; o_detail : string }

let inventory dr =
  let ix = Deep.index dr in
  let at = attribution dr in
  let closure = Dom.shard_closure dr in
  let seen = Hashtbl.create 64 in
  let add acc kind symbol detail =
    if Hashtbl.mem seen (kind, symbol) then acc
    else begin
      Hashtbl.replace seen (kind, symbol) ();
      { o_kind = kind; o_symbol = symbol; o_detail = detail } :: acc
    end
  in
  let acc =
    List.fold_left
      (fun acc (s : Ix.transfer_site) ->
        if in_lib s.Ix.s_file then
          add acc "transfer-site"
            (s.Ix.s_def ^ ":" ^ s.Ix.s_point)
            s.Ix.s_file
        else acc)
      [] (Ix.transfer_sites ix)
  in
  let acc =
    List.fold_left
      (fun acc (s : Ix.spsc_site) ->
        if in_lib s.Ix.sp_file then
          add acc
            (match s.Ix.sp_role with
            | Ix.Producer -> "spsc-producer"
            | Ix.Consumer -> "spsc-consumer")
            (s.Ix.sp_chan ^ ":" ^ s.Ix.sp_def)
            (Printf.sprintf "op=%s roots=%s" s.Ix.sp_op
               (String.concat "," (roots_of at s.Ix.sp_def)))
        else acc)
      acc (Ix.spsc_sites ix)
  in
  let acc =
    List.fold_left
      (fun acc (e : Ix.event) ->
        match e.Ix.e_kind with
        | Ix.Blocking name
          when in_lib e.Ix.e_file
               && (not e.Ix.e_in_raise)
               && Lint_callgraph.mem closure e.Ix.e_def ->
            add acc "blocking-reach"
              (e.Ix.e_def ^ ":" ^ short_op name)
              (Lint_callgraph.chain_string closure e.Ix.e_def)
        | _ -> acc)
      acc (Ix.events ix)
  in
  List.sort
    (fun a b ->
      match String.compare a.o_kind b.o_kind with
      | 0 -> String.compare a.o_symbol b.o_symbol
      | c -> c)
    acc

let inventory_text entries =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "# planck-lint ownership inventory (generated: planck_lint --deep \
     --ownership-out)\n\
     # One line per ownership fact in lib/: <kind> <symbol> -- <detail>\n\
     # Kinds: transfer-site (def:point), spsc-producer/spsc-consumer \
     (chan:def),\n\
     # blocking-reach (def:op, with the shard-root witness chain).\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s -- %s\n" e.o_kind e.o_symbol e.o_detail))
    entries;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let inventory_json entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"version\":1,\"ownership\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"%s\",\"symbol\":\"%s\",\"detail\":\"%s\"}"
           (json_escape e.o_kind) (json_escape e.o_symbol)
           (json_escape e.o_detail)))
    entries;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* same `<head> <symbol> -- ...` line shape as shared_state.txt *)
let load_inventory = Dom.load_inventory
