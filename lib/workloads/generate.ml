module Prng = Planck_util.Prng
module Time = Planck_util.Time
module Fat_tree = Planck_topology.Fat_tree

type pair = { src : int; dst : int }

let stride ~hosts ~k =
  if hosts <= 1 then invalid_arg "Generate.stride: need at least 2 hosts";
  if k mod hosts = 0 then invalid_arg "Generate.stride: k maps hosts to selves";
  List.init hosts (fun x -> { src = x; dst = (x + k) mod hosts })

let random_bijection prng ~hosts =
  let p = Prng.derangement prng hosts in
  List.init hosts (fun x -> { src = x; dst = p.(x) })

let random_uniform prng ~hosts =
  List.init hosts (fun x ->
      let rec draw () =
        let d = Prng.int prng hosts in
        if d = x then draw () else d
      in
      { src = x; dst = draw () })

let staggered_prob prng ~shape ~p_edge ~p_pod =
  if p_edge < 0.0 || p_pod < 0.0 || p_edge +. p_pod > 1.0 then
    invalid_arg "Generate.staggered_prob: bad probabilities";
  let hosts = shape.Fat_tree.num_hosts in
  let per_edge = shape.Fat_tree.hosts_per_edge in
  let per_pod = per_edge * shape.Fat_tree.edges_per_pod in
  let pick_in lo count exclude =
    (* Uniform in [lo, lo+count) excluding [exclude]. *)
    let rec draw () =
      let d = lo + Prng.int prng count in
      if d = exclude then draw () else d
    in
    if count <= 1 then exclude else draw ()
  in
  List.init hosts (fun x ->
      let edge_base = x / per_edge * per_edge in
      let pod_base = x / per_pod * per_pod in
      let u = Prng.float prng 1.0 in
      let dst =
        if u < p_edge && per_edge > 1 then pick_in edge_base per_edge x
        else if u < p_edge +. p_pod && per_pod > per_edge then begin
          (* Same pod but a different edge switch. *)
          let rec draw () =
            let d = pod_base + Prng.int prng per_pod in
            if d / per_edge = x / per_edge then draw () else d
          in
          draw ()
        end
        else begin
          (* Outside the pod. *)
          let rec draw () =
            let d = Prng.int prng hosts in
            if d / per_pod = x / per_pod then draw () else d
          in
          if hosts > per_pod then draw () else pick_in 0 hosts x
        end
      in
      { src = x; dst })

type churn_spec = {
  flows : int;
  mean_interarrival : Time.t;
  mouse_bytes : int;
  elephant_bytes : int;
  elephant_every : int;
}

let default_churn =
  {
    flows = 2_000;
    mean_interarrival = Time.us 50;
    mouse_bytes = 4 * 1460;
    elephant_bytes = 2_000_000;
    elephant_every = 50;
  }

type arrival = { at : Time.t; src : int; dst : int; size : int }

let churn prng ~hosts ~spec =
  if hosts <= 1 then invalid_arg "Generate.churn: need at least 2 hosts";
  if spec.flows < 0 then invalid_arg "Generate.churn: negative flow count";
  if spec.mouse_bytes <= 0 || spec.elephant_bytes <= 0 then
    invalid_arg "Generate.churn: non-positive flow size";
  let mean_s = Time.to_float_s spec.mean_interarrival in
  let arrivals = ref [] in
  let t = ref Time.zero in
  (* explicit loop: each arrival consumes PRNG draws in a fixed order
     (gap, src, dst), so the trace is reproducible from the seed *)
  for i = 0 to spec.flows - 1 do
    t := !t + Time.of_float_s (Prng.exponential prng ~mean:mean_s);
    let src = Prng.int prng hosts in
    let rec draw () =
      let d = Prng.int prng hosts in
      if d = src then draw () else d
    in
    let dst = draw () in
    let size =
      if spec.elephant_every > 0 && (i + 1) mod spec.elephant_every = 0 then
        spec.elephant_bytes
      else spec.mouse_bytes
    in
    arrivals := { at = !t; src; dst; size } :: !arrivals
  done;
  List.rev !arrivals

let shuffle_orders prng ~hosts =
  Array.init hosts (fun h ->
      let peers =
        Array.of_list (List.filter (fun p -> p <> h) (List.init hosts Fun.id))
      in
      Prng.shuffle prng peers;
      peers)

