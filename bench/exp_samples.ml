(* Figures 5, 6 and 7 (§5.3): the structure of the sampled stream under
   oversubscription — burst lengths, inter-arrival lengths, and how the
   collector-observed gaps compare with the senders' own burstiness. *)

open Exp_common

(* Per-flow burst/inter-arrival decomposition of the collector's sample
   stream, in MTU units. A "burst" is a maximal run of consecutive
   samples of one flow; the inter-arrival length of a flow is the
   volume of other traffic between two of its bursts. *)
let analyze_stream samples flows_of_interest =
  let bursts = Hashtbl.create 16 in
  let inter = Hashtbl.create 16 in
  let current_key = ref None in
  let current_burst = ref 0 in
  let since_last = Hashtbl.create 16 in
  let mtu_of bytes = float_of_int bytes /. float_of_int P.mtu in
  let flush_burst () =
    match !current_key with
    | Some key ->
        Hashtbl.replace bursts key
          (mtu_of !current_burst
          :: Option.value ~default:[] (Hashtbl.find_opt bursts key))
    | None -> ()
  in
  List.iter
    (fun (key, wire_size) ->
      (match !current_key with
      | Some k when FK.equal k key -> current_burst := !current_burst + wire_size
      | _ ->
          flush_burst ();
          current_key := Some key;
          current_burst := wire_size);
      (* Account this packet as "foreign" for every other flow. *)
      List.iter
        (fun f ->
          if not (FK.equal f key) then
            Hashtbl.replace since_last f
              (wire_size
              + Option.value ~default:0 (Hashtbl.find_opt since_last f))
          else begin
            (match Hashtbl.find_opt since_last f with
            | Some gap when gap > 0 ->
                Hashtbl.replace inter f
                  (mtu_of gap
                  :: Option.value ~default:[] (Hashtbl.find_opt inter f))
            | _ -> ());
            Hashtbl.replace since_last f 0
          end)
        flows_of_interest)
    samples;
  flush_burst ();
  let all table =
    Hashtbl.fold (fun _ v acc -> v @ acc) table []
  in
  (all bursts, all inter)

let sampled_run ~flows ~seed ~duration =
  let hosts = 28 in
  let m = micro_testbed ~hosts ~seed () in
  let trace = trace_senders m.tb (List.init flows (fun i -> i)) in
  let stream = ref [] in
  Collector.set_tap m.collector (fun s ->
      match s.Collector.key with
      | Some key when s.Collector.payload > 0 ->
          stream := (key, s.Collector.packet.P.wire_size) :: !stream
      | _ -> ());
  let flow_handles =
    List.init flows (fun i -> saturating_flow m.tb ~src:i ~dst:(14 + i))
  in
  (* Warm up into steady state before collecting. *)
  Engine.run ~until:(Time.ms 5) m.tb.Testbed.engine;
  stream := [];
  trace.sends <- [];
  Engine.run ~until:(Time.ms 5 + duration) m.tb.Testbed.engine;
  let keys = List.map Flow.key flow_handles in
  (List.rev !stream, keys, trace)

let sender_gap_mtus trace keys rate =
  (* MTUs that could have been transmitted during each sender-side gap
     between consecutive departures of the same flow. *)
  let mtu_time = Rate.tx_time rate ~bytes_:P.mtu in
  List.concat_map
    (fun key ->
      let sends = sends_of_flow trace key in
      let rec gaps = function
        | (t1, _, _) :: ((t2, _, _) :: _ as rest) ->
            (float_of_int (t2 - t1) /. float_of_int mtu_time) :: gaps rest
        | _ -> []
      in
      gaps sends)
    keys

let print_cdf label values =
  let row (p, v) = [ Printf.sprintf "p%g" p; Printf.sprintf "%.2f" v ] in
  Printf.printf "  %s:\n" label;
  Table.print ~header:[ "pctile"; "MTUs" ] (List.map row (cdf_deciles values))

let run opts =
  section "Figure 5: CDF of sample burst lengths (13 flows)";
  let duration = if opts.full then Time.ms 60 else Time.ms 15 in
  let stream, keys, trace = sampled_run ~flows:13 ~seed:opts.seed ~duration in
  let bursts, inter = analyze_stream stream keys in
  print_cdf "burst length" bursts;
  let le_one =
    100.0
    *. float_of_int (List.length (List.filter (fun b -> b <= 1.01) bursts))
    /. float_of_int (max 1 (List.length bursts))
  in
  note "%.1f%% of bursts are <= 1 MTU (%d bursts observed)" le_one
    (List.length bursts);
  paper "over 96%% of bursts <= 1 MTU: round-robin samples one packet";
  paper "per flow at a time under saturation.";

  section "Figure 6: inter-arrival length vs number of flows";
  let rows =
    List.map
      (fun flows ->
        let stream, keys, _ =
          sampled_run ~flows ~seed:opts.seed
            ~duration:(if opts.full then Time.ms 30 else Time.ms 8)
        in
        let _, inter = analyze_stream stream keys in
        [
          string_of_int flows;
          Printf.sprintf "%.2f" (Stats.mean inter);
          string_of_int (flows - 1);
        ])
      [ 2; 4; 6; 8; 10; 12; 14 ]
  in
  Table.print ~header:[ "flows"; "mean inter-arrival (MTUs)"; "ideal n-1" ] rows;
  paper "inter-arrival grows linearly ~= NUMFLOWS-1 beyond 4 flows.";

  section "Figure 7: CDF of inter-arrival lengths (collector vs sender)";
  print_cdf "observed at collector" inter;
  let sender_gaps = sender_gap_mtus trace keys rate_10g in
  print_cdf "sender gap capacity" (List.filter (fun g -> g > 0.01) sender_gaps);
  let frac_le_13 =
    100.0
    *. float_of_int (List.length (List.filter (fun v -> v <= 13.0) inter))
    /. float_of_int (max 1 (List.length inter))
  in
  note "%.1f%% of inter-arrivals <= 13 MTUs" frac_le_13;
  paper "~85%% of inter-arrivals <= 13 MTUs with a long tail that";
  paper "matches the senders' own transmission gaps (TCP burstiness,";
  paper "not a Planck artifact)."
