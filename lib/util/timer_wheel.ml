(* A two-level hierarchical timer wheel layered over the binary min-heap.

   The wheel serves the short horizon with O(1) insert and cancel; far
   future entries overflow into the heap and migrate inward as the
   cursor advances. Every entry carries a strictly increasing sequence
   number (shared across all tiers), and slot contents are re-sorted by
   (key, seq) when their tick becomes current, so the global pop order
   is exactly the heap's: ascending key, FIFO among equal keys. The
   engine relies on that bit-identical ordering for determinism.

   Layout (default config): ticks are [1 lsl granularity_bits] ns wide.
   Level 0 spans [1 lsl l0_bits] ticks starting at the cursor; it never
   crosses a level-1 boundary, so each L0 slot holds exactly one tick.
   Level 1 spans [1 lsl l1_bits] L0-spans; each L1 slot holds one L0
   span and cascades into level 0 when the cursor reaches it. Anything
   beyond the L1 window goes to the overflow heap.

   Invariant (engine contract): keys are never below the last popped
   key, so the cursor only moves forward. Entries at or below the
   cursor's tick land in the sorted [due] list and pop immediately.

   Cancellation is lazy: handles flip to [Cancelled] in O(1) and are
   dropped when their slot drains. When cancelled residents outnumber
   live ones (past a floor), a compaction sweep reclaims them. *)

type config = { granularity_bits : int; l0_bits : int; l1_bits : int }

(* 1.024us ticks, ~4.2ms L0 horizon, ~17.2s L1 horizon. *)
let default_config = { granularity_bits = 10; l0_bits = 12; l1_bits = 12 }

(* Wheel disabled: every entry lives in the overflow heap. This is the
   pre-wheel scheduler, kept as the equivalence/bench baseline. *)
let heap_only = { granularity_bits = 0; l0_bits = 0; l1_bits = 0 }

type state = Pending | Cancelled | Fired

type 'a handle = {
  h_key : int;
  h_seq : int;
  h_value : 'a;
  mutable h_state : state;
}

(* ---- occupancy bitmaps (62 usable bits per word) ---- *)

let bits_per_word = 62

let ntz x =
  let x = ref (x land -x) and n = ref 0 in
  if !x land 0x7FFFFFFF = 0 then begin
    n := !n + 31;
    x := !x lsr 31
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let bits_create n = Array.make ((n + bits_per_word - 1) / bits_per_word) 0

let bits_set b i =
  let w = i / bits_per_word in
  b.(w) <- b.(w) lor (1 lsl (i mod bits_per_word))

let bits_clear b i =
  let w = i / bits_per_word in
  b.(w) <- b.(w) land lnot (1 lsl (i mod bits_per_word))

(* Lowest set index in [from, limit), or -1. *)
let bits_next b ~from ~limit =
  if from >= limit then -1
  else begin
    let rec scan w word =
      if word <> 0 then begin
        let i = (w * bits_per_word) + ntz word in
        if i < limit then i else -1
      end
      else
        let w = w + 1 in
        if w * bits_per_word >= limit then -1 else scan w b.(w)
    in
    let w0 = from / bits_per_word in
    scan w0 (b.(w0) land (-1 lsl (from mod bits_per_word)))
  end

let bits_iter b ~limit f =
  Array.iteri
    (fun w word ->
      let rec go word =
        if word <> 0 then begin
          let i = (w * bits_per_word) + ntz word in
          if i < limit then f i;
          go (word land (word - 1))
        end
      in
      go word)
    b

(* ---- the wheel ---- *)

type 'a t = {
  g_bits : int;
  l0_bits : int;
  w0 : int; (* L0 slot count; 0 = wheel disabled (heap-only) *)
  w1 : int;
  mask0 : int;
  mask1 : int;
  slots0 : 'a handle list array;
  slots1 : 'a handle list array;
  occ0 : int array;
  occ1 : int array;
  overflow : 'a handle Heap.t;
  mutable due : 'a handle list; (* sorted by (key, seq); ticks <= base0 *)
  mutable base0 : int; (* cursor, in L0 ticks *)
  mutable base1 : int; (* cursor, in L1 ticks; always base0 lsr l0_bits *)
  mutable next_seq : int;
  mutable live : int;
  mutable n_cancelled : int; (* cancelled entries still resident *)
  mutable n_total_cancelled : int;
  mutable n_compactions : int;
  on_compaction : unit -> unit;
}

let create ?(config = default_config) ?(on_compaction = fun () -> ()) () =
  if config.granularity_bits < 0 || config.granularity_bits > 30 then
    invalid_arg "Timer_wheel.create: granularity_bits out of range";
  if config.l0_bits < 0 || config.l0_bits > 20 then
    invalid_arg "Timer_wheel.create: l0_bits out of range";
  if config.l1_bits < 0 || config.l1_bits > 20 then
    invalid_arg "Timer_wheel.create: l1_bits out of range";
  if config.l0_bits > 0 && config.l1_bits = 0 then
    invalid_arg "Timer_wheel.create: l1_bits must be positive with a wheel";
  let w0 = if config.l0_bits = 0 then 0 else 1 lsl config.l0_bits in
  let w1 = if w0 = 0 then 0 else 1 lsl config.l1_bits in
  {
    g_bits = config.granularity_bits;
    l0_bits = config.l0_bits;
    w0;
    w1;
    mask0 = w0 - 1;
    mask1 = w1 - 1;
    slots0 = Array.make (max 1 w0) [];
    slots1 = Array.make (max 1 w1) [];
    occ0 = bits_create (max 1 w0);
    occ1 = bits_create (max 1 w1);
    overflow = Heap.create ();
    due = [];
    base0 = 0;
    base1 = 0;
    next_seq = 0;
    live = 0;
    n_cancelled = 0;
    n_total_cancelled = 0;
    n_compactions = 0;
    on_compaction;
  }

let length t = t.live
let is_empty t = t.live = 0
let cancelled_resident t = t.n_cancelled
let total_cancelled t = t.n_total_cancelled
let compactions t = t.n_compactions
let key h = h.h_key
let seq h = h.h_seq
let is_pending h = match h.h_state with Pending -> true | Cancelled | Fired -> false

let handle_before a b =
  a.h_key < b.h_key || (a.h_key = b.h_key && a.h_seq < b.h_seq)

let rec due_insert l h =
  match l with
  | [] -> [ h ]
  | x :: _ when handle_before h x -> h :: l
  | x :: rest -> x :: due_insert rest h

let handle_order a b =
  if a.h_key = b.h_key then Int.compare a.h_seq b.h_seq
  else Int.compare a.h_key b.h_key

(* Place a handle in the tier its tick belongs to. L0 only holds ticks
   inside the cursor's current L1 span, so an L0 slot never aliases two
   different ticks. *)
let route t h =
  if t.w0 = 0 then Heap.add t.overflow ~key:h.h_key h
  else begin
    let tick = h.h_key asr t.g_bits in
    if tick <= t.base0 then t.due <- due_insert t.due h
    else begin
      let l1 = tick asr t.l0_bits in
      if l1 = t.base1 then begin
        let s = tick land t.mask0 in
        t.slots0.(s) <- h :: t.slots0.(s);
        bits_set t.occ0 s
      end
      else if l1 - t.base1 < t.w1 then begin
        let s = l1 land t.mask1 in
        t.slots1.(s) <- h :: t.slots1.(s);
        bits_set t.occ1 s
      end
      else Heap.add t.overflow ~key:h.h_key h
    end
  end

let add t ~key value =
  let h = { h_key = key; h_seq = t.next_seq; h_value = value; h_state = Pending } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  if t.w0 > 0 && t.live = 1 && t.n_cancelled = 0 then
    (* Empty wheel: the sole resident entry parks directly in [due]
       (possibly ahead of the cursor — the one place that is allowed),
       skipping the slot insert on add and the bitmap scan on pop. This
       is the transient add/pop rhythm the engine settles into between
       bursts, where the wheel was 3x slower than the bare heap
       (BENCH_4). The cursor does not move, so ordering state is
       untouched. *)
    t.due <- [ h ]
  else begin
    (* A parked ahead-of-cursor singleton only stays in [due] while it
       is alone; route it back through the tiers before adding a second
       entry, restoring the [due]-holds-only-reached-ticks invariant
       that pop ordering relies on. *)
    (match t.due with
    | [ h0 ] when t.w0 > 0 && h0.h_key asr t.g_bits > t.base0 ->
        t.due <- [];
        route t h0
    | _ -> ());
    route t h
  end;
  h

(* Drop dead entries off the overflow head so its min is a live entry. *)
let rec overflow_peek t =
  match Heap.peek t.overflow with
  | Some (_, h) when not (is_pending h) ->
      ignore (Heap.pop t.overflow);
      t.n_cancelled <- t.n_cancelled - 1;
      overflow_peek t
  | other -> other

(* Pull overflow entries that now fall inside the L1 window. Heap pop
   order is (key, seq), and [route] preserves per-slot resorting, so
   migration cannot reorder equal keys. *)
let rec migrate_overflow t =
  match overflow_peek t with
  | Some (k, _) when (k asr t.g_bits) asr t.l0_bits < t.base1 + t.w1 -> (
      match Heap.pop t.overflow with
      | Some (_, h) ->
          route t h;
          migrate_overflow t
      | None -> ())
  | Some _ | None -> ()

let keep_live t h =
  match h.h_state with
  | Pending -> true
  | Cancelled ->
      t.n_cancelled <- t.n_cancelled - 1;
      false
  | Fired -> assert false (* fired entries are never resident *)

let drain_slot0 t ~s ~tick =
  t.base0 <- tick;
  let entries = t.slots0.(s) in
  t.slots0.(s) <- [];
  bits_clear t.occ0 s;
  t.due <- List.sort handle_order (List.filter (keep_live t) entries)

let cascade_l1 t ~s ~l1_tick =
  t.base1 <- l1_tick;
  t.base0 <- l1_tick lsl t.l0_bits;
  let entries = t.slots1.(s) in
  t.slots1.(s) <- [];
  bits_clear t.occ1 s;
  migrate_overflow t;
  List.iter (fun h -> if keep_live t h then route t h) entries

(* Advance the cursor until [due] has a live head. Returns false when
   nothing live is left anywhere. *)
let rec ensure_due t =
  match t.due with
  | h :: rest -> (
      match h.h_state with
      | Pending -> true
      | Cancelled ->
          t.due <- rest;
          t.n_cancelled <- t.n_cancelled - 1;
          ensure_due t
      | Fired -> assert false)
  | [] ->
      t.live > 0
      && begin
           let r0 = t.base0 land t.mask0 in
           let s = bits_next t.occ0 ~from:(r0 + 1) ~limit:t.w0 in
           if s >= 0 then begin
             drain_slot0 t ~s ~tick:((t.base1 lsl t.l0_bits) lor s);
             ensure_due t
           end
           else begin
             (* L0 exhausted: the next event is in the earliest occupied
                L1 slot, which always precedes anything in overflow. *)
             let r1 = t.base1 land t.mask1 in
             let s1 =
               match bits_next t.occ1 ~from:(r1 + 1) ~limit:t.w1 with
               | -1 -> bits_next t.occ1 ~from:0 ~limit:r1
               | s1 -> s1
             in
             if s1 >= 0 then begin
               let delta = (s1 - r1 + t.w1) land t.mask1 in
               cascade_l1 t ~s:s1 ~l1_tick:(t.base1 + delta);
               ensure_due t
             end
             else begin
               match overflow_peek t with
               | None -> false
               | Some (k, _) ->
                   (* Jump the window to the overflow head. *)
                   let l1 = (k asr t.g_bits) asr t.l0_bits in
                   t.base1 <- l1;
                   t.base0 <- l1 lsl t.l0_bits;
                   migrate_overflow t;
                   ensure_due t
             end
           end
         end

let rec pop_heap_only t =
  match Heap.pop t.overflow with
  | None -> None
  | Some (k, h) -> (
      match h.h_state with
      | Cancelled ->
          t.n_cancelled <- t.n_cancelled - 1;
          pop_heap_only t
      | Pending ->
          h.h_state <- Fired;
          t.live <- t.live - 1;
          Some (k, h.h_value)
      | Fired -> assert false)

let pop t =
  if t.w0 = 0 then pop_heap_only t
  else if ensure_due t then begin
    match t.due with
    | h :: rest ->
        t.due <- rest;
        h.h_state <- Fired;
        t.live <- t.live - 1;
        Some (h.h_key, h.h_value)
    | [] -> assert false
  end
  else None

let min_key t =
  if t.w0 = 0 then
    match overflow_peek t with Some (k, _) -> Some k | None -> None
  else if ensure_due t then begin
    match t.due with h :: _ -> Some h.h_key | [] -> assert false
  end
  else None

(* Sweep cancelled residents out of every tier. The overflow heap is
   rebuilt by draining in (key, seq) order and re-adding survivors, so
   their relative order — including equal-key FIFO — is preserved. *)
let compact t =
  t.n_compactions <- t.n_compactions + 1;
  t.due <- List.filter (keep_live t) t.due;
  if t.w0 > 0 then begin
    bits_iter t.occ0 ~limit:t.w0 (fun s ->
        let kept = List.filter (keep_live t) t.slots0.(s) in
        t.slots0.(s) <- kept;
        match kept with [] -> bits_clear t.occ0 s | _ :: _ -> ());
    bits_iter t.occ1 ~limit:t.w1 (fun s ->
        let kept = List.filter (keep_live t) t.slots1.(s) in
        t.slots1.(s) <- kept;
        match kept with [] -> bits_clear t.occ1 s | _ :: _ -> ())
  end;
  let rec drain acc =
    match Heap.pop t.overflow with
    | None -> List.rev acc
    | Some (_, h) -> drain (if keep_live t h then h :: acc else acc)
  in
  List.iter (fun h -> Heap.add t.overflow ~key:h.h_key h) (drain []);
  t.on_compaction ()

let compaction_floor = 64

let cancel t h =
  match h.h_state with
  | Cancelled | Fired -> false
  | Pending ->
      h.h_state <- Cancelled;
      t.live <- t.live - 1;
      t.n_cancelled <- t.n_cancelled + 1;
      t.n_total_cancelled <- t.n_total_cancelled + 1;
      if t.n_cancelled > compaction_floor && t.n_cancelled > t.live then
        compact t;
      true
