(* Figure 10 (§5.4): throughput estimation during slow start — the
   jittery 200 us rolling average vs Planck's burst-clustered estimator.
   Figure 11: estimation error vs oversubscription factor, against
   ground truth recovered from sender-side traces. *)

open Exp_common
module Rate_estimator = Planck_collector.Rate_estimator

let run_fig10 opts =
  section "Figure 10: estimating a starting TCP flow";
  let m = micro_testbed ~hosts:4 ~seed:opts.seed () in
  let rolling = Rate_estimator.Rolling.create () in
  let rolling_series = ref [] in
  let planck_series = ref [] in
  let t0 = ref None in
  Collector.set_tap m.collector (fun s ->
      match s.Collector.seq32 with
      | Some seq32 when s.Collector.payload > 0 ->
          if !t0 = None then t0 := Some s.Collector.rx;
          (match
             Rate_estimator.Rolling.update rolling ~time:s.Collector.rx ~seq32
           with
          | Some rate -> rolling_series := (s.Collector.rx, rate) :: !rolling_series
          | None -> ())
      | _ -> ());
  Collector.on_estimate m.collector (fun _key rate time ->
      planck_series := (time, rate) :: !planck_series);
  ignore (saturating_flow m.tb ~src:0 ~dst:1);
  Engine.run ~until:(Time.ms 14) m.tb.Testbed.engine;
  let base = Option.value ~default:0 !t0 in
  (* Print on a 400 us grid: the rolling series as its min/max within
     each cell (its jitter is sub-cell), Planck as the latest value. *)
  let series l = List.rev !l in
  let cell = Time.us 400 in
  let in_cell series t =
    List.filter_map
      (fun (ts, r) ->
        if ts - base > t - cell && ts - base <= t then Some (Rate.to_gbps r)
        else None)
      series
  in
  let latest_at series t =
    List.fold_left
      (fun acc (ts, r) -> if ts - base <= t then Some r else acc)
      None series
  in
  let grid = List.init 30 (fun i -> (i + 1) * cell) in
  let rows =
    List.map
      (fun t ->
        let rolling_cell = in_cell (series rolling_series) t in
        let rolling =
          match rolling_cell with
          | [] -> "-"
          | xs ->
              Printf.sprintf "%.1f-%.1f"
                (List.fold_left min infinity xs)
                (List.fold_left max neg_infinity xs)
        in
        let planck =
          match latest_at (series planck_series) t with
          | Some r -> Printf.sprintf "%.2f" (Rate.to_gbps r)
          | None -> "-"
        in
        [ Printf.sprintf "%.1f" (ms t); rolling; planck ])
      grid
  in
  Table.print
    ~header:[ "t (ms)"; "rolling min-max (Gbps)"; "Planck (Gbps)" ]
    rows;
  let jitter series =
    let rates = List.map (fun (_, r) -> Rate.to_gbps r) series in
    Stats.stddev rates
  in
  note "stddev: rolling %.2f Gbps vs Planck %.2f Gbps"
    (jitter (series rolling_series))
    (jitter (series planck_series));
  paper "(a) the rolling average swings between 0 and ~12 Gbps during";
  paper "slow start; (b) the burst-clustered estimator ramps smoothly."

(* Ground truth: the same burst-clustered estimator applied to the
   sender's own (tcpdump-style) trace — exactly the paper's method. *)
let ground_truth_series trace key =
  let est = Rate_estimator.create () in
  List.filter_map
    (fun (t, seq, _payload) ->
      match Rate_estimator.update est ~time:t ~seq32:seq with
      | Some rate -> Some (t, rate)
      | None -> None)
    (sends_of_flow trace key)

let mean_relative_error ~truth ~estimates =
  (* Pair each collector estimate with the ground-truth value current
     at its timestamp. *)
  let errors =
    List.filter_map
      (fun (t, est) ->
        let gt =
          List.fold_left
            (fun acc (ts, r) -> if ts <= t then Some r else acc)
            None truth
        in
        match gt with
        | Some gt when gt > 0.0 -> Some (abs_float (est -. gt) /. gt)
        | _ -> None)
      estimates
  in
  Stats.mean errors

let run_fig11 opts =
  section "Figure 11: rate estimation error vs oversubscription factor";
  let duration = if opts.full then Time.ms 80 else Time.ms 40 in
  (* Slow-start transients are excluded: the paper measures established
     flows (sender-side burst timestamps exceed wire rate during the
     ramp, and buffered samples lag it). *)
  let warmup = Time.ms 10 in
  let rows =
    List.map
      (fun flows ->
        let m = micro_testbed ~hosts:28 ~seed:opts.seed () in
        let trace = trace_senders m.tb (List.init flows Fun.id) in
        let estimates = Hashtbl.create 16 in
        Collector.on_estimate m.collector (fun key rate time ->
            Hashtbl.replace estimates key
              ((time, rate)
              :: Option.value ~default:[] (Hashtbl.find_opt estimates key)));
        let handles =
          List.init flows (fun i -> saturating_flow m.tb ~src:i ~dst:(14 + i))
        in
        Engine.run ~until:duration m.tb.Testbed.engine;
        let errors =
          List.filter_map
            (fun f ->
              let key = Flow.key f in
              match Hashtbl.find_opt estimates key with
              | Some ests ->
                  let truth = ground_truth_series trace key in
                  let settled =
                    List.filter (fun (t, _) -> t >= warmup) (List.rev ests)
                  in
                  let err = mean_relative_error ~truth ~estimates:settled in
                  if Float.is_nan err then None else Some err
              | None -> None)
            handles
        in
        [
          Printf.sprintf "%d.0" flows;
          Printf.sprintf "%.1f" (100.0 *. Stats.mean errors);
        ])
      [ 1; 2; 3; 4; 6; 8; 10; 12; 14 ]
  in
  Table.print ~header:[ "factor"; "mean relative error (%)" ] rows;
  paper "roughly constant ~3%% error regardless of oversubscription."

let run opts =
  run_fig10 opts;
  run_fig11 opts
