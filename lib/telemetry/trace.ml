module Time = Planck_util.Time
module Ring = Planck_util.Ring

type phase = Span_begin | Span_end | Instant

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type event = {
  ts : Time.t;
  cat : string;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

type t = {
  mutable on : bool;
  ring : event Ring.t;
  mutable evicted : int;
}

let create ?(capacity = 32768) ?(enabled = true) () =
  { on = enabled; ring = Ring.create ~capacity; evicted = 0 }

(* The process-wide trace every built-in tracepoint records into.
   Disabled by default, like Metrics.default. *)
let default = create ~enabled:false ()

let set_enabled t on = t.on <- on
let enabled t = t.on

(* Bounded: when full, evict the oldest record so a long run keeps its
   most recent window (same policy as the collector's vantage ring). *)
let record t ev =
  if t.on then begin
    if Ring.is_full t.ring then begin
      ignore (Ring.pop t.ring);
      t.evicted <- t.evicted + 1
    end;
    ignore (Ring.push t.ring ev)
  end

let instant t ~now ~cat ~name ?(args = []) () =
  record t { ts = now; cat; name; phase = Instant; args }

let span_begin t ~now ~cat ~name ?(args = []) () =
  record t { ts = now; cat; name; phase = Span_begin; args }

let span_end t ~now ~cat ~name ?(args = []) () =
  record t { ts = now; cat; name; phase = Span_end; args }

let with_span t ~clock ~cat ~name ?(args = []) f =
  if not t.on then f ()
  else begin
    span_begin t ~now:(clock ()) ~cat ~name ~args ();
    Fun.protect
      ~finally:(fun () -> span_end t ~now:(clock ()) ~cat ~name ())
      f
  end

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let capacity t = Ring.capacity t.ring
let evicted t = t.evicted

let clear t =
  Ring.clear t.ring;
  t.evicted <- 0

(* ---- Chrome trace_event export ---- *)

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s
  | Bool b -> Json.Bool b

let ph_of_phase = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"

(* trace_event timestamps are microseconds as doubles; integer
   nanoseconds up to ~104 days stay exact after /1000 in a double, so
   ts round-trips through the JSON (tests rely on this). *)
let json_of_event ~pid ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("ph", Json.String (ph_of_phase ev.phase));
      ("ts", Json.Float (float_of_int ev.ts /. 1000.0));
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
    ]
  in
  let scope =
    (* Instant events carry a scope; "g" (global) renders as a full
       vertical line in the viewer. *)
    match ev.phase with Instant -> [ ("s", Json.String "g") ] | _ -> []
  in
  let args =
    match ev.args with
    | [] -> []
    | args ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Json.Obj (base @ scope @ args)

let to_chrome_json t =
  (* Spans recorded after the fact (e.g. a begin stamped with an earlier
     detection time) may be out of order in the ring; the viewer wants
     ascending timestamps, and a stable sort keeps begin-before-end for
     equal stamps. *)
  let evs =
    List.stable_sort (fun a b -> Int.compare a.ts b.ts) (events t)
  in
  (* Each category renders as its own Perfetto process: assign pids by
     first appearance and name them with M-phase process_name metadata,
     so exported traces group by subsystem instead of one flat lane. *)
  let cats =
    List.fold_left
      (fun cats ev -> if List.mem ev.cat cats then cats else ev.cat :: cats)
      [] evs
    |> List.rev
  in
  let pids = List.mapi (fun i cat -> (cat, i + 1)) cats in
  let pid_of cat = List.assoc cat pids in
  let metadata =
    List.map
      (fun (cat, pid) ->
        Json.Obj
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("args", Json.Obj [ ("name", Json.String cat) ]);
          ])
      pids
  in
  Json.to_string
    (Json.Obj
       [
         ( "traceEvents",
           Json.List
             (metadata
             @ List.map (fun ev -> json_of_event ~pid:(pid_of ev.cat) ev) evs)
         );
         ("displayTimeUnit", Json.String "ns");
       ])
