(** Polling-based traffic engineering — the Hedera-style comparators
    ("Poll-1s", "Poll-0.1s") of paper §7.1.

    Every [period] the controller reads the OpenFlow flow counters of
    every edge switch (paying the control channel's read latency),
    derives flow rates from counter deltas, and runs {e Global First
    Fit}: flows above the elephant threshold, largest first, are placed
    on the first pre-installed path with enough spare capacity for
    their measured rate. Placements that differ from a flow's current
    route trigger a reroute over the same mechanism as PlanckTE, so the
    only difference under test is measurement latency. *)

type config = {
  period : Planck_util.Time.t;
  elephant_threshold : float;
      (** ignore flows below this fraction of link rate (Hedera: 0.1) *)
  mechanism : Planck_controller.Reroute.mechanism;
}

val default_config : config
(** 1 s period, 0.1 threshold, ARP mechanism. *)

type t

val create :
  Planck_netsim.Engine.t ->
  routing:Planck_topology.Routing.t ->
  channel:Planck_openflow.Control_channel.t ->
  link_rate:Planck_util.Rate.t ->
  ?config:config ->
  unit ->
  t
(** Attaches flow counters to every edge switch (switches with at least
    one host-facing port) and starts the polling loop. *)

val polls : t -> int
val reroutes : t -> int
