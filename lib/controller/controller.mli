(** The base Planck SDN controller (paper §3.3, §4.1).

    Construction performs the controller's Planck-specific setup: it
    spins up one collector per monitored switch, installs the mirroring
    configuration, and shares the routing state with every collector
    (the input/output-port inference of §4.2 depends on it). It then
    exports the two controller capabilities applications use:

    - low-latency statistics queries, answered by forwarding to the
      collectors (a drop-in replacement for OpenFlow counter polling);
    - event subscription, via {!Te.create} or directly on the
      collectors.

    Routes in this reproduction are pre-installed and static (PAST +
    shadow MACs), so the route-update broadcast to collectors is a
    no-op after setup; the paper's quiescence rule ("refrain from using
    new routes until collectors know them") is satisfied trivially. *)

type t

val create :
  Planck_netsim.Engine.t ->
  routing:Planck_topology.Routing.t ->
  link_rate:Planck_util.Rate.t ->
  ?channel_config:Planck_openflow.Control_channel.config ->
  ?collector_config:Planck_collector.Collector.config ->
  prng:Planck_util.Prng.t ->
  unit ->
  t
(** Attach a collector to every switch with a reserved monitor port. *)

val engine : t -> Planck_netsim.Engine.t
val routing : t -> Planck_topology.Routing.t
val channel : t -> Planck_openflow.Control_channel.t
val collectors : t -> Planck_collector.Collector.t list
val collector_for : t -> switch:int -> Planck_collector.Collector.t option

(** {2 Fast-path statistics queries (forwarded to collectors)} *)

val link_utilization : t -> switch:int -> port:int -> Planck_util.Rate.t

val flow_rate :
  t -> Planck_packet.Flow_key.t -> Planck_util.Rate.t option
(** First collector that knows the flow answers. *)

val start_te : t -> ?config:Te.config -> unit -> Te.t
(** Launch the traffic-engineering application on this controller. *)
