(** Parsing, suppression handling, and the file-tree driver. *)

val lint_source :
  ?disable:string list ->
  ?extra:Lint_finding.t list ->
  path:string ->
  source:string ->
  unit ->
  Lint_finding.t list * Lint_finding.t list
(** [lint_source ~path ~source ()] parses [source] as an implementation
    and returns [(kept, suppressed)]: findings that survive the file's
    [(* planck-lint: allow ... *)] directives, and those the directives
    removed. An [allow] directive covers its own line and the line
    below; [allow-file] covers the whole file. [extra] merges file-level
    findings (e.g. missing-mli, deep-tier findings) into the same
    suppression pass; [disable] drops AST findings by rule id before
    partitioning (used to switch off [Lint_rules.deep_replaced] on
    deep-covered files). [path] is repo-relative and drives rule
    scoping; the file need not exist on disk. *)

val partition_mli_findings :
  source:string ->
  Lint_finding.t list ->
  Lint_finding.t list * Lint_finding.t list
(** Apply an [.mli] file's suppression directives to deep findings
    attached to it (dead-export); no AST pass is run. *)

type result = {
  kept : Lint_finding.t list;  (** unsuppressed, sorted by location *)
  suppressed_count : int;
  baselined_count : int;  (** deep findings absorbed by the baseline *)
  files_linted : int;
  deep_units : int;  (** cmt units indexed; 0 on a syntactic-only run *)
}

type deep_options = {
  cmt_dirs : string list;  (** roots scanned recursively for .cmt/.cmti *)
  baseline_file : string option;
      (** optional [<rule> <symbol> -- justification] baseline; a
          missing file is treated as empty, a malformed one fails *)
  dead_export : bool;
      (** run the dead-export analysis — requires the cmt set to cover
          every referencing unit, or absences fabricate dead exports *)
  shared_state_out : string option;
      (** write the shard-confinement inventory to this path; a [.json]
          suffix selects the machine-readable artifact format, anything
          else the committed text format of
          [tools/lint/shared_state.txt] *)
  ownership_out : string option;
      (** same for the ownership-tier inventory (transfer sites, SPSC
          roles, blocking reaches) of [tools/lint/ownership.txt] *)
}

val lint_paths :
  ?deep:deep_options -> ?only_rules:string list -> string list -> result
(** Walk files and directories (recursively; [_build] and dotfiles are
    skipped), lint every [.ml], and apply the missing-mli rule using the
    sibling [.mli] set. Paths are reported as given, so run from the
    repo root with [lib bin bench examples]. With [deep], the cmt index
    is loaded first: files it covers lose the [Lint_rules.deep_replaced]
    syntactic rules and gain the deep findings instead (inline
    suppressions apply to both tiers); files without a cmt keep the
    full syntactic tier. Deep findings on files outside the walked set
    are dropped. If no cmt artifacts are found the run degrades to
    syntactic with a warning on stderr. A non-empty [only_rules]
    restricts [kept] to those rule ids after suppression and baseline
    handling — counters still reflect the full run. *)
