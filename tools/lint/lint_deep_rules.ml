(* The deep (typed, whole-repo) rule tier.

   Where the syntactic tier scopes "hot" by hot-dir × hot-stem filename
   heuristics, this tier computes the hot set as a forward reachability
   closure over the real call graph, seeded from the per-packet /
   per-event roots (switch ingress, collector sample path, engine and
   timer-wheel dispatch, tcp segment handling). A cold-named helper the
   timer wheel actually calls per event is hot here; a hot-named
   function nothing per-packet reaches is not.

   Poly-compare is type-aware: we look at the *instantiated* type of the
   compare/=/hash argument, so [compare (a : int) b] is clean without
   any shadow table, and [=] on a structured type only fires where it
   can actually run per packet.

   Findings reuse the syntactic rule ids (hot-alloc, hot-schedule,
   poly-compare, float-equality) so existing inline suppressions carry
   over, plus the new dead-export rule. Determinism taint lives in
   [Lint_taint]. *)

module SS = Set.Make (String)
module F = Lint_finding
module Ix = Lint_cmt_index

(* Per-packet / per-event entry points (PAPER.md §4: the mirror→
   collector sample path; DESIGN.md: engine dispatch). Roots that do
   not exist in the index simply contribute nothing. *)
let default_hot_roots =
  [
    (* switch data plane *)
    "Planck_netsim__Switch.ingress";
    "Planck_netsim__Switch.inject";
    "Planck_netsim__Switch.on_pipeline";
    "Planck_netsim__Sink.ingress";
    "Planck_netsim__Sink.drain";
    "Planck_netsim__Host.deliver";
    "Planck_netsim__Txport.transmit";
    (* collector sample path *)
    "Planck_collector__Collector.process";
    (* sketch tier: the collector reaches these through a backend
       record, which the callgraph cannot see through — root them *)
    "Planck_sketch__Count_min.update";
    "Planck_sketch__Tiered_table.sample";
    "Planck_sketch__Tiered_table.tick";
    (* tcp segment handling *)
    "Planck_tcp__Flow.sender_receive";
    "Planck_tcp__Flow.receiver_receive";
    "Planck_tcp__Flow.on_timeout";
    "Planck_tcp__Flow.try_send";
    (* engine / timer-wheel dispatch *)
    "Planck_netsim__Engine.step";
    "Planck_util__Timer_wheel.add";
    "Planck_util__Timer_wheel.pop";
    "Planck_util__Timer_wheel.cancel";
    (* self-profiling spans bracket every hot path above; the disabled
       branch must stay allocation-free *)
    "Planck_telemetry__Profile.enter";
    "Planck_telemetry__Profile.exit";
  ]

type t = {
  ix : Ix.t;
  hot : Lint_callgraph.closure;
  roots : string list;
}

let prepare ?(hot_roots = default_hot_roots) ix =
  { ix; hot = Lint_callgraph.forward ix ~roots:hot_roots; roots = hot_roots }

let index t = t.ix
let roots t = t.roots
let is_hot t id = Lint_callgraph.mem t.hot id
let hot_set t = Lint_callgraph.elements t.hot
let hot_chain t id = Lint_callgraph.chain_string t.hot id

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_lib file = starts_with ~prefix:"lib/" file

let mk ~rule ~symbol (e : Ix.event) message =
  F.v ~symbol ~rule ~severity:F.Error ~file:e.Ix.e_file ~line:e.Ix.e_line
    ~col:e.Ix.e_col message

let shape_unsafe = function
  | Ix.Imm -> false
  | Ix.TFloat | Ix.TString | Ix.TPoly | Ix.TOther _ -> true

(* structured or still-polymorphic: the shapes where structural =/<>
   walks unbounded structure (strings excluded — String =/<> is
   deterministic, allocation-free and idiomatic) *)
let shape_structured = function
  | Ix.TPoly | Ix.TOther _ -> true
  | Ix.Imm | Ix.TFloat | Ix.TString -> false

let event_findings t =
  List.filter_map
    (fun (e : Ix.event) ->
      let hot = is_hot t e.Ix.e_def in
      match e.Ix.e_kind with
      | Ix.Poly_fun { op; shape; rendered } ->
          if in_lib e.Ix.e_file && shape_unsafe shape then
            Some
              (mk ~rule:"poly-compare" ~symbol:e.Ix.e_def e
                 (Printf.sprintf
                    "%s instantiated at %s walks structure at runtime; use \
                     the type's explicit comparator/hash (Int.compare, \
                     Float.compare, String.compare, Flow_key.hash, ...)"
                    op rendered))
          else None
      | Ix.Poly_eq { op; shape = Ix.TFloat; constantish = _; _ } ->
          if in_lib e.Ix.e_file then
            Some
              (mk ~rule:"float-equality" ~symbol:e.Ix.e_def e
                 (Printf.sprintf
                    "(%s) instantiated at float is a structural compare on \
                     bit patterns; use Float.equal, an epsilon, or an \
                     ordering test"
                    op))
          else None
      | Ix.Poly_eq { op; shape; rendered; constantish } ->
          if hot && shape_structured shape && not constantish then
            Some
              (mk ~rule:"poly-compare" ~symbol:e.Ix.e_def e
                 (Printf.sprintf
                    "structural (%s) at %s on the per-packet path (%s); \
                     write the field-wise equality"
                    op rendered (hot_chain t e.Ix.e_def)))
          else None
      | Ix.Alloc name ->
          if hot && in_lib e.Ix.e_file && not e.Ix.e_in_raise then
            Some
              (mk ~rule:"hot-alloc" ~symbol:e.Ix.e_def e
                 (Printf.sprintf
                    "%s allocates on the per-packet path (%s); format off \
                     the hot path or guard and suppress with a justification"
                    name (hot_chain t e.Ix.e_def)))
          else None
      | Ix.Schedule_closure name ->
          if hot && in_lib e.Ix.e_file then
            Some
              (mk ~rule:"hot-schedule" ~symbol:e.Ix.e_def e
                 (Printf.sprintf
                    "closure literal passed to %s on the per-packet path \
                     (%s); preallocate an Engine.Timer.t and reschedule it"
                    name (hot_chain t e.Ix.e_def)))
          else None
      | Ix.Source _ -> None
      | Ix.Ref_op _ -> None (* consumed by Lint_domain_rules *)
      | Ix.Blocking _ -> None (* consumed by Lint_ownership_rules *))
    (Ix.events t.ix)

(* ---- dead-export ---- *)

let dead_export_findings t =
  List.filter_map
    (fun (x : Ix.export) ->
      if not (in_lib x.Ix.x_file) then None
      else if Ix.functor_used_unit t.ix x.Ix.x_unit then None
      else
        let refs = Ix.referencing_units t.ix x.Ix.x_id in
        let external_ref = List.exists (fun u -> u <> x.Ix.x_unit) refs in
        if external_ref then None
        else
          Some
            (F.v ~symbol:x.Ix.x_id ~rule:"dead-export" ~severity:F.Error
               ~file:x.Ix.x_file ~line:x.Ix.x_line ~col:0
               (Printf.sprintf
                  "%s is exported by its .mli but never referenced outside \
                   its module; delete the export or baseline it with a \
                   justification"
                  x.Ix.x_id)))
    (Ix.exports t.ix)

let findings ?(dead_export = true) t =
  event_findings t
  @ (if dead_export then dead_export_findings t else [])
  @ Lint_taint.report t.ix

(* ---- baseline ---- *)

(* Format: one entry per line, [<rule> <symbol> -- justification];
   blank lines and [#] comments ignored. Matching is on (rule, symbol)
   so entries survive line-number churn. *)

let find_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go 0

let parse_baseline_line ln line =
  let line =
    match String.index_opt (String.trim line) '#' with
    | Some 0 -> ""
    | _ -> line
  in
  if String.trim line = "" then Ok None
  else
    let malformed () =
      Error
        (Printf.sprintf "line %d: expected '<rule> <symbol> -- justification'"
           ln)
    in
    match find_sub line " -- " with
    | None -> malformed ()
    | Some i ->
        let body = String.trim (String.sub line 0 i) in
        let just =
          String.trim
            (String.sub line (i + 4) (String.length line - i - 4))
        in
        if just = "" then malformed ()
        else (
          match String.index_opt body ' ' with
          | Some j ->
              let rule = String.sub body 0 j in
              let symbol =
                String.trim
                  (String.sub body (j + 1) (String.length body - j - 1))
              in
              if rule = "" || symbol = "" then malformed ()
              else Ok (Some (rule, symbol))
          | None -> malformed ())

let load_baseline path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go ln acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line -> (
                match parse_baseline_line ln line with
                | Ok None -> go (ln + 1) acc
                | Ok (Some entry) -> go (ln + 1) (entry :: acc)
                | Error e -> Error (path ^ ": " ^ e))
          in
          go 1 [])

let apply_baseline entries findings =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (r, s) -> Hashtbl.replace tbl (r, s) ()) entries;
  List.partition
    (fun (f : F.t) ->
      f.F.symbol = "" || not (Hashtbl.mem tbl (f.F.rule, f.F.symbol)))
    findings
