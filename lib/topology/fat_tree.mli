(** Three-tier k-ary fat-tree builder (Al-Fares et al.), the paper's
    testbed topology.

    For even [k]: [k] pods of [k/2] edge and [k/2] aggregation switches,
    [(k/2)²] cores, [k³/4] hosts. Every switch gets one extra reserved
    monitor port for Planck sampling — exactly how the paper carved its
    16-host testbed out of 5-port logical switches (§7.1, k = 4).

    Each core switch defines a unique destination-oriented spanning
    tree, which is how alternate (shadow-MAC) routes are provisioned:
    host [d]'s tree for alternate [a] goes through core
    [(d + a) mod cores]. *)

type shape = {
  k : int;
  pods : int;
  cores : int;
  aggs_per_pod : int;
  edges_per_pod : int;
  hosts_per_edge : int;
  num_switches : int;
  num_hosts : int;
}

val shape : k:int -> shape
(** Raises [Invalid_argument] if [k] is odd or [< 2]. *)

(** Switch-id layout: cores first, then aggregations pod-major, then
    edges pod-major. *)

val core_id : shape -> int -> int
val agg_id : shape -> pod:int -> int -> int
val edge_id : shape -> pod:int -> int -> int
val host_of : shape -> pod:int -> edge:int -> slot:int -> int
val pod_of_host : shape -> int -> int

val default_core_prop_delay : Planck_util.Time.t
(** 5 µs — roughly a kilometre of fibre up to the core tier. Not
    applied implicitly; callers opt in via [core_prop_delay] so a run
    is comparable across shard counts only when they pass the same
    value. *)

val build :
  Planck_netsim.Engine.t ->
  k:int ->
  switch_config:Planck_netsim.Switch.config ->
  link_rate:Planck_util.Rate.t ->
  ?host_stack:Planck_netsim.Host.stack ->
  ?sharding:Fabric.sharding ->
  ?core_prop_delay:Planck_util.Time.t ->
  prng:Planck_util.Prng.t ->
  unit ->
  Fabric.t * shape
(** Build and fully wire the fat-tree; monitor port is port [k] on
    every switch. [sharding] (from {!Partition.fat_tree}) spreads the
    build over a shard group; [core_prop_delay] lengthens the agg-core
    links (identically with or without sharding — under the pod
    partition those are the only cross-shard links, so it sets the
    lookahead). *)

val core_for : shape -> dst:int -> alt:int -> int
(** Core switch whose spanning tree carries alternate [alt] to host
    [dst]. *)

val tree_out_ports : shape -> dst:int -> core:int -> int array
(** Per-switch output port of the destination-oriented spanning tree of
    [dst] through [core]; [-1] for switches off the tree. *)

val max_alts : shape -> int
(** Number of distinct trees available per destination = number of
    cores. *)
