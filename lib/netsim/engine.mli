(** The discrete-event simulation engine.

    A single-threaded event loop over a hierarchical timer wheel
    ({!Planck_util.Timer_wheel}: O(1) insert/cancel short horizon,
    min-heap overflow). Events at equal times fire in scheduling order,
    so the simulation is fully deterministic — the wheel preserves the
    heap's exact (time, seq) pop order. *)

type t

val create : ?label:string -> ?queue:Planck_util.Timer_wheel.config -> unit -> t
(** [label] names this engine's instance metrics (default: a fresh
    ["engine<N>"]). [queue] selects the event-queue geometry (default:
    {!default_queue}, normally the wheel;
    {!Planck_util.Timer_wheel.heap_only} recovers the pre-wheel
    scheduler for equivalence tests and baselines). *)

val default_queue : unit -> Planck_util.Timer_wheel.config
(** The geometry used by {!create} when [?queue] is omitted. *)

val set_default_queue : Planck_util.Timer_wheel.config -> unit
(** Override {!default_queue} process-wide. For A/B runs (wheel vs
    heap-only) of whole experiments whose constructors don't expose the
    engine; set it back around the run. *)

val now : t -> Planck_util.Time.t
(** Current simulated time. *)

val label : t -> string

val schedule : t -> delay:Planck_util.Time.t -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay]. Raises
    [Invalid_argument] on negative delay. One-shot, fire-and-forget;
    per-packet code should prefer a preallocated {!Timer.t} so no
    closure is allocated per event. *)

val schedule_at : t -> time:Planck_util.Time.t -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute time [time], which must
    not be in the past. *)

(** Cancellable, reusable timers. A [Timer.t] owns a single queued
    closure allocated at {!Timer.create}; {!Timer.reschedule} re-queues
    that same closure, and {!Timer.cancel} is an O(1) lazy delete (the
    wheel reclaims the slot, compacting when cancelled entries pile
    up). This replaces the generation-counter idiom: a cancelled timer
    leaves no zombie event to fire later. *)
module Timer : sig
  type engine = t

  type t

  val create : engine -> (unit -> unit) -> t
  (** A new unarmed timer running the callback when it fires. *)

  val set_callback : t -> (unit -> unit) -> unit
  (** Replace the callback (e.g. to close a knot with a record built
      after the timer). Affects subsequent fires, including an already
      armed one. *)

  val reschedule : t -> delay:Planck_util.Time.t -> unit
  (** Cancel any pending fire and arm at [now + delay]. Raises
      [Invalid_argument] on negative delay. *)

  val reschedule_at : t -> time:Planck_util.Time.t -> unit
  (** Cancel any pending fire and arm at absolute [time] (not in the
      past). *)

  val cancel : t -> unit
  (** Disarm. No-op if not pending. *)

  val pending : t -> bool
  (** Is the timer armed and not yet fired? *)
end

val periodic :
  t -> period:Planck_util.Time.t -> ?until:Planck_util.Time.t ->
  (unit -> unit) -> Timer.t
(** [periodic t ~period f] runs [f] at [now + period], then every
    [period] until the optional horizon (inclusive). The tick closure
    is allocated once; the returned timer cancels or re-paces the
    stream. *)

val every :
  t -> period:Planck_util.Time.t -> ?until:Planck_util.Time.t ->
  (unit -> unit) -> unit
(** {!periodic} without the handle, for call sites that never cancel. *)

val run : ?until:Planck_util.Time.t -> t -> unit
(** Process events in time order. With [until], stops once the next
    event would be strictly later than [until] (and advances the clock
    to [until]); otherwise runs until the queue drains. Cancelled
    timers are skipped without waking the loop. *)

val step : t -> bool
(** Process exactly one event; [false] if the queue was empty. *)

(** {2 Introspection}

    Exposed so telemetry and tests can assert on scheduler state. Each
    engine also registers instance metrics labelled with {!label}
    ([engine.pending_high_water], [engine.timers_cancelled],
    [engine.compactions]) plus the process-wide aggregates
    ([engine.events_processed] counter and a monotone
    [engine.pending_high_water] gauge) in
    {!Planck_telemetry.Metrics.default}. *)

val events_processed : t -> int
(** Events executed by {!step}/{!run} since creation. *)

val pending : t -> int
(** Live events currently queued (cancelled entries excluded). *)

val max_pending : t -> int
(** High-water mark of {!pending} over the engine's lifetime. *)

val timers_cancelled : t -> int
(** Successful cancellations since creation. *)

val compactions : t -> int
(** Lazy-delete compaction sweeps since creation. *)
