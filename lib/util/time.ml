type t = int

let zero = 0
let nanosecond = 1
let microsecond = 1_000
let millisecond = 1_000_000
let second = 1_000_000_000
let ns n = n
let us n = n * microsecond
let ms n = n * millisecond
let s n = n * second
let of_float_s x = int_of_float (Float.round (x *. 1e9))
let to_float_s t = float_of_int t /. 1e9
let to_float_ms t = float_of_int t /. 1e6
let to_float_us t = float_of_int t /. 1e3

let pp ppf t =
  let a = abs t in
  if a >= second then Format.fprintf ppf "%.3fs" (to_float_s t)
  else if a >= millisecond then Format.fprintf ppf "%.2fms" (to_float_ms t)
  else if a >= microsecond then Format.fprintf ppf "%.2fus" (to_float_us t)
  else Format.fprintf ppf "%dns" t

let to_string t = Format.asprintf "%a" pp t
