(* End-to-end sanity: a TCP flow crosses a single switch and completes
   at roughly line rate; the attached collector sees samples and
   produces a sane rate estimate. *)

open Testbed
module Collector = Planck_collector.Collector

let flow_completes () =
  let tb = single_switch () in
  let size = 10 * 1024 * 1024 in
  let flow = start_flow tb ~src:0 ~dst:1 ~size () in
  Engine.run ~until:(Time.ms 200) tb.engine;
  Alcotest.(check bool) "completed" true (Flow.completed flow);
  match Flow.goodput flow with
  | None -> Alcotest.fail "no goodput"
  | Some rate ->
      Alcotest.(check bool)
        (Printf.sprintf "goodput %.2f Gbps sane" (Rate.to_gbps rate))
        true
        (Rate.to_gbps rate > 5.0 && Rate.to_gbps rate <= 10.0)

let collector_estimates () =
  let tb = single_switch () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  let size = 20 * 1024 * 1024 in
  let flow = start_flow tb ~src:0 ~dst:1 ~size () in
  Engine.run ~until:(Time.ms 12) tb.engine;
  Alcotest.(check bool)
    "samples arrived" true
    (Collector.samples_seen collector > 100);
  match Collector.flow_rate collector (Flow.key flow) with
  | None -> Alcotest.fail "no rate estimate"
  | Some rate ->
      Alcotest.(check bool)
        (Printf.sprintf "estimate %.2f Gbps sane" (Rate.to_gbps rate))
        true
        (Rate.to_gbps rate > 1.0 && Rate.to_gbps rate < 11.0)

let fat_tree_flow () =
  let tb, _shape = fat_tree () in
  let size = 5 * 1024 * 1024 in
  (* Host 0 (pod 0) to host 12 (pod 3): crosses the core. *)
  let flow = start_flow tb ~src:0 ~dst:12 ~size () in
  Engine.run ~until:(Time.ms 100) tb.engine;
  Alcotest.(check bool) "completed" true (Flow.completed flow);
  Alcotest.(check int)
    "no unroutable drops" 0
    (let total = ref 0 in
     for sw = 0 to Fabric.switch_count tb.fabric - 1 do
       total := !total + Switch.unroutable_drops (Fabric.switch tb.fabric sw)
     done;
     !total);
  Alcotest.(check int)
    "no host filtered frames" 0
    (Array.fold_left
       (fun acc h -> acc + Host.filtered_frames h)
       0 (Fabric.hosts tb.fabric))

let tests =
  [
    Alcotest.test_case "single-switch flow completes" `Quick flow_completes;
    Alcotest.test_case "collector estimates rate" `Quick collector_estimates;
    Alcotest.test_case "fat-tree cross-pod flow" `Quick fat_tree_flow;
  ]
