(* The §7.3 traffic-engineering evaluation: Figure 14 (workloads x flow
   sizes x schemes), Figure 17 (stride(8) flow-size sweep) and Figure 18
   (per-flow / per-host CDFs at the smallest flow size).

   Simulation-scale note: by default flow sizes and run counts are
   reduced to keep the suite to minutes; pass --full for paper-scale
   parameters (much slower). Shapes are preserved at either scale. *)

open Exp_common
open Planck

let mib = 1024 * 1024

let schemes =
  [
    ("Static", `Fabric Scheme.Static);
    ("Poll-1s", `Fabric Scheme.poll_1s);
    ("Poll-0.1s", `Fabric Scheme.poll_100ms);
    ("PlanckTE", `Fabric Scheme.planck_te_default);
    ("Optimal", `Optimal);
  ]

let run_config ~opts ~workload ~size ~runs (name, scheme) =
  let spec, sch =
    match scheme with
    | `Fabric s -> (Testbed.paper_fat_tree ~seed:opts.seed (), s)
    | `Optimal -> (Testbed.optimal ~seed:opts.seed (), Scheme.Static)
  in
  let summaries =
    Experiment.repeat ~runs ~spec ~scheme:sch ~workload ~size
      ~horizon:(Time.s 300) ()
  in
  (name, summaries)

let fig14_workloads =
  [
    (Experiment.Stride 8, "stride(8)");
    (Experiment.Shuffle { concurrency = 2 }, "shuffle");
    (Experiment.Random_bijection, "random bijection");
    (Experiment.Random, "random");
  ]

let run_fig14 opts =
  section "Figure 14: average flow throughput per workload and scheme";
  let sizes =
    if opts.full then [ 100 * mib; 1024 * mib ] else [ 25 * mib ]
  in
  let shuffle_size size = if opts.full then size / 4 else 5 * mib in
  let runs = if opts.full then opts.runs else max 1 (opts.runs - 1) in
  note "flow sizes %s, %d run(s) per cell%s"
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%d MiB" (s / mib)) sizes))
    runs
    (if opts.full then "" else " (reduced scale; --full for paper scale)");
  let results = ref [] in
  List.iter
    (fun size ->
      List.iter
        (fun (workload, wname) ->
          let size =
            match workload with
            | Experiment.Shuffle _ -> shuffle_size size
            | _ -> size
          in
          let per_scheme =
            List.map (run_config ~opts ~workload ~size ~runs) schemes
          in
          results := ((wname, size), per_scheme) :: !results;
          Table.print
            ~header:
              [
                Printf.sprintf "%s @%dMiB" wname (size / mib);
                "avg tput (Gbps)";
                "reroutes";
                "all done";
              ]
            (List.map
               (fun (name, summaries) ->
                 [
                   name;
                   Printf.sprintf "%.2f" (Experiment.mean_avg_goodput summaries);
                   string_of_int
                     (List.fold_left
                        (fun a s -> a + s.Experiment.reroutes)
                        0 summaries);
                   string_of_bool
                     (List.for_all (fun s -> s.Experiment.all_completed) summaries);
                 ])
               per_scheme))
        fig14_workloads)
    sizes;
  paper "PlanckTE tracks Optimal within 1-4%% (worst case 12.3%% on";
  paper "shuffle) and beats Poll-1s by 24-53%% outside shuffle.";
  !results

(* Fig 18 uses the 100 MiB-class runs: (a) per-host shuffle completion
   times, (b) per-flow stride(8) throughput CDF. *)
let run_fig18 results =
  section "Figure 18a: shuffle host completion time CDF";
  let find wname =
    List.filter_map
      (fun ((w, _), per_scheme) -> if w = wname then Some per_scheme else None)
      results
  in
  (match find "shuffle" with
  | per_scheme :: _ ->
      let rows =
        List.map
          (fun (name, summaries) ->
            let times =
              List.concat_map
                (fun s ->
                  match s.Experiment.host_done with
                  | Some arr ->
                      List.filter_map
                        (Option.map (fun t -> Time.to_float_s t))
                        (Array.to_list arr)
                  | None -> [])
                summaries
            in
            [
              name;
              Printf.sprintf "%.3f" (Stats.percentile 25.0 times);
              Printf.sprintf "%.3f" (Stats.median times);
              Printf.sprintf "%.3f" (Stats.percentile 75.0 times);
              Printf.sprintf "%.3f" (Stats.percentile 100.0 times);
            ])
          per_scheme
      in
      Table.print
        ~header:[ "scheme"; "p25 (s)"; "median (s)"; "p75 (s)"; "max (s)" ]
        rows;
      paper "medians: Poll-1s 3.31 s > Poll-0.1s 3.01 s > PlanckTE 2.86 s >";
      paper "Optimal 2.52 s (at 100 MiB scale; ordering is the claim)."
  | [] -> note "no shuffle results");
  section "Figure 18b: stride(8) per-flow throughput CDF";
  (match find "stride(8)" with
  | per_scheme :: _ ->
      let rows =
        List.map
          (fun (name, summaries) ->
            let tputs =
              List.concat_map
                (fun s ->
                  List.filter_map
                    (fun r ->
                      Option.map Rate.to_gbps r.Workloads.Runner.goodput)
                    s.Experiment.flows)
                summaries
            in
            [
              name;
              Printf.sprintf "%.2f" (Stats.percentile 10.0 tputs);
              Printf.sprintf "%.2f" (Stats.median tputs);
              Printf.sprintf "%.2f" (Stats.percentile 90.0 tputs);
            ])
          per_scheme
      in
      Table.print ~header:[ "scheme"; "p10 (Gbps)"; "median"; "p90" ] rows;
      paper "medians: PlanckTE 5.9 Gbps vs Poll-0.1s 4.9 Gbps, with";
      paper "PlanckTE tracking Optimal."
  | [] -> note "no stride results")

let run_fig17 opts =
  section "Figure 17: stride(8) throughput vs flow size";
  let sizes =
    if opts.full then
      [ 50 * mib; 100 * mib; 250 * mib; 1024 * mib; 4096 * mib ]
    else [ 12 * mib; 25 * mib; 50 * mib; 100 * mib ]
  in
  let rows =
    List.map
      (fun size ->
        let cells =
          List.map
            (fun scheme ->
              let _, summaries =
                run_config ~opts ~workload:(Experiment.Stride 8) ~size ~runs:1
                  scheme
              in
              Printf.sprintf "%.2f" (Experiment.mean_avg_goodput summaries))
            schemes
        in
        Printf.sprintf "%d" (size / mib) :: cells)
      sizes
  in
  Table.print
    ~header:("MiB" :: List.map fst schemes)
    rows;
  paper "PlanckTE ~= Optimal down to 50 MiB; Poll-1s only helps flows";
  paper ">= 1 GiB, Poll-0.1s from ~100 MiB; all converge for huge flows."

let run opts =
  let results = run_fig14 opts in
  run_fig18 results;
  run_fig17 opts
