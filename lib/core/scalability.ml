type plan = {
  hosts : int;
  switches : int;
  collector_servers : int;
  additional_machines_pct : float;
}

let collectors_per_server = 14

let ceil_div a b = (a + b - 1) / b

let plan ~hosts ~switches =
  let collector_servers = ceil_div switches collectors_per_server in
  {
    hosts;
    switches;
    collector_servers;
    additional_machines_pct =
      100.0 *. float_of_int collector_servers /. float_of_int hosts;
  }

let fat_tree_plan ~k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Scalability.fat_tree_plan: k must be even";
  (* k pods x (k/2 edge + k/2 agg) + (k/2)^2 cores. *)
  let switches = (k * k) + (k / 2 * (k / 2)) in
  let hosts = k * k * k / 4 in
  plan ~hosts ~switches

let jellyfish_plan ~ports ~hosts_per_switch ~hosts =
  if hosts_per_switch <= 0 || hosts_per_switch >= ports then
    invalid_arg "Scalability.jellyfish_plan: bad hosts_per_switch";
  plan ~hosts ~switches:(ceil_div hosts hosts_per_switch)

type shard_plan = {
  shards : int;
  switches_per_shard : int array;
  hosts_per_shard : int array;
  collector_servers_per_shard : int array;
  imbalance_pct : float;
}

(* Contiguous near-equal blocks, the same [i * shards / n] assignment
   Partition uses: shard [s] holds the items [i] with
   [ceil (s*n/shards) <= i < ceil ((s+1)*n/shards)]. *)
let block_counts ~n ~shards =
  Array.init shards (fun s ->
      ceil_div ((s + 1) * n) shards - ceil_div (s * n) shards)

let shard_plan p ~shards =
  if shards < 1 then
    invalid_arg "Scalability.shard_plan: shards must be >= 1";
  let switches_per_shard = block_counts ~n:p.switches ~shards in
  let hosts_per_shard = block_counts ~n:p.hosts ~shards in
  let collector_servers_per_shard =
    Array.map (fun s -> ceil_div s collectors_per_server) switches_per_shard
  in
  let mean = float_of_int p.hosts /. float_of_int shards in
  let imbalance_pct =
    if mean <= 0.0 then 0.0
    else
      let worst = Array.fold_left max 0 hosts_per_shard in
      100.0 *. ((float_of_int worst /. mean) -. 1.0)
  in
  {
    shards;
    switches_per_shard;
    hosts_per_shard;
    collector_servers_per_shard;
    imbalance_pct;
  }

let monitor_port_host_cost ~fat_tree_k =
  (* Freeing the monitor port adds one usable port per switch. On a
     fat-tree, keeping the up:down ratio means half of the freed edge
     ports become host ports: one extra host per two edge switches,
     i.e. a fraction 1/(k+2) of hosts. On a Jellyfish with the paper's
     17 hosts per switch, the freed port is simply an 18th host. *)
  let ft = 100.0 /. float_of_int (fat_tree_k + 2) in
  let jf = 100.0 /. 18.0 in
  (ft, jf)
