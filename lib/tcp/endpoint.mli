(** Per-host TCP demultiplexer.

    Owns the host's receive callback and dispatches incoming segments to
    the flow registered for their 5-tuple. *)

type t

val create : Planck_netsim.Host.t -> t
(** Takes over the host's receive handler. Create exactly one endpoint
    per host. *)

val host : t -> Planck_netsim.Host.t
val engine : t -> Planck_netsim.Engine.t

val register :
  t -> Planck_packet.Flow_key.t -> (Planck_packet.Packet.t -> unit) -> unit
(** [register t key f]: segments whose 5-tuple is [key] go to [f].
    [key] is the key {e of the incoming packets} (source = remote peer).
    Raises [Invalid_argument] if the key is taken. *)

val unclaimed : t -> int
(** Segments that matched no registration. *)
