(** An end host: kernel stack delays, a NIC, and an ARP cache with
    Linux-like update semantics.

    The stack model charges every sent frame a random kernel+driver
    delay before it reaches the NIC queue, and every received frame a
    delay before the application sees it — these produce the realistic
    RTTs (≈180–250 µs on an idle 10 G network) and the sender-side
    component of Planck's sample latency (§5.2).

    ARP behaviour follows the paper's §6.2 discussion of Linux:
    unsolicited ARP {e replies} are ignored, but a unicast ARP
    {e request} causes MAC learning and updates the cache — that is the
    controller's fast-reroute trick — subject to a configurable
    locktime (the sysctl the paper tunes to zero). *)

type stack = {
  send_delay_min : Planck_util.Time.t;
  send_delay_max : Planck_util.Time.t;
  recv_delay_min : Planck_util.Time.t;
  recv_delay_max : Planck_util.Time.t;
  arp_locktime : Planck_util.Time.t;
}

val default_stack : stack
(** send 50–90 µs, receive 35–55 µs, locktime 0. *)

type t

val create :
  Engine.t -> id:int -> ?stack:stack -> prng:Planck_util.Prng.t -> unit -> t
(** Host number [id]; its base MAC is [Mac.host id] and its address
    [Ipv4_addr.host id]. *)

val id : t -> int
val name : t -> string
val mac : t -> Planck_packet.Mac.t
val ip : t -> Planck_packet.Ipv4_addr.t
val engine : t -> Engine.t

val connect :
  t ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  deliver:(Planck_packet.Packet.t -> unit) ->
  unit
(** Wire the NIC's transmit side to a peer ingress function. *)

val ingress : t -> Planck_packet.Packet.t -> unit
(** A frame fully arrived at the NIC; hand to the peer's transmit side. *)

val send : t -> Planck_packet.Packet.t -> unit
(** Transmit through the stack: send-trace hooks fire now (the
    "tcpdump timestamp"), then the frame reaches the NIC queue after the
    stack send delay. *)

val set_receive : t -> (Planck_packet.Packet.t -> unit) -> unit
(** Application/L4 handler, called after the stack receive delay for
    every accepted non-ARP frame. *)

val add_send_trace :
  t -> (Planck_util.Time.t -> Planck_packet.Packet.t -> unit) -> unit
(** Register a tcpdump-like tap on sends. *)

val add_recv_trace :
  t -> (Planck_util.Time.t -> Planck_packet.Packet.t -> unit) -> unit
(** Tap on accepted frames, fired together with the receive handler. *)

(** {2 ARP} *)

val arp_lookup : t -> Planck_packet.Ipv4_addr.t -> Planck_packet.Mac.t option
val arp_set : t -> Planck_packet.Ipv4_addr.t -> Planck_packet.Mac.t -> unit
(** Administratively install a cache entry (used to pre-populate the
    testbed, like static ARP). *)

val filtered_frames : t -> int
(** Frames dropped because their destination MAC was neither this
    host's base MAC nor broadcast — what happens when a shadow-MAC
    rewrite rule is missing. *)
