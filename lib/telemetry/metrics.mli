(** Typed metric registry: counters, gauges, and log-bucketed integer
    histograms keyed by [(subsystem, name, label)].

    Handles are registered once (typically when the instrumented object
    is created — registration deduplicates, so re-creating an object
    with the same identity reuses its metrics) and updated on hot paths.
    Every update is O(1) and begins with a single branch on the owning
    registry's enabled flag: a disabled registry costs one load+test per
    instrumentation point, which is what lets the instrumentation stay
    compiled into the simulator's per-packet paths.

    The process-wide {!default} registry is what the built-in
    instrumentation (engine, switch, sink, collector, TE) writes to; it
    starts {e disabled}. Experiments opt in with
    [set_enabled default true] (the CLI/bench [--metrics-out] flags do
    this). Tests use private registries from {!create}. *)

type registry

type counter
type gauge
type histogram

val create : ?enabled:bool -> unit -> registry
(** A fresh registry, enabled unless [~enabled:false]. *)

val default : registry
(** The process-wide registry. Starts disabled. *)

val set_enabled : registry -> bool -> unit
val enabled : registry -> bool

(** {2 Registration}

    Idempotent: the same [(subsystem, name, label)] returns the existing
    handle. Raises [Invalid_argument] if the key is already registered
    with a different metric kind. *)

val counter :
  ?registry:registry ->
  subsystem:string ->
  name:string ->
  ?label:string ->
  unit ->
  counter

val gauge :
  ?registry:registry ->
  subsystem:string ->
  name:string ->
  ?label:string ->
  unit ->
  gauge

val histogram :
  ?registry:registry ->
  subsystem:string ->
  name:string ->
  ?label:string ->
  unit ->
  histogram

(** {2 Updates (hot paths)} *)

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
end

module Gauge : sig
  val set : gauge -> float -> unit
  (** Records the value and tracks the high-water mark. *)

  val set_int : gauge -> int -> unit
  (** Like {!set} but converts after the enabled check, so a disabled
      registry skips the int-to-float conversion too. *)

  val value : gauge -> float
  val max_value : gauge -> float
  (** High-water mark of everything ever [set]; 0 if never set. *)
end

module Histogram : sig
  val observe : histogram -> int -> unit
  (** Record a non-negative integer observation (negative values clamp
      to 0). Intended for nanosecond latencies and byte counts. *)

  val bucket_index : int -> int
  (** Log2 bucketing: bucket 0 holds values [<= 1]; bucket [i >= 1]
      holds [[2^i, 2^(i+1))]. *)

  val bucket_lo : int -> int
  (** Smallest value bucket [i] admits (0 for bucket 0). *)

  val bucket_hi : int -> int
  (** Largest value bucket [i] admits, [2^(i+1) - 1]. *)

  val count : histogram -> int
  val sum : histogram -> int
  val min_value : histogram -> int
  val max_value : histogram -> int
  val mean : histogram -> float

  val quantile : histogram -> float -> int
  (** [quantile h q] for [q] in [0, 1]: the upper bound of the bucket
      where the cumulative count crosses [q] (capped at the observed
      max) — a within-2x estimate, exact values are not retained. *)
end

(** {2 Snapshots} *)

type value =
  | Counter_value of int
  | Gauge_value of { value : float; max : float }
  | Histogram_value of {
      count : int;
      sum : int;
      min : int;
      max : int;
      buckets : (int * int * int) list;
          (** (inclusive lo, inclusive hi, count), non-empty buckets
              only, ascending *)
    }

type snapshot = {
  subsystem : string;
  name : string;
  label : string;
  value : value;
}

val snapshot : registry -> snapshot list
(** Current values, sorted by [(subsystem, name, label)] — deterministic
    regardless of registration order. *)

val reset : registry -> unit
(** Zero every metric (handles stay registered and valid). *)

val size : registry -> int
(** Number of registered metrics. *)
