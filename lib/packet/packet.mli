(** Simulated network frames.

    Inside the simulator a frame is this structured value; on the capture
    path (mirrored copies delivered to a collector, pcap dumps) frames are
    serialized to real wire bytes with {!to_wire} and parsed back with
    {!parse}, so the collector exercises an honest parse path like the
    netmap-based collector in the paper.

    Payloads are virtual: only their length travels with the frame (the
    IPv4 [total_length] accounts for it), which keeps multi-gigabyte
    flows cheap to simulate while preserving every header bit the
    collector reads. *)

type l4 = Tcp of Headers.Tcp.t | Udp of Headers.Udp.t

type body = Ipv4 of Headers.Ipv4.t * l4 | Arp of Headers.Arp.t

type t = private {
  id : int;  (** unique per constructed packet, for tracing *)
  eth : Headers.Eth.t;
  body : body;
  wire_size : int;  (** full frame length on the wire, bytes *)
}

val mtu : int
(** IP MTU used throughout: 1500 bytes. *)

val max_tcp_payload : int
(** MTU minus IPv4 and TCP headers: 1460 bytes. *)

val tcp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ipv4_addr.t ->
  dst_ip:Ipv4_addr.t ->
  src_port:int ->
  dst_port:int ->
  seq:int ->
  ack_seq:int ->
  flags:Headers.Tcp_flags.t ->
  ?sack:(int * int) list ->
  payload_len:int ->
  unit ->
  t
(** A TCP segment carrying [payload_len] virtual payload bytes.
    Raises [Invalid_argument] if [payload_len] is negative or exceeds
    {!max_tcp_payload}. *)

val udp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ipv4_addr.t ->
  dst_ip:Ipv4_addr.t ->
  src_port:int ->
  dst_port:int ->
  payload_len:int ->
  unit ->
  t

val arp : src_mac:Mac.t -> dst_mac:Mac.t -> Headers.Arp.t -> t

val with_dst_mac : t -> Mac.t -> t
(** A copy with the Ethernet destination replaced and everything else —
    including the tracing [id] — preserved. Models a switch egress
    MAC-rewrite rule acting on the same logical frame. *)

val tcp_headers : t -> (Headers.Ipv4.t * Headers.Tcp.t) option
(** The IPv4 and TCP headers if this is a TCP segment. *)

val tcp_payload_len : t -> int
(** Virtual TCP payload bytes; 0 for non-TCP frames. *)

val dst_mac : t -> Mac.t
val src_mac : t -> Mac.t

val header_bytes : t -> int
(** Length of {!to_wire}'s output: everything except virtual payload. *)

val to_wire : t -> bytes
(** Serialize all headers to wire format (big-endian, real field
    layouts). Virtual payload is not materialized. *)

val parse : bytes -> wire_size:int -> t option
(** Parse bytes produced by {!to_wire} back into a frame with the given
    on-wire length. Returns [None] on malformed or unsupported input.
    The result has a fresh [id]. *)

val same_headers : t -> t -> bool
(** Equality ignoring [id] — i.e. equality of everything {!to_wire}
    writes, plus [wire_size]. *)

val pp : Format.formatter -> t -> unit
