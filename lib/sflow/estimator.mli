(** Classic sFlow-side estimation: multiply sampled bytes by the
    sampling rate over an aggregation window (paper §2.1).

    With [s] samples the relative error is roughly [196 · sqrt (1/s)]
    percent; at 300 samples/s a second-long window over one link is
    already ~11 % off, which is the paper's argument for why this class
    of estimator cannot run at millisecond timescales. {!expected_error}
    exposes that formula for the Table 1 comparison. *)

type t

val create : ?window:Planck_util.Time.t -> unit -> t
(** Aggregation window, default 1 s. *)

val add : t -> Agent.sample -> unit

val flow_rate :
  t ->
  now:Planck_util.Time.t ->
  Planck_packet.Flow_key.t ->
  Planck_util.Rate.t
(** Estimated rate of a flow from the samples inside the window. *)

val link_utilization :
  t -> now:Planck_util.Time.t -> out_port:int -> Planck_util.Rate.t

val samples_in_window : t -> now:Planck_util.Time.t -> int

val expected_error : samples:int -> float
(** [196 · sqrt (1/s)] percent, from Phaal & Panchen. *)
