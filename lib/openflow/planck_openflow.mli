(** Simplified OpenFlow substrate: control-channel latency model,
    per-flow counters (the slow statistics path), and
    controller-initiated actions (packet-out, rule install, ARP
    spoofing). *)

module Control_channel = Control_channel
module Flow_stats = Flow_stats
module Actions = Actions
