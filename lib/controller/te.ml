module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Engine = Planck_netsim.Engine
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing
module Control_channel = Planck_openflow.Control_channel
module Collector = Planck_collector.Collector
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Journal = Planck_telemetry.Journal
module Profile = Planck_telemetry.Profile
module Packet = Planck_packet.Packet

let sp_decide = Profile.register "te.decide"
let sp_install = Profile.register "te.install"

let log = Logs.Src.create "planck.te" ~doc:"Traffic-engineering application"

module Log = (val Logs.src_log log)

type config = {
  congestion_threshold : float;
  flow_timeout : Time.t;
  reroute_cooldown : Time.t;
  mechanism : Reroute.mechanism;
}

let default_config =
  {
    congestion_threshold = 0.5;
    flow_timeout = Time.ms 3;
    reroute_cooldown = Time.ms 3;
    mechanism = Reroute.Arp;
  }

type t = {
  engine : Engine.t;
  routing : Routing.t;
  channel : Control_channel.t;
  link_rate : Rate.t;
  config : config;
  view : Net_view.t;
  mutable notifications : int;
  mutable reroutes : int;
  mutable reroute_hooks :
    (Time.t -> Flow_key.t -> old_mac:Mac.t -> new_mac:Mac.t -> unit) list;
  (* Rerouted flows whose new path has not yet been observed: flow ->
     (correlation id, expected MAC, armed). The effective-watch taps
     installed in [create] (journal only) close each loop at the
     collector vantage point, matching how Fig 16 measures response
     latency. [armed] flips when the install lands: before that, a
     sample carrying the new MAC is provably a stale frame from the
     monitor-queue backlog (possible when a flow flaps back to a
     previous route), not the reroute taking effect. *)
  pending_effective : (int * Mac.t * bool ref) Flow_key.Table.t;
  tel_notifications : Metrics.counter;
  tel_reroutes : Metrics.counter;
}

(* greedy_route_flow of Algorithm 1: consider the flow's current path
   with the flow itself removed, then every alternate; pick the path
   with the largest expected bottleneck capacity. *)
let greedy_route_flow t ~corr flow =
  let now = Engine.now t.engine in
  if now >= flow.Net_view.no_reroute_until then begin
    match Ipv4_addr.host_id flow.Net_view.key.Flow_key.dst_ip with
    | None -> ()
    | Some dst ->
        let bottleneck_of mac =
          match Routing.tree t.routing mac with
          | None -> neg_infinity
          | Some _ -> (
              match Ipv4_addr.host_id flow.Net_view.key.Flow_key.src_ip with
              | None -> neg_infinity
              | Some src -> (
                  match Routing.path t.routing ~src ~dst_mac:mac with
                  | exception Invalid_argument _ -> neg_infinity
                  | hops ->
                      Net_view.bottleneck t.view ~capacity:t.link_rate
                        ~exclude:flow
                        ~links:(Routing.links_of_path hops)))
        in
        let current_mac = flow.Net_view.dst_mac in
        let best_mac = ref current_mac in
        let best_btlneck = ref (bottleneck_of current_mac) in
        for alt = 0 to Routing.alts t.routing - 1 do
          let mac = Routing.mac_for t.routing ~dst ~alt in
          if not (Mac.equal mac current_mac) then begin
            let btlneck = bottleneck_of mac in
            if btlneck > !best_btlneck then begin
              best_mac := mac;
              best_btlneck := btlneck
            end
          end
        done;
        if not (Mac.equal !best_mac current_mac) then begin
          Log.debug (fun m ->
              m "reroute %a from %a to %a (bottleneck %.2f Gbps)"
                Flow_key.pp flow.Net_view.key Mac.pp current_mac Mac.pp
                !best_mac (!best_btlneck /. 1e9));
          t.reroutes <- t.reroutes + 1;
          Metrics.Counter.incr t.tel_reroutes;
          Trace.instant Trace.default ~now ~cat:"te" ~name:"reroute"
            ~args:
              [
                ( "flow",
                  Trace.String
                    (Format.asprintf "%a" Flow_key.pp flow.Net_view.key) );
                ( "old_mac",
                  Trace.String (Mac.to_string flow.Net_view.dst_mac) );
                ("new_mac", Trace.String (Mac.to_string !best_mac));
                ("bottleneck_gbps", Trace.Float (!best_btlneck /. 1e9));
              ]
            ();
          flow.Net_view.no_reroute_until <- now + t.config.reroute_cooldown;
          Net_view.set_route t.view flow !best_mac;
          let on_install =
            if Journal.enabled Journal.default then begin
              let key = flow.Net_view.key in
              let label = Format.asprintf "%a" Flow_key.pp key in
              Journal.record Journal.default ~ts:now ~corr
                (Journal.Reroute_decision
                   {
                     flow = label;
                     old_mac = Mac.to_string current_mac;
                     new_mac = Mac.to_string !best_mac;
                     bottleneck_gbps = !best_btlneck /. 1e9;
                     mechanism = Reroute.mechanism_name t.config.mechanism;
                   });
              let armed = ref false in
              Flow_key.Table.replace t.pending_effective key
                (corr, !best_mac, armed);
              Some
                (fun () ->
                  armed := true;
                  Journal.record Journal.default
                    ~ts:(Engine.now t.engine)
                    ~corr
                    (Journal.Reroute_install
                       {
                         flow = label;
                         mechanism =
                           Reroute.mechanism_name t.config.mechanism;
                       }))
            end
            else None
          in
          Profile.enter sp_install;
          Reroute.apply ?on_install t.config.mechanism ~channel:t.channel
            ~routing:t.routing ~key:flow.Net_view.key ~new_mac:!best_mac;
          Profile.exit sp_install;
          List.iter
            (fun hook ->
              hook now flow.Net_view.key ~old_mac:current_mac
                ~new_mac:!best_mac)
            t.reroute_hooks
        end
  end

(* process_cong_ntfy of Algorithm 1. *)
let process t (event : Collector.congestion) =
  Profile.enter sp_decide;
  Log.debug (fun m ->
      m "congestion notification: switch %d port %d at %.2f Gbps (%d flows)"
        event.Collector.switch event.Collector.port
        (event.Collector.utilization /. 1e9)
        (List.length event.Collector.flows));
  t.notifications <- t.notifications + 1;
  Metrics.Counter.incr t.tel_notifications;
  let now = Engine.now t.engine in
  if Journal.enabled Journal.default then
    Journal.record Journal.default ~ts:now ~corr:event.Collector.corr
      (Journal.Controller_notified
         { switch = event.Collector.switch; port = event.Collector.port });
  (* The control-loop span of Fig 12/15: opened retroactively at the
     collector's detection stamp, closed when this handler (and any
     reroute messages it sent) is done. The span's duration is exactly
     the detection-to-response gap the reroute experiments print. *)
  let span_args =
    [
      ("switch", Trace.Int event.Collector.switch);
      ("port", Trace.Int event.Collector.port);
    ]
  in
  Trace.span_begin Trace.default ~now:event.Collector.time ~cat:"te"
    ~name:"control_loop" ~args:span_args ();
  let flows =
    List.map
      (fun (key, rate, dst_mac) ->
        Net_view.observe t.view ~now ~key ~rate ~dst_mac)
      event.Collector.flows
  in
  Net_view.expire t.view ~now;
  (* Smallest flows first: moving a small flow decongests the link at
     the least reordering cost to established traffic (and makes the
     greedy placement deterministic). *)
  let flows =
    List.sort (fun a b -> Float.compare a.Net_view.rate b.Net_view.rate) flows
  in
  List.iter (greedy_route_flow t ~corr:event.Collector.corr) flows;
  Trace.span_end Trace.default
    ~now:(Engine.now t.engine)
    ~cat:"te" ~name:"control_loop" ();
  Profile.exit sp_decide

let create engine ~routing ~channel ~collectors ~link_rate
    ?(config = default_config) () =
  let t =
    {
      engine;
      routing;
      channel;
      link_rate;
      config;
      view = Net_view.create routing ~flow_timeout:config.flow_timeout;
      notifications = 0;
      reroutes = 0;
      reroute_hooks = [];
      pending_effective = Flow_key.Table.create 16;
      tel_notifications =
        Metrics.counter ~subsystem:"te" ~name:"notifications" ();
      tel_reroutes = Metrics.counter ~subsystem:"te" ~name:"reroutes" ();
    }
  in
  List.iter
    (fun collector ->
      Collector.subscribe_congestion collector
        ~threshold:config.congestion_threshold (fun event ->
          (* Notification crosses the control network. *)
          Control_channel.send t.channel (fun () -> process t event)))
    collectors;
  (* Effective-watch: close each control loop when any collector first
     samples a rerouted flow carrying its new MAC — the Fig 16 vantage
     point (so the stamp includes monitor-port buffering). Taps force
     per-sample record allocation in the collector, so they are only
     installed when the journal is already enabled at deploy time. *)
  if Journal.enabled Journal.default then
    List.iter
      (fun collector ->
        Collector.set_tap collector (fun sample ->
            if Flow_key.Table.length t.pending_effective > 0 then
              match sample.Collector.key with
              | None -> ()
              | Some key -> (
                  match Flow_key.Table.find_opt t.pending_effective key with
                  | Some (corr, mac, armed)
                    when !armed
                         && Mac.equal
                              (Packet.dst_mac sample.Collector.packet)
                              mac ->
                      Flow_key.Table.remove t.pending_effective key;
                      Journal.record Journal.default ~ts:sample.Collector.rx
                        ~corr
                        (Journal.Reroute_effective
                           {
                             flow = Format.asprintf "%a" Flow_key.pp key;
                             new_mac = Mac.to_string mac;
                             switch = Collector.switch_id collector;
                           })
                  | _ -> ())))
      collectors;
  t

let notifications t = t.notifications
let reroutes t = t.reroutes
let on_reroute t hook = t.reroute_hooks <- hook :: t.reroute_hooks
let view t = t.view
