(** Planck's sequence-number-based flow rate estimator (paper §3.2.2,
    §5.4).

    Port mirroring gives samples at an {e unknown, varying} sampling
    rate, so the usual multiply-by-N estimate is impossible. Instead,
    TCP sequence numbers are byte counters in their own right: two
    samples A and B of the same flow give the exact bytes the flow moved
    between them, [(S_B - S_A) / (t_B - t_A)], regardless of how many
    packets were dropped in between.

    Raw two-point estimates are hopelessly jittery at microsecond scales
    because TCP transmits in bursts (Figure 10a). The estimator
    therefore clusters samples into bursts: a gap of at least [min_gap]
    (200 µs at 10 Gbps) starts a new burst, and an estimate is emitted
    between burst anchors. Once a flow reaches steady state the gaps
    vanish, so a burst is also force-closed after [max_burst] (700 µs)
    to keep estimates flowing (Figure 10b).

    Out-of-order sequence numbers (reordering or retransmission) are
    ignored, as the paper prescribes. Sequence numbers are unwrapped
    mod 2{^32}. *)

type t

val create :
  ?min_gap:Planck_util.Time.t ->
  ?max_burst:Planck_util.Time.t ->
  ?max_rate:Planck_util.Rate.t ->
  unit ->
  t
(** Defaults: [min_gap] 200 µs, [max_burst] 700 µs. [max_rate] clamps
    emitted estimates to a physical ceiling (the link rate): reroutes
    make fresh-path mirror copies overtake old-path copies still queued
    in the monitor port, which otherwise yields momentary
    faster-than-wire estimates. *)

val update :
  t -> time:Planck_util.Time.t -> seq32:int -> Planck_util.Rate.t option
(** Feed one sample (on-wire sequence number, collector receive time).
    Returns [Some rate] whenever a new estimate is produced. *)

val current : t -> Planck_util.Rate.t option
(** Latest estimate, if any. *)

val last_estimate_at : t -> Planck_util.Time.t option
val samples : t -> int
val out_of_order : t -> int
(** Samples ignored as reordered/retransmitted. *)

(** A 200 µs-style rolling-average estimator over the same sample
    stream — the strawman of Figure 10a, kept for comparison and for
    the fig10 ablation bench. Rates are computed from the sequence span
    currently inside the window. *)
module Rolling : sig
  type t

  val create : ?window:Planck_util.Time.t -> unit -> t
  (** Default window: 200 µs. *)

  val update :
    t -> time:Planck_util.Time.t -> seq32:int -> Planck_util.Rate.t option

  val current : t -> Planck_util.Rate.t option
end
