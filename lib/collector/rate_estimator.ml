module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Seq32 = Planck_packet.Seq32

type t = {
  min_gap : Time.t;
  max_burst : Time.t;
  max_rate : Rate.t option;
  mutable anchor_seq : int; (* full-width; -1 = no sample yet *)
  mutable anchor_time : Time.t;
  mutable last_seq : int;
  mutable last_time : Time.t;
  mutable estimate : Rate.t option;
  mutable estimate_at : Time.t option;
  mutable samples : int;
  mutable out_of_order : int;
}

let create ?(min_gap = Time.us 200) ?(max_burst = Time.us 700) ?max_rate () =
  {
    min_gap;
    max_burst;
    max_rate;
    anchor_seq = -1;
    anchor_time = 0;
    last_seq = 0;
    last_time = 0;
    estimate = None;
    estimate_at = None;
    samples = 0;
    out_of_order = 0;
  }

let emit t ~seq ~time =
  if time > t.anchor_time && seq > t.anchor_seq then begin
    let raw = Rate.of_bytes_per (seq - t.anchor_seq) (time - t.anchor_time) in
    let rate =
      match t.max_rate with None -> raw | Some cap -> min raw cap
    in
    t.estimate <- Some rate;
    t.estimate_at <- Some time;
    Some rate
  end
  else None

let update t ~time ~seq32 =
  t.samples <- t.samples + 1;
  if t.anchor_seq < 0 then begin
    (* First sample anchors the first burst. *)
    t.anchor_seq <- seq32;
    t.anchor_time <- time;
    t.last_seq <- seq32;
    t.last_time <- time;
    None
  end
  else begin
    let seq = Seq32.unwrap ~base:t.last_seq seq32 in
    if seq < t.last_seq then begin
      (* Reordering or retransmission: unusable for estimation. *)
      t.out_of_order <- t.out_of_order + 1;
      None
    end
    else begin
      let result =
        if time - t.last_time >= t.min_gap then begin
          (* Gap: the previous burst ended; estimate across it and
             re-anchor at this new burst. *)
          let rate = emit t ~seq ~time in
          t.anchor_seq <- seq;
          t.anchor_time <- time;
          rate
        end
        else if time - t.anchor_time >= t.max_burst then begin
          (* Steady state: force regular estimates. *)
          let rate = emit t ~seq ~time in
          t.anchor_seq <- seq;
          t.anchor_time <- time;
          rate
        end
        else None
      in
      t.last_seq <- seq;
      t.last_time <- time;
      result
    end
  end

let current t = t.estimate
let last_estimate_at t = t.estimate_at
let samples t = t.samples
let out_of_order t = t.out_of_order

module Rolling = struct
  type t = {
    window : Time.t;
    points : (Time.t * int) Queue.t; (* (time, full seq) *)
    mutable last_seq : int;
    mutable have_sample : bool;
    mutable estimate : Rate.t option;
  }

  let create ?(window = Time.us 200) () =
    {
      window;
      points = Queue.create ();
      last_seq = 0;
      have_sample = false;
      estimate = None;
    }

  let update t ~time ~seq32 =
    let seq =
      if t.have_sample then Seq32.unwrap ~base:t.last_seq seq32 else seq32
    in
    if t.have_sample && seq < t.last_seq then t.estimate
    else begin
      t.have_sample <- true;
      t.last_seq <- seq;
      Queue.push (time, seq) t.points;
      while
        (not (Queue.is_empty t.points))
        && fst (Queue.peek t.points) < time - t.window
      do
        ignore (Queue.pop t.points)
      done;
      let _, oldest_seq = Queue.peek t.points in
      (* Bytes that entered the window, averaged over the whole window:
         a quiet window reads ~0, a window holding one burst reads the
         burst spread over it — the jitter of Figure 10a. *)
      t.estimate <- Some (Rate.of_bytes_per (seq - oldest_seq) t.window);
      t.estimate
    end

  let current t = t.estimate
end
