(* Unit and property tests for Planck_packet: addresses, header wire
   formats, flow keys, 32-bit sequence arithmetic and pcap output. *)

module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module H = Planck_packet.Headers
module P = Planck_packet.Packet
module FK = Planck_packet.Flow_key
module Seq32 = Planck_packet.Seq32
module Pcap = Planck_packet.Pcap

(* ---- MAC ---- *)

let mac_string_roundtrip () =
  let s = "02:00:ab:03:00:2a" in
  Alcotest.(check string) "roundtrip" s (Mac.to_string (Mac.of_string s));
  Alcotest.(check string) "broadcast" "ff:ff:ff:ff:ff:ff"
    (Mac.to_string Mac.broadcast)

let mac_bad_strings () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("reject " ^ s) (Invalid_argument "")
        (fun () ->
          try ignore (Mac.of_string s)
          with Invalid_argument _ -> raise (Invalid_argument "")))
    [ "zz:00:00:00:00:00"; "02:00:00:00:00"; "0200ab03002a"; "1:2:3:4:5:300" ]

let mac_shadow () =
  let base = Mac.host 7 in
  let shadow = Mac.shadow base ~alt:3 in
  Alcotest.(check bool) "differs" false (Mac.equal base shadow);
  let recovered, alt = Mac.base_of_shadow shadow in
  Alcotest.(check bool) "base recovered" true (Mac.equal base recovered);
  Alcotest.(check int) "alt recovered" 3 alt;
  Alcotest.(check bool) "alt 0 is identity" true
    (Mac.equal base (Mac.shadow base ~alt:0))

let mac_shadow_qcheck =
  QCheck.Test.make ~name:"shadow/base_of_shadow roundtrip" ~count:200
    QCheck.(pair (int_range 0 65535) (int_range 0 255))
    (fun (host, alt) ->
      let base = Mac.host host in
      let b, a = Mac.base_of_shadow (Mac.shadow base ~alt) in
      Mac.equal b base && a = alt)

(* ---- IPv4 ---- *)

let ipv4_roundtrip () =
  Alcotest.(check string) "roundtrip" "10.0.1.200"
    (Ip.to_string (Ip.of_string "10.0.1.200"));
  Alcotest.(check (option int)) "host_id" (Some 456) (Ip.host_id (Ip.host 456));
  Alcotest.(check (option int)) "foreign has no id" None
    (Ip.host_id (Ip.of_string "192.168.1.1"))

(* ---- Flags ---- *)

let flags_roundtrip_qcheck =
  QCheck.Test.make ~name:"tcp flags byte roundtrip" ~count:64
    QCheck.(int_range 0 0x1F)
    (fun b ->
      H.Tcp_flags.to_byte (H.Tcp_flags.of_byte b) = b)

(* ---- Packet wire roundtrips ---- *)

let sack_gen =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (map
         (fun (a, len) -> (a, a + 1 + len))
         (pair (int_range 0 0xFFFF_0000) (int_range 0 60_000))))

let tcp_packet_gen =
  QCheck.Gen.(
    map
      (fun (((src, dst), (sp, dp)), ((seq, ack), (payload, (flags, sack)))) ->
        P.tcp ~src_mac:(Mac.host src) ~dst_mac:(Mac.host dst)
          ~src_ip:(Ip.host src) ~dst_ip:(Ip.host dst) ~src_port:sp
          ~dst_port:dp ~seq ~ack_seq:ack
          ~flags:(H.Tcp_flags.of_byte flags)
          ~sack ~payload_len:payload ())
      (pair
         (pair (pair (int_range 0 999) (int_range 0 999))
            (pair (int_range 1 65535) (int_range 1 65535)))
         (pair
            (pair (int_range 0 0xFFFF_FFFF) (int_range 0 0xFFFF_FFFF))
            (pair (int_range 0 1460) (pair (int_range 0 0x1F) sack_gen)))))

let tcp_wire_roundtrip_qcheck =
  QCheck.Test.make ~name:"tcp wire serialize/parse roundtrip" ~count:500
    (QCheck.make tcp_packet_gen) (fun p ->
      match P.parse (P.to_wire p) ~wire_size:p.P.wire_size with
      | None -> false
      | Some q -> P.same_headers p q && P.tcp_payload_len q = P.tcp_payload_len p)

let udp_wire_roundtrip () =
  let p =
    P.udp ~src_mac:(Mac.host 1) ~dst_mac:(Mac.host 2) ~src_ip:(Ip.host 1)
      ~dst_ip:(Ip.host 2) ~src_port:53 ~dst_port:5353 ~payload_len:100 ()
  in
  match P.parse (P.to_wire p) ~wire_size:p.P.wire_size with
  | None -> Alcotest.fail "parse failed"
  | Some q -> Alcotest.(check bool) "same" true (P.same_headers p q)

let arp_wire_roundtrip () =
  let p =
    P.arp ~src_mac:(Mac.host 1) ~dst_mac:(Mac.host 2)
      {
        H.Arp.op = H.Arp.Request;
        sender_mac = Mac.host 1;
        sender_ip = Ip.host 1;
        target_mac = Mac.host 2;
        target_ip = Ip.host 2;
      }
  in
  match P.parse (P.to_wire p) ~wire_size:p.P.wire_size with
  | None -> Alcotest.fail "parse failed"
  | Some q -> Alcotest.(check bool) "same" true (P.same_headers p q)

let parse_garbage () =
  Alcotest.(check (option reject)) "short buffer" None
    (P.parse (Bytes.create 5) ~wire_size:64);
  let junk = Bytes.make 64 '\xFF' in
  Alcotest.(check bool) "junk ethertype rejected" true
    (P.parse junk ~wire_size:64 = None)

let packet_sizes () =
  let data =
    P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1) ~src_ip:(Ip.host 0)
      ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2 ~seq:0 ~ack_seq:0
      ~flags:H.Tcp_flags.ack ~payload_len:1460 ()
  in
  Alcotest.(check int) "full frame" 1514 data.P.wire_size;
  Alcotest.(check int) "payload" 1460 (P.tcp_payload_len data);
  Alcotest.(check int) "headers on wire" 54 (Bytes.length (P.to_wire data));
  Alcotest.(check int) "mtu constant" 1500 P.mtu;
  Alcotest.(check int) "max payload" 1460 P.max_tcp_payload

let with_dst_mac_preserves_id () =
  let p =
    P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1) ~src_ip:(Ip.host 0)
      ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2 ~seq:0 ~ack_seq:0
      ~flags:H.Tcp_flags.ack ~payload_len:10 ()
  in
  let q = P.with_dst_mac p (Mac.host 9) in
  Alcotest.(check int) "id preserved" p.P.id q.P.id;
  Alcotest.(check bool) "dst changed" true
    (Mac.equal (P.dst_mac q) (Mac.host 9))

(* ---- Flow keys ---- *)

let flow_key_of_packet () =
  let p =
    P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1) ~src_ip:(Ip.host 0)
      ~dst_ip:(Ip.host 1) ~src_port:1234 ~dst_port:80 ~seq:0 ~ack_seq:0
      ~flags:H.Tcp_flags.syn ~payload_len:0 ()
  in
  match FK.of_packet p with
  | None -> Alcotest.fail "no key"
  | Some k ->
      Alcotest.(check int) "src port" 1234 k.FK.src_port;
      Alcotest.(check int) "proto" H.Ipv4.protocol_tcp k.FK.protocol;
      let r = FK.reverse k in
      Alcotest.(check int) "reverse src" 80 r.FK.src_port;
      Alcotest.(check bool) "reverse twice" true (FK.equal k (FK.reverse r))

let flow_key_arp_none () =
  let p =
    P.arp ~src_mac:(Mac.host 1) ~dst_mac:Mac.broadcast
      {
        H.Arp.op = H.Arp.Reply;
        sender_mac = Mac.host 1;
        sender_ip = Ip.host 1;
        target_mac = Mac.host 2;
        target_ip = Ip.host 2;
      }
  in
  Alcotest.(check bool) "arp has no key" true (FK.of_packet p = None)

let flow_key_to_string_matches_pp () =
  let keys =
    [
      {
        FK.src_ip = Ip.host 0;
        dst_ip = Ip.host 1;
        src_port = 1234;
        dst_port = 80;
        protocol = H.Ipv4.protocol_tcp;
      };
      {
        FK.src_ip = Ip.host 3;
        dst_ip = Ip.host 7;
        src_port = 53;
        dst_port = 40_000;
        protocol = H.Ipv4.protocol_udp;
      };
      {
        FK.src_ip = Ip.of_int 0xFF_FF_FF_FF;
        dst_ip = Ip.of_int 0;
        src_port = 0;
        dst_port = 65_535;
        protocol = 132;
      };
    ]
  in
  List.iter
    (fun k ->
      Alcotest.(check string)
        "to_string matches pp"
        (Format.asprintf "%a" FK.pp k)
        (FK.to_string k))
    keys

(* ---- Seq32 ---- *)

let seq32_basics () =
  Alcotest.(check int) "delta forward" 10 (Seq32.delta ~prev:0 ~cur:10);
  Alcotest.(check int) "delta backward" (-10) (Seq32.delta ~prev:10 ~cur:0);
  Alcotest.(check int) "delta across wrap" 20
    (Seq32.delta ~prev:(Seq32.modulus - 10) ~cur:10);
  Alcotest.(check int) "unwrap across wrap"
    (Seq32.modulus + 5)
    (Seq32.unwrap ~base:(Seq32.modulus - 3) 5)

let seq32_qcheck =
  QCheck.Test.make ~name:"unwrap recovers full offsets near base" ~count:500
    QCheck.(pair (int_range 0 (1 lsl 40)) (int_range (-1000000) 1000000))
    (fun (base, offset) ->
      QCheck.assume (base + offset >= 0);
      let full = base + offset in
      Seq32.unwrap ~base (Seq32.wrap full) = full)

(* ---- Pcap ---- *)

let pcap_format () =
  let pcap = Pcap.create () in
  let p =
    P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1) ~src_ip:(Ip.host 0)
      ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2 ~seq:0 ~ack_seq:0
      ~flags:H.Tcp_flags.ack ~payload_len:1460 ()
  in
  Pcap.add pcap ~time:(Planck_util.Time.us 1500) p;
  let c = Pcap.contents pcap in
  Alcotest.(check int) "count" 1 (Pcap.packet_count pcap);
  (* Global header 24 + record header 16 + 54 captured bytes. *)
  Alcotest.(check int) "length" (24 + 16 + 54) (String.length c);
  Alcotest.(check char) "magic LE byte 0" '\xd4' c.[0];
  Alcotest.(check char) "magic LE byte 3" '\xa1' c.[3];
  (* ts_usec at offset 28 = 1500. *)
  Alcotest.(check int) "ts_usec" 1500
    (Char.code c.[28] lor (Char.code c.[29] lsl 8));
  (* orig_len at offset 36 = 1514. *)
  Alcotest.(check int) "orig len" 1514
    (Char.code c.[36] lor (Char.code c.[37] lsl 8))

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "mac string roundtrip" `Quick mac_string_roundtrip;
    Alcotest.test_case "mac rejects malformed" `Quick mac_bad_strings;
    Alcotest.test_case "shadow mac encode/decode" `Quick mac_shadow;
    qtest mac_shadow_qcheck;
    Alcotest.test_case "ipv4 roundtrip and host ids" `Quick ipv4_roundtrip;
    qtest flags_roundtrip_qcheck;
    qtest tcp_wire_roundtrip_qcheck;
    Alcotest.test_case "udp wire roundtrip" `Quick udp_wire_roundtrip;
    Alcotest.test_case "arp wire roundtrip" `Quick arp_wire_roundtrip;
    Alcotest.test_case "parse rejects garbage" `Quick parse_garbage;
    Alcotest.test_case "packet sizes" `Quick packet_sizes;
    Alcotest.test_case "rewrite preserves id" `Quick with_dst_mac_preserves_id;
    Alcotest.test_case "flow key extraction" `Quick flow_key_of_packet;
    Alcotest.test_case "arp has no flow key" `Quick flow_key_arp_none;
    Alcotest.test_case "flow key to_string matches pp" `Quick
      flow_key_to_string_matches_pp;
    Alcotest.test_case "seq32 basics" `Quick seq32_basics;
    qtest seq32_qcheck;
    Alcotest.test_case "pcap file format" `Quick pcap_format;
  ]
