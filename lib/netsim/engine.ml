module Time = Planck_util.Time
module Heap = Planck_util.Heap

type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : Time.t;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0; processed = 0 }
let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.add t.queue ~key:time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Heap.add t.queue ~key:(t.clock + delay) f

let every t ~period ?until f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () =
    f ();
    match until with
    | Some horizon when t.clock + period > horizon -> ()
    | Some _ | None -> schedule t ~delay:period tick
  in
  schedule t ~delay:period tick

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      f ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Heap.min_key t.queue with
        | Some time when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- horizon;
            continue := false
      done

let events_processed t = t.processed
let pending t = Heap.length t.queue
