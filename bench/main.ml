(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index), plus Bechamel
   microbenchmarks of the hot paths.

     dune exec bench/main.exe                 # everything, reduced scale
     dune exec bench/main.exe -- fig14 fig17  # a subset
     dune exec bench/main.exe -- --full       # paper-scale (slow)
     dune exec bench/main.exe -- --list       # what exists
*)

let experiments : (string * string * (Exp_common.opts -> unit)) list =
  [
    ( "table1",
      "measurement speed comparison (Planck vs published systems)",
      Exp_table1.run );
    ( "fig2-4",
      "impact of oversubscribed mirroring on loss/latency/throughput",
      Exp_mirror_impact.run );
    ("fig5-7", "sample burst and inter-arrival structure", Exp_samples.run);
    ( "fig8-9",
      "sample latency under congestion and vs oversubscription (+ fig12)",
      Exp_latency.run );
    ( "fig10-11",
      "throughput estimation: smoothing and accuracy",
      Exp_estimation.run );
    ( "fig13-16",
      "shadow-MAC routes, control-loop timeline, ARP vs OpenFlow",
      Exp_reroute.run );
    ("fig14-18", "traffic-engineering evaluation", Exp_te.run);
    ( "sec9-1",
      "scalability plan: collectors per datacenter",
      Exp_scalability.run );
    ( "ablations",
      "design-choice ablations (arbitration, buffers, estimator, TE)",
      Exp_ablations.run );
  ]

let run_selected names opts with_micro =
  let t0 = Unix.gettimeofday () in
  let selected =
    match names with
    | [] -> experiments
    | names ->
        List.filter
          (fun (name, _, _) ->
            List.exists
              (fun n ->
                n = name
                || (String.length n < String.length name
                    && String.sub name 0 (String.length n) = n))
              names)
          experiments
  in
  if selected = [] && not with_micro then begin
    Printf.eprintf "no experiment matches %s\n" (String.concat ", " names);
    exit 1
  end;
  List.iter
    (fun (name, _, run) ->
      let t = Unix.gettimeofday () in
      (try run opts
       with exn ->
         Printf.printf "  [%s FAILED: %s]\n%!" name (Printexc.to_string exn));
      Printf.printf "  [%s took %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    selected;
  if with_micro then Micro.run ();
  Printf.printf "\nTotal wall time: %.1fs\n%!" (Unix.gettimeofday () -. t0)

open Cmdliner

let names =
  let doc =
    "Experiments to run (prefix match), e.g. fig14. Default: all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let runs =
  let doc = "Repetitions for multi-run experiments." in
  Arg.(value & opt int Exp_common.default_opts.Exp_common.runs
       & info [ "runs" ] ~doc)

let full =
  let doc =
    "Use paper-scale parameters (15-run averages, up to multi-GiB flows). \
     Slow: expect hours."
  in
  Arg.(value & flag & info [ "full" ] ~doc)

let seed =
  let doc = "Base random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let list_flag =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let micro_flag =
  let doc = "Also run the Bechamel microbenchmarks." in
  Arg.(value & flag & info [ "micro" ] ~doc)

let main names runs full seed list_experiments with_micro =
  if list_experiments then begin
    List.iter
      (fun (name, doc, _) -> Printf.printf "%-10s %s\n" name doc)
      experiments;
    Printf.printf "%-10s %s\n" "(--micro)" "Bechamel hot-path microbenchmarks"
  end
  else begin
    let opts =
      {
        Exp_common.runs;
        full;
        seed;
        verbose = false;
      }
    in
    run_selected names opts with_micro
  end

let cmd =
  let doc =
    "Regenerate the tables and figures of 'Planck: millisecond-scale \
     monitoring and control for commodity networks' (SIGCOMM 2014)"
  in
  Cmd.v
    (Cmd.info "planck-bench" ~doc)
    Term.(const main $ names $ runs $ full $ seed $ list_flag $ micro_flag)

let () = exit (Cmd.eval cmd)
