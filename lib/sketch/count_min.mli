(** Conservative-update count-min sketch over per-flow byte counts.

    The approximate tier of the bounded-state collector: every sampled
    flow is counted here in O(depth) words of work and zero
    allocation, and only flows whose estimate crosses the promotion
    threshold graduate to an exact {!Planck_collector.Flow_table}
    entry. Count-min never underestimates; conservative update (raise
    each row only to the new minimum) keeps the overestimate from
    collisions as small as the structure allows.

    Row hashes are the Kirsch–Mitzenmacher construction: one seeded
    FNV-1a base hash over the 5-tuple's fields, then a per-row
    xorshift* finalizer. Seeds come from {!Planck_util.Prng}, so two
    sketches built with the same [seed] are identical — no
    [Hashtbl.hash], no wall-clock, no global state. *)

type t

val create : ?seed:int -> ?depth:int -> ?width:int -> unit -> t
(** [width] (default 16384) is rounded up to a power of two; [depth]
    defaults to 4; [seed] (default [0x5eed]) derives the per-row hash
    seeds. Raises [Invalid_argument] if [depth < 1] or [width < 1]. *)

val update : t -> Planck_packet.Flow_key.t -> int -> int
(** [update t key bytes] adds [bytes] to the key's counters
    (conservative update) and returns the post-update estimate. *)

val query : t -> Planck_packet.Flow_key.t -> int
(** Current estimate: the minimum over the key's row counters. Never
    less than the true total added since the last {!halve}/{!clear}. *)

val halve : t -> unit
(** Epoch decay: halve every counter (round toward zero). Called on a
    fixed clock this makes a counter converge to [rate * 2 * interval],
    so stale mice fade out instead of accreting forever. *)

val clear : t -> unit

val occupied : t -> int
(** Number of non-zero counters across all rows — the occupancy gauge.
    O(depth * width); callers keep it off per-sample paths. *)

val words : t -> int
(** Approximate resident size in machine words (counters dominate). *)

val depth : t -> int

val width : t -> int
(** Actual width after power-of-two rounding. *)

val row_index : t -> Planck_packet.Flow_key.t -> row:int -> int
(** The bucket [key] maps to in [row] — exposed so tests can pin the
    seeded hash layout with fixed vectors. Raises [Invalid_argument]
    if [row] is out of range. *)
