(** Workload generators (paper §7.1), mirroring Hedera/DevoFlow.

    All generators are driven by an explicit PRNG so runs are
    reproducible; host indices are contiguous within pods, as in the
    paper. *)

type pair = { src : int; dst : int }

val stride : hosts:int -> k:int -> pair list
(** [stride ~hosts ~k]: host [x] sends to [(x + k) mod hosts]. With
    [k = 8] on 16 hosts every flow crosses the core. *)

val random_bijection : Planck_util.Prng.t -> hosts:int -> pair list
(** A uniformly random permutation with no fixed points: every host
    sources exactly one flow and sinks exactly one flow. *)

val random_uniform : Planck_util.Prng.t -> hosts:int -> pair list
(** Every host picks a destination (≠ itself) uniformly; hotspots can
    form. *)

val staggered_prob :
  Planck_util.Prng.t ->
  shape:Planck_topology.Fat_tree.shape ->
  p_edge:float ->
  p_pod:float ->
  pair list
(** Hedera's staggered-probability workload: destination within the
    same edge switch with probability [p_edge], elsewhere in the same
    pod with [p_pod], otherwise uniformly outside the pod. *)

val shuffle_orders : Planck_util.Prng.t -> hosts:int -> int array array
(** [orders.(h)] is the random order in which host [h] visits the other
    hosts during a shuffle. *)

(** {2 Churn (bounded-state stressor)}

    A Poisson stream of short flows — mostly mice, with every k-th
    flow an elephant. The flow-arrival rate, not the concurrent-flow
    count, is the knob: it stresses collector flow-table occupancy the
    way the sketch tier is designed for. *)

type churn_spec = {
  flows : int;  (** total flows to launch *)
  mean_interarrival : Planck_util.Time.t;
  mouse_bytes : int;
  elephant_bytes : int;
  elephant_every : int;
      (** every k-th flow is an elephant; [0] means mice only *)
}

val default_churn : churn_spec
(** 2000 flows at one per 50 µs; 4-segment (5.8 kB) mice with a 2 MB
    elephant every 50th flow. *)

type arrival = { at : Planck_util.Time.t; src : int; dst : int; size : int }

val churn :
  Planck_util.Prng.t -> hosts:int -> spec:churn_spec -> arrival list
(** Arrival trace in launch order: exponential interarrivals,
    uniformly random source, uniformly random destination (≠ source). *)
