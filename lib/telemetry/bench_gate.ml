(* Tolerance-band comparison of bench micro rows against a committed
   BENCH_N.json, plus the cross-file trend table. Pure data plumbing —
   lives in the telemetry library (not bench/) so tests can exercise
   the comparator without linking the bench harness. *)

type row = { id : string; name : string; ns_per_op : float option }

let slug s =
  let buf = Buffer.create (String.length s) in
  let pending_dash = ref false in
  String.iter
    (fun c ->
      let c = Char.lowercase_ascii c in
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
          if !pending_dash && Buffer.length buf > 0 then
            Buffer.add_char buf '-';
          pending_dash := false;
          Buffer.add_char buf c
      | _ -> pending_dash := true)
    s;
  Buffer.contents buf

(* ---- parsing ---- *)

let row_of_json e =
  match Option.bind (Json.member e "name") Json.to_string_opt with
  | None -> Error "micro row without a \"name\" member"
  | Some name ->
      let id =
        match Option.bind (Json.member e "id") Json.to_string_opt with
        | Some id -> id
        | None -> slug name
      in
      let ns_per_op =
        Option.bind (Json.member e "ns_per_op") Json.to_float_opt
      in
      Ok { id; name; ns_per_op }

let rows_of_json doc =
  let entries =
    match Json.member doc "micro" with
    | Some m -> Json.to_list_opt m
    | None -> Json.to_list_opt doc
  in
  match entries with
  | None ->
      Error "expected a bench document with a \"micro\" member or a bare list"
  | Some entries ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            match row_of_json e with
            | Ok r -> go (r :: acc) rest
            | Error _ as e -> e)
      in
      go [] entries

let rows_to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("id", Json.String r.id);
             ("name", Json.String r.name);
             ( "ns_per_op",
               match r.ns_per_op with
               | Some ns -> Json.Float ns
               | None -> Json.Null );
           ])
       rows)

(* ---- comparison ---- *)

type status =
  | Improved of float
  | In_band of float
  | Regressed of float
  | New_row
  | Removed_row
  | Missing_estimate
  | No_baseline_estimate

type comparison = {
  cmp_id : string;
  cmp_name : string;
  baseline_ns : float option;
  current_ns : float option;
  tolerance : float;
  status : status;
}

let compare_rows ?(tolerance = 0.15) ?(noise_floor_ns = 5.0) ?(overrides = [])
    ~baseline ~current () =
  let tol id =
    match List.assoc_opt id overrides with Some t -> t | None -> tolerance
  in
  (* Primary join is the stable id; fall back to the display name so a
     current run with curated ids still checks against baselines
     recorded before ids existed (whose ids are slugs of the names). *)
  let find rows r0 =
    match List.find_opt (fun r -> String.equal r.id r0.id) rows with
    | Some _ as hit -> hit
    | None -> List.find_opt (fun r -> String.equal r.name r0.name) rows
  in
  let of_baseline b =
    let tolerance = tol b.id in
    let cur = find current b in
    let status =
      match (b.ns_per_op, cur) with
      | _, None -> Removed_row
      | None, Some _ -> No_baseline_estimate
      | Some _, Some { ns_per_op = None; _ } -> Missing_estimate
      | Some base, Some { ns_per_op = Some now; _ } ->
          (* The band is multiplicative plus a small absolute floor:
             sub-50ns rows sit at clock granularity, where a few ns of
             scheduler jitter exceeds any sane percentage. *)
          let delta = (now -. base) /. base in
          if now > (base *. (1. +. tolerance)) +. noise_floor_ns then
            Regressed delta
          else if now < (base *. (1. -. tolerance)) -. noise_floor_ns then
            Improved delta
          else In_band delta
    in
    {
      cmp_id = b.id;
      cmp_name = b.name;
      baseline_ns = b.ns_per_op;
      current_ns = Option.bind cur (fun r -> r.ns_per_op);
      tolerance;
      status;
    }
  in
  let news =
    List.filter_map
      (fun c ->
        if Option.is_some (find baseline c) then None
        else
          Some
            {
              cmp_id = c.id;
              cmp_name = c.name;
              baseline_ns = None;
              current_ns = c.ns_per_op;
              tolerance = tol c.id;
              status = New_row;
            })
      current
  in
  List.map of_baseline baseline @ news

let fails = function
  | Regressed _ | Removed_row | Missing_estimate -> true
  | Improved _ | In_band _ | New_row | No_baseline_estimate -> false

let passes comparisons =
  not (List.exists (fun c -> fails c.status) comparisons)

let ns_cell = function Some ns -> Printf.sprintf "%.1f" ns | None -> "-"

let render_check comparisons =
  let buf = Buffer.create 1024 in
  let line c =
    let verdict, detail =
      match c.status with
      | Improved d -> ("OK  ", Printf.sprintf "improved %+.1f%%" (100. *. d))
      | In_band d -> ("OK  ", Printf.sprintf "in band %+.1f%%" (100. *. d))
      | Regressed d ->
          ( "FAIL",
            Printf.sprintf "regressed %+.1f%% (band +/-%.0f%%)" (100. *. d)
              (100. *. c.tolerance) )
      | New_row -> ("OK  ", "new row (no baseline)")
      | Removed_row -> ("FAIL", "row missing from this run")
      | Missing_estimate -> ("FAIL", "no estimate this run (baseline had one)")
      | No_baseline_estimate -> ("OK  ", "baseline had no estimate")
    in
    Buffer.add_string buf
      (Printf.sprintf "  %s %-42s %10s -> %10s ns/op  %s\n" verdict c.cmp_id
         (ns_cell c.baseline_ns) (ns_cell c.current_ns) detail)
  in
  List.iter line comparisons;
  let failed = List.filter (fun c -> fails c.status) comparisons in
  Buffer.add_string buf
    (if failed = [] then
       Printf.sprintf "bench gate: PASS (%d rows)\n" (List.length comparisons)
     else
       Printf.sprintf "bench gate: FAIL (%d of %d rows: %s)\n"
         (List.length failed) (List.length comparisons)
         (String.concat ", " (List.map (fun c -> c.cmp_id) failed)));
  Buffer.contents buf

let parse_override s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "expected 'row-id=fraction', got %S" s)
  | Some i -> (
      let id = String.sub s 0 i in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt frac with
      | Some f when f >= 0.0 && id <> "" -> Ok (id, f)
      | _ ->
          Error
            (Printf.sprintf
               "expected 'row-id=fraction' with fraction >= 0, got %S" s))

(* ---- committed trajectory ---- *)

let bench_number file =
  (* BENCH_<n>.json *)
  let prefix = "BENCH_" and suffix = ".json" in
  let lp = String.length prefix and ls = String.length suffix in
  let l = String.length file in
  if
    l > lp + ls
    && String.sub file 0 lp = prefix
    && String.sub file (l - ls) ls = suffix
  then int_of_string_opt (String.sub file lp (l - lp - ls))
  else None

let bench_files ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             match bench_number f with
             | Some n -> Some (n, Filename.concat dir f)
             | None -> None)
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      |> List.map snd

let latest_bench ~dir =
  match List.rev (bench_files ~dir) with [] -> None | p :: _ -> Some p

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let load_rows ~path =
  match read_file path with
  | Error e -> Error e
  | Ok contents -> (
      match Json.of_string contents with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok doc -> (
          match rows_of_json doc with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok rows -> Ok rows))

let trend ~dir =
  match bench_files ~dir with
  | [] -> Error (Printf.sprintf "no BENCH_*.json under %s" dir)
  | files -> (
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | path :: rest -> (
            match load_rows ~path with
            | Error e -> Error e
            | Ok rows ->
                load ((Filename.remove_extension (Filename.basename path),
                       rows)
                      :: acc)
                  rest)
      in
      match load [] files with
      | Error e -> Error e
      | Ok columns ->
          (* Union of rows in first-appearance order, folded across the
             id scheme change: a row whose display name already appeared
             under an earlier id (pre-id baselines key on name slugs)
             continues that series instead of starting a new one. *)
          let seen = Hashtbl.create 64 in
          let name_to_id = Hashtbl.create 64 in
          let canonical r =
            if Hashtbl.mem seen r.id then r.id
            else
              match Hashtbl.find_opt name_to_id r.name with
              | Some id -> id
              | None -> r.id
          in
          let ids = ref [] in
          List.iter
            (fun (_, rows) ->
              List.iter
                (fun r ->
                  let id = canonical r in
                  if not (Hashtbl.mem seen id) then begin
                    Hashtbl.replace seen id ();
                    ids := id :: !ids
                  end;
                  if not (Hashtbl.mem name_to_id r.name) then
                    Hashtbl.replace name_to_id r.name id)
                rows)
            columns;
          let ids = List.rev !ids in
          let buf = Buffer.create 2048 in
          Buffer.add_string buf "# Microbenchmark trend (ns/op)\n\n";
          Buffer.add_string buf
            ("| micro | "
            ^ String.concat " | " (List.map fst columns)
            ^ " |\n");
          Buffer.add_string buf
            ("|---|" ^ String.concat "" (List.map (fun _ -> "---|") columns)
            ^ "\n");
          List.iter
            (fun id ->
              let cells =
                List.map
                  (fun (_, rows) ->
                    match
                      List.find_opt
                        (fun r -> String.equal (canonical r) id)
                        rows
                    with
                    | Some { ns_per_op = Some ns; _ } ->
                        Printf.sprintf "%.1f" ns
                    | Some { ns_per_op = None; _ } | None -> "—")
                  columns
              in
              Buffer.add_string buf
                ("| `" ^ id ^ "` | " ^ String.concat " | " cells ^ " |\n"))
            ids;
          Ok (Buffer.contents buf))
