module Tcp_flags = struct
  type t = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

  let none = { syn = false; ack = false; fin = false; rst = false; psh = false }
  let syn = { none with syn = true }
  let syn_ack = { none with syn = true; ack = true }
  let ack = { none with ack = true }
  let fin_ack = { none with fin = true; ack = true }

  (* Bit layout follows the TCP header: FIN=0x01 SYN=0x02 RST=0x04
     PSH=0x08 ACK=0x10. *)
  let to_byte t =
    (if t.fin then 0x01 else 0)
    lor (if t.syn then 0x02 else 0)
    lor (if t.rst then 0x04 else 0)
    lor (if t.psh then 0x08 else 0)
    lor if t.ack then 0x10 else 0

  let of_byte b =
    {
      fin = b land 0x01 <> 0;
      syn = b land 0x02 <> 0;
      rst = b land 0x04 <> 0;
      psh = b land 0x08 <> 0;
      ack = b land 0x10 <> 0;
    }

  let equal (a : t) (b : t) = Int.equal (to_byte a) (to_byte b)

  let pp ppf t =
    let letters =
      List.filter_map
        (fun (flag, c) -> if flag then Some c else None)
        [ (t.syn, "S"); (t.ack, "A"); (t.fin, "F"); (t.rst, "R"); (t.psh, "P") ]
    in
    Format.pp_print_string ppf
      (if letters = [] then "." else String.concat "" letters)
end

module Eth = struct
  type t = { src : Mac.t; dst : Mac.t; ethertype : int }

  let ethertype_ipv4 = 0x0800
  let ethertype_arp = 0x0806
  let size = 14

  let equal (a : t) (b : t) =
    Mac.equal a.src b.src && Mac.equal a.dst b.dst
    && Int.equal a.ethertype b.ethertype

  let pp ppf t =
    Format.fprintf ppf "%a -> %a (0x%04x)" Mac.pp t.src Mac.pp t.dst
      t.ethertype
end

module Arp = struct
  type op = Request | Reply

  type t = {
    op : op;
    sender_mac : Mac.t;
    sender_ip : Ipv4_addr.t;
    target_mac : Mac.t;
    target_ip : Ipv4_addr.t;
  }

  let size = 28

  let equal_op a b =
    match (a, b) with
    | Request, Request | Reply, Reply -> true
    | (Request | Reply), _ -> false

  let equal (a : t) (b : t) =
    equal_op a.op b.op
    && Mac.equal a.sender_mac b.sender_mac
    && Ipv4_addr.equal a.sender_ip b.sender_ip
    && Mac.equal a.target_mac b.target_mac
    && Ipv4_addr.equal a.target_ip b.target_ip

  let pp ppf t =
    let op = match t.op with Request -> "who-has" | Reply -> "is-at" in
    Format.fprintf ppf "arp %s %a tell %a (%a)" op Ipv4_addr.pp t.target_ip
      Ipv4_addr.pp t.sender_ip Mac.pp t.sender_mac
end

module Ipv4 = struct
  type t = {
    src : Ipv4_addr.t;
    dst : Ipv4_addr.t;
    protocol : int;
    ttl : int;
    total_length : int;
  }

  let protocol_tcp = 6
  let protocol_udp = 17
  let size = 20

  let equal (a : t) (b : t) =
    Ipv4_addr.equal a.src b.src
    && Ipv4_addr.equal a.dst b.dst
    && Int.equal a.protocol b.protocol
    && Int.equal a.ttl b.ttl
    && Int.equal a.total_length b.total_length

  let pp ppf t =
    Format.fprintf ppf "%a -> %a proto=%d len=%d" Ipv4_addr.pp t.src
      Ipv4_addr.pp t.dst t.protocol t.total_length
end

module Tcp = struct
  type t = {
    src_port : int;
    dst_port : int;
    seq : int;
    ack_seq : int;
    flags : Tcp_flags.t;
    window : int;
    sack : (int * int) list;
  }

  let size = 20
  let max_sack_blocks = 3

  (* SACK option: kind (1) + length (1) + 8 bytes per block, padded to a
     multiple of 4 with NOPs. *)
  let header_size t =
    match t.sack with
    | [] -> size
    | blocks ->
        let option_bytes = 2 + (8 * List.length blocks) in
        size + ((option_bytes + 3) / 4 * 4)

  let equal_sack_block (a1, a2) (b1, b2) = Int.equal a1 b1 && Int.equal a2 b2

  let equal (a : t) (b : t) =
    Int.equal a.src_port b.src_port
    && Int.equal a.dst_port b.dst_port
    && Int.equal a.seq b.seq
    && Int.equal a.ack_seq b.ack_seq
    && Tcp_flags.equal a.flags b.flags
    && Int.equal a.window b.window
    && List.equal equal_sack_block a.sack b.sack

  let pp ppf t =
    Format.fprintf ppf "tcp %d -> %d seq=%d ack=%d [%a]" t.src_port t.dst_port
      t.seq t.ack_seq Tcp_flags.pp t.flags
end

module Udp = struct
  type t = { src_port : int; dst_port : int; length : int }

  let size = 8

  let equal (a : t) (b : t) =
    Int.equal a.src_port b.src_port
    && Int.equal a.dst_port b.dst_port
    && Int.equal a.length b.length

  let pp ppf t =
    Format.fprintf ppf "udp %d -> %d len=%d" t.src_port t.dst_port t.length
end
