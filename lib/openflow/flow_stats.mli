(** OpenFlow-style per-flow byte counters in the switch ASIC.

    This is the substrate the {e polling} traffic-engineering baselines
    read: every forwarded frame increments a per-5-tuple counter, and
    the controller reads the whole table through the control channel,
    paying its latency. Planck exists because this path is slow;
    building it honestly lets the comparison in §7 run. *)

type counter = {
  key : Planck_packet.Flow_key.t;
  bytes : int;
  packets : int;
  dst_mac : Planck_packet.Mac.t;  (** MAC of the last counted frame *)
}

type t

val attach : Planck_netsim.Switch.t -> t
(** Install the counting tap on a switch. One per switch. *)

val snapshot : t -> counter list
(** Current counter values (zero-latency read, for tests). *)

val poll :
  t -> channel:Control_channel.t -> (counter list -> unit) -> unit
(** Read the counters as a controller would: the callback runs after
    the control-channel round trip + read time, with values captured at
    {e capture time} (i.e. the values are as stale as the read is
    slow). *)

val flow_count : t -> int
