module Time = Planck_util.Time
module Prng = Planck_util.Prng
module Stats = Planck_util.Stats
module Fat_tree = Planck_topology.Fat_tree
module Fabric = Planck_topology.Fabric
module Shard = Planck_netsim.Shard
module Generate = Planck_workloads.Generate
module Runner = Planck_workloads.Runner
module Engine = Planck_netsim.Engine
module Journal = Planck_telemetry.Journal

type workload =
  | Stride of int
  | Shuffle of { concurrency : int }
  | Random_bijection
  | Random
  | Staggered_prob of { p_edge : float; p_pod : float }
  | Churn of Generate.churn_spec

let workload_name = function
  | Stride k -> Printf.sprintf "stride(%d)" k
  | Shuffle _ -> "shuffle"
  | Random_bijection -> "random bijection"
  | Random -> "random"
  | Staggered_prob _ -> "staggered prob"
  | Churn _ -> "churn"

type summary = {
  workload : workload;
  scheme_name : string;
  flow_size : int;
  avg_goodput_gbps : float;
  flows : Runner.flow_result list;
  host_done : Time.t option array option;
  reroutes : int;
  all_completed : bool;
}

let pairs_for (testbed : Testbed.t) workload prng =
  let hosts = Testbed.host_count testbed in
  match workload with
  | Stride k -> Generate.stride ~hosts ~k
  | Random_bijection -> Generate.random_bijection prng ~hosts
  | Random -> Generate.random_uniform prng ~hosts
  | Staggered_prob { p_edge; p_pod } -> (
      match testbed.Testbed.spec.Testbed.topology with
      | Testbed.Fat_tree { k } ->
          Generate.staggered_prob prng ~shape:(Fat_tree.shape ~k) ~p_edge
            ~p_pod
      | Testbed.Single_switch _ | Testbed.Jellyfish _ ->
          (* No pod structure: staggered degenerates to uniform. *)
          Generate.random_uniform prng ~hosts)
  | Shuffle _ -> invalid_arg "Experiment.pairs_for: shuffle is not pair-based"
  | Churn _ -> invalid_arg "Experiment.pairs_for: churn is not pair-based"

(* Observability hook: the CLI and bench install an observer (e.g. one
   that builds a Recorder on the fresh testbed) because every run
   creates its testbed internally; the observer may return a per-flow
   callback, threaded to the Runner. *)
let observer :
    (Testbed.t -> Scheme.deployed -> (Planck_tcp.Flow.t -> unit) option)
    option
    Atomic.t =
  Atomic.make None

let set_observer f = Atomic.set observer f

let phase_marker testbed name detail =
  if Journal.enabled Journal.default then
    Journal.record Journal.default
      ~ts:(Engine.now testbed.Testbed.engine)
      (Journal.Phase_marker { name; detail })

let run ~spec ~scheme ~workload ~size ?(flow_table = Scheme.Exact) ?horizon
    ?seed () =
  let spec =
    match seed with
    | None -> spec
    | Some seed -> { spec with Testbed.seed = seed }
  in
  let testbed = Testbed.create spec in
  let deployed = Scheme.deploy ~flow_table testbed scheme in
  phase_marker testbed "run_start"
    (Printf.sprintf "%s / %s, %d B flows, seed %d" (workload_name workload)
       (Scheme.name scheme) size spec.Testbed.seed);
  let on_flow =
    match Atomic.get observer with
    | None -> None
    | Some observe -> observe testbed deployed
  in
  let wl_prng = Prng.split testbed.Testbed.prng in
  let flows, host_done =
    match workload with
    | Shuffle { concurrency } ->
        if Option.is_some testbed.Testbed.shard then
          invalid_arg
            "Experiment.run: shuffle starts flows mid-run from completion \
             callbacks; it is not shard-aware";
        let result =
          Runner.run_shuffle testbed.Testbed.engine
            ~endpoints:testbed.Testbed.endpoints
            ~orders:
              (Generate.shuffle_orders wl_prng
                 ~hosts:(Testbed.host_count testbed))
            ~concurrency ~size ?on_flow ?horizon ()
        in
        (result.Runner.flows, Some result.Runner.host_done)
    | Churn churn_spec ->
        if Option.is_some testbed.Testbed.shard then
          invalid_arg
            "Experiment.run: churn schedules launches on the reference \
             engine only; it is not shard-aware";
        (* flow sizes come from the churn spec; [size] is unused *)
        let arrivals =
          Generate.churn wl_prng
            ~hosts:(Testbed.host_count testbed)
            ~spec:churn_spec
        in
        ( Runner.run_churn testbed.Testbed.engine
            ~endpoints:testbed.Testbed.endpoints ~arrivals ?on_flow ?horizon
            (),
          None )
    | Stride _ | Random_bijection | Random | Staggered_prob _ -> (
        let pairs = pairs_for testbed workload wl_prng in
        match testbed.Testbed.shard with
        | None ->
            ( Runner.run_pairs testbed.Testbed.engine
                ~endpoints:testbed.Testbed.endpoints ~pairs ~size ?on_flow
                ?horizon (),
              None )
        | Some group ->
            if Shard.shards group > 1 && Option.is_some on_flow then
              invalid_arg
                "Experiment.run: flow observers (timeseries/trace) read \
                 remote shards; they need --shards 1";
            let fabric = testbed.Testbed.fabric in
            let flows =
              Runner.run_pairs_sharded group
                ~shard_of_src:(Fabric.shard_of_host fabric)
                ~endpoints:testbed.Testbed.endpoints ~pairs ~size ?on_flow
                ?horizon ()
            in
            (* Deterministic journal merge before the run_end marker so
               the merged stream reads exactly like a single-domain
               run's. *)
            Shard.merge_journals group ~into:Journal.default;
            (flows, None))
  in
  let summary =
    {
      workload;
      scheme_name = Scheme.name scheme;
      flow_size = size;
      avg_goodput_gbps = Runner.average_goodput_gbps flows;
      flows;
      host_done;
      reroutes = Scheme.reroutes deployed;
      all_completed = List.for_all (fun r -> r.Runner.completed) flows;
    }
  in
  phase_marker testbed "run_end"
    (Printf.sprintf "avg %.3f Gbps, %d reroutes, all_completed=%b"
       summary.avg_goodput_gbps summary.reroutes summary.all_completed);
  summary

let repeat ~runs ~spec ~scheme ~workload ~size ?flow_table ?horizon () =
  List.init runs (fun i ->
      run ~spec ~scheme ~workload ~size ?flow_table ?horizon
        ~seed:(spec.Testbed.seed + i) ())

let mean_avg_goodput summaries =
  Stats.mean (List.map (fun s -> s.avg_goodput_gbps) summaries)
