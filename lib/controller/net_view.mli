(** The controller application's view of the network (the [net] of
    Algorithm 1): the flows it has heard about, their last estimated
    rates, and the route (shadow MAC) each is currently using.

    Flow entries expire after a timeout so that routing decisions never
    use stale rates (paper §6.2, "Reacting to Congestion"). Link loads
    are derived on demand by walking each live flow's current path. *)

type flow = {
  key : Planck_packet.Flow_key.t;
  mutable rate : Planck_util.Rate.t;
  mutable dst_mac : Planck_packet.Mac.t;  (** current route *)
  mutable last_heard : Planck_util.Time.t;
  mutable no_reroute_until : Planck_util.Time.t;
      (** cooldown while a reroute is in flight *)
  mutable commanded : bool;
      (** the controller has assigned this flow's route itself; samples
          (which lag by the mirror-port buffering) no longer override
          [dst_mac] *)
}

type t

val create : Planck_topology.Routing.t -> flow_timeout:Planck_util.Time.t -> t

val observe :
  t ->
  now:Planck_util.Time.t ->
  key:Planck_packet.Flow_key.t ->
  rate:Planck_util.Rate.t ->
  dst_mac:Planck_packet.Mac.t ->
  flow
(** Record (or refresh) a flow heard in a congestion notification. *)

val expire : t -> now:Planck_util.Time.t -> unit
(** Drop entries not heard within the flow timeout
    ([remove_old_flows]). *)

val find : t -> Planck_packet.Flow_key.t -> flow option
val live_flows : t -> flow list
val size : t -> int

val path_links : t -> flow -> (int * int) list
(** (switch, egress port) links of the flow's current route. *)

val bottleneck :
  t ->
  capacity:Planck_util.Rate.t ->
  exclude:flow ->
  links:(int * int) list ->
  Planck_util.Rate.t
(** [find_path_btlneck]: the minimum, over [links], of capacity minus
    the load from every live flow other than [exclude] whose current
    path crosses the link. *)

val set_route : t -> flow -> Planck_packet.Mac.t -> unit
