type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  symbol : string;
  classification : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let v ?(symbol = "") ?(classification = "") ~rule ~severity ~file ~line ~col
    message =
  { rule; severity; file; line; col; message; symbol; classification }

let compare_by_location a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c
