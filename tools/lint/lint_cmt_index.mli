(** Whole-repo typed index built from [.cmt]/[.cmti] artifacts.

    One load pass produces, for every compilation unit in the repo:
    structure-level value definitions, the references between them (the
    call-graph edges), typed events the deep rules consume (polymorphic
    compare/equality uses with instantiated types, allocation smells,
    scheduled closures, determinism sources), [.mli] exports, and a
    transparent type-abbreviation table.

    Identifiers are qualified def ids: ["Planck_util__Heap.add"],
    ["Planck_netsim__Engine.Timer.cancel"]. Dune's wrapped-library
    aliases and local [module X = ...] aliases are normalised away so
    the graph has one node per value. *)

type ty_shape =
  | Imm  (** int / char / bool / unit — safe under polymorphic compare *)
  | TFloat
  | TString
  | TPoly  (** still a type variable at the use site *)
  | TOther of string  (** structured type; payload is the rendered type *)

type source_kind = Wall_clock | Ambient_random | Hashtbl_iter

type mutability =
  | Mut_none  (** transitively immutable *)
  | Mut_atomic  (** mutability only behind [Stdlib.Atomic] (or a lock) *)
  | Mut_yes  (** contains a plain mutable field / ref / array / Hashtbl *)

val mut_join : mutability -> mutability -> mutability
(** Lattice join: [Mut_yes > Mut_atomic > Mut_none]. *)

type ref_op = Rread | Rwrite | Rrmw

type event_kind =
  | Poly_fun of { op : string; shape : ty_shape; rendered : string }
  | Poly_eq of {
      op : string;
      shape : ty_shape;
      rendered : string;
      constantish : bool;
    }
  | Alloc of string
  | Schedule_closure of string
  | Source of source_kind * string
  | Ref_op of { op : ref_op; target : string }
      (** [!x] / [x := e] / [incr x], or [x.f] / [x.f <- e], where [x]
          is a module-level binding of an indexed unit ([target] is its
          qualified id). Locals never produce these events. *)
  | Blocking of string
      (** reference to a call that can park the running domain
          (Mutex.lock/protect, Condition.wait, Domain.join, Unix I/O,
          stdout/stderr formatters) — consumed by the ownership tier's
          blocking-in-shard-body rule *)

type event = {
  e_def : string;
  e_file : string;
  e_line : int;
  e_col : int;
  e_kind : event_kind;
  e_in_raise : bool;
}

type def = { d_id : string; d_unit : string; d_file : string; d_line : int }

type export = { x_id : string; x_unit : string; x_file : string; x_line : int }

type binding = {
  b_id : string;  (** qualified id, e.g. ["Planck_netsim__Engine.aggregate_hw"] *)
  b_unit : string;
  b_file : string;
  b_line : int;
  b_arrow : bool;  (** the binding is a function *)
  b_type_mut : mutability;
      (** transitive mutability of the binding's type (for arrows: of
          the final result type — the constructor/accessor discipline) *)
  b_alloc : mutability;
      (** worst mutable allocation the module-init expression performs
          outside any lambda — catches closure-captured counters whose
          arrow type hides the state *)
  b_rendered : string;  (** the rendered type, for reports *)
}

(* ---- Ownership-tier records ---- *)

type spsc_role = Producer | Consumer

type transfer_site = {
  s_def : string;
  s_file : string;
  s_line : int;
  s_point : string;  (** the matched pattern, e.g. ["Spsc.push"] *)
}
(** Every call site of a transfer point ([Spsc.push], [Timer.cancel],
    [Buffer_pool.release]), violation or not — the committed ownership
    inventory is built from these. *)

type spsc_site = {
  sp_def : string;
  sp_file : string;
  sp_line : int;
  sp_role : spsc_role;
  sp_op : string;  (** push / pop / peek / drain *)
  sp_chan : string;
      (** best-effort channel identity: the resolved def id when the
          receiver is a structure-level binding, ["local:<def>"] for a
          let-bound local, ["field:<type>.<label>"] for a record field *)
}

type transfer_use = {
  u_def : string;
  u_file : string;
  u_line : int;
  u_col : int;
  u_var : string;  (** source name of the transferred binding *)
  u_point : string;  (** the transfer pattern it flowed into *)
  u_kind : Lint_transfer.use_kind;
  u_transfer_line : int;
  u_mut : mutability;
      (** of the transferred value's type — [Mut_none] payloads are
          exempt from use-after-transfer (reading an immutable value
          the consumer also reads races nothing) *)
}

type release_leak = {
  k_def : string;
  k_file : string;
  k_line : int;
  k_col : int;
  k_alloc_line : int;  (** the successful [try_alloc] condition *)
  k_raise : string;  (** the raise-family callee on the leaking path *)
}

type t

val load : dirs:string list -> t
(** Recursively scan [dirs] for [.cmt]/[.cmti] files and index every
    unit whose source file is repo-relative (lib/ bin/ bench/ examples/
    tools/ test/). Unreadable or version-mismatched files are skipped. *)

val units : t -> string list
(** Implementation units indexed (wrapped names, e.g.
    ["Planck_netsim__Switch"]). *)

val unit_count : t -> int
val def_count : t -> int

val file_of_unit : t -> string -> string option
val has_file : t -> string -> bool
(** [has_file t f] is true when some indexed implementation unit's
    source is the repo-relative path [f] — i.e. the deep tier covers
    that file and the replaced syntactic rules may be switched off. *)

val events : t -> event list
val exports : t -> export list

val bindings : t -> binding list
(** Every structure-level value binding of every indexed implementation
    unit, classified for mutability, sorted by id. Classification is
    computed here (not during the load) so type declarations from every
    unit — including shapes an [.mli] exports abstract — are visible. *)

val transfer_uses : t -> transfer_use list
(** Use-after-transfer facts from the per-binding intraprocedural scan
    ({!Lint_transfer}), with the operand's mutability classified
    lazily — like {!bindings}, after every unit's decls are loaded. *)

val release_leaks : t -> release_leak list
val transfer_sites : t -> transfer_site list
val spsc_sites : t -> spsc_site list

val find_def : t -> string -> def option
val iter_defs : t -> (def -> unit) -> unit

val edges_of : t -> string -> Set.Make(String).t
val iter_edges : t -> (string -> Set.Make(String).t -> unit) -> unit

val referencing_units : t -> string -> string list
(** Units containing at least one reference to the given def id. *)

val functor_used_unit : t -> string -> bool
(** True when the unit was passed to a functor, included, or packed —
    all its exports must then be considered referenced. *)

val note_unit_ref : t -> from_unit:string -> target:string -> unit
(** Record an external reference by hand (used by tests). *)

val suffix_matches : pattern:string -> string -> bool
(** Dotted-suffix match: ["Engine.schedule"] matches
    ["Planck_netsim__Engine.schedule"] and ["Fix.Engine.schedule"], not
    ["X.reschedule"]. Exposed for sink/pattern matching in rules. *)

val any_suffix_matches : string list -> string -> bool

val add_typed_source : t -> unit_name:string -> file:string -> source:string -> unit
(** Type-check [source] in-process (stdlib environment only) and index
    it as implementation unit [unit_name]. For test fixtures. *)

val add_typed_interface :
  t -> unit_name:string -> file:string -> source:string -> unit
(** Same, for an [.mli] source: records exports and manifests. *)
