(* Sentinel-node SPSC linked queue. [head] always points at a consumed
   node whose [next] chain holds the live elements; [tail] is the last
   node the producer linked. The producer mutates only [tail] (and the
   old tail's [next]); the consumer mutates only [head]. Publication
   order — payload write, then Atomic [next] store — gives the consumer
   a happens-before edge on the payload without any lock. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = { mutable head : 'a node; mutable tail : 'a node }

let node value = { value; next = Atomic.make None }

let create () =
  let sentinel = node None in
  { head = sentinel; tail = sentinel }

let push t v =
  let n = node (Some v) in
  Atomic.set t.tail.next (Some n);
  t.tail <- n

let peek t =
  match Atomic.get t.head.next with None -> None | Some n -> n.value

let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
      t.head <- n;
      n.value

let rec drain t f =
  match pop t with
  | None -> ()
  | Some v ->
      f v;
      drain t f
