(** A single lint finding: which rule fired, where, and why. *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. ["wall-clock"] *)
  severity : severity;
  file : string;  (** repo-relative path as given to the linter *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  message : string;
}

val severity_label : severity -> string
(** ["error"] or ["warning"]. *)

val compare_by_location : t -> t -> int
(** Order by file, then line, column and rule id — the report order. *)
