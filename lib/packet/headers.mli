(** Protocol header records.

    These are the structured forms the simulator manipulates; {!Packet}
    converts them to and from wire bytes for the capture path. Field
    widths follow the real protocols (16-bit ports, 32-bit sequence
    numbers with wraparound handled by the collector, etc.). *)

module Tcp_flags : sig
  type t = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

  val syn : t
  val syn_ack : t
  val ack : t
  val fin_ack : t
  val to_byte : t -> int
  val of_byte : int -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Eth : sig
  type t = { src : Mac.t; dst : Mac.t; ethertype : int }

  val ethertype_ipv4 : int
  val ethertype_arp : int
  val size : int
  (** Header length on the wire: 14 bytes. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Arp : sig
  type op = Request | Reply

  type t = {
    op : op;
    sender_mac : Mac.t;
    sender_ip : Ipv4_addr.t;
    target_mac : Mac.t;
    target_ip : Ipv4_addr.t;
  }

  val size : int
  (** 28 bytes. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Ipv4 : sig
  type t = {
    src : Ipv4_addr.t;
    dst : Ipv4_addr.t;
    protocol : int;
    ttl : int;
    total_length : int;  (** IP header + L4 header + payload, bytes *)
  }

  val protocol_tcp : int
  val protocol_udp : int
  val size : int
  (** 20 bytes (no options). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Tcp : sig
  type t = {
    src_port : int;
    dst_port : int;
    seq : int;  (** 32-bit sequence number (byte offset, wraps) *)
    ack_seq : int;
    flags : Tcp_flags.t;
    window : int;
    sack : (int * int) list;
        (** up to 3 SACK blocks, on-wire (wrapped) [start, stop)
            sequence pairs; empty on data segments *)
  }

  val size : int
  (** 20 bytes (base header, no options). *)

  val max_sack_blocks : int
  (** 3 — what fits alongside padding in a 40-byte option area. *)

  val header_size : t -> int
  (** Base header plus the SACK option (padded to 4 bytes). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Udp : sig
  type t = { src_port : int; dst_port : int; length : int }

  val size : int
  (** 8 bytes. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
