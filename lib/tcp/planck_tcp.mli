(** Packet-level TCP (Reno/NewReno) over the simulated network. *)

module Endpoint = Endpoint
module Flow = Flow
