(* Tests for Planck_telemetry: the metric registry, sim-time trace ring,
   JSON codec, exporters, and the flusher, plus the engine wiring into
   the process-wide default registry. *)

module Time = Planck_util.Time
module Json = Planck_telemetry.Json
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Export = Planck_telemetry.Export
module Flusher = Planck_telemetry.Flusher
module Engine = Planck_netsim.Engine

let check_float = Alcotest.(check (float 1e-9))

(* ---- registry ---- *)

let registry_counters_gauges () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "counter value" 42 (Metrics.Counter.value c);
  let g = Metrics.gauge ~registry:reg ~subsystem:"t" ~name:"g" () in
  Metrics.Gauge.set g 3.5;
  Metrics.Gauge.set g 1.0;
  check_float "gauge last value" 1.0 (Metrics.Gauge.value g);
  check_float "gauge high-water" 3.5 (Metrics.Gauge.max_value g);
  Metrics.Gauge.set_int g 7;
  check_float "set_int" 7.0 (Metrics.Gauge.value g);
  check_float "set_int high-water" 7.0 (Metrics.Gauge.max_value g);
  Alcotest.(check int) "size" 2 (Metrics.size reg)

let registry_idempotent_registration () =
  let reg = Metrics.create () in
  let a = Metrics.counter ~registry:reg ~subsystem:"s" ~name:"n" () in
  let b = Metrics.counter ~registry:reg ~subsystem:"s" ~name:"n" () in
  Metrics.Counter.incr a;
  Metrics.Counter.incr b;
  Alcotest.(check int) "same handle" 2 (Metrics.Counter.value a);
  Alcotest.(check int) "still one metric" 1 (Metrics.size reg);
  (* Distinct labels are distinct metrics. *)
  let l = Metrics.counter ~registry:reg ~subsystem:"s" ~name:"n" ~label:"x" () in
  Metrics.Counter.incr l;
  Alcotest.(check int) "labelled is separate" 1 (Metrics.Counter.value l);
  Alcotest.(check int) "two metrics" 2 (Metrics.size reg);
  (* Re-registering the key as a different kind is a bug in the caller. *)
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Metrics.gauge ~registry:reg ~subsystem:"s" ~name:"n" ());
       false
     with Invalid_argument _ -> true)

let registry_disabled_is_noop () =
  let reg = Metrics.create ~enabled:false () in
  let c = Metrics.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  let g = Metrics.gauge ~registry:reg ~subsystem:"t" ~name:"g" () in
  let h = Metrics.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  Metrics.Counter.incr c;
  Metrics.Gauge.set g 9.0;
  Metrics.Histogram.observe h 100;
  Alcotest.(check int) "counter untouched" 0 (Metrics.Counter.value c);
  check_float "gauge untouched" 0.0 (Metrics.Gauge.max_value g);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.Histogram.count h);
  (* Flipping it on makes the same handles live. *)
  Metrics.set_enabled reg true;
  Metrics.Counter.incr c;
  Alcotest.(check int) "enabled counts" 1 (Metrics.Counter.value c)

let registry_snapshot_deterministic () =
  (* Same metrics registered in different orders must snapshot
     identically: sorted by (subsystem, name, label). *)
  let build order =
    let reg = Metrics.create () in
    List.iter
      (fun (sub, name, label, v) ->
        let c =
          Metrics.counter ~registry:reg ~subsystem:sub ~name ?label ()
        in
        Metrics.Counter.add c v)
      order;
    List.map
      (fun s -> (s.Metrics.subsystem, s.Metrics.name, s.Metrics.label))
      (Metrics.snapshot reg)
  in
  let a =
    build
      [
        ("z", "n", None, 1);
        ("a", "n", Some "l2", 2);
        ("a", "n", Some "l1", 3);
        ("a", "m", None, 4);
      ]
  in
  let b =
    build
      [
        ("a", "m", None, 4);
        ("a", "n", Some "l1", 3);
        ("a", "n", Some "l2", 2);
        ("z", "n", None, 1);
      ]
  in
  Alcotest.(check (list (triple string string string)))
    "order-independent" a b;
  Alcotest.(check (list (triple string string string)))
    "sorted"
    [ ("a", "m", ""); ("a", "n", "l1"); ("a", "n", "l2"); ("z", "n", "") ]
    a

let registry_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"t" ~name:"c" () in
  let h = Metrics.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  Metrics.Counter.add c 5;
  Metrics.Histogram.observe h 10;
  Metrics.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.Histogram.count h);
  Alcotest.(check int) "handles survive" 2 (Metrics.size reg);
  Metrics.Counter.incr c;
  Alcotest.(check int) "handle still live" 1 (Metrics.Counter.value c)

(* ---- histogram bucketing ---- *)

let histogram_bucket_boundaries () =
  let idx = Metrics.Histogram.bucket_index in
  Alcotest.(check int) "0 -> bucket 0" 0 (idx 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (idx 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (idx 2);
  Alcotest.(check int) "3 -> bucket 1" 1 (idx 3);
  Alcotest.(check int) "4 -> bucket 2" 2 (idx 4);
  Alcotest.(check int) "2^10 -> bucket 10" 10 (idx 1024);
  Alcotest.(check int) "2^10 - 1 -> bucket 9" 9 (idx 1023);
  Alcotest.(check int) "negative clamps to 0" 0 (idx (-5));
  (* Every power of two starts its own bucket; the previous value ends
     the bucket below. *)
  for i = 1 to 60 do
    let lo = Metrics.Histogram.bucket_lo i
    and hi = Metrics.Histogram.bucket_hi i in
    Alcotest.(check int) "lo lands in bucket" i (idx lo);
    Alcotest.(check int) "hi lands in bucket" i (idx hi);
    Alcotest.(check int) "hi+1 overflows to next" (i + 1) (idx (hi + 1))
  done

let histogram_observations () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~subsystem:"t" ~name:"h" () in
  List.iter (Metrics.Histogram.observe h) [ 1; 100; 1000; 10_000 ];
  Alcotest.(check int) "count" 4 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 11_101 (Metrics.Histogram.sum h);
  Alcotest.(check int) "min" 1 (Metrics.Histogram.min_value h);
  Alcotest.(check int) "max" 10_000 (Metrics.Histogram.max_value h);
  check_float "mean" 2775.25 (Metrics.Histogram.mean h);
  (* Quantiles are bucket upper bounds, capped at the observed max. *)
  Alcotest.(check int) "q1.0 capped at max" 10_000
    (Metrics.Histogram.quantile h 1.0);
  let q50 = Metrics.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "q0.5 within 2x of 100" true (q50 >= 100 && q50 < 256)

(* ---- trace ring ---- *)

let trace_bounded_eviction () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.instant t ~now:(Time.ns i) ~cat:"c" ~name:(string_of_int i) ()
  done;
  Alcotest.(check int) "length bounded" 4 (Trace.length t);
  Alcotest.(check int) "capacity" 4 (Trace.capacity t);
  Alcotest.(check int) "evicted counted" 6 (Trace.evicted t);
  Alcotest.(check (list string))
    "keeps the newest window" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.name) (Trace.events t));
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t)

let trace_disabled_and_spans () =
  let t = Trace.create ~enabled:false () in
  Trace.instant t ~now:(Time.ns 1) ~cat:"c" ~name:"x" ();
  Alcotest.(check int) "disabled records nothing" 0 (Trace.length t);
  Trace.set_enabled t true;
  let clock = ref (Time.us 5) in
  let result =
    Trace.with_span t
      ~clock:(fun () -> !clock)
      ~cat:"c" ~name:"work"
      (fun () ->
        clock := Time.us 9;
        17)
  in
  Alcotest.(check int) "with_span passes result" 17 result;
  (match Trace.events t with
  | [ b; e ] ->
      Alcotest.(check bool) "begin phase" true (b.Trace.phase = Trace.Span_begin);
      Alcotest.(check bool) "end phase" true (e.Trace.phase = Trace.Span_end);
      Alcotest.(check int) "begin ts" (Time.us 5) b.Trace.ts;
      Alcotest.(check int) "end ts" (Time.us 9) e.Trace.ts
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* The span closes even when the body raises. *)
  Trace.clear t;
  (try
     Trace.with_span t
       ~clock:(fun () -> Time.us 1)
       ~cat:"c" ~name:"boom"
       (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 2 (Trace.length t)

(* ---- JSON codec ---- *)

let json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t\xe2\x82\xac");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "" ]);
        ("o", Json.Obj [ ("k", Json.Int 0) ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok parsed ->
      Alcotest.(check bool) "round-trips" true (parsed = doc);
      Alcotest.(check (option string))
        "member access" (Some "a\"b\\c\n\t\xe2\x82\xac")
        (Option.bind (Json.member parsed "s") Json.to_string_opt)

let json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* ---- Chrome trace export ---- *)

let chrome_json_valid_and_roundtrips () =
  let t = Trace.create () in
  (* Deliberately record out of timestamp order: the TE app stamps its
     detection time retroactively, and the exporter must sort. *)
  Trace.span_end t ~now:(Time.us 300) ~cat:"te" ~name:"loop" ();
  Trace.span_begin t
    ~now:(Time.us 100)
    ~cat:"te" ~name:"loop"
    ~args:[ ("switch", Trace.Int 3) ]
    ();
  Trace.instant t ~now:(Time.us 200) ~cat:"col" ~name:"hit" ();
  let json = Trace.to_chrome_json t in
  match Json.of_string json with
  | Error e -> Alcotest.failf "chrome JSON invalid: %s" e
  | Ok doc -> (
      match Option.bind (Json.member doc "traceEvents") Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          Alcotest.(check int) "3 events" 3 (List.length events);
          let ts_of e =
            match Option.bind (Json.member e "ts") Json.to_float_opt with
            | Some ts -> ts
            | None -> Alcotest.fail "event without ts"
          in
          let phase_of e =
            Option.value ~default:"?"
              (Option.bind (Json.member e "ph") Json.to_string_opt)
          in
          (* Sorted by timestamp (microseconds), despite recording order. *)
          Alcotest.(check (list (pair string (float 1e-9))))
            "sorted ts in us"
            [ ("B", 100.0); ("i", 200.0); ("E", 300.0) ]
            (List.map (fun e -> (phase_of e, ts_of e)) events))

let chrome_ts_roundtrip_exact () =
  (* Integer-nanosecond stamps written as microsecond doubles must
     round-trip exactly through print-and-parse for realistic sim
     times. *)
  let t = Trace.create ~capacity:2048 () in
  let stamps =
    List.init 1000 (fun i -> (i * i * 977) + (i * 13) + (i mod 7))
  in
  List.iter
    (fun ns -> Trace.instant t ~now:ns ~cat:"c" ~name:"x" ())
    stamps;
  match Json.of_string (Trace.to_chrome_json t) with
  | Error e -> Alcotest.failf "invalid: %s" e
  | Ok doc ->
      let events =
        Option.get (Option.bind (Json.member doc "traceEvents") Json.to_list_opt)
      in
      let got =
        List.map
          (fun e ->
            let us =
              Option.get (Option.bind (Json.member e "ts") Json.to_float_opt)
            in
            int_of_float (Float.round (us *. 1000.0)))
          events
      in
      Alcotest.(check (list int))
        "every stamp recovered to the nanosecond"
        (List.sort compare stamps)
        got

(* ---- exporters ---- *)

let export_shapes () =
  let reg = Metrics.create () in
  Metrics.Counter.add
    (Metrics.counter ~registry:reg ~subsystem:"a" ~name:"c" ~label:"l" ())
    3;
  Metrics.Gauge.set (Metrics.gauge ~registry:reg ~subsystem:"a" ~name:"g" ()) 2.5;
  Metrics.Histogram.observe
    (Metrics.histogram ~registry:reg ~subsystem:"b" ~name:"h" ())
    100;
  (match Json.of_string (Export.metrics_json reg) with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok doc -> (
      match Option.bind (Json.member doc "metrics") Json.to_list_opt with
      | None -> Alcotest.fail "no metrics array"
      | Some rows ->
          Alcotest.(check int) "3 rows" 3 (List.length rows);
          let kinds =
            List.map
              (fun r ->
                Option.value ~default:"?"
                  (Option.bind (Json.member r "kind") Json.to_string_opt))
              rows
          in
          Alcotest.(check (list string))
            "kinds in sorted key order"
            [ "counter"; "gauge"; "histogram" ]
            kinds));
  let csv = Export.metrics_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "csv header"
    "subsystem,name,label,kind,value,count,sum,min,max" (List.hd lines);
  Alcotest.(check bool) "counter row" true
    (List.exists (fun l -> l = "a,c,l,counter,3,,,,") lines)

let flusher_writes_and_schedules () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~subsystem:"f" ~name:"c" () in
  Metrics.Counter.add c 7;
  let path = Filename.temp_file "planck_metrics" ".json" in
  let fl = Flusher.create ~registry:reg ~outputs:[ Flusher.Metrics_json path ] () in
  (* Drive it from a real engine through the scheduler capability. *)
  let engine = Engine.create () in
  Flusher.schedule fl ~period:(Time.ms 1)
    ~every:(fun ~period f -> Engine.every engine ~period f);
  Engine.run ~until:(Time.ms 5) engine;
  Alcotest.(check int) "flushed once per period" 5 (Flusher.flushes fl);
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  (match Json.of_string contents with
  | Error e -> Alcotest.failf "flushed file invalid: %s" e
  | Ok _ -> ());
  Alcotest.check_raises "non-positive period rejected"
    (Invalid_argument "Flusher.schedule: period must be positive") (fun () ->
      Flusher.schedule fl ~period:0 ~every:(fun ~period:_ _ -> ()))

(* ---- engine wiring into the default registry ---- *)

let engine_default_registry () =
  (* The engine's instrumentation writes to Metrics.default, which is
     disabled by default; flip it on, run a small sim, and check the
     counters agree with the engine's own introspection. *)
  let was = Metrics.enabled Metrics.default in
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset Metrics.default;
      Metrics.set_enabled Metrics.default was)
    (fun () ->
      let engine = Engine.create () in
      let fired = ref 0 in
      for i = 1 to 10 do
        Engine.schedule engine ~delay:(Time.us i) (fun () -> incr fired)
      done;
      Engine.run engine;
      Alcotest.(check int) "all fired" 10 !fired;
      Alcotest.(check int) "events_processed" 10
        (Engine.events_processed engine);
      Alcotest.(check int) "max_pending high-water" 10
        (Engine.max_pending engine);
      Alcotest.(check int) "pending drained" 0 (Engine.pending engine);
      let c =
        Metrics.counter ~subsystem:"engine" ~name:"events_processed" ()
      in
      Alcotest.(check int) "default-registry counter tracks engine" 10
        (Metrics.Counter.value c);
      let g =
        Metrics.gauge ~subsystem:"engine" ~name:"pending_high_water" ()
      in
      check_float "default-registry gauge high-water" 10.0
        (Metrics.Gauge.max_value g))

let tests =
  [
    Alcotest.test_case "registry counters and gauges" `Quick
      registry_counters_gauges;
    Alcotest.test_case "registration is idempotent" `Quick
      registry_idempotent_registration;
    Alcotest.test_case "disabled registry is a no-op" `Quick
      registry_disabled_is_noop;
    Alcotest.test_case "snapshot is deterministic" `Quick
      registry_snapshot_deterministic;
    Alcotest.test_case "reset keeps handles live" `Quick registry_reset;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      histogram_bucket_boundaries;
    Alcotest.test_case "histogram observations" `Quick histogram_observations;
    Alcotest.test_case "trace ring bounded eviction" `Quick
      trace_bounded_eviction;
    Alcotest.test_case "trace disabled flag and spans" `Quick
      trace_disabled_and_spans;
    Alcotest.test_case "json round-trip" `Quick json_roundtrip;
    Alcotest.test_case "json rejects malformed input" `Quick
      json_rejects_malformed;
    Alcotest.test_case "chrome trace valid and sorted" `Quick
      chrome_json_valid_and_roundtrips;
    Alcotest.test_case "chrome ts round-trips exactly" `Quick
      chrome_ts_roundtrip_exact;
    Alcotest.test_case "export shapes (json + csv)" `Quick export_shapes;
    Alcotest.test_case "flusher writes and schedules" `Quick
      flusher_writes_and_schedules;
    Alcotest.test_case "engine feeds the default registry" `Quick
      engine_default_registry;
  ]
