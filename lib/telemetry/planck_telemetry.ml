(** Always-on observability for the Planck reproduction: a typed metric
    registry ({!Metrics}), sim-time tracing with Chrome [trace_event]
    export ({!Trace}), snapshot writers ({!Export}), periodic flushing
    ({!Flusher}), and the self-contained JSON codec they share
    ({!Json}).

    Instrumentation is compiled into the simulator's hot paths but
    guarded by per-registry enabled flags that default to off, so an
    uninstrumented run pays one branch per tracepoint. Experiments and
    the CLI/bench [--metrics-out] / [--trace-out] flags flip the
    process-wide {!Metrics.default} / {!Trace.default} on. *)

module Json = Json
module Metrics = Metrics
module Trace = Trace
module Export = Export
module Flusher = Flusher
