(** Data-rate arithmetic.

    Rates are carried as bits per second in a float; helpers convert
    between rates, byte counts and {!Time.t} durations without scattering
    unit conversions through the simulator. *)

type t = float
(** Bits per second. *)

val bps : float -> t
val kbps : float -> t
val mbps : float -> t
val gbps : float -> t

val to_gbps : t -> float

val tx_time : t -> bytes_:int -> Time.t
(** [tx_time rate ~bytes_] is the serialization delay of [bytes_] bytes
    at [rate], rounded up to a whole nanosecond (so a positive-size frame
    never transmits in zero time). Raises [Invalid_argument] on
    non-positive rate. *)

val bytes_in : t -> Time.t -> int
(** [bytes_in rate d] is how many whole bytes [rate] carries in
    duration [d]. *)

val of_bytes_per : int -> Time.t -> t
(** [of_bytes_per n d] is the average rate that moves [n] bytes in
    duration [d]. Raises [Invalid_argument] if [d <= 0]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an automatically chosen unit, e.g. ["9.41Gbps"]. *)
