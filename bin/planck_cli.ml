(* planck-cli: inspect topologies, run workload/scheme experiments, and
   capture switch vantage points from the command line.

     dune exec bin/planck_cli.exe -- topology
     dune exec bin/planck_cli.exe -- run --workload stride8 --scheme planck-te
     dune exec bin/planck_cli.exe -- capture --output /tmp/sw0.pcap
*)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Table = Planck_util.Table
module Mac = Planck_packet.Mac
module Engine = Planck_netsim.Engine
module Fabric = Planck_topology.Fabric
module Routing = Planck_topology.Routing
module Collector = Planck_collector.Collector
module Te = Planck_controller.Te
module Reroute = Planck_controller.Reroute
module Controller = Planck_controller.Controller
module Poller = Planck_baselines.Poller
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Export = Planck_telemetry.Export
module Flusher = Planck_telemetry.Flusher
module Journal = Planck_telemetry.Journal
module Timeseries = Planck_telemetry.Timeseries
module Inspect = Planck_telemetry.Inspect
module Reporter = Planck_telemetry.Reporter
module Profile = Planck_telemetry.Profile
module Json = Planck_telemetry.Json
module Stats = Planck_util.Stats
open Planck

(* ---- telemetry plumbing (--metrics-out / --trace-out / --journal-out /
   --timeseries-out) ---- *)

(* Passing any of these flags flips the corresponding process-wide
   registry/trace/journal on for the whole run; at exit the snapshots
   are written (the capture subcommand additionally flushes periodically
   on the simulation clock; the journal streams NDJSON as it records).
   Each output path is probed up front so a typo fails before the
   simulation runs, not at the first flush. *)
let telemetry_setup ?journal_out ?timeseries_out metrics_out trace_out =
  let probe = function
    | None -> true
    | Some path -> (
        try
          Export.write_file ~path "";
          true
        with Sys_error msg ->
          Printf.eprintf "planck-cli: cannot write %s\n" msg;
          false)
  in
  if
    probe metrics_out && probe trace_out && probe journal_out
    && probe timeseries_out
  then begin
    if metrics_out <> None then Metrics.set_enabled Metrics.default true;
    if trace_out <> None then Trace.set_enabled Trace.default true;
    if journal_out <> None then Journal.set_enabled Journal.default true;
    true
  end
  else false

let telemetry_dump metrics_out trace_out =
  Option.iter
    (fun path ->
      Export.write_file ~path (Export.metrics_json Metrics.default);
      Printf.printf "wrote %d metrics to %s\n"
        (Metrics.size Metrics.default)
        path)
    metrics_out;
  Option.iter
    (fun path ->
      Export.write_file ~path (Trace.to_chrome_json Trace.default);
      Printf.printf
        "wrote %d trace events to %s (open in chrome://tracing or Perfetto)\n"
        (Trace.length Trace.default) path)
    trace_out

(* ---- topology subcommand ---- *)

let show_topology k seed =
  let tb = Testbed.create { (Testbed.paper_fat_tree ~seed ()) with
                            Testbed.topology = Testbed.Fat_tree { k } } in
  let fabric = tb.Testbed.fabric in
  Printf.printf "fat-tree k=%d: %d switches, %d hosts, %d routes installed\n" k
    (Fabric.switch_count fabric) (Fabric.host_count fabric)
    (Planck_netsim.Switch.route_count (Fabric.switch fabric 0));
  for sw = 0 to Fabric.switch_count fabric - 1 do
    let ports =
      String.concat " "
        (List.map
           (fun port ->
             match Fabric.peer fabric ~switch:sw ~port with
             | Fabric.To_host h -> Printf.sprintf "p%d:h%d" port h
             | Fabric.To_switch (s, p) -> Printf.sprintf "p%d:s%d.%d" port s p
             | Fabric.To_monitor -> Printf.sprintf "p%d:monitor" port
             | Fabric.Unwired -> Printf.sprintf "p%d:-" port)
           (List.init (Fabric.switch_ports fabric) Fun.id))
    in
    Printf.printf "  s%-2d %s\n" sw ports
  done;
  (* Alternate routes for one cross-pod pair. *)
  let hosts = Fabric.host_count fabric in
  let src = 0 and dst = hosts / 2 in
  Printf.printf "routes h%d -> h%d:\n" src dst;
  for alt = 0 to Routing.alts tb.Testbed.routing - 1 do
    let mac = Routing.mac_for tb.Testbed.routing ~dst ~alt in
    let hops = Routing.path tb.Testbed.routing ~src ~dst_mac:mac in
    Printf.printf "  alt %d (%s): %s\n" alt (Mac.to_string mac)
      (String.concat " -> "
         (List.map (fun h -> Printf.sprintf "s%d" h.Routing.switch) hops))
  done;
  0

(* ---- run subcommand ---- *)

let parse_workload = function
  | "stride8" -> Ok (Experiment.Stride 8)
  | "stride4" -> Ok (Experiment.Stride 4)
  | "shuffle" -> Ok (Experiment.Shuffle { concurrency = 2 })
  | "bijection" -> Ok Experiment.Random_bijection
  | "random" -> Ok Experiment.Random
  | "staggered" ->
      Ok (Experiment.Staggered_prob { p_edge = 0.2; p_pod = 0.3 })
  | "churn" -> Ok (Experiment.Churn Planck_workloads.Generate.default_churn)
  | s -> Error (Printf.sprintf "unknown workload %s" s)

let parse_flow_table = function
  | "exact" -> Ok Scheme.Exact
  | "tiered" -> Ok Scheme.tiered_default
  | s -> Error (Printf.sprintf "unknown flow table %s" s)

let parse_scheme = function
  | "static" -> Ok (`Fabric Scheme.Static)
  | "planck-te" | "planck" -> Ok (`Fabric Scheme.planck_te_default)
  | "planck-te-openflow" ->
      Ok
        (`Fabric
           (Scheme.Planck_te
              { Te.default_config with Te.mechanism = Reroute.Openflow }))
  | "poll-1s" -> Ok (`Fabric Scheme.poll_1s)
  | "poll-100ms" -> Ok (`Fabric Scheme.poll_100ms)
  | "sflow-te" -> Ok (`Fabric Scheme.sflow_te_default)
  | "optimal" -> Ok `Optimal
  | s -> Error (Printf.sprintf "unknown scheme %s" s)

(* --profile: spans need both the profiler flag and the metric registry
   backing their counters; the report prints from the live registry
   after the run (and also lands in --metrics-out snapshots, which
   [inspect --profile] re-renders offline). *)
let profile_setup profile =
  if profile then begin
    Metrics.set_enabled Metrics.default true;
    Profile.set_enabled true
  end

let profile_report profile =
  if profile then begin
    Profile.set_enabled false;
    Printf.printf "\nself-profile (wall clock + GC, by span):\n%s"
      (Profile.render (Profile.summary ()))
  end

let run_experiment () workload_name scheme_name flow_table_name size_mib runs
    seed shards csv metrics_out trace_out journal_out timeseries_out
    timeseries_interval_us profile =
  match
    ( parse_workload workload_name,
      parse_scheme scheme_name,
      parse_flow_table flow_table_name )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      prerr_endline e;
      1
  | Ok workload, Ok scheme, Ok flow_table
    when telemetry_setup ?journal_out ?timeseries_out metrics_out trace_out
    ->
      profile_setup profile;
      let spec, sch =
        match scheme with
        | `Fabric s -> (Testbed.paper_fat_tree ~seed (), s)
        | `Optimal -> (Testbed.optimal ~seed (), Scheme.Static)
      in
      (* --shards: run on a Shard group. The fat-tree's agg-core links
         get the default core delay at ANY shard count (including 1) so
         runs stay comparable across shard counts — the delay is the
         conservative-lookahead window, and 300 ns of edge delay would
         make the lockstep rounds absurdly fine. *)
      let spec =
        match shards with
        | None -> spec
        | Some n ->
            {
              spec with
              Testbed.shards = Some n;
              core_prop_delay =
                (match spec.Testbed.topology with
                | Testbed.Fat_tree _ ->
                    Some Planck_topology.Fat_tree.default_core_prop_delay
                | Testbed.Single_switch _ | Testbed.Jellyfish _ -> None);
            }
      in
      (* Stream journal events to disk as they happen: the in-memory
         ring is only a bounded tail, the NDJSON file is complete. *)
      let journal_lines = ref 0 in
      let journal_channel =
        Option.map
          (fun path ->
            let oc = open_out path in
            Journal.set_writer Journal.default
              (Some
                 (fun line ->
                   incr journal_lines;
                   output_string oc line;
                   output_char oc '\n'));
            oc)
          journal_out
      in
      (* Ground-truth recording needs the testbed each run builds
         internally, so it hooks in through the experiment observer. *)
      let last_recorder = ref None in
      if timeseries_out <> None then
        Experiment.set_observer
          (Some
             (fun testbed deployed ->
               let estimate =
                 match deployed.Scheme.controller with
                 | Some controller -> Controller.flow_rate controller
                 | None -> fun _ -> None
               in
               let recorder =
                 Recorder.create
                   ~interval:(Time.us timeseries_interval_us)
                   ~estimate testbed
               in
               last_recorder := Some recorder;
               Some (fun flow -> Recorder.track_flow recorder flow)));
      let summaries =
        Experiment.repeat ~runs ~spec ~scheme:sch ~workload
          ~size:(size_mib * 1024 * 1024) ~flow_table ~horizon:(Time.s 600) ()
      in
      Experiment.set_observer None;
      (match journal_channel with
      | Some oc ->
          Journal.set_writer Journal.default None;
          close_out oc;
          Printf.printf "wrote %d journal events to %s\n" !journal_lines
            (Option.get journal_out)
      | None -> ());
      Option.iter
        (fun path ->
          match !last_recorder with
          | Some recorder ->
              let ts = Recorder.timeseries recorder in
              Export.write_file ~path (Timeseries.to_csv ts);
              Printf.printf
                "wrote %d time-series rows (%d series%s) to %s\n"
                (List.length (Timeseries.rows ts))
                (List.length (Timeseries.names ts))
                (if runs > 1 then ", last run" else "")
                path
          | None -> ())
        timeseries_out;
      let header =
        [ "run"; "avg_gbps"; "reroutes"; "all_completed"; "flows" ]
      in
      let rows =
        List.mapi
          (fun i s ->
            [
              string_of_int i;
              Printf.sprintf "%.3f" s.Experiment.avg_goodput_gbps;
              string_of_int s.Experiment.reroutes;
              string_of_bool s.Experiment.all_completed;
              string_of_int (List.length s.Experiment.flows);
            ])
          summaries
      in
      if csv then print_string (Table.csv ~header rows)
      else begin
        Printf.printf "%s / %s, %s flow table, %d MiB flows, %d run(s):\n"
          workload_name scheme_name
          (Scheme.flow_table_name flow_table)
          size_mib runs;
        Table.print ~header rows;
        Printf.printf "mean average flow throughput: %.3f Gbps\n"
          (Experiment.mean_avg_goodput summaries)
      end;
      profile_report profile;
      telemetry_dump metrics_out trace_out;
      0
  | _ -> 1

(* ---- capture subcommand ---- *)

let capture output duration_ms seed metrics_out trace_out profile =
  if not (telemetry_setup metrics_out trace_out) then 1
  else begin
    profile_setup profile;
    let tb = Testbed.create (Testbed.paper_fat_tree ~seed ()) in
  let collector =
    Collector.create tb.Testbed.engine ~switch:0 ~routing:tb.Testbed.routing
      ~link_rate:(Testbed.link_rate tb) ()
  in
  Collector.attach collector;
  (* Keep the snapshot files fresh while the capture runs: flush every
     simulated millisecond on the engine's own clock. *)
  (match metrics_out with
  | Some path ->
      let fl = Flusher.create ~outputs:[ Flusher.Metrics_json path ] () in
      let (_ : Engine.Timer.t) =
        Flusher.schedule fl ~period:(Time.ms 1)
          ~every:(fun ~period f -> Engine.periodic tb.Testbed.engine ~period f)
      in
      ()
  | None -> ());
  (* Some background traffic through switch 0 (an edge switch). *)
  ignore
    (Planck_tcp.Flow.start ~src:tb.Testbed.endpoints.(0)
       ~dst:tb.Testbed.endpoints.(12) ~src_port:40_000 ~dst_port:5_012
       ~size:(1 lsl 30) ());
  ignore
    (Planck_tcp.Flow.start ~src:tb.Testbed.endpoints.(1)
       ~dst:tb.Testbed.endpoints.(2) ~src_port:40_001 ~dst_port:5_002
       ~size:(1 lsl 30) ());
  Engine.run ~until:(Time.ms duration_ms) tb.Testbed.engine;
  let pcap = Collector.vantage_pcap collector in
  let oc = open_out_bin output in
  output_string oc pcap;
  close_out oc;
  Printf.printf "wrote %d samples (%d bytes) to %s\n"
    (Collector.vantage_count collector)
    (String.length pcap) output;
  profile_report profile;
  telemetry_dump metrics_out trace_out;
  0
  end

(* ---- inspect subcommand ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fmt_stage = function
  | None -> "-"
  | Some t -> Printf.sprintf "%+.0fus" (Time.to_float_us t)

let fmt_delta a b =
  match (a, b) with Some a, Some b -> fmt_stage (Some (b - a)) | _ -> "-"

(* Per-loop stage table: each stage column shows the delta from the
   previous stage, [total] the detect->effective sum — the Fig 12/15
   decomposition, one row per correlated reroute. *)
let print_loops loops =
  let rerouted, silent =
    List.partition (fun (l : Inspect.loop) -> l.Inspect.flow <> None) loops
  in
  let header =
    [ "corr"; "flow"; "detect"; "notify"; "decide"; "install"; "effective";
      "total" ]
  in
  let rows =
    List.map
      (fun (l : Inspect.loop) ->
        [
          string_of_int l.Inspect.corr;
          Option.value l.Inspect.flow ~default:"-";
          Printf.sprintf "%.3fms" (Time.to_float_ms l.Inspect.detect);
          fmt_delta (Some l.Inspect.detect) l.Inspect.notify;
          fmt_delta l.Inspect.notify l.Inspect.decide;
          fmt_delta l.Inspect.decide l.Inspect.install;
          fmt_delta l.Inspect.install l.Inspect.effective;
          (match Inspect.total l with
          | Some t -> Printf.sprintf "%.3fms" (Time.to_float_ms t)
          | None -> "incomplete");
        ])
      rerouted
  in
  if rows <> [] then Table.print ~header rows;
  if silent <> [] then
    Printf.printf
      "(%d congestion detection(s) produced no reroute: cooldown, no better \
       path, or flow already moved)\n"
      (List.length silent)

let print_percentiles loops =
  let n = List.length (List.filter Inspect.complete loops) in
  if n > 0 then begin
    Printf.printf "\nstage percentiles over %d complete loop(s), ms:\n" n;
    let header = [ "stage"; "p10"; "p50"; "p90" ] in
    let rows =
      List.filter_map
        (fun (stage, ms) ->
          if ms = [] then None
          else
            Some
              [
                stage;
                Printf.sprintf "%.3f" (Stats.percentile 10.0 ms);
                Printf.sprintf "%.3f" (Stats.percentile 50.0 ms);
                Printf.sprintf "%.3f" (Stats.percentile 90.0 ms);
              ])
        (Inspect.stage_durations loops)
    in
    Table.print ~header rows
  end

let print_flaps events =
  match Inspect.flap_counts events with
  | [] -> ()
  | flaps ->
      let flapping = List.filter (fun (_, n) -> n > 1) flaps in
      Printf.printf
        "\nreroutes: %d decision(s) across %d flow(s); %d flow(s) flapped \
         (>1 reroute)\n"
        (List.fold_left (fun acc (_, n) -> acc + n) 0 flaps)
        (List.length flaps) (List.length flapping);
      List.iter
        (fun (flow, n) -> Printf.printf "  %-40s rerouted %d times\n" flow n)
        flapping

let print_estimate_errors names rows =
  match Inspect.estimate_errors ~names ~rows with
  | [] ->
      print_endline
        "\nno true:/est: flow columns in the time-series (run with \
         --timeseries-out while a scheme with collectors is deployed)"
  | errors ->
      Printf.printf "\nestimate vs truth (mean relative error where true \
                     rate > 0.05 Gbps):\n";
      List.iter
        (fun (flow, err) ->
          Printf.printf "  %-40s %.1f%%\n" flow (100.0 *. err))
        errors

let print_phases events =
  let phases =
    List.filter_map
      (fun (ev : Journal.event) ->
        match ev.Journal.body with
        | Journal.Phase_marker { name; detail } ->
            Some (ev.Journal.ts, name, detail)
        | _ -> None)
      events
  in
  if phases <> [] then begin
    print_endline "\nphases:";
    List.iter
      (fun (ts, name, detail) ->
        Printf.printf "  %10.3fms %-12s %s\n" (Time.to_float_ms ts) name
          detail)
      phases
  end

let inspect_journal journal_path timeseries_path =
  match Journal.of_ndjson (read_file journal_path) with
  | exception Sys_error msg ->
      Printf.eprintf "planck-cli: %s\n" msg;
      1
  | Error e ->
      Printf.eprintf "planck-cli: %s: %s\n" journal_path e;
      1
  | Ok events ->
      Printf.printf "journal: %d events from %s\n" (List.length events)
        journal_path;
      List.iter
        (fun (name, n) -> Printf.printf "  %-20s %d\n" name n)
        (Inspect.count_events events);
      let loops = Inspect.loops events in
      if loops = [] then
        print_endline
          "\nno correlated control loops (no congestion events recorded)"
      else begin
        Printf.printf
          "\ncontrol loops (detect -> notify -> decide -> install -> \
           effective):\n";
        print_loops loops;
        print_percentiles loops
      end;
      print_flaps events;
      print_phases events;
      (match timeseries_path with
      | None -> ()
      | Some path -> (
          match Timeseries.of_csv (read_file path) with
          | exception Sys_error msg -> Printf.eprintf "planck-cli: %s\n" msg
          | Error e -> Printf.eprintf "planck-cli: %s: %s\n" path e
          | Ok (names, rows) ->
              Printf.printf "\ntime-series: %d rows x %d series from %s\n"
                (List.length rows) (List.length names) path;
              print_estimate_errors names rows));
      0

(* Offline self-profile report from a metrics snapshot (--metrics-out
   of run/capture/bench, or the "metrics" member of bench --json). *)
let inspect_profile path =
  match Json.of_string (read_file path) with
  | exception Sys_error msg ->
      Printf.eprintf "planck-cli: %s\n" msg;
      1
  | Error e ->
      Printf.eprintf "planck-cli: %s: %s\n" path e;
      1
  | Ok doc -> (
      match Profile.rows_of_metrics_json doc with
      | Error e ->
          Printf.eprintf "planck-cli: %s: %s\n" path e;
          1
      | Ok rows ->
          Printf.printf "self-profile from %s (top spans by self time):\n%s"
            path (Profile.render rows);
          0)

let inspect () journal_path timeseries_path profile_path =
  match (journal_path, profile_path) with
  | None, None ->
      Printf.eprintf
        "planck-cli: inspect needs a JOURNAL argument and/or --profile FILE\n";
      1
  | journal, profile ->
      let codes =
        List.concat
          [
            (match profile with
            | Some path -> [ inspect_profile path ]
            | None -> []);
            (match journal with
            | Some path -> [ inspect_journal path timeseries_path ]
            | None -> []);
          ]
      in
      List.fold_left max 0 codes

(* ---- cmdliner wiring ---- *)

open Cmdliner

(* Shared Logs reporter: sim time + source prefix (satisfied by the
   simulation clock once a Testbed exists). --debug is shorthand for
   --log-level debug. *)
let setup_logs debug level =
  let level = if debug then Some Logs.Debug else level in
  Reporter.install ~level ()

let level_conv =
  let parse s =
    match Reporter.level_of_string s with
    | Ok l -> Ok l
    | Error e -> Error (`Msg e)
  in
  let print ppf l = Format.pp_print_string ppf (Logs.level_to_string l) in
  Arg.conv (parse, print)

let debug_arg =
  let debug =
    let doc = "Print controller/collector debug logs (= --log-level debug)." in
    Arg.(value & flag & info [ "debug" ] ~doc)
  in
  let log_level =
    let doc = "Log verbosity: off|error|warning|info|debug." in
    Arg.(
      value
      & opt level_conv (Some Logs.Warning)
      & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  Term.(const setup_logs $ debug $ log_level)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Enable telemetry and write the metric snapshot as JSON.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable sim-time tracing and write a Chrome trace_event JSON \
           (open in chrome://tracing or ui.perfetto.dev).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the self-profiling spans (wall clock + GC per \
           subsystem) and print the report after the run; span metrics \
           also land in --metrics-out snapshots for $(b,inspect \
           --profile).")

let topology_cmd =
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Fat-tree arity.") in
  Cmd.v
    (Cmd.info "topology" ~doc:"Print the fat-tree wiring and alternate routes")
    Term.(const show_topology $ k $ seed_arg)

let run_cmd =
  let workload =
    Arg.(
      value & opt string "stride8"
      & info [ "workload" ]
          ~doc:"stride8|stride4|shuffle|bijection|random|staggered|churn")
  in
  let flow_table =
    Arg.(
      value & opt string "exact"
      & info [ "flow-table" ]
          ~doc:
            "Collector flow-state backend: $(b,exact) (the paper's \
             per-flow table) or $(b,tiered) (count-min sketch with \
             heavy-hitter promotion, bounded resident state).")
  in
  let scheme =
    Arg.(
      value & opt string "planck-te"
      & info [ "scheme" ]
          ~doc:
            "static|planck-te|planck-te-openflow|poll-1s|poll-100ms|sflow-te|optimal")
  in
  let size =
    Arg.(value & opt int 50 & info [ "size-mib" ] ~doc:"Flow size in MiB.")
  in
  let runs = Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Repetitions.") in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the simulation on $(docv) OCaml domains (one per-shard \
             event loop, conservative-lookahead synchronization; see \
             DESIGN.md). Requires a shard-safe scheme/workload: \
             $(b,static) with a pair-based workload. $(b,--shards 1) \
             runs the same event sequence on one spawned domain. On a \
             fat-tree the agg-core links get the 5 us default core \
             delay at any N, so shard counts stay comparable.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"CSV output.") in
  let journal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:
            "Enable the flight-recorder journal and stream it as NDJSON \
             (one event per line; analyze with $(b,planck-cli inspect)).")
  in
  let timeseries_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeseries-out" ] ~docv:"FILE"
          ~doc:
            "Record ground-truth time-series (link Gbps, buffer bytes, true \
             vs estimated flow rates) as CSV; with --runs > 1 the last run \
             is written.")
  in
  let timeseries_interval =
    Arg.(
      value & opt int 500
      & info [ "timeseries-interval-us" ] ~docv:"US"
          ~doc:"Time-series sampling interval, microseconds.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload under a routing scheme")
    Term.(
      const run_experiment $ debug_arg $ workload $ scheme $ flow_table $ size
      $ runs $ seed_arg $ shards $ csv $ metrics_out_arg $ trace_out_arg
      $ journal_out $ timeseries_out $ timeseries_interval $ profile_arg)

let capture_cmd =
  let output =
    Arg.(
      value
      & opt string "/tmp/planck-capture.pcap"
      & info [ "output"; "o" ] ~doc:"Output pcap path.")
  in
  let duration =
    Arg.(value & opt int 10 & info [ "duration-ms" ] ~doc:"Capture length.")
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Dump a switch vantage point to pcap")
    Term.(
      const capture $ output $ duration $ seed_arg $ metrics_out_arg
      $ trace_out_arg $ profile_arg)

let inspect_cmd =
  let journal =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:
            "NDJSON journal written by $(b,run --journal-out). Optional \
             when --profile is given.")
  in
  let timeseries =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeseries" ] ~docv:"FILE"
          ~doc:
            "Time-series CSV written by $(b,run --timeseries-out); adds \
             estimate-vs-truth error summaries.")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Metrics snapshot written by $(b,--metrics-out) (or a \
             $(b,bench --json) document); prints the self-profile report \
             — top spans by self time, allocation rates, GC counts.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Analyze a flight-recorder journal: per-loop control stage \
          breakdowns, reroute flaps, estimate accuracy, runtime \
          self-profile")
    Term.(const inspect $ debug_arg $ journal $ timeseries $ profile)

let () =
  let doc = "Planck (SIGCOMM 2014 reproduction) command-line tool" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "planck-cli" ~doc)
          [ topology_cmd; run_cmd; capture_cmd; inspect_cmd ]))
