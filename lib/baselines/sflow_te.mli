(** OpenSample-style traffic engineering: the same Global First Fit
    loop as {!Poller}, but fed by control-plane sFlow samples instead
    of flow counters (Suh et al., ICDCS 2014; paper §2.1/§8).

    Each edge switch runs an sFlow agent whose export rate is capped by
    its control-plane CPU (~300 samples/s); a 100 ms control loop
    estimates elephants by multiply-by-N over an aggregation window.
    Because the CPU cap throttles *after* the 1-in-N selection, the
    effective sampling rate is unknown and the estimates are heavily
    distorted — the measurement pathology that motivates Planck. *)

type config = {
  period : Planck_util.Time.t;  (** control loop, 100 ms in OpenSample *)
  window : Planck_util.Time.t;  (** sample aggregation window *)
  elephant_threshold : float;
  mechanism : Planck_controller.Reroute.mechanism;
  agent : Planck_sflow.Agent.config;
}

val default_config : config
(** 100 ms loop, 1 s window, 0.1 threshold, ARP, default sFlow agent
    (1-in-256, 300 samples/s cap). *)

type t

val create :
  Planck_netsim.Engine.t ->
  routing:Planck_topology.Routing.t ->
  channel:Planck_openflow.Control_channel.t ->
  link_rate:Planck_util.Rate.t ->
  ?config:config ->
  prng:Planck_util.Prng.t ->
  unit ->
  t
(** Attach sFlow agents to every edge switch and start the loop. *)

val rounds : t -> int
val reroutes : t -> int
val samples_received : t -> int
