module Prng = Planck_util.Prng

type spec = {
  num_switches : int;
  switch_degree : int;
  hosts_per_switch : int;
}

(* Random r-regular multigraph-free wiring by repeated stub matching:
   shuffle the stub list and pair sequentially; restart on self-loops or
   duplicate edges. Fine for the modest sizes we simulate. *)
let random_regular prng ~n ~degree =
  if n * degree mod 2 <> 0 then
    invalid_arg "Jellyfish: n * degree must be even";
  if degree >= n then invalid_arg "Jellyfish: degree must be < switches";
  let rec attempt tries =
    if tries = 0 then invalid_arg "Jellyfish: could not wire a regular graph";
    let stubs = Array.make (n * degree) 0 in
    for i = 0 to Array.length stubs - 1 do
      stubs.(i) <- i / degree
    done;
    Prng.shuffle prng stubs;
    let edges = ref [] in
    let seen = Hashtbl.create (n * degree) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < Array.length stubs do
      let a = stubs.(!i) and b = stubs.(!i + 1) in
      let key = (min a b, max a b) in
      if a = b || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.replace seen key ();
        edges := (a, b) :: !edges;
        i := !i + 2
      end
    done;
    if !ok then !edges else attempt (tries - 1)
  in
  attempt 200

let build engine ~spec ~switch_config ~link_rate ?host_stack ?sharding ~prng () =
  let { num_switches; switch_degree; hosts_per_switch } = spec in
  if num_switches <= 1 then invalid_arg "Jellyfish: need >= 2 switches";
  if hosts_per_switch < 0 then invalid_arg "Jellyfish: negative host count";
  let ports = hosts_per_switch + switch_degree + 1 in
  let fabric =
    Fabric.build engine ~switch_ports:ports ~switch_config ~link_rate
      ?host_stack ?sharding
      ~num_switches
      ~num_hosts:(num_switches * hosts_per_switch)
      ~prng ()
  in
  (* Hosts occupy the low ports of their switch. *)
  for sw = 0 to num_switches - 1 do
    for slot = 0 to hosts_per_switch - 1 do
      Fabric.wire_host fabric
        ~host:((sw * hosts_per_switch) + slot)
        ~switch:sw ~port:slot
    done
  done;
  (* Random regular inter-switch graph on the middle ports. *)
  let next_port = Array.make num_switches hosts_per_switch in
  let take_port sw =
    let p = next_port.(sw) in
    next_port.(sw) <- p + 1;
    p
  in
  List.iter
    (fun (a, b) ->
      Fabric.wire_switches fabric ~a ~port_a:(take_port a) ~b
        ~port_b:(take_port b))
    (random_regular prng ~n:num_switches ~degree:switch_degree);
  for sw = 0 to num_switches - 1 do
    Fabric.reserve_monitor fabric ~switch:sw ~port:(ports - 1)
  done;
  fabric

let tree_out_ports fabric ~dst ~alt =
  let n = Fabric.switch_count fabric in
  let root, host_port = Fabric.host_attachment fabric ~host:dst in
  let out = Array.make n (-1) in
  out.(root) <- host_port;
  (* BFS from the root over switch-switch links; each discovered switch
     points back toward its parent. The alternate index rotates the
     port scan order, so different alts prefer different first hops. *)
  let visited = Array.make n false in
  visited.(root) <- true;
  let queue = Queue.create () in
  Queue.push root queue;
  let ports = Fabric.switch_ports fabric in
  while not (Queue.is_empty queue) do
    let sw = Queue.pop queue in
    for i = 0 to ports - 1 do
      let port = (i + alt) mod ports in
      match Fabric.peer fabric ~switch:sw ~port with
      | Fabric.To_switch (next, next_port) ->
          if not visited.(next) then begin
            visited.(next) <- true;
            out.(next) <- next_port;
            Queue.push next queue
          end
      | Fabric.To_host _ | Fabric.To_monitor | Fabric.Unwired -> ()
    done
  done;
  out
