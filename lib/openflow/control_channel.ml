module Time = Planck_util.Time
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine

type config = {
  one_way_min : Time.t;
  one_way_max : Time.t;
  rule_install_min : Time.t;
  rule_install_max : Time.t;
  stats_read : Time.t;
}

let default_config =
  {
    one_way_min = Time.us 100;
    one_way_max = Time.us 250;
    rule_install_min = Time.us 2500;
    rule_install_max = Time.us 6000;
    stats_read = Time.ms 25;
  }

type t = {
  engine : Engine.t;
  cfg : config;
  prng : Prng.t;
  mutable last_delivery : Time.t; (* FIFO ordering floor *)
  (* Messages in flight. Delivery times are strictly monotone (the FIFO
     floor), so a plain queue ordered by arrival works and one
     preallocated timer paces the whole channel. *)
  inbox : (Time.t * (unit -> unit)) Queue.t;
  delivery_timer : Engine.Timer.t;
}

let arm_inbox t =
  match Queue.peek_opt t.inbox with
  | Some (at, _) when not (Engine.Timer.pending t.delivery_timer) ->
      Engine.Timer.reschedule_at t.delivery_timer ~time:at
  | Some _ | None -> ()

let on_delivery t =
  (match Queue.take_opt t.inbox with None -> () | Some (_, k) -> k ());
  arm_inbox t

let create engine ?(config = default_config) ~prng () =
  let t =
    {
      engine;
      cfg = config;
      prng;
      last_delivery = 0;
      inbox = Queue.create ();
      delivery_timer = Engine.Timer.create engine ignore;
    }
  in
  Engine.Timer.set_callback t.delivery_timer (fun () -> on_delivery t);
  t

let config t = t.cfg

let uniform t lo hi = if hi <= lo then lo else lo + Prng.int t.prng (hi - lo + 1)

let deliver_after t delay k =
  let now = Engine.now t.engine in
  let at = max (now + delay) (t.last_delivery + 1) in
  t.last_delivery <- at;
  Queue.push (at, k) t.inbox;
  arm_inbox t

let send t k = deliver_after t (uniform t t.cfg.one_way_min t.cfg.one_way_max) k

(* Rule installs and counter reads run on the target switch's own CPU,
   so different switches proceed in parallel: no FIFO clamp. *)
let install_rule t k =
  let latency =
    uniform t t.cfg.one_way_min t.cfg.one_way_max
    + uniform t t.cfg.rule_install_min t.cfg.rule_install_max
  in
  Engine.schedule t.engine ~delay:latency k

let read_stats t k =
  let latency =
    (2 * uniform t t.cfg.one_way_min t.cfg.one_way_max) + t.cfg.stats_read
  in
  Engine.schedule t.engine ~delay:latency k
