(** sFlow baseline: control-plane-limited 1-in-N sampling and
    multiply-by-N estimation. *)

module Agent = Agent
module Estimator = Estimator
