(* Figures 2, 3 and 4 (§5.1): the impact of oversubscribed mirroring on
   the original traffic, as the number of congested output ports grows.

   Per congested port there are two senders saturating one receiver
   (3 hosts), stressing the shared buffer; the monitor port, when
   mirroring is on, competes for the same buffer. *)

open Exp_common

type observation = {
  loss_pct : float;
  lat_median : float; (* ms *)
  lat_p99 : float;
  lat_p999 : float;
  tput_median : float; (* Gbps *)
  tput_min : float;
}

let run_once ~mirror ~congested ~seed ~duration =
  let hosts = 28 in
  let micro_tb, switch =
    if mirror then
      let m = micro_testbed ~hosts ~seed () in
      (m.tb, m.switch)
    else micro_no_mirror ~hosts ~seed ()
  in
  let senders =
    List.concat_map (fun g -> [ 3 * g; (3 * g) + 1 ]) (List.init congested Fun.id)
  in
  let receivers = List.init congested (fun g -> (3 * g) + 2) in
  let recorder = record_latencies micro_tb (senders @ receivers) in
  (* Flow starts are skewed over a few ms, like processes launched by a
     workload generator, then the system warms up before measurement —
     the paper measures steady state over seconds. *)
  let prng = Prng.create ~seed:(seed + 7919) in
  let flows = ref [] in
  List.iter
    (fun g ->
      List.iter
        (fun src ->
          Engine.schedule micro_tb.Testbed.engine
            ~delay:(Prng.int prng (Time.ms 5))
            (fun () ->
              flows :=
                saturating_flow micro_tb ~src ~dst:((3 * g) + 2) :: !flows))
        [ 3 * g; (3 * g) + 1 ])
    (List.init congested Fun.id);
  let warmup = Time.ms 25 in
  Engine.run ~until:warmup micro_tb.Testbed.engine;
  (* Snapshot counters, then measure only the steady window. *)
  let drops0 = Switch.total_data_drops switch in
  let forwarded0 =
    List.fold_left
      (fun acc port -> acc + (Switch.port_stats switch ~port).Switch.tx_packets)
      0 receivers
  in
  recorder.latencies <- [];
  let acked0 = List.map (fun f -> (f, Flow.bytes_acked f)) !flows in
  Engine.run ~until:(warmup + duration) micro_tb.Testbed.engine;
  let drops = Switch.total_data_drops switch - drops0 in
  let forwarded =
    List.fold_left
      (fun acc port -> acc + (Switch.port_stats switch ~port).Switch.tx_packets)
      0 receivers
    - forwarded0
  in
  let loss_pct =
    if drops + forwarded = 0 then 0.0
    else 100.0 *. float_of_int drops /. float_of_int (drops + forwarded)
  in
  let lats = List.map ms recorder.latencies in
  let tputs =
    List.map
      (fun (f, before) ->
        Rate.to_gbps (Rate.of_bytes_per (Flow.bytes_acked f - before) duration))
      acked0
  in
  {
    loss_pct;
    lat_median = Stats.median lats;
    lat_p99 = Stats.percentile 99.0 lats;
    lat_p999 = Stats.percentile 99.9 lats;
    tput_median = Stats.median tputs;
    tput_min = Stats.percentile 0.0 tputs;
  }

let average obs =
  let f get = Stats.mean (List.map get obs) in
  {
    loss_pct = f (fun o -> o.loss_pct);
    lat_median = f (fun o -> o.lat_median);
    lat_p99 = f (fun o -> o.lat_p99);
    lat_p999 = f (fun o -> o.lat_p999);
    tput_median = f (fun o -> o.tput_median);
    tput_min = f (fun o -> o.tput_min);
  }

let run opts =
  section "Figures 2-4: impact of oversubscribed mirroring on traffic";
  let duration = if opts.full then Time.ms 200 else Time.ms 40 in
  let runs = opts.runs in
  note "%d congested-port configurations x {mirror, no-mirror} x %d runs, %s each"
    9 runs (Time.to_string duration);
  let rows = ref [] in
  for congested = 1 to 9 do
    let measure mirror =
      average
        (List.init runs (fun r ->
             run_once ~mirror ~congested ~seed:(opts.seed + r) ~duration))
    in
    let m = measure true and n = measure false in
    rows :=
      [
        string_of_int congested;
        Printf.sprintf "%.3f" m.loss_pct;
        Printf.sprintf "%.3f" n.loss_pct;
        Printf.sprintf "%.2f" m.lat_median;
        Printf.sprintf "%.2f" n.lat_median;
        Printf.sprintf "%.2f" m.lat_p99;
        Printf.sprintf "%.2f" n.lat_p99;
        Printf.sprintf "%.2f" m.lat_p999;
        Printf.sprintf "%.2f" n.lat_p999;
        Printf.sprintf "%.2f" m.tput_median;
        Printf.sprintf "%.2f" n.tput_median;
        Printf.sprintf "%.2f" m.tput_min;
        Printf.sprintf "%.2f" n.tput_min;
      ]
      :: !rows
  done;
  Table.print
    ~header:
      [
        "ports";
        "loss%/M";
        "loss%/-";
        "p50ms/M";
        "p50ms/-";
        "p99ms/M";
        "p99ms/-";
        "p99.9/M";
        "p99.9/-";
        "tputM/M";
        "tputM/-";
        "tput0/M";
        "tput0/-";
      ]
    (List.rev !rows);
  paper "Fig 2: loss grows with congested ports but stays < ~0.16%%,";
  paper "       slightly higher with mirroring (M) than without (-).";
  note "(simulated steady-state TCP is cleaner than real hardware: loss";
  note " here stays near zero over the short default window; the ordering";
  note " mirror >= no-mirror and the latency structure are the claims)";
  paper "Fig 3: median and p99 latency FALL as more ports congest (DT";
  paper "       buffer sharing), and are lower with mirroring; p99.9 is";
  paper "       higher with mirroring (retransmission delays).";
  paper "Fig 4: median and tail flow throughput unaffected by mirroring."
