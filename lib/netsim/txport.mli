(** A transmitting port: queue(s) + serializer + wire.

    One [Txport.t] models one direction of one link: frames are queued,
    serialized at the port rate, and delivered to the peer after the
    propagation delay (store-and-forward: the peer sees the frame when
    its last bit lands).

    The queue is an array of per-class sub-queues served round-robin.
    With a single class this degenerates to FIFO — hosts and normal
    switch ports use that. A switch monitor port uses one class per
    mirrored source port, reproducing the round-robin interleaving of
    samples the paper observes (Figures 5–7). *)

type t

val create :
  Engine.t ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  classes:int ->
  ?priority_class:int ->
  ?handoff:(Planck_util.Time.t -> Planck_packet.Packet.t -> unit) ->
  deliver:(Planck_packet.Packet.t -> unit) ->
  on_depart:(Planck_packet.Packet.t -> unit) ->
  unit ->
  t
(** [deliver] fires at the peer when a frame fully arrives;
    [on_depart] fires locally when the last bit leaves the queue
    (buffer-release point). [priority_class], if given, is served with
    strict priority over the round-robin classes — the CoS queue the
    paper proposes for SYN/FIN samples (§9.2).

    [handoff], if given, makes this a cross-shard port: when the last
    bit leaves the serializer the frame and its arrival time
    ([now + prop_delay]) go to the handoff (a {!Shard} channel) instead
    of the local propagation queue, and [deliver] is never called —
    the destination shard schedules the arrival in its own wheel. *)

val enqueue : t -> cls:int -> Planck_packet.Packet.t -> unit
(** Append to sub-queue [cls] and start the serializer if idle.
    Admission control is the caller's job — this never drops. *)

val queued_bytes : t -> int
(** Bytes waiting (not counting the frame currently on the wire). *)

val queued_packets : t -> int
val busy : t -> bool
val rate : t -> Planck_util.Rate.t
val tx_packets : t -> int
val tx_bytes : t -> int
