(* Sentinel-node SPSC linked queue. [head] always points at a consumed
   node whose [next] chain holds the live elements; [tail] is the last
   node the producer linked. The producer mutates only [tail] (and the
   old tail's [next]); the consumer mutates only [head]. Publication
   order — payload write, then Atomic [next] store — gives the consumer
   a happens-before edge on the payload without any lock.

   The debug role check is the dynamic complement of the static
   spsc-role-confinement lint rule: the rule proves per-channel role
   confinement across *distinct* shard roots, but N shards running the
   same shard-body def are one root to the callgraph. With [set_debug
   true], the first pushing domain claims the producer slot and the
   first popping/peeking domain the consumer slot (CAS, so a racing
   second claimant is caught too), and any later access from a
   different domain raises. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  mutable head : 'a node;
  mutable tail : 'a node;
  producer : int Atomic.t;  (* Domain.id of the claimed role; -1 unset *)
  consumer : int Atomic.t;
}

let debug = Atomic.make false
let set_debug on = Atomic.set debug on

let check_role slot role =
  if Atomic.get debug then begin
    let self = (Domain.self () :> int) in
    let claimed = Atomic.get slot in
    if claimed = self then ()
    else if claimed = -1 && Atomic.compare_and_set slot (-1) self then ()
    else
      failwith
        (Printf.sprintf
           "Spsc: second %s domain on an SPSC channel (domain %d, role held \
            by domain %d)"
           role self (Atomic.get slot))
  end

let node value = { value; next = Atomic.make None }

let create () =
  let sentinel = node None in
  {
    head = sentinel;
    tail = sentinel;
    producer = Atomic.make (-1);
    consumer = Atomic.make (-1);
  }

let push t v =
  check_role t.producer "producer";
  let n = node (Some v) in
  Atomic.set t.tail.next (Some n);
  t.tail <- n

let peek t =
  check_role t.consumer "consumer";
  match Atomic.get t.head.next with None -> None | Some n -> n.value

let pop t =
  check_role t.consumer "consumer";
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
      t.head <- n;
      n.value

let rec drain t f =
  match pop t with
  | None -> ()
  | Some v ->
      f v;
      drain t f
