(* Cross-layer integration tests over the Planck umbrella API: scheme
   orderings the paper's evaluation depends on, the poller baseline in
   action, and end-to-end control-loop latency. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
open Planck

let run ~scheme ~spec ?(size = 25 * 1024 * 1024) () =
  Experiment.run ~spec ~scheme ~workload:(Experiment.Stride 8) ~size
    ~horizon:(Time.s 20) ()

let planck_te_beats_static () =
  let static = run ~scheme:Scheme.Static ~spec:(Testbed.paper_fat_tree ()) () in
  let te =
    run ~scheme:Scheme.planck_te_default ~spec:(Testbed.paper_fat_tree ()) ()
  in
  let optimal = run ~scheme:Scheme.Static ~spec:(Testbed.optimal ()) () in
  Alcotest.(check bool) "all complete" true
    (static.Experiment.all_completed && te.Experiment.all_completed
   && optimal.Experiment.all_completed);
  Alcotest.(check bool)
    (Printf.sprintf "ordering: static %.2f < te %.2f <= optimal %.2f"
       static.Experiment.avg_goodput_gbps te.Experiment.avg_goodput_gbps
       optimal.Experiment.avg_goodput_gbps)
    true
    (static.Experiment.avg_goodput_gbps +. 1.0
     < te.Experiment.avg_goodput_gbps
    && te.Experiment.avg_goodput_gbps
       <= optimal.Experiment.avg_goodput_gbps +. 0.3);
  Alcotest.(check bool) "te rerouted" true (te.Experiment.reroutes > 0)

let poller_reroutes_long_flows () =
  (* 100 ms polling cannot help 25 MiB flows (they finish first), but
     must catch flows that live for many poll periods. *)
  let short =
    run ~scheme:Scheme.poll_100ms ~spec:(Testbed.paper_fat_tree ()) ()
  in
  Alcotest.(check int) "short flows see no reroutes" 0
    short.Experiment.reroutes;
  let long =
    run ~scheme:Scheme.poll_100ms
      ~spec:(Testbed.paper_fat_tree ())
      ~size:(400 * 1024 * 1024) ()
  in
  Alcotest.(check bool) "long flows get rerouted" true
    (long.Experiment.reroutes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "long flows improved: %.2f > 5.5"
       long.Experiment.avg_goodput_gbps)
    true
    (long.Experiment.avg_goodput_gbps > 5.5)

let detection_latency_under_2ms () =
  (* Fig 15 companion: flow 2 starts into flow 1's link; measure the
     time from flow 2's first data packet to the congestion event. *)
  let testbed = Testbed.create (Testbed.paper_fat_tree ()) in
  let controller =
    Planck_controller.Controller.create testbed.Testbed.engine
      ~routing:testbed.Testbed.routing ~link_rate:(Rate.gbps 10.0)
      ~prng:(Planck_util.Prng.create ~seed:7)
      ()
  in
  let first_event = ref None in
  List.iter
    (fun c ->
      Planck_collector.Collector.subscribe_congestion c ~threshold:0.5
        (fun e ->
          if !first_event = None then
            first_event := Some e.Planck_collector.Collector.time))
    (Planck_controller.Controller.collectors controller);
  (* Flow 1 reaches steady state alone, then flow 2 joins. *)
  ignore
    (Planck_tcp.Flow.start ~src:testbed.Testbed.endpoints.(0)
       ~dst:testbed.Testbed.endpoints.(8) ~src_port:1 ~dst_port:2
       ~size:(100 * 1024 * 1024) ());
  Planck_netsim.Engine.run ~until:(Time.ms 20) testbed.Testbed.engine;
  first_event := None;
  let second_start = Planck_netsim.Engine.now testbed.Testbed.engine in
  ignore
    (Planck_tcp.Flow.start ~src:testbed.Testbed.endpoints.(1)
       ~dst:testbed.Testbed.endpoints.(9) ~src_port:3 ~dst_port:4
       ~size:(100 * 1024 * 1024) ());
  Planck_netsim.Engine.run ~until:(Time.ms 40) testbed.Testbed.engine;
  match !first_event with
  | None -> Alcotest.fail "no congestion event"
  | Some t ->
      let latency = t - second_start in
      Alcotest.(check bool)
        (Printf.sprintf "detected in %s" (Time.to_string latency))
        true
        (latency < Time.ms 10)

(* The flight recorder end to end: a PlanckTE run with the journal on
   must produce at least one control loop with all five correlated
   stages (detect -> notify -> decide -> install -> effective), in
   timeline order and millisecond-scale overall — the Fig 12/15/16
   decomposition the inspect subcommand prints. *)
let journal_records_complete_control_loops () =
  let module Journal = Planck_telemetry.Journal in
  let module Inspect = Planck_telemetry.Inspect in
  let has_substring line sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  (* Stream only the control-loop events: a full run drops far more
     packets than the default ring holds, and the early loops must not
     be lost to eviction. *)
  let keep =
    [
      "congestion_detected"; "notified"; "reroute_decision";
      "reroute_install"; "reroute_effective";
    ]
  in
  let buf = Buffer.create 4096 in
  let was = Journal.enabled Journal.default in
  Journal.set_enabled Journal.default true;
  Journal.set_writer Journal.default
    (Some
       (fun line ->
         if
           List.exists
             (fun ev -> has_substring line ("\"ev\":\"" ^ ev ^ "\""))
             keep
         then begin
           Buffer.add_string buf line;
           Buffer.add_char buf '\n'
         end));
  Fun.protect
    ~finally:(fun () ->
      Journal.set_writer Journal.default None;
      Journal.set_enabled Journal.default was;
      Journal.clear Journal.default)
    (fun () ->
      let summary =
        run ~scheme:Scheme.planck_te_default
          ~spec:(Testbed.paper_fat_tree ())
          ~size:(5 * 1024 * 1024) ()
      in
      Alcotest.(check bool) "run rerouted" true
        (summary.Experiment.reroutes > 0);
      match Journal.of_ndjson (Buffer.contents buf) with
      | Error e -> Alcotest.failf "streamed journal invalid: %s" e
      | Ok events ->
          let loops = Inspect.loops events in
          let complete = List.filter Inspect.complete loops in
          Alcotest.(check bool)
            (Printf.sprintf "%d of %d loops complete" (List.length complete)
               (List.length loops))
            true
            (complete <> []);
          Alcotest.(check int) "one loop per reroute decision"
            summary.Experiment.reroutes
            (List.length
               (List.filter (fun l -> l.Inspect.flow <> None) loops));
          List.iter
            (fun (l : Inspect.loop) ->
              let ordered =
                match (l.Inspect.notify, l.Inspect.decide, l.Inspect.install,
                       l.Inspect.effective)
                with
                | Some n, Some d, Some i, Some e ->
                    l.Inspect.detect <= n && n <= d && d <= i && i <= e
                | _ -> false
              in
              Alcotest.(check bool)
                (Printf.sprintf "loop %d stages in timeline order"
                   l.Inspect.corr)
                true ordered;
              match Inspect.total l with
              | Some total ->
                  Alcotest.(check bool)
                    (Printf.sprintf "loop %d total %s is millisecond-scale"
                       l.Inspect.corr (Time.to_string total))
                    true
                    (total > 0 && total < Time.ms 10)
              | None -> ())
            complete)

(* The whole stack A/B'd over the scheduler swap: the same PlanckTE
   run (same spec, same seed) once on the pre-wheel heap-only queue and
   once on the timer wheel must stream a byte-identical control-loop
   journal — every congestion detection, notification, reroute
   decision, install, and effective timestamp (the Fig 15 timeline).
   This is the end-to-end form of the wheel/heap equivalence property:
   the scheduler rework changed no event ordering anywhere. *)
let reroute_timeline_scheduler_invariant () =
  let module Journal = Planck_telemetry.Journal in
  let module Wheel = Planck_util.Timer_wheel in
  let capture queue =
    let buf = Buffer.create 4096 in
    let was_enabled = Journal.enabled Journal.default in
    let was_queue = Planck_netsim.Engine.default_queue () in
    Journal.clear Journal.default;
    Journal.set_enabled Journal.default true;
    Journal.set_writer Journal.default
      (Some
         (fun line ->
           Buffer.add_string buf line;
           Buffer.add_char buf '\n'));
    Planck_netsim.Engine.set_default_queue queue;
    Fun.protect
      ~finally:(fun () ->
        Planck_netsim.Engine.set_default_queue was_queue;
        Journal.set_writer Journal.default None;
        Journal.set_enabled Journal.default was_enabled;
        Journal.clear Journal.default)
      (fun () ->
        let summary =
          run ~scheme:Scheme.planck_te_default
            ~spec:(Testbed.paper_fat_tree ())
            ~size:(5 * 1024 * 1024) ()
        in
        (summary.Experiment.reroutes, Buffer.contents buf))
  in
  let wheel_reroutes, wheel_journal = capture Wheel.default_config in
  let heap_reroutes, heap_journal = capture Wheel.heap_only in
  Alcotest.(check bool) "the run actually rerouted" true (wheel_reroutes > 0);
  Alcotest.(check int) "same reroute count" heap_reroutes wheel_reroutes;
  Alcotest.(check int) "same journal size"
    (String.length heap_journal)
    (String.length wheel_journal);
  Alcotest.(check bool) "byte-identical event journal" true
    (String.equal heap_journal wheel_journal)

let experiment_repeat_varies_seeds () =
  let summaries =
    Experiment.repeat ~runs:2 ~spec:(Testbed.paper_fat_tree ())
      ~scheme:Scheme.Static ~workload:Experiment.Random_bijection
      ~size:(4 * 1024 * 1024) ~horizon:(Time.s 5) ()
  in
  Alcotest.(check int) "two runs" 2 (List.length summaries);
  List.iter
    (fun s ->
      Alcotest.(check bool) "completed" true s.Experiment.all_completed)
    summaries;
  Alcotest.(check bool) "mean defined" true
    (Experiment.mean_avg_goodput summaries > 0.0)

let optimal_beats_everything_qcheck =
  QCheck.Test.make ~name:"optimal >= static on random bijections" ~count:3
    QCheck.(int_range 1 1000)
    (fun seed ->
      let size = 4 * 1024 * 1024 in
      let static =
        Experiment.run
          ~spec:(Testbed.paper_fat_tree ~seed ())
          ~scheme:Scheme.Static ~workload:Experiment.Random_bijection ~size
          ~horizon:(Time.s 5) ()
      in
      let optimal =
        Experiment.run
          ~spec:(Testbed.optimal ~seed ())
          ~scheme:Scheme.Static ~workload:Experiment.Random_bijection ~size
          ~horizon:(Time.s 5) ()
      in
      optimal.Experiment.avg_goodput_gbps
      >= static.Experiment.avg_goodput_gbps -. 0.4)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "PlanckTE beats Static, bounded by Optimal" `Slow
      planck_te_beats_static;
    Alcotest.test_case "poller helps only long flows" `Slow
      poller_reroutes_long_flows;
    Alcotest.test_case "congestion detected within ms" `Quick
      detection_latency_under_2ms;
    Alcotest.test_case "journal records complete control loops" `Quick
      journal_records_complete_control_loops;
    Alcotest.test_case "reroute timeline invariant under scheduler swap"
      `Quick reroute_timeline_scheduler_invariant;
    Alcotest.test_case "repeat varies seeds" `Quick
      experiment_repeat_varies_seeds;
    qtest optimal_beats_everything_qcheck;
  ]
