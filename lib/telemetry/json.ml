(* planck-lint: allow-file hot-alloc -- serialisation runs only when a
   journal writer or an export is active, never on the default per-packet
   path; Journal.record short-circuits before reaching it *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- Emission ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.equal f infinity || Float.equal f neg_infinity
  then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips a double. *)
    let s = Printf.sprintf "%.17g" f in
    if Float.equal (float_of_string s) f then
      let shorter = Printf.sprintf "%.12g" f in
      if Float.equal (float_of_string shorter) f then shorter else s
    else s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  emit buf json;
  Buffer.contents buf

(* ---- Parsing (recursive descent over the full JSON grammar) ---- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  while
    p.pos < String.length p.src
    &&
    match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some d when d = c -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let parse_literal p lit value =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    value
  end
  else fail p (Printf.sprintf "expected %s" lit)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Parse_error "bad hex digit")

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
        p.pos <- p.pos + 1;
        match peek p with
        | None -> fail p "unterminated escape"
        | Some c ->
            p.pos <- p.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if p.pos + 4 > String.length p.src then
                  fail p "truncated \\u escape";
                let code =
                  (hex_digit p.src.[p.pos] lsl 12)
                  lor (hex_digit p.src.[p.pos + 1] lsl 8)
                  lor (hex_digit p.src.[p.pos + 2] lsl 4)
                  lor hex_digit p.src.[p.pos + 3]
                in
                p.pos <- p.pos + 4;
                (* UTF-8 encode the code point (BMP only; surrogate
                   pairs are not emitted by this library). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail p (Printf.sprintf "bad escape '\\%c'" c));
            loop ())
    | Some c ->
        p.pos <- p.pos + 1;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let advance_while cond =
    while
      p.pos < String.length p.src && cond p.src.[p.pos]
    do
      p.pos <- p.pos + 1
    done
  in
  if peek p = Some '-' then p.pos <- p.pos + 1;
  advance_while (function '0' .. '9' -> true | _ -> false);
  if peek p = Some '.' then begin
    is_float := true;
    p.pos <- p.pos + 1;
    advance_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek p with
  | Some ('e' | 'E') ->
      is_float := true;
      p.pos <- p.pos + 1;
      (match peek p with
      | Some ('+' | '-') -> p.pos <- p.pos + 1
      | _ -> ());
      advance_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub p.src start (p.pos - start) in
  if text = "" || text = "-" then fail p "bad number";
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> String (parse_string_body p)
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              items (v :: acc)
          | Some ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> fail p "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws p;
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              p.pos <- p.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail p "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | json ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok json
  | exception Parse_error msg -> Error msg

(* ---- Accessors ---- *)

let member json key =
  match json with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
