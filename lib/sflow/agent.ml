module Time = Planck_util.Time
module Heap = Planck_util.Heap
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Packet = Planck_packet.Packet
module Flow_key = Planck_packet.Flow_key

type sample = {
  time : Time.t;
  key : Flow_key.t option;
  wire_size : int;
  in_port : int;
  out_port : int;
  dst_mac : Planck_packet.Mac.t;
  sampling_rate : int;
}

type config = {
  sampling_rate : int;
  max_samples_per_sec : int;
  export_latency_min : Time.t;
  export_latency_max : Time.t;
}

let default_config =
  {
    sampling_rate = 256;
    max_samples_per_sec = 300;
    export_latency_min = Time.us 500;
    export_latency_max = Time.ms 2;
  }

type t = {
  engine : Engine.t;
  cfg : config;
  prng : Prng.t;
  collector : sample -> unit;
  (* Token bucket for the control-plane budget: one token per
     1/max_samples_per_sec, burst of a handful. *)
  mutable tokens : float;
  mutable last_refill : Time.t;
  (* Datagrams in flight to the collector. Export latency is random so
     arrivals are non-monotone: a min-heap orders them and one
     preallocated timer tracks its head. *)
  pending : sample Heap.t;
  export_timer : Engine.Timer.t;
  mutable export_armed_at : Time.t;
  mutable selected : int;
  mutable exported : int;
  mutable throttled : int;
}

let bucket_burst = 8.0

let refill t =
  let now = Engine.now t.engine in
  let elapsed = Time.to_float_s (now - t.last_refill) in
  t.tokens <-
    min bucket_burst
      (t.tokens +. (elapsed *. float_of_int t.cfg.max_samples_per_sec));
  t.last_refill <- now

let arm_export t =
  match Heap.min_key t.pending with
  | None -> ()
  | Some at ->
      if
        (not (Engine.Timer.pending t.export_timer)) || at < t.export_armed_at
      then begin
        t.export_armed_at <- at;
        Engine.Timer.reschedule_at t.export_timer ~time:at
      end

let on_export t =
  let now = Engine.now t.engine in
  let rec loop () =
    match Heap.min_key t.pending with
    | Some at when at <= now -> (
        match Heap.pop t.pending with
        | Some (_, sample) ->
            t.collector sample;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  arm_export t

let export t ~in_port ~out_port packet =
  refill t;
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    t.exported <- t.exported + 1;
    let latency =
      t.cfg.export_latency_min
      + Prng.int t.prng
          (max 1 (t.cfg.export_latency_max - t.cfg.export_latency_min))
    in
    let at = Engine.now t.engine + latency in
    Heap.add t.pending ~key:at
      {
        time = at;
        key = Flow_key.of_packet packet;
        wire_size = packet.Packet.wire_size;
        in_port;
        out_port;
        dst_mac = Packet.dst_mac packet;
        sampling_rate = t.cfg.sampling_rate;
      };
    arm_export t
  end
  else t.throttled <- t.throttled + 1

let attach engine switch ?(config = default_config) ~prng ~collector () =
  if config.sampling_rate <= 0 then
    invalid_arg "Sflow.Agent.attach: sampling_rate must be positive";
  let t =
    {
      engine;
      cfg = config;
      prng;
      collector;
      tokens = bucket_burst;
      last_refill = 0;
      pending = Heap.create ();
      export_timer = Engine.Timer.create engine ignore;
      export_armed_at = 0;
      selected = 0;
      exported = 0;
      throttled = 0;
    }
  in
  Engine.Timer.set_callback t.export_timer (fun () -> on_export t);
  Switch.add_forward_tap switch (fun ~in_port ~out_port packet ->
      (* Statistical 1-in-N selection. *)
      if Prng.int t.prng t.cfg.sampling_rate = 0 then begin
        t.selected <- t.selected + 1;
        export t ~in_port ~out_port packet
      end);
  t

let selected t = t.selected
let exported t = t.exported
let throttled t = t.throttled
