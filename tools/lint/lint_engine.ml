module F = Lint_finding

(* ---- Suppression directives ----

   Inline comments of the form

     (* planck-lint: allow <rule> [<rule> ...] -- justification *)
     (* planck-lint: allow-file <rule> -- justification *)

   [allow] covers findings on the same line or the line immediately
   below the directive; [allow-file] covers the whole file. Rule names
   are taken from the catalog; the first token that is not a known rule
   id (or "all") ends the rule list, so justifications need no special
   delimiter. *)

type directive = { d_line : int; d_rules : string list; d_file_wide : bool }

let find_substring hay needle start =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go start

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let parse_directive_line ~line_number line =
  match find_substring line "planck-lint:" 0 with
  | None -> None
  | Some i ->
      let rest = String.sub line (i + 12) (String.length line - i - 12) in
      let rest = String.trim rest in
      let file_wide, rest =
        if String.length rest >= 10 && String.sub rest 0 10 = "allow-file" then
          (true, String.sub rest 10 (String.length rest - 10))
        else if String.length rest >= 5 && String.sub rest 0 5 = "allow" then
          (false, String.sub rest 5 (String.length rest - 5))
        else (false, "")
      in
      let tokens =
        String.split_on_char ' ' (String.map (function '\t' | ',' -> ' ' | c -> c) rest)
        |> List.filter (fun t -> t <> "")
      in
      let rec take acc = function
        | t :: rest
          when String.length t > 0
               && String.for_all is_rule_char t
               && Lint_rules.is_known t ->
            take (t :: acc) rest
        | _ -> List.rev acc
      in
      let rules = take [] tokens in
      if rules = [] then None
      else Some { d_line = line_number; d_rules = rules; d_file_wide = file_wide }

let parse_directives source =
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> parse_directive_line ~line_number:(i + 1) line)
  |> List.filter_map Fun.id

let suppressed directives (f : F.t) =
  List.exists
    (fun d ->
      (d.d_file_wide || d.d_line = f.line || d.d_line = f.line - 1)
      && (List.mem "all" d.d_rules || List.mem f.rule d.d_rules))
    directives

(* ---- Parsing & per-file lint ---- *)

let parse_error_finding ~path exn =
  let line, col, message =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        let pos = loc.Location.loc_start in
        ( pos.Lexing.pos_lnum,
          pos.Lexing.pos_cnum - pos.Lexing.pos_bol,
          Format.asprintf "%t" err.Location.main.Location.txt )
    | _ -> (1, 0, Printexc.to_string exn)
  in
  { F.rule = "parse-error"; severity = F.Error; file = path; line; col; message }

let lint_source ?(extra = []) ~path ~source () =
  let directives = parse_directives source in
  let ast_findings =
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf path;
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | str -> Lint_rules.check_structure ~path str
    | exception exn -> [ parse_error_finding ~path exn ]
  in
  List.partition
    (fun f -> not (suppressed directives f))
    (ast_findings @ extra)

(* ---- Tree walking ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry > 0 && entry.[0] = '.' then acc
           else if entry = "_build" then acc
           else collect_files acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

type result = {
  kept : F.t list;  (** unsuppressed findings, sorted by location *)
  suppressed_count : int;
  files_linted : int;
}

let lint_paths paths =
  let files =
    List.fold_left collect_files [] paths |> List.sort_uniq String.compare
  in
  let mli_set = Hashtbl.create 64 in
  List.iter
    (fun f -> if Filename.check_suffix f ".mli" then Hashtbl.replace mli_set f ())
    files;
  let kept = ref [] and suppressed_count = ref 0 and files_linted = ref 0 in
  List.iter
    (fun path ->
      if Filename.check_suffix path ".ml" then begin
        incr files_linted;
        let source = read_file path in
        let extra =
          Lint_rules.missing_mli ~path ~has_mli:(Hashtbl.mem mli_set (path ^ "i"))
        in
        let keep, drop = lint_source ~extra ~path ~source () in
        kept := keep @ !kept;
        suppressed_count := !suppressed_count + List.length drop
      end)
    files;
  {
    kept = List.sort F.compare_by_location !kept;
    suppressed_count = !suppressed_count;
    files_linted = !files_linted;
  }
