(** A binary min-heap keyed by integer priorities.

    Used as the event queue of the discrete-event engine, so insertion
    order is preserved among equal keys (FIFO tie-breaking): two events
    scheduled for the same instant fire in the order they were added. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty heap. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key]. O(log n). *)

val min_key : 'a t -> int option
(** Key of the minimum element, or [None] if empty. O(1). *)

val peek : 'a t -> (int * 'a) option
(** The minimum element without removing it (same element {!pop} would
    return next). O(1). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum element (FIFO among equal keys).
    O(log n). *)

val clear : 'a t -> unit
