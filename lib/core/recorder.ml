module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Fabric = Planck_topology.Fabric
module Flow_key = Planck_packet.Flow_key
module Flow = Planck_tcp.Flow
module Timeseries = Planck_telemetry.Timeseries

type t = {
  ts : Timeseries.t;
  estimate : Flow_key.t -> Rate.t option;
}

(* A rate probe from a monotone byte counter: Gbps moved since the last
   sample. The first sample covers creation-to-now, which is the same
   interval when registered before sampling starts. *)
let rate_probe ~interval read =
  let prev = ref (read ()) in
  fun () ->
    let now = read () in
    let delta = now - !prev in
    prev := now;
    Rate.to_gbps (Rate.of_bytes_per delta interval)

let create ?(interval = Time.us 500) ?(estimate = fun _ -> None)
    (testbed : Testbed.t) =
  let ts = Timeseries.create ~interval () in
  let fabric = testbed.Testbed.fabric in
  for sw = 0 to Fabric.switch_count fabric - 1 do
    let switch = Fabric.switch fabric sw in
    List.iter
      (fun port ->
        Timeseries.add_series ts
          ~name:(Printf.sprintf "link:s%d.p%d:gbps" sw port)
          (rate_probe ~interval (fun () ->
               (Switch.port_stats switch ~port).Switch.tx_bytes)))
      (Fabric.data_ports fabric ~switch:sw);
    Timeseries.add_series ts
      ~name:(Printf.sprintf "buf:s%d:bytes" sw)
      (fun () -> float_of_int (Switch.buffer_used switch));
    match Fabric.monitor_port fabric ~switch:sw with
    | Some port ->
        Timeseries.add_series ts
          ~name:(Printf.sprintf "monq:s%d:bytes" sw)
          (fun () -> float_of_int (Switch.queue_bytes switch ~port))
    | None -> ()
  done;
  let engine = testbed.Testbed.engine in
  let (_ : Engine.Timer.t) =
    Timeseries.start ts
      ~every:(fun ~period f -> Engine.periodic engine ~period f)
      ~clock:(fun () -> Engine.now engine)
  in
  { ts; estimate }

let timeseries t = t.ts

let track_flow t flow =
  let key = Flow.key flow in
  let label = Format.asprintf "%a" Flow_key.pp key in
  Timeseries.add_series t.ts ~name:("true:" ^ label)
    (rate_probe ~interval:(Timeseries.interval t.ts) (fun () ->
         Flow.bytes_acked flow));
  Timeseries.add_series t.ts ~name:("est:" ^ label) (fun () ->
      match t.estimate key with
      | Some rate -> Rate.to_gbps rate
      | None -> Float.nan)
