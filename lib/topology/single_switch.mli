(** One non-blocking switch with every host attached — the paper's
    "Optimal" reference configuration (§7.1), and the testbed for all
    the single-switch microbenchmarks of §5. *)

val build :
  Planck_netsim.Engine.t ->
  hosts:int ->
  switch_config:Planck_netsim.Switch.config ->
  link_rate:Planck_util.Rate.t ->
  ?host_stack:Planck_netsim.Host.stack ->
  ?sharding:Fabric.sharding ->
  prng:Planck_util.Prng.t ->
  unit ->
  Fabric.t
(** Host [i] on port [i]; the monitor port is port [hosts]. *)

val tree_out_ports : hosts:int -> dst:int -> int array
(** The trivial one-switch "spanning tree" for {!Routing.create}. *)
