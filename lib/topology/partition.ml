type t = {
  shards : int;
  of_switch : int -> int;
  of_host : int -> int;
}

let check shards label =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Partition.%s: shards must be >= 1" label)

(* [i * shards / n] assigns n items to shards in contiguous near-equal
   blocks (block sizes differ by at most one). *)
let block ~n ~shards i = if n = 0 then 0 else i * shards / n

let fat_tree (s : Fat_tree.shape) ~shards =
  check shards "fat_tree";
  let shard_of_pod pod = block ~n:s.pods ~shards pod in
  let of_switch sw =
    if sw < s.cores then block ~n:s.cores ~shards sw
    else if sw < s.cores + (s.pods * s.aggs_per_pod) then
      shard_of_pod ((sw - s.cores) / s.aggs_per_pod)
    else
      shard_of_pod
        ((sw - s.cores - (s.pods * s.aggs_per_pod)) / s.edges_per_pod)
  in
  let of_host h = shard_of_pod (Fat_tree.pod_of_host s h) in
  { shards; of_switch; of_host }

let jellyfish (j : Jellyfish.spec) ~shards =
  check shards "jellyfish";
  let of_switch sw = block ~n:j.num_switches ~shards sw in
  let of_host h =
    if j.hosts_per_switch = 0 then 0 else of_switch (h / j.hosts_per_switch)
  in
  { shards; of_switch; of_host }

let single ~shards =
  check shards "single";
  { shards; of_switch = (fun _ -> 0); of_host = (fun _ -> 0) }
