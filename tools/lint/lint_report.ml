module F = Lint_finding

let count sev findings =
  List.length (List.filter (fun f -> f.F.severity = sev) findings)

(* ---- Text ---- *)

let text_of ~findings ~suppressed ~files =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: %s [%s] %s\n" f.F.file f.F.line f.F.col
           (F.severity_label f.F.severity)
           f.F.rule f.F.message))
    findings;
  let errors = count F.Error findings and warnings = count F.Warning findings in
  Buffer.add_string buf
    (Printf.sprintf
       "planck-lint: %d file%s, %d error%s, %d warning%s, %d suppressed\n"
       files
       (if files = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s")
       suppressed);
  Buffer.contents buf

(* ---- JSON ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of ~findings ~suppressed ~files =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"version\":1,\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
           (escape f.F.rule)
           (F.severity_label f.F.severity)
           (escape f.F.file) f.F.line f.F.col (escape f.F.message)))
    findings;
  Buffer.add_string buf
    (Printf.sprintf "],\"files\":%d,\"errors\":%d,\"warnings\":%d,\"suppressed\":%d}"
       files (count F.Error findings) (count F.Warning findings) suppressed);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let rules_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Lint_rules.rule) ->
      if r.id <> "parse-error" then
        Buffer.add_string buf
          (Printf.sprintf "%-18s %-12s %-7s %s\n" r.id r.group
             (F.severity_label r.default_severity)
             r.doc))
    Lint_rules.catalog;
  Buffer.contents buf
