(** PAST-style multipath routing state: one destination-oriented
    spanning tree per (host, alternate) pair, addressed by shadow MAC.

    This is the routing layer of the paper's TE application (§6.2):
    alternate route [a] to host [d] is reached by addressing frames to
    [Mac.shadow (Mac.host d) ~alt:a]; the destination's edge switch
    rewrites shadow MACs back to the base MAC so the host accepts the
    frame. {!install} programs every simulated switch accordingly. *)

type tree = {
  dst_host : int;
  alt : int;
  mac : Planck_packet.Mac.t;
  out_ports : int array;  (** per switch; -1 = switch not on this tree *)
}

type t

val create :
  Fabric.t ->
  alts:int ->
  tree_fn:(dst:int -> alt:int -> int array) ->
  t
(** Compute trees for every host and alternates [0 .. alts-1]
    ([alt 0] = base route). Raises [Invalid_argument] if [alts < 1]. *)

val fabric : t -> Fabric.t
val alts : t -> int

val install : t -> unit
(** Program all switch FDBs, plus shadow→base rewrite rules at each
    destination's edge switch. *)

val mac_for : t -> dst:int -> alt:int -> Planck_packet.Mac.t
val tree : t -> Planck_packet.Mac.t -> tree option
val trees_to : t -> dst:int -> tree list

type hop = { switch : int; in_port : int; out_port : int }

val path : t -> src:int -> dst_mac:Planck_packet.Mac.t -> hop list
(** Switch-level path a frame from host [src] addressed to [dst_mac]
    takes. Raises [Invalid_argument] for unknown MACs or if the walk
    leaves the tree (a routing bug). *)

val links_of_path : hop list -> (int * int) list
(** The (switch, egress port) links of a path — the congestible
    resources. *)
