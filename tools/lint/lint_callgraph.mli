(** BFS closures over the [Lint_cmt_index] def/ref graph, with witness
    chains for findings. *)

type closure

val forward : Lint_cmt_index.t -> roots:string list -> closure
(** Everything reachable from [roots] following references forward —
    the hot set when seeded with the per-packet entry points. Roots are
    included. *)

val backward : Lint_cmt_index.t -> roots:string list -> closure
(** Everything that can reach one of [roots] — the tainted set when
    seeded with defs containing determinism sources. Roots included. *)

val mem : closure -> string -> bool
val elements : closure -> string list

val chain : closure -> string -> string list
(** Shortest witness chain from a root to the given node (for [forward];
    for [backward], from the node down to a root), empty when the node
    is not in the closure. *)

val chain_string : closure -> string -> string
(** [chain] rendered as ["a -> b -> c"]. *)
