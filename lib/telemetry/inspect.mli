(** Pure analysis over a {!Journal}: rebuild correlated control loops
    and summarize them.

    This is the engine behind [planck_cli inspect]: given the events of
    a journal (live or parsed back from NDJSON) it decomposes each
    correlation id into the named stages of the paper's Fig 12/15
    timeline — detect (congestion seen at the collector), notify
    (controller received the event), decide (TE picked a new route),
    install (ARP packet_out injected / OpenFlow rule installed), and
    effective (first sample of the flow on its new path, the Fig 16
    vantage point). *)

module Time = Planck_util.Time

type loop = {
  corr : int;
  flow : string option;
      (** [None] when the congestion event produced no reroute (e.g. TE
          found no better path). *)
  detect : Time.t;
  notify : Time.t option;
  decide : Time.t option;
  install : Time.t option;
  effective : Time.t option;
}
(** One (correlation id, rerouted flow) pair. A congestion event that
    reroutes several flows yields several loops sharing [detect] and
    [notify]. *)

val complete : loop -> bool
(** All five stages present. *)

val total : loop -> Time.t option
(** detect -> effective, when complete. *)

val loops : Journal.event list -> loop list
(** Rebuild loops, ordered by detection time. *)

val stage_names : string list
(** The four inter-stage legs plus the total, in timeline order. *)

val stage_durations : loop list -> (string * float list) list
(** Per {!stage_names} entry, the leg's duration in milliseconds for
    every complete loop (use {!Planck_util.Stats.percentile} on each
    list). *)

val flap_counts : Journal.event list -> (string * int) list
(** Reroute decisions per flow, most-rerouted first. A flow rerouted
    more than once within a journal is flapping. *)

val count_events : Journal.event list -> (string * int) list
(** Occurrences per event name ("packet_drop", "retransmit", ...),
    descending. *)

val estimate_errors :
  names:string list ->
  rows:(float * float array) list ->
  (string * float) list
(** Pair [true:<flow>] / [est:<flow>] timeseries columns and compute
    each flow's mean relative estimation error over samples where the
    true rate is significant (> 0.05 Gbps) and the estimate is
    defined. *)
