(* §5.2 (undersubscribed sample latency), Figure 8 (latency CDF under
   congestion, 10 G vs 1 G), Figure 9 (latency vs oversubscription
   factor), and Figure 12 (the measurement-latency timeline). *)

open Exp_common

(* Match each collector sample to the sender's first transmission of
   that (flow, seq): the send->collector latency of §5.2. *)
let sample_latencies m trace =
  let latencies = ref [] in
  Collector.set_tap m.collector (fun s ->
      match (s.Collector.key, s.Collector.seq32) with
      | Some key, Some seq when s.Collector.payload > 0 -> (
          match Hashtbl.find_opt trace.first_tx (key, seq) with
          | Some sent -> latencies := (s.Collector.rx - sent) :: !latencies
          | None -> ())
      | _ -> ());
  latencies

let congested_run ?(flows = 3) ~rate ~config ~seed ~duration () =
  let m = micro_testbed ~hosts:28 ~rate ~config ~seed () in
  let trace = trace_senders m.tb (List.init flows Fun.id) in
  let latencies = sample_latencies m trace in
  List.iteri
    (fun i _ -> ignore (saturating_flow m.tb ~src:i ~dst:(14 + i)))
    (List.init flows Fun.id);
  Engine.run ~until:duration m.tb.Testbed.engine;
  List.map ms !latencies

let undersubscribed_run ~rate ~config ~seed ~duration =
  let m = micro_testbed ~hosts:4 ~rate ~config ~seed () in
  let trace = trace_senders m.tb [ 0 ] in
  let latencies = sample_latencies m trace in
  (* One window-limited trickle flow: the monitor port stays idle, so
     these latencies are pure stack + wire + capture delay. *)
  ignore
    (Flow.start ~src:m.tb.Testbed.endpoints.(0) ~dst:m.tb.Testbed.endpoints.(1)
       ~src_port:1 ~dst_port:2 ~size:(1 lsl 30)
       ~params:
         { Flow.default_params with Flow.max_flight = 2 * 1460 }
       ());
  Engine.run ~until:duration m.tb.Testbed.engine;
  List.map us !latencies

let print_latency_cdf label values_ms =
  Printf.printf "  %s (n=%d):\n" label (List.length values_ms);
  Table.print ~header:[ "pctile"; "latency (ms)" ]
    (List.map
       (fun (p, v) -> [ Printf.sprintf "p%g" p; Printf.sprintf "%.2f" v ])
       (cdf_deciles values_ms))

let run opts =
  let duration = if opts.full then Time.ms 120 else Time.ms 40 in

  section "Sec 5.2: sample latency on an idle network";
  let us_10g =
    undersubscribed_run ~rate:rate_10g ~config:Switch.default_config
      ~seed:opts.seed ~duration
  in
  let us_1g =
    undersubscribed_run ~rate:rate_1g ~config:pronto_config ~seed:opts.seed
      ~duration
  in
  Table.print ~header:[ "network"; "min (us)"; "median (us)"; "max (us)" ]
    [
      [
        "10 Gbps";
        Printf.sprintf "%.0f" (Stats.percentile 1.0 us_10g);
        Printf.sprintf "%.0f" (Stats.median us_10g);
        Printf.sprintf "%.0f" (Stats.percentile 99.0 us_10g);
      ];
      [
        "1 Gbps";
        Printf.sprintf "%.0f" (Stats.percentile 1.0 us_1g);
        Printf.sprintf "%.0f" (Stats.median us_1g);
        Printf.sprintf "%.0f" (Stats.percentile 99.0 us_1g);
      ];
    ];
  paper "75-150 us on 10 Gbps; 80-450 us on 1 Gbps.";

  section "Figure 8: sample latency under congestion (3 saturated flows)";
  let lat_10g =
    congested_run ~rate:rate_10g ~config:Switch.default_config ~seed:opts.seed
      ~duration ()
  in
  print_latency_cdf "IBM G8264-like (10 Gbps)" lat_10g;
  let lat_1g =
    congested_run ~rate:rate_1g ~config:pronto_config ~seed:opts.seed
      ~duration:(if opts.full then Time.ms 400 else Time.ms 150) ()
  in
  print_latency_cdf "Pronto 3290-like (1 Gbps)" lat_1g;
  paper "median ~3.5 ms at 10 Gbps, just over 6 ms at 1 Gbps.";

  section "Figure 9: sample latency vs oversubscription factor (10 Gbps)";
  let rows =
    List.map
      (fun flows ->
        let lats =
          congested_run ~flows ~rate:rate_10g ~config:Switch.default_config
            ~seed:opts.seed
            ~duration:(if opts.full then Time.ms 60 else Time.ms 25)
            ()
        in
        [
          Printf.sprintf "%d.0" flows;
          Printf.sprintf "%.2f" (Stats.mean lats);
          Printf.sprintf "%.2f" (Stats.median lats);
        ])
      [ 1; 2; 3; 4; 6; 8; 10; 12; 14 ]
  in
  Table.print ~header:[ "factor"; "mean (ms)"; "median (ms)" ] rows;
  paper "roughly constant ~3.5 ms for any factor > 1: the switch gives";
  paper "the mirror port a fixed buffer share once saturated.";

  section "Figure 12 / Table 1: measurement latency breakdown";
  (* Minbuffer configuration: time from send to (a) collector rx and
     (b) first stable rate estimate for a starting flow. *)
  let breakdown ~rate ~config label =
    let m = micro_testbed ~hosts:8 ~rate ~config ~seed:opts.seed () in
    let trace = trace_senders m.tb [ 0; 1; 2 ] in
    let latencies = sample_latencies m trace in
    let estimate_delays = ref [] in
    let starts = Hashtbl.create 8 in
    Collector.on_estimate m.collector (fun key _rate time ->
        match Hashtbl.find_opt starts key with
        | Some start ->
            estimate_delays := (time - start) :: !estimate_delays;
            Hashtbl.remove starts key
        | None -> ());
    (* Three staggered saturated flows; record each flow's first send. *)
    List.iteri
      (fun i delay ->
        Engine.schedule m.tb.Testbed.engine ~delay (fun () ->
            let f = saturating_flow m.tb ~src:i ~dst:(4 + i) in
            Hashtbl.replace starts (Flow.key f) (Engine.now m.tb.Testbed.engine)))
      [ Time.ms 1; Time.ms 6; Time.ms 11 ];
    Engine.run ~until:(Time.ms 30) m.tb.Testbed.engine;
    let sample_ms = List.map ms !latencies in
    let settle_ms = List.map ms !estimate_delays in
    [
      label;
      Printf.sprintf "%.2f-%.2f"
        (Stats.percentile 1.0 sample_ms)
        (Stats.percentile 99.0 sample_ms);
      Printf.sprintf "%.2f-%.2f"
        (Stats.percentile 0.0 settle_ms)
        (Stats.percentile 100.0 settle_ms);
    ]
  in
  Table.print
    ~header:[ "configuration"; "sample delay (ms)"; "flow start->estimate (ms)" ]
    [
      breakdown ~rate:rate_10g
        ~config:(minbuffer Switch.default_config)
        "10G minbuffer";
      breakdown ~rate:rate_1g ~config:(minbuffer pronto_config) "1G minbuffer";
      breakdown ~rate:rate_10g ~config:Switch.default_config "10G buffered";
      breakdown ~rate:rate_1g ~config:pronto_config "1G buffered";
    ];
  paper "minbuffer: 275-850 us total at 10G (sample 75-150 us +";
  paper "estimator 200-700 us); buffered: <= 4.2 ms at 10G, <= 7.2 ms at 1G."
