(** Packet-level discrete-event network simulator.

    This is the substrate standing in for the paper's physical testbed:
    commodity switches with shared buffers and port mirroring
    ({!Switch}), Linux-like end hosts ({!Host}), netmap-style capture
    endpoints ({!Sink}), all driven by a deterministic event loop
    ({!Engine}). *)

module Engine = Engine
module Buffer_pool = Buffer_pool
module Txport = Txport
module Switch = Switch
module Host = Host
module Sink = Sink
module Wiring = Wiring
module Shard = Shard
