module Flow_key = Planck_packet.Flow_key
module Packet = Planck_packet.Packet
module Mac = Planck_packet.Mac
module Switch = Planck_netsim.Switch

type counter = {
  key : Flow_key.t;
  bytes : int;
  packets : int;
  dst_mac : Mac.t;
}

type cell = {
  mutable cell_bytes : int;
  mutable cell_packets : int;
  mutable cell_mac : Mac.t;
}

type t = { cells : cell Flow_key.Table.t }

let attach switch =
  let t = { cells = Flow_key.Table.create 64 } in
  Switch.add_forward_tap switch (fun ~in_port:_ ~out_port:_ packet ->
      match Flow_key.of_packet packet with
      | None -> ()
      | Some key ->
          let cell =
            match Flow_key.Table.find_opt t.cells key with
            | Some cell -> cell
            | None ->
                let cell =
                  {
                    cell_bytes = 0;
                    cell_packets = 0;
                    cell_mac = Packet.dst_mac packet;
                  }
                in
                Flow_key.Table.replace t.cells key cell;
                cell
          in
          cell.cell_bytes <- cell.cell_bytes + packet.Packet.wire_size;
          cell.cell_packets <- cell.cell_packets + 1;
          cell.cell_mac <- Packet.dst_mac packet);
  t

let snapshot t =
  Flow_key.Table.fold_sorted
    (fun key cell acc ->
      {
        key;
        bytes = cell.cell_bytes;
        packets = cell.cell_packets;
        dst_mac = cell.cell_mac;
      }
      :: acc)
    t.cells []

(* The switch CPU walks the counters during the read, so the values the
   controller gets are the ones present when the read finishes. *)
let poll t ~channel k =
  Control_channel.read_stats channel (fun () -> k (snapshot t))

let flow_count t = Flow_key.Table.length t.cells
