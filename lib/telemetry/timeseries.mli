(** Fixed-interval ground-truth time-series recorder.

    Complements the {!Journal}: where the journal captures discrete
    events, a timeseries samples continuous state — link utilization,
    shared-buffer occupancy, per-flow true vs collector-estimated rate —
    at a fixed simulated interval, for export as CSV/JSON. Series are
    probe thunks registered by name; new series may be added after
    sampling has started (earlier rows are padded with [nan] on
    export). *)

module Time = Planck_util.Time

type t

val create : ?capacity:int -> interval:Time.t -> unit -> t
(** [create ~interval ()] records at most [capacity] (default 65536)
    rows, sampled every [interval] of simulated time once {!start}ed. *)

val interval : t -> Time.t

val add_series : t -> name:string -> (unit -> float) -> unit
(** Register a probe. [name] becomes the CSV column header; it must not
    contain a comma or newline. *)

val names : t -> string list
(** Registered series names, in registration order. *)

val sample : t -> now:Time.t -> unit
(** Record one row by calling every probe. Usually driven by {!start},
    but callable directly (tests, one-shot snapshots). *)

val start :
  t ->
  every:(period:Time.t -> (unit -> unit) -> 'handle) ->
  clock:(unit -> Time.t) ->
  'handle
(** [start t ~every ~clock] samples on the simulation clock:
    [every ~period:(interval t) (fun () -> sample t ~now:(clock ()))].
    The scheduler is passed as a capability because telemetry sits below
    netsim in the dependency graph (same pattern as
    {!Flusher.schedule}). *)

val rows : t -> (Time.t * float array) list
(** Sampled rows, oldest first. Arrays are as wide as the series list
    was at sampling time. *)

val evicted : t -> int
val clear : t -> unit

(** {2 Export / import} *)

val to_csv : t -> string
(** Header [time_s,<name>,...]; one row per sample, times in seconds,
    values in shortest round-trip float form, short rows padded with
    [nan]. *)

val to_json : t -> Json.t
(** [{"interval_ns":..,"names":[..],"rows":[[ts_ns, v, ..], ..]}]. *)

val of_csv : string -> (string list * (float * float array) list, string) result
(** Parse a {!to_csv} document back into series names and
    [(time_s, values)] rows — the input side of
    [planck_cli inspect --timeseries]. *)
