(** The deep (typed, whole-repo) rule tier: hot-path reachability,
    type-aware poly-compare / float-equality, deep hot-alloc /
    hot-schedule, dead-export, plus [Lint_taint]'s determinism rule.

    Deep findings reuse the syntactic rule ids where they replace a
    syntactic rule, so inline suppression directives carry over
    unchanged; each carries a stable [symbol] (the qualified def or
    export id) so baseline entries survive line churn. *)

type t

val default_hot_roots : string list
(** The per-packet / per-event entry points: switch ingress/forward,
    collector sample path, engine and timer-wheel dispatch, tcp segment
    handling. *)

val prepare : ?hot_roots:string list -> Lint_cmt_index.t -> t
(** Build the hot closure (forward reachability from [hot_roots]). *)

val index : t -> Lint_cmt_index.t

val roots : t -> string list
(** The roots [prepare] was given (defaulted or not) — lets the domain
    tier extend them with its own shard roots. *)

val is_hot : t -> string -> bool
val hot_set : t -> string list
val hot_chain : t -> string -> string
(** Witness chain from a root to the given hot def. *)

val findings : ?dead_export:bool -> t -> Lint_finding.t list
(** All deep findings (typed events + dead exports + determinism
    taint). [dead_export:false] skips the export analysis — used when
    only part of the repo's cmt artifacts are guaranteed to exist, where
    missing referencing units would fabricate dead exports. *)

val load_baseline : string -> ((string * string) list, string) result
(** Parse a baseline file: one [<rule> <symbol> -- justification] per
    line, [#] comments and blanks ignored. *)

val apply_baseline :
  (string * string) list -> Lint_finding.t list ->
  Lint_finding.t list * Lint_finding.t list
(** [apply_baseline entries findings] is [(kept, baselined)]; a finding
    is baselined when some entry matches its [(rule, symbol)]. Findings
    with an empty symbol are never baselined. *)
