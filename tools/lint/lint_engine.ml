module F = Lint_finding

(* ---- Suppression directives ----

   Inline comments of the form

     (* planck-lint: allow <rule> [<rule> ...] -- justification *)
     (* planck-lint: allow-file <rule> -- justification *)

   [allow] covers findings on the same line or the line immediately
   below the directive; [allow-file] covers the whole file. Rule names
   are taken from the catalog; the first token that is not a known rule
   id (or "all") ends the rule list, so justifications need no special
   delimiter. *)

type directive = { d_line : int; d_rules : string list; d_file_wide : bool }

let find_substring hay needle start =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go start

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let parse_directive_line ~line_number line =
  match find_substring line "planck-lint:" 0 with
  | None -> None
  | Some i ->
      let rest = String.sub line (i + 12) (String.length line - i - 12) in
      let rest = String.trim rest in
      let file_wide, rest =
        if String.length rest >= 10 && String.sub rest 0 10 = "allow-file" then
          (true, String.sub rest 10 (String.length rest - 10))
        else if String.length rest >= 5 && String.sub rest 0 5 = "allow" then
          (false, String.sub rest 5 (String.length rest - 5))
        else (false, "")
      in
      let tokens =
        String.split_on_char ' ' (String.map (function '\t' | ',' -> ' ' | c -> c) rest)
        |> List.filter (fun t -> t <> "")
      in
      let rec take acc = function
        | t :: rest
          when String.length t > 0
               && String.for_all is_rule_char t
               && Lint_rules.is_known t ->
            take (t :: acc) rest
        | _ -> List.rev acc
      in
      let rules = take [] tokens in
      if rules = [] then None
      else Some { d_line = line_number; d_rules = rules; d_file_wide = file_wide }

let parse_directives source =
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> parse_directive_line ~line_number:(i + 1) line)
  |> List.filter_map Fun.id

let suppressed directives (f : F.t) =
  List.exists
    (fun d ->
      (d.d_file_wide || d.d_line = f.line || d.d_line = f.line - 1)
      && (List.mem "all" d.d_rules || List.mem f.rule d.d_rules))
    directives

(* ---- Parsing & per-file lint ---- *)

let parse_error_finding ~path exn =
  let line, col, message =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        let pos = loc.Location.loc_start in
        ( pos.Lexing.pos_lnum,
          pos.Lexing.pos_cnum - pos.Lexing.pos_bol,
          Format.asprintf "%t" err.Location.main.Location.txt )
    | _ -> (1, 0, Printexc.to_string exn)
  in
  {
    F.rule = "parse-error";
    severity = F.Error;
    file = path;
    line;
    col;
    message;
    symbol = "";
    classification = "";
  }

let lint_source ?(disable = []) ?(extra = []) ~path ~source () =
  let directives = parse_directives source in
  let ast_findings =
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf path;
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | str -> Lint_rules.check_structure ~path str
    | exception exn -> [ parse_error_finding ~path exn ]
  in
  let ast_findings =
    if disable = [] then ast_findings
    else List.filter (fun f -> not (List.mem f.F.rule disable)) ast_findings
  in
  List.partition
    (fun f -> not (suppressed directives f))
    (ast_findings @ extra)

(* Findings the deep tier attaches to an interface file (dead-export):
   there is no AST pass for .mli sources, but the suppression directives
   still apply. *)
let partition_mli_findings ~source findings =
  let directives = parse_directives source in
  List.partition (fun f -> not (suppressed directives f)) findings

(* ---- Tree walking ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry > 0 && entry.[0] = '.' then acc
           else if entry = "_build" then acc
           else collect_files acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

type result = {
  kept : F.t list;  (** unsuppressed findings, sorted by location *)
  suppressed_count : int;
  baselined_count : int;
  files_linted : int;
  deep_units : int;  (** cmt units indexed; 0 on a syntactic-only run *)
}

type deep_options = {
  cmt_dirs : string list;
  baseline_file : string option;
  dead_export : bool;
  shared_state_out : string option;
      (* write the shard-confinement inventory here; .json suffix
         selects the JSON artifact format, anything else the committed
         text format *)
  ownership_out : string option;
      (* same for the ownership-tier inventory (transfer sites, SPSC
         roles, blocking reaches) *)
}

let write_inventory path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* Build the per-file map of deep findings for the walked file set.
   Deep findings on files outside the walk (e.g. test/ when linting
   lib bin) are dropped: the walk defines the lint scope. *)
let deep_findings_by_file ~deep ~walked =
  match deep with
  | None -> (Hashtbl.create 1, 0, 0, fun _ -> false)
  | Some d ->
      let ix = Lint_cmt_index.load ~dirs:d.cmt_dirs in
      if Lint_cmt_index.unit_count ix = 0 then begin
        prerr_endline
          "planck-lint: warning: --deep found no .cmt artifacts (build \
           first, or pass --cmt-dir); falling back to the syntactic tier";
        (Hashtbl.create 1, 0, 0, fun _ -> false)
      end
      else begin
        let dr = Lint_deep_rules.prepare ix in
        let domain_entries = Lint_domain_rules.inventory dr in
        (match d.shared_state_out with
        | None -> ()
        | Some path ->
            write_inventory path
              (if Filename.check_suffix path ".json" then
                 Lint_domain_rules.inventory_json domain_entries
               else Lint_domain_rules.inventory_text domain_entries));
        (match d.ownership_out with
        | None -> ()
        | Some path ->
            let entries = Lint_ownership_rules.inventory dr in
            write_inventory path
              (if Filename.check_suffix path ".json" then
                 Lint_ownership_rules.inventory_json entries
               else Lint_ownership_rules.inventory_text entries));
        let findings =
          Lint_deep_rules.findings ~dead_export:d.dead_export dr
          @ Lint_domain_rules.findings ~entries:domain_entries dr
          @ Lint_ownership_rules.findings dr
        in
        let entries =
          match d.baseline_file with
          | None -> []
          | Some p when not (Sys.file_exists p) -> []
          | Some p -> (
              match Lint_deep_rules.load_baseline p with
              | Ok e -> e
              | Error e -> failwith ("baseline: " ^ e))
        in
        let kept, baselined = Lint_deep_rules.apply_baseline entries findings in
        let by_file = Hashtbl.create 64 in
        List.iter
          (fun (f : F.t) ->
            if Hashtbl.mem walked f.F.file then
              Hashtbl.replace by_file f.F.file
                (f :: Option.value (Hashtbl.find_opt by_file f.F.file) ~default:[]))
          kept;
        ( by_file,
          List.length baselined,
          Lint_cmt_index.unit_count ix,
          Lint_cmt_index.has_file ix )
      end

let lint_paths ?deep ?(only_rules = []) paths =
  let files =
    List.fold_left collect_files [] paths |> List.sort_uniq String.compare
  in
  let mli_set = Hashtbl.create 64 in
  List.iter
    (fun f -> if Filename.check_suffix f ".mli" then Hashtbl.replace mli_set f ())
    files;
  let walked = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace walked f ()) files;
  let deep_by_file, baselined_count, deep_units, covered =
    deep_findings_by_file ~deep ~walked
  in
  let kept = ref [] and suppressed_count = ref 0 and files_linted = ref 0 in
  List.iter
    (fun path ->
      let deep_extra =
        Option.value (Hashtbl.find_opt deep_by_file path) ~default:[]
      in
      if Filename.check_suffix path ".ml" then begin
        incr files_linted;
        let source = read_file path in
        let extra =
          Lint_rules.missing_mli ~path ~has_mli:(Hashtbl.mem mli_set (path ^ "i"))
          @ deep_extra
        in
        let disable = if covered path then Lint_rules.deep_replaced else [] in
        let keep, drop = lint_source ~disable ~extra ~path ~source () in
        kept := keep @ !kept;
        suppressed_count := !suppressed_count + List.length drop
      end
      else if deep_extra <> [] then begin
        (* .mli file carrying deep findings (dead-export): apply its
           suppression directives, no AST pass *)
        let source = read_file path in
        let keep, drop = partition_mli_findings ~source deep_extra in
        kept := keep @ !kept;
        suppressed_count := !suppressed_count + List.length drop
      end)
    files;
  let kept =
    if only_rules = [] then !kept
    else List.filter (fun (f : F.t) -> List.mem f.F.rule only_rules) !kept
  in
  {
    kept = List.sort F.compare_by_location kept;
    suppressed_count = !suppressed_count;
    baselined_count;
    files_linted = !files_linted;
    deep_units;
  }
