type 'a t = {
  data : 'a option array;
  mutable head : int; (* next slot to pop *)
  mutable size : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; head = 0; size = 0; dropped = 0 }

let capacity r = Array.length r.data
let length r = r.size
let is_empty r = r.size = 0
let is_full r = r.size = Array.length r.data

let push r v =
  if is_full r then begin
    r.dropped <- r.dropped + 1;
    false
  end
  else begin
    let tail = (r.head + r.size) mod Array.length r.data in
    r.data.(tail) <- Some v;
    r.size <- r.size + 1;
    true
  end

let pop r =
  if r.size = 0 then None
  else begin
    let v = r.data.(r.head) in
    r.data.(r.head) <- None;
    r.head <- (r.head + 1) mod Array.length r.data;
    r.size <- r.size - 1;
    v
  end

let pop_batch r ~max =
  let rec loop n acc =
    if n = 0 then List.rev acc
    else
      match pop r with
      | None -> List.rev acc
      | Some v -> loop (n - 1) (v :: acc)
  in
  loop max []

let drops r = r.dropped

let clear r =
  Array.fill r.data 0 (Array.length r.data) None;
  r.head <- 0;
  r.size <- 0

let to_list r =
  List.init r.size (fun i ->
      match r.data.((r.head + i) mod Array.length r.data) with
      | Some v -> v
      | None -> assert false)
