(* Classic pcap: 24-byte global header, then per-packet records of
   16-byte header + captured bytes. Little-endian with magic
   0xa1b2c3d4 (microsecond timestamps). *)

type t = { buf : Buffer.t; snaplen : int; mutable count : int }

let add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let add_u32 buf v =
  add_u16 buf (v land 0xFFFF);
  add_u16 buf ((v lsr 16) land 0xFFFF)

let create ?(snaplen = 65535) () =
  let buf = Buffer.create 4096 in
  add_u32 buf 0xA1B2C3D4 (* magic *);
  add_u16 buf 2 (* version major *);
  add_u16 buf 4 (* version minor *);
  add_u32 buf 0 (* thiszone *);
  add_u32 buf 0 (* sigfigs *);
  add_u32 buf snaplen;
  add_u32 buf 1 (* LINKTYPE_ETHERNET *);
  { buf; snaplen; count = 0 }

let add t ~time packet =
  let wire = Packet.to_wire packet in
  let captured = min (Bytes.length wire) t.snaplen in
  let us = time / Planck_util.Time.microsecond in
  add_u32 t.buf (us / 1_000_000) (* ts_sec *);
  add_u32 t.buf (us mod 1_000_000) (* ts_usec *);
  add_u32 t.buf captured;
  add_u32 t.buf packet.Packet.wire_size;
  Buffer.add_subbytes t.buf wire 0 captured;
  t.count <- t.count + 1

let packet_count t = t.count
let contents t = Buffer.contents t.buf

let to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
