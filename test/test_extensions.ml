(* Tests for the paper's §9.2/§3.2.2 extension features: preferential
   sampling of SYN/FIN, collector flow-lifecycle events, retransmission
   inference, and the §9.1 scalability arithmetic. *)

open Testbed
module Collector = Planck_collector.Collector
module Txport = Planck_netsim.Txport
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module Scalability = Planck.Scalability

let mk ?(seq = 0) ?(payload = 1460) () =
  P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1) ~src_ip:(Ip.host 0)
    ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2 ~seq ~ack_seq:0
    ~flags:H.Tcp_flags.ack ~payload_len:payload ()

(* ---- Txport strict priority ---- *)

let txport_priority_class () =
  let e = Engine.create () in
  let order = ref [] in
  let tx =
    Txport.create e ~rate:(Rate.gbps 10.0) ~prop_delay:0 ~classes:3
      ~priority_class:2
      ~deliver:(fun p -> order := p.P.id :: !order)
      ~on_depart:(fun _ -> ())
      ()
  in
  let a = mk () and b = mk () and special = mk () in
  Engine.schedule e ~delay:0 (fun () ->
      Txport.enqueue tx ~cls:0 a;
      Txport.enqueue tx ~cls:0 b;
      Txport.enqueue tx ~cls:2 special);
  Engine.run e;
  (* a transmits immediately; the priority frame preempts b. *)
  Alcotest.(check (list int)) "priority preempts round-robin"
    [ a.P.id; special.P.id; b.P.id ]
    (List.rev !order)

(* ---- Preferential sampling end-to-end ---- *)

let priority_config =
  { Switch.default_config with Switch.mirror_priority_special = true }

let syn_observed_quickly ~special_priority =
  (* Saturate the monitor port with 3 bulk flows for 20 ms, then start
     a new flow and measure when its SYN is seen at the collector. *)
  let config =
    if special_priority then priority_config else Switch.default_config
  in
  let tb = single_switch ~hosts:10 ~config () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  List.iter
    (fun i -> ignore (start_flow tb ~src:i ~dst:(5 + i) ~size:(1 lsl 30) ()))
    [ 0; 1; 2 ];
  Engine.run ~until:(Time.ms 20) tb.engine;
  let started = ref None in
  Collector.subscribe_flow_events collector (fun e ->
      if e.Collector.kind = Collector.Flow_started && !started = None then
        started := Some e.Collector.time);
  let t0 = Engine.now tb.engine in
  ignore (start_flow tb ~src:3 ~dst:8 ~size:(1024 * 1024) ());
  Engine.run ~until:(t0 + Time.ms 20) tb.engine;
  Option.map (fun t -> t - t0) !started

let preferential_sampling_beats_backlog () =
  let with_priority = syn_observed_quickly ~special_priority:true in
  let without = syn_observed_quickly ~special_priority:false in
  match (with_priority, without) with
  | Some fast, Some slow ->
      Alcotest.(check bool)
        (Printf.sprintf "SYN seen in %s with priority vs %s without"
           (Time.to_string fast) (Time.to_string slow))
        true
        (fast < Time.ms 1 && slow > 2 * fast)
  | _ -> Alcotest.fail "SYN event not observed"

let flow_end_event () =
  let tb = single_switch ~hosts:4 () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  let events = ref [] in
  Collector.subscribe_flow_events collector (fun e -> events := e :: !events);
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(512 * 1024) () in
  Engine.run ~until:(Time.ms 20) tb.engine;
  Alcotest.(check bool) "flow completed" true (Flow.completed flow);
  let kinds key =
    List.filter_map
      (fun e ->
        if Planck_packet.Flow_key.equal e.Collector.flow key then
          Some e.Collector.kind
        else None)
      !events
  in
  let ks = kinds (Flow.key flow) in
  Alcotest.(check bool) "started seen" true
    (List.mem Collector.Flow_started ks);
  Alcotest.(check bool) "ended seen" true (List.mem Collector.Flow_ended ks)

let syn_flood_bounded () =
  (* A storm of SYNs must not monopolize the monitor port: the special
     fraction is bounded. *)
  let tb = single_switch ~hosts:6 ~config:priority_config () in
  let sw = Fabric.switch tb.fabric 0 in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  (* Bulk background plus many tiny flows (each contributes SYN+FIN). *)
  ignore (start_flow tb ~src:0 ~dst:3 ~size:(1 lsl 30) ());
  for i = 0 to 199 do
    Engine.schedule tb.engine ~delay:(Time.us (50 * i)) (fun () ->
        ignore
          (Flow.start ~src:tb.endpoints.(1) ~dst:tb.endpoints.(4)
             ~src_port:(10_000 + i) ~dst_port:(30_000 + i) ~size:1460 ()))
  done;
  Engine.run ~until:(Time.ms 30) tb.engine;
  let special = Switch.special_mirrored sw in
  let stats = Switch.port_stats sw ~port:6 in
  ignore stats;
  Alcotest.(check bool)
    (Printf.sprintf "special samples bounded: %d" special)
    true
    (special > 0 && special < 600)

(* ---- Retransmission inference ---- *)

let retransmission_fraction () =
  let config =
    {
      Switch.default_config with
      Switch.buffer_total = 150_000;
      buffer_reservation = 0;
    }
  in
  let tb = single_switch ~hosts:4 ~config () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  (* Two flows into one port with a tiny buffer: guaranteed
     retransmissions. *)
  let f1 = start_flow tb ~src:0 ~dst:2 ~size:(5 * 1024 * 1024) () in
  let f2 = start_flow tb ~src:1 ~dst:2 ~size:(5 * 1024 * 1024) () in
  Engine.run ~until:(Time.s 2) tb.engine;
  Alcotest.(check bool) "flows completed" true
    (Flow.completed f1 && Flow.completed f2);
  let retx = Flow.retransmits f1 + Flow.retransmits f2 in
  let inferred key = Collector.flow_retransmission_fraction collector key in
  (match (inferred (Flow.key f1), inferred (Flow.key f2)) with
  | Some a, Some b ->
      Alcotest.(check bool)
        (Printf.sprintf "retx happened (%d); inferred %.3f / %.3f" retx a b)
        true
        (retx = 0 || a +. b > 0.0)
  | _ -> Alcotest.fail "flows not tracked");
  (* A clean flow infers ~zero. *)
  let tb2 = single_switch ~hosts:4 () in
  let c2 =
    Collector.create tb2.engine ~switch:0 ~routing:tb2.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach c2;
  let clean = start_flow tb2 ~src:0 ~dst:1 ~size:(2 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 20) tb2.engine;
  match Collector.flow_retransmission_fraction c2 (Flow.key clean) with
  | Some f -> Alcotest.(check bool) "clean flow ~0" true (f < 0.01)
  | None -> Alcotest.fail "clean flow not tracked"

(* ---- Scalability (§9.1) ---- *)

let scalability_paper_numbers () =
  let ft = Scalability.fat_tree_plan ~k:62 in
  Alcotest.(check int) "hosts" 59_582 ft.Scalability.hosts;
  Alcotest.(check int) "switches" 4_805 ft.Scalability.switches;
  Alcotest.(check int) "collector servers" 344 ft.Scalability.collector_servers;
  Alcotest.(check bool) "0.58% additional" true
    (abs_float (ft.Scalability.additional_machines_pct -. 0.58) < 0.01);
  let jf =
    Scalability.jellyfish_plan ~ports:64 ~hosts_per_switch:17 ~hosts:59_582
  in
  Alcotest.(check int) "jellyfish switches" 3_505 jf.Scalability.switches;
  Alcotest.(check int) "jellyfish collectors" 251
    jf.Scalability.collector_servers;
  Alcotest.(check bool) "0.42% additional" true
    (abs_float (jf.Scalability.additional_machines_pct -. 0.42) < 0.01);
  let ft_cost, jf_cost = Scalability.monitor_port_host_cost ~fat_tree_k:62 in
  Alcotest.(check bool) "fat-tree host cost ~1.4-1.6%" true
    (ft_cost > 1.0 && ft_cost < 2.0);
  Alcotest.(check (float 0.01)) "jellyfish host cost 5.5%" 5.56 jf_cost

let sampling_fraction_reporting () =
  (* Undersubscribed: the trace is complete (fraction ~1). Oversubscribed
     by 3 saturated flows: each flow's trace holds roughly a third. *)
  let tb1 = single_switch ~hosts:4 () in
  let c1 =
    Collector.create tb1.engine ~switch:0 ~routing:tb1.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach c1;
  let lone = start_flow tb1 ~src:0 ~dst:1 ~size:(4 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 10) tb1.engine;
  (match Collector.flow_sampling_fraction c1 (Flow.key lone) with
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "complete capture: %.2f" f)
        true (f > 0.95 && f <= 1.01)
  | None -> Alcotest.fail "no fraction for lone flow");
  let tb3 = single_switch ~hosts:8 () in
  let c3 =
    Collector.create tb3.engine ~switch:0 ~routing:tb3.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach c3;
  let flows =
    List.init 3 (fun i -> start_flow tb3 ~src:i ~dst:(4 + i) ~size:(1 lsl 30) ())
  in
  Engine.run ~until:(Time.ms 25) tb3.engine;
  List.iter
    (fun f ->
      match Collector.flow_sampling_fraction c3 (Flow.key f) with
      | Some frac ->
          Alcotest.(check bool)
            (Printf.sprintf "oversubscribed fraction ~1/3: %.2f" frac)
            true
            (frac > 0.2 && frac < 0.5)
      | None -> Alcotest.fail "no fraction under oversubscription")
    flows

let tests =
  [
    Alcotest.test_case "txport strict priority" `Quick txport_priority_class;
    Alcotest.test_case "preferential sampling beats backlog" `Quick
      preferential_sampling_beats_backlog;
    Alcotest.test_case "flow start/end events" `Quick flow_end_event;
    Alcotest.test_case "SYN flood bounded" `Quick syn_flood_bounded;
    Alcotest.test_case "retransmission inference" `Quick
      retransmission_fraction;
    Alcotest.test_case "scalability arithmetic (sec 9.1)" `Quick
      scalability_paper_numbers;
    Alcotest.test_case "vantage sampling fraction (sec 6.1)" `Quick
      sampling_fraction_reporting;
  ]

