(** Transport-flow identity: the classic 5-tuple.

    The collector's flow table (paper §3.2.2) and the controller's
    traffic-engineering state are both keyed by this. *)

type t = {
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  src_port : int;
  dst_port : int;
  protocol : int;
}

val of_packet : Packet.t -> t option
(** The 5-tuple of a TCP or UDP frame; [None] for ARP. *)

val reverse : t -> t
(** Key of the opposite direction (ACK stream) of the same connection. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
module Map : Map.S with type key = t
