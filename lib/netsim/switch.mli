(** An output-queued commodity switch with shared buffering and port
    mirroring.

    Models the parts of the IBM G8264 / Pronto 3290 behaviour the paper
    depends on:

    - L2 forwarding on destination MAC (the testbed routes on MACs —
      PAST spanning trees and shadow MACs, paper §4.2/§6.2);
    - a shared packet buffer with dynamic-threshold admission
      ({!Buffer_pool}), so congested ports shed load exactly as §5.1
      describes;
    - port mirroring: any set of data ports can be mirrored to one
      monitor port. Mirror copies contend for buffer space like any
      other traffic; when the monitor port is oversubscribed they queue
      and then drop — producing Planck's implicit sampling;
    - egress destination-MAC rewrite rules (shadow MAC → base MAC at the
      destination's edge switch, §6.2);
    - per-port counters (OpenFlow-style stats the polling baselines
      read).

    Mirror-copy arbitration into the monitor port is a single FIFO by
    default, like a real egress queue: the one-packet-per-flow
    interleaving of Figures 5–7 emerges from the synchronized arrival
    of copies from saturated ports, and a freshly mirrored flow's
    copies correctly wait behind the standing backlog (Figures 8/16).
    [Round_robin] per mirrored source port is available as an
    ablation. *)

type arbitration = Round_robin | Fifo

type config = {
  buffer_total : int;  (** shared packet memory, bytes (Trident: 9 MB) *)
  buffer_reservation : int;  (** static per-port reservation, bytes *)
  dt_alpha : float;  (** dynamic-threshold alpha *)
  pipeline_latency : Planck_util.Time.t;
      (** base ingress→egress processing latency *)
  pipeline_jitter : Planck_util.Time.t;
      (** uniform extra per-packet latency from fabric arbitration and
          memory banking; breaks the phase locks that perfectly
          periodic simulated streams would otherwise form at a
          saturated egress *)
  mirror_buffer_cap : int option;
      (** hard cap on the monitor port's buffer occupancy — the
          "minbuffer" firmware feature of §9.2; [None] = firmware
          default (full DT share) *)
  mirror_arbitration : arbitration;
  mirror_priority_special : bool;
      (** give SYN/FIN/RST mirror copies a strict-priority CoS queue on
          the monitor port, so flow starts/ends are observed without
          waiting behind the sample backlog (the paper's §9.2
          proposal) *)
  mirror_priority_max_fraction : float;
      (** bound on the fraction of mirrored packets admitted to the
          priority queue, so a SYN flood cannot suppress normal
          samples (§9.2) *)
}

val default_config : config
(** Trident-like: 9 MB total, 12 KiB per-port reservation, alpha 0.8,
    700 ns pipeline with 800 ns jitter, no mirror cap, FIFO mirror
    arbitration. *)

type t

val create :
  Engine.t ->
  name:string ->
  ports:int ->
  config:config ->
  ?prng:Planck_util.Prng.t ->
  unit ->
  t
(* [prng] drives the pipeline jitter; defaults to a generator seeded
   from [name] (still deterministic run-to-run). *)
val name : t -> string
val ports : t -> int
val engine : t -> Engine.t

val connect :
  t ->
  port:int ->
  rate:Planck_util.Rate.t ->
  prop_delay:Planck_util.Time.t ->
  ?handoff:(Planck_util.Time.t -> Planck_packet.Packet.t -> unit) ->
  deliver:(Planck_packet.Packet.t -> unit) ->
  unit ->
  unit
(** Attach the given peer ingress function to [port]'s transmit side.
    Raises [Invalid_argument] if the port is already connected.
    [handoff] marks a cross-shard port: departures go to the shard
    channel with their arrival time and [deliver] is never called
    (see {!Txport.create}). *)

val ingress : t -> port:int -> Planck_packet.Packet.t -> unit
(** A frame fully arrived on [port]. This is the function to hand to the
    peer's transmit side. *)

(** {2 Forwarding state} *)

val add_route : t -> Planck_packet.Mac.t -> int -> unit
(** [add_route t mac port]: frames destined to [mac] leave via [port].
    Replaces any existing entry. *)

val remove_route : t -> Planck_packet.Mac.t -> unit
val route : t -> Planck_packet.Mac.t -> int option
val route_count : t -> int

val add_rewrite :
  t -> from_mac:Planck_packet.Mac.t -> to_mac:Planck_packet.Mac.t -> unit
(** Egress rewrite rule: frames destined to [from_mac] have their
    destination rewritten to [to_mac] before being queued out. *)

val add_flow_rewrite :
  t -> key:Planck_packet.Flow_key.t -> to_mac:Planck_packet.Mac.t -> unit
(** Ingress match-action rule: frames of flow [key] get their
    destination MAC rewritten to [to_mac] {e before} the forwarding
    lookup — the OpenFlow rerouting mechanism of §6.2. Replaces any
    existing rule for the key. *)

val remove_flow_rewrite : t -> key:Planck_packet.Flow_key.t -> unit
val flow_rewrite_count : t -> int

val add_forward_tap :
  t -> (in_port:int -> out_port:int -> Planck_packet.Packet.t -> unit) -> unit
(** Observe every successfully enqueued (non-mirror) frame — the hook
    the OpenFlow flow-counter and sFlow substrates use. Taps fire in
    registration order. *)

val inject : t -> port:int -> Planck_packet.Packet.t -> unit
(** Queue a frame directly on an egress port (an OpenFlow packet-out),
    subject to normal buffer admission. *)

(** {2 Mirroring} *)

val set_mirror : t -> monitor:int -> mirrored:int list -> unit
(** Mirror the egress traffic of every port in [mirrored] to the
    [monitor] port. Raises [Invalid_argument] if [monitor] is in
    [mirrored]. *)

val clear_mirror : t -> unit
val monitor_port : t -> int option

(** {2 Statistics} *)

type port_stats = {
  rx_packets : int;
  rx_bytes : int;
  tx_packets : int;
  tx_bytes : int;
  data_drops : int;  (** non-mirror frames dropped at this egress *)
  mirror_drops : int;  (** mirror copies dropped at this egress *)
}

val port_stats : t -> port:int -> port_stats
val special_mirrored : t -> int
(** Mirror copies that used the priority CoS queue. *)

val total_data_drops : t -> int
val total_mirror_drops : t -> int
val unroutable_drops : t -> int
val queue_bytes : t -> port:int -> int
(** Current egress occupancy of [port] (queued, incl. in-flight frame's
    buffer). *)

val buffer_used : t -> int
