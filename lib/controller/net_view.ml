module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing

type flow = {
  key : Flow_key.t;
  mutable rate : Rate.t;
  mutable dst_mac : Mac.t;
  mutable last_heard : Time.t;
  mutable no_reroute_until : Time.t;
  mutable commanded : bool;
}

type t = {
  routing : Routing.t;
  flow_timeout : Time.t;
  flows : flow Flow_key.Table.t;
  (* Paths are static per (src, mac); memoize the link lists. *)
  path_cache : (int * Mac.t, (int * int) list) Hashtbl.t;
}

let create routing ~flow_timeout =
  {
    routing;
    flow_timeout;
    flows = Flow_key.Table.create 64;
    path_cache = Hashtbl.create 256;
  }

let observe t ~now ~key ~rate ~dst_mac =
  match Flow_key.Table.find_opt t.flows key with
  | Some flow ->
      flow.rate <- rate;
      (* The controller is the only writer of routes: once it has
         commanded one, annotations (which lag by the mirror-port
         buffering) never override it. *)
      if not flow.commanded then flow.dst_mac <- dst_mac;
      flow.last_heard <- now;
      flow
  | None ->
      let flow =
        {
          key;
          rate;
          dst_mac;
          last_heard = now;
          no_reroute_until = Time.zero;
          commanded = false;
        }
      in
      Flow_key.Table.replace t.flows key flow;
      flow

let expire t ~now =
  let dead = ref [] in
  Flow_key.Table.iter_sorted
    (fun key flow ->
      if now - flow.last_heard > t.flow_timeout then dead := key :: !dead)
    t.flows;
  List.iter (Flow_key.Table.remove t.flows) !dead

let find t key = Flow_key.Table.find_opt t.flows key

(* Key-sorted so TE's stable sort by rate breaks ties deterministically
   instead of by hash-bucket layout. *)
let live_flows t =
  Flow_key.Table.fold_sorted (fun _ flow acc -> flow :: acc) t.flows []
let size t = Flow_key.Table.length t.flows

let links_for t ~src ~dst_mac =
  let cache_key = (src, dst_mac) in
  match Hashtbl.find_opt t.path_cache cache_key with
  | Some links -> links
  | None ->
      let links =
        match Routing.path t.routing ~src ~dst_mac with
        | exception Invalid_argument _ -> []
        | hops -> Routing.links_of_path hops
      in
      Hashtbl.replace t.path_cache cache_key links;
      links

let path_links t flow =
  match Ipv4_addr.host_id flow.key.Flow_key.src_ip with
  | None -> []
  | Some src -> links_for t ~src ~dst_mac:flow.dst_mac

let bottleneck t ~capacity ~exclude ~links =
  match links with
  | [] -> 0.0
  | links ->
      (* Sorted fold: float addition is order-sensitive, so summing in
         hash order would make the load (and reroute choices near the
         threshold) nondeterministic. *)
      let load link =
        Flow_key.Table.fold_sorted
          (fun _ flow acc ->
            if flow == exclude then acc
            else if List.mem link (path_links t flow) then acc +. flow.rate
            else acc)
          t.flows 0.0
      in
      List.fold_left
        (fun acc link -> min acc (capacity -. load link))
        infinity links

let set_route _t flow mac =
  flow.dst_mac <- mac;
  flow.commanded <- true
