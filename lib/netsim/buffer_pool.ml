type t = {
  total : int;
  reservation : int;
  alpha : float;
  per_port : int array; (* total bytes queued per port *)
  caps : int option array;
  mutable shared : int; (* bytes drawn from the shared region *)
  mutable shared_hw : int; (* high-water mark of [shared] *)
}

let create ~total ~reservation ~alpha ~ports =
  if ports <= 0 then invalid_arg "Buffer_pool.create: ports must be positive";
  if reservation < 0 || reservation * ports > total then
    invalid_arg "Buffer_pool.create: static region exceeds total";
  if alpha <= 0.0 then invalid_arg "Buffer_pool.create: alpha must be positive";
  {
    total;
    reservation;
    alpha;
    per_port = Array.make ports 0;
    caps = Array.make ports None;
    shared = 0;
    shared_hw = 0;
  }

let shared_capacity t = t.total - (t.reservation * Array.length t.per_port)

let set_port_cap t ~port cap = t.caps.(port) <- cap

(* A port's occupancy splits into up-to-[reservation] static bytes plus
   the remainder drawn from the shared region. Admitting [bytes_]
   requires: the port cap (if any) holds; the extra shared demand fits in
   the remaining shared capacity; and the port's resulting shared usage
   stays under the dynamic threshold alpha * (shared remaining). *)
let try_alloc t ~port ~bytes_ =
  if bytes_ < 0 then invalid_arg "Buffer_pool.try_alloc: negative size";
  let used = t.per_port.(port) in
  let new_used = used + bytes_ in
  let cap_ok =
    match t.caps.(port) with None -> true | Some c -> new_used <= c
  in
  let shared_before = max 0 (used - t.reservation) in
  let shared_after = max 0 (new_used - t.reservation) in
  let demand = shared_after - shared_before in
  let remaining = shared_capacity t - t.shared in
  let dt_ok =
    demand = 0
    || (demand <= remaining
        && float_of_int shared_after <= t.alpha *. float_of_int remaining)
  in
  if cap_ok && dt_ok then begin
    t.shared <- t.shared + demand;
    if t.shared > t.shared_hw then t.shared_hw <- t.shared;
    t.per_port.(port) <- new_used;
    true
  end
  else false

let release t ~port ~bytes_ =
  if bytes_ < 0 then invalid_arg "Buffer_pool.release: negative size";
  let used = t.per_port.(port) in
  if bytes_ > used then invalid_arg "Buffer_pool.release: over-release";
  let shared_before = max 0 (used - t.reservation) in
  let shared_after = max 0 (used - bytes_ - t.reservation) in
  t.shared <- t.shared - (shared_before - shared_after);
  t.per_port.(port) <- used - bytes_

let port_used t ~port = t.per_port.(port)
let shared_used t = t.shared
let shared_high_water t = t.shared_hw
let total_used t = Array.fold_left ( + ) 0 t.per_port
let capacity t = t.total
