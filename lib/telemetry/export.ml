(* Snapshot writers: metric registries as JSON or CSV documents, and a
   tiny file sink shared by the CLI/bench flags and the flusher. *)

let json_of_snapshot (s : Metrics.snapshot) =
  let base =
    [
      ("subsystem", Json.String s.Metrics.subsystem);
      ("name", Json.String s.Metrics.name);
      ("label", Json.String s.Metrics.label);
    ]
  in
  let value =
    match s.Metrics.value with
    | Metrics.Counter_value v ->
        [ ("kind", Json.String "counter"); ("value", Json.Int v) ]
    | Metrics.Gauge_value { value; max } ->
        [
          ("kind", Json.String "gauge");
          ("value", Json.Float value);
          ("max", Json.Float max);
        ]
    | Metrics.Histogram_value { count; sum; min; max; buckets } ->
        [
          ("kind", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Int sum);
          ("min", Json.Int min);
          ("max", Json.Int max);
          ( "buckets",
            Json.List
              (List.map
                 (fun (lo, hi, n) ->
                   Json.List [ Json.Int lo; Json.Int hi; Json.Int n ])
                 buckets) );
        ]
  in
  Json.Obj (base @ value)

let metrics_to_json registry =
  Json.Obj
    [
      ( "metrics",
        Json.List (List.map json_of_snapshot (Metrics.snapshot registry)) );
    ]

let metrics_json registry = Json.to_string (metrics_to_json registry)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let metrics_csv registry =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "subsystem,name,label,kind,value,count,sum,min,max\n";
  List.iter
    (fun (s : Metrics.snapshot) ->
      let kind, value, count, sum, min, max =
        match s.Metrics.value with
        | Metrics.Counter_value v ->
            ("counter", string_of_int v, "", "", "", "")
        | Metrics.Gauge_value { value; max } ->
            ("gauge", Printf.sprintf "%g" value, "", "", "",
             Printf.sprintf "%g" max)
        | Metrics.Histogram_value { count; sum; min; max; _ } ->
            ( "histogram",
              "",
              string_of_int count,
              string_of_int sum,
              string_of_int min,
              string_of_int max )
      in
      Buffer.add_string buf
        (String.concat ","
           [
             csv_field s.Metrics.subsystem;
             csv_field s.Metrics.name;
             csv_field s.Metrics.label;
             kind;
             value;
             count;
             sum;
             min;
             max;
           ]);
      Buffer.add_char buf '\n')
    (Metrics.snapshot registry);
  Buffer.contents buf

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
