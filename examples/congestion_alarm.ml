(* Event subscription (paper §3.3): an application that subscribes to
   link-utilization events and prints them with their flow annotations,
   without doing any rerouting — the building block for self-tuning
   network applications.

     dune exec examples/congestion_alarm.exe
*)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module FK = Planck_packet.Flow_key
module Ip = Planck_packet.Ipv4_addr
module Engine = Planck_netsim.Engine
module Collector = Planck_collector.Collector
module Controller = Planck_controller.Controller
module Flow = Planck_tcp.Flow
open Planck

let () =
  let tb = Testbed.create (Testbed.paper_fat_tree ()) in
  let controller =
    Controller.create tb.Testbed.engine ~routing:tb.Testbed.routing
      ~link_rate:(Testbed.link_rate tb)
      ~prng:(Planck_util.Prng.split tb.Testbed.prng)
      ()
  in
  let events = ref 0 in
  List.iter
    (fun collector ->
      Collector.subscribe_congestion collector ~threshold:0.8 (fun e ->
          incr events;
          if !events <= 12 then begin
            Format.printf "%8s  switch s%d port %d at %a of %a:@."
              (Time.to_string e.Collector.time)
              e.Collector.switch e.Collector.port Rate.pp
              e.Collector.utilization Rate.pp e.Collector.capacity;
            List.iter
              (fun (key, rate, _mac) ->
                Format.printf "            %a:%d -> %a:%d at %a@." Ip.pp
                  key.FK.src_ip key.FK.src_port Ip.pp key.FK.dst_ip
                  key.FK.dst_port Rate.pp rate)
              e.Collector.flows
          end))
    (Controller.collectors controller);

  (* Two flows that collide on their base routes. *)
  ignore
    (Flow.start ~src:tb.Testbed.endpoints.(0) ~dst:tb.Testbed.endpoints.(8)
       ~src_port:40_001 ~dst_port:5_008 ~size:(30 * 1024 * 1024) ());
  ignore
    (Flow.start ~src:tb.Testbed.endpoints.(1) ~dst:tb.Testbed.endpoints.(9)
       ~src_port:40_002 ~dst_port:5_009 ~size:(30 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 60) tb.Testbed.engine;
  Format.printf "@.%d congestion events total (first 12 shown)@." !events
