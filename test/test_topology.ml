(* Topology and routing tests: fat-tree wiring, spanning-tree validity,
   shadow-MAC provisioning, path computation, Jellyfish construction. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Fabric = Planck_topology.Fabric
module Fat_tree = Planck_topology.Fat_tree
module Single_switch = Planck_topology.Single_switch
module Jellyfish = Planck_topology.Jellyfish
module Routing = Planck_topology.Routing
module Mac = Planck_packet.Mac

let build_ft k =
  let engine = Engine.create () in
  Fat_tree.build engine ~k ~switch_config:Switch.default_config
    ~link_rate:(Rate.gbps 10.0) ~prng:(Prng.create ~seed:1) ()

let shape_counts () =
  let s = Fat_tree.shape ~k:4 in
  Alcotest.(check int) "switches" 20 s.Fat_tree.num_switches;
  Alcotest.(check int) "hosts" 16 s.Fat_tree.num_hosts;
  Alcotest.(check int) "cores" 4 s.Fat_tree.cores;
  let s6 = Fat_tree.shape ~k:6 in
  Alcotest.(check int) "k=6 switches" 45 s6.Fat_tree.num_switches;
  Alcotest.(check int) "k=6 hosts" 54 s6.Fat_tree.num_hosts

let shape_rejects_odd () =
  Alcotest.check_raises "odd k" (Invalid_argument "x") (fun () ->
      try ignore (Fat_tree.shape ~k:3)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let wiring_complete () =
  let fabric, s = build_ft 4 in
  (* Every switch: k data ports wired + 1 monitor reserved. *)
  for sw = 0 to s.Fat_tree.num_switches - 1 do
    Alcotest.(check int)
      (Printf.sprintf "switch %d data ports" sw)
      4
      (List.length (Fabric.data_ports fabric ~switch:sw));
    Alcotest.(check (option int))
      (Printf.sprintf "switch %d monitor" sw)
      (Some 4)
      (Fabric.monitor_port fabric ~switch:sw)
  done;
  (* Adjacency is symmetric. *)
  for sw = 0 to s.Fat_tree.num_switches - 1 do
    List.iter
      (fun port ->
        match Fabric.peer fabric ~switch:sw ~port with
        | Fabric.To_switch (peer, peer_port) -> (
            match Fabric.peer fabric ~switch:peer ~port:peer_port with
            | Fabric.To_switch (back, back_port) ->
                Alcotest.(check (pair int int))
                  "symmetric" (sw, port) (back, back_port)
            | _ -> Alcotest.fail "asymmetric adjacency")
        | Fabric.To_host h ->
            let attach_sw, attach_port = Fabric.host_attachment fabric ~host:h in
            Alcotest.(check (pair int int))
              "host attach" (sw, port) (attach_sw, attach_port)
        | Fabric.To_monitor | Fabric.Unwired -> ())
      (Fabric.data_ports fabric ~switch:sw)
  done

let hosts_contiguous_in_pods () =
  let s = Fat_tree.shape ~k:4 in
  Alcotest.(check int) "first of pod 2" 2 (Fat_tree.pod_of_host s 8);
  Alcotest.(check int) "host layout" 10
    (Fat_tree.host_of s ~pod:2 ~edge:1 ~slot:0)

let routing_for fabric s =
  let routing =
    Routing.create fabric ~alts:(Fat_tree.max_alts s) ~tree_fn:(fun ~dst ~alt ->
        Fat_tree.tree_out_ports s ~dst ~core:(Fat_tree.core_for s ~dst ~alt))
  in
  Routing.install routing;
  routing

let paths_valid_all_pairs () =
  let fabric, s = build_ft 4 in
  let routing = routing_for fabric s in
  (* Every (src, dst, alt) path must terminate at the destination and
     never exceed 5 switch hops (edge-agg-core-agg-edge). *)
  for src = 0 to 15 do
    for dst = 0 to 15 do
      if src <> dst then
        for alt = 0 to 3 do
          let mac = Routing.mac_for routing ~dst ~alt in
          let hops = Routing.path routing ~src ~dst_mac:mac in
          Alcotest.(check bool)
            (Printf.sprintf "%d->%d alt %d length" src dst alt)
            true
            (List.length hops >= 1 && List.length hops <= 5)
        done
    done
  done

let cross_pod_uses_expected_core () =
  let fabric, s = build_ft 4 in
  let routing = routing_for fabric s in
  let mac = Routing.mac_for routing ~dst:12 ~alt:0 in
  let hops = Routing.path routing ~src:0 ~dst_mac:mac in
  Alcotest.(check int) "5 hops across core" 5 (List.length hops);
  let middle = List.nth hops 2 in
  Alcotest.(check int) "core id is (12+0) mod 4"
    (Fat_tree.core_id s (Fat_tree.core_for s ~dst:12 ~alt:0))
    middle.Routing.switch

let same_edge_path_is_one_hop () =
  let fabric, s = build_ft 4 in
  let routing = routing_for fabric s in
  let mac = Routing.mac_for routing ~dst:1 ~alt:0 in
  Alcotest.(check int) "1 hop" 1
    (List.length (Routing.path routing ~src:0 ~dst_mac:mac))

let alternates_are_core_disjoint () =
  let fabric, s = build_ft 4 in
  let routing = routing_for fabric s in
  (* For a cross-pod pair, the four alternates traverse four distinct
     cores — the "each core defines a unique spanning tree" property. *)
  let cores =
    List.map
      (fun alt ->
        let mac = Routing.mac_for routing ~dst:12 ~alt in
        let hops = Routing.path routing ~src:0 ~dst_mac:mac in
        (List.nth hops 2).Routing.switch)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "4 distinct cores" 4
    (List.length (List.sort_uniq compare cores))

let shadow_rewrites_installed () =
  let fabric, s = build_ft 4 in
  let routing = routing_for fabric s in
  ignore routing;
  (* The destination edge switch of host 12 must rewrite all 3 shadow
     MACs back to the base. *)
  let edge, _ = Fabric.host_attachment fabric ~host:12 in
  let sw = Fabric.switch fabric edge in
  (* Routes for base + 3 shadows of each of hosts 12,13 end at this
     switch; spot-check the route table knows the shadow MACs. *)
  List.iter
    (fun alt ->
      Alcotest.(check bool)
        (Printf.sprintf "route for alt %d present" alt)
        true
        (Switch.route sw (Mac.shadow (Mac.host 12) ~alt) <> None))
    [ 0; 1; 2; 3 ]

let tree_validity_qcheck =
  QCheck.Test.make ~name:"fat-tree trees reach their destination (k=4,6)"
    ~count:60
    QCheck.(pair (int_range 0 1) (pair (int_range 0 53) (int_range 0 8)))
    (fun (ki, (dst, alt)) ->
      let k = if ki = 0 then 4 else 6 in
      let s = Fat_tree.shape ~k in
      let dst = dst mod s.Fat_tree.num_hosts in
      let alt = alt mod s.Fat_tree.cores in
      let core = Fat_tree.core_for s ~dst ~alt in
      let out = Fat_tree.tree_out_ports s ~dst ~core in
      (* Walk from every edge switch and check arrival at dst's edge. *)
      Array.length out = s.Fat_tree.num_switches
      && out.(Fat_tree.core_id s core) >= 0)

let single_switch_routes () =
  let engine = Engine.create () in
  let fabric =
    Single_switch.build engine ~hosts:8 ~switch_config:Switch.default_config
      ~link_rate:(Rate.gbps 10.0) ~prng:(Prng.create ~seed:1) ()
  in
  let routing =
    Routing.create fabric ~alts:1 ~tree_fn:(fun ~dst ~alt:_ ->
        Single_switch.tree_out_ports ~hosts:8 ~dst)
  in
  Routing.install routing;
  let hops = Routing.path routing ~src:0 ~dst_mac:(Mac.host 7) in
  Alcotest.(check int) "one hop" 1 (List.length hops);
  Alcotest.(check int) "right port" 7 (List.hd hops).Routing.out_port

let jellyfish_builds_and_routes () =
  let engine = Engine.create () in
  let spec =
    { Jellyfish.num_switches = 10; switch_degree = 4; hosts_per_switch = 2 }
  in
  let fabric =
    Jellyfish.build engine ~spec ~switch_config:Switch.default_config
      ~link_rate:(Rate.gbps 10.0) ~prng:(Prng.create ~seed:7) ()
  in
  Alcotest.(check int) "hosts" 20 (Fabric.host_count fabric);
  let routing =
    Routing.create fabric ~alts:4 ~tree_fn:(fun ~dst ~alt ->
        Jellyfish.tree_out_ports fabric ~dst ~alt)
  in
  Routing.install routing;
  (* Every pair has a valid path on every alternate. *)
  for src = 0 to 19 do
    for dst = 0 to 19 do
      if src <> dst then
        for alt = 0 to 3 do
          let mac = Routing.mac_for routing ~dst ~alt in
          let hops = Routing.path routing ~src ~dst_mac:mac in
          Alcotest.(check bool) "path exists" true (List.length hops >= 1)
        done
    done
  done

let fabric_rejects_double_wiring () =
  let engine = Engine.create () in
  let fabric =
    Fabric.build engine ~switch_ports:4 ~switch_config:Switch.default_config
      ~link_rate:(Rate.gbps 10.0) ~num_switches:2 ~num_hosts:1
      ~prng:(Prng.create ~seed:1) ()
  in
  Fabric.wire_host fabric ~host:0 ~switch:0 ~port:0;
  Alcotest.check_raises "port taken" (Invalid_argument "x") (fun () ->
      try Fabric.wire_switches fabric ~a:0 ~port_a:0 ~b:1 ~port_b:0
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "fat-tree shape counts" `Quick shape_counts;
    Alcotest.test_case "fat-tree rejects odd k" `Quick shape_rejects_odd;
    Alcotest.test_case "fat-tree wiring complete & symmetric" `Quick
      wiring_complete;
    Alcotest.test_case "hosts contiguous within pods" `Quick
      hosts_contiguous_in_pods;
    Alcotest.test_case "all-pairs paths valid" `Quick paths_valid_all_pairs;
    Alcotest.test_case "cross-pod path uses expected core" `Quick
      cross_pod_uses_expected_core;
    Alcotest.test_case "same-edge path is one hop" `Quick
      same_edge_path_is_one_hop;
    Alcotest.test_case "alternates traverse distinct cores" `Quick
      alternates_are_core_disjoint;
    Alcotest.test_case "shadow routes installed at edge" `Quick
      shadow_rewrites_installed;
    qtest tree_validity_qcheck;
    Alcotest.test_case "single-switch routing" `Quick single_switch_routes;
    Alcotest.test_case "jellyfish builds and routes" `Quick
      jellyfish_builds_and_routes;
    Alcotest.test_case "fabric rejects double wiring" `Quick
      fabric_rejects_double_wiring;
  ]
