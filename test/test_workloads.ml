(* Workload generator and runner tests. *)

module Time = Planck_util.Time
module Prng = Planck_util.Prng
module Generate = Planck_workloads.Generate
module Runner = Planck_workloads.Runner
module Fat_tree = Planck_topology.Fat_tree

let stride_shape () =
  let pairs = Generate.stride ~hosts:16 ~k:8 in
  Alcotest.(check int) "one flow per host" 16 (List.length pairs);
  List.iter
    (fun ({ src; dst; _ } : Generate.pair) ->
      Alcotest.(check int) "dst = src+8 mod 16" ((src + 8) mod 16) dst)
    pairs

let stride_rejects_identity () =
  Alcotest.check_raises "k=0" (Invalid_argument "x") (fun () ->
      try ignore (Generate.stride ~hosts:8 ~k:16)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let bijection_properties_qcheck =
  QCheck.Test.make ~name:"random bijection is a derangement" ~count:100
    QCheck.(int_range 2 64)
    (fun hosts ->
      let pairs =
        Generate.random_bijection (Prng.create ~seed:hosts) ~hosts
      in
      let dsts = List.map (fun (p : Generate.pair) -> p.dst) pairs in
      List.sort compare dsts = List.init hosts Fun.id
      && List.for_all (fun (p : Generate.pair) -> p.src <> p.dst) pairs)

let random_no_self_qcheck =
  QCheck.Test.make ~name:"random workload never sends to self" ~count:100
    QCheck.(int_range 2 64)
    (fun hosts ->
      List.for_all
        (fun (p : Generate.pair) -> p.src <> p.dst)
        (Generate.random_uniform (Prng.create ~seed:hosts) ~hosts))

let staggered_probabilities () =
  let shape = Fat_tree.shape ~k:4 in
  let prng = Prng.create ~seed:99 in
  let same_edge = ref 0 and same_pod = ref 0 and other = ref 0 in
  for _ = 1 to 300 do
    List.iter
      (fun ({ src; dst; _ } : Generate.pair) ->
        if src / 2 = dst / 2 then incr same_edge
        else if src / 4 = dst / 4 then incr same_pod
        else incr other)
      (Generate.staggered_prob prng ~shape ~p_edge:0.3 ~p_pod:0.3)
  done;
  let total = float_of_int (!same_edge + !same_pod + !other) in
  let frac x = float_of_int !x /. total in
  Alcotest.(check bool) "edge fraction near 0.3" true
    (abs_float (frac same_edge -. 0.3) < 0.05);
  Alcotest.(check bool) "pod fraction near 0.3" true
    (abs_float (frac same_pod -. 0.3) < 0.05)

let shuffle_orders_cover_everyone () =
  let orders = Generate.shuffle_orders (Prng.create ~seed:5) ~hosts:8 in
  Array.iteri
    (fun h order ->
      Alcotest.(check (list int))
        (Printf.sprintf "host %d visits all others" h)
        (List.filter (fun p -> p <> h) (List.init 8 Fun.id))
        (List.sort compare (Array.to_list order)))
    orders

let runner_pairs_results () =
  let tb = Testbed.single_switch ~hosts:4 () in
  let results =
    Runner.run_pairs tb.Testbed.engine ~endpoints:tb.Testbed.endpoints
      ~pairs:[ { Generate.src = 0; dst = 1 }; { Generate.src = 2; dst = 3 } ]
      ~size:(2 * 1024 * 1024) ~horizon:(Time.s 1) ()
  in
  Alcotest.(check int) "two results" 2 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool) "completed" true r.Runner.completed;
      Alcotest.(check bool) "goodput present" true (r.Runner.goodput <> None))
    results;
  Alcotest.(check bool) "average in range" true
    (let avg = Runner.average_goodput_gbps results in
     avg > 3.0 && avg < 10.0)

let runner_horizon_truncates () =
  let tb = Testbed.single_switch ~hosts:4 () in
  let results =
    Runner.run_pairs tb.Testbed.engine ~endpoints:tb.Testbed.endpoints
      ~pairs:[ { Generate.src = 0; dst = 1 } ]
      ~size:(500 * 1024 * 1024) ~horizon:(Time.ms 10) ()
  in
  let r = List.hd results in
  Alcotest.(check bool) "not completed at horizon" false r.Runner.completed;
  Alcotest.(check bool) "no finish time" true (r.Runner.finish_time = None)

let runner_shuffle_completes () =
  let tb = Testbed.single_switch ~hosts:4 () in
  let orders = Generate.shuffle_orders (Prng.create ~seed:3) ~hosts:4 in
  let result =
    Runner.run_shuffle tb.Testbed.engine ~endpoints:tb.Testbed.endpoints
      ~orders ~concurrency:2 ~size:(512 * 1024) ~horizon:(Time.s 5) ()
  in
  Alcotest.(check int) "4 hosts x 3 peers flows" 12
    (List.length result.Runner.flows);
  Array.iteri
    (fun h done_at ->
      Alcotest.(check bool) (Printf.sprintf "host %d done" h) true
        (done_at <> None))
    result.Runner.host_done;
  List.iter
    (fun r -> Alcotest.(check bool) "flow completed" true r.Runner.completed)
    result.Runner.flows

let churn_trace_shape () =
  let spec = { Generate.default_churn with Generate.flows = 500 } in
  let arrivals = Generate.churn (Prng.create ~seed:7) ~hosts:16 ~spec in
  Alcotest.(check int) "500 arrivals" 500 (List.length arrivals);
  let last = ref Time.zero in
  let elephants = ref 0 in
  List.iter
    (fun (a : Generate.arrival) ->
      Alcotest.(check bool) "arrival times monotone" true (a.at >= !last);
      last := a.at;
      Alcotest.(check bool) "src in range" true (a.src >= 0 && a.src < 16);
      Alcotest.(check bool) "dst in range, never self" true
        (a.dst >= 0 && a.dst < 16 && a.dst <> a.src);
      if a.size = spec.Generate.elephant_bytes then incr elephants
      else
        Alcotest.(check int) "mouse size" spec.Generate.mouse_bytes a.size)
    arrivals;
  Alcotest.(check int) "every 50th flow is an elephant" 10 !elephants;
  let again = Generate.churn (Prng.create ~seed:7) ~hosts:16 ~spec in
  Alcotest.(check bool) "same seed reproduces the trace" true
    (arrivals = again);
  let other = Generate.churn (Prng.create ~seed:8) ~hosts:16 ~spec in
  Alcotest.(check bool) "different seed differs" true (arrivals <> other)

let runner_churn_completes () =
  let tb = Testbed.single_switch ~hosts:4 () in
  let spec =
    {
      Generate.default_churn with
      Generate.flows = 40;
      mean_interarrival = Time.us 200;
    }
  in
  let arrivals = Generate.churn (Prng.create ~seed:5) ~hosts:4 ~spec in
  let results =
    Runner.run_churn tb.Testbed.engine ~endpoints:tb.Testbed.endpoints
      ~arrivals ~horizon:(Time.s 10) ()
  in
  Alcotest.(check int) "every arrival launched" 40 (List.length results);
  List.iter
    (fun r -> Alcotest.(check bool) "flow completed" true r.Runner.completed)
    results

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "stride shape" `Quick stride_shape;
    Alcotest.test_case "stride rejects identity mapping" `Quick
      stride_rejects_identity;
    qtest bijection_properties_qcheck;
    qtest random_no_self_qcheck;
    Alcotest.test_case "staggered probabilities" `Quick staggered_probabilities;
    Alcotest.test_case "shuffle orders cover everyone" `Quick
      shuffle_orders_cover_everyone;
    Alcotest.test_case "runner pair results" `Quick runner_pairs_results;
    Alcotest.test_case "runner horizon truncation" `Quick
      runner_horizon_truncates;
    Alcotest.test_case "runner shuffle bookkeeping" `Quick
      runner_shuffle_completes;
    Alcotest.test_case "churn trace shape + determinism" `Quick
      churn_trace_shape;
    Alcotest.test_case "runner churn completes" `Quick runner_churn_completes;
  ]
