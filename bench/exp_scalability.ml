(* The §9.1 scalability analysis as a printed table. *)

open Exp_common
module Scalability = Planck.Scalability

let run _opts =
  section "Sec 9.1: collector requirements at datacenter scale";
  let show label (p : Scalability.plan) =
    [
      label;
      string_of_int p.Scalability.hosts;
      string_of_int p.Scalability.switches;
      string_of_int p.Scalability.collector_servers;
      Printf.sprintf "%.2f%%" p.Scalability.additional_machines_pct;
    ]
  in
  Table.print
    ~header:[ "topology"; "hosts"; "switches"; "collector servers"; "extra machines" ]
    [
      show "fat-tree k=62" (Scalability.fat_tree_plan ~k:62);
      show "jellyfish 64-port"
        (Scalability.jellyfish_plan ~ports:64 ~hosts_per_switch:17
           ~hosts:59_582);
      show "fat-tree k=16" (Scalability.fat_tree_plan ~k:16);
    ];
  let ft, jf = Scalability.monitor_port_host_cost ~fat_tree_k:62 in
  note "host-count cost of the monitor port: %.1f%% (fat-tree), %.1f%% (jellyfish)" ft jf;
  paper "344 collectors for a 59,582-host fat-tree (0.58%% extra machines);";
  paper "251 for the same-size Jellyfish (0.42%%); monitor ports cost";
  paper "1.4%% / 5.5%% of host count respectively."
