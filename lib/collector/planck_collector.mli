(** The Planck collector: line-rate sample processing, sequence-number
    rate estimation, link utilization, congestion events, and
    vantage-point capture. *)

module Rate_estimator = Rate_estimator
module Flow_table = Flow_table
module Collector = Collector
