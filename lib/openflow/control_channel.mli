(** The controller's out-of-band control network.

    Models the latency of messages between the SDN controller, the
    switches' control-plane CPUs, and the collectors: a random one-way
    delay per message (management network hop + endpoint processing),
    plus per-operation costs for the expensive switch-side actions —
    TCAM rule installation and flow-counter reads — using figures from
    the paper and the literature it cites (rule installs of a few
    milliseconds; reading a switch's counters takes tens of
    milliseconds, cf. the 75–200 ms end-to-end numbers in Table 1).

    Message ordering is preserved per channel (TCP connection
    semantics). *)

type config = {
  one_way_min : Planck_util.Time.t;  (** message latency floor *)
  one_way_max : Planck_util.Time.t;
  rule_install_min : Planck_util.Time.t;  (** TCAM update *)
  rule_install_max : Planck_util.Time.t;
  stats_read : Planck_util.Time.t;
      (** switch CPU time to read all flow counters *)
}

val default_config : config
(** one-way 100–250 µs; rule install 2.5–6 ms; stats read 25 ms. *)

type t

val create :
  Planck_netsim.Engine.t ->
  ?config:config ->
  prng:Planck_util.Prng.t ->
  unit ->
  t

val config : t -> config

val send : t -> (unit -> unit) -> unit
(** Deliver a message: run the continuation after the one-way latency
    (FIFO per channel). *)

val install_rule : t -> (unit -> unit) -> unit
(** One-way latency + TCAM installation time, then the continuation. *)

val read_stats : t -> (unit -> unit) -> unit
(** Round trip + counter-read time, then the continuation (which
    receives counter values captured {e at read time} — the caller
    should sample inside the continuation). *)
