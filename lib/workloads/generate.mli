(** Workload generators (paper §7.1), mirroring Hedera/DevoFlow.

    All generators are driven by an explicit PRNG so runs are
    reproducible; host indices are contiguous within pods, as in the
    paper. *)

type pair = { src : int; dst : int }

val stride : hosts:int -> k:int -> pair list
(** [stride ~hosts ~k]: host [x] sends to [(x + k) mod hosts]. With
    [k = 8] on 16 hosts every flow crosses the core. *)

val random_bijection : Planck_util.Prng.t -> hosts:int -> pair list
(** A uniformly random permutation with no fixed points: every host
    sources exactly one flow and sinks exactly one flow. *)

val random_uniform : Planck_util.Prng.t -> hosts:int -> pair list
(** Every host picks a destination (≠ itself) uniformly; hotspots can
    form. *)

val staggered_prob :
  Planck_util.Prng.t ->
  shape:Planck_topology.Fat_tree.shape ->
  p_edge:float ->
  p_pod:float ->
  pair list
(** Hedera's staggered-probability workload: destination within the
    same edge switch with probability [p_edge], elsewhere in the same
    pod with [p_pod], otherwise uniformly outside the pod. *)

val shuffle_orders : Planck_util.Prng.t -> hosts:int -> int array array
(** [orders.(h)] is the random order in which host [h] visits the other
    hosts during a shuffle. *)
