(** The collector's NetFlow-like flow table (paper §3.2.2).

    One entry per sampled 5-tuple, holding the burst-clustered rate
    estimator, the routing (possibly shadow) MAC last seen, the inferred
    ports at the monitored switch, and sample counters. Entries idle
    longer than the timeout are expired lazily. *)

type entry = {
  key : Planck_packet.Flow_key.t;
  estimator : Rate_estimator.t;
  mutable dst_mac : Planck_packet.Mac.t;
      (** destination MAC of the latest sample — identifies the route
          in use, and changes when the flow is rerouted *)
  mutable in_port : int;  (** inferred ingress port; -1 unknown *)
  mutable out_port : int;  (** inferred egress port; -1 unknown *)
  mutable first_seen : Planck_util.Time.t;
  mutable last_seen : Planck_util.Time.t;
  mutable sampled_packets : int;
  mutable sampled_bytes : int;
  mutable seq_lo : int;  (** lowest unwrapped data seq sampled; -1 = none *)
  mutable seq_hi : int;  (** highest unwrapped data seq sampled *)
}

type t

val create : ?timeout:Planck_util.Time.t -> unit -> t
(** [timeout] defaults to 10 ms of idleness. *)

val touch :
  t ->
  key:Planck_packet.Flow_key.t ->
  time:Planck_util.Time.t ->
  ?max_rate:Planck_util.Rate.t ->
  dst_mac:Planck_packet.Mac.t ->
  unit ->
  entry
(** Find or create the entry and refresh its liveness/MAC. [max_rate]
    (used at creation) clamps the new entry's estimator. *)

val find : t -> Planck_packet.Flow_key.t -> entry option

val active : t -> now:Planck_util.Time.t -> entry list
(** Entries seen within the timeout, expiring the rest (expiry
    callbacks fire, in ascending key order). *)

val sweep : t -> now:Planck_util.Time.t -> int
(** Expire every entry idle longer than the timeout without building
    the live list; returns the number evicted. After a sweep, {!size}
    counts live entries only — the occupancy number the telemetry
    gauges and the tiered demotion path want. Expiry callbacks fire in
    ascending key order. *)

val add_on_expire : t -> (now:Planck_util.Time.t -> entry -> unit) -> unit
(** Observe evictions (from {!active} and {!sweep} both). Callbacks run
    after the entry is removed, in registration order; used by the
    collector's eviction counter and the sketch tier's demotion
    fold-back. *)

val active_on_port : t -> now:Planck_util.Time.t -> out_port:int -> entry list

val rate : entry -> Planck_util.Rate.t
(** Current estimate, 0 if none yet. *)

val note_seq : entry -> seq32:int -> payload:int -> unit
(** Record a data sample's sequence range (unwrapping mod 2{^32}). *)

val sampling_fraction : entry -> float option
(** [sampled bytes / sequence span covered]: the effective sampling
    rate of this flow's vantage trace, used to judge capture
    completeness (§6.1). [None] until two data samples exist. *)

val size : t -> int
(** Resident entry count. Expiry is lazy, so this includes idle entries
    until {!active} or {!sweep} evicts them. *)
