(* Bechamel microbenchmarks of the hot paths: packet wire handling, the
   rate estimator, the event queue, and switch forwarding. *)

open Bechamel
open Toolkit
module Time_u = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Heap = Planck_util.Heap
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module Seq32 = Planck_packet.Seq32
module Rate_estimator = Planck_collector.Rate_estimator
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Metrics = Planck_telemetry.Metrics
module Journal = Planck_telemetry.Journal

let sample_packet =
  P.tcp ~src_mac:(Mac.host 1) ~dst_mac:(Mac.host 2) ~src_ip:(Ip.host 1)
    ~dst_ip:(Ip.host 2) ~src_port:1234 ~dst_port:80 ~seq:123456
    ~ack_seq:654321 ~flags:H.Tcp_flags.ack
    ~sack:[ (1000, 2000); (3000, 4000) ]
    ~payload_len:1460 ()

let sample_wire = P.to_wire sample_packet

let test_serialize =
  Test.make ~name:"packet serialize (to_wire)"
    (Staged.stage (fun () -> ignore (P.to_wire sample_packet)))

let test_parse =
  Test.make ~name:"packet parse (collector hot path)"
    (Staged.stage (fun () ->
         ignore (P.parse sample_wire ~wire_size:sample_packet.P.wire_size)))

let test_estimator =
  let estimator = Rate_estimator.create () in
  let counter = ref 0 in
  Test.make ~name:"rate estimator update"
    (Staged.stage (fun () ->
         incr counter;
         ignore
           (Rate_estimator.update estimator
              ~time:(!counter * 1168)
              ~seq32:(Seq32.wrap (!counter * 1460)))))

let test_heap =
  let heap = Heap.create () in
  let prng = Prng.create ~seed:1 in
  Test.make ~name:"event heap add+pop"
    (Staged.stage (fun () ->
         Heap.add heap ~key:(Prng.int prng 1_000_000) ();
         ignore (Heap.pop heap)))

let test_switch_forward =
  let engine = Engine.create () in
  let sw =
    Switch.create engine ~name:"bench" ~ports:4
      ~config:Switch.default_config ()
  in
  for port = 0 to 3 do
    Switch.connect sw ~port ~rate:(Rate.gbps 10.0) ~prop_delay:300
      ~deliver:(fun _ -> ())
  done;
  Switch.add_route sw (Mac.host 2) 1;
  Switch.set_mirror sw ~monitor:3 ~mirrored:[ 0; 1; 2 ];
  Test.make ~name:"switch ingress+forward+mirror (amortized)"
    (Staged.stage (fun () ->
         Switch.ingress sw ~port:0 sample_packet;
         (* Drain so queues do not grow unboundedly. *)
         Engine.run engine))

(* Telemetry overhead guard (ISSUE acceptance: the disabled hot path
   must be a single predictable branch, so instrumenting the simulator
   costs <5% when --metrics-out is absent). Compare the disabled
   counter/histogram updates against the enabled ones. *)
let test_telemetry_disabled =
  let reg = Metrics.create ~enabled:false () in
  let c = Metrics.counter ~registry:reg ~subsystem:"bench" ~name:"noop" () in
  let h =
    Metrics.histogram ~registry:reg ~subsystem:"bench" ~name:"noop_h" ()
  in
  let tick = ref 0 in
  Test.make ~name:"telemetry disabled counter+histogram (no-op)"
    (Staged.stage (fun () ->
         incr tick;
         Metrics.Counter.incr c;
         Metrics.Histogram.observe h !tick))

let test_telemetry_enabled =
  let reg = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:reg ~subsystem:"bench" ~name:"hot" () in
  let h =
    Metrics.histogram ~registry:reg ~subsystem:"bench" ~name:"hot_h" ()
  in
  let tick = ref 0 in
  Test.make ~name:"telemetry enabled counter+histogram"
    (Staged.stage (fun () ->
         incr tick;
         Metrics.Counter.incr c;
         Metrics.Histogram.observe h !tick))

(* Same guard as the journal's instrumentation sites: the event body is
   only allocated behind [Journal.enabled], so a disabled journal costs
   one branch per potential event. *)
let test_journal_disabled =
  let j = Journal.create ~enabled:false () in
  let tick = ref 0 in
  Test.make ~name:"journal disabled (guarded record, no-op)"
    (Staged.stage (fun () ->
         incr tick;
         if Journal.enabled j then
           Journal.record j ~ts:!tick
             (Journal.Packet_drop
                { switch = "bench"; port = 0; mirror = false })))

let test_journal_enabled =
  let j = Journal.create ~enabled:true ~capacity:4096 () in
  let tick = ref 0 in
  Test.make ~name:"journal enabled (record into ring)"
    (Staged.stage (fun () ->
         incr tick;
         if Journal.enabled j then
           Journal.record j ~ts:!tick
             (Journal.Packet_drop
                { switch = "bench"; port = 0; mirror = false })))

let benchmarks =
  [
    test_serialize;
    test_parse;
    test_estimator;
    test_heap;
    test_switch_forward;
    test_telemetry_disabled;
    test_telemetry_enabled;
    test_journal_disabled;
    test_journal_enabled;
  ]

let run () =
  Exp_common.section "Bechamel microbenchmarks (hot paths)";
  let run_one test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun i -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) i raw) instances
    in
    let results = Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
    Hashtbl.iter
      (fun _measure by_name ->
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                Printf.printf "  %-45s %10.1f ns/op\n%!" name est
            | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
          by_name)
      results
  in
  List.iter run_one benchmarks
