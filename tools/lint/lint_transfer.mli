(** Intraprocedural ownership scan over one typedtree expression.

    Walks a structure-level binding's body in evaluation order and
    reports (a) uses of a local after it flowed into a transfer point
    ([Spsc.push], [Engine.Timer.cancel]) on the current path, with
    [let y = x] alias classes, branch union-merge, double-walked loop
    bodies and fresh-pattern resurrection; and (b) paths where
    [Buffer_pool.try_alloc] succeeded but a direct raise-family call
    escapes before any [Buffer_pool.release].

    Resolver-parameterized so [Lint_cmt_index] can feed its path
    normalisation in without a dependency cycle: [resolve] must return
    the qualified name for structure-level / external values and
    [None] for locals — locals are exactly what the scan tracks. *)

type use_kind = Uread | Uwrite | Urmw | Utransfer

val use_verb : use_kind -> string
(** ["read"], ["written"], ["read-modify-written"], ["transferred
    again"] — for finding messages. *)

type use = {
  u_var : string;  (** source name of the transferred binding *)
  u_point : string;  (** transfer pattern, e.g. ["Spsc.push"] *)
  u_kind : use_kind;
  u_transfer_line : int;  (** where the hand-off happened *)
  u_line : int;  (** where the stale use happened *)
  u_col : int;
  u_ty : Types.type_expr;
      (** instantiated type of the transferred value, classified lazily
          by the caller (immutable payloads are exempt) *)
}

type leak = {
  k_raise : string;  (** the raise-family callee *)
  k_alloc_line : int;  (** the successful [try_alloc] condition *)
  k_line : int;
  k_col : int;
}

val transfer_points : (string * int) list
(** Transfer patterns with the positional index of the operand whose
    ownership moves; exposed for the inventory. *)

val scan :
  resolve:(Path.t -> string option) ->
  Typedtree.expression ->
  use list * leak list
(** Scan one binding body. Results are in source order. *)
