(** Controller-initiated switch and host actions, with control-channel
    latency applied. *)

val packet_out :
  ?on_injected:(unit -> unit) ->
  Control_channel.t ->
  Planck_netsim.Switch.t ->
  port:int ->
  Planck_packet.Packet.t ->
  unit
(** Inject a frame out of a switch port (OpenFlow packet-out): one
    control-channel delay, then normal egress queueing. [on_injected]
    runs when the frame enters the switch (after the channel delay) —
    the journal's install stamp. *)

val install_flow_rewrite :
  Control_channel.t ->
  Planck_netsim.Switch.t ->
  key:Planck_packet.Flow_key.t ->
  to_mac:Planck_packet.Mac.t ->
  on_installed:(unit -> unit) ->
  unit
(** Install an ingress destination-MAC rewrite rule for one flow — the
    OpenFlow rerouting mechanism (§6.2). The rule takes effect (and
    [on_installed] runs) after channel latency + TCAM install time. *)

val spoof_arp :
  ?on_injected:(unit -> unit) ->
  Control_channel.t ->
  Planck_netsim.Switch.t ->
  port:int ->
  target:Planck_netsim.Host.t ->
  pretend_ip:Planck_packet.Ipv4_addr.t ->
  pretend_mac:Planck_packet.Mac.t ->
  unit
(** The ARP rerouting mechanism (§6.2): send a {e unicast ARP request}
    to [target] (out of [port] on its edge switch) claiming that
    [pretend_ip] is at [pretend_mac]. Linux performs MAC learning on
    unicast requests, so the target updates its ARP cache and its very
    next segments toward [pretend_ip] use the new (shadow) MAC. *)
