(* Bounded-state collector tests: the conservative-update count-min
   sketch, the tiered table's promotion/demotion lifecycle, and
   TE-decision equivalence between the exact and tiered backends. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module FK = Planck_packet.Flow_key
module Ip = Planck_packet.Ipv4_addr
module Mac = Planck_packet.Mac
module Journal = Planck_telemetry.Journal
module Metrics = Planck_telemetry.Metrics
module Flow_table = Planck_collector.Flow_table
module Count_min = Planck_sketch.Count_min
module Tiered = Planck_sketch.Tiered_table
module Testbed = Planck.Testbed
module Scheme = Planck.Scheme
module Experiment = Planck.Experiment

let key_of i =
  {
    FK.src_ip = Ip.of_int (0x0a00_0000 lor (i land 0xFFFF));
    dst_ip = Ip.of_int (0x0b00_0000 lor ((i lsr 3) land 0xFF));
    src_port = 1_024 + (i land 0xFFF);
    dst_port = 80;
    protocol = 6;
  }

(* ---- count-min core ---- *)

let cms_update_returns_estimate () =
  let cms = Count_min.create () in
  let key = key_of 1 in
  Alcotest.(check int) "first update" 1_000 (Count_min.update cms key 1_000);
  Alcotest.(check int) "query agrees" 1_000 (Count_min.query cms key);
  Alcotest.(check int) "second update" 1_500 (Count_min.update cms key 500);
  Alcotest.(check int) "other key empty" 0 (Count_min.query cms (key_of 2))

let cms_halve_and_clear () =
  let cms = Count_min.create () in
  let key = key_of 3 in
  ignore (Count_min.update cms key 1_000);
  Count_min.halve cms;
  Alcotest.(check int) "halved" 500 (Count_min.query cms key);
  Count_min.halve cms;
  Alcotest.(check int) "halved again" 250 (Count_min.query cms key);
  Alcotest.(check bool) "occupied counters" true (Count_min.occupied cms > 0);
  Count_min.clear cms;
  Alcotest.(check int) "cleared" 0 (Count_min.query cms key);
  Alcotest.(check int) "no occupied counters" 0 (Count_min.occupied cms)

let cms_deterministic () =
  let feed cms =
    for i = 0 to 999 do
      ignore (Count_min.update cms (key_of i) (100 + (i mod 1460)))
    done
  in
  let a = Count_min.create ~seed:42 () and b = Count_min.create ~seed:42 () in
  feed a;
  feed b;
  for i = 0 to 999 do
    Alcotest.(check int) "same estimates under same seed"
      (Count_min.query a (key_of i))
      (Count_min.query b (key_of i))
  done;
  let c = Count_min.create ~seed:43 () in
  let differs = ref false in
  for i = 0 to 99 do
    for row = 0 to Count_min.depth c - 1 do
      if
        Count_min.row_index c (key_of i) ~row
        <> Count_min.row_index a (key_of i) ~row
      then differs := true
    done
  done;
  Alcotest.(check bool) "different seed relocates keys" true !differs

(* The seeded row hashes are part of the on-disk/bench contract: a
   silent change to the hash layout would invalidate every recorded
   sketch number. Pin a few (sketch, key, row) -> bucket vectors. *)
let cms_fixed_vectors () =
  let cms = Count_min.create () in
  let check (i, row, expect) =
    Alcotest.(check int)
      (Printf.sprintf "row_index key %d row %d" i row)
      expect
      (Count_min.row_index cms (key_of i) ~row)
  in
  List.iter check
    [
      (0, 0, 10032); (0, 1, 11829); (0, 2, 5114); (0, 3, 985);
      (1, 0, 8060); (1, 1, 11140); (1, 2, 13266); (1, 3, 1826);
      (12345, 0, 11189); (12345, 1, 15158); (12345, 2, 6532); (12345, 3, 14459);
    ]

let cms_never_underestimates_qcheck =
  QCheck.Test.make ~count:50
    ~name:"cms never underestimates; mean overestimate within bound"
    QCheck.(pair (int_range 1 400) (int_range 0 1_000))
    (fun (updates, salt) ->
      (* A deliberately small sketch so collisions actually happen. *)
      let width = 64 in
      let cms = Count_min.create ~seed:salt ~width ~depth:4 () in
      let truth = FK.Table.create 64 in
      let total = ref 0 in
      for i = 0 to updates - 1 do
        let key = key_of ((i * 7) + salt) in
        let bytes = 100 + (i * 37 mod 1_460) in
        total := !total + bytes;
        FK.Table.replace truth key
          (bytes + Option.value ~default:0 (FK.Table.find_opt truth key));
        ignore (Count_min.update cms key bytes)
      done;
      let ok_under = ref true in
      let over = ref 0 in
      FK.Table.iter
        (fun key true_bytes ->
          let est = Count_min.query cms key in
          if est < true_bytes then ok_under := false;
          over := !over + (est - true_bytes))
        truth;
      let keys = max 1 (FK.Table.length truth) in
      let mean_over = float_of_int !over /. float_of_int keys in
      (* epsilon-N style bound, epsilon = 3/width (above e/width), and
         conservative update stays far below it in practice *)
      let bound = 3.0 *. float_of_int !total /. float_of_int width in
      !ok_under && mean_over <= bound)

(* ---- tiered table lifecycle ---- *)

let lifecycle_config =
  {
    Tiered.default_config with
    Tiered.promote_bytes = 3_000;
    sweep_interval = Time.ms 1;
    (* keep decay out of the picture: byte counts stay exact *)
    decay_interval = Time.s 100;
  }

let sample_one t ~key ~now =
  Tiered.tick t ~now;
  Tiered.sample t ~key ~now ~bytes:1_460 ~max_rate:(Rate.gbps 10.0)
    ~dst_mac:(Mac.host 1)

let promotion_demotion_lifecycle () =
  let was = Journal.enabled Journal.default in
  Journal.clear Journal.default;
  Journal.set_enabled Journal.default true;
  Fun.protect
    ~finally:(fun () ->
      Journal.set_enabled Journal.default was;
      Journal.clear Journal.default)
    (fun () ->
      let t =
        Tiered.create ~config:lifecycle_config ~switch:7
          ~flow_timeout:(Time.ms 10) ()
      in
      let key = key_of 1 in
      (match sample_one t ~key ~now:(Time.us 1) with
      | Some _ -> Alcotest.fail "promoted below threshold (1 sample)"
      | None -> ());
      (match sample_one t ~key ~now:(Time.us 2) with
      | Some _ -> Alcotest.fail "promoted below threshold (2 samples)"
      | None -> ());
      (match sample_one t ~key ~now:(Time.us 3) with
      | None -> Alcotest.fail "third sample (est 4380 B) should promote"
      | Some entry ->
          (* the collector accounts the payload after a [Some] *)
          entry.Flow_table.sampled_bytes <-
            entry.Flow_table.sampled_bytes + 1_460);
      Alcotest.(check int) "one promotion" 1 (Tiered.promotions t);
      Alcotest.(check int) "one exact entry" 1 (Tiered.exact_size t);
      (match sample_one t ~key ~now:(Time.us 4) with
      | None -> Alcotest.fail "promoted flow lost its exact entry"
      | Some entry ->
          entry.Flow_table.sampled_bytes <-
            entry.Flow_table.sampled_bytes + 1_460);
      let before = Count_min.query (Tiered.sketch t) key in
      (* idle past the flow timeout: the next sweep demotes *)
      Tiered.tick t ~now:(Time.ms 20);
      Alcotest.(check int) "one demotion" 1 (Tiered.demotions t);
      Alcotest.(check int) "exact tier drained" 0 (Tiered.exact_size t);
      Alcotest.(check int) "fold-back credits the sampled bytes"
        (before + (2 * 1_460))
        (Count_min.query (Tiered.sketch t) key);
      let events =
        List.filter_map
          (fun (e : Journal.event) ->
            match e.Journal.body with
            | Journal.Flow_promoted { switch; flow; est_bytes } ->
                Some (Printf.sprintf "promoted sw%d %s %dB" switch flow est_bytes)
            | Journal.Flow_demoted { switch; flow; fold_back_bytes; _ } ->
                Some
                  (Printf.sprintf "demoted sw%d %s %dB" switch flow
                     fold_back_bytes)
            | _ -> None)
          (Journal.events Journal.default)
      in
      let flow = FK.to_string key in
      Alcotest.(check (list string))
        "journal carries the lifecycle"
        [
          Printf.sprintf "promoted sw7 %s 4380B" flow;
          Printf.sprintf "demoted sw7 %s 2920B" flow;
        ]
        events)

let promotion_suppressed_at_cap () =
  let config =
    { lifecycle_config with Tiered.promote_bytes = 1_000; max_exact = 1 }
  in
  let t = Tiered.create ~config ~switch:0 ~flow_timeout:(Time.s 1) () in
  (match sample_one t ~key:(key_of 1) ~now:(Time.us 1) with
  | None -> Alcotest.fail "first elephant should promote"
  | Some _ -> ());
  (match sample_one t ~key:(key_of 2) ~now:(Time.us 2) with
  | Some _ -> Alcotest.fail "exact tier is full: promotion must be refused"
  | None -> ());
  Alcotest.(check int) "one suppressed promotion" 1
    (Tiered.suppressed_promotions t);
  Alcotest.(check int) "still one exact entry" 1 (Tiered.exact_size t);
  (* the refused flow keeps counting in the sketch *)
  Alcotest.(check bool) "sketch still tracks it" true
    (Count_min.query (Tiered.sketch t) (key_of 2) >= 1_460)

let sketch_telemetry_registered () =
  let t = Tiered.create ~switch:11 ~flow_timeout:(Time.ms 10) () in
  ignore (Tiered.exact_size t);
  let has name =
    List.exists
      (fun (s : Metrics.snapshot) ->
        s.Metrics.subsystem = "sketch" && s.Metrics.name = name
        && s.Metrics.label = "sw11")
      (Metrics.snapshot Metrics.default)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (has name))
    [
      "sketch_occupied"; "exact_entries"; "promote_overshoot_pct"; "promotions";
      "demotions"; "promotions_suppressed";
    ]

(* ---- TE decision equivalence, exact vs tiered ---- *)

(* On the elephant-dominated reference workload every flow crosses the
   promotion threshold almost immediately, so the TE application must
   reach the same reroute decisions whether the collectors keep exact
   or tiered flow state. (The default backend stays [Exact]; this is
   the guarantee that makes [--flow-table tiered] a drop-in.) *)
let reroute_flows ~flow_table =
  let buf = Buffer.create 4096 in
  let was = Journal.enabled Journal.default in
  Journal.clear Journal.default;
  Journal.set_enabled Journal.default true;
  Journal.set_writer Journal.default
    (Some
       (fun line ->
         Buffer.add_string buf line;
         Buffer.add_char buf '\n'));
  Fun.protect
    ~finally:(fun () ->
      Journal.set_writer Journal.default None;
      Journal.set_enabled Journal.default was;
      Journal.clear Journal.default)
    (fun () ->
      let summary =
        Experiment.run
          ~spec:(Testbed.paper_fat_tree ())
          ~scheme:Scheme.planck_te_default ~workload:(Experiment.Stride 8)
          ~size:(5 * 1024 * 1024) ~flow_table ()
      in
      let flows =
        match Journal.of_ndjson (Buffer.contents buf) with
        | Error e -> Alcotest.failf "streamed journal invalid: %s" e
        | Ok events ->
            List.filter_map
              (fun (e : Journal.event) ->
                match e.Journal.body with
                | Journal.Reroute_decision { flow; _ } -> Some flow
                | _ -> None)
              events
      in
      (summary.Experiment.reroutes, List.sort_uniq compare flows))

let tiered_te_equivalence () =
  let exact_reroutes, exact_flows = reroute_flows ~flow_table:Scheme.Exact in
  let tiered_reroutes, tiered_flows =
    reroute_flows ~flow_table:Scheme.tiered_default
  in
  Alcotest.(check bool) "exact run rerouted" true (exact_reroutes > 0);
  Alcotest.(check bool) "tiered run rerouted" true (tiered_reroutes > 0);
  Alcotest.(check (list string)) "same rerouted flows" exact_flows
    tiered_flows

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "cms update returns estimate" `Quick
      cms_update_returns_estimate;
    Alcotest.test_case "cms halve and clear" `Quick cms_halve_and_clear;
    Alcotest.test_case "cms deterministic under seed" `Quick cms_deterministic;
    Alcotest.test_case "cms fixed hash vectors" `Quick cms_fixed_vectors;
    qtest cms_never_underestimates_qcheck;
    Alcotest.test_case "promotion/demotion lifecycle" `Quick
      promotion_demotion_lifecycle;
    Alcotest.test_case "promotion suppressed at cap" `Quick
      promotion_suppressed_at_cap;
    Alcotest.test_case "sketch telemetry registered" `Quick
      sketch_telemetry_registered;
    Alcotest.test_case "TE decisions: tiered = exact" `Quick
      tiered_te_equivalence;
  ]
