module F = Lint_finding

let count sev findings =
  List.length (List.filter (fun f -> f.F.severity = sev) findings)

(* ---- Text ---- *)

let text_of ~findings ~suppressed ~files =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: %s [%s] %s\n" f.F.file f.F.line f.F.col
           (F.severity_label f.F.severity)
           f.F.rule f.F.message))
    findings;
  let errors = count F.Error findings and warnings = count F.Warning findings in
  Buffer.add_string buf
    (Printf.sprintf
       "planck-lint: %d file%s, %d error%s, %d warning%s, %d suppressed\n"
       files
       (if files = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s")
       suppressed);
  Buffer.contents buf

(* ---- JSON ---- *)

(* How many continuation bytes a UTF-8 lead byte announces, or -1 for
   an invalid lead (continuation byte out of place, 0xFE/0xFF, or the
   overlong/out-of-range leads). *)
let utf8_follow b =
  if b < 0x80 then 0
  else if b < 0xC2 then -1 (* continuation or overlong C0/C1 *)
  else if b < 0xE0 then 1
  else if b < 0xF0 then 2
  else if b < 0xF5 then 3
  else -1

let is_cont b = b land 0xC0 = 0x80

(* Escape a byte string into valid JSON that is itself valid UTF-8.
   Control characters use the short escapes / \u00XX; well-formed UTF-8
   multibyte sequences pass through verbatim (so the output round-trips
   byte-for-byte through a JSON parser); bytes that are NOT part of a
   well-formed sequence are sanitised as \u00XX — a Latin-1 reading of
   the raw byte, lossy but never invalid output. *)
let escape s =
  let n = String.length s in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let b = Char.code c in
    (match c with
    | '"' -> Buffer.add_string buf "\\\""; incr i
    | '\\' -> Buffer.add_string buf "\\\\"; incr i
    | '\n' -> Buffer.add_string buf "\\n"; incr i
    | '\t' -> Buffer.add_string buf "\\t"; incr i
    | '\r' -> Buffer.add_string buf "\\r"; incr i
    | _ when b < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" b);
        incr i
    | _ when b < 0x80 -> Buffer.add_char buf c; incr i
    | _ ->
        let follow = utf8_follow b in
        let ok =
          follow > 0
          && !i + follow < n
          && (let valid = ref true in
              for k = 1 to follow do
                if not (is_cont (Char.code s.[!i + k])) then valid := false
              done;
              (* reject overlong E0 and out-of-range F4 forms *)
              (if !valid && b = 0xE0 then
                 valid := Char.code s.[!i + 1] >= 0xA0);
              (if !valid && b = 0xED then
                 (* UTF-16 surrogate range is not scalar *)
                 valid := Char.code s.[!i + 1] < 0xA0);
              (if !valid && b = 0xF0 then
                 valid := Char.code s.[!i + 1] >= 0x90);
              (if !valid && b = 0xF4 then
                 valid := Char.code s.[!i + 1] < 0x90);
              !valid)
        in
        if ok then begin
          Buffer.add_substring buf s !i (follow + 1);
          i := !i + follow + 1
        end
        else begin
          Buffer.add_string buf (Printf.sprintf "\\u%04x" b);
          incr i
        end)
  done;
  Buffer.contents buf

let json_of ~findings ~suppressed ~files =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"version\":1,\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"symbol\":\"%s\",\"class\":\"%s\"}"
           (escape f.F.rule)
           (F.severity_label f.F.severity)
           (escape f.F.file) f.F.line f.F.col (escape f.F.message)
           (escape f.F.symbol)
           (escape f.F.classification)))
    findings;
  Buffer.add_string buf
    (Printf.sprintf "],\"files\":%d,\"errors\":%d,\"warnings\":%d,\"suppressed\":%d}"
       files (count F.Error findings) (count F.Warning findings) suppressed);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let rules_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Lint_rules.rule) ->
      if r.id <> "parse-error" then
        Buffer.add_string buf
          (Printf.sprintf "%-18s %-12s %-7s %s\n" r.id r.group
             (F.severity_label r.default_severity)
             r.doc))
    Lint_rules.catalog;
  Buffer.contents buf
