(** Packet model: addresses, protocol headers, wire (de)serialization,
    flow keys, and a pcap writer for the vantage-point application. *)

module Mac = Mac
module Ipv4_addr = Ipv4_addr
module Headers = Headers
module Packet = Packet
module Flow_key = Flow_key
module Seq32 = Seq32
module Pcap = Pcap
