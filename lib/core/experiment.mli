(** End-to-end experiment execution: build a testbed, deploy a scheme,
    run a workload, report per-flow results — the machinery behind the
    §7 evaluation figures. *)

type workload =
  | Stride of int
  | Shuffle of { concurrency : int }
  | Random_bijection
  | Random
  | Staggered_prob of { p_edge : float; p_pod : float }
  | Churn of Planck_workloads.Generate.churn_spec
      (** Poisson flow arrivals (mice plus periodic elephants); flow
          sizes come from the spec, so [size] is ignored. The
          bounded-state stressor. *)

val workload_name : workload -> string

type summary = {
  workload : workload;
  scheme_name : string;
  flow_size : int;
  avg_goodput_gbps : float;
  flows : Planck_workloads.Runner.flow_result list;
  host_done : Planck_util.Time.t option array option;
      (** shuffle only: per-host completion times *)
  reroutes : int;
  all_completed : bool;
}

val set_observer :
  (Testbed.t -> Scheme.deployed -> (Planck_tcp.Flow.t -> unit) option) option ->
  unit
(** Install a process-wide observability hook. Because {!run} builds
    its testbed internally, callers that want to record ground truth
    (e.g. {!Recorder}) register an observer; it runs after the scheme
    is deployed and may return a callback that sees every flow the
    workload starts. [None] clears it. *)

val run :
  spec:Testbed.spec ->
  scheme:Scheme.t ->
  workload:workload ->
  size:int ->
  ?flow_table:Scheme.flow_table ->
  ?horizon:Planck_util.Time.t ->
  ?seed:int ->
  unit ->
  summary
(** One run: a fresh testbed per call, so runs are independent.
    [seed] overrides the spec's seed (vary it across repetitions).
    [flow_table] (default [Exact]) selects the collector's flow-state
    backend; see {!Scheme.deploy}. *)

val repeat :
  runs:int ->
  spec:Testbed.spec ->
  scheme:Scheme.t ->
  workload:workload ->
  size:int ->
  ?flow_table:Scheme.flow_table ->
  ?horizon:Planck_util.Time.t ->
  unit ->
  summary list
(** [runs] independent repetitions with seeds [spec.seed + i]. *)

val mean_avg_goodput : summary list -> float
