module Time = Planck_util.Time
module Prng = Planck_util.Prng
module Packet = Planck_packet.Packet
module Headers = Planck_packet.Headers
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr

type stack = {
  send_delay_min : Time.t;
  send_delay_max : Time.t;
  recv_delay_min : Time.t;
  recv_delay_max : Time.t;
  arp_locktime : Time.t;
}

let default_stack =
  {
    send_delay_min = Time.us 50;
    send_delay_max = Time.us 90;
    recv_delay_min = Time.us 35;
    recv_delay_max = Time.us 55;
    arp_locktime = Time.zero;
  }

type arp_entry = { mutable entry_mac : Mac.t; mutable updated_at : Time.t }

type t = {
  engine : Engine.t;
  host_id : int;
  mac : Mac.t;
  ip : Ipv4_addr.t;
  stack : stack;
  prng : Prng.t;
  arp_cache : (Ipv4_addr.t, arp_entry) Hashtbl.t;
  mutable nic : Txport.t option;
  mutable receive : Packet.t -> unit;
  mutable send_traces : (Time.t -> Packet.t -> unit) list;
  mutable recv_traces : (Time.t -> Packet.t -> unit) list;
  mutable filtered : int;
  (* The kernel stack is FIFO in each direction: later frames can never
     overtake earlier ones even though per-frame delays are random — so
     one preallocated timer per direction paces the whole queue. *)
  pending_sends : (Time.t * int * Packet.t) Queue.t; (* ready, cls, pkt *)
  pending_recvs : (Time.t * Packet.t) Queue.t;
  send_timer : Engine.Timer.t;
  recv_timer : Engine.Timer.t;
  mutable last_send_ready : Time.t;
  mutable last_recv_ready : Time.t;
}

let id t = t.host_id
let name t = Printf.sprintf "h%d" t.host_id
let mac t = t.mac
let ip t = t.ip
let engine t = t.engine

(* The NIC is multi-queue with per-flow fair scheduling (mq + TSQ-era
   Linux): bulk data of one flow cannot head-of-line-block the ACKs of
   another. *)
let nic_classes = 8

let connect t ~rate ~prop_delay ~deliver =
  match t.nic with
  | Some _ -> invalid_arg "Host.connect: already connected"
  | None ->
      t.nic <-
        Some
          (Txport.create t.engine ~rate ~prop_delay ~classes:nic_classes
             ~deliver
             ~on_depart:(fun _ -> ())
             ())

let uniform_delay t lo hi =
  if hi <= lo then lo else lo + Prng.int t.prng (hi - lo + 1)

let send t packet =
  let now = Engine.now t.engine in
  List.iter (fun trace -> trace now packet) t.send_traces;
  let delay = uniform_delay t t.stack.send_delay_min t.stack.send_delay_max in
  let ready = max (now + delay) (t.last_send_ready + 1) in
  t.last_send_ready <- ready;
  let cls =
    match Flow_key.of_packet packet with
    | None -> 0
    | Some key -> Flow_key.hash key mod nic_classes
  in
  Queue.push (ready, cls, packet) t.pending_sends;
  if not (Engine.Timer.pending t.send_timer) then
    Engine.Timer.reschedule_at t.send_timer ~time:ready

let on_send_ready t =
  (match Queue.take_opt t.pending_sends with
  | None -> ()
  | Some (_, cls, packet) -> (
      match t.nic with
      | None -> ()
      | Some nic -> Txport.enqueue nic ~cls packet));
  match Queue.peek_opt t.pending_sends with
  | Some (ready, _, _) -> Engine.Timer.reschedule_at t.send_timer ~time:ready
  | None -> ()

let set_receive t f = t.receive <- f
let add_send_trace t f = t.send_traces <- t.send_traces @ [ f ]
let add_recv_trace t f = t.recv_traces <- t.recv_traces @ [ f ]

let arp_lookup t ip =
  match Hashtbl.find_opt t.arp_cache ip with
  | None -> None
  | Some entry -> Some entry.entry_mac

let arp_set t ip mac =
  match Hashtbl.find_opt t.arp_cache ip with
  | Some entry ->
      entry.entry_mac <- mac;
      entry.updated_at <- Engine.now t.engine
  | None ->
      Hashtbl.replace t.arp_cache ip
        { entry_mac = mac; updated_at = Engine.now t.engine }

(* Linux-like cache update on traffic: respect the locktime — an entry
   changed less than [arp_locktime] ago refuses further updates. *)
let arp_learn t ip mac =
  match Hashtbl.find_opt t.arp_cache ip with
  | Some entry ->
      let now = Engine.now t.engine in
      if Mac.equal entry.entry_mac mac then entry.updated_at <- now
      else if now - entry.updated_at >= t.stack.arp_locktime then begin
        entry.entry_mac <- mac;
        entry.updated_at <- now
      end
  | None ->
      Hashtbl.replace t.arp_cache ip
        { entry_mac = mac; updated_at = Engine.now t.engine }

let send_arp_reply t ~to_mac ~to_ip =
  let reply =
    Packet.arp ~src_mac:t.mac ~dst_mac:to_mac
      {
        Headers.Arp.op = Headers.Arp.Reply;
        sender_mac = t.mac;
        sender_ip = t.ip;
        target_mac = to_mac;
        target_ip = to_ip;
      }
  in
  send t reply

let arp_input t (a : Headers.Arp.t) =
  match a.op with
  | Headers.Arp.Request ->
      (* MAC learning happens for requests that reach us (including the
         controller's unicast spoofed requests); we answer requests for
         our own address. *)
      if Ipv4_addr.equal a.target_ip t.ip then begin
        arp_learn t a.sender_ip a.sender_mac;
        send_arp_reply t ~to_mac:a.sender_mac ~to_ip:a.sender_ip
      end
  | Headers.Arp.Reply ->
      (* Unsolicited replies are ignored (Linux default); the hosts in
         this testbed never issue requests themselves, so every reply is
         unsolicited. *)
      ()

let accepts t packet =
  let dst = Packet.dst_mac packet in
  Mac.equal dst t.mac || Mac.equal dst Mac.broadcast

let on_recv_ready t =
  (match Queue.take_opt t.pending_recvs with
  | None -> ()
  | Some (_, packet) -> (
      match packet.Packet.body with
      | Packet.Arp a -> arp_input t a
      | Packet.Ipv4 _ ->
          let now = Engine.now t.engine in
          List.iter (fun trace -> trace now packet) t.recv_traces;
          t.receive packet));
  match Queue.peek_opt t.pending_recvs with
  | Some (ready, _) -> Engine.Timer.reschedule_at t.recv_timer ~time:ready
  | None -> ()

let ingress t packet =
  if not (accepts t packet) then t.filtered <- t.filtered + 1
  else begin
    let now = Engine.now t.engine in
    let delay =
      uniform_delay t t.stack.recv_delay_min t.stack.recv_delay_max
    in
    let ready = max (now + delay) (t.last_recv_ready + 1) in
    t.last_recv_ready <- ready;
    Queue.push (ready, packet) t.pending_recvs;
    if not (Engine.Timer.pending t.recv_timer) then
      Engine.Timer.reschedule_at t.recv_timer ~time:ready
  end

let create engine ~id ?(stack = default_stack) ~prng () =
  let t =
    {
      engine;
      host_id = id;
      mac = Mac.host id;
      ip = Ipv4_addr.host id;
      stack;
      prng;
      arp_cache = Hashtbl.create 16;
      nic = None;
      receive = (fun _ -> ());
      send_traces = [];
      recv_traces = [];
      filtered = 0;
      pending_sends = Queue.create ();
      pending_recvs = Queue.create ();
      send_timer = Engine.Timer.create engine ignore;
      recv_timer = Engine.Timer.create engine ignore;
      last_send_ready = 0;
      last_recv_ready = 0;
    }
  in
  Engine.Timer.set_callback t.send_timer (fun () -> on_send_ready t);
  Engine.Timer.set_callback t.recv_timer (fun () -> on_recv_ready t);
  t

let filtered_frames t = t.filtered
