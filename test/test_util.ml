(* Unit and property tests for Planck_util. *)

module Time = Planck_util.Time
module Heap = Planck_util.Heap
module Wheel = Planck_util.Timer_wheel
module Ring = Planck_util.Ring
module Prng = Planck_util.Prng
module Stats = Planck_util.Stats
module Rate = Planck_util.Rate
module Table = Planck_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* ---- Time ---- *)

let time_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "s" 1_000_000_000 (Time.s 1);
  check_float "to_float_s" 1.5 (Time.to_float_s (Time.ms 1500));
  check_float "of_float_s roundtrip" 2.5e-3
    (Time.to_float_s (Time.of_float_s 2.5e-3));
  Alcotest.(check string) "pp ms" "3.50ms" (Time.to_string (Time.us 3500));
  Alcotest.(check string) "pp us" "280.00us" (Time.to_string (Time.us 280));
  Alcotest.(check string) "pp ns" "42ns" (Time.to_string (Time.ns 42))

(* ---- Heap ---- *)

let heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.add h ~key:5 "five";
  Heap.add h ~key:1 "one";
  Heap.add h ~key:3 "three";
  Alcotest.(check (option int)) "min" (Some 1) (Heap.min_key h);
  Alcotest.(check (option (pair int string)))
    "pop order 1" (Some (1, "one")) (Heap.pop h);
  Alcotest.(check (option (pair int string)))
    "pop order 2" (Some (3, "three")) (Heap.pop h);
  Alcotest.(check (option (pair int string)))
    "pop order 3" (Some (5, "five")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop empty" None (Heap.pop h)

let heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~key:7 v) [ "a"; "b"; "c" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "FIFO among equal keys" [ "a"; "b"; "c" ] order

let heap_sorts_qcheck =
  QCheck.Test.make ~name:"heap pops keys in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h ~key:k ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* Interleaved add/pop programs starting from a fresh [create ()]
   (zero-capacity backing array) against a sorted-list model: exercises
   [ensure_capacity] growth at every size, and FIFO order among equal
   keys via unique insertion indices as values. *)
let heap_mixed_ops_qcheck =
  QCheck.Test.make ~name:"heap add/pop program matches sorted model"
    ~count:300
    QCheck.(list (pair bool (int_bound 50)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let idx = ref 0 in
      let take_min () =
        match !model with
        | [] -> None
        | entries ->
            let min =
              List.fold_left
                (fun acc e -> if compare e acc < 0 then e else acc)
                (List.hd entries) entries
            in
            model := List.filter (fun e -> e <> min) !model;
            Some min
      in
      List.for_all
        (fun (is_pop, k) ->
          if is_pop then Heap.pop h = take_min ()
          else begin
            Heap.add h ~key:k !idx;
            model := (k, !idx) :: !model;
            incr idx;
            true
          end)
        ops
      && (* drain: whatever remains must still pop in model order *)
      List.for_all
        (fun _ -> Heap.pop h = take_min ())
        (List.init (Heap.length h) (fun i -> i)))

(* ---- Timer wheel ---- *)

(* A geometry small enough (32ns ticks, 512ns L0, 4.1us L1) that short
   random programs constantly cascade L1 slots and spill to the
   overflow heap. *)
let wheel_small_config =
  { Wheel.granularity_bits = 5; l0_bits = 4; l1_bits = 3 }

(* Scheduler equivalence: one random event program (adds across every
   delay magnitude, cancels, pops) replayed against a reference model
   and every queue geometry — default wheel, a tiny cascade-heavy
   wheel, and heap-only. All four must produce identical pop order
   (key AND insertion index, i.e. the FIFO tie-break) and identical
   cancel outcomes, or the wheel is not a drop-in for the heap. *)
type wheel_trace = Popped of (int * int) option | Cancelled_ok of bool

let wheel_program_gen =
  (* (tag, n): tags 0-5 add with a tag-dependent delay magnitude,
     6/7/9 pop, 8 cancels the (n mod adds)-th handle ever added. *)
  QCheck.(list (pair (int_bound 9) (int_bound 10_000)))

let wheel_delay tag n =
  match tag with
  | 0 | 1 | 2 -> n mod 64 (* sub-tick: forces equal-key FIFO ties *)
  | 3 | 4 -> n (* within the small config's L0/L1/overflow split *)
  | _ -> n * 997 (* up to ~10ms: default config L0 boundary and beyond *)

let run_wheel_program config program =
  let w = Wheel.create ~config () in
  let handles = ref [] in
  let n_handles = ref 0 in
  let now = ref 0 in
  let idx = ref 0 in
  let trace = ref [] in
  let pop () =
    let r = Wheel.pop w in
    (match r with Some (key, _) -> now := key | None -> ());
    trace := Popped r :: !trace
  in
  List.iter
    (fun (tag, n) ->
      match tag with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
          let h = Wheel.add w ~key:(!now + wheel_delay tag n) !idx in
          incr idx;
          handles := h :: !handles;
          incr n_handles
      | 8 when !n_handles > 0 ->
          let h = List.nth !handles (n mod !n_handles) in
          trace := Cancelled_ok (Wheel.cancel w h) :: !trace
      | 8 -> ()
      | _ -> pop ())
    program;
  while not (Wheel.is_empty w) do
    pop ()
  done;
  trace := Popped (Wheel.pop w) :: !trace;
  List.rev !trace

(* The reference: every entry ever added, with the same three-state
   lifecycle as a wheel handle. *)
let run_model_program program =
  let entries = ref [] in
  let n_entries = ref 0 in
  let now = ref 0 in
  let idx = ref 0 in
  let trace = ref [] in
  let pop () =
    let live = List.filter (fun (_, _, state) -> !state = `Pending) !entries in
    let r =
      match live with
      | [] -> None
      | first :: rest ->
          let (key, i, state) =
            List.fold_left
              (fun (bk, bi, bs) (k, i, s) ->
                if (k, i) < (bk, bi) then (k, i, s) else (bk, bi, bs))
              first rest
          in
          state := `Fired;
          now := key;
          Some (key, i)
    in
    trace := Popped r :: !trace;
    r <> None
  in
  List.iter
    (fun (tag, n) ->
      match tag with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
          entries := (!now + wheel_delay tag n, !idx, ref `Pending) :: !entries;
          incr idx;
          incr n_entries
      | 8 when !n_entries > 0 ->
          let (_, _, state) = List.nth !entries (n mod !n_entries) in
          let ok = !state = `Pending in
          if ok then state := `Cancelled;
          trace := Cancelled_ok ok :: !trace
      | 8 -> ()
      | _ -> ignore (pop ()))
    program;
  while pop () do
    ()
  done;
  List.rev !trace

let wheel_equivalence_qcheck =
  QCheck.Test.make ~name:"timer wheel matches heap pop-for-pop" ~count:300
    wheel_program_gen
    (fun program ->
      let reference = run_model_program program in
      List.for_all
        (fun config -> run_wheel_program config program = reference)
        [ Wheel.default_config; wheel_small_config; Wheel.heap_only ])

let wheel_cancel_compaction () =
  let w = Wheel.create () in
  let keep = Wheel.add w ~key:500_000 () in
  let hs = List.init 200 (fun i -> Wheel.add w ~key:(1_000 * (i + 1)) ()) in
  Alcotest.(check int) "seq is insertion order" 0 (Wheel.seq keep);
  Alcotest.(check int) "key recorded" 500_000 (Wheel.key keep);
  List.iter
    (fun h -> Alcotest.(check bool) "cancel live" true (Wheel.cancel w h))
    hs;
  Alcotest.(check bool) "double cancel refused" false
    (Wheel.cancel w (List.hd hs));
  Alcotest.(check int) "one live entry" 1 (Wheel.length w);
  Alcotest.(check int) "total cancelled" 200 (Wheel.total_cancelled w);
  Alcotest.(check bool) "lazy deletes were compacted" true
    (Wheel.compactions w > 0);
  Alcotest.(check bool) "survivor pending" true (Wheel.is_pending keep);
  Alcotest.(check (option (pair int unit)))
    "survivor pops" (Some (500_000, ())) (Wheel.pop w);
  Alcotest.(check bool) "fired is not pending" false (Wheel.is_pending keep);
  Alcotest.(check bool) "cancel after fire refused" false (Wheel.cancel w keep);
  Alcotest.(check (option (pair int unit))) "drained" None (Wheel.pop w);
  Alcotest.(check int) "no cancelled residents left" 0
    (Wheel.cancelled_resident w)

(* ---- Ring ---- *)

let ring_fifo () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check bool) "push 1" true (Ring.push r 1);
  Alcotest.(check bool) "push 2" true (Ring.push r 2);
  Alcotest.(check bool) "push 3" true (Ring.push r 3);
  Alcotest.(check bool) "push full" false (Ring.push r 4);
  Alcotest.(check int) "drops" 1 (Ring.drops r);
  Alcotest.(check (option int)) "pop" (Some 1) (Ring.pop r);
  Alcotest.(check bool) "push after pop" true (Ring.push r 5);
  Alcotest.(check (list int)) "to_list" [ 2; 3; 5 ] (Ring.to_list r);
  Alcotest.(check (list int)) "batch" [ 2; 3 ] (Ring.pop_batch r ~max:2);
  Alcotest.(check int) "length" 1 (Ring.length r)

let ring_wraparound () =
  (* Interleaved push/pop forces the head index to lap the backing
     array several times; FIFO order must survive each wrap. *)
  let r = Ring.create ~capacity:4 in
  let next = ref 0 and expect = ref 0 in
  for _round = 1 to 10 do
    for _ = 1 to 3 do
      Alcotest.(check bool) "push accepted" true (Ring.push r !next);
      incr next
    done;
    for _ = 1 to 3 do
      Alcotest.(check (option int)) "FIFO across wrap" (Some !expect)
        (Ring.pop r);
      incr expect
    done
  done;
  Alcotest.(check int) "empty after rounds" 0 (Ring.length r);
  Alcotest.(check int) "no drops when never full" 0 (Ring.drops r)

let ring_drop_accounting () =
  let r = Ring.create ~capacity:2 in
  ignore (Ring.push r 1);
  ignore (Ring.push r 2);
  Alcotest.(check bool) "drop 1" false (Ring.push r 3);
  Alcotest.(check bool) "drop 2" false (Ring.push r 4);
  Alcotest.(check int) "two drops counted" 2 (Ring.drops r);
  ignore (Ring.pop r);
  Alcotest.(check bool) "accepted after pop" true (Ring.push r 5);
  Alcotest.(check int) "drops persist across pops" 2 (Ring.drops r);
  Ring.clear r;
  Alcotest.(check int) "drops survive clear" 2 (Ring.drops r);
  Alcotest.(check (list int)) "cleared contents" [] (Ring.to_list r)

let ring_pop_batch_partial () =
  let r = Ring.create ~capacity:8 in
  List.iter (fun v -> ignore (Ring.push r v)) [ 10; 20; 30 ];
  Alcotest.(check (list int))
    "max larger than length drains all" [ 10; 20; 30 ]
    (Ring.pop_batch r ~max:100);
  Alcotest.(check (list int)) "batch on empty" [] (Ring.pop_batch r ~max:4);
  List.iter (fun v -> ignore (Ring.push r v)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "partial drain" [ 1; 2 ] (Ring.pop_batch r ~max:2);
  Alcotest.(check int) "remainder stays" 3 (Ring.length r);
  Alcotest.(check (list int)) "zero max" [] (Ring.pop_batch r ~max:0)

let ring_qcheck =
  QCheck.Test.make ~name:"ring preserves FIFO order under mixed ops"
    ~count:200
    QCheck.(pair (int_range 1 16) (list (option small_int)))
    (fun (cap, ops) ->
      (* Some x = push x, None = pop; compare against a plain queue. *)
      let r = Ring.create ~capacity:cap in
      let q = Queue.create () in
      List.iter
        (function
          | Some x ->
              let accepted = Ring.push r x in
              if accepted then Queue.push x q
          | None -> (
              match (Ring.pop r, Queue.take_opt q) with
              | Some a, Some b -> assert (a = b)
              | None, None -> ()
              | _ -> assert false))
        ops;
      Ring.length r = Queue.length q)

(* ---- Prng ---- *)

let prng_deterministic () =
  let a = Prng.create ~seed:9 and b = Prng.create ~seed:9 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let prng_bounds () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1_000 do
    let f = Prng.float p 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let prng_split_independent () =
  let p = Prng.create ~seed:4 in
  let q = Prng.split p in
  let xs = List.init 16 (fun _ -> Prng.int p 1_000_000) in
  let ys = List.init 16 (fun _ -> Prng.int q 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let derangement_qcheck =
  QCheck.Test.make ~name:"derangement has no fixed points" ~count:100
    QCheck.(int_range 2 64)
    (fun n ->
      let p = Prng.create ~seed:n in
      let d = Prng.derangement p n in
      let is_permutation =
        List.sort compare (Array.to_list d) = List.init n Fun.id
      in
      is_permutation && Array.for_all (fun i -> d.(i) <> i) (Array.init n Fun.id)
      |> fun ok -> ok && Array.length d = n)

let permutation_qcheck =
  QCheck.Test.make ~name:"permutation is a permutation" ~count:100
    QCheck.(int_range 0 128)
    (fun n ->
      let p = Prng.create ~seed:(n + 1) in
      List.sort compare (Array.to_list (Prng.permutation p n))
      = List.init n Fun.id)

(* ---- Stats ---- *)

let stats_basic () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 1.5 (Stats.median [ 1.0; 2.0 ]);
  check_float "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  check_float "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "mean empty nan" true (Float.is_nan (Stats.mean []))

let stats_cdf () =
  let cdf = Stats.cdf [ 2.0; 1.0 ] in
  Alcotest.(check int) "cdf points" 2 (List.length cdf);
  let v, f = List.nth cdf 1 in
  check_float "last value" 2.0 v;
  check_float "last fraction" 1.0 f

let stats_mre () =
  check_float "exact" 0.0
    (Stats.mean_relative_error ~truth:[ 1.0; 2.0 ] ~estimate:[ 1.0; 2.0 ]);
  check_float "10 percent" 0.1
    (Stats.mean_relative_error ~truth:[ 10.0 ] ~estimate:[ 11.0 ])

let stats_percentile_interpolation () =
  (* Linear interpolation between closest ranks: with [10;20;30;40],
     p25 sits 3/4 of the way from 10 to 20. *)
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p25 interpolates" 17.5 (Stats.percentile 25.0 xs);
  check_float "p50 interpolates" 25.0 (Stats.percentile 50.0 xs);
  check_float "p0 is min" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100 is max" 40.0 (Stats.percentile 100.0 xs);
  check_float "singleton any p" 7.0 (Stats.percentile 63.0 [ 7.0 ]);
  Alcotest.check_raises "p > 100 rejected"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 101.0 xs));
  Alcotest.check_raises "p < 0 rejected"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile (-1.0) xs))

let stats_histogram_degenerate () =
  (* All-equal samples: lo = hi, so the bin width falls back to 1.0 and
     everything lands in bucket 0. *)
  let h = Stats.histogram ~bins:4 [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "bins" 4 (Array.length h);
  check_float "first edge is the value" 5.0 (fst h.(0));
  Alcotest.(check int) "all in first bin" 3 (snd h.(0));
  Alcotest.(check int) "rest empty" 0 (snd h.(1) + snd h.(2) + snd h.(3));
  let empty = Stats.histogram ~bins:3 [] in
  Alcotest.(check int) "empty input keeps bins" 3 (Array.length empty);
  Alcotest.(check int) "empty input zero counts" 0
    (Array.fold_left (fun acc (_, c) -> acc + c) 0 empty)

let stats_mre_zero_truth () =
  (* Pairs whose truth is 0 are skipped, not divided by. *)
  check_float "zero-truth pair skipped" 0.1
    (Stats.mean_relative_error ~truth:[ 0.0; 10.0 ] ~estimate:[ 99.0; 11.0 ]);
  Alcotest.(check bool) "all zero truth yields nan" true
    (Float.is_nan
       (Stats.mean_relative_error ~truth:[ 0.0; 0.0 ] ~estimate:[ 1.0; 2.0 ]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.mean_relative_error: length mismatch") (fun () ->
      ignore (Stats.mean_relative_error ~truth:[ 1.0 ] ~estimate:[]))

let percentile_qcheck =
  QCheck.Test.make ~name:"percentile is monotone and within bounds"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      let p25 = Stats.percentile 25.0 xs
      and p50 = Stats.percentile 50.0 xs
      and p75 = Stats.percentile 75.0 xs in
      p25 >= lo && p75 <= hi && p25 <= p50 && p50 <= p75)

let online_matches_batch_qcheck =
  QCheck.Test.make ~name:"online mean/stddev match batch" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let o = Stats.Online.create () in
      List.iter (Stats.Online.add o) xs;
      abs_float (Stats.Online.mean o -. Stats.mean xs) < 1e-6
      && abs_float (Stats.Online.stddev o -. Stats.stddev xs) < 1e-6)

(* ---- Rate ---- *)

let rate_roundtrip () =
  let r = Rate.gbps 10.0 in
  Alcotest.(check int) "tx time of 1250 bytes at 10G" 1_000
    (Rate.tx_time r ~bytes_:1250);
  Alcotest.(check int) "bytes in 1us at 10G" 1250
    (Rate.bytes_in r (Time.us 1));
  check_float "of_bytes_per" 1e9
    (Rate.of_bytes_per 125_000_000 Time.second);
  Alcotest.(check int) "zero bytes zero time" 0 (Rate.tx_time r ~bytes_:0);
  Alcotest.(check bool) "min 1ns for tiny frames" true
    (Rate.tx_time (Rate.gbps 100.0) ~bytes_:1 >= 1)

(* ---- Table ---- *)

let table_render () =
  let out =
    Table.render ~header:[ "name"; "value" ]
      [ [ "x"; "1" ]; [ "long-name"; "22" ] ]
  in
  Alcotest.(check bool) "has separator" true (String.contains out '-');
  Alcotest.(check bool) "pads columns" true
    (String.length (List.nth (String.split_on_char '\n' out) 0)
    = String.length (List.nth (String.split_on_char '\n' out) 2))

let table_csv () =
  let out = Table.csv ~header:[ "a"; "b" ] [ [ "1,5"; "x\"y" ] ] in
  Alcotest.(check string) "quoting" "a,b\n\"1,5\",\"x\"\"y\"\n" out

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "time units and printing" `Quick time_units;
    Alcotest.test_case "heap basic ordering" `Quick heap_basic;
    Alcotest.test_case "heap FIFO tie-break" `Quick heap_fifo_ties;
    qtest heap_sorts_qcheck;
    qtest heap_mixed_ops_qcheck;
    qtest wheel_equivalence_qcheck;
    Alcotest.test_case "wheel cancel, compaction, lifecycle" `Quick
      wheel_cancel_compaction;
    Alcotest.test_case "ring FIFO and drops" `Quick ring_fifo;
    Alcotest.test_case "ring wraparound under interleaved ops" `Quick
      ring_wraparound;
    Alcotest.test_case "ring drop accounting" `Quick ring_drop_accounting;
    Alcotest.test_case "ring pop_batch partial drain" `Quick
      ring_pop_batch_partial;
    qtest ring_qcheck;
    Alcotest.test_case "prng determinism" `Quick prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick prng_bounds;
    Alcotest.test_case "prng split independence" `Quick prng_split_independent;
    qtest derangement_qcheck;
    qtest permutation_qcheck;
    Alcotest.test_case "stats basics" `Quick stats_basic;
    Alcotest.test_case "stats cdf" `Quick stats_cdf;
    Alcotest.test_case "stats mean relative error" `Quick stats_mre;
    Alcotest.test_case "stats percentile interpolation endpoints" `Quick
      stats_percentile_interpolation;
    Alcotest.test_case "stats histogram equal lo/hi" `Quick
      stats_histogram_degenerate;
    Alcotest.test_case "stats mre zero-truth filtering" `Quick
      stats_mre_zero_truth;
    qtest percentile_qcheck;
    qtest online_matches_batch_qcheck;
    Alcotest.test_case "rate arithmetic" `Quick rate_roundtrip;
    Alcotest.test_case "table rendering" `Quick table_render;
    Alcotest.test_case "table csv quoting" `Quick table_csv;
  ]
