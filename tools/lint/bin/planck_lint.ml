(* planck-lint: static analysis for the Planck reproduction.

   Usage: planck_lint [--json] [--out FILE] [--list-rules]
                      [--disable RULE] [--warn-only RULE] [--only-rule RULE]
                      [--deep] [--cmt-dir DIR] [--baseline FILE]
                      [--no-dead-export] PATH...

   Two tiers: the syntactic AST pass always runs; --deep additionally
   loads the repo's .cmt typedtree artifacts and replaces the
   heuristic hot-path / poly-compare / determinism rules with
   call-graph reachability, instantiated-type checks, interprocedural
   taint, and the dead-export analysis on every covered file.

   Exits 1 when any error-severity finding survives suppressions and
   the baseline. *)

module F = Planck_lint_lib.Lint_finding
module Rules = Planck_lint_lib.Lint_rules
module Engine = Planck_lint_lib.Lint_engine
module Report = Planck_lint_lib.Lint_report

let () =
  let json = ref false in
  let out = ref "" in
  let list_rules = ref false in
  let disabled = ref [] in
  let warn_only = ref [] in
  let deep = ref false in
  let cmt_dirs = ref [] in
  let baseline = ref "" in
  let dead_export = ref true in
  let shared_state_out = ref "" in
  let ownership_out = ref "" in
  let only_rules = ref [] in
  let paths = ref [] in
  let check_rule flag r =
    if not (Rules.is_known r) then begin
      prerr_endline
        (Printf.sprintf "planck_lint: unknown rule %S for %s (try --list-rules)"
           r flag);
      exit 2
    end;
    r
  in
  let spec =
    [
      ("--json", Arg.Set json, " emit the machine-readable JSON report");
      ("--out", Arg.Set_string out, "FILE write the report to FILE instead of stdout");
      ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
      ( "--disable",
        Arg.String (fun r -> disabled := check_rule "--disable" r :: !disabled),
        "RULE drop findings of RULE entirely (repeatable)" );
      ( "--warn-only",
        Arg.String (fun r -> warn_only := check_rule "--warn-only" r :: !warn_only),
        "RULE downgrade RULE to a non-fatal warning (repeatable)" );
      ( "--only-rule",
        Arg.String
          (fun r -> only_rules := check_rule "--only-rule" r :: !only_rules),
        "RULE keep only findings of RULE (repeatable)" );
      ("--deep", Arg.Set deep, " run the typed .cmt tier as well");
      ( "--cmt-dir",
        Arg.String (fun d -> cmt_dirs := d :: !cmt_dirs),
        "DIR scan DIR recursively for .cmt/.cmti artifacts (repeatable; \
         default _build/default, or . when absent)" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE deep-finding baseline file (default \
         tools/lint/lint_baseline.txt when present)" );
      ( "--no-dead-export",
        Arg.Clear dead_export,
        " skip the dead-export analysis (for partial cmt sets)" );
      ( "--shared-state-out",
        Arg.Set_string shared_state_out,
        "FILE write the shard-confinement inventory to FILE (.json for \
         the machine-readable artifact, else the committed text format)" );
      ( "--ownership-out",
        Arg.Set_string ownership_out,
        "FILE write the ownership-tier inventory to FILE (.json for the \
         machine-readable artifact, else the committed text format)" );
    ]
  in
  let usage = "planck_lint [options] PATH..." in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    print_string (Report.rules_text ());
    exit 0
  end;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let deep_opts =
    if not !deep then None
    else
      let dirs =
        match List.rev !cmt_dirs with
        | [] ->
            if Sys.file_exists "_build/default" then [ "_build/default" ]
            else [ "." ]
        | dirs -> dirs
      in
      let default_baseline = "tools/lint/lint_baseline.txt" in
      let baseline_file =
        if !baseline <> "" then Some !baseline
        else if Sys.file_exists default_baseline then Some default_baseline
        else None
      in
      Some
        {
          Engine.cmt_dirs = dirs;
          baseline_file;
          dead_export = !dead_export;
          shared_state_out =
            (if !shared_state_out = "" then None else Some !shared_state_out);
          ownership_out =
            (if !ownership_out = "" then None else Some !ownership_out);
        }
  in
  let result =
    try
      Engine.lint_paths ?deep:deep_opts ~only_rules:(List.rev !only_rules)
        (List.rev !paths)
    with Failure msg ->
      prerr_endline ("planck_lint: " ^ msg);
      exit 2
  in
  let findings =
    result.Engine.kept
    |> List.filter (fun f -> not (List.mem f.F.rule !disabled))
    |> List.map (fun f ->
           if List.mem f.F.rule !warn_only then { f with F.severity = F.Warning }
           else f)
  in
  let suppressed =
    result.Engine.suppressed_count + result.Engine.baselined_count
  in
  let files = result.Engine.files_linted in
  let rendered =
    if !json then Report.json_of ~findings ~suppressed ~files
    else Report.text_of ~findings ~suppressed ~files
  in
  (if !out = "" then print_string rendered
   else
     let oc = open_out !out in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc rendered));
  let errors = List.exists (fun f -> f.F.severity = F.Error) findings in
  exit (if errors then 1 else 0)
