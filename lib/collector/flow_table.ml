module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Seq32 = Planck_packet.Seq32

type entry = {
  key : Flow_key.t;
  estimator : Rate_estimator.t;
  mutable dst_mac : Mac.t;
  mutable in_port : int;
  mutable out_port : int;
  mutable first_seen : Time.t;
  mutable last_seen : Time.t;
  mutable sampled_packets : int;
  mutable sampled_bytes : int;
  mutable seq_lo : int;
  mutable seq_hi : int;
}

type t = {
  entries : entry Flow_key.Table.t;
  timeout : Time.t;
  mutable on_expire : (now:Time.t -> entry -> unit) list;
}

let create ?(timeout = Time.ms 10) () =
  { entries = Flow_key.Table.create 64; timeout; on_expire = [] }

let add_on_expire t f = t.on_expire <- t.on_expire @ [ f ]

let touch t ~key ~time ?max_rate ~dst_mac () =
  match Flow_key.Table.find_opt t.entries key with
  | Some entry ->
      entry.last_seen <- time;
      entry.dst_mac <- dst_mac;
      entry
  | None ->
      let entry =
        {
          key;
          estimator = Rate_estimator.create ?max_rate ();
          dst_mac;
          in_port = -1;
          out_port = -1;
          first_seen = time;
          last_seen = time;
          sampled_packets = 0;
          sampled_bytes = 0;
          seq_lo = -1;
          seq_hi = 0;
        }
      in
      Flow_key.Table.replace t.entries key entry;
      entry

let find t key = Flow_key.Table.find_opt t.entries key

let expire t ~now dead =
  List.iter
    (fun entry ->
      Flow_key.Table.remove t.entries entry.key;
      List.iter (fun f -> f ~now entry) t.on_expire)
    dead

let active t ~now =
  let live = ref [] and dead = ref [] in
  (* Sorted so the surviving-entry list (and everything downstream: the
     congestion event's flow list, TE tie-breaks, expiry callbacks) is
     independent of hash-bucket layout. *)
  Flow_key.Table.iter_sorted
    (fun _key entry ->
      if now - entry.last_seen <= t.timeout then live := entry :: !live
      else dead := entry :: !dead)
    t.entries;
  expire t ~now (List.rev !dead);
  !live

let sweep t ~now =
  let dead = ref [] and n = ref 0 in
  Flow_key.Table.iter_sorted
    (fun _key entry ->
      if now - entry.last_seen > t.timeout then begin
        dead := entry :: !dead;
        incr n
      end)
    t.entries;
  expire t ~now (List.rev !dead);
  !n

let active_on_port t ~now ~out_port =
  List.filter (fun entry -> entry.out_port = out_port) (active t ~now)

let note_seq entry ~seq32 ~payload =
  if entry.seq_lo < 0 then begin
    entry.seq_lo <- seq32;
    entry.seq_hi <- seq32 + payload
  end
  else begin
    let seq = Seq32.unwrap ~base:entry.seq_hi seq32 in
    if seq < entry.seq_lo then entry.seq_lo <- seq;
    if seq + payload > entry.seq_hi then entry.seq_hi <- seq + payload
  end

let sampling_fraction entry =
  if entry.seq_lo < 0 || entry.seq_hi - entry.seq_lo <= 0 then None
  else if entry.sampled_packets < 2 then None
  else
    Some
      (float_of_int entry.sampled_bytes
      /. float_of_int (entry.seq_hi - entry.seq_lo))

let rate entry =
  match Rate_estimator.current entry.estimator with
  | Some rate -> rate
  | None -> Rate.bps 0.0

let size t = Flow_key.Table.length t.entries
