type t = int

let mask48 = 0xFFFF_FFFF_FFFF
let of_int n = n land mask48
let to_int t = t

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      let byte x =
        match int_of_string_opt ("0x" ^ x) with
        | Some v when v >= 0 && v <= 0xFF -> v
        | Some _ | None -> invalid_arg ("Mac.of_string: bad octet " ^ x)
      in
      List.fold_left (fun acc x -> (acc lsl 8) lor byte x) 0 [ a; b; c; d; e; f ]
  | _ -> invalid_arg ("Mac.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xFF) ((t lsr 32) land 0xFF) ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF) (t land 0xFF)

let broadcast = mask48

(* Base host MACs are 02:00:00:00:hh:hh — locally administered unicast.
   Shadow MACs reuse the same host id and carry the alternate-route index
   in the fourth octet, so base<->shadow conversion is purely
   arithmetic. *)
let host i = of_int (0x0200_0000_0000 lor (i land 0xFFFF))

let shadow base ~alt =
  if alt < 0 then invalid_arg "Mac.shadow: negative alternate index";
  if alt > 0xFF then invalid_arg "Mac.shadow: alternate index too large";
  (base land lnot (0xFF lsl 16)) lor (alt lsl 16)

let base_of_shadow t =
  let alt = (t lsr 16) land 0xFF in
  (shadow t ~alt:0, alt)

let equal = Int.equal
let compare = Int.compare

(* Already a 48-bit int; identity beats a structural hash walk. *)
let hash (t : t) = t land max_int
let pp ppf t = Format.pp_print_string ppf (to_string t)
