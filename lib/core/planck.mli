(** Planck: millisecond-scale monitoring and control for commodity
    networks — an OCaml reproduction of Rasley et al., SIGCOMM 2014.

    Entry points:
    - {!Testbed} builds a simulated network (fat-tree / single switch /
      Jellyfish) with PAST + shadow-MAC routing installed;
    - {!Scheme} deploys a monitoring/TE scheme on it (Static, PlanckTE,
      polling baselines);
    - {!Experiment} runs the paper's workloads and reports per-flow
      results;
    - {!Recorder} samples ground-truth time-series (link utilization,
      buffers, true vs estimated flow rates) from a running testbed.

    The underlying layers are re-exported for direct use: the
    discrete-event simulator ({!Netsim}), packet model ({!Packet_model}),
    TCP ({!Tcp}), topologies ({!Topology}), the Planck collector
    ({!Collector_lib}), the SDN controller and TE app
    ({!Controller_lib}), the OpenFlow and sFlow substrates, workloads,
    and baselines. *)

module Testbed = Testbed
module Scheme = Scheme
module Experiment = Experiment
module Recorder = Recorder
module Scalability = Scalability

(** {2 Re-exported layers} *)

module Util = Planck_util
module Telemetry = Planck_telemetry
module Packet_model = Planck_packet
module Netsim = Planck_netsim
module Tcp = Planck_tcp
module Topology = Planck_topology
module Openflow = Planck_openflow
module Sflow = Planck_sflow
module Collector_lib = Planck_collector
module Controller_lib = Planck_controller
module Baselines = Planck_baselines
module Workloads = Planck_workloads
