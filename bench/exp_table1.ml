(* Table 1: measurement speed comparison. The Planck rows are measured
   live in the simulator (sample delay + rate-estimator settle time in
   the four switch configurations); the comparison systems use the
   published figures the paper itself tabulates. *)

open Exp_common
module Latency_models = Planck_baselines.Latency_models

type planck_row = { label : string; lo : Time.t; hi : Time.t }

(* Measurement latency for one configuration: first data packet of a
   fresh flow sent ("tcpdump at the sender") to first stable rate
   estimate at the collector, with the monitor port pre-loaded by
   background traffic like a busy switch. *)
let measure ~rate ~config ~seed =
  let m = micro_testbed ~hosts:8 ~rate ~config ~seed () in
  let delays = ref [] in
  let starts = Hashtbl.create 8 in
  (* First data-packet transmission per probe flow. *)
  List.iter
    (fun h ->
      Host.add_send_trace
        (Fabric.host m.tb.Testbed.fabric h)
        (fun time packet ->
          match FK.of_packet packet with
          | Some key
            when P.tcp_payload_len packet > 0
                 && Hashtbl.find_opt starts key = Some (-1) ->
              Hashtbl.replace starts key time
          | _ -> ()))
    [ 2; 3 ];
  Collector.on_estimate m.collector (fun key _rate time ->
      match Hashtbl.find_opt starts key with
      | Some t when t >= 0 ->
          delays := (time - t) :: !delays;
          Hashtbl.remove starts key
      | _ -> ());
  ignore (saturating_flow m.tb ~src:0 ~dst:4);
  ignore (saturating_flow m.tb ~src:1 ~dst:5);
  (* Probe flows start only after the monitor-port queue has reached
     its steady (buffered) depth. *)
  List.iteri
    (fun i delay ->
      Engine.schedule m.tb.Testbed.engine ~delay (fun () ->
          let f =
            saturating_flow m.tb ~tag:i
              ~src:(2 + (i mod 2))
              ~dst:(6 + (i mod 2))
          in
          Hashtbl.replace starts (Planck_tcp.Flow.key f) (-1)))
    [ Time.ms 30; Time.ms 38; Time.ms 46; Time.ms 54 ];
  Engine.run ~until:(Time.ms 75) m.tb.Testbed.engine;
  match !delays with
  | [] -> { label = ""; lo = 0; hi = 0 }
  | ds ->
      {
        label = "";
        lo = List.fold_left min max_int ds;
        hi = List.fold_left max 0 ds;
      }

let run opts =
  section "Table 1: measurement speed and slowdown vs 10 Gbps Planck";
  let planck_rows =
    [
      ( "Planck 10Gbps minbuffer",
        measure ~rate:rate_10g
          ~config:(minbuffer Switch.default_config)
          ~seed:opts.seed );
      ( "Planck 1Gbps minbuffer",
        measure ~rate:rate_1g ~config:(minbuffer pronto_config) ~seed:opts.seed
      );
      ( "Planck 10Gbps",
        measure ~rate:rate_10g ~config:Switch.default_config ~seed:opts.seed );
      ( "Planck 1Gbps",
        measure ~rate:rate_1g ~config:pronto_config ~seed:opts.seed );
    ]
  in
  (* The reference for the slowdown column: buffered 10 Gbps Planck. *)
  let reference =
    (snd (List.nth planck_rows 2)).hi
  in
  let planck_table_rows =
    List.map
      (fun (label, m) ->
        let slow_lo = float_of_int m.lo /. float_of_int reference in
        let slow_hi = float_of_int m.hi /. float_of_int reference in
        [
          label;
          Printf.sprintf "%s-%s" (Time.to_string m.lo) (Time.to_string m.hi);
          Printf.sprintf "%.2f-%.2fx" slow_lo slow_hi;
          "measured";
        ])
      planck_rows
  in
  let published_rows =
    List.map
      (fun e ->
        let lo, hi = Latency_models.slowdown e ~reference in
        [
          (e.Latency_models.system
          ^ if e.Latency_models.estimated then " (†)" else "");
          Format.asprintf "%a" Latency_models.pp_speed e;
          (if lo = hi then Printf.sprintf "%.0fx" lo
           else Printf.sprintf "%.0f-%.0fx" lo hi);
          "published";
        ])
      Latency_models.published
  in
  Table.print
    ~header:[ "system"; "speed"; "slowdown vs 10G Planck"; "source" ]
    (planck_table_rows @ published_rows);
  paper "Planck measures in <4.2 ms at 10 Gbps (275-850 us minbuffer),";
  paper "11-18x faster than Helios, the next best; up to 291x for";
  paper "minbuffer. († = reported value or estimate, not the cited";
  paper "work's primary implementation.)"
