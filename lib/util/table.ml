type align = Left | Right

let pad align width cell =
  let n = String.length cell in
  if n >= width then cell
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> cell ^ fill | Right -> fill ^ cell

let column_alignment align ncols =
  let given = match align with Some l -> l | None -> [] in
  List.init ncols (fun i ->
      match List.nth_opt given i with
      | Some a -> a
      | None -> if i = 0 then Left else Right)

let normalize ncols row =
  let n = List.length row in
  if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")

let render ?align ~header rows =
  let ncols = List.length header in
  let rows = List.map (normalize ncols) rows in
  let aligns = column_alignment align ncols in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row row =
    let cells =
      List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) row
    in
    String.concat "  " cells
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row header :: sep :: body) @ [ "" ])

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  flush stdout

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv ~header rows =
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"
