(* Shared fixtures for integration-flavoured tests: small single-switch
   and fat-tree networks with routing installed and ARP populated. *)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Host = Planck_netsim.Host
module Fabric = Planck_topology.Fabric
module Routing = Planck_topology.Routing
module Single_switch = Planck_topology.Single_switch
module Fat_tree = Planck_topology.Fat_tree
module Endpoint = Planck_tcp.Endpoint
module Flow = Planck_tcp.Flow

let rate_10g = Rate.gbps 10.0
let rate_1g = Rate.gbps 1.0

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  routing : Routing.t;
  endpoints : Endpoint.t array;
}

let single_switch ?(hosts = 4) ?(rate = rate_10g) ?(seed = 42)
    ?(config = Switch.default_config) () =
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let fabric =
    Single_switch.build engine ~hosts ~switch_config:config ~link_rate:rate
      ~prng ()
  in
  let routing =
    Routing.create fabric ~alts:1 ~tree_fn:(fun ~dst ~alt:_ ->
        Single_switch.tree_out_ports ~hosts ~dst)
  in
  Routing.install routing;
  Fabric.populate_arp fabric;
  let endpoints =
    Array.init hosts (fun i -> Endpoint.create (Fabric.host fabric i))
  in
  { engine; fabric; routing; endpoints }

let fat_tree ?(k = 4) ?(rate = rate_10g) ?(seed = 42)
    ?(config = Switch.default_config) () =
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let fabric, shape =
    Fat_tree.build engine ~k ~switch_config:config ~link_rate:rate ~prng ()
  in
  let routing =
    Routing.create fabric ~alts:(Fat_tree.max_alts shape)
      ~tree_fn:(fun ~dst ~alt ->
        Fat_tree.tree_out_ports shape ~dst
          ~core:(Fat_tree.core_for shape ~dst ~alt))
  in
  Routing.install routing;
  Fabric.populate_arp fabric;
  let endpoints =
    Array.init (Fabric.host_count fabric) (fun i ->
        Endpoint.create (Fabric.host fabric i))
  in
  (({ engine; fabric; routing; endpoints } : t), shape)

let start_flow t ~src ~dst ~size ?params () =
  Flow.start ~src:t.endpoints.(src) ~dst:t.endpoints.(dst)
    ~src_port:(10_000 + src) ~dst_port:(20_000 + dst) ~size ?params ()
