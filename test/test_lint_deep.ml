(* The deep (typed) lint tier: call-graph hot reachability, type-aware
   poly-compare, determinism taint, dead exports, and the baseline.

   Fixtures are type-checked in-process against the stdlib environment
   ([Lint_cmt_index.add_typed_source]), so each test states its whole
   world: the fixture is the unit, [note_unit_ref] plays the part of
   external references, and sink/root lists are injected. *)

module Index = Planck_lint_lib.Lint_cmt_index
module Callgraph = Planck_lint_lib.Lint_callgraph
module Taint = Planck_lint_lib.Lint_taint
module Deep = Planck_lint_lib.Lint_deep_rules
module Engine = Planck_lint_lib.Lint_engine
module Finding = Planck_lint_lib.Lint_finding
module Rules = Planck_lint_lib.Lint_rules

let index_of sources =
  let ix = Index.load ~dirs:[] in
  List.iter
    (fun (unit_name, file, source) ->
      Index.add_typed_source ix ~unit_name ~file ~source)
    sources;
  ix

let rules_at ~rule findings =
  List.filter_map
    (fun f ->
      if String.equal f.Finding.rule rule then
        Some (Printf.sprintf "%s:%d" f.Finding.file f.Finding.line)
      else None)
    findings

(* ---- hot-path reachability ---- *)

let reach_fixture =
  {|
let leaf_work x = x * 2
let helper x = leaf_work x + 1
let ingress x = helper x
let cold_path x = leaf_work x - 1
|}

let test_hot_reachability () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", reach_fixture) ] in
  let t = Deep.prepare ~hot_roots:[ "Fix.ingress" ] ix in
  Alcotest.(check bool) "root is hot" true (Deep.is_hot t "Fix.ingress");
  Alcotest.(check bool) "direct callee is hot" true (Deep.is_hot t "Fix.helper");
  Alcotest.(check bool)
    "transitive callee is hot" true
    (Deep.is_hot t "Fix.leaf_work");
  Alcotest.(check bool)
    "unreached def is cold" false
    (Deep.is_hot t "Fix.cold_path");
  let chain = Deep.hot_chain t "Fix.leaf_work" in
  Alcotest.(check bool)
    "witness chain starts at the root" true
    (String.length chain >= String.length "Fix.ingress"
    && String.sub chain 0 (String.length "Fix.ingress") = "Fix.ingress")

(* The acceptance witness: with the repo's real cmt artifacts, the hot
   closure reaches [Planck_util__Heap.add] through the engine/timer
   wheel — a function the old hot-dir x hot-stem heuristic could never
   flag (lib/util/ was not a hot dir). Runs only when the build tree is
   around (same convention as test_lint's repo-clean check). *)
let test_hot_includes_heap_add () =
  let cwd = Sys.getcwd () in
  let root = Filename.dirname cwd in
  if Sys.file_exists (Filename.concat root "lib") then begin
    let ix = Index.load ~dirs:[ root ] in
    if Index.unit_count ix > 0 then begin
      let t = Deep.prepare ix in
      Alcotest.(check bool)
        "Heap.add is hot via the timer wheel" true
        (Deep.is_hot t "Planck_util__Heap.add");
      (* Heap.add is not itself a root, so the witness chain must show a
         genuine transitive step from one. *)
      let chain = Deep.hot_chain t "Planck_util__Heap.add" in
      Alcotest.(check bool)
        "witness chain is transitive" true
        (let sub = " -> " in
         let n = String.length chain and m = String.length sub in
         let rec scan i =
           i + m <= n && (String.sub chain i m = sub || scan (i + 1))
         in
         scan 0);
      Alcotest.(check bool)
        "old heuristic scope did not cover lib/util" false
        (List.mem "Planck_util__Heap.add" Deep.default_hot_roots)
    end
  end

(* ---- type-aware poly-compare ---- *)

let poly_fixture =
  {|
type r = { a : int; b : string }
let compare_records (x : r) (y : r) = compare x y
let compare_ints (x : int) (y : int) = compare x y
module Shadow = struct
  let compare (x : int array) (y : int array) = Stdlib.compare x.(0) y.(0)
end
let uses_shadow x y = Shadow.compare x y
|}

let test_typed_poly_compare () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", poly_fixture) ] in
  let t = Deep.prepare ~hot_roots:[] ix in
  let hits = rules_at ~rule:"poly-compare" (Deep.findings ~dead_export:false t) in
  Alcotest.(check (list string))
    "only the structured compare fires"
    [ "lib/fix/fix.ml:3" ] hits

let float_fixture =
  {|
let close (x : float) (y : float) = x = y
let ints_fine (x : int) (y : int) = x = y
|}

let test_typed_float_equality () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", float_fixture) ] in
  let t = Deep.prepare ~hot_roots:[] ix in
  let hits =
    rules_at ~rule:"float-equality" (Deep.findings ~dead_export:false t)
  in
  Alcotest.(check (list string))
    "float (=) fires, int (=) does not"
    [ "lib/fix/fix.ml:2" ] hits

(* Structured (=) is reported only on the hot path; the same fixture
   with no hot roots stays quiet. *)
let structural_eq_fixture =
  {|
let eq_lists (a : int list) (b : int list) = a = b
let ingress a b = eq_lists a b
|}

let test_hot_structural_equality () =
  let src = [ ("Fix", "lib/fix/fix.ml", structural_eq_fixture) ] in
  let hot =
    Deep.prepare ~hot_roots:[ "Fix.ingress" ] (index_of src)
  in
  Alcotest.(check (list string))
    "hot list (=) fires"
    [ "lib/fix/fix.ml:2" ]
    (rules_at ~rule:"poly-compare" (Deep.findings ~dead_export:false hot));
  let cold = Deep.prepare ~hot_roots:[] (index_of src) in
  Alcotest.(check (list string))
    "cold list (=) is allowed" []
    (rules_at ~rule:"poly-compare" (Deep.findings ~dead_export:false cold))

(* ---- hot-alloc and the raise-path exemption ----

   This is the old switch.ml check_port shape: an allocating format call
   whose result feeds [invalid_arg] on a hot function's error path. The
   syntactic tier needed an inline suppression for it; the typed tier
   exempts raise arguments outright, which is why that directive could
   be deleted. A bare allocation on the same hot path still fires. *)

let raise_fixture =
  {|
let check_port port n =
  if port < 0 || port >= n then
    invalid_arg (Printf.sprintf "bad port %d (have %d)" port n)

let label_packet x = string_of_int x

let ingress port n = check_port port n; label_packet port
|}

let test_hot_alloc_raise_exempt () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", raise_fixture) ] in
  let t = Deep.prepare ~hot_roots:[ "Fix.ingress" ] ix in
  let hits = rules_at ~rule:"hot-alloc" (Deep.findings ~dead_export:false t) in
  Alcotest.(check (list string))
    "raise-path sprintf exempt, live allocation fires"
    [ "lib/fix/fix.ml:6" ] hits

(* ---- the profiler span probe ----

   Profile.enter/exit bracket every hot span in the tree, so they are
   themselves deep-tier hot roots: an allocation inside either taxes
   every event even with profiling disabled. The probe plants an
   allocating exit under the real root names and checks hot-alloc fires
   through the profiler root; the repo self-check (test_lint's
   repo-clean case and the @lint alias) is what proves the real
   profiler's disabled path stays allocation-free. *)

let span_probe_fixture =
  {|
let depth = ref 0
let enter _t = incr depth
let exit t = decr depth; print_string (string_of_int t)
|}

let test_profiler_span_probe () =
  Alcotest.(check bool)
    "profiler enter/exit are default hot roots" true
    (List.mem "Planck_telemetry__Profile.enter" Deep.default_hot_roots
    && List.mem "Planck_telemetry__Profile.exit" Deep.default_hot_roots);
  let ix =
    index_of
      [
        ( "Planck_telemetry__Profile",
          "lib/telemetry/profile.ml",
          span_probe_fixture );
      ]
  in
  let t =
    Deep.prepare
      ~hot_roots:
        [ "Planck_telemetry__Profile.enter"; "Planck_telemetry__Profile.exit" ]
      ix
  in
  let hits = rules_at ~rule:"hot-alloc" (Deep.findings ~dead_export:false t) in
  Alcotest.(check (list string))
    "allocating exit fires hot-alloc"
    [ "lib/telemetry/profile.ml:4" ] hits

let schedule_fixture =
  {|
module Engine = struct let schedule _e ~delay:_ _f = () end
let on_packet e = Engine.schedule e ~delay:10 (fun () -> ())
let ingress e = on_packet e
let idle_setup e = Engine.schedule e ~delay:10 (fun () -> ())
|}

let test_hot_schedule () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", schedule_fixture) ] in
  let t = Deep.prepare ~hot_roots:[ "Fix.ingress" ] ix in
  let hits =
    rules_at ~rule:"hot-schedule" (Deep.findings ~dead_export:false t)
  in
  Alcotest.(check (list string))
    "only the per-packet closure fires"
    [ "lib/fix/fix.ml:3" ] hits

(* ---- determinism taint ---- *)

let taint_fixture =
  {|
module Journal = struct let record (_ : float) = () end
let now () = Sys.time ()
let log_time () = Journal.record (now ())
let log_const () = Journal.record 0.0
let unused_clock () = Sys.time ()
|}

let taint_config =
  { Taint.sink_patterns = [ "Journal.record" ]; exempt_source = (fun _ -> false) }

let test_taint_reaches_sink () =
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", taint_fixture) ] in
  let findings = Taint.report ~config:taint_config ix in
  Alcotest.(check (list string))
    "clock behind a journal write fires, at the source line"
    [ "lib/fix/fix.ml:3" ]
    (rules_at ~rule:"determinism-taint" findings);
  match findings with
  | [ f ] ->
      Alcotest.(check string)
        "symbol is the sink-adjacent def" "Fix.log_time" f.Finding.symbol
  | _ -> Alcotest.fail "expected exactly one taint finding"

let test_taint_needs_sink () =
  let no_sink =
    {|
let now () = Sys.time ()
let fmt () = Printf.sprintf "%f" (now ())
|}
  in
  let ix = index_of [ ("Fix", "lib/fix/fix.ml", no_sink) ] in
  Alcotest.(check (list string))
    "a clock that never reaches a sink is quiet" []
    (rules_at ~rule:"determinism-taint" (Taint.report ~config:taint_config ix))

let test_taint_exempt_source () =
  let ix = index_of [ ("Fix", "lib/telemetry/fix.ml", taint_fixture) ] in
  let config =
    { taint_config with Taint.exempt_source = Taint.default_config.exempt_source }
  in
  Alcotest.(check (list string))
    "real-time telemetry files are exempt sources" []
    (rules_at ~rule:"determinism-taint" (Taint.report ~config ix))

(* ---- dead exports and the baseline ---- *)

let dead_impl = {|
let used x = x + 1
let unused x = x - 1
|}

let dead_intf = {|
val used : int -> int
val unused : int -> int
|}

let dead_index () =
  let ix = Index.load ~dirs:[] in
  Index.add_typed_source ix ~unit_name:"Fix_dead" ~file:"lib/fix/fix_dead.ml"
    ~source:dead_impl;
  Index.add_typed_interface ix ~unit_name:"Fix_dead"
    ~file:"lib/fix/fix_dead.mli" ~source:dead_intf;
  Index.note_unit_ref ix ~from_unit:"Fix_user" ~target:"Fix_dead.used";
  ix

let test_dead_export () =
  let t = Deep.prepare ~hot_roots:[] (dead_index ()) in
  let dead = rules_at ~rule:"dead-export" (Deep.findings t) in
  Alcotest.(check (list string))
    "only the unreferenced export fires, on the mli"
    [ "lib/fix/fix_dead.mli:3" ] dead

let test_baseline_round_trip () =
  let t = Deep.prepare ~hot_roots:[] (dead_index ()) in
  let findings = Deep.findings t in
  let path = Filename.temp_file "planck_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# comment\n\ndead-export Fix_dead.unused -- kept for the test\n";
      close_out oc;
      let entries =
        match Deep.load_baseline path with
        | Ok entries -> entries
        | Error e -> Alcotest.failf "baseline should parse: %s" e
      in
      let kept, baselined = Deep.apply_baseline entries findings in
      Alcotest.(check (list string))
        "baselined entry is absorbed" []
        (rules_at ~rule:"dead-export" kept);
      Alcotest.(check int) "one finding baselined" 1 (List.length baselined))

let test_baseline_malformed () =
  let path = Filename.temp_file "planck_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "dead-export NoJustification\n";
      close_out oc;
      match Deep.load_baseline path with
      | Ok _ -> Alcotest.fail "missing '--' must be rejected"
      | Error _ -> ())

(* ---- inline suppressions cover deep findings ---- *)

let test_suppression_covers_deep () =
  let source =
    "let id x = x\n\
     (* planck-lint: allow poly-compare -- fixture justification *)\n\
     let third_line = ()\n"
  in
  let deep_finding =
    Finding.v ~symbol:"Fix.third_line" ~rule:"poly-compare" ~severity:Finding.Error
      ~file:"lib/fix.ml" ~line:3 ~col:4 "typed finding from the deep tier"
  in
  let kept, suppressed =
    Engine.lint_source ~extra:[ deep_finding ] ~path:"lib/fix.ml" ~source ()
  in
  Alcotest.(check int) "deep finding suppressed by directive" 1
    (List.length suppressed);
  Alcotest.(check (list string))
    "nothing kept" []
    (rules_at ~rule:"poly-compare" kept)

let tests =
  [
    Alcotest.test_case "hot reachability closure" `Quick test_hot_reachability;
    Alcotest.test_case "hot set includes Heap.add (repo cmts)" `Quick
      test_hot_includes_heap_add;
    Alcotest.test_case "typed poly-compare" `Quick test_typed_poly_compare;
    Alcotest.test_case "typed float-equality" `Quick test_typed_float_equality;
    Alcotest.test_case "hot structural equality" `Quick
      test_hot_structural_equality;
    Alcotest.test_case "hot-alloc raise exemption" `Quick
      test_hot_alloc_raise_exempt;
    Alcotest.test_case "profiler span probe fires hot-alloc" `Quick
      test_profiler_span_probe;
    Alcotest.test_case "hot-schedule closure" `Quick test_hot_schedule;
    Alcotest.test_case "taint reaches sink" `Quick test_taint_reaches_sink;
    Alcotest.test_case "taint needs a sink" `Quick test_taint_needs_sink;
    Alcotest.test_case "taint exempts telemetry sources" `Quick
      test_taint_exempt_source;
    Alcotest.test_case "dead export" `Quick test_dead_export;
    Alcotest.test_case "baseline round trip" `Quick test_baseline_round_trip;
    Alcotest.test_case "baseline rejects malformed" `Quick
      test_baseline_malformed;
    Alcotest.test_case "suppressions cover deep findings" `Quick
      test_suppression_covers_deep;
  ]
