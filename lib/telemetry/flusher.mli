(** Periodic snapshot flushing.

    A flusher bundles a metric registry, a trace, and a list of output
    sinks; each {!flush} rewrites every sink in place (last write wins,
    so a crash mid-run still leaves the latest complete snapshot on
    disk). {!schedule} hooks it onto the simulation clock through a
    scheduler capability, keeping this library independent of the
    engine:

    {[
      let fl =
        Flusher.create
          ~outputs:[ Flusher.Metrics_json "/tmp/metrics.json" ] ()
      in
      Flusher.schedule fl ~period:(Time.ms 100)
        ~every:(fun ~period f -> Engine.every engine ~period f)
    ]} *)

type output =
  | Metrics_json of string  (** write {!Export.metrics_json} to path *)
  | Metrics_csv of string  (** write {!Export.metrics_csv} to path *)
  | Trace_json of string  (** write {!Trace.to_chrome_json} to path *)
  | Custom of (unit -> unit)

type t

val create :
  ?registry:Metrics.registry -> ?trace:Trace.t -> outputs:output list ->
  unit -> t
(** Defaults to {!Metrics.default} and {!Trace.default}. *)

val flush : t -> unit
(** Write every output now. *)

val flushes : t -> int

val schedule :
  t ->
  every:(period:Planck_util.Time.t -> (unit -> unit) -> 'handle) ->
  period:Planck_util.Time.t ->
  'handle
(** Flush once per [period] via the provided scheduler and return its
    handle: pass [Engine.every engine] for fire-and-forget ([unit]) or
    [Engine.periodic engine] to keep the cancellable [Engine.Timer.t].
    Raises [Invalid_argument] on non-positive periods. *)
