module Time = Planck_util.Time
module Heap = Planck_util.Heap
module Metrics = Planck_telemetry.Metrics

(* All engines share the process-wide registry: the counters aggregate
   across engine instances (one per testbed), which is what the CLI and
   bench snapshots want. Per-engine introspection uses the accessors. *)
let m_events = Metrics.counter ~subsystem:"engine" ~name:"events_processed" ()

let m_pending_hw =
  Metrics.gauge ~subsystem:"engine" ~name:"pending_high_water" ()

type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : Time.t;
  mutable processed : int;
  mutable max_pending : int;
}

let create () =
  { queue = Heap.create (); clock = 0; processed = 0; max_pending = 0 }

let now t = t.clock

let push t ~key f =
  Heap.add t.queue ~key f;
  let n = Heap.length t.queue in
  if n > t.max_pending then begin
    t.max_pending <- n;
    Metrics.Gauge.set_int m_pending_hw n
  end

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  push t ~key:time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  push t ~key:(t.clock + delay) f

let every t ~period ?until f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () =
    f ();
    match until with
    | Some horizon when t.clock + period > horizon -> ()
    | Some _ | None -> schedule t ~delay:period tick
  in
  schedule t ~delay:period tick

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      Metrics.Counter.incr m_events;
      f ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Heap.min_key t.queue with
        | Some time when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- horizon;
            continue := false
      done

let events_processed t = t.processed
let pending t = Heap.length t.queue
let max_pending t = t.max_pending
