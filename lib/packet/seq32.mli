(** 32-bit TCP sequence-number arithmetic.

    Sequence numbers on the wire are 32-bit byte counters that wrap
    every 4 GiB; the paper's workloads reach 100 GiB, so both the TCP
    stack and the collector's rate estimator must unwrap them. *)

val modulus : int
(** 2{^32}. *)

val wrap : int -> int
(** Truncate a full-width byte offset to its on-wire representation. *)

val delta : prev:int -> cur:int -> int
(** Signed distance from on-wire [prev] to on-wire [cur], interpreted
    mod 2{^32}, in [\[-2{^31}, 2{^31})]. Positive means [cur] is ahead. *)

val unwrap : base:int -> int -> int
(** [unwrap ~base seq32] is the full-width offset closest to the
    full-width [base] whose low 32 bits equal [seq32]. *)
