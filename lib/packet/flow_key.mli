(** Transport-flow identity: the classic 5-tuple.

    The collector's flow table (paper §3.2.2) and the controller's
    traffic-engineering state are both keyed by this. *)

type t = {
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  src_port : int;
  dst_port : int;
  protocol : int;
}

val of_packet : Packet.t -> t option
(** The 5-tuple of a TCP or UDP frame; [None] for ARP. *)

val reverse : t -> t
(** Key of the opposite direction (ACK stream) of the same connection. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** The same rendering as {!pp} ("src:port > dst:port/proto"), built
    without the formatting machinery so per-packet-reachable journal
    sites can label flows allocation-rule-clean. *)

module Table : sig
  include Hashtbl.S with type key = t

  val sorted_bindings : 'a t -> (key * 'a) list
  (** Bindings in ascending key order — hash-order iteration leaks
      bucket layout into event ordering; this is the deterministic
      alternative. *)

  val iter_sorted : (key -> 'a -> unit) -> 'a t -> unit
  val fold_sorted : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
end

module Map : Map.S with type key = t
